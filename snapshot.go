package snapstab

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/snapshot"
)

// SnapshotCluster is a simulated system running the snap-stabilizing
// global state collection protocol: any process can gather, in one
// computation, the application state of every process — and the gathered
// values are certified to have been produced for this very collection,
// never stale channel garbage.
type SnapshotCluster struct {
	opt      options
	net      *sim.Network
	machines []*snapshot.Snapshot
}

// NewSnapshotCluster builds an n-process collection deployment. provider
// reads process p's application state when probed.
func NewSnapshotCluster(n int, provider func(p int) Payload, opts ...Option) *SnapshotCluster {
	o := buildOptions(opts)
	c := &SnapshotCluster{opt: o}
	c.machines = make([]*snapshot.Snapshot, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		i := i
		c.machines[i] = snapshot.New("snap", core.ProcID(i), n, pif.WithCapacityBound(o.capacity))
		if provider != nil {
			c.machines[i].Provide = func() core.Payload { return provider(i).internal() }
		}
		stacks[i] = c.machines[i].Machines()
	}
	c.net = sim.New(stacks,
		sim.WithSeed(o.seed),
		sim.WithLossRate(o.lossRate),
		sim.WithCapacity(o.capacity),
	)
	return c
}

// CorruptEverything randomizes every variable and channel.
func (c *SnapshotCluster) CorruptEverything(seed uint64) {
	r := rng.New(seed)
	config.Corrupt(c.net, r,
		config.PIFSpecs("snap/pif", c.machines[0].PIF.FlagTop()), config.Options{})
}

// Collect runs a collection at process p and returns every process's
// state as reported for this probe (indexed by process).
func (c *SnapshotCluster) Collect(p int) ([]Payload, error) {
	machine := c.machines[p]
	requested := false
	err := c.net.RunUntil(func() bool {
		if !requested {
			requested = machine.Invoke(c.net.Env(core.ProcID(p)))
			return false
		}
		return machine.Done()
	}, c.opt.maxSteps)
	if err != nil {
		return nil, fmt.Errorf("%w: collect at %d", ErrBudget, p)
	}
	out := make([]Payload, len(machine.Views))
	for q, v := range machine.Views {
		out[q] = Payload{Tag: v.Tag, Num: v.Num}
	}
	return out, nil
}
