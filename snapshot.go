package snapstab

import (
	"context"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/snapshot"
)

// SnapshotCluster is a system running the snap-stabilizing global state
// collection protocol: any process can gather, in one computation, the
// application state of every process — and the gathered values are
// certified to have been produced for this very collection, never stale
// channel garbage.
type SnapshotCluster struct {
	clusterCore
	machines []*snapshot.Snapshot
}

// NewSnapshotCluster builds an n-process collection deployment. provider
// reads process p's application state when probed; on the concurrent
// substrates it runs on process goroutines and must be goroutine-safe.
func NewSnapshotCluster(n int, provider func(p int) Payload, opts ...Option) *SnapshotCluster {
	o := buildOptions(opts)
	o.requireCompleteTopology("NewSnapshotCluster")
	c := &SnapshotCluster{}
	c.machines = make([]*snapshot.Snapshot, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		i := i
		c.machines[i] = snapshot.New("snap", core.ProcID(i), n, capacityBound(o))
		if provider != nil {
			c.machines[i].Provide = func() core.Payload { return provider(i).internal() }
		}
		stacks[i] = c.machines[i].Machines()
	}
	c.init(o, stacks)
	return c
}

// CorruptEverything randomizes every variable and, on the deterministic
// substrate, every channel.
func (c *SnapshotCluster) CorruptEverything(seed uint64) {
	c.corrupt(rng.New(seed), config.PIFSpecs("snap/pif", c.machines[0].PIF.FlagTop()), config.Options{})
}

// CollectRequest is the handle of an asynchronous Collect.
type CollectRequest struct {
	*Request
	views []Payload
}

// Views returns every process's state as reported for this probe
// (indexed by process), valid after the request completed successfully
// and nil while it is still in flight.
func (r *CollectRequest) Views() []Payload {
	if !r.completed() {
		return nil
	}
	return r.views
}

// CollectAsync submits a collection request at process p and returns
// immediately.
func (c *SnapshotCluster) CollectAsync(p int) *CollectRequest {
	req := &CollectRequest{Request: c.newRequest()}
	var machine *snapshot.Snapshot
	if p >= 0 && p < len(c.machines) {
		machine = c.machines[p]
	}
	injected := false
	c.start(req.Request, p, "collect", func(env core.Env) bool {
		if !injected {
			injected = machine.Invoke(env)
			return false
		}
		if !machine.Done() {
			return false
		}
		req.views = make([]Payload, len(machine.Views))
		for q, v := range machine.Views {
			req.views[q] = Payload{Tag: v.Tag, Num: v.Num}
		}
		return true
	}, nil)
	return req
}

// Collect runs a collection at process p and returns every process's
// state as reported for this probe (indexed by process).
func (c *SnapshotCluster) Collect(p int) ([]Payload, error) {
	req := c.CollectAsync(p)
	if err := req.Wait(context.Background()); err != nil {
		return nil, err
	}
	return req.Views(), nil
}
