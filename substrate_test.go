package snapstab_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	snapstab "github.com/snapstab/snapstab"
)

// substrates lists the in-memory substrates every façade test should
// pass on unchanged. UDP has its own (slower, socket-binding) test.
func substrates() map[string]func() snapstab.Substrate {
	return map[string]func() snapstab.Substrate{
		"sim":     snapstab.Sim,
		"runtime": snapstab.Runtime,
	}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// TestFacadeAcrossSubstrates runs all five cluster types, from fully
// corrupted initial configurations, on every substrate: the same façade
// code must complete its requests correctly no matter the engine.
func TestFacadeAcrossSubstrates(t *testing.T) {
	t.Parallel()
	for name, sub := range substrates() {
		sub := sub
		t.Run(name, func(t *testing.T) {
			t.Parallel()

			t.Run("pif", func(t *testing.T) {
				t.Parallel()
				c := snapstab.NewPIFCluster(4, snapstab.WithSubstrate(sub()), snapstab.WithSeed(7))
				defer c.Close()
				c.CorruptEverything(99)
				req := c.BroadcastAsync(1, "fresh", 6)
				if err := req.Wait(testCtx(t)); err != nil {
					t.Fatal(err)
				}
				fb := req.Feedbacks()
				if len(fb) != 3 {
					t.Fatalf("got %d feedbacks, want 3", len(fb))
				}
				for _, f := range fb {
					if want := int64(6000 + f.From); f.Value.Num != want {
						t.Errorf("feedback from %d = %v, want Num %d (stale acknowledgment)", f.From, f.Value, want)
					}
				}
			})

			t.Run("idl", func(t *testing.T) {
				t.Parallel()
				c := snapstab.NewIDCluster([]int64{42, 7, 19}, snapstab.WithSubstrate(sub()))
				defer c.Close()
				c.CorruptEverything(4)
				min, table, err := c.Learn(2)
				if err != nil {
					t.Fatal(err)
				}
				if min != 7 {
					t.Fatalf("minID = %d, want 7", min)
				}
				for i, want := range []int64{42, 7, 19} {
					if table[i] != want {
						t.Fatalf("table = %v, want [42 7 19]", table)
					}
				}
			})

			t.Run("mutex", func(t *testing.T) {
				t.Parallel()
				c := snapstab.NewMutexCluster([]int64{5, 3, 9}, snapstab.WithSubstrate(sub()))
				defer c.Close()
				c.CorruptEverything(8)
				var counter atomic.Int64
				if err := c.AcquireAll([]int{0, 1, 2}, []func(){
					func() { counter.Add(1) },
					func() { counter.Add(1) },
					func() { counter.Add(1) },
				}); err != nil {
					t.Fatal(err)
				}
				if got := counter.Load(); got != 3 {
					t.Fatalf("counter = %d, want 3", got)
				}
				if v := c.Violations(); len(v) != 0 {
					t.Fatalf("violations: %v", v)
				}
			})

			t.Run("reset", func(t *testing.T) {
				t.Parallel()
				const n = 3
				var mu sync.Mutex
				wiped := make([][]int64, n)
				c := snapstab.NewResetCluster(n, func(p int, epoch int64) {
					mu.Lock()
					wiped[p] = append(wiped[p], epoch)
					mu.Unlock()
				}, snapstab.WithSubstrate(sub()))
				defer c.Close()
				c.CorruptEverything(3)
				req := c.ResetAsync(1)
				if err := req.Wait(testCtx(t)); err != nil {
					t.Fatal(err)
				}
				// Every process reinitialized under the decided epoch at
				// some point (a corrupted peer may have launched its own
				// concurrent reset, so other epochs can appear too).
				mu.Lock()
				defer mu.Unlock()
				for p := 0; p < n; p++ {
					found := false
					for _, e := range wiped[p] {
						if e == req.Epoch() {
							found = true
						}
					}
					if !found {
						t.Fatalf("process %d never reset under epoch %d (saw %v)", p, req.Epoch(), wiped[p])
					}
				}
			})

			t.Run("snapshot", func(t *testing.T) {
				t.Parallel()
				states := []int64{11, 22, 33}
				c := snapstab.NewSnapshotCluster(3, func(p int) snapstab.Payload {
					return snapstab.Payload{Tag: "state", Num: states[p]}
				}, snapstab.WithSubstrate(sub()))
				defer c.Close()
				c.CorruptEverything(9)
				views, err := c.Collect(1)
				if err != nil {
					t.Fatal(err)
				}
				for p, want := range states {
					if views[p].Num != want || views[p].Tag != "state" {
						t.Fatalf("view of %d = %v, want state(%d)", p, views[p], want)
					}
				}
			})
		})
	}
}

// TestConcurrentAcquireAsync issues a critical-section request from
// EVERY process of a corrupted cluster at once — the multi-initiator
// workload the blocking API could not express — and verifies all are
// served with zero mutual exclusion violations, on both substrates.
func TestConcurrentAcquireAsync(t *testing.T) {
	t.Parallel()
	for name, sub := range substrates() {
		sub := sub
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ids := []int64{31, 8, 59, 26}
			c := snapstab.NewMutexCluster(ids, snapstab.WithSubstrate(sub()), snapstab.WithSeed(13))
			defer c.Close()
			c.CorruptEverything(21)
			var inside, total atomic.Int64
			reqs := make([]*snapstab.Request, len(ids))
			for p := range ids {
				reqs[p] = c.AcquireAsync(p, func() {
					if inside.Add(1) != 1 {
						t.Error("two bodies inside the critical section")
					}
					total.Add(1)
					inside.Add(-1)
				})
			}
			ctx := testCtx(t)
			for p, req := range reqs {
				if err := req.Wait(ctx); err != nil {
					t.Fatalf("process %d: %v", p, err)
				}
			}
			if got := total.Load(); got != int64(len(ids)) {
				t.Fatalf("served %d bodies, want %d", got, len(ids))
			}
			if v := c.Violations(); len(v) != 0 {
				t.Fatalf("violations: %v", v)
			}
			if c.Entries() < len(ids) {
				t.Fatalf("entries = %d, want >= %d", c.Entries(), len(ids))
			}
		})
	}
}

// TestConcurrentBroadcastAsync has several initiators broadcast at once;
// each request must collect exactly the acknowledgments of ITS broadcast
// (the per-request feedback routing that replaced the racy callback
// swapping), on both substrates.
func TestConcurrentBroadcastAsync(t *testing.T) {
	t.Parallel()
	for name, sub := range substrates() {
		sub := sub
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const n = 4
			c := snapstab.NewPIFCluster(n, snapstab.WithSubstrate(sub()), snapstab.WithSeed(5))
			defer c.Close()
			c.CorruptEverything(17)
			reqs := make([]*snapstab.BroadcastRequest, n)
			for p := 0; p < n; p++ {
				reqs[p] = c.BroadcastAsync(p, "concurrent", int64(100+p))
			}
			ctx := testCtx(t)
			for p, req := range reqs {
				if err := req.Wait(ctx); err != nil {
					t.Fatalf("initiator %d: %v", p, err)
				}
				fb := req.Feedbacks()
				if len(fb) != n-1 {
					t.Fatalf("initiator %d: %d feedbacks, want %d", p, len(fb), n-1)
				}
				for _, f := range fb {
					if want := int64(100+p)*1000 + int64(f.From); f.Value.Num != want {
						t.Errorf("initiator %d: feedback %v from %d answers someone else's broadcast (want Num %d)",
							p, f.Value, f.From, want)
					}
				}
			}
		})
	}
}

// TestSerializedRequestsSameProcess pins the documented behavior for
// several asynchronous requests at ONE process, on both substrates:
// they serialize through the per-process gate, every one completes, and
// each collects its own feedback set. (Without the gate, the polling
// substrates can lose a request forever: another request's Invoke
// consumes the machine's decision window between two polls.)
func TestSerializedRequestsSameProcess(t *testing.T) {
	t.Parallel()
	for name, sub := range substrates() {
		sub := sub
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c := snapstab.NewPIFCluster(3, snapstab.WithSubstrate(sub()), snapstab.WithSeed(23))
			defer c.Close()
			const k = 5
			reqs := make([]*snapstab.BroadcastRequest, k)
			for i := range reqs {
				reqs[i] = c.BroadcastAsync(0, "burst", int64(i+1))
			}
			ctx := testCtx(t)
			for i, req := range reqs {
				if err := req.Wait(ctx); err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
				if len(req.Feedbacks()) != 2 {
					t.Fatalf("request %d: %d feedbacks, want 2", i, len(req.Feedbacks()))
				}
				for _, f := range req.Feedbacks() {
					if f.Value.Num/1000 != int64(i+1) {
						t.Errorf("request %d got feedback %v answering someone else's broadcast", i, f.Value)
					}
				}
			}
		})
	}
}

// TestUDPSubstrate completes a corrupted broadcast over real loopback
// sockets through the same façade code.
func TestUDPSubstrate(t *testing.T) {
	t.Parallel()
	c := snapstab.NewPIFCluster(3, snapstab.WithSubstrate(snapstab.UDP()), snapstab.WithSeed(11))
	defer c.Close()
	c.CorruptEverything(31)
	req := c.BroadcastAsync(0, "wire", 9)
	if err := req.Wait(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if len(req.Feedbacks()) != 2 {
		t.Fatalf("got %d feedbacks, want 2", len(req.Feedbacks()))
	}
	stats := c.TransportStats()
	if len(stats) != 3 {
		t.Fatalf("got %d transport stat rows, want 3", len(stats))
	}
	for i, s := range stats {
		if s.Sends == 0 {
			t.Errorf("node %d sent no datagrams", i)
		}
		if s.Addr == "" {
			t.Errorf("node %d has no address", i)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestTCPSubstrate completes a corrupted broadcast over persistent
// loopback TCP connections through the same façade code, and checks the
// transport exposes per-link throughput counters.
func TestTCPSubstrate(t *testing.T) {
	t.Parallel()
	c := snapstab.NewPIFCluster(3, snapstab.WithSubstrate(snapstab.TCP()), snapstab.WithSeed(11))
	defer c.Close()
	c.CorruptEverything(31)
	req := c.BroadcastAsync(0, "wire", 9)
	if err := req.Wait(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if len(req.Feedbacks()) != 2 {
		t.Fatalf("got %d feedbacks, want 2", len(req.Feedbacks()))
	}
	stats := c.TransportStats()
	if len(stats) != 3 {
		t.Fatalf("got %d transport stat rows, want 3", len(stats))
	}
	for i, s := range stats {
		if s.Sends == 0 {
			t.Errorf("node %d sent no frames", i)
		}
		if s.Addr == "" {
			t.Errorf("node %d has no address", i)
		}
		var linkTraffic int64
		for _, l := range s.Links {
			linkTraffic += l.Sent + l.Received
		}
		if linkTraffic == 0 {
			t.Errorf("node %d has no per-link traffic: %+v", i, s.Links)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestTCPHostFleet assembles a fleet of single-process TCPHost
// substrates inside one test — the shape a multi-daemon deployment has
// across machines — and completes a broadcast initiated at one host.
func TestTCPHostFleet(t *testing.T) {
	t.Parallel()
	const n = 3
	// Reserve loopback ports for the fleet by binding and releasing.
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	clusters := make([]*snapstab.PIFCluster, n)
	for i := 0; i < n; i++ {
		clusters[i] = snapstab.NewPIFCluster(n,
			snapstab.WithSubstrate(snapstab.TCPHost(snapstab.TCPFleet{Self: i, Listen: addrs[i], Peers: addrs})),
			snapstab.WithSeed(21))
		defer clusters[i].Close()
		clusters[i].CorruptEverything(33)
	}
	req := clusters[0].BroadcastAsync(0, "fleet", 5)
	if err := req.Wait(testCtx(t)); err != nil {
		t.Fatal(err)
	}
	if len(req.Feedbacks()) != 2 {
		t.Fatalf("got %d feedbacks, want 2", len(req.Feedbacks()))
	}
	// A request at a process another host owns fails loudly, not silently.
	wrong := clusters[0].BroadcastAsync(1, "misplaced", 6)
	if err := wrong.Wait(testCtx(t)); !errors.Is(err, snapstab.ErrRemoteProcess) {
		t.Fatalf("broadcast at a remote process: got %v, want ErrRemoteProcess", err)
	}
}

// TestAcquireAllRejectsDuplicates pins the satellite fix: a duplicate
// initiator is an error, not a silent spin.
func TestAcquireAllRejectsDuplicates(t *testing.T) {
	t.Parallel()
	c := snapstab.NewMutexCluster([]int64{2, 8, 5})
	defer c.Close()
	err := c.AcquireAll([]int{0, 1, 0}, nil)
	if err == nil {
		t.Fatal("AcquireAll accepted a duplicate initiator")
	}
	if err := c.AcquireAll([]int{0, 3}, nil); err == nil {
		t.Fatal("AcquireAll accepted an out-of-range initiator")
	}
	if err := c.AcquireAll([]int{0, 1}, make([]func(), 1)); err == nil {
		t.Fatal("AcquireAll accepted mismatched bodies")
	}
	// The cluster is still usable after the rejections.
	if err := c.AcquireAll([]int{0, 1, 2}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCloseAbortsRequests verifies Close is idempotent on every cluster
// type and fails in-flight and future requests with ErrClosed.
func TestCloseAbortsRequests(t *testing.T) {
	t.Parallel()
	for name, sub := range substrates() {
		sub := sub
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			// A tiny cluster that will never finish a request by itself:
			// close must abort it.
			c := snapstab.NewPIFCluster(2, snapstab.WithSubstrate(sub()), snapstab.WithStepBudget(1<<40))
			// Corrupt so heavily budgeted requests still run; then close
			// mid-flight.
			req := c.BroadcastAsync(0, "doomed", 1)
			time.Sleep(time.Millisecond)
			if err := c.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("second close: %v", err)
			}
			err := req.Wait(testCtx(t))
			// The request may have legitimately finished before the close
			// landed; otherwise it must report ErrClosed.
			if err != nil && !errors.Is(err, snapstab.ErrClosed) {
				t.Fatalf("got %v, want nil or ErrClosed", err)
			}
			after := c.BroadcastAsync(0, "late", 2)
			if err := after.Wait(testCtx(t)); !errors.Is(err, snapstab.ErrClosed) {
				t.Fatalf("request after close: got %v, want ErrClosed", err)
			}
		})
	}
}

// TestRequestWaitContext verifies a cancelled Wait abandons only the
// wait: the request completes on its own and can be waited on again.
func TestRequestWaitContext(t *testing.T) {
	t.Parallel()
	c := snapstab.NewPIFCluster(3, snapstab.WithSeed(3))
	defer c.Close()
	req := c.BroadcastAsync(0, "patient", 4)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := req.Wait(cancelled); !errors.Is(err, context.Canceled) && err != nil {
		t.Fatalf("cancelled wait: got %v", err)
	}
	if err := req.Wait(testCtx(t)); err != nil {
		t.Fatalf("second wait: %v", err)
	}
	if req.Err() != nil {
		t.Fatalf("Err after success: %v", req.Err())
	}
	if len(req.Feedbacks()) != 2 {
		t.Fatalf("feedbacks: %v", req.Feedbacks())
	}
}

// TestRequestDoneSelect exercises the select-friendly completion form.
func TestRequestDoneSelect(t *testing.T) {
	t.Parallel()
	c := snapstab.NewIDCluster([]int64{9, 1, 4}, snapstab.WithSeed(6))
	defer c.Close()
	req := c.LearnAsync(0)
	select {
	case <-req.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("request never completed")
	}
	if req.Err() != nil {
		t.Fatal(req.Err())
	}
	if req.MinID() != 1 {
		t.Fatalf("minID = %d, want 1", req.MinID())
	}
}

// TestInvalidInitiator verifies out-of-range initiators fail cleanly
// instead of panicking.
func TestInvalidInitiator(t *testing.T) {
	t.Parallel()
	c := snapstab.NewPIFCluster(2)
	defer c.Close()
	if _, err := c.Broadcast(7, "x", 1); err == nil {
		t.Fatal("broadcast at process 7 of a 2-process cluster succeeded")
	}
	if _, err := c.Broadcast(-1, "x", 1); err == nil {
		t.Fatal("broadcast at process -1 succeeded")
	}
	req := c.BroadcastAsync(7, "x", 1)
	if req.Err() == nil {
		t.Fatal("async request at invalid process reports no error")
	}
	if err := fmt.Sprintf("%v", req.Err()); err == "" {
		t.Fatal("empty error text")
	}
}
