package snapstab_test

import (
	"errors"
	"sync/atomic"
	"testing"

	snapstab "github.com/snapstab/snapstab"
)

func TestPIFClusterCleanBroadcast(t *testing.T) {
	t.Parallel()
	c := snapstab.NewPIFCluster(4, snapstab.WithSeed(3))
	defer c.Close()
	fb, err := c.Broadcast(0, "hello", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) != 3 {
		t.Fatalf("got %d feedbacks, want 3", len(fb))
	}
	for _, f := range fb {
		if want := int64(7000 + f.From); f.Value.Num != want {
			t.Errorf("feedback from %d = %v, want Num %d", f.From, f.Value, want)
		}
	}
}

func TestPIFClusterCorruptedBroadcast(t *testing.T) {
	t.Parallel()
	for seed := uint64(1); seed <= 20; seed++ {
		c := snapstab.NewPIFCluster(3, snapstab.WithSeed(seed), snapstab.WithLossRate(0.2))
		defer c.Close()
		c.CorruptEverything(seed * 13)
		fb, err := c.Broadcast(1, "fresh", int64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(fb) != 2 {
			t.Fatalf("seed %d: %d feedbacks, want 2", seed, len(fb))
		}
		for _, f := range fb {
			if want := int64(seed)*1000 + int64(f.From); f.Value.Num != want {
				t.Errorf("seed %d: stale feedback %v from %d", seed, f.Value, f.From)
			}
		}
	}
}

func TestPIFClusterCustomReceiver(t *testing.T) {
	t.Parallel()
	c := snapstab.NewPIFCluster(2, snapstab.WithReceiver(func(proc, from int, b snapstab.Payload) snapstab.Payload {
		return snapstab.Payload{Tag: "custom", Num: b.Num + int64(proc*100)}
	}))
	defer c.Close()
	fb, err := c.Broadcast(0, "q", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) != 1 || fb[0].Value.Tag != "custom" || fb[0].Value.Num != 105 {
		t.Fatalf("feedback = %v, want custom(105)", fb)
	}
}

func TestPIFClusterRepeatedBroadcasts(t *testing.T) {
	t.Parallel()
	c := snapstab.NewPIFCluster(3, snapstab.WithSeed(11))
	defer c.Close()
	for i := int64(0); i < 5; i++ {
		if _, err := c.Broadcast(int(i)%3, "round", i); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
}

func TestPIFClusterBudgetError(t *testing.T) {
	t.Parallel()
	c := snapstab.NewPIFCluster(2, snapstab.WithStepBudget(3))
	defer c.Close()
	_, err := c.Broadcast(0, "x", 1)
	if !errors.Is(err, snapstab.ErrBudget) {
		t.Fatalf("got %v, want ErrBudget", err)
	}
}

func TestPIFClusterCapacityOption(t *testing.T) {
	t.Parallel()
	c := snapstab.NewPIFCluster(3, snapstab.WithCapacity(2), snapstab.WithSeed(5))
	defer c.Close()
	c.CorruptEverything(99)
	if _, err := c.Broadcast(0, "m", 1); err != nil {
		t.Fatal(err)
	}
}

func TestIDClusterLearn(t *testing.T) {
	t.Parallel()
	c := snapstab.NewIDCluster([]int64{42, 7, 19}, snapstab.WithSeed(9))
	defer c.Close()
	c.CorruptEverything(4)
	min, table, err := c.Learn(0)
	if err != nil {
		t.Fatal(err)
	}
	if min != 7 {
		t.Fatalf("minID = %d, want 7", min)
	}
	want := []int64{42, 7, 19}
	for i, id := range want {
		if table[i] != id {
			t.Fatalf("table = %v, want %v", table, want)
		}
	}
}

func TestMutexClusterSerializesCounter(t *testing.T) {
	t.Parallel()
	ids := []int64{5, 3, 9}
	c := snapstab.NewMutexCluster(ids, snapstab.WithSeed(21))
	defer c.Close()
	c.CorruptEverything(8)
	var counter atomic.Int64
	procs := []int{0, 1, 2}
	bodies := []func(){
		func() { counter.Add(1) },
		func() { counter.Add(1) },
		func() { counter.Add(1) },
	}
	if err := c.AcquireAll(procs, bodies); err != nil {
		t.Fatal(err)
	}
	if got := counter.Load(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if c.Entries() < 3 {
		t.Fatalf("entries = %d, want >= 3", c.Entries())
	}
}

func TestMutexClusterSequentialAcquires(t *testing.T) {
	t.Parallel()
	c := snapstab.NewMutexCluster([]int64{2, 8}, snapstab.WithSeed(33))
	defer c.Close()
	for round := 0; round < 3; round++ {
		ran := false
		if err := c.Acquire(round%2, func() { ran = true }); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !ran {
			t.Fatalf("round %d: body did not run", round)
		}
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestDeterministicReplayAcrossClusters(t *testing.T) {
	t.Parallel()
	run := func() int {
		c := snapstab.NewPIFCluster(3, snapstab.WithSeed(77), snapstab.WithLossRate(0.1))
		defer c.Close()
		c.CorruptEverything(5)
		if _, err := c.Broadcast(0, "m", 1); err != nil {
			t.Fatal(err)
		}
		return c.Stats().Steps + c.Stats().Deliveries
	}
	if run() != run() {
		t.Fatal("identical clusters diverged")
	}
}

func TestResetClusterWipesEverywhere(t *testing.T) {
	t.Parallel()
	const n = 3
	var wiped [n][]int64
	c := snapstab.NewResetCluster(n, func(p int, epoch int64) {
		wiped[p] = append(wiped[p], epoch)
	}, snapstab.WithSeed(41))
	defer c.Close()
	c.CorruptEverything(3)
	epoch, err := c.Reset(1)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		found := false
		for _, e := range wiped[p] {
			if e == epoch {
				found = true
			}
		}
		if !found {
			t.Fatalf("process %d never reset under epoch %d (saw %v)", p, epoch, wiped[p])
		}
	}
}

func TestResetClusterRepeats(t *testing.T) {
	t.Parallel()
	c := snapstab.NewResetCluster(2, nil, snapstab.WithSeed(51))
	defer c.Close()
	var last int64
	for i := 0; i < 3; i++ {
		epoch, err := c.Reset(0)
		if err != nil {
			t.Fatal(err)
		}
		if epoch <= last {
			t.Fatalf("epoch did not advance: %d -> %d", last, epoch)
		}
		last = epoch
	}
}

func TestSnapshotClusterCollects(t *testing.T) {
	t.Parallel()
	states := []int64{11, 22, 33}
	c := snapstab.NewSnapshotCluster(3, func(p int) snapstab.Payload {
		return snapstab.Payload{Tag: "state", Num: states[p]}
	}, snapstab.WithSeed(61))
	defer c.Close()
	c.CorruptEverything(9)
	views, err := c.Collect(1)
	if err != nil {
		t.Fatal(err)
	}
	for p, want := range states {
		if views[p].Num != want || views[p].Tag != "state" {
			t.Fatalf("view of %d = %v, want state(%d)", p, views[p], want)
		}
	}
}

func TestSnapshotClusterSeesUpdates(t *testing.T) {
	t.Parallel()
	val := int64(1)
	c := snapstab.NewSnapshotCluster(2, func(int) snapstab.Payload {
		return snapstab.Payload{Num: val}
	}, snapstab.WithSeed(71))
	defer c.Close()
	v1, err := c.Collect(0)
	if err != nil {
		t.Fatal(err)
	}
	val = 2
	v2, err := c.Collect(0)
	if err != nil {
		t.Fatal(err)
	}
	if v1[1].Num != 1 || v2[1].Num != 2 {
		t.Fatalf("views across updates: %v then %v", v1[1], v2[1])
	}
}
