package snapstab

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/fwd"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/spec"
	"github.com/snapstab/snapstab/internal/wire"
)

// ForwardingCluster is a system running the snap-stabilizing
// message-forwarding protocol (after Cournier–Dubois–Villain) over a
// tree topology on the selected substrate, carrying application values
// of type T through the codec's opaque bodies. Every item submitted
// AFTER an arbitrary initial configuration is delivered to its
// destination exactly once — buffers, flags, and channels may initially
// hold arbitrary garbage, and the protocol still never loses, never
// duplicates, and never misdelivers a submitted item.
//
//	topo := snapstab.RandomTree(8, 7)
//	c := snapstab.NewForwardingCluster(8, snapstab.JSON[Order](), snapstab.WithTopology(topo))
//	defer c.Close()
//	c.CorruptEverything(42)
//	err := c.Send(0, 5, Order{SKU: "widget", Qty: 3}) // hop-by-hop along the tree path
//
// Items fabricated by the initial configuration may also surface at
// their apparent destination — the protocol deliberately does not throw
// away routable items it cannot prove fake — but they are delivered with
// a non-nil Delivery.Err and never count against the specification.
type ForwardingCluster[T any] struct {
	clusterCore
	codec    Codec[T]
	machines []*fwd.Forwarder

	// seq numbers every submitted item, starting at fwd.SeqFloor so
	// fabricated items (always below it) can never impersonate one.
	seq atomic.Int64

	chkMu   sync.Mutex // serializes checker access across process goroutines
	checker *spec.ForwardChecker

	recvMu sync.Mutex
	recv   [][]Delivery[T]
}

// Delivery is one item handed to the application at its destination.
type Delivery[T any] struct {
	// From is the item's source process.
	From int
	// Value is the decoded body; meaningful only when Err is nil.
	Value T
	// Err marks a delivery outside the typed contract: an item fabricated
	// by the arbitrary initial configuration, or a body the codec
	// rejects. The application must never receive a fabricated zero T
	// with a nil Err.
	Err error
}

// fwdInstance is the protocol instance ID of the forwarding layer.
const fwdInstance = "fwd"

// NewForwardingCluster builds an n-process forwarding deployment (n >= 2)
// carrying T-typed items through codec. The topology must be a tree —
// the protocol's routing and its no-loss argument rely on unique paths;
// without WithTopology the cluster defaults to Line(n), the linear-chain
// variant of the protocol.
func NewForwardingCluster[T any](n int, codec Codec[T], opts ...Option) *ForwardingCluster[T] {
	if codec == nil {
		panic("snapstab: NewForwardingCluster requires a codec")
	}
	o := buildOptions(opts)
	if o.topology == nil {
		o.topology = Line(n).t
	}
	topo := o.topology
	if topo.N() != n {
		panic(fmt.Sprintf("snapstab: NewForwardingCluster over a %d-process topology, want %d", topo.N(), n))
	}
	if !topo.IsTree() {
		panic(fmt.Sprintf("snapstab: NewForwardingCluster requires a tree topology; got %d edges over %d processes",
			topo.EdgeCount(), n))
	}
	c := &ForwardingCluster[T]{codec: codec, checker: spec.NewForwardChecker()}
	c.seq.Store(fwd.SeqFloor)
	hops := topo.NextHops()
	c.machines = make([]*fwd.Forwarder, n)
	c.recv = make([][]Delivery[T], n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		i := i
		cb := fwd.Callbacks{
			OnDeliver: func(_ core.Env, _ core.ProcID, it fwd.Item) { c.record(i, it) },
		}
		c.machines[i] = fwd.New(fwdInstance, core.ProcID(i), n, topo.Neighbors(core.ProcID(i)), hops[i], cb,
			fwd.WithCapacityBound(o.substrate.machineCap(o)))
		stacks[i] = core.Stack{c.machines[i]}
	}
	// Events arrive concurrently from every process goroutine on the
	// concurrent substrates; the checker itself is not goroutine-safe.
	locked := core.ObserverFunc(func(e core.Event) {
		c.chkMu.Lock()
		c.checker.OnEvent(e)
		c.chkMu.Unlock()
	})
	c.init(o, stacks, locked)
	return c
}

// record appends a delivery at process p, decoding through the codec.
func (c *ForwardingCluster[T]) record(p int, it fwd.Item) {
	d := Delivery[T]{From: int(it.Src)}
	if it.Seq < fwd.SeqFloor {
		d.Err = fmt.Errorf("snapstab: item p%d->p%d#%d was fabricated by the initial configuration", it.Src, it.Dst, it.Seq)
	} else if v, err := c.codec.Unmarshal(it.Body); err != nil {
		d.Err = fmt.Errorf("snapstab: undecodable item body from %d: %w", it.Src, err)
	} else {
		d.Value = v
	}
	c.recvMu.Lock()
	c.recv[p] = append(c.recv[p], d)
	c.recvMu.Unlock()
}

// Deliveries returns the items delivered at process p so far, in
// delivery order. Safe to call while requests are in flight.
func (c *ForwardingCluster[T]) Deliveries(p int) []Delivery[T] {
	if p < 0 || p >= len(c.recv) {
		return nil
	}
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	return append([]Delivery[T](nil), c.recv[p]...)
}

// delivered reads the armed key's verdict under the checker lock.
func (c *ForwardingCluster[T]) delivered(k spec.FwdKey) bool {
	c.chkMu.Lock()
	defer c.chkMu.Unlock()
	return c.checker.Delivered(k)
}

// ForwardRequest is the handle of an asynchronous Send.
type ForwardRequest struct {
	*Request
	key spec.FwdKey
}

// Key identifies the sent item ("p0->p5#65536") in logs and reports.
func (r *ForwardRequest) Key() string { return r.key.String() }

// SendAsync submits value v at process p for delivery at process dst and
// returns immediately. The item's key is armed on the cluster's
// forwarding spec checker before it enters the network, so the
// no-loss/no-duplication verdict (SpecReport) covers it on every
// substrate. The request completes when the item reaches dst.
func (c *ForwardingCluster[T]) SendAsync(p, dst int, v T) *ForwardRequest {
	req := &ForwardRequest{Request: c.newRequest()}
	n := c.N()
	if dst < 0 || dst >= n {
		req.err = fmt.Errorf("%w: send to %d (cluster has %d)", ErrInvalidProcess, dst, n)
		close(req.done)
		return req
	}
	if p < 0 || p >= n {
		// start fails the request with the uniform error; nothing is armed.
		c.start(req.Request, p, "send", nil, nil)
		return req
	}
	body, err := c.codec.Marshal(v)
	if err != nil {
		req.err = fmt.Errorf("snapstab: marshal item body: %w", err)
		close(req.done)
		return req
	}
	if len(body) > wire.MaxBlobLen {
		req.err = fmt.Errorf("snapstab: marshaled item of %d bytes exceeds the %d-byte wire limit", len(body), wire.MaxBlobLen)
		close(req.done)
		return req
	}
	it := fwd.Item{Src: core.ProcID(p), Dst: core.ProcID(dst), Seq: c.seq.Add(1) - 1, Body: body}
	req.key = spec.FwdKey{Src: it.Src, Dst: it.Dst, Seq: it.Seq}
	c.chkMu.Lock()
	c.checker.Arm(req.key)
	c.chkMu.Unlock()
	machine := c.machines[p]
	// On a substrate hosting a single process of a multi-daemon fleet the
	// destination's delivery event fires in another daemon, where this
	// checker cannot see it. There the request completes at hand-off —
	// the next hop has accepted the item, and the protocol's no-loss
	// guarantee carries it to dst; delivery confirmation lives at the
	// destination daemon (Deliveries at dst).
	handoff := false
	if h, ok := c.sub.(interface{ Self() core.ProcID }); ok && int(h.Self()) == p && dst != p {
		handoff = true
	}
	injected := false
	c.start(req.Request, p, "send", func(env core.Env) bool {
		if !injected {
			machine.Submit(env, it)
			injected = true
		}
		if handoff {
			return !machine.Holds(it)
		}
		return c.delivered(req.key)
	}, nil)
	return req
}

// Send submits value v at process p and runs the cluster until the item
// is delivered at process dst.
func (c *ForwardingCluster[T]) Send(p, dst int, v T) error {
	req := c.SendAsync(p, dst, v)
	return req.Wait(context.Background())
}

// ForwardReport is the forwarding specification's verdict so far: every
// observed violation of the no-loss, no-duplication, and
// correct-destination clauses across all armed items. Unlike the PIF
// spec report it is available on every substrate — the checker rides the
// event stream behind a lock.
type ForwardReport struct {
	Violations []string
}

// SpecReport snapshots the specification verdict.
func (c *ForwardingCluster[T]) SpecReport() ForwardReport {
	c.chkMu.Lock()
	defer c.chkMu.Unlock()
	var r ForwardReport
	for _, v := range c.checker.Violations() {
		r.Violations = append(r.Violations, v.String())
	}
	return r
}

// CorruptEverything drives the cluster into an arbitrary initial
// configuration: every forwarding variable randomized and, on the
// deterministic substrate, every channel filled with well-formed FWD
// garbage — fabricated items the protocol must route or sanitize without
// ever touching a submitted one.
func (c *ForwardingCluster[T]) CorruptEverything(seed uint64) {
	n := c.N()
	top := c.machines[0].FlagTop()
	specs := []config.InstanceSpec{{
		Instance: fwdInstance,
		FlagTop:  top,
		Generator: func(r *rng.Source) core.Message {
			return fwd.GarbageMessage(r, fwdInstance, top, n)
		},
	}}
	c.corrupt(rng.New(seed), specs, config.Options{})
}
