package snapstab_test

import (
	"fmt"
	"testing"

	snapstab "github.com/snapstab/snapstab"
	"github.com/snapstab/snapstab/internal/adversary"
	"github.com/snapstab/snapstab/internal/check"
	"github.com/snapstab/snapstab/internal/experiment"
)

// The benchmarks below mirror the experiment index of DESIGN.md §6: one
// benchmark per table/figure (BenchmarkE1..BenchmarkE10 regenerate the
// artifact at smoke scale and report domain-specific metrics), plus
// end-to-end protocol benchmarks on the façade.
//
// Regenerate the full-scale tables with:
//
//	go run ./cmd/snapbench

func benchExperiment(b *testing.B, id string) {
	e, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := experiment.Config{Quick: true, Trials: 5, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// BenchmarkExperimentParallelism measures the wall-clock effect of the
// trial-runner worker pool on a trial-heavy experiment. Throughput must
// improve with parallelism while the tables stay byte-identical (pinned by
// TestParallelRunnerDeterminism in internal/experiment).
func BenchmarkExperimentParallelism(b *testing.B) {
	e, ok := experiment.ByID("E3")
	if !ok {
		b.Fatal("E3 not registered")
	}
	for _, par := range []int{1, 2, 4, 0} { // 0 = GOMAXPROCS
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			cfg := experiment.Config{Quick: true, Trials: 32, Seed: 1, Parallelism: par}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tables := e.Run(cfg); len(tables) == 0 {
					b.Fatal("no tables produced")
				}
			}
		})
	}
}

func BenchmarkE1WorstCase(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkE2Impossibility(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3PIF(b *testing.B)           { benchExperiment(b, "E3") }
func BenchmarkE4Flush(b *testing.B)         { benchExperiment(b, "E4") }
func BenchmarkE5IDL(b *testing.B)           { benchExperiment(b, "E5") }
func BenchmarkE6Mutex(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7Complexity(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE8SelfVsSnap(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9FlagAblation(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10Capacity(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11Crash(b *testing.B)        { benchExperiment(b, "E11") }

// BenchmarkBroadcast measures one complete snap-stabilizing broadcast
// (request to decision) on a clean cluster, per n.
func BenchmarkBroadcast(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(sizeName(n), func(b *testing.B) {
			c := snapstab.NewPIFCluster(n, snapstab.WithSeed(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Broadcast(0, "m", int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBroadcastCorrupted measures a broadcast including full
// corruption of the cluster beforehand.
func BenchmarkBroadcastCorrupted(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := snapstab.NewPIFCluster(n, snapstab.WithSeed(uint64(i+1)))
				c.CorruptEverything(uint64(i))
				if _, err := c.Broadcast(0, "m", int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMutexAcquire measures one critical-section acquisition cycle.
func BenchmarkMutexAcquire(b *testing.B) {
	for _, n := range []int{2, 3, 5} {
		b.Run(sizeName(n), func(b *testing.B) {
			ids := make([]int64, n)
			for i := range ids {
				ids[i] = int64(i + 1)
			}
			c := snapstab.NewMutexCluster(ids, snapstab.WithSeed(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Acquire(i%n, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLearnIDs measures one IDs-Learning computation.
func BenchmarkLearnIDs(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(sizeName(n), func(b *testing.B) {
			ids := make([]int64, n)
			for i := range ids {
				ids[i] = int64(i*7 + 1)
			}
			c := snapstab.NewIDCluster(ids, snapstab.WithSeed(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.Learn(i % n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdversaryReplay measures the Theorem 1 record+replay cycle.
func BenchmarkAdversaryReplay(b *testing.B) {
	rec, err := adversary.Record(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := adversary.Replay(rec, 1, 0, true)
		if !out.Violation() {
			b.Fatal("attack failed")
		}
	}
}

// BenchmarkModelCheckerAblated measures the exhaustive safety analysis of
// the FlagTop=2 ablation (the small domain, suitable for per-iteration
// timing; the full domain runs in cmd/snapcheck).
func BenchmarkModelCheckerAblated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := check.Safety(check.Options{FlagTop: 2})
		if err != nil {
			b.Fatal(err)
		}
		if res.Violation == nil {
			b.Fatal("ablated domain unexpectedly safe")
		}
	}
}

func sizeName(n int) string { return fmt.Sprintf("n=%d", n) }

// Example demonstrates the one-call broadcast API.
func Example() {
	cluster := snapstab.NewPIFCluster(3, snapstab.WithSeed(1))
	cluster.CorruptEverything(42)
	fb, err := cluster.Broadcast(0, "ping", 1)
	if err != nil {
		panic(err)
	}
	for _, f := range fb {
		_ = f // every peer's acknowledgment of THIS broadcast
	}
}
