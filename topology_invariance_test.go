package snapstab

import (
	"fmt"
	"testing"
)

// This file pins the topology layer's compatibility contract: a cluster
// configured with an explicit Complete(n) topology executes EXACTLY the
// execution of a cluster with no topology at all (the pre-topology code
// path). On the deterministic substrate "exactly" is byte-identical —
// same final configuration hash, same scheduler statistics, same
// feedback values. On the concurrent substrates, where interleaving is
// real, the contract is functional: same results, clean spec.

// driveWorkload runs a fixed broadcast matrix and returns a canonical
// transcript of everything request-visible: per-broadcast feedback sets
// and the spec verdict.
func driveWorkload(t *testing.T, c *PIFCluster, n int) string {
	t.Helper()
	var out []byte
	for round := 0; round < 3; round++ {
		for p := 0; p < n; p++ {
			fb, err := c.Broadcast(p, "inv", int64(round*100+p))
			if err != nil {
				t.Fatalf("broadcast round %d from %d: %v", round, p, err)
			}
			out = append(out, fmt.Sprintf("r%d p%d:", round, p)...)
			for _, f := range fb {
				out = append(out, fmt.Sprintf(" %d=%s/%d", f.From, f.Value.Tag, f.Value.Num)...)
			}
			out = append(out, '\n')
		}
	}
	rep := c.SpecReport()
	out = append(out, fmt.Sprintf("spec started=%v decided=%v valueChecked=%v violations=%v\n",
		rep.Started, rep.Decided, rep.ValueChecked, rep.Violations)...)
	return string(out)
}

func TestCompleteTopologyByteIdenticalSim(t *testing.T) {
	t.Parallel()
	const n = 4
	build := func(extra ...Option) *PIFCluster {
		opts := append([]Option{WithSeed(7)}, extra...)
		return NewPIFCluster(n, opts...)
	}

	legacy := build()
	defer legacy.Close()
	explicit := build(WithTopology(Complete(n)))
	defer explicit.Close()

	legacy.CorruptEverything(99)
	explicit.CorruptEverything(99)

	legacyOut := driveWorkload(t, legacy, n)
	explicitOut := driveWorkload(t, explicit, n)
	if legacyOut != explicitOut {
		t.Errorf("request transcripts diverge:\n--- nil topology ---\n%s--- Complete(%d) ---\n%s",
			legacyOut, n, explicitOut)
	}

	// The strong claim: the full global configuration — every machine's
	// snapshot plus every channel's contents — is byte-identical, and the
	// scheduler took the exact same steps to get there.
	var legacyHash, explicitHash string
	legacy.simNet.Sync(func() { legacyHash = legacy.simNet.ConfigHash() })
	explicit.simNet.Sync(func() { explicitHash = explicit.simNet.ConfigHash() })
	if legacyHash != explicitHash {
		t.Error("final configurations diverge between nil topology and explicit Complete(n)")
	}
	legacyStats := fmt.Sprintf("%+v", legacy.Stats())
	explicitStats := fmt.Sprintf("%+v", explicit.Stats())
	if legacyStats != explicitStats {
		t.Errorf("scheduler statistics diverge:\nnil topology: %s\nComplete(%d): %s",
			legacyStats, n, explicitStats)
	}
}

func TestCompleteTopologyFunctionalConcurrent(t *testing.T) {
	t.Parallel()
	const n = 3
	for _, sub := range []struct {
		name string
		s    Substrate
	}{
		{"runtime", Runtime()},
		{"udp", UDP()},
	} {
		sub := sub
		t.Run(sub.name, func(t *testing.T) {
			t.Parallel()
			c := NewPIFCluster(n, WithSubstrate(sub.s), WithSeed(5), WithTopology(Complete(n)))
			defer c.Close()
			c.CorruptEverything(17)
			for p := 0; p < n; p++ {
				fb, err := c.Broadcast(p, "inv", int64(p))
				if err != nil {
					t.Fatalf("broadcast from %d: %v", p, err)
				}
				if len(fb) != n-1 {
					t.Fatalf("broadcast from %d: %d feedbacks, want %d", p, len(fb), n-1)
				}
			}
		})
	}
}

// TestCompleteTopologyInvarianceOtherClusters extends the byte-identity
// pin to the other complete-graph façades: same seed, same corruption,
// same workload, compared final configuration and stats.
func TestCompleteTopologyInvarianceOtherClusters(t *testing.T) {
	t.Parallel()
	ids := []int64{40, 10, 30, 20}

	t.Run("id", func(t *testing.T) {
		t.Parallel()
		run := func(extra ...Option) (string, string) {
			opts := append([]Option{WithSeed(11)}, extra...)
			c := NewIDCluster(ids, opts...)
			defer c.Close()
			c.CorruptEverything(3)
			var out []byte
			for p := range ids {
				min, table, err := c.Learn(p)
				if err != nil {
					t.Fatalf("learn at %d: %v", p, err)
				}
				out = append(out, fmt.Sprintf("p%d min=%d table=%v\n", p, min, table)...)
			}
			var hash string
			c.simNet.Sync(func() { hash = c.simNet.ConfigHash() })
			return string(out), hash
		}
		lOut, lHash := run()
		eOut, eHash := run(WithTopology(Complete(len(ids))))
		if lOut != eOut {
			t.Errorf("ID cluster transcripts diverge:\n%s\nvs\n%s", lOut, eOut)
		}
		if lHash != eHash {
			t.Error("ID cluster final configurations diverge")
		}
	})

	t.Run("mutex", func(t *testing.T) {
		t.Parallel()
		run := func(extra ...Option) (int, string) {
			opts := append([]Option{WithSeed(13)}, extra...)
			c := NewMutexCluster(ids, opts...)
			defer c.Close()
			c.CorruptEverything(29)
			for p := range ids {
				if err := c.Acquire(p, func() {}); err != nil {
					t.Fatalf("acquire at %d: %v", p, err)
				}
			}
			if v := c.Violations(); len(v) != 0 {
				t.Fatalf("mutex violations: %v", v)
			}
			var hash string
			c.simNet.Sync(func() { hash = c.simNet.ConfigHash() })
			return c.Entries(), hash
		}
		lEntries, lHash := run()
		eEntries, eHash := run(WithTopology(Complete(len(ids))))
		if lEntries != eEntries {
			t.Errorf("mutex entry counts diverge: %d vs %d", lEntries, eEntries)
		}
		if lHash != eHash {
			t.Error("mutex cluster final configurations diverge")
		}
	})
}

// TestSparseTopologyRejectedByCompleteClusters pins the gate: the
// complete-graph protocols refuse to run on a graph they would route
// incorrectly over, at construction time.
func TestSparseTopologyRejectedByCompleteClusters(t *testing.T) {
	t.Parallel()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: constructor accepted a sparse topology", name)
			}
		}()
		f()
	}
	ids := []int64{1, 2, 3, 4}
	mustPanic("id", func() { NewIDCluster(ids, WithTopology(Ring(4))) })
	mustPanic("mutex", func() { NewMutexCluster(ids, WithTopology(Ring(4))) })
	mustPanic("reset", func() { NewResetCluster(4, func(int, int64) {}, WithTopology(Ring(4))) })
	mustPanic("snapshot", func() { NewSnapshotCluster(4, func(int) Payload { return Payload{} }, WithTopology(Ring(4))) })
}
