package snapstab

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// fwdCtx bounds a forwarding request on the concurrent substrates.
func fwdCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// checkForwardRun drives a full send matrix over an already-corrupted
// cluster and asserts the forwarding specification end to end: every
// send completes, every genuine delivery carries the right value to the
// right process, fabricated deliveries are flagged with Err, and the
// armed spec checker reports no violation.
func checkForwardRun(t *testing.T, c *ForwardingCluster[string], n int) {
	t.Helper()
	type sent struct{ src, dst int }
	want := make(map[sent]string)
	var reqs []*ForwardRequest
	for src := 0; src < n; src++ {
		dst := (src + n/2) % n
		if dst == src {
			dst = (src + 1) % n
		}
		v := fmt.Sprintf("item-%d-to-%d", src, dst)
		want[sent{src, dst}] = v
		reqs = append(reqs, c.SendAsync(src, dst, v))
	}
	for _, r := range reqs {
		if err := r.Wait(fwdCtx(t)); err != nil {
			t.Fatalf("send %s: %v", r.Key(), err)
		}
	}
	// Every genuine (Err == nil) delivery must be one of ours, at its
	// destination; fabricated items must surface with Err set.
	seen := make(map[sent]int)
	for p := 0; p < n; p++ {
		for _, d := range c.Deliveries(p) {
			if d.Err != nil {
				continue // fabricated by the initial configuration: flagged
			}
			k := sent{d.From, p}
			v, ok := want[k]
			if !ok {
				t.Errorf("process %d received unsent item %q from %d", p, d.Value, d.From)
				continue
			}
			if d.Value != v {
				t.Errorf("process %d received %q from %d, want %q", p, d.Value, d.From, v)
			}
			seen[k]++
		}
	}
	for k, v := range want {
		if seen[k] != 1 {
			t.Errorf("item %q (%d->%d) delivered %d times, want 1", v, k.src, k.dst, seen[k])
		}
	}
	if rep := c.SpecReport(); len(rep.Violations) != 0 {
		t.Fatalf("forwarding spec violated: %v", rep.Violations)
	}
}

func TestForwardingAllSubstratesAllTrees(t *testing.T) {
	t.Parallel()
	const n = 6
	topos := []struct {
		name string
		t    Topology
	}{
		{"line", Line(n)},
		{"star", Star(n)},
		{"tree", RandomTree(n, 21)},
	}
	subs := []struct {
		name string
		s    Substrate
	}{
		{"sim", Sim()},
		{"runtime", Runtime()},
		{"udp", UDP()},
	}
	for _, topo := range topos {
		for _, sub := range subs {
			topo, sub := topo, sub
			t.Run(topo.name+"/"+sub.name, func(t *testing.T) {
				t.Parallel()
				c := NewForwardingCluster(n, JSON[string](),
					WithTopology(topo.t), WithSubstrate(sub.s), WithSeed(13))
				defer c.Close()
				c.CorruptEverything(77)
				checkForwardRun(t, c, n)
			})
		}
	}
}

// TestForwardingFlakyLinks runs the corrupted cluster under heavy
// link-level chaos — drops, duplicates, adjacent reorders, payload
// corruption — on the deterministic substrate, where the whole run
// replays from the seed. The protocol's per-edge handshake must carry
// every item through regardless.
func TestForwardingFlakyLinks(t *testing.T) {
	t.Parallel()
	const n = 6
	for _, topo := range []struct {
		name string
		t    Topology
	}{
		{"line", Line(n)},
		{"tree", RandomTree(n, 5)},
	} {
		topo := topo
		t.Run(topo.name, func(t *testing.T) {
			t.Parallel()
			c := NewForwardingCluster(n, JSON[string](),
				WithTopology(topo.t), WithSeed(3),
				WithFaults(FaultPlan{
					Seed: 19,
					Default: LinkFaults{
						DropRate:    0.10,
						DupRate:     0.10,
						ReorderRate: 0.10,
						CorruptRate: 0.05,
					},
				}))
			defer c.Close()
			c.CorruptEverything(41)
			checkForwardRun(t, c, n)
			if c.FaultStats().Total() == 0 {
				t.Fatal("fault plan injected nothing; the test exercised no chaos")
			}
		})
	}
}

// TestForwardingSplitBrain partitions the tree down the middle for a
// window, sends across the cut while it is open, and asserts the items
// still arrive after the heal — snap-stabilization treats the partition
// as one more transient fault.
func TestForwardingSplitBrain(t *testing.T) {
	t.Parallel()
	const n = 6
	c := NewForwardingCluster(n, JSON[string](),
		WithTopology(Line(n)), WithSeed(9),
		WithFaults(FaultPlan{
			Seed: 23,
			Partitions: []PartitionWindow{
				{From: 0, Until: 4000, GroupA: []int{0, 1, 2}},
			},
		}))
	defer c.Close()
	c.CorruptEverything(55)
	checkForwardRun(t, c, n)
	if c.FaultStats().PartitionDrops == 0 {
		t.Fatal("the partition window dropped nothing; the cut was never exercised")
	}
}

func TestForwardingManySeedsSim(t *testing.T) {
	t.Parallel()
	const n = 5
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			c := NewForwardingCluster(n, JSON[string](),
				WithTopology(RandomTree(n, seed)), WithSeed(seed))
			defer c.Close()
			c.CorruptEverything(seed * 31)
			checkForwardRun(t, c, n)
		})
	}
}

func TestForwardingDefaultTopologyIsLine(t *testing.T) {
	t.Parallel()
	c := NewForwardingCluster(4, JSON[int]())
	defer c.Close()
	if err := c.Send(0, 3, 42); err != nil {
		t.Fatal(err)
	}
	ds := c.Deliveries(3)
	if len(ds) != 1 || ds[0].Err != nil || ds[0].Value != 42 || ds[0].From != 0 {
		t.Fatalf("deliveries at 3 = %+v, want one genuine 42 from 0", ds)
	}
}

func TestForwardingValidation(t *testing.T) {
	t.Parallel()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: constructor did not panic", name)
			}
		}()
		f()
	}
	mustPanic("nil-codec", func() { NewForwardingCluster[int](3, nil) })
	mustPanic("non-tree", func() { NewForwardingCluster(4, JSON[int](), WithTopology(Ring(4))) })
	mustPanic("complete", func() { NewForwardingCluster(4, JSON[int](), WithTopology(Complete(4))) })
	mustPanic("wrong-n", func() { NewForwardingCluster(4, JSON[int](), WithTopology(Line(5))) })

	c := NewForwardingCluster(3, JSON[int]())
	defer c.Close()
	if err := c.Send(0, 9, 1); err == nil {
		t.Error("send to an out-of-range destination succeeded")
	}
	if err := c.Send(-1, 1, 1); err == nil {
		t.Error("send from an out-of-range source succeeded")
	}
	if err := c.Send(0, 0, 7); err != nil {
		t.Errorf("self-send failed: %v", err)
	}
	if ds := c.Deliveries(0); len(ds) != 1 || ds[0].Value != 7 {
		t.Errorf("self-send not delivered at 0: %+v", ds)
	}
}
