// Mutual exclusion: a shared ledger protected by Protocol ME.
//
// Five processes contend for a critical section guarding a (simulated)
// shared ledger. The initial configuration is corrupted — including,
// possibly, processes that believe they are already inside the critical
// section (the paper's footnote 1). Every request is nevertheless served,
// exclusively, and the ledger stays consistent.
//
//	go run ./examples/mutex
package main

import (
	"fmt"
	"log"

	snapstab "github.com/snapstab/snapstab"
)

func main() {
	// Identifiers need not be contiguous — the smallest one is the leader.
	ids := []int64{31, 8, 59, 26, 53}
	cluster := snapstab.NewMutexCluster(ids,
		snapstab.WithSeed(99),
		snapstab.WithCSLength(3),
	)
	defer cluster.Close()
	cluster.CorruptEverything(123)
	fmt.Println("5 processes, corrupted start (zombie occupants possible), leader = id 8")

	// A toy bank ledger: each critical section moves money atomically.
	balance := map[string]int{"alice": 100, "bob": 0}
	transfer := func(amount int) func() {
		return func() {
			balance["alice"] -= amount
			balance["bob"] += amount
		}
	}

	// Every process requests once, concurrently.
	procs := []int{0, 1, 2, 3, 4}
	bodies := []func(){
		transfer(10), transfer(20), transfer(5), transfer(15), transfer(50),
	}
	if err := cluster.AcquireAll(procs, bodies); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("after 5 exclusive transfers: alice=%d bob=%d (conserved: %v)\n",
		balance["alice"], balance["bob"], balance["alice"]+balance["bob"] == 100)
	if v := cluster.Violations(); len(v) > 0 {
		log.Fatalf("mutual exclusion violated: %v", v)
	}
	fmt.Printf("served entries: %d, mutual exclusion violations: 0\n", cluster.Entries())

	// Sequential re-acquisition keeps working forever (each request is a
	// fresh computation with the full guarantee).
	for round := 0; round < 3; round++ {
		p := round % len(ids)
		if err := cluster.Acquire(p, transfer(1)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after 3 more transfers: alice=%d bob=%d\n", balance["alice"], balance["bob"])
}
