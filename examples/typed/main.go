// Typed payloads: broadcast your own struct through a snap-stabilizing
// cluster.
//
// The protocols propagate an application value with feedback; the typed
// API carries that value as YOUR type, marshaled through a pluggable
// codec into an opaque payload body the machines never inspect. The
// guarantee is unchanged — every request decides on feedback produced
// for that very computation, from an ARBITRARY initial configuration —
// and it now covers struct payloads byte for byte.
//
// The example broadcasts an Order (with a 4KiB attachment) three times:
// on the deterministic simulator from a fully corrupted configuration,
// on the concurrent goroutine substrate, and with a custom typed
// receiver that transforms the value instead of echoing it.
//
//	go run ./examples/typed
package main

import (
	"bytes"
	"fmt"
	"log"

	snapstab "github.com/snapstab/snapstab"
)

// Order is the application's own message type: any JSON-marshalable
// struct works, no protocol awareness required.
type Order struct {
	SKU        string `json:"sku"`
	Qty        int    `json:"qty"`
	Attachment []byte `json:"attachment,omitempty"`
}

func main() {
	attachment := make([]byte, 4096)
	for i := range attachment {
		attachment[i] = byte(i * 17)
	}
	order := Order{SKU: "widget-9", Qty: 3, Attachment: attachment}

	// 1. Deterministic simulator, corrupted start: the first request
	// already enjoys the full guarantee.
	sim := snapstab.NewTypedPIFCluster(4, snapstab.JSON[Order]())
	defer sim.Close()
	sim.CorruptEverything(7)
	fb, err := sim.Broadcast(0, order)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim: %d processes echoed the order back\n", len(fb))
	for _, f := range fb {
		if f.Err != nil {
			log.Fatalf("process %d echoed an undecodable body: %v", f.From, f.Err)
		}
		if f.Value.SKU != order.SKU || !bytes.Equal(f.Value.Attachment, attachment) {
			log.Fatalf("process %d echo differs from the broadcast", f.From)
		}
	}
	fmt.Println("sim: every echo byte-identical, 4KiB attachment included")

	// 2. Same application code on the concurrent goroutine substrate:
	// one construction option changes, the guarantee does not.
	rt := snapstab.NewTypedPIFCluster(4, snapstab.JSON[Order](),
		snapstab.WithSubstrate(snapstab.Runtime()))
	defer rt.Close()
	rt.CorruptEverything(7)
	if _, err := rt.Broadcast(0, order); err != nil {
		log.Fatal(err)
	}
	fmt.Println("runtime: same cluster code, real goroutine concurrency")

	// 3. A typed receiver: application logic runs at each process on the
	// accepted broadcast and its return value is the feedback.
	confirm := snapstab.NewTypedPIFCluster(4, snapstab.JSON[Order](),
		snapstab.WithReceiverT(func(proc, from int, o Order) Order {
			o.Qty *= 10 // each warehouse confirms ten times the quantity
			o.Attachment = nil
			return o
		}))
	defer confirm.Close()
	cfb, err := confirm.Broadcast(0, order)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range cfb {
		if f.Err != nil {
			log.Fatal(f.Err)
		}
		fmt.Printf("receiver: process %d confirmed qty=%d\n", f.From, f.Value.Qty)
	}
}
