// Quickstart: a snap-stabilizing broadcast with feedback — on two
// substrates.
//
// Four processes; everything — process memories AND channel contents — is
// corrupted first. A single call then broadcasts a message and collects
// every acknowledgment, correctly, with no stabilization period:
// snap-stabilization means the FIRST request already enjoys the full
// guarantee.
//
// The same cluster code then runs again on the concurrent goroutine
// substrate (one goroutine per process, event-driven delivery) by
// changing one construction option — the guarantee is
// substrate-independent.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	snapstab "github.com/snapstab/snapstab"
)

// broadcastOnce corrupts the cluster and completes one broadcast with
// feedback: identical application code for every substrate.
func broadcastOnce(cluster *snapstab.PIFCluster) {
	// Drive the system into an arbitrary configuration: every protocol
	// variable randomized (and, on the simulator, every channel preloaded
	// with garbage).
	cluster.CorruptEverything(7)

	// One call: process 0 broadcasts, everyone acknowledges.
	feedback, err := cluster.Broadcast(0, "how-old-are-you", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("process 0 broadcast \"how-old-are-you\" and received:")
	for _, fb := range feedback {
		fmt.Printf("  process %d answered %s(%d)\n", fb.From, fb.Value.Tag, fb.Value.Num)
	}
}

func main() {
	fmt.Println("--- deterministic simulator (seeded, replayable) ---")
	sim := snapstab.NewPIFCluster(4,
		snapstab.WithSeed(2024),
		snapstab.WithLossRate(0.2), // links drop a fifth of all messages
	)
	broadcastOnce(sim)
	stats := sim.Stats()
	sim.Close()
	fmt.Printf("(%d scheduler steps, %d messages sent, %d lost — and still exact)\n\n",
		stats.Steps, stats.Sends, stats.LinkLosses+stats.SendLosses)

	fmt.Println("--- concurrent runtime (one goroutine per process) ---")
	rt := snapstab.NewPIFCluster(4,
		snapstab.WithSubstrate(snapstab.Runtime()),
		snapstab.WithLossRate(0.2),
	)
	broadcastOnce(rt)
	rt.Close()
	fmt.Println("(same cluster code, real concurrency — still exact)")
}
