// Quickstart: a snap-stabilizing broadcast with feedback.
//
// Four processes; everything — process memories AND channel contents — is
// corrupted first. A single call then broadcasts a message and collects
// every acknowledgment, correctly, with no stabilization period:
// snap-stabilization means the FIRST request already enjoys the full
// guarantee.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	snapstab "github.com/snapstab/snapstab"
)

func main() {
	cluster := snapstab.NewPIFCluster(4,
		snapstab.WithSeed(2024),
		snapstab.WithLossRate(0.2), // links drop a fifth of all messages
	)

	// Drive the system into an arbitrary configuration: every protocol
	// variable randomized, every channel preloaded with garbage.
	cluster.CorruptEverything(7)
	fmt.Println("cluster of 4 processes: state and channels corrupted, links lossy")

	// One call: process 0 broadcasts, everyone acknowledges.
	feedback, err := cluster.Broadcast(0, "how-old-are-you", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("process 0 broadcast \"how-old-are-you\" and received:")
	for _, fb := range feedback {
		fmt.Printf("  process %d answered %s(%d)\n", fb.From, fb.Value.Tag, fb.Value.Num)
	}

	stats := cluster.Stats()
	fmt.Printf("\n(%d scheduler steps, %d messages sent, %d lost — and still exact)\n",
		stats.Steps, stats.Sends, stats.LinkLosses+stats.SendLosses)
}
