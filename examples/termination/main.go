// Termination detection: knowing when a distributed computation is done.
//
// The paper names Termination Detection among the protocols PIF enables.
// Here three processes run a token-diffusion computation (tokens hop with
// a time-to-live, carried by a reliable transfer); a detector built on
// snap-stabilizing PIF waves declares termination — never prematurely,
// even though its own state starts corrupted.
//
//	go run ./examples/termination
package main

import (
	"fmt"
	"log"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/termdet"
)

// hopApp is a minimal diffusing computation: each pending token is
// forwarded to the next process with a decremented time-to-live, using a
// retransmit-until-ack transfer (deficit counting needs reliable
// application messages).
type hopApp struct {
	inst     string
	self     core.ProcID
	n        int
	pending  []int
	outID    int64
	outTTL   int
	inFlight bool
	nextID   int64
	seen     map[int64]bool
	sent     int64
	recv     int64
}

func (a *hopApp) Instance() string { return a.inst }
func (a *hopApp) Passive() bool    { return len(a.pending) == 0 && !a.inFlight }
func (a *hopApp) Counts() (int64, int64) {
	return a.sent, a.recv
}

func (a *hopApp) Step(env core.Env) bool {
	to := core.ProcID((int(a.self) + 1) % a.n)
	if a.inFlight {
		env.Send(to, core.Message{Instance: a.inst, Kind: "TOKEN",
			B: core.Payload{Num: a.outID}, F: core.Payload{Num: int64(a.outTTL)}})
		return true
	}
	if len(a.pending) == 0 {
		return false
	}
	ttl := a.pending[0]
	a.pending = a.pending[1:]
	if ttl <= 0 {
		return true
	}
	a.nextID++
	a.outID = int64(a.self)<<32 | a.nextID
	a.outTTL = ttl - 1
	a.inFlight = true
	a.sent++
	env.Send(to, core.Message{Instance: a.inst, Kind: "TOKEN",
		B: core.Payload{Num: a.outID}, F: core.Payload{Num: int64(a.outTTL)}})
	return true
}

func (a *hopApp) Deliver(env core.Env, from core.ProcID, m core.Message) {
	switch m.Kind {
	case "TOKEN":
		env.Send(from, core.Message{Instance: a.inst, Kind: "ACK", B: m.B})
		if a.seen == nil {
			a.seen = make(map[int64]bool)
		}
		if !a.seen[m.B.Num] {
			a.seen[m.B.Num] = true
			a.recv++
			a.pending = append(a.pending, int(m.F.Num))
		}
	case "ACK":
		if a.inFlight && a.outID == m.B.Num {
			a.inFlight = false
		}
	}
}

func main() {
	const n = 3
	apps := make([]*hopApp, n)
	detectors := make([]*termdet.Detector, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		apps[i] = &hopApp{inst: "app", self: core.ProcID(i), n: n}
		detectors[i] = termdet.New("td", core.ProcID(i), n, apps[i])
		stacks[i] = append(core.Stack{apps[i]}, detectors[i].Machines()...)
	}
	net := sim.New(stacks, sim.WithSeed(12), sim.WithLossRate(0.1))

	// Corrupt the detectors (not the observed application) — the paper's
	// arbitrary initial configuration for the protocol under test.
	r := rng.New(5)
	for _, d := range detectors {
		d.Corrupt(r)
		d.PIF.Corrupt(r)
	}

	// Seed the computation: 20 token-hops of work.
	apps[0].pending = []int{12}
	apps[2].pending = []int{8}
	fmt.Println("3 processes; 20 token-hops of distributed work; detectors corrupted")

	requested := false
	err := net.RunUntil(func() bool {
		if !requested {
			requested = detectors[0].Invoke(net.Env(0))
			return false
		}
		return detectors[0].Done()
	}, 50_000_000)
	if err != nil {
		log.Fatal(err)
	}
	if !detectors[0].Terminated {
		log.Fatal("detector completed without a verdict")
	}
	// The whole point: at declaration time, the computation is REALLY over.
	for i, a := range apps {
		if !a.Passive() {
			log.Fatalf("process %d still active at declaration", i)
		}
	}
	fmt.Printf("termination declared after %d waves; all processes passive, counters balanced\n",
		detectors[0].Waves)
	sent, recv := int64(0), int64(0)
	for _, a := range apps {
		s, r := a.Counts()
		sent, recv = sent+s, recv+r
	}
	fmt.Printf("global counters: %d sent = %d received — no message left behind\n", sent, recv)
}
