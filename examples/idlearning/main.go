// IDs-Learning: leader discovery from a corrupted network.
//
// Protocol IDL (Algorithm 2) lets any process learn the identifier of
// every peer and the minimum identifier of the system — the leader used
// by the mutual exclusion protocol. Starting from corrupted tables and
// garbage-filled channels, one computation rebuilds the truth.
//
//	go run ./examples/idlearning
package main

import (
	"fmt"
	"log"

	snapstab "github.com/snapstab/snapstab"
)

func main() {
	ids := []int64{907, 113, 542, 389}
	cluster := snapstab.NewIDCluster(ids,
		snapstab.WithSeed(5),
		snapstab.WithLossRate(0.1),
	)
	defer cluster.Close()
	cluster.CorruptEverything(44)
	fmt.Println("4 processes with identifiers", ids, "- tables corrupted, channels garbaged")

	for p := range ids {
		min, table, err := cluster.Learn(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("process %d learned: leader(minID)=%d, table=%v\n", p, min, table)
		if min != 113 {
			log.Fatalf("process %d learned the wrong leader: %d", p, min)
		}
	}
	fmt.Println("every process agrees: the leader is 113")
}
