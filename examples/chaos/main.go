// Chaos: one seeded fault plan batters the same cluster on two
// substrates — and every request still satisfies its specification.
//
// A FaultPlan composes per-link fault policies (drop, duplicate, reorder,
// delay, payload corruption) with scheduled faults (a split-brain
// partition that heals, a crash-restart window). Installed with one
// option, the plan runs natively inside whichever engine executes the
// cluster: the deterministic simulator replays it exactly from the seed;
// the concurrent runtime applies the same seeded decision streams under
// real concurrency.
//
// Snap-stabilization is exactly the claim this exercises: every started
// request satisfies its specification from an arbitrary configuration
// under loss, duplication, and reordering — so the broadcast below
// returns only genuine, per-computation acknowledgments no matter what
// the plan does to the network.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	snapstab "github.com/snapstab/snapstab"
)

// plan is the adversary: flaky links everywhere, plus a partition that
// cuts process 0 off and heals, plus process 2 crashing and restarting.
// Tick units: scheduler steps on the simulator, milliseconds on the
// concurrent substrates.
func plan(until int64) snapstab.FaultPlan {
	return snapstab.FaultPlan{
		Seed: 99,
		Default: snapstab.LinkFaults{
			DropRate:    0.10,
			DupRate:     0.10,
			ReorderRate: 0.10,
			DelayRate:   0.05,
			DelayTicks:  until / 100,
			CorruptRate: 0.05,
		},
		Partitions: []snapstab.PartitionWindow{
			{From: 0, Until: until, GroupA: []int{0}},
		},
		Crashes: []snapstab.CrashWindow{
			{Proc: 2, From: 0, Until: until / 2},
		},
	}
}

func run(name string, cluster *snapstab.PIFCluster) {
	defer cluster.Close()
	cluster.CorruptEverything(7) // arbitrary initial configuration on top

	feedback, err := cluster.Broadcast(0, "still-there", 42)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	fmt.Printf("--- %s ---\n", name)
	fmt.Printf("broadcast decided with %d acknowledgments despite:\n", len(feedback))
	st := cluster.FaultStats()
	fmt.Printf("  %d drops, %d duplicates, %d reorders, %d delays, %d corruptions\n",
		st.Drops, st.Duplicates, st.Reorders, st.Delays, st.Corrupts)
	fmt.Printf("  %d partition drops, %d arrivals consumed by the crashed process\n",
		st.PartitionDrops, st.CrashDrops)
}

func main() {
	// Simulator ticks are scheduler steps: the partition spans the first
	// 4000 steps and replays identically on every run.
	run("deterministic simulator", snapstab.NewPIFCluster(4,
		snapstab.WithSeed(2024),
		snapstab.WithFaults(plan(4_000))))

	// Runtime ticks are milliseconds: the partition spans the first
	// 200ms of real time, the crash window the first 100ms.
	run("concurrent runtime", snapstab.NewPIFCluster(4,
		snapstab.WithSubstrate(snapstab.Runtime()),
		snapstab.WithSeed(2024),
		snapstab.WithFaults(plan(200))))
}
