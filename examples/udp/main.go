// Real-network demo: snap-stabilizing PIF over UDP sockets.
//
// The paper closes with "actually implementing them is a future
// challenge". This example runs three nodes on real loopback UDP sockets
// — wire-encoded datagrams, natural loss, bounded mailboxes restoring the
// known capacity bound — corrupts their protocol state, and completes a
// broadcast with feedback anyway.
//
//	go run ./examples/udp
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	udp "github.com/snapstab/snapstab/internal/transport/udp"
)

func main() {
	const n = 3
	r := rng.New(2008) // the paper's year, why not

	machines := make([]*pif.PIF, n)
	nodes := make([]*udp.Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		self := core.ProcID(i)
		machines[i] = pif.New("pif", self, n, pif.Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return core.Payload{Tag: "ack", Num: b.Num*10 + int64(self)}
			},
		}, pif.WithCapacityBound(udp.DefaultAssumedCapacity))
		machines[i].Corrupt(r) // arbitrary initial protocol state

		node, err := udp.NewNode(self, core.Stack{machines[i]}, "127.0.0.1:0", make([]string, n))
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
		fmt.Printf("node %d on %s (state corrupted)\n", i, addrs[i])
	}
	for i, node := range nodes {
		for j, a := range addrs {
			if i == j {
				continue
			}
			ra, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				log.Fatal(err)
			}
			node.SetPeer(core.ProcID(j), ra)
		}
	}
	for _, node := range nodes {
		node.Start()
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()

	// Wait out any corrupted in-flight computation, then broadcast.
	token := core.Payload{Tag: "hello", Num: 7}
	deadline := time.Now().Add(30 * time.Second)
	for invoked := false; !invoked; {
		if time.Now().After(deadline) {
			log.Fatal("request never accepted")
		}
		nodes[0].Do(func(env core.Env) { invoked = machines[0].Invoke(env, token) })
		time.Sleep(time.Millisecond)
	}
	fmt.Println("node 0 broadcasting hello(7) over real sockets...")

	start := time.Now()
	for {
		if time.Now().After(deadline) {
			log.Fatal("broadcast did not complete")
		}
		var done bool
		nodes[0].Do(func(core.Env) { done = machines[0].Done() && machines[0].BMes == token })
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("decision in %v: all nodes received the broadcast and acknowledged\n",
		time.Since(start).Round(time.Millisecond))
}
