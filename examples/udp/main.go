// Real-network demo: snap-stabilizing PIF over UDP sockets.
//
// The paper closes with "actually implementing them is a future
// challenge". This example runs three nodes on real loopback UDP sockets
// — wire-encoded datagrams, natural loss, bounded mailboxes restoring the
// known capacity bound — corrupts their protocol state, and completes a
// broadcast with feedback anyway.
//
// Since the substrate redesign this is the same façade code as the
// simulator examples: the socket wiring that used to fill this file is
// one construction option.
//
//	go run ./examples/udp
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	snapstab "github.com/snapstab/snapstab"
)

func main() {
	cluster := snapstab.NewPIFCluster(3,
		snapstab.WithSubstrate(snapstab.UDP()),
		snapstab.WithSeed(2008), // the paper's year, why not
	)
	defer cluster.Close()
	for i, s := range cluster.TransportStats() {
		fmt.Printf("node %d on %s\n", i, s.Addr)
	}

	cluster.CorruptEverything(2008) // arbitrary initial protocol state
	fmt.Println("all protocol states corrupted")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fmt.Println("node 0 broadcasting hello(7) over real sockets...")
	start := time.Now()
	req := cluster.BroadcastAsync(0, "hello", 7)
	if err := req.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision in %v: %d nodes received the broadcast and acknowledged\n",
		time.Since(start).Round(time.Millisecond), len(req.Feedbacks()))
	for _, s := range cluster.TransportStats() {
		fmt.Printf("  %s: sent=%d send-drops=%d mailbox-drops=%d\n",
			s.Addr, s.Sends, s.SendDrops, s.MailboxDrops)
	}
}
