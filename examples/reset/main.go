// Global reset: wiping a distributed cache consistently.
//
// The paper lists Reset as the first application of PIF. Here four
// processes each hold a local cache; a single reset request — issued into
// a fully corrupted system — drives every process through its
// reinitialization handler under a common epoch, and returns only once
// every process acknowledged.
//
//	go run ./examples/reset
package main

import (
	"fmt"
	"log"
	"sort"

	snapstab "github.com/snapstab/snapstab"
)

func main() {
	const n = 4

	// Each process's "cache": some state that must be wiped consistently.
	caches := make([]map[string]int, n)
	for i := range caches {
		caches[i] = map[string]int{"stale-entry": i * 100}
	}
	epochs := make([]int64, n)

	cluster := snapstab.NewResetCluster(n, func(p int, epoch int64) {
		caches[p] = map[string]int{} // wipe
		epochs[p] = epoch
	}, snapstab.WithSeed(17), snapstab.WithLossRate(0.15))
	defer cluster.Close()

	cluster.CorruptEverything(66)
	fmt.Println("4 processes with dirty caches; protocol state and channels corrupted")

	epoch, err := cluster.Reset(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process 2 requested a reset; decision reached under epoch %d\n", epoch)

	for p, cache := range caches {
		keys := make([]string, 0, len(cache))
		for k := range cache {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  process %d: cache=%v epoch=%d\n", p, keys, epochs[p])
		if len(cache) != 0 {
			log.Fatalf("process %d still holds stale entries", p)
		}
	}
	fmt.Println("every cache wiped under the same epoch — certified by the feedback phase")
}
