// Impossibility: Theorem 1 executed step by step.
//
// The theorem says no safety-distributed specification has a
// snap-stabilizing solution when channel capacity is finite but unbounded.
// Its proof is constructive, and this example runs it:
//
//  1. record a legal execution of Protocol PIF and capture MesSeq, the
//     message sequence the victim consumed, plus its state projection;
//  2. preload MesSeq into the channel of a FRESH system (γ0) — possible
//     only because the channel is unbounded;
//  3. replay: the victim, alone, re-lives its recorded computation and
//     decides — while its peer never participated. The bad thing of every
//     feedback-based specification.
//
// The same preload against a bounded channel fails at step 2: γ0 does not
// exist. That asymmetry is the entire positive story of the paper.
//
//	go run ./examples/impossibility
package main

import (
	"fmt"
	"log"

	"github.com/snapstab/snapstab/internal/adversary"
)

func main() {
	fmt.Println("=== Theorem 1, executed ===")
	fmt.Println()
	fmt.Println("step 1: record a legal execution of PIF (capacity bound 1, flags {0..4})")
	rec, err := adversary.Record(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recorded MesSeq: %d messages consumed by the victim\n", len(rec.MesSeq))
	fmt.Printf("  recorded Φ_p(BAD): %d state samples\n\n", len(rec.Projection))

	fmt.Println("step 2+3: preload MesSeq into a fresh system and replay, peer silenced")
	for _, regime := range []struct {
		name      string
		capacity  int
		unbounded bool
	}{
		{"unbounded channels (the impossibility regime)", 0, true},
		{"capacity-1 channels (the known bound the protocol assumes)", 1, false},
	} {
		out := adversary.Replay(rec, 1, regime.capacity, regime.unbounded)
		fmt.Printf("  %s:\n", regime.name)
		if !out.PreloadAccepted {
			fmt.Printf("    γ0 rejected: a %d-message preload does not fit — the configuration of the proof does not exist.\n",
				out.PreloadLen)
			fmt.Println("    attack impossible: snap-stabilization survives.")
			continue
		}
		fmt.Printf("    γ0 constructed (%d messages preloaded)\n", out.PreloadLen)
		fmt.Printf("    victim decided: %v; peer ever participated: %v\n", out.Decided, out.PeerParticipated)
		fmt.Printf("    victim's state sequence reproduces Φ_p(BAD): %v\n", out.ProjectionReproduced)
		if out.Violation() {
			fmt.Println("    => SAFETY VIOLATED: the computation \"completed\" without the peer —")
			fmt.Println("       a mutual-exclusion privilege or ID table built this way is worthless.")
		}
	}
	fmt.Println()
	fmt.Println("conclusion: the bound on channel capacity must be KNOWN; given the bound,")
	fmt.Println("Algorithm 1 sizes its flag domain to outcount any admissible garbage.")
}
