package snapstab_test

import (
	"testing"

	snapstab "github.com/snapstab/snapstab"
)

// muxRoundTrip attaches two independent PIF clusters to one mux,
// completes a corrupted broadcast on each, and checks the per-cluster
// counters stayed separate while the batching counters registered the
// shared socket traffic.
func muxRoundTrip(t *testing.T, mux *snapstab.Mux) {
	t.Helper()
	a := snapstab.NewPIFCluster(3, snapstab.WithSubstrate(mux.Substrate()), snapstab.WithSeed(11))
	defer a.Close()
	b := snapstab.NewPIFCluster(3, snapstab.WithSubstrate(mux.Substrate()), snapstab.WithSeed(12))
	defer b.Close()
	a.CorruptEverything(31)
	b.CorruptEverything(32)

	ra := a.BroadcastAsync(0, "mux-a", 1)
	rb := b.BroadcastAsync(0, "mux-b", 2)
	if err := ra.Wait(testCtx(t)); err != nil {
		t.Fatalf("cluster a: %v", err)
	}
	if err := rb.Wait(testCtx(t)); err != nil {
		t.Fatalf("cluster b: %v", err)
	}
	if len(ra.Feedbacks()) != 2 || len(rb.Feedbacks()) != 2 {
		t.Fatalf("feedbacks: a=%d b=%d, want 2 each", len(ra.Feedbacks()), len(rb.Feedbacks()))
	}

	sa, sb := a.TransportStats(), b.TransportStats()
	if len(sa) != 3 || len(sb) != 3 {
		t.Fatalf("stat rows: a=%d b=%d, want 3 each", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Sends == 0 || sb[i].Sends == 0 {
			t.Errorf("node %d: per-cluster Sends a=%d b=%d, want both > 0", i, sa[i].Sends, sb[i].Sends)
		}
		if sa[i].SendDatagrams == 0 || sa[i].SendSyscalls == 0 {
			t.Errorf("node %d: batching counters absent: datagrams=%d syscalls=%d",
				i, sa[i].SendDatagrams, sa[i].SendSyscalls)
		}
	}

	// Closing one cluster detaches its group; the sibling keeps working
	// on the still-open mux.
	if err := a.Close(); err != nil {
		t.Fatalf("close a: %v", err)
	}
	if _, err := b.Broadcast(1, "mux-b-after", 3); err != nil {
		t.Fatalf("cluster b after sibling close: %v", err)
	}
}

// TestUDPMuxFacade hosts two clusters as wire v3 groups on one set of
// UDP sockets through the public façade.
func TestUDPMuxFacade(t *testing.T) {
	t.Parallel()
	mux, err := snapstab.UDPMux(3, snapstab.WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	if mux.N() != 3 || len(mux.Addrs()) != 3 {
		t.Fatalf("mux shape: N=%d addrs=%d", mux.N(), len(mux.Addrs()))
	}
	muxRoundTrip(t, mux)
}

// TestTCPMuxFacade hosts two clusters as wire v3 groups on one TCP
// connection mesh through the public façade.
func TestTCPMuxFacade(t *testing.T) {
	t.Parallel()
	mux, err := snapstab.TCPMux(3)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	muxRoundTrip(t, mux)
}

// TestMuxRejectsWrongClusterSize: a cluster whose process count differs
// from the mux's must fail at construction (the façade panics on
// substrate build errors).
func TestMuxRejectsWrongClusterSize(t *testing.T) {
	t.Parallel()
	mux, err := snapstab.UDPMux(3)
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("4-process cluster on a 3-process mux did not panic")
		}
	}()
	snapstab.NewPIFCluster(4, snapstab.WithSubstrate(mux.Substrate()))
}
