package snapstab_test

import (
	"testing"
	"time"

	snapstab "github.com/snapstab/snapstab"
)

// chaosOptions returns a moderate all-faults plan suitable for every
// substrate: link policies only, so the same plan value is meaningful
// whether ticks are scheduler steps (Sim) or milliseconds (Runtime, UDP).
func chaosFaults(seed uint64) snapstab.FaultPlan {
	return snapstab.FaultPlan{
		Seed: seed,
		Default: snapstab.LinkFaults{
			DropRate:    0.10,
			DupRate:     0.08,
			ReorderRate: 0.08,
			DelayRate:   0.04,
			DelayTicks:  20,
			CorruptRate: 0.04,
		},
	}
}

// TestSameFaultPlanAcrossSubstrates is the tentpole's acceptance test:
// one seeded FaultPlan drives a corrupted PIF cluster on all three
// substrates through WithFaults, and on each the snap-stabilization
// guarantee holds (the broadcast decides on exactly the feedback of this
// computation) while the plan demonstrably injected faults.
func TestSameFaultPlanAcrossSubstrates(t *testing.T) {
	for _, tc := range []struct {
		name string
		sub  snapstab.Substrate
	}{
		{"sim", snapstab.Sim()},
		{"runtime", snapstab.Runtime()},
		{"udp", snapstab.UDP()},
		{"tcp", snapstab.TCP()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := snapstab.NewPIFCluster(3,
				snapstab.WithSubstrate(tc.sub),
				snapstab.WithSeed(11),
				snapstab.WithFaults(chaosFaults(23)))
			defer c.Close()
			c.CorruptEverything(42)
			for round := int64(0); round < 3; round++ {
				fb, err := c.Broadcast(0, "chaos", 100+round)
				if err != nil {
					t.Fatalf("round %d: %v (faults: %+v)", round, err, c.FaultStats())
				}
				if len(fb) != 2 {
					t.Fatalf("round %d: %d feedbacks, want 2", round, len(fb))
				}
				for _, f := range fb {
					if f.Value.Num != (100+round)*1000+int64(f.From) && tc.name == "sim" {
						// Value-exact only on the deterministic substrate: the
						// plan's CorruptRate is an adversary beyond the channel
						// model, and on the concurrent substrates a corrupted
						// message can (rarely) forge the final handshake echo,
						// deciding a garbled acknowledgment — the same relaxed
						// verdict cmd/snapchaos applies. Liveness, termination,
						// and feedback completeness stay asserted above.
						t.Fatalf("round %d: feedback %+v not derived from this broadcast", round, f)
					}
				}
			}
			if c.FaultStats().Total() == 0 {
				t.Fatal("fault plan injected nothing")
			}
		})
	}
}

// TestEmptyFaultPlanIsFree pins the façade half of the free-when-off
// contract: a zero-value FaultPlan produces the exact execution of a
// cluster without one — same scheduler counters, same results — so the
// experiment tables built on the deterministic substrate stay
// byte-identical.
func TestEmptyFaultPlanIsFree(t *testing.T) {
	t.Parallel()
	run := func(opts ...snapstab.Option) ([]snapstab.Feedback, interface{}) {
		c := snapstab.NewPIFCluster(4, append([]snapstab.Option{snapstab.WithSeed(5)}, opts...)...)
		defer c.Close()
		c.CorruptEverything(9)
		fb, err := c.Broadcast(0, "x", 1)
		if err != nil {
			t.Fatalf("broadcast: %v", err)
		}
		return fb, c.Stats()
	}
	fbNil, statsNil := run()
	fbEmpty, statsEmpty := run(snapstab.WithFaults(snapstab.FaultPlan{}))
	if len(fbNil) != len(fbEmpty) {
		t.Fatalf("feedback counts differ: %d vs %d", len(fbNil), len(fbEmpty))
	}
	for i := range fbNil {
		if fbNil[i] != fbEmpty[i] {
			t.Fatalf("feedback %d differs: %+v vs %+v", i, fbNil[i], fbEmpty[i])
		}
	}
	if statsNil != statsEmpty {
		t.Fatalf("empty plan perturbed the scheduler: %+v vs %+v", statsNil, statsEmpty)
	}
}

// TestArmSpecJudgesChaosBroadcast checks Specification 1 online while a
// fault plan batters the network: the armed computation must start,
// decide, and produce zero Correctness/Decision violations.
func TestArmSpecJudgesChaosBroadcast(t *testing.T) {
	t.Parallel()
	c := snapstab.NewPIFCluster(4,
		snapstab.WithSeed(3),
		snapstab.WithFaults(chaosFaults(7)))
	defer c.Close()
	c.CorruptEverything(13)
	for round := int64(0); round < 3; round++ {
		if err := c.ArmSpec(0, "spec", 500+round); err != nil {
			t.Fatalf("ArmSpec: %v", err)
		}
		if _, err := c.Broadcast(0, "spec", 500+round); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		rep := c.SpecReport()
		if !rep.Started || !rep.Decided {
			t.Fatalf("round %d: started=%v decided=%v", round, rep.Started, rep.Decided)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("round %d: specification violated under faults: %v", round, rep.Violations)
		}
	}
}

// TestArmSpecRequiresSim pins the substrate restriction.
func TestArmSpecRequiresSim(t *testing.T) {
	t.Parallel()
	c := snapstab.NewPIFCluster(2, snapstab.WithSubstrate(snapstab.Runtime()))
	defer c.Close()
	if err := c.ArmSpec(0, "x", 1); err == nil {
		t.Fatal("ArmSpec accepted on the Runtime substrate")
	}
}

// TestFaultStatsSurfaceInTransportStats checks the per-node UDP counter
// surface.
func TestFaultStatsSurfaceInTransportStats(t *testing.T) {
	c := snapstab.NewPIFCluster(3,
		snapstab.WithSubstrate(snapstab.UDP()),
		snapstab.WithFaults(snapstab.FaultPlan{Seed: 2, Default: snapstab.LinkFaults{DupRate: 0.4}}))
	defer c.Close()
	if _, err := c.Broadcast(0, "x", 1); err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	var total int64
	for _, s := range c.TransportStats() {
		total += s.Faults.Total()
	}
	if total == 0 {
		t.Fatal("no faults surfaced in TransportStats")
	}
}

// TestCrashAndPartitionWindowsOnFacade exercises the scheduled faults
// through the public API on the deterministic substrate, where the
// outcome is exactly reproducible: a partition that cuts the initiator
// off stalls its broadcast until the heal.
func TestCrashAndPartitionWindowsOnFacade(t *testing.T) {
	t.Parallel()
	plan := snapstab.FaultPlan{
		Seed:       1,
		Partitions: []snapstab.PartitionWindow{{From: 0, Until: 4_000, GroupA: []int{0}}},
		Crashes:    []snapstab.CrashWindow{{Proc: 1, From: 0, Until: 2_000}},
		Unit:       time.Millisecond, // ignored by Sim; documents intent
	}
	c := snapstab.NewPIFCluster(3, snapstab.WithSeed(8), snapstab.WithFaults(plan))
	defer c.Close()
	fb, err := c.Broadcast(0, "after-heal", 9)
	if err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if len(fb) != 2 {
		t.Fatalf("%d feedbacks, want 2", len(fb))
	}
	st := c.FaultStats()
	if st.PartitionDrops == 0 {
		t.Fatalf("partition never dropped anything: %+v", st)
	}
}
