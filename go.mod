module github.com/snapstab/snapstab

go 1.22
