package snapstab

import (
	"context"
	"errors"
	"fmt"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/reset"
	"github.com/snapstab/snapstab/internal/rng"
)

// ErrPartialAck is returned (wrapped) by a reset request whose decision
// was reached without every process acknowledging the epoch — for a
// correct protocol under the paper's channel model this is unreachable,
// but in-flight payload corruption (an adversary beyond that model) can
// forge the final handshake echo and complete the child PIF on a value
// that was never a real acknowledgment. Callers running under such an
// adversary can distinguish this protocol-level outcome from timeouts
// and budget errors with errors.Is.
var ErrPartialAck = errors.New("snapstab: reset decided without full acknowledgment")

// ResetCluster is a system running the snap-stabilizing global reset
// protocol — the first application the paper names for PIF. A reset
// requested anywhere drives every process through its reinitialization
// handler under a common epoch and completes only after every process
// acknowledged.
type ResetCluster struct {
	clusterCore
	machines []*reset.Reset
}

// NewResetCluster builds an n-process reset deployment. handler runs at
// process p whenever it adopts a reset epoch; it may be nil. On the
// concurrent substrates the handler runs on process goroutines and must
// be goroutine-safe.
func NewResetCluster(n int, handler func(p int, epoch int64), opts ...Option) *ResetCluster {
	o := buildOptions(opts)
	o.requireCompleteTopology("NewResetCluster")
	c := &ResetCluster{}
	c.machines = make([]*reset.Reset, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		i := i
		c.machines[i] = reset.New("reset", core.ProcID(i), n, capacityBound(o))
		if handler != nil {
			c.machines[i].OnReset = func(epoch int64) { handler(i, epoch) }
		}
		stacks[i] = c.machines[i].Machines()
	}
	c.init(o, stacks)
	return c
}

// CorruptEverything randomizes every variable and, on the deterministic
// substrate, every channel.
func (c *ResetCluster) CorruptEverything(seed uint64) {
	c.corrupt(rng.New(seed), config.PIFSpecs("reset/pif", c.machines[0].PIF.FlagTop()), config.Options{})
}

// ResetRequest is the handle of an asynchronous Reset.
type ResetRequest struct {
	*Request
	epoch int64
}

// Epoch returns the epoch every process adopted and acknowledged, valid
// after the request completed successfully and zero while it is still
// in flight.
func (r *ResetRequest) Epoch() int64 {
	if !r.completed() {
		return 0
	}
	return r.epoch
}

// ResetAsync submits a global reset request at process p and returns
// immediately.
func (c *ResetCluster) ResetAsync(p int) *ResetRequest {
	req := &ResetRequest{Request: c.newRequest()}
	var machine *reset.Reset
	if p >= 0 && p < len(c.machines) {
		machine = c.machines[p]
	}
	injected := false
	c.start(req.Request, p, "reset", func(env core.Env) bool {
		if !injected {
			injected = machine.Invoke(env)
			return false
		}
		if !machine.Done() {
			return false
		}
		// The condition keys only on absorbing states (Invoke accepted,
		// then Request back at Done), never on the transient In — a
		// polling substrate could miss a transient state entirely. The
		// epoch OUR computation broadcast is the child PIF's broadcast
		// payload: written by our start action and by nothing else until
		// the next request (the per-process gate holds until we finish).
		// machine.Epoch would be wrong here: a concurrent reset launched
		// by a corrupted peer may have been adopted over it mid-flight.
		req.epoch = machine.PIF.BMes.Num
		if !machine.AllAcked(req.epoch) {
			// Unreachable for a correct protocol; surfaced rather than
			// silently returning a half-acknowledged epoch.
			req.fail = fmt.Errorf("%w of epoch %d", ErrPartialAck, req.epoch)
		}
		return true
	}, nil)
	return req
}

// Reset requests a global reset at process p and runs the cluster to the
// decision, returning the epoch every process adopted and acknowledged.
func (c *ResetCluster) Reset(p int) (epoch int64, err error) {
	req := c.ResetAsync(p)
	if err := req.Wait(context.Background()); err != nil {
		return 0, err
	}
	return req.Epoch(), nil
}
