package snapstab

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/reset"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
)

// ResetCluster is a simulated system running the snap-stabilizing global
// reset protocol — the first application the paper names for PIF. A reset
// requested anywhere drives every process through its reinitialization
// handler under a common epoch and completes only after every process
// acknowledged.
type ResetCluster struct {
	opt      options
	net      *sim.Network
	machines []*reset.Reset
}

// NewResetCluster builds an n-process reset deployment. handler runs at
// process p whenever it adopts a reset epoch; it may be nil.
func NewResetCluster(n int, handler func(p int, epoch int64), opts ...Option) *ResetCluster {
	o := buildOptions(opts)
	c := &ResetCluster{opt: o}
	c.machines = make([]*reset.Reset, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		i := i
		c.machines[i] = reset.New("reset", core.ProcID(i), n, pif.WithCapacityBound(o.capacity))
		if handler != nil {
			c.machines[i].OnReset = func(epoch int64) { handler(i, epoch) }
		}
		stacks[i] = c.machines[i].Machines()
	}
	c.net = sim.New(stacks,
		sim.WithSeed(o.seed),
		sim.WithLossRate(o.lossRate),
		sim.WithCapacity(o.capacity),
	)
	return c
}

// CorruptEverything randomizes every variable and channel.
func (c *ResetCluster) CorruptEverything(seed uint64) {
	r := rng.New(seed)
	config.Corrupt(c.net, r,
		config.PIFSpecs("reset/pif", c.machines[0].PIF.FlagTop()), config.Options{})
}

// Reset requests a global reset at process p and runs the cluster to the
// decision, returning the epoch every process adopted and acknowledged.
func (c *ResetCluster) Reset(p int) (epoch int64, err error) {
	machine := c.machines[p]
	requested, started := false, false
	runErr := c.net.RunUntil(func() bool {
		if !requested {
			requested = machine.Invoke(c.net.Env(core.ProcID(p)))
			return false
		}
		if !started {
			if machine.Request == core.In {
				started = true
				epoch = machine.Epoch
			}
			return false
		}
		return machine.Done()
	}, c.opt.maxSteps)
	if runErr != nil {
		return 0, fmt.Errorf("%w: reset at %d", ErrBudget, p)
	}
	if !machine.AllAcked(epoch) {
		// Unreachable for a correct protocol; surfaced rather than
		// silently returning a half-acknowledged epoch.
		return 0, fmt.Errorf("snapstab: reset decision without full acknowledgment of epoch %d", epoch)
	}
	return epoch, nil
}
