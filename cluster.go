package snapstab

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/runtime"
	"github.com/snapstab/snapstab/internal/sim"
	tcp "github.com/snapstab/snapstab/internal/transport/tcp"
	udp "github.com/snapstab/snapstab/internal/transport/udp"
)

// ErrClosed is returned by requests that were aborted because the
// cluster was closed.
var ErrClosed = errors.New("snapstab: cluster closed")

// clusterCore is the substrate-facing half shared by every cluster type:
// it owns the built substrate, the cluster lifetime context, and the
// request plumbing. The concrete cluster types embed it, so N, Close,
// Stats, and TransportStats are uniform across all five.
type clusterCore struct {
	opt    options
	stacks []core.Stack
	sub    core.Substrate
	simNet *sim.Network    // non-nil on the deterministic substrate
	rtNet  *runtime.Engine // non-nil on the concurrent in-memory substrate
	udpNet *udp.Cluster    // non-nil on the UDP substrate

	ctx       context.Context
	cancel    context.CancelFunc
	closeOnce sync.Once
	closeErr  error

	// reqMu[p] serializes requests issued at process p. The machine
	// itself admits one computation at a time (Invoke is rejected until
	// the previous decision), but on the polling substrates two pending
	// conditions at one process would race for the decision window: the
	// loser's Invoke consumes the machine's Done state before the winner
	// observes it, and the winner's completion condition could then never
	// hold. Holding the per-process gate for the whole request makes
	// "requests at one process serialize" true on every substrate.
	reqMu []sync.Mutex
}

// init builds the substrate selected in o from the assembled stacks.
// obs are event observers to subscribe (nil entries are skipped); they
// must be goroutine-safe on the concurrent substrates.
func (c *clusterCore) init(o options, stacks []core.Stack, obs ...core.Observer) {
	c.opt = o
	c.stacks = stacks
	kept := make([]core.Observer, 0, len(obs)+len(o.eventHooks))
	for _, ob := range obs {
		if ob != nil {
			kept = append(kept, ob)
		}
	}
	for _, hook := range o.eventHooks {
		hook := hook
		kept = append(kept, core.ObserverFunc(func(e core.Event) {
			hook(ObservedEvent{Kind: e.Kind.String(), Proc: int(e.Proc), Peer: int(e.Peer), Instance: e.Instance})
		}))
	}
	sub, err := o.substrate.build(o, stacks, kept)
	if err != nil {
		panic("snapstab: substrate construction failed: " + err.Error())
	}
	c.sub = sub
	c.simNet, _ = sub.(*sim.Network)
	c.rtNet, _ = sub.(*runtime.Engine)
	c.udpNet, _ = sub.(*udp.Cluster)
	c.reqMu = make([]sync.Mutex, sub.N())
	c.ctx, c.cancel = context.WithCancel(context.Background())
}

// N returns the number of processes.
func (c *clusterCore) N() int { return c.sub.N() }

// Close shuts the cluster down: in-flight requests are aborted with
// ErrClosed and the substrate releases its goroutines and sockets.
// Idempotent and safe to call concurrently.
func (c *clusterCore) Close() error {
	c.closeOnce.Do(func() {
		c.cancel()
		c.closeErr = c.sub.Close()
	})
	return c.closeErr
}

// Stats returns the deterministic scheduler's counters for the whole
// cluster lifetime. On the concurrent substrates — which count different
// things — it returns the zero value; see TransportStats for the
// network substrates (UDP, TCP, and their muxes).
func (c *clusterCore) Stats() sim.Stats {
	var s sim.Stats
	if c.simNet != nil {
		c.simNet.Sync(func() { s = c.simNet.Stats() })
	}
	return s
}

// LinkStats counts one node's traffic with one peer on a network
// substrate (TCP tracks per-link detail; UDP reports node totals only).
type LinkStats struct {
	// Peer is the other endpoint of the link.
	Peer int
	// Sent counts messages handed to the network toward Peer.
	Sent int64
	// Received counts messages delivered from Peer.
	Received int64
	// Dropped counts messages lost on this link at this node (dead or
	// backlogged connection on the send side, full mailbox on the
	// receive side).
	Dropped int64
}

// TransportStats holds one node's transport counters, in the same shape
// on every substrate (the mirror of core.TransportStats).
type TransportStats struct {
	// Addr is the node's bound local address ("" on the in-memory
	// substrates, which have no transport).
	Addr string
	// Sends counts messages successfully handed to the network.
	Sends int64
	// Recvs counts messages received into the mailbox layer.
	Recvs int64
	// SendDrops counts messages lost at the sender (failed writes,
	// unencodable payloads, dead or backlogged connections).
	SendDrops int64
	// MailboxDrops counts messages dropped at a full receive mailbox
	// (the model's lose-on-full rule).
	MailboxDrops int64
	// Redials counts reconnection attempts (TCP's dial/accept lifecycle
	// re-establishing lost connections; zero elsewhere).
	Redials int64
	// SendDatagrams and RecvDatagrams count wire frames moved by the
	// socket layer — UDP datagrams, or length-prefixed frames on a TCP
	// stream. With wire v3 batching one frame carries many messages, so
	// Sends/SendDatagrams is the average batch occupancy. Zero on the
	// in-memory substrates.
	SendDatagrams int64
	RecvDatagrams int64
	// SendSyscalls and RecvSyscalls count socket system calls.
	// sendmmsg/recvmmsg (UDP on Linux), vectored writes, and buffered
	// reads (TCP) move several frames per call, so Sends/SendSyscalls
	// measures the syscall amortization the batch path buys. Zero on the
	// in-memory substrates.
	SendSyscalls int64
	RecvSyscalls int64
	// Links holds per-link counters when the transport tracks them
	// (TCP), nil otherwise.
	Links []LinkStats
	// Faults counts the faults injected at this node's mailbox boundary
	// by the cluster's FaultPlan (zero without one).
	Faults FaultStats
}

// TransportStats returns one entry per process on every substrate: real
// socket counters on the network substrates (UDP, TCP), zero-valued
// entries on the in-memory ones (sim, runtime), which have no transport.
func (c *clusterCore) TransportStats() []TransportStats {
	ts, ok := c.sub.(core.TransportStatser)
	if !ok {
		return nil
	}
	stats := ts.TransportStats()
	out := make([]TransportStats, len(stats))
	for i, s := range stats {
		out[i] = TransportStats{
			Addr:          s.Addr,
			Sends:         s.Sends,
			Recvs:         s.Recvs,
			SendDrops:     s.SendDrops,
			MailboxDrops:  s.MailboxDrops,
			Redials:       s.Redials,
			SendDatagrams: s.SendDatagrams,
			RecvDatagrams: s.RecvDatagrams,
			SendSyscalls:  s.SendSyscalls,
			RecvSyscalls:  s.RecvSyscalls,
			Faults:        publicFaultStats(s.Faults),
		}
		if len(s.Links) > 0 {
			links := make([]LinkStats, len(s.Links))
			for j, l := range s.Links {
				links[j] = LinkStats{Peer: int(l.Peer), Sent: l.Sent, Received: l.Received, Dropped: l.Dropped}
			}
			out[i].Links = links
		}
	}
	return out
}

// newRequest returns an unstarted request handle. Typed wrappers are
// assembled around it BEFORE start is called, so the completion
// condition may safely write result fields through the wrapper.
func (c *clusterCore) newRequest() *Request {
	return &Request{done: make(chan struct{})}
}

// start launches the request: a goroutine takes process p's request
// gate, awaits cond on the substrate, and completes r with the mapped
// terminal error. label names the operation in error messages. onAbort,
// when non-nil, runs in p's atomic context if the await failed — while
// the gate is still held, so it can undo per-request machine state
// (e.g. an installed critical-section body) before the next request at
// p proceeds.
func (c *clusterCore) start(r *Request, p int, label string, cond func(env core.Env) bool, onAbort func(env core.Env)) {
	if p < 0 || p >= c.sub.N() {
		r.err = fmt.Errorf("%w: %s at %d (cluster has %d)", ErrInvalidProcess, label, p, c.sub.N())
		close(r.done)
		return
	}
	go func() {
		c.reqMu[p].Lock()
		err := c.sub.Await(c.ctx, core.ProcID(p), cond)
		if err != nil && onAbort != nil {
			// Do keeps working after substrate Close (the mutexes
			// outlive the engine), so abort cleanup always runs.
			c.sub.Do(core.ProcID(p), onAbort)
		}
		c.reqMu[p].Unlock()
		if err == nil {
			err = r.fail
		}
		r.err = c.describeErr(err, label, p)
		close(r.done)
	}()
}

// describeErr maps substrate errors onto the façade's sentinel errors.
func (c *clusterCore) describeErr(err error, label string, p int) error {
	var budget *sim.ErrBudget
	switch {
	case err == nil:
		return nil
	case errors.As(err, &budget):
		return fmt.Errorf("%w: %s at %d", ErrBudget, label, p)
	case errors.Is(err, sim.ErrClosed), errors.Is(err, runtime.ErrStopped),
		errors.Is(err, udp.ErrStopped), errors.Is(err, tcp.ErrStopped),
		c.ctx.Err() != nil:
		return fmt.Errorf("%w: %s at %d", ErrClosed, label, p)
	}
	return fmt.Errorf("snapstab: %s at %d: %w", label, p, err)
}

// corruptMachines randomizes every machine's protocol state: in one
// scheduler-paused critical section on the deterministic substrate
// (preserving the exact per-seed corruption of earlier revisions), and
// process by process under each substrate-atomic context on the
// concurrent engines.
func (c *clusterCore) corruptMachines(r *rng.Source) {
	if net := c.simNet; net != nil {
		net.Sync(func() { config.CorruptMachines(net, r) })
		return
	}
	for p := 0; p < c.sub.N(); p++ {
		stack := c.stacks[p]
		c.sub.Do(core.ProcID(p), func(core.Env) { stack.Corrupt(r) })
	}
}

// fillChannelGarbage loads random well-formed messages into every
// channel of the listed instances. Preloading channels needs scheduler
// cooperation, so it exists only on the deterministic substrate; on the
// concurrent engines channels start empty, which the model permits (the
// arbitrary state is the machines'). opts tunes the garbage (typed
// clusters draw opaque bodies; the zero value replays legacy streams
// byte-identically).
func (c *clusterCore) fillChannelGarbage(r *rng.Source, specs []config.InstanceSpec, opts config.Options) {
	if net := c.simNet; net != nil {
		net.Sync(func() { config.FillChannels(net, r, specs, opts) })
	}
}

// corrupt is the shared CorruptEverything implementation: randomize all
// machine state, then garbage every listed instance's channels.
func (c *clusterCore) corrupt(r *rng.Source, specs []config.InstanceSpec, opts config.Options) {
	c.corruptMachines(r)
	c.fillChannelGarbage(r, specs, opts)
}
