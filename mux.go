package snapstab

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
	tcp "github.com/snapstab/snapstab/internal/transport/tcp"
	udp "github.com/snapstab/snapstab/internal/transport/udp"
)

// Mux is a shared transport layer hosting many clusters over one set of
// sockets: n UDP sockets (UDPMux) or n TCP listeners with one persistent
// connection mesh (TCPMux), where n is the process count every attached
// cluster must share. Each cluster built on Mux.Substrate() attaches as
// a wire v3 group: its messages ride the shared sockets tagged with a
// group id, batched and coalesced together with its siblings' traffic,
// while routing, topology, observers, the fault plane, and the message
// counters stay strictly per cluster.
//
//	mux, err := snapstab.UDPMux(5)
//	defer mux.Close()
//	a := snapstab.NewPIFCluster(5, snapstab.WithSubstrate(mux.Substrate()))
//	b := snapstab.NewPIFCluster(5, snapstab.WithSubstrate(mux.Substrate()))
//
// Closing a cluster detaches its group and leaves the mux — and every
// sibling cluster — running; the mux itself must be closed by its owner
// to release the sockets (which also tears down any still-attached
// clusters).
type Mux struct {
	udp *udp.Mux
	tcp *tcp.Mux
}

// UDPMux binds one loopback datagram socket per process and returns a
// mux ready to host clusters. The only cluster option read here is
// WithBatch, fixing the coalescing ceiling of the shared sockets (the
// batch is a socket-level knob, so it cannot vary per attached cluster);
// everything else — topology, faults, receivers, capacity — is given to
// the cluster constructors instead. Socket binding failures are
// returned, not panicked: the mux is built before any cluster exists.
func UDPMux(nProcs int, opts ...Option) (*Mux, error) {
	o := buildOptions(opts)
	var uopts []udp.Option
	if o.batch > 0 {
		uopts = append(uopts, udp.WithBatch(o.batch))
	}
	m, err := udp.NewMux(nProcs, uopts...)
	if err != nil {
		return nil, err
	}
	return &Mux{udp: m}, nil
}

// TCPMux binds one loopback listener per process, dials the full
// connection mesh, and returns a mux ready to host clusters. As with
// UDPMux, the only cluster option read here is WithBatch — on TCP it
// bounds the frames per vectored write on the shared connections;
// per-cluster options belong to the cluster constructors.
func TCPMux(nProcs int, opts ...Option) (*Mux, error) {
	o := buildOptions(opts)
	var topts []tcp.Option
	if o.batch > 0 {
		topts = append(topts, tcp.WithBatch(o.batch))
	}
	m, err := tcp.NewMux(nProcs, topts...)
	if err != nil {
		return nil, err
	}
	return &Mux{tcp: m}, nil
}

// N returns the process count every attached cluster must match.
func (m *Mux) N() int {
	if m.udp != nil {
		return m.udp.N()
	}
	return m.tcp.N()
}

// Addrs returns every node's bound local address.
func (m *Mux) Addrs() []string {
	if m.udp != nil {
		return m.udp.Addrs()
	}
	return m.tcp.Addrs()
}

// Substrate returns the substrate specification that attaches a cluster
// to this mux. Each cluster constructed with it becomes a fresh group on
// the shared sockets; the specification is reusable — build as many
// clusters from it as the application needs. Cluster topology, faults,
// and event hooks apply per attached cluster as on the dedicated
// UDP()/TCP() substrates; WithBatch does not (the batch ceiling was
// fixed when the mux was built) and is ignored.
func (m *Mux) Substrate() Substrate {
	if m.udp != nil {
		return Substrate{
			name: "udp-mux",
			capacity: func(o options) int {
				if o.capacity > udp.DefaultAssumedCapacity {
					return o.capacity
				}
				return udp.DefaultAssumedCapacity
			},
			build: func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error) {
				if len(stacks) != m.udp.N() {
					return nil, fmt.Errorf("snapstab: %d-process cluster on a %d-process mux", len(stacks), m.udp.N())
				}
				uopts := make([]udp.Option, 0, len(obs)+2)
				for _, ob := range obs {
					uopts = append(uopts, udp.WithObserver(ob))
				}
				if o.topology != nil {
					uopts = append(uopts, udp.WithTopology(o.topology))
				}
				if o.faults != nil {
					uopts = append(uopts, udp.WithFaults(o.faults))
				}
				return m.udp.Attach(stacks, uopts...)
			},
		}
	}
	return Substrate{
		name:     "tcp-mux",
		capacity: tcpCapacity,
		build: func(o options, stacks []core.Stack, obs []core.Observer) (core.Substrate, error) {
			if len(stacks) != m.tcp.N() {
				return nil, fmt.Errorf("snapstab: %d-process cluster on a %d-process mux", len(stacks), m.tcp.N())
			}
			// The batch bound is a socket-level knob fixed at TCPMux; a
			// cluster-level WithBatch is ignored, as documented.
			o.batch = 0
			return m.tcp.Attach(stacks, tcpOptions(o, obs)...)
		},
	}
}

// Close releases the shared sockets, tearing down every still-attached
// cluster. Idempotent.
func (m *Mux) Close() error {
	if m.udp != nil {
		return m.udp.Close()
	}
	return m.tcp.Close()
}
