// Command benchgate is the CI benchmark regression gate: it parses two
// raw `go test -bench` output files (base and head), groups samples per
// benchmark, and fails — exit status 1 — when any benchmark shows a
// statistically significant regression beyond the threshold.
//
// The human-readable comparison in CI comes from benchstat; benchgate is
// the machine verdict behind it. It applies the Mann-Whitney U test (the
// same rank test benchstat uses) on the ns/op samples of each benchmark
// present in both files: a regression is flagged only when the head
// median is more than -threshold above the base median AND the two-sided
// p-value is below -alpha, so a noisy single run cannot fail a PR and a
// real slowdown cannot hide behind the mean of a lucky run.
//
// Usage:
//
//	go test -bench . -count=10 > base.txt   # at the base commit
//	go test -bench . -count=10 > head.txt   # at the head commit
//	benchgate -base base.txt -head head.txt -threshold 0.10
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		baseF     = flag.String("base", "", "benchmark output of the base commit")
		headF     = flag.String("head", "", "benchmark output of the head commit")
		metric    = flag.String("metric", "ns/op", "metric to gate on (lower is better)")
		threshold = flag.Float64("threshold", 0.10, "maximum tolerated median regression (0.10 = +10%)")
		alpha     = flag.Float64("alpha", 0.05, "significance level for the Mann-Whitney test")
		minN      = flag.Int("min-samples", 4, "minimum samples per side to attempt a verdict")
	)
	flag.Parse()
	if *baseF == "" || *headF == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}
	base, err := parseFile(*baseF, *metric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	head, err := parseFile(*headF, *metric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	report, regressed, compared := compare(base, head, *metric, *threshold, *alpha, *minN)
	fmt.Print(report)
	if compared == 0 {
		// No benchmark exists in both files: a rename or a bench-regex
		// drift would otherwise silently disable the gate. Hard error,
		// like an unparsable input.
		fmt.Fprintln(os.Stderr, "benchgate: nothing compared — base and head share no benchmark names")
		os.Exit(2)
	}
	if regressed {
		fmt.Printf("benchgate: FAIL — significant regression beyond %+.0f%%\n", *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// parseFile extracts per-benchmark samples of the requested metric from
// standard `go test -bench` output. Lines that are not benchmark results
// are ignored.
func parseFile(path, metric string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, val, ok := parseLine(sc.Text(), metric)
		if ok {
			out[name] = append(out[name], val)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark samples with metric %q", path, metric)
	}
	return out, nil
}

// parseLine extracts (benchmark name, metric value) from one output line:
//
//	BenchmarkFoo/n=8-4   100   12345 ns/op   3.3e6 msgs/sec
//
// The GOMAXPROCS suffix (-4) stays part of the name: samples only compare
// within identical configurations.
func parseLine(line, metric string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", 0, false // second field must be the iteration count
	}
	for i := 3; i < len(fields); i += 2 {
		if fields[i] != metric {
			continue
		}
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			return "", 0, false
		}
		return fields[0], v, true
	}
	return "", 0, false
}

// compare renders a verdict table and reports whether any benchmark
// regressed significantly, plus how many benchmarks were actually
// compared (0 means the gate had nothing to say and must not pass).
func compare(base, head map[string][]float64, metric string, threshold, alpha float64, minN int) (string, bool, int) {
	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := head[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	regressed := false
	if len(names) == 0 {
		b.WriteString("benchgate: no benchmarks common to both files\n")
		return b.String(), false, 0
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			fmt.Fprintf(&b, "note: %s present in base only (renamed or removed?)\n", name)
		}
	}
	fmt.Fprintf(&b, "%-44s %14s %14s %8s %8s  verdict\n", "benchmark ("+metric+")", "base median", "head median", "delta", "p")
	for _, name := range names {
		bs, hs := base[name], head[name]
		mb, mh := median(bs), median(hs)
		delta := (mh - mb) / mb
		row := fmt.Sprintf("%-44s %14.1f %14.1f %+7.1f%% ", name, mb, mh, delta*100)
		if len(bs) < minN || len(hs) < minN {
			fmt.Fprintf(&b, "%s %8s  too few samples (%d vs %d)\n", row, "-", len(bs), len(hs))
			continue
		}
		p := mannWhitneyP(bs, hs)
		switch {
		case delta > threshold && p < alpha:
			regressed = true
			fmt.Fprintf(&b, "%s %8.4f  REGRESSION\n", row, p)
		case delta < -threshold && p < alpha:
			fmt.Fprintf(&b, "%s %8.4f  improvement\n", row, p)
		default:
			fmt.Fprintf(&b, "%s %8.4f  ~\n", row, p)
		}
	}
	return b.String(), regressed, len(names)
}

// median returns the sample median.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mannWhitneyP returns the two-sided p-value of the Mann-Whitney U test
// under the normal approximation with tie correction — adequate for the
// sample counts CI uses (count >= 4 per side) and dependency-free.
func mannWhitneyP(xs, ys []float64) float64 {
	type obs struct {
		v    float64
		side int // 0 = xs, 1 = ys
	}
	all := make([]obs, 0, len(xs)+len(ys))
	for _, v := range xs {
		all = append(all, obs{v, 0})
	}
	for _, v := range ys {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	n1, n2 := float64(len(xs)), float64(len(ys))
	n := n1 + n2
	// Average ranks over ties; accumulate the tie correction term.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based: positions i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.side == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - n1*(n1+1)/2
	mu := n1 * n2 / 2
	sigma2 := n1 * n2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return 1 // all samples identical
	}
	// Continuity correction toward the mean.
	z := u1 - mu
	switch {
	case z > 0.5:
		z -= 0.5
	case z < -0.5:
		z += 0.5
	default:
		z = 0
	}
	z /= math.Sqrt(sigma2)
	return math.Erfc(math.Abs(z) / math.Sqrt2) // two-sided
}
