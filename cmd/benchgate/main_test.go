package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchFile renders count samples per benchmark in go-test output format,
// with values drawn around each benchmark's center.
func benchFile(t *testing.T, name string, centers map[string]float64, count int, r *rand.Rand) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("goos: linux\ngoarch: amd64\npkg: example.com/x\n")
	for bench, center := range centers {
		for i := 0; i < count; i++ {
			v := center * (1 + 0.02*(r.Float64()-0.5)) // ±1% noise
			msgs := 1e9 / v
			fmt.Fprintf(&b, "%s-8   \t     100\t  %.1f ns/op\t  %.0f msgs/sec\n", bench, v, msgs)
		}
	}
	b.WriteString("PASS\n")
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGate(t *testing.T, basePath, headPath string) (string, bool) {
	t.Helper()
	base, err := parseFile(basePath, "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	head, err := parseFile(headPath, "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	report, regressed, compared := compare(base, head, "ns/op", 0.10, 0.05, 4)
	if compared == 0 {
		t.Fatalf("nothing compared:\n%s", report)
	}
	return report, regressed
}

// TestDisjointBenchmarkSetsAreAnError pins the gate-bypass fix: a rename
// that empties the base/head intersection must not silently pass.
func TestDisjointBenchmarkSetsAreAnError(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	base := benchFile(t, "base.txt", map[string]float64{"BenchmarkOld": 1000}, 10, r)
	head := benchFile(t, "head.txt", map[string]float64{"BenchmarkNew": 1000}, 10, r)
	bs, err := parseFile(base, "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	hs, err := parseFile(head, "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, compared := compare(bs, hs, "ns/op", 0.10, 0.05, 4); compared != 0 {
		t.Fatalf("compared = %d for disjoint sets, want 0", compared)
	}
}

func TestParseLine(t *testing.T) {
	name, v, ok := parseLine("BenchmarkRuntimeThroughput/n=8-4   \t     100\t  12345.0 ns/op\t  3300000 msgs/sec", "ns/op")
	if !ok || name != "BenchmarkRuntimeThroughput/n=8-4" || v != 12345.0 {
		t.Fatalf("got (%q, %v, %v)", name, v, ok)
	}
	if _, mv, ok := parseLine("BenchmarkX-4 100 5 ns/op 42 msgs/sec", "msgs/sec"); !ok || mv != 42 {
		t.Fatalf("custom metric: got (%v, %v)", mv, ok)
	}
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok   pkg 1.2s",
		"BenchmarkBroken notanumber 5 ns/op",
		"--- BENCH: BenchmarkX",
	} {
		if _, _, ok := parseLine(line, "ns/op"); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}

func TestDetectsRegression(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	base := benchFile(t, "base.txt", map[string]float64{
		"BenchmarkA": 1000,
		"BenchmarkB": 500,
	}, 10, r)
	head := benchFile(t, "head.txt", map[string]float64{
		"BenchmarkA": 1300, // +30%: regression
		"BenchmarkB": 500,
	}, 10, r)
	report, regressed := runGate(t, base, head)
	if !regressed {
		t.Fatalf("+30%% slowdown not flagged:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") || !strings.Contains(report, "BenchmarkA") {
		t.Fatalf("report does not name the regression:\n%s", report)
	}
}

func TestPassesWithinNoise(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	centers := map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 500}
	base := benchFile(t, "base.txt", centers, 10, r)
	head := benchFile(t, "head.txt", centers, 10, r)
	report, regressed := runGate(t, base, head)
	if regressed {
		t.Fatalf("noise flagged as regression:\n%s", report)
	}
}

func TestImprovementDoesNotFail(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	base := benchFile(t, "base.txt", map[string]float64{"BenchmarkA": 1000}, 10, r)
	head := benchFile(t, "head.txt", map[string]float64{"BenchmarkA": 600}, 10, r)
	report, regressed := runGate(t, base, head)
	if regressed {
		t.Fatalf("-40%% speedup flagged as regression:\n%s", report)
	}
	if !strings.Contains(report, "improvement") {
		t.Fatalf("report does not mark the improvement:\n%s", report)
	}
}

func TestTooFewSamplesNeverFails(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	base := benchFile(t, "base.txt", map[string]float64{"BenchmarkA": 1000}, 2, r)
	head := benchFile(t, "head.txt", map[string]float64{"BenchmarkA": 2000}, 2, r)
	report, regressed := runGate(t, base, head)
	if regressed {
		t.Fatalf("verdict from 2 samples:\n%s", report)
	}
	if !strings.Contains(report, "too few samples") {
		t.Fatalf("report does not flag the sample count:\n%s", report)
	}
}

// TestThresholdRespected pins that a significant but small slowdown
// passes: the gate fails on >10% only.
func TestThresholdRespected(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	base := benchFile(t, "base.txt", map[string]float64{"BenchmarkA": 1000}, 10, r)
	head := benchFile(t, "head.txt", map[string]float64{"BenchmarkA": 1050}, 10, r) // +5%
	report, regressed := runGate(t, base, head)
	if regressed {
		t.Fatalf("+5%% slowdown failed the 10%% gate:\n%s", report)
	}
}

func TestMannWhitneySanity(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := mannWhitneyP(same, same); p < 0.9 {
		t.Fatalf("identical samples: p = %v, want ~1", p)
	}
	lo := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	hi := []float64{101, 102, 103, 104, 105, 106, 107, 108, 109, 110}
	if p := mannWhitneyP(lo, hi); p > 0.01 {
		t.Fatalf("disjoint samples: p = %v, want < 0.01", p)
	}
}
