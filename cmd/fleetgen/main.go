// Command fleetgen writes everything needed to launch a local (or
// containerized) snapd fleet: one JSON config per node plus launch
// scripts, for fleets from 2 to 1000 nodes.
//
// Usage:
//
//	fleetgen -n 5 -protocol typed -out fleet/
//	fleetgen -n 100 -protocol pif -corrupt -seed 7 -out fleet/ -mode shell,tmux
//	fleetgen -n 10 -protocol forward -topology line -out fleet/ -mode all
//
// Emitted into -out:
//
//	node-<i>.json          per-node snapd configs (loopback host:port layout)
//	up.sh / down.sh        background fleet with pid files and per-node logs
//	tmux.sh                the same fleet, one tmux window per node
//	docker-compose.yml     one service per node on a compose network
//	node-<i>.compose.json  configs for the compose layout (service DNS names)
//	Dockerfile             builds the snapd image the compose file runs
//
// The shell and tmux scripts expect the snapd binary next to the configs
// or on PATH (override with SNAPD=/path/to/snapd). All fleet-wide fields
// (protocol, seed, corruption, topology, fault plan) are baked into the
// configs, so the scripts carry no protocol logic; drive the running
// fleet with snapctl against any node's control address.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/snapstab/snapstab/internal/deploy"
)

func main() {
	var (
		n        = flag.Int("n", 5, "fleet size (2..1000)")
		protocol = flag.String("protocol", "typed", "cluster type: pif, typed, idl, mutex, reset, snap, forward")
		outDir   = flag.String("out", "", "output directory (required; created if missing)")
		mode     = flag.String("mode", "all", "comma-separated artifacts: shell, tmux, compose, or all")
		host     = flag.String("host", "127.0.0.1", "bind/dial host for the shell and tmux layouts")
		basePort = flag.Int("base-port", 9100, "first transport port (node i uses base+i)")
		ctrlPort = flag.Int("control-port", 8100, "first control port (node i uses base+i)")
		topology = flag.String("topology", "", "topology name or graph.txt path (empty = protocol default)")
		seed     = flag.Uint64("seed", 1, "cluster seed (fleet-wide)")
		corrupt  = flag.Bool("corrupt", false, "start every node from a corrupted initial configuration")
		logLevel = flag.String("log-level", "info", "snapd log level: debug, info, warn, error")
	)
	flag.Parse()
	if err := run(*n, *protocol, *outDir, *mode, *host, *basePort, *ctrlPort, *topology, *seed, *corrupt, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
}

func run(n int, protocol, outDir, mode, host string, basePort, ctrlPort int, topology string, seed uint64, corrupt bool, logLevel string) error {
	if n < 2 || n > 1000 {
		return fmt.Errorf("fleet size %d outside 2..1000", n)
	}
	if outDir == "" {
		return fmt.Errorf("-out is required")
	}
	if basePort+n > 65536 || ctrlPort+n > 65536 {
		return fmt.Errorf("port range overflows 65535 (base %d / control %d, n %d)", basePort, ctrlPort, n)
	}
	modes := map[string]bool{}
	for _, m := range strings.Split(mode, ",") {
		switch m = strings.TrimSpace(m); m {
		case "all":
			modes["shell"], modes["tmux"], modes["compose"] = true, true, true
		case "shell", "tmux", "compose":
			modes[m] = true
		case "":
		default:
			return fmt.Errorf("unknown mode %q (want shell, tmux, compose, or all)", m)
		}
	}
	if len(modes) == 0 {
		return fmt.Errorf("no artifacts selected")
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	base := deploy.Config{
		Protocol: protocol,
		Topology: topology,
		Seed:     seed,
		Corrupt:  corrupt,
		LogLevel: logLevel,
	}

	// Loopback layout: node i's transport on host:basePort+i, control on
	// host:ctrlPort+i. Shared by the shell and tmux scripts.
	local := make([]deploy.Config, n)
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("%s:%d", host, basePort+i)
	}
	for i := range local {
		c := base
		c.Node = i
		c.Peers = peers
		c.Listen = peers[i]
		c.Control = fmt.Sprintf("%s:%d", host, ctrlPort+i)
		local[i] = c
		if err := writeJSON(filepath.Join(outDir, fmt.Sprintf("node-%d.json", i)), c); err != nil {
			return err
		}
	}
	// Validate once through the daemon's own gate so a bad flag
	// combination fails here, not at fleet launch.
	if err := local[0].Validate(); err != nil {
		return err
	}

	if modes["shell"] {
		if err := writeScript(filepath.Join(outDir, "up.sh"), upScript(n, ctrlPort, host)); err != nil {
			return err
		}
		if err := writeScript(filepath.Join(outDir, "down.sh"), downScript(n)); err != nil {
			return err
		}
	}
	if modes["tmux"] {
		if err := writeScript(filepath.Join(outDir, "tmux.sh"), tmuxScript(n, protocol)); err != nil {
			return err
		}
	}
	if modes["compose"] {
		// Compose layout: every container listens on the same ports;
		// peers dial service DNS names, and each node's control port is
		// published to the host at ctrlPort+i.
		composePeers := make([]string, n)
		for i := range composePeers {
			composePeers[i] = fmt.Sprintf("node%d:9100", i)
		}
		for i := 0; i < n; i++ {
			c := base
			c.Node = i
			c.Peers = composePeers
			c.Listen = ":9100"
			c.Control = ":8100"
			if err := writeJSON(filepath.Join(outDir, fmt.Sprintf("node-%d.compose.json", i)), c); err != nil {
				return err
			}
		}
		if err := os.WriteFile(filepath.Join(outDir, "docker-compose.yml"), []byte(composeFile(n, ctrlPort, filepath.Base(absDir(outDir)))), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(outDir, "Dockerfile"), []byte(dockerfile), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote a %d-node %s fleet to %s\n", n, protocol, outDir)
	fmt.Printf("drive it with: snapctl -addr %s:%d status\n", host, ctrlPort)
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeScript(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o755)
}

// upScript launches every node in the background with pid files and
// per-node logs, then waits until every control endpoint answers.
func upScript(n, ctrlPort int, host string) string {
	return fmt.Sprintf(`#!/bin/sh
# Generated by fleetgen. Launches the %[1]d-node fleet in the background.
set -eu
cd "$(dirname "$0")"
SNAPD="${SNAPD:-snapd}"
command -v "$SNAPD" >/dev/null 2>&1 || SNAPD=./snapd
mkdir -p logs pids
i=0
while [ "$i" -lt %[1]d ]; do
  "$SNAPD" -config "node-$i.json" >"logs/node-$i.log" 2>&1 &
  echo $! >"pids/node-$i.pid"
  i=$((i + 1))
done
echo "launched %[1]d daemons; waiting for control endpoints"
i=0
while [ "$i" -lt %[1]d ]; do
  port=$((%[2]d + i))
  tries=0
  until snapctl -addr "%[3]s:$port" status >/dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
      echo "node $i (control %[3]s:$port) never answered; see logs/node-$i.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  i=$((i + 1))
done
echo "fleet up; try: snapctl -addr %[3]s:%[2]d status"
`, n, ctrlPort, host)
}

// downScript stops the fleet from the pid files up.sh wrote.
func downScript(n int) string {
	return fmt.Sprintf(`#!/bin/sh
# Generated by fleetgen. Stops the %[1]d-node fleet launched by up.sh.
cd "$(dirname "$0")"
i=0
while [ "$i" -lt %[1]d ]; do
  if [ -f "pids/node-$i.pid" ]; then
    kill "$(cat "pids/node-$i.pid")" 2>/dev/null || true
    rm -f "pids/node-$i.pid"
  fi
  i=$((i + 1))
done
echo "fleet down"
`, n)
}

// tmuxScript opens one tmux window per node, so each daemon's log
// stream is a window in one session.
func tmuxScript(n int, protocol string) string {
	return fmt.Sprintf(`#!/bin/sh
# Generated by fleetgen. Runs the %[1]d-node fleet under tmux, one
# window per node. Attach with: tmux attach -t %[2]s
set -eu
cd "$(dirname "$0")"
SNAPD="${SNAPD:-snapd}"
command -v "$SNAPD" >/dev/null 2>&1 || SNAPD=./snapd
SESSION="${SESSION:-%[2]s}"
tmux new-session -d -s "$SESSION" -n node-0 "$SNAPD -config node-0.json"
i=1
while [ "$i" -lt %[1]d ]; do
  tmux new-window -t "$SESSION" -n "node-$i" "$SNAPD -config node-$i.json"
  i=$((i + 1))
done
echo "fleet running in tmux session $SESSION (tmux attach -t $SESSION)"
`, n, "snapfleet-"+protocol)
}

// absDir resolves dir for basename computation; on failure the relative
// path's base is still usable.
func absDir(dir string) string {
	if a, err := filepath.Abs(dir); err == nil {
		return a
	}
	return dir
}

// composeFile emits one service per node; node i's control endpoint is
// published to the host at ctrlPort+i. The build context is the fleet
// directory's parent — the repository root when the fleet was generated
// into a directory directly inside the checkout (fleetgen -out fleet/).
func composeFile(n, ctrlPort int, fleetBase string) string {
	var b strings.Builder
	b.WriteString("# Generated by fleetgen.\n")
	b.WriteString("# Build and launch (from this directory, inside the repository checkout):\n")
	b.WriteString("#   docker compose up --build\n")
	b.WriteString("services:\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `  node%[1]d:
    build:
      context: ..
      dockerfile: %[3]s/Dockerfile
    command: ["-config", "/fleet/node-%[1]d.compose.json"]
    volumes:
      - .:/fleet:ro
    ports:
      - "%[2]d:8100"
`, i, ctrlPort+i, fleetBase)
	}
	return b.String()
}

const dockerfile = `# Generated by fleetgen. Builds snapd from the repository the fleet
# directory lives in (the compose file sets the build context to the
# fleet directory's parent).
FROM golang:1.22 AS build
WORKDIR /src
COPY . .
RUN CGO_ENABLED=0 go build -o /out/snapd ./cmd/snapd

FROM gcr.io/distroless/static-debian12
COPY --from=build /out/snapd /usr/local/bin/snapd
ENTRYPOINT ["/usr/local/bin/snapd"]
`
