package main

import (
	"strings"
	"testing"
)

func TestRunAllProtocols(t *testing.T) {
	t.Parallel()
	for _, proto := range []string{"pif", "idl", "me"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			if err := run(proto, 3, 0.1, 7, true, 1, 2); err != nil {
				t.Fatalf("run(%s) = %v", proto, err)
			}
		})
	}
}

func TestRunCleanStart(t *testing.T) {
	t.Parallel()
	if err := run("pif", 2, 0, 1, false, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunCapacityTwo(t *testing.T) {
	t.Parallel()
	if err := run("pif", 3, 0, 3, true, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	t.Parallel()
	if err := run("nope", 3, 0, 1, false, 1, 1); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("bad protocol: err = %v", err)
	}
	if err := run("pif", 1, 0, 1, false, 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
}
