// Command snapsim runs the snap-stabilizing protocols on the deterministic
// simulator and reports what happened.
//
// Usage:
//
//	snapsim -protocol pif -n 5 -loss 0.2 -corrupt -seed 42
//	snapsim -protocol me  -n 3 -corrupt -requests 5
//	snapsim -protocol idl -n 4 -corrupt
//
// Every run is a pure function of its flags; rerun with the same flags to
// replay an execution exactly.
package main

import (
	"flag"
	"fmt"
	"os"

	snapstab "github.com/snapstab/snapstab"
)

func main() {
	var (
		protocol = flag.String("protocol", "pif", "protocol to run: pif, idl, or me")
		n        = flag.Int("n", 3, "number of processes (>= 2)")
		loss     = flag.Float64("loss", 0, "link loss probability in [0, 1)")
		seed     = flag.Uint64("seed", 1, "scheduler seed")
		corrupt  = flag.Bool("corrupt", false, "start from an arbitrary (corrupted) initial configuration")
		capacity = flag.Int("capacity", 1, "known channel capacity bound")
		requests = flag.Int("requests", 3, "number of requests to serve")
	)
	flag.Parse()
	if err := run(*protocol, *n, *loss, *seed, *corrupt, *capacity, *requests); err != nil {
		fmt.Fprintln(os.Stderr, "snapsim:", err)
		os.Exit(1)
	}
}

func run(protocol string, n int, loss float64, seed uint64, corrupt bool, capacity, requests int) error {
	if n < 2 {
		return fmt.Errorf("need n >= 2, got %d", n)
	}
	opts := []snapstab.Option{
		snapstab.WithSeed(seed),
		snapstab.WithLossRate(loss),
		snapstab.WithCapacity(capacity),
	}
	switch protocol {
	case "pif":
		return runPIF(n, seed, corrupt, requests, opts)
	case "idl":
		return runIDL(n, seed, corrupt, opts)
	case "me":
		return runME(n, seed, corrupt, requests, opts)
	default:
		return fmt.Errorf("unknown protocol %q (want pif, idl, or me)", protocol)
	}
}

func runPIF(n int, seed uint64, corrupt bool, requests int, opts []snapstab.Option) error {
	c := snapstab.NewPIFCluster(n, opts...)
	if corrupt {
		c.CorruptEverything(seed ^ 0xBAD)
		fmt.Println("initial configuration: corrupted (machine state + channel garbage)")
	}
	for r := 0; r < requests; r++ {
		initiator := r % n
		fb, err := c.Broadcast(initiator, "msg", int64(r))
		if err != nil {
			return err
		}
		fmt.Printf("request %d: process %d broadcast msg(%d); %d acknowledgments:\n", r, initiator, r, len(fb))
		for _, f := range fb {
			fmt.Printf("  from p%d: %s(%d)\n", f.From, f.Value.Tag, f.Value.Num)
		}
	}
	s := c.Stats()
	fmt.Printf("totals: %d steps, %d sends, %d deliveries, %d losses (%d full-channel)\n",
		s.Steps, s.Sends, s.Deliveries, s.LinkLosses+s.SendLosses, s.SendLosses)
	return nil
}

func runIDL(n int, seed uint64, corrupt bool, opts []snapstab.Option) error {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64((i*37)%100 + 1)
	}
	c := snapstab.NewIDCluster(ids, opts...)
	if corrupt {
		c.CorruptEverything(seed ^ 0xBAD)
		fmt.Println("initial configuration: corrupted")
	}
	for p := 0; p < n; p++ {
		min, table, err := c.Learn(p)
		if err != nil {
			return err
		}
		fmt.Printf("process %d learned: minID=%d table=%v\n", p, min, table)
	}
	return nil
}

func runME(n int, seed uint64, corrupt bool, requests int, opts []snapstab.Option) error {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i*11 + 7)
	}
	c := snapstab.NewMutexCluster(ids, opts...)
	if corrupt {
		c.CorruptEverything(seed ^ 0xBAD)
		fmt.Println("initial configuration: corrupted (possibly with zombie critical-section occupants)")
	}
	counter := 0
	for r := 0; r < requests; r++ {
		p := r % n
		if err := c.Acquire(p, func() { counter++ }); err != nil {
			return err
		}
		fmt.Printf("request %d: process %d served; shared counter = %d\n", r, p, counter)
	}
	if v := c.Violations(); len(v) > 0 {
		return fmt.Errorf("mutual exclusion violated: %v", v)
	}
	fmt.Printf("served %d critical-section entries, zero violations\n", c.Entries())
	return nil
}
