// Command snapd is the snap-stabilization node daemon: it hosts ONE
// process of a protocol fleet over the TCP substrate, driven by a JSON
// config file, and serves an HTTP control API plus Prometheus metrics.
// A fleet is n snapd processes — on one machine or many — whose config
// files agree on the fleet-wide fields; cmd/fleetgen writes such config
// sets and launch scripts.
//
// Usage:
//
//	snapd -config node0.json
//
// Endpoints (on the config's control address):
//
//	GET  /v1/status   node identity and transport counters
//	POST /v1/request  protocol requests, NDJSON response stream
//	GET  /metrics     Prometheus text exposition
//
// The daemon exits cleanly on SIGINT/SIGTERM. Killing it hard instead is
// also fine by design: the protocols tolerate a crashed-and-restarted
// peer as ordinary message loss, and the restarted daemon's transport
// redials its links — kill-and-restart is one of the deployment smoke
// test's scenarios, not an emergency.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/snapstab/snapstab/internal/deploy"
	"github.com/snapstab/snapstab/internal/obs"
)

func main() {
	configPath := flag.String("config", "", "path to the node's JSON config file (required)")
	flag.Parse()
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "snapd: -config is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*configPath); err != nil {
		fmt.Fprintln(os.Stderr, "snapd:", err)
		os.Exit(1)
	}
}

func run(configPath string) error {
	cfg, err := deploy.Load(configPath)
	if err != nil {
		return err
	}
	log := obs.NewLogger(os.Stderr, obs.ParseLevel(cfg.LogLevel), cfg.Node, cfg.Protocol)
	d, err := deploy.New(cfg, log)
	if err != nil {
		return err
	}
	defer d.Close()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- d.Serve() }()
	select {
	case s := <-sig:
		log.Info("shutting down", "signal", s.String())
		return d.Close()
	case err := <-done:
		return err
	}
}
