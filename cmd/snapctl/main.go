// Command snapctl is the fleet client: it submits protocol requests to
// a snapd daemon's control API and streams the response.
//
// Usage:
//
//	snapctl -addr 127.0.0.1:8100 status
//	snapctl -addr 127.0.0.1:8100 broadcast -tag hello -num 42     # pif
//	snapctl -addr 127.0.0.1:8100 broadcast -value '{"k":"v"}'     # typed
//	snapctl -addr 127.0.0.1:8100 forward -dst 4 -value '"hi"'
//	snapctl -addr 127.0.0.1:8100 deliveries
//	snapctl -addr 127.0.0.1:8100 snapshot | learn | acquire | reset
//	snapctl -addr 127.0.0.1:8100 metrics
//
// Requests initiate at the process the addressed daemon hosts; to
// initiate at process p, address process p's daemon. The NDJSON stream
// is printed line by line as it arrives (the "accepted" line carries the
// request id, the terminal line the result), so a slow request is
// visibly in flight.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/snapstab/snapstab/internal/deploy"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8100", "daemon control address")
		timeout = flag.Duration("timeout", 30*time.Second, "request deadline")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: snapctl [-addr host:port] [-timeout d] <command> [args]\n"+
				"commands: status, metrics, broadcast, forward, deliveries, snapshot, learn, acquire, reset\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := run(ctx, deploy.NewClient(*addr), *timeout, flag.Arg(0), flag.Args()[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "snapctl:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, c *deploy.Client, timeout time.Duration, command string, args []string) error {
	switch command {
	case "status":
		st, err := c.Status(ctx)
		if err != nil {
			return err
		}
		out, _ := json.MarshalIndent(st, "", "  ")
		fmt.Println(string(out))
		return nil
	case "metrics":
		text, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil
	}

	// Protocol requests: map the subcommand and its flags onto the
	// daemon's op vocabulary.
	var params any
	op := command
	switch command {
	case "broadcast":
		fs := flag.NewFlagSet("broadcast", flag.ExitOnError)
		tag := fs.String("tag", "hello", "pif protocol: broadcast tag")
		num := fs.Int64("num", 42, "pif protocol: broadcast number")
		value := fs.String("value", "", "typed protocol: JSON document to broadcast")
		fs.Parse(args)
		if *value != "" {
			params = map[string]any{"value": json.RawMessage(*value)}
		} else {
			params = map[string]any{"tag": *tag, "num": *num}
		}
	case "forward":
		fs := flag.NewFlagSet("forward", flag.ExitOnError)
		dst := fs.Int("dst", 0, "destination process")
		value := fs.String("value", `"hello"`, "JSON document to forward")
		fs.Parse(args)
		params = map[string]any{"dst": *dst, "value": json.RawMessage(*value)}
	case "deliveries", "snapshot", "learn", "acquire", "reset":
		// No parameters.
	default:
		return fmt.Errorf("unknown command %q", command)
	}

	var raw json.RawMessage
	if params != nil {
		data, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("bad request parameters (is -value valid JSON?): %w", err)
		}
		raw = data
	}
	_, err := c.Request(ctx, deploy.RequestBody{
		Op:        op,
		Params:    raw,
		TimeoutMS: timeout.Milliseconds(),
	}, func(line deploy.StreamLine) {
		out, _ := json.Marshal(line)
		fmt.Println(string(out))
	})
	return err
}
