package main

import (
	"strings"
	"testing"
	"time"
)

// TestGauntletOnSim runs the whole scenario library against every
// cluster type on the deterministic substrate — fast, reproducible, and
// exactly what the nightly workflow runs at larger scale.
func TestGauntletOnSim(t *testing.T) {
	var out strings.Builder
	failed, err := run(&out, config{
		Scenario:  "all",
		Protocol:  "all",
		Substrate: "sim",
		N:         3,
		Seed:      1,
		Timeout:   time.Minute,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(failed) > 0 {
		t.Fatalf("failed runs:\n%s\noutput:\n%s", strings.Join(failed, "\n"), out.String())
	}
	if !strings.Contains(out.String(), "30/30 runs passed") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

// TestGauntletOneConcurrentRun smoke-tests the real-concurrency path the
// nightly exercises in full: one scenario on the runtime substrate.
func TestGauntletOneConcurrentRun(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent gauntlet skipped in -short mode")
	}
	var out strings.Builder
	failed, err := run(&out, config{
		Scenario:  "flaky-links",
		Protocol:  "pif",
		Substrate: "runtime",
		N:         3,
		Seed:      2,
		Timeout:   time.Minute,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(failed) > 0 {
		t.Fatalf("failed runs:\n%s\noutput:\n%s", strings.Join(failed, "\n"), out.String())
	}
}

func TestUnknownSelectorsRejected(t *testing.T) {
	var out strings.Builder
	for _, cfg := range []config{
		{Scenario: "nope", Protocol: "all", Substrate: "all", N: 3, Seed: 1, Timeout: time.Second},
		{Scenario: "all", Protocol: "nope", Substrate: "all", N: 3, Seed: 1, Timeout: time.Second},
		{Scenario: "all", Protocol: "all", Substrate: "nope", N: 3, Seed: 1, Timeout: time.Second},
		{Scenario: "all", Protocol: "all", Substrate: "all", N: 1, Seed: 1, Timeout: time.Second},
	} {
		if _, err := run(&out, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestFailureDescriptorsAreReproducible pins the failure-line format the
// nightly uploads: a run with an impossible deadline must fail and
// produce a seed-carrying descriptor.
func TestFailureDescriptorsAreReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("deadline-forcing run skipped in -short mode")
	}
	var out strings.Builder
	failed, err := run(&out, config{
		Scenario:  "flaky-links",
		Protocol:  "pif",
		Substrate: "runtime",
		N:         3,
		Seed:      3,
		Timeout:   time.Nanosecond, // impossible deadline
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(failed) != 1 {
		t.Fatalf("want 1 failure, got %v", failed)
	}
	for _, want := range []string{"scenario=flaky-links", "protocol=pif", "substrate=runtime", "seed=3"} {
		if !strings.Contains(failed[0], want) {
			t.Fatalf("descriptor %q missing %q", failed[0], want)
		}
	}
}
