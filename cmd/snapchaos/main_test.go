package main

import (
	"strings"
	"testing"
	"time"
)

// TestGauntletOnSim runs the whole scenario library against every
// cluster type on the deterministic substrate — fast, reproducible, and
// exactly what the nightly workflow runs at larger scale.
func TestGauntletOnSim(t *testing.T) {
	var out strings.Builder
	failed, err := run(&out, config{
		Scenario:  "all",
		Protocol:  "all",
		Substrate: "sim",
		N:         3,
		Seed:      1,
		Timeout:   time.Minute,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(failed) > 0 {
		t.Fatalf("failed runs:\n%s\noutput:\n%s", strings.Join(failed, "\n"), out.String())
	}
	// 5 scenarios x 7 protocols (forwarding included since PR 6).
	if !strings.Contains(out.String(), "35/35 runs passed") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
}

// TestGauntletTopologyNarrowsMatrix pins the -topology matrix rules: an
// explicit sparse graph silently narrows protocol "all" to what can
// route over it, and naming an unsupported combination is an error.
func TestGauntletTopologyNarrowsMatrix(t *testing.T) {
	var out strings.Builder
	failed, err := run(&out, config{
		Scenario:  "split-brain",
		Protocol:  "all",
		Substrate: "sim",
		N:         4,
		Topology:  "ring",
		Seed:      1,
		Timeout:   time.Minute,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(failed) > 0 {
		t.Fatalf("failed runs:\n%s\noutput:\n%s", strings.Join(failed, "\n"), out.String())
	}
	// A ring is connected but neither complete nor a tree: only the
	// neighbourhood protocols remain.
	if !strings.Contains(out.String(), "2/2 runs passed") {
		t.Fatalf("unexpected summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "topology ring: 4 processes, 4 edges") {
		t.Fatalf("missing topology banner:\n%s", out.String())
	}
	if _, err := run(&out, config{
		Scenario: "split-brain", Protocol: "mutex", Substrate: "sim",
		N: 4, Topology: "ring", Seed: 1, Timeout: time.Minute,
	}); err == nil {
		t.Fatalf("mutex over a ring accepted; want an error")
	}
}

// TestGauntletOneConcurrentRun smoke-tests the real-concurrency path the
// nightly exercises in full: one scenario on the runtime substrate.
func TestGauntletOneConcurrentRun(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent gauntlet skipped in -short mode")
	}
	var out strings.Builder
	failed, err := run(&out, config{
		Scenario:  "flaky-links",
		Protocol:  "pif",
		Substrate: "runtime",
		N:         3,
		Seed:      2,
		Timeout:   time.Minute,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(failed) > 0 {
		t.Fatalf("failed runs:\n%s\noutput:\n%s", strings.Join(failed, "\n"), out.String())
	}
}

func TestUnknownSelectorsRejected(t *testing.T) {
	var out strings.Builder
	for _, cfg := range []config{
		{Scenario: "nope", Protocol: "all", Substrate: "all", N: 3, Seed: 1, Timeout: time.Second},
		{Scenario: "all", Protocol: "nope", Substrate: "all", N: 3, Seed: 1, Timeout: time.Second},
		{Scenario: "all", Protocol: "all", Substrate: "nope", N: 3, Seed: 1, Timeout: time.Second},
		{Scenario: "all", Protocol: "all", Substrate: "all", N: 1, Seed: 1, Timeout: time.Second},
	} {
		if _, err := run(&out, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestFailureDescriptorsAreReproducible pins the failure-line format the
// nightly uploads: a run with an impossible deadline must fail and
// produce a seed-carrying descriptor.
func TestFailureDescriptorsAreReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("deadline-forcing run skipped in -short mode")
	}
	var out strings.Builder
	failed, err := run(&out, config{
		Scenario:  "flaky-links",
		Protocol:  "pif",
		Substrate: "runtime",
		N:         3,
		Seed:      3,
		Timeout:   time.Nanosecond, // impossible deadline
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(failed) != 1 {
		t.Fatalf("want 1 failure, got %v", failed)
	}
	for _, want := range []string{"scenario=flaky-links", "protocol=pif", "substrate=runtime", "seed=3"} {
		if !strings.Contains(failed[0], want) {
			t.Fatalf("descriptor %q missing %q", failed[0], want)
		}
	}
}
