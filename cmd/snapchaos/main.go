// Command snapchaos is the chaos gauntlet: it runs every cluster type of
// the façade against a library of named adversarial-network scenarios —
// on any (or every) execution substrate — and asserts the
// snap-stabilization specification for each request it starts.
//
// Each scenario is a seeded core.FaultPlan (installed through
// snapstab.WithFaults) describing one shape of network adversity: flaky
// links, a split-brain partition that heals, a duplicate storm, payload
// corruption on top of a corrupted initial configuration, or a rolling
// crash-restart sweep. The paper's guarantee is that EVERY started
// request satisfies its specification from an ARBITRARY configuration
// under loss, duplication, and reordering; snapchaos is that claim run in
// anger. Assertions are end-to-end spec projections: PIF feedback is
// verified value-for-value (on the deterministic substrate additionally
// by the armed internal/spec Specification 1 checker), the typed cluster
// must echo a 4KiB JSON struct payload byte-identically through the
// codec layer, IDs-Learning tables and snapshot views against ground
// truth, mutual exclusion through the internal/spec MutexChecker's
// violation log, and reset against full acknowledgment.
//
// Usage:
//
//	snapchaos                                  # everything × everything
//	snapchaos -scenario split-brain -substrate udp
//	snapchaos -protocol mutex -n 5 -seed 7
//	snapchaos -list
//
// Exit status 1 when any run fails; -failures FILE appends one
// reproduction line per failure (scenario, protocol, substrate, n, seed)
// so CI can upload failing seeds as artifacts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	snapstab "github.com/snapstab/snapstab"
)

func main() {
	var (
		scenarioF  = flag.String("scenario", "all", "scenario to run (-list to enumerate), or all")
		protocolF  = flag.String("protocol", "all", "cluster type: pif, typed, idl, mutex, reset, snap, or all")
		substrateF = flag.String("substrate", "all", "execution substrate: sim, runtime, udp, tcp, or all")
		n          = flag.Int("n", 4, "number of processes (>= 2)")
		topologyF  = flag.String("topology", "", "route over this graph: a family name (complete, ring, line, star, tree, gnp:<p>) or a graph.txt file; default = each protocol's native graph")
		seed       = flag.Uint64("seed", 1, "root seed for faults, corruption, and the sim scheduler")
		timeout    = flag.Duration("timeout", 2*time.Minute, "per-run deadline")
		failures   = flag.String("failures", "", "append failing run descriptors to this file")
		list       = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, sc := range scenarios {
			fmt.Printf("%-22s %s\n", sc.name, sc.desc)
		}
		return
	}
	failed, err := run(os.Stdout, config{
		Scenario:  *scenarioF,
		Protocol:  *protocolF,
		Substrate: *substrateF,
		N:         *n,
		Topology:  *topologyF,
		Seed:      *seed,
		Timeout:   *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapchaos:", err)
		os.Exit(2)
	}
	if len(failed) > 0 {
		if *failures != "" {
			f, err := os.OpenFile(*failures, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, "snapchaos: failures file:", err)
			} else {
				for _, line := range failed {
					fmt.Fprintln(f, line)
				}
				f.Close()
			}
		}
		fmt.Fprintf(os.Stderr, "snapchaos: %d run(s) FAILED\n", len(failed))
		os.Exit(1)
	}
}

// config selects what the gauntlet runs.
type config struct {
	Scenario, Protocol, Substrate string
	N                             int
	// Topology is the -topology flag value ("" = each protocol's native
	// graph); Topo is its resolved form.
	Topology string
	Topo     snapstab.Topology
	Seed     uint64
	Timeout  time.Duration
}

// expand resolves an "all"-able flag value against the known set.
func expand(val string, known []string) ([]string, error) {
	if val == "all" {
		return known, nil
	}
	for _, k := range known {
		if k == val {
			return []string{val}, nil
		}
	}
	return nil, fmt.Errorf("unknown value %q (want one of %s, or all)", val, strings.Join(known, ", "))
}

// run executes the selected slice of the gauntlet, printing one line per
// run, and returns the reproduction descriptors of the failures.
func run(w io.Writer, cfg config) (failed []string, err error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("need n >= 2, got %d", cfg.N)
	}
	scNames := make([]string, len(scenarios))
	for i, sc := range scenarios {
		scNames[i] = sc.name
	}
	scs, err := expand(cfg.Scenario, scNames)
	if err != nil {
		return nil, err
	}
	prots, err := expand(cfg.Protocol, protocolNames)
	if err != nil {
		return nil, err
	}
	if cfg.Topology != "" {
		topo, err := snapstab.ResolveTopology(cfg.Topology, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cfg.Topo = topo
		fmt.Fprintf(w, "topology %s: %d processes, %d edges\n", cfg.Topology, topo.N(), topo.EdgeCount())
		// An explicit graph narrows the matrix to the protocols that can
		// route over it: the fully-connected protocols need the complete
		// graph, forwarding needs a tree. Narrowing "all" is silent;
		// asking for an unsupported combination by name is an error.
		var supported []string
		for _, p := range prots {
			if supportsTopology(p, topo) {
				supported = append(supported, p)
			}
		}
		if len(supported) == 0 {
			return nil, fmt.Errorf("no selected protocol can run over topology %q", cfg.Topology)
		}
		if cfg.Protocol != "all" && len(supported) < len(prots) {
			return nil, fmt.Errorf("protocol %q cannot run over topology %q", cfg.Protocol, cfg.Topology)
		}
		prots = supported
	}
	subs, err := expand(cfg.Substrate, substrateNames)
	if err != nil {
		return nil, err
	}

	total := 0
	for _, scName := range scs {
		sc := scenarioByName(scName)
		for _, sub := range subs {
			for _, prot := range prots {
				total++
				start := time.Now()
				runErr := runOne(sc, prot, sub, cfg)
				elapsed := time.Since(start).Round(time.Millisecond)
				if runErr != nil {
					fmt.Fprintf(w, "FAIL %-22s %-6s %-8s n=%d seed=%d %8s  %v\n",
						sc.name, prot, sub, cfg.N, cfg.Seed, elapsed, runErr)
					failed = append(failed, fmt.Sprintf(
						"scenario=%s protocol=%s substrate=%s n=%d seed=%d err=%q",
						sc.name, prot, sub, cfg.N, cfg.Seed, runErr))
					continue
				}
				fmt.Fprintf(w, "ok   %-22s %-6s %-8s n=%d seed=%d %8s\n",
					sc.name, prot, sub, cfg.N, cfg.Seed, elapsed)
			}
		}
	}
	fmt.Fprintf(w, "%d/%d runs passed\n", total-len(failed), total)
	return failed, nil
}
