package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	snapstab "github.com/snapstab/snapstab"
)

var (
	protocolNames  = []string{"pif", "typed", "idl", "mutex", "reset", "snap", "forward"}
	substrateNames = []string{"sim", "runtime", "udp", "tcp"}
)

// completeOnly names the protocols that assume the paper's fully
// connected network; a sparse -topology excludes them from the matrix.
var completeOnly = map[string]bool{"idl": true, "mutex": true, "reset": true, "snap": true}

// supportsTopology reports whether the protocol can run over topo (zero
// topo = every protocol's default graph: complete for the paper's
// protocols, Line(n) for forwarding).
func supportsTopology(protocol string, topo snapstab.Topology) bool {
	if topo.IsZero() {
		return true
	}
	switch {
	case protocol == "forward":
		return topo.IsTree()
	case completeOnly[protocol]:
		return topo.IsComplete()
	}
	return topo.Connected() // pif, typed: any connected graph (neighbourhood computation)
}

// scenario is one named shape of network adversity.
type scenario struct {
	name string
	desc string
	// plan builds the fault plan for an n-process cluster on substrate
	// sub ("sim" ticks are scheduler steps; on the real-time substrates —
	// runtime, udp, tcp — ticks are milliseconds of wall time).
	plan func(n int, sub string, seed uint64) snapstab.FaultPlan
	// corrupt additionally drives the cluster into an arbitrary initial
	// configuration before the first request.
	corrupt bool
}

// ticks picks the window length for the substrate's tick base: the
// simulator burns steps by the thousand where the real-time engines burn
// milliseconds by the hundred.
func ticks(sub string, steps, ms int64) int64 {
	if sub == "sim" {
		return steps
	}
	return ms
}

// scenarios is the library. Every plan is a pure function of (n,
// substrate, seed), so a failing run reproduces from its descriptor line.
var scenarios = []scenario{
	{
		name:    "flaky-links",
		desc:    "moderate drop + duplicate + reorder + delay + corruption on every link, from a corrupted start",
		corrupt: true,
		plan: func(n int, sub string, seed uint64) snapstab.FaultPlan {
			return snapstab.FaultPlan{
				Seed: seed,
				Default: snapstab.LinkFaults{
					DropRate:    0.12,
					DupRate:     0.08,
					ReorderRate: 0.08,
					DelayRate:   0.04,
					DelayTicks:  ticks(sub, 50, 5),
					CorruptRate: 0.03,
				},
			}
		},
	},
	{
		name: "split-brain",
		desc: "the cluster is cut in half, requests stall across the cut, then the partition heals",
		plan: func(n int, sub string, seed uint64) snapstab.FaultPlan {
			groupA := make([]int, 0, n/2)
			for p := 0; p < n/2; p++ {
				groupA = append(groupA, p)
			}
			return snapstab.FaultPlan{
				Seed:       seed,
				Partitions: []snapstab.PartitionWindow{{From: 0, Until: ticks(sub, 5_000, 250), GroupA: groupA}},
			}
		},
	},
	{
		name: "duplicate-storm",
		desc: "nearly half of all deliveries are doubled and a fifth arrive out of order",
		plan: func(n int, sub string, seed uint64) snapstab.FaultPlan {
			return snapstab.FaultPlan{
				Seed:    seed,
				Default: snapstab.LinkFaults{DupRate: 0.45, ReorderRate: 0.20},
			}
		},
	},
	{
		name:    "corrupt-then-reset",
		desc:    "corrupted initial configuration plus heavy in-flight payload corruption",
		corrupt: true,
		plan: func(n int, sub string, seed uint64) snapstab.FaultPlan {
			return snapstab.FaultPlan{
				Seed:    seed,
				Default: snapstab.LinkFaults{CorruptRate: 0.25, DropRate: 0.05},
			}
		},
	},
	{
		name: "rolling-crash-restart",
		desc: "every non-initiator process crashes and warm-restarts in turn while requests run",
		plan: func(n int, sub string, seed uint64) snapstab.FaultPlan {
			w := ticks(sub, 1_500, 120)
			var crashes []snapstab.CrashWindow
			for p := 1; p < n; p++ {
				crashes = append(crashes, snapstab.CrashWindow{
					Proc:  p,
					From:  int64(p-1) * w,
					Until: int64(p) * w,
				})
			}
			return snapstab.FaultPlan{Seed: seed, Crashes: crashes}
		},
	},
}

func scenarioByName(name string) scenario {
	for _, sc := range scenarios {
		if sc.name == name {
			return sc
		}
	}
	panic("snapchaos: unknown scenario " + name)
}

// corruptsAnywhere reports whether the plan can garble payloads on any
// link — the default policy or any per-link override.
func corruptsAnywhere(plan snapstab.FaultPlan) bool {
	if plan.Default.CorruptRate > 0 {
		return true
	}
	for _, f := range plan.Links {
		if f.CorruptRate > 0 {
			return true
		}
	}
	return false
}

// substrateOf maps the flag value to a substrate specification.
func substrateOf(sub string) snapstab.Substrate {
	switch sub {
	case "sim":
		return snapstab.Sim()
	case "runtime":
		return snapstab.Runtime()
	case "udp":
		return snapstab.UDP()
	case "tcp":
		return snapstab.TCP()
	}
	panic("snapchaos: unknown substrate " + sub)
}

// runOne builds one cluster under the scenario's plan and drives the
// protocol's request script to its spec verdict.
func runOne(sc scenario, protocol, sub string, cfg config) error {
	plan := sc.plan(cfg.N, sub, cfg.Seed)
	if protocol == "forward" && sub != "sim" && corruptsAnywhere(plan) {
		// In-flight payload corruption is beyond the channel model
		// (channels lose, duplicate, and reorder — they do not forge). For
		// the request-response protocols a forged echo decides a wrong
		// value and the value assertions are relaxed below; for forwarding
		// a forged acceptance transition DISPLACES the genuine item — a
		// loss, which the spec can never tolerate. On the deterministic
		// substrate the pinned seeds decide genuinely; on the concurrent
		// substrates the corruption knob alone is switched off, keeping
		// the scenario's losses, duplicates, and reorders.
		plan.Default.CorruptRate = 0
		for sel, f := range plan.Links {
			f.CorruptRate = 0
			plan.Links[sel] = f
		}
	}
	opts := []snapstab.Option{
		snapstab.WithSubstrate(substrateOf(sub)),
		snapstab.WithSeed(cfg.Seed),
		snapstab.WithFaults(plan),
	}
	if !cfg.Topo.IsZero() {
		opts = append(opts, snapstab.WithTopology(cfg.Topo))
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	// In-flight payload corruption is an adversary BEYOND the paper's
	// channel model (channels lose, duplicate, and reorder — they do not
	// forge). The flag discipline rejects every STALE value, and on the
	// deterministic substrate the chosen seeds decide on genuine values;
	// but on the concurrent substrates a corrupted message can, with
	// small probability per run, carry the exact echo the final
	// handshake round expects, and the decided acknowledgment is then
	// the forgery. Value-exact assertions therefore run everywhere
	// EXCEPT that combination, where a garbled acknowledgment is
	// tolerated (the request must still decide with full feedback —
	// liveness and termination stay asserted).
	tolerateForged := sub != "sim" && corruptsAnywhere(plan)
	switch protocol {
	case "pif":
		return runPIF(ctx, sc, cfg, opts, tolerateForged)
	case "typed":
		return runTyped(ctx, sc, cfg, opts, tolerateForged)
	case "idl":
		return runIDL(ctx, sc, cfg, opts, tolerateForged)
	case "mutex":
		return runMutex(ctx, sc, cfg, opts, tolerateForged)
	case "reset":
		return runReset(ctx, sc, cfg, opts, tolerateForged)
	case "snap":
		return runSnap(ctx, sc, cfg, opts, tolerateForged)
	case "forward":
		return runForward(ctx, sc, cfg, opts)
	}
	panic("snapchaos: unknown protocol " + protocol)
}

// participants returns how many processes take part in a PIF computation
// initiated at process 0: everyone on the default complete network, the
// initiator's neighbourhood on an explicit graph.
func (c config) participants() int {
	if c.Topo.IsZero() {
		return c.N - 1
	}
	return c.Topo.Degree(0)
}

// ids returns the distinct identifier set used by the identifier-based
// clusters.
func ids(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i*13 + 5)
	}
	return out
}

func runPIF(ctx context.Context, sc scenario, cfg config, opts []snapstab.Option, tolerateForged bool) error {
	c := snapstab.NewPIFCluster(cfg.N, opts...)
	defer c.Close()
	if sc.corrupt {
		c.CorruptEverything(cfg.Seed * 7)
	}
	for round := int64(0); round < 2; round++ {
		token := 1000*(cfg.SeedToken()) + round
		// On the deterministic substrate the internal Specification 1
		// checker judges the computation event by event.
		armed := c.ArmSpec(0, "chaos", token) == nil
		req := c.BroadcastAsync(0, "chaos", token)
		if err := req.Wait(ctx); err != nil {
			return fmt.Errorf("broadcast round %d: %w", round, err)
		}
		fb := req.Feedbacks()
		if want := cfg.participants(); len(fb) != want {
			return fmt.Errorf("broadcast round %d: %d feedbacks, want %d", round, len(fb), want)
		}
		for _, f := range fb {
			if f.Value.Num != token*1000+int64(f.From) && !tolerateForged {
				return fmt.Errorf("broadcast round %d: feedback %+v not derived from this broadcast", round, f)
			}
		}
		if armed {
			rep := c.SpecReport()
			if !rep.Started || !rep.Decided {
				return fmt.Errorf("spec checker: started=%v decided=%v", rep.Started, rep.Decided)
			}
			if len(rep.Violations) > 0 {
				return fmt.Errorf("specification 1 violated: %v", rep.Violations)
			}
		}
	}
	return nil
}

// SeedToken derives a small per-config token base so payloads differ
// across seeds without overflowing the feedback arithmetic.
func (c config) SeedToken() int64 { return int64(c.Seed % 1000) }

// chaosDoc is the struct payload the typed cluster carries through the
// gauntlet: a 4KiB body plus fields the assertions can pin exactly.
type chaosDoc struct {
	Round int64  `json:"round"`
	Seed  uint64 `json:"seed"`
	Body  []byte `json:"body"`
}

// runTyped drives the generic JSON cluster through the scenario: a 4KiB
// struct payload is broadcast under the fault plan and every decided
// feedback must decode byte-identical to the echo of the broadcast —
// the blob transit counterpart of runPIF's value-exact Num assertion.
func runTyped(ctx context.Context, sc scenario, cfg config, opts []snapstab.Option, tolerateForged bool) error {
	c := snapstab.NewTypedPIFCluster(cfg.N, snapstab.JSON[chaosDoc](), opts...)
	defer c.Close()
	if sc.corrupt {
		c.CorruptEverything(cfg.Seed * 7)
	}
	body := make([]byte, 4096)
	for i := range body {
		body[i] = byte(uint64(i)*2654435761 + cfg.Seed)
	}
	for round := int64(0); round < 2; round++ {
		doc := chaosDoc{Round: round, Seed: cfg.Seed, Body: body}
		armed := c.ArmSpec(0, doc) == nil
		req := c.BroadcastAsync(0, doc)
		if err := req.Wait(ctx); err != nil {
			return fmt.Errorf("typed broadcast round %d: %w", round, err)
		}
		fb := req.Feedbacks()
		if want := cfg.participants(); len(fb) != want {
			return fmt.Errorf("typed round %d: %d feedbacks, want %d", round, len(fb), want)
		}
		if !tolerateForged {
			for _, f := range fb {
				if f.Err != nil {
					return fmt.Errorf("typed round %d: feedback from %d undecodable: %w", round, f.From, f.Err)
				}
				if f.Value.Round != round || f.Value.Seed != cfg.Seed || !bytes.Equal(f.Value.Body, body) {
					return fmt.Errorf("typed round %d: feedback from %d not the byte-identical echo", round, f.From)
				}
			}
		}
		if armed {
			rep := c.SpecReport()
			if !rep.Started || !rep.Decided {
				return fmt.Errorf("typed spec checker: started=%v decided=%v", rep.Started, rep.Decided)
			}
			if !rep.ValueChecked {
				return fmt.Errorf("typed spec checker: default echo receiver must be value-checked")
			}
			if len(rep.Violations) > 0 {
				return fmt.Errorf("typed specification 1 violated: %v", rep.Violations)
			}
		}
	}
	return nil
}

func runIDL(ctx context.Context, sc scenario, cfg config, opts []snapstab.Option, tolerateForged bool) error {
	idlist := ids(cfg.N)
	c := snapstab.NewIDCluster(idlist, opts...)
	defer c.Close()
	if sc.corrupt {
		c.CorruptEverything(cfg.Seed * 7)
	}
	req := c.LearnAsync(0)
	if err := req.Wait(ctx); err != nil {
		return fmt.Errorf("learn: %w", err)
	}
	if tolerateForged {
		return nil
	}
	if req.MinID() != idlist[0] {
		return fmt.Errorf("learn: minID = %d, want %d", req.MinID(), idlist[0])
	}
	for q, id := range req.Table() {
		if id != idlist[q] {
			return fmt.Errorf("learn: table[%d] = %d, want %d", q, id, idlist[q])
		}
	}
	return nil
}

func runMutex(ctx context.Context, sc scenario, cfg config, opts []snapstab.Option, tolerateForged bool) error {
	c := snapstab.NewMutexCluster(ids(cfg.N), opts...)
	defer c.Close()
	if sc.corrupt {
		c.CorruptEverything(cfg.Seed * 7)
	}
	// Every process requests the critical section concurrently; the
	// internal MutexChecker watches Specification 3 the whole time.
	entered := make([]bool, cfg.N)
	reqs := make([]*snapstab.Request, cfg.N)
	for p := 0; p < cfg.N; p++ {
		p := p
		reqs[p] = c.AcquireAsync(p, func() { entered[p] = true })
	}
	for p, req := range reqs {
		if err := req.Wait(ctx); err != nil {
			return fmt.Errorf("acquire at %d: %w", p, err)
		}
	}
	for p, ok := range entered {
		if !ok {
			return fmt.Errorf("process %d was served without executing its critical section", p)
		}
	}
	if v := c.Violations(); len(v) > 0 && !tolerateForged {
		// A forged handshake echo can fabricate a privilege and overlap
		// the critical section — the same beyond-the-model event the
		// other protocols' value assertions tolerate here.
		return fmt.Errorf("mutual exclusion violated: %v", v)
	}
	return nil
}

func runReset(ctx context.Context, sc scenario, cfg config, opts []snapstab.Option, tolerateForged bool) error {
	c := snapstab.NewResetCluster(cfg.N, nil, opts...)
	defer c.Close()
	if sc.corrupt {
		c.CorruptEverything(cfg.Seed * 7)
	}
	req := c.ResetAsync(0)
	if err := req.Wait(ctx); err != nil {
		if tolerateForged && errors.Is(err, snapstab.ErrPartialAck) {
			// A forged echo completed the child PIF on a value that was
			// never a real acknowledgment; the request still terminated
			// and reported the partial acknowledgment honestly.
			return nil
		}
		return fmt.Errorf("reset: %w", err)
	}
	// ResetAsync itself verifies full acknowledgment of the epoch and
	// fails the request otherwise; reaching here is the spec verdict.
	return nil
}

func runSnap(ctx context.Context, sc scenario, cfg config, opts []snapstab.Option, tolerateForged bool) error {
	c := snapstab.NewSnapshotCluster(cfg.N, func(p int) snapstab.Payload {
		return snapstab.Payload{Tag: "state", Num: int64(p) * 111}
	}, opts...)
	defer c.Close()
	if sc.corrupt {
		c.CorruptEverything(cfg.Seed * 7)
	}
	req := c.CollectAsync(0)
	if err := req.Wait(ctx); err != nil {
		return fmt.Errorf("collect: %w", err)
	}
	views := req.Views()
	if len(views) != cfg.N {
		return fmt.Errorf("collect: %d views, want %d", len(views), cfg.N)
	}
	for q, v := range views {
		if (v.Tag != "state" || v.Num != int64(q)*111) && !tolerateForged {
			return fmt.Errorf("collect: view[%d] = %+v, want state(%d) — stale or fabricated", q, v, q*111)
		}
	}
	return nil
}

// runForward drives the tree-forwarding cluster through the scenario:
// every process sends a string item across the tree from a corrupted
// initial configuration, and the armed forwarding checker judges the
// no-loss / no-duplication / correct-destination spec on every
// substrate. Value assertions are exact even under payload corruption —
// a corrupted message can never carry an armed key (garbled sequence
// numbers stay below the genuine floor), so a genuine delivery is a
// genuine body.
func runForward(ctx context.Context, sc scenario, cfg config, opts []snapstab.Option) error {
	c := snapstab.NewForwardingCluster(cfg.N, snapstab.JSON[string](), opts...)
	defer c.Close()
	if sc.corrupt {
		c.CorruptEverything(cfg.Seed * 7)
	}
	type sent struct{ src, dst int }
	want := make(map[sent]string)
	var reqs []*snapstab.ForwardRequest
	for round := 0; round < 2; round++ {
		for src := 0; src < cfg.N; src++ {
			dst := (src + cfg.N/2 + round) % cfg.N
			if dst == src {
				dst = (src + 1) % cfg.N
			}
			// A pure function of the route: both rounds may pick the same
			// (src, dst) pair on tiny clusters, and the expectation must
			// not depend on which round's entry survives in the map.
			v := fmt.Sprintf("chaos-%d-%d-%d", cfg.Seed, src, dst)
			want[sent{src, dst}] = v
			reqs = append(reqs, c.SendAsync(src, dst, v))
		}
	}
	for _, req := range reqs {
		if err := req.Wait(ctx); err != nil {
			return fmt.Errorf("send %s: %w", req.Key(), err)
		}
	}
	for p := 0; p < cfg.N; p++ {
		for _, d := range c.Deliveries(p) {
			if d.Err != nil {
				continue // fabricated by the initial configuration, flagged as such
			}
			if v, ok := want[sent{d.From, p}]; !ok || d.Value != v {
				return fmt.Errorf("process %d received %q from %d, want %q", p, d.Value, d.From, v)
			}
		}
	}
	if rep := c.SpecReport(); len(rep.Violations) > 0 {
		return fmt.Errorf("forwarding specification violated: %v", rep.Violations)
	}
	return nil
}
