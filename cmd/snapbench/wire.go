package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	udp "github.com/snapstab/snapstab/internal/transport/udp"
)

// This file is the -transport -batch mode: the BENCH_0009.json artifact.
// Where BENCH_0008 prices one end-to-end broadcast per substrate, this
// matrix measures raw sustained message throughput over real UDP
// sockets along the batch dimension — batch=1 (the pre-v3 one-datagram-
// per-message path, byte-compatible with wire v2 peers) against the
// coalescing ceilings — so the wire v3 syscall-amortization claim is a
// recorded number, not prose. Each row also reports the achieved batch
// occupancy (messages per datagram) and the syscall amortization
// (messages per sendto/sendmmsg call) from the transport counters.
//
// Timings are hardware-dependent — the committed file is a recorded
// baseline for trend reading, not a byte-stable artifact like the
// experiment tables.

// wireBenchResult is one (n, batch, blob) row of the flood matrix.
type wireBenchResult struct {
	Substrate string `json:"substrate"`
	N         int    `json:"n"`
	// Batch is the coalescing ceiling (WithBatch); 1 disables batching.
	Batch int `json:"batch"`
	// BlobBytes is the opaque payload body carried by every message.
	BlobBytes int `json:"blob_bytes"`
	// MsgsPerSec is the sustained delivery rate across the cluster.
	MsgsPerSec float64 `json:"msgs_per_sec"`
	// BatchOccupancy is messages per sent datagram (≈1 at batch=1).
	BatchOccupancy float64 `json:"batch_occupancy"`
	// SendsPerSyscall is messages per socket write call — occupancy
	// times the sendmmsg amortization on Linux.
	SendsPerSyscall float64 `json:"sends_per_syscall"`
	// RecvsPerSyscall is messages per socket read call.
	RecvsPerSyscall float64 `json:"recvs_per_syscall"`
}

// wireBenchFile is the schema of BENCH_0009.json.
type wireBenchFile struct {
	Bench     string            `json:"bench"`
	Schema    int               `json:"schema"`
	GoVersion string            `json:"go_version"`
	GoOS      string            `json:"go_os"`
	GoArch    string            `json:"go_arch"`
	Results   []wireBenchResult `json:"results"`
}

// parseBatches parses the -batch flag ("1,16") into ceilings.
func parseBatches(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad -batch entry %q", part)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-batch lists no ceilings")
	}
	return out, nil
}

// runWireBench runs the UDP flood matrix over the batch dimension and
// writes the JSON artifact (stdout when out is "-"). quick shrinks the
// matrix and the measurement window to CI-smoke scale.
func runWireBench(out string, batches []int, quick bool) error {
	file := wireBenchFile{
		Bench:     "BENCH_0009",
		Schema:    1,
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
	}
	ns := []int{3, 8, 16}
	blobs := []int{0, 256, 4096}
	window := 3 * time.Second
	if quick {
		ns = []int{3}
		blobs = []int{0}
		window = 200 * time.Millisecond
	}
	for _, batch := range batches {
		for _, n := range ns {
			r, err := benchWireFlood(n, batch, 0, window)
			if err != nil {
				return err
			}
			file.Results = append(file.Results, r)
			printWireRow(r)
		}
		// Payload scaling at fixed n=8: bigger bodies mean fewer
		// messages fit under the datagram size cap, squeezing occupancy.
		for _, blob := range blobs {
			if blob == 0 {
				continue // the n=8 row above IS the 0B point
			}
			r, err := benchWireFlood(8, batch, blob, window)
			if err != nil {
				return err
			}
			file.Results = append(file.Results, r)
			printWireRow(r)
		}
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func printWireRow(r wireBenchResult) {
	fmt.Fprintf(os.Stderr, "udp n=%-2d batch=%-4d blob=%-4dB  %12.0f msgs/sec  %6.2f msgs/datagram  %6.2f msgs/syscall\n",
		r.N, r.Batch, r.BlobBytes, r.MsgsPerSec, r.BatchOccupancy, r.SendsPerSyscall)
}

// floodMachine seeds one message per peer on Step and echoes each
// delivery back, so sustained traffic is driven by the delivery path —
// the same shape as the transport package's own throughput benchmark.
type floodMachine struct {
	self      core.ProcID
	n         int
	blob      []byte
	delivered *atomic.Int64
}

func (f *floodMachine) Instance() string { return "flood" }

func (f *floodMachine) Step(env core.Env) bool {
	for q := 0; q < f.n; q++ {
		if core.ProcID(q) != f.self {
			env.Send(core.ProcID(q), core.Message{Instance: "flood", Kind: "flood", B: core.Payload{Blob: f.blob}})
		}
	}
	return true
}

func (f *floodMachine) Deliver(env core.Env, from core.ProcID, m core.Message) {
	f.delivered.Add(1)
	env.Send(from, core.Message{Instance: "flood", Kind: "flood", B: core.Payload{Blob: f.blob}})
}

// benchWireFlood measures one (n, batch, blob) cell: sustained
// deliveries/sec over window, with the occupancy and amortization ratios
// read from the transport counters across the same interval.
func benchWireFlood(n, batch, blob int, window time.Duration) (wireBenchResult, error) {
	var delivered atomic.Int64
	var body []byte
	if blob > 0 {
		body = make([]byte, blob)
		for i := range body {
			body[i] = byte(i)
		}
	}
	nodes := make([]*udp.Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := udp.NewNode(core.ProcID(i),
			core.Stack{&floodMachine{self: core.ProcID(i), n: n, blob: body, delivered: &delivered}},
			"127.0.0.1:0", make([]string, n), udp.WithBatch(batch))
		if err != nil {
			return wireBenchResult{}, fmt.Errorf("bind node %d: %w", i, err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()
	for i, node := range nodes {
		for j, a := range addrs {
			if i == j {
				continue
			}
			peer, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				return wireBenchResult{}, fmt.Errorf("parse %q: %w", a, err)
			}
			node.SetPeer(core.ProcID(j), peer)
		}
	}
	for _, node := range nodes {
		node.Start()
	}
	// Let the flood reach steady state before timing.
	warmup := time.Now().Add(10 * time.Second)
	for delivered.Load() < int64(n) {
		if time.Now().After(warmup) {
			return wireBenchResult{}, fmt.Errorf("n=%d batch=%d: flood never started", n, batch)
		}
		time.Sleep(100 * time.Microsecond)
	}
	sum := func() (sends, dgrams, sendSys, recvs, recvSys int64) {
		for _, node := range nodes {
			s := node.Stats()
			sends += s.Sends
			dgrams += s.SendDatagrams
			sendSys += s.SendSyscalls
			recvs += s.Recvs
			recvSys += s.RecvSyscalls
		}
		return
	}
	s0, d0, ss0, r0, rs0 := sum()
	before := delivered.Load()
	start := time.Now()
	time.Sleep(window)
	elapsed := time.Since(start).Seconds()
	after := delivered.Load()
	s1, d1, ss1, r1, rs1 := sum()

	res := wireBenchResult{Substrate: "udp", N: n, Batch: batch, BlobBytes: blob}
	if elapsed > 0 {
		res.MsgsPerSec = float64(after-before) / elapsed
	}
	if d := d1 - d0; d > 0 {
		res.BatchOccupancy = float64(s1-s0) / float64(d)
	}
	if d := ss1 - ss0; d > 0 {
		res.SendsPerSyscall = float64(s1-s0) / float64(d)
	}
	if d := rs1 - rs0; d > 0 {
		res.RecvsPerSyscall = float64(r1-r0) / float64(d)
	}
	return res, nil
}
