// Command snapbench regenerates the paper's evaluation artifacts: every
// experiment of DESIGN.md §6 (E1..E12), printed as the tables recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	snapbench                  # all experiments, reference scale
//	snapbench -e E3,E9         # a subset
//	snapbench -quick           # smoke-test scale
//	snapbench -trials 500      # crank the statistics
//	snapbench -parallel 8      # trial-runner workers (0 = GOMAXPROCS)
//	snapbench -markdown        # emit EXPERIMENTS.md-style markdown
//	snapbench -topo -out bench/BENCH_0006.json        # topology benchmark matrix
//	snapbench -transport -out bench/BENCH_0008.json   # substrate comparison (runtime/udp/tcp)
//	snapbench -transport -batch 1,16 -out bench/BENCH_0009.json   # UDP flood over the batch dimension
//
// Tables are byte-identical at every -parallel setting: each trial's
// randomness is a pure function of (seed, row, trial). The -topo mode is
// different in kind: it emits wall-clock throughput and scheduler-cost
// measurements (complete vs ring vs tree at n = 8/16) as machine-readable
// JSON — a hardware-dependent baseline, not a reproducible table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/snapstab/snapstab/internal/experiment"
)

func main() {
	var (
		ids      = flag.String("e", "", "comma-separated experiment IDs (default: all)")
		trials   = flag.Int("trials", 0, "trials per table row (0 = default)")
		seed     = flag.Uint64("seed", 1, "base seed")
		quick    = flag.Bool("quick", false, "smoke-test scale")
		parallel = flag.Int("parallel", 0, "trial-runner workers (0 = GOMAXPROCS, 1 = sequential)")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		topo     = flag.Bool("topo", false, "run the topology benchmark matrix and emit BENCH_0006.json instead")
		trans    = flag.Bool("transport", false, "run the substrate comparison (runtime/udp/tcp) and emit BENCH_0008.json instead")
		batch    = flag.String("batch", "", "-transport only: run the UDP flood matrix over these coalescing ceilings (e.g. \"1,16\") and emit BENCH_0009.json instead")
		out      = flag.String("out", "-", "-topo/-transport only: output file (default stdout)")
	)
	flag.Parse()

	if *topo {
		if err := runTopoBench(*out, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "snapbench:", err)
			os.Exit(1)
		}
		return
	}
	if *trans {
		if *batch != "" {
			batches, err := parseBatches(*batch)
			if err != nil {
				fmt.Fprintln(os.Stderr, "snapbench:", err)
				os.Exit(1)
			}
			if err := runWireBench(*out, batches, *quick); err != nil {
				fmt.Fprintln(os.Stderr, "snapbench:", err)
				os.Exit(1)
			}
			return
		}
		if err := runTransportBench(*out, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "snapbench:", err)
			os.Exit(1)
		}
		return
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "snapbench: -parallel must be >= 0, got %d\n", *parallel)
		os.Exit(1)
	}
	cfg := experiment.Config{Trials: *trials, Seed: *seed, Quick: *quick, Parallelism: *parallel}
	var selected []experiment.Experiment
	if *ids == "" {
		selected = experiment.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiment.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "snapbench: unknown experiment %q\n", id)
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tables := e.Run(cfg)
		if !*markdown {
			fmt.Printf("=== %s: %s (reproduces: %s) — %.1fs ===\n\n",
				e.ID, e.Title, e.Paper, time.Since(start).Seconds())
		} else {
			fmt.Printf("### %s: %s\n\nReproduces: %s.\n\n", e.ID, e.Title, e.Paper)
		}
		for _, t := range tables {
			if *markdown {
				t.Markdown(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
		}
	}
}
