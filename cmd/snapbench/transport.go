package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	snapstab "github.com/snapstab/snapstab"
)

// This file is the -transport mode: the BENCH_0008.json artifact. It
// benchmarks the same end-to-end PIF broadcast on the three concurrent
// substrates — the in-memory runtime, loopback UDP datagrams, and
// persistent loopback TCP connections — so the cost of real sockets,
// and of TCP's framing and connection management relative to UDP, is
// recorded next to the in-memory ceiling.
//
// Timings are hardware-dependent — the committed file is a recorded
// baseline for trend reading, not a byte-stable artifact like the
// experiment tables.

// transportBenchResult is one (substrate, n) row.
type transportBenchResult struct {
	Substrate string `json:"substrate"`
	N         int    `json:"n"`
	// BroadcastNsOp is the wall time of one full PIF broadcast (request
	// to decision).
	BroadcastNsOp float64 `json:"broadcast_ns_op"`
	// ThroughputOpsSec is its reciprocal in broadcasts per second.
	ThroughputOpsSec float64 `json:"throughput_ops_sec"`
	// SendsPerBroadcast is how many transport sends one broadcast costs
	// across the cluster (zero on the in-memory runtime, which has no
	// transport counters).
	SendsPerBroadcast float64 `json:"sends_per_broadcast"`
	// MailboxDropsPerBroadcast is the lose-on-full rate under the
	// benchmark load (zero on the runtime).
	MailboxDropsPerBroadcast float64 `json:"mailbox_drops_per_broadcast"`
}

// transportBenchFile is the schema of BENCH_0008.json.
type transportBenchFile struct {
	Bench     string                 `json:"bench"`
	Schema    int                    `json:"schema"`
	GoVersion string                 `json:"go_version"`
	GoOS      string                 `json:"go_os"`
	GoArch    string                 `json:"go_arch"`
	Seed      uint64                 `json:"seed"`
	Results   []transportBenchResult `json:"results"`
}

// runTransportBench runs the substrate comparison matrix and writes the
// JSON artifact (stdout when out is "-").
func runTransportBench(out string, seed uint64) error {
	file := transportBenchFile{
		Bench:     "BENCH_0008",
		Schema:    1,
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Seed:      seed,
	}
	subs := []struct {
		name string
		sub  func() snapstab.Substrate
	}{
		{"runtime", snapstab.Runtime},
		{"udp", snapstab.UDP},
		{"tcp", snapstab.TCP},
	}
	for _, n := range []int{3, 5} {
		for _, s := range subs {
			r, err := benchTransport(s.name, s.sub(), n, seed)
			if err != nil {
				return err
			}
			file.Results = append(file.Results, r)
			fmt.Fprintf(os.Stderr, "%-8s n=%-2d  %12.0f ns/broadcast  %8.1f ops/s  %7.1f sends/op\n",
				s.name, n, r.BroadcastNsOp, r.ThroughputOpsSec, r.SendsPerBroadcast)
		}
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// benchTransport measures one (substrate, n) cell: a PIF broadcast loop
// with the cluster-wide transport counters read around the measured
// window.
func benchTransport(name string, sub snapstab.Substrate, n int, seed uint64) (transportBenchResult, error) {
	c := snapstab.NewPIFCluster(n, snapstab.WithSeed(seed), snapstab.WithSubstrate(sub))
	defer c.Close()
	// Warm up once: connections dialed, lazily-built structures priced
	// out of the loop.
	if _, err := c.Broadcast(0, "warm", 0); err != nil {
		return transportBenchResult{}, err
	}
	sum := func() (sends, drops int64) {
		for _, s := range c.TransportStats() {
			sends += s.Sends
			drops += s.MailboxDrops
		}
		return
	}
	sendsBefore, dropsBefore := sum()
	var benchErr error
	totalOps := 0
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			totalOps++
			if _, err := c.Broadcast(0, "bench", int64(i)); err != nil && benchErr == nil {
				benchErr = err
			}
		}
	})
	if benchErr != nil {
		return transportBenchResult{}, fmt.Errorf("%s n=%d: %w", name, n, benchErr)
	}
	sendsAfter, dropsAfter := sum()
	nsOp := float64(br.NsPerOp())
	r := transportBenchResult{
		Substrate:     name,
		N:             n,
		BroadcastNsOp: nsOp,
	}
	if nsOp > 0 {
		r.ThroughputOpsSec = 1e9 / nsOp
	}
	// testing.Benchmark reran the loop while calibrating b.N; the
	// counters span every run, so normalize by totalOps.
	if totalOps > 0 {
		r.SendsPerBroadcast = float64(sendsAfter-sendsBefore) / float64(totalOps)
		r.MailboxDropsPerBroadcast = float64(dropsAfter-dropsBefore) / float64(totalOps)
	}
	return r, nil
}
