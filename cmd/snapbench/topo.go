package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	snapstab "github.com/snapstab/snapstab"
)

// This file is the -topo mode: the BENCH_*.json trajectory's first
// artifact. It benchmarks the deterministic substrate's end-to-end
// broadcast cost and raw scheduler step cost over the complete graph
// versus the sparse topologies, at n = 8 and n = 16, and emits the
// machine-readable baseline committed at bench/BENCH_0006.json.
//
// Timings are hardware-dependent — the committed file is a recorded
// baseline for trend reading, not a byte-stable artifact like the
// experiment tables.

// topoBenchResult is one (topology, n) row of the benchmark matrix.
type topoBenchResult struct {
	Topology string `json:"topology"`
	N        int    `json:"n"`
	Edges    int    `json:"edges"`
	// BroadcastNsOp is the wall time of one full PIF broadcast
	// (request to decision) on the deterministic substrate.
	BroadcastNsOp float64 `json:"broadcast_ns_op"`
	// ThroughputOpsSec is its reciprocal in broadcasts per second.
	ThroughputOpsSec float64 `json:"throughput_ops_sec"`
	// SchedulerNsStep is the scheduler's cost per step during the
	// broadcast workload: elapsed time over executed steps.
	SchedulerNsStep float64 `json:"scheduler_ns_step"`
	// StepsPerBroadcast is how many scheduler steps one broadcast burns —
	// the topology-sensitive term (a complete graph floods every pair,
	// a sparse graph only its edges).
	StepsPerBroadcast float64 `json:"steps_per_broadcast"`
}

// topoBenchFile is the schema of BENCH_0006.json.
type topoBenchFile struct {
	Bench     string            `json:"bench"`
	Schema    int               `json:"schema"`
	GoVersion string            `json:"go_version"`
	GoOS      string            `json:"go_os"`
	GoArch    string            `json:"go_arch"`
	Seed      uint64            `json:"seed"`
	Results   []topoBenchResult `json:"results"`
}

// runTopoBench runs the topology benchmark matrix and writes the JSON
// artifact (stdout when out is "-").
func runTopoBench(out string, seed uint64) error {
	file := topoBenchFile{
		Bench:     "BENCH_0006",
		Schema:    1,
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		Seed:      seed,
	}
	for _, n := range []int{8, 16} {
		for _, kind := range []string{"complete", "ring", "tree"} {
			topo, err := snapstab.TopologyByName(kind, n, seed)
			if err != nil {
				return err
			}
			r, err := benchTopology(kind, topo, n, seed)
			if err != nil {
				return err
			}
			file.Results = append(file.Results, r)
			fmt.Fprintf(os.Stderr, "%-8s n=%-2d  %12.0f ns/broadcast  %8.1f ops/s  %6.0f ns/step  %7.0f steps\n",
				kind, n, r.BroadcastNsOp, r.ThroughputOpsSec, r.SchedulerNsStep, r.StepsPerBroadcast)
		}
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// benchTopology measures one (topology, n) cell: a PIF broadcast loop on
// the deterministic substrate, with the scheduler step counter read
// around the measured window.
func benchTopology(kind string, topo snapstab.Topology, n int, seed uint64) (topoBenchResult, error) {
	c := snapstab.NewPIFCluster(n, snapstab.WithSeed(seed), snapstab.WithTopology(topo))
	defer c.Close()
	// Warm up once so lazily-built structures are priced out of the loop.
	if _, err := c.Broadcast(0, "warm", 0); err != nil {
		return topoBenchResult{}, err
	}
	stepsBefore := c.Stats().Steps
	var benchErr error
	totalOps := 0
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			totalOps++
			if _, err := c.Broadcast(0, "bench", int64(i)); err != nil && benchErr == nil {
				benchErr = err
			}
		}
	})
	if benchErr != nil {
		return topoBenchResult{}, fmt.Errorf("%s n=%d: %w", kind, n, benchErr)
	}
	// testing.Benchmark reran the loop while calibrating b.N; the step
	// counter spans every run, so normalize by the broadcasts actually
	// executed (totalOps), not just the final timed run's br.N.
	stepsTotal := c.Stats().Steps - stepsBefore
	nsOp := float64(br.NsPerOp())
	r := topoBenchResult{
		Topology:      kind,
		N:             n,
		Edges:         topo.EdgeCount(),
		BroadcastNsOp: nsOp,
	}
	if nsOp > 0 {
		r.ThroughputOpsSec = 1e9 / nsOp
	}
	if totalOps > 0 {
		r.StepsPerBroadcast = float64(stepsTotal) / float64(totalOps)
	}
	if r.StepsPerBroadcast > 0 {
		r.SchedulerNsStep = nsOp / r.StepsPerBroadcast
	}
	return r, nil
}
