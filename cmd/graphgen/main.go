// Command graphgen generates communication graphs in the canonical
// graph.txt format every -topology flag in this repository accepts: an
// "n <count>" header followed by one "u v" line per undirected edge.
//
// Usage:
//
//	graphgen -kind ring -n 8                     # to stdout
//	graphgen -kind tree -n 16 -seed 7 -out g.txt # seeded random tree
//	graphgen -kind gnp -n 12 -p 0.3 -seed 2      # Erdős–Rényi G(n, p)
//
// Seeded kinds (tree, gnp) are deterministic: the same -kind/-n/-p/-seed
// always prints the same graph, so a graph.txt in a repository is
// reproducible from its generation command line.
package main

import (
	"flag"
	"fmt"
	"os"

	snapstab "github.com/snapstab/snapstab"
)

func main() {
	var (
		kind = flag.String("kind", "ring", "graph family: complete, ring, line, star, tree, or gnp")
		n    = flag.Int("n", 8, "number of processes (>= 2)")
		p    = flag.Float64("p", 0.5, "gnp only: edge probability in [0,1]")
		seed = flag.Uint64("seed", 1, "tree/gnp only: generator seed")
		out  = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*kind, *n, *p, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(kind string, n int, p float64, seed uint64, out string) error {
	if n < 2 {
		return fmt.Errorf("need -n >= 2, got %d", n)
	}
	name := kind
	if kind == "gnp" {
		name = fmt.Sprintf("gnp:%g", p)
	}
	topo, err := snapstab.TopologyByName(name, n, seed)
	if err != nil {
		return err
	}
	text := topo.String()
	if out == "" {
		_, err := os.Stdout.WriteString(text)
		return err
	}
	if err := os.WriteFile(out, []byte(text), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d processes, %d edges", out, topo.N(), topo.EdgeCount())
	if !topo.Connected() {
		// G(n, p) may come out disconnected; cluster-wide protocols
		// cannot span such a graph, so say so where it is visible.
		fmt.Print(" (disconnected)")
	}
	fmt.Println()
	return nil
}
