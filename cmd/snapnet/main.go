// Command snapnet runs the snap-stabilizing protocols over real UDP
// sockets on the loopback interface — the paper's concluding "future
// challenge" demonstrated end to end: n nodes, each with its own socket,
// exchanging wire-encoded datagrams, surviving corrupted initial states.
//
// Usage:
//
//	snapnet -protocol pif -n 3 -corrupt
//	snapnet -protocol idl -n 4
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/idl"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	udp "github.com/snapstab/snapstab/internal/transport/udp"
)

func main() {
	var (
		protocol = flag.String("protocol", "pif", "protocol to run: pif or idl")
		n        = flag.Int("n", 3, "number of nodes (>= 2)")
		corrupt  = flag.Bool("corrupt", false, "randomize every node's protocol state first")
		seed     = flag.Uint64("seed", 1, "corruption seed")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request deadline")
	)
	flag.Parse()
	if err := run(*protocol, *n, *corrupt, *seed, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "snapnet:", err)
		os.Exit(1)
	}
}

func run(protocol string, n int, corrupt bool, seed uint64, timeout time.Duration) error {
	if n < 2 {
		return fmt.Errorf("need n >= 2, got %d", n)
	}
	r := rng.New(seed)

	// Build one machine per node; bind sockets first, then wire peers.
	var pifs []*pif.PIF
	var idls []*idl.IDL
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		self := core.ProcID(i)
		switch protocol {
		case "pif":
			m := pif.New("pif", self, n, pif.Callbacks{
				OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
					return core.Payload{Tag: "ack", Num: b.Num*1000 + int64(self)}
				},
			}, pif.WithCapacityBound(udp.DefaultAssumedCapacity))
			if corrupt {
				m.Corrupt(r)
			}
			pifs = append(pifs, m)
			stacks[i] = core.Stack{m}
		case "idl":
			d := idl.New("idl", self, n, int64(i*13+5), pif.WithCapacityBound(udp.DefaultAssumedCapacity))
			if corrupt {
				d.Corrupt(r)
				d.PIF.Corrupt(r)
			}
			idls = append(idls, d)
			stacks[i] = d.Machines()
		default:
			return fmt.Errorf("unknown protocol %q (want pif or idl)", protocol)
		}
	}

	nodes := make([]*udp.Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := udp.NewNode(core.ProcID(i), stacks[i], "127.0.0.1:0", make([]string, n))
		if err != nil {
			return err
		}
		nodes[i] = node
		addrs[i] = node.Addr()
	}
	for i, node := range nodes {
		for j, a := range addrs {
			if i == j {
				continue
			}
			ra, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				return err
			}
			node.SetPeer(core.ProcID(j), ra)
		}
		fmt.Printf("node %d listening on %s\n", i, addrs[i])
	}
	for _, node := range nodes {
		node.Start()
	}
	defer func() {
		for _, node := range nodes {
			node.Stop()
		}
	}()
	if corrupt {
		fmt.Println("initial protocol states: corrupted")
	}

	var err error
	switch protocol {
	case "pif":
		err = runPIF(nodes, pifs, timeout)
	case "idl":
		err = runIDL(nodes, idls, timeout)
	}
	// Print the counters even (especially) on failure: the drop columns
	// are the first diagnostic for a timed-out run.
	printStats(nodes)
	return err
}

// printStats reports the transport counters per node: sender-side drops
// (failed sendto) and receiver-side drops (full mailboxes, the model's
// lose-on-full rule) are distinguished, mirroring EvSendLost vs EvLose.
func printStats(nodes []*udp.Node) {
	for i, node := range nodes {
		s := node.Stats()
		fmt.Printf("node %d: sent=%d send-drops=%d mailbox-drops=%d\n",
			i, s.Sends, s.SendDrops, s.MailboxDrops)
	}
}

func runPIF(nodes []*udp.Node, machines []*pif.PIF, timeout time.Duration) error {
	token := core.Payload{Tag: "hello", Num: 42}
	deadline := time.Now().Add(timeout)
	invoked := false
	for time.Now().Before(deadline) && !invoked {
		nodes[0].Do(func(env core.Env) { invoked = machines[0].Invoke(env, token) })
		time.Sleep(time.Millisecond)
	}
	if !invoked {
		return fmt.Errorf("node 0 never accepted the request (corrupted computation did not terminate)")
	}
	fmt.Println("node 0 broadcasting hello(42)...")
	start := time.Now()
	for time.Now().Before(deadline) {
		var done bool
		nodes[0].Do(func(core.Env) { done = machines[0].Done() && machines[0].BMes == token })
		if done {
			fmt.Printf("decision reached in %v: every node received the broadcast and acknowledged it\n",
				time.Since(start).Round(time.Millisecond))
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("broadcast did not complete within %v", timeout)
}

func runIDL(nodes []*udp.Node, machines []*idl.IDL, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	invoked := false
	for time.Now().Before(deadline) && !invoked {
		nodes[0].Do(func(env core.Env) { invoked = machines[0].Invoke(env) })
		time.Sleep(time.Millisecond)
	}
	if !invoked {
		return fmt.Errorf("node 0 never accepted the request")
	}
	fmt.Println("node 0 learning identifiers...")
	for time.Now().Before(deadline) {
		var done bool
		nodes[0].Do(func(core.Env) { done = machines[0].Done() })
		if done {
			var min int64
			var tab []int64
			nodes[0].Do(func(core.Env) { min, tab = machines[0].MinID, append([]int64(nil), machines[0].IDTab...) })
			fmt.Printf("learned: minID=%d table=%v\n", min, tab[1:])
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("learning did not complete within %v", timeout)
}
