// Command snapnet runs the snap-stabilizing protocols over real UDP
// sockets on the loopback interface — the paper's concluding "future
// challenge" demonstrated end to end: n nodes, each with its own socket,
// exchanging wire-encoded datagrams, surviving corrupted initial states.
//
// It is a thin driver over the public façade: the cluster code is the
// same code that runs on the deterministic simulator, pointed at the UDP
// substrate with one option.
//
// Usage:
//
//	snapnet -protocol pif -n 3 -corrupt
//	snapnet -protocol mutex -n 4
//	snapnet -protocol typed -n 3 -blob 4096   # JSON struct payloads
//	snapnet -protocol idl|reset|snap ...
//	snapnet -protocol forward -n 5 -topology tree -corrupt
//	snapnet -protocol pif -n 4 -topology ring  # neighbourhood PIF
//	snapnet -protocol pif -n 3 -transport tcp  # persistent connections
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	snapstab "github.com/snapstab/snapstab"
)

func main() {
	var (
		protocol  = flag.String("protocol", "pif", "protocol to run: pif, typed, idl, mutex, reset, snap, or forward")
		transport = flag.String("transport", "udp", "network transport: udp (datagrams) or tcp (persistent connections)")
		n         = flag.Int("n", 3, "number of nodes (>= 2)")
		topology  = flag.String("topology", "", "route over this graph: a family name (complete, ring, line, star, tree, gnp:<p>) or a graph.txt file")
		corrupt   = flag.Bool("corrupt", false, "randomize every node's protocol state first")
		seed      = flag.Uint64("seed", 1, "corruption seed")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		blob      = flag.Int("blob", 256, "typed protocol: opaque body size in bytes")
	)
	flag.Parse()
	if err := run(*protocol, *transport, *n, *topology, *corrupt, *seed, *timeout, *blob); err != nil {
		fmt.Fprintln(os.Stderr, "snapnet:", err)
		os.Exit(1)
	}
}

// statser is the slice of the façade every cluster type shares that
// snapnet needs beyond the protocol calls themselves.
type statser interface {
	TransportStats() []snapstab.TransportStats
	Close() error
}

func run(protocol, transport string, n int, topology string, corrupt bool, seed uint64, timeout time.Duration, blob int) error {
	if n < 2 {
		return fmt.Errorf("need n >= 2, got %d", n)
	}
	if blob < 0 {
		return fmt.Errorf("need -blob >= 0, got %d", blob)
	}
	var sub snapstab.Substrate
	switch transport {
	case "udp":
		sub = snapstab.UDP()
	case "tcp":
		sub = snapstab.TCP()
	default:
		return fmt.Errorf("unknown transport %q (want udp or tcp)", transport)
	}
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i*13 + 5)
	}
	opts := []snapstab.Option{snapstab.WithSubstrate(sub), snapstab.WithSeed(seed)}
	var topo snapstab.Topology
	if topology != "" {
		var err error
		topo, err = snapstab.ResolveTopology(topology, n, seed)
		if err != nil {
			return err
		}
		switch {
		case protocol == "forward" && !topo.IsTree():
			return fmt.Errorf("the forwarding protocol needs a tree topology; %q has %d edges over %d nodes",
				topology, topo.EdgeCount(), n)
		case (protocol == "idl" || protocol == "mutex" || protocol == "reset" || protocol == "snap") && !topo.IsComplete():
			return fmt.Errorf("protocol %q runs a fully-connected protocol; topology %q is not complete", protocol, topology)
		case !topo.Connected():
			return fmt.Errorf("topology %q is disconnected; no cluster-wide protocol can span it", topology)
		}
		opts = append(opts, snapstab.WithTopology(topo))
		fmt.Printf("topology %s: %d nodes, %d edges\n", topology, topo.N(), topo.EdgeCount())
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	var (
		cluster statser
		request func() error
	)
	switch protocol {
	case "pif":
		c := snapstab.NewPIFCluster(n, opts...)
		cluster = c
		request = func() error {
			fmt.Println("node 0 broadcasting hello(42)...")
			req := c.BroadcastAsync(0, "hello", 42)
			if err := req.Wait(ctx); err != nil {
				return err
			}
			fmt.Printf("decision: %d nodes received the broadcast and acknowledged it\n", len(req.Feedbacks()))
			return nil
		}
	case "typed":
		// The typed cluster ships a JSON struct whose body crosses the
		// wire as an opaque v2 blob; feedbacks must echo it exactly.
		type doc struct {
			Seed uint64 `json:"seed"`
			Body []byte `json:"body"`
		}
		c := snapstab.NewTypedPIFCluster(n, snapstab.JSON[doc](), opts...)
		cluster = c
		request = func() error {
			body := make([]byte, blob)
			for i := range body {
				body[i] = byte(uint64(i)*131 + seed)
			}
			fmt.Printf("node 0 broadcasting a %d-byte JSON payload...\n", blob)
			req := c.BroadcastAsync(0, doc{Seed: seed, Body: body})
			if err := req.Wait(ctx); err != nil {
				return err
			}
			for _, f := range req.Feedbacks() {
				if f.Err != nil {
					return fmt.Errorf("node %d echoed an undecodable body: %w", f.From, f.Err)
				}
				if f.Value.Seed != seed || !bytes.Equal(f.Value.Body, body) {
					return fmt.Errorf("node %d echo differs from the broadcast", f.From)
				}
			}
			fmt.Printf("decision: %d nodes echoed the payload byte-identically\n", len(req.Feedbacks()))
			return nil
		}
	case "idl":
		c := snapstab.NewIDCluster(ids, opts...)
		cluster = c
		request = func() error {
			fmt.Println("node 0 learning identifiers...")
			req := c.LearnAsync(0)
			if err := req.Wait(ctx); err != nil {
				return err
			}
			fmt.Printf("learned: minID=%d table=%v\n", req.MinID(), req.Table()[1:])
			return nil
		}
	case "mutex":
		c := snapstab.NewMutexCluster(ids, opts...)
		cluster = c
		request = func() error {
			fmt.Printf("all %d nodes requesting the critical section concurrently...\n", n)
			reqs := make([]*snapstab.Request, n)
			for p := 0; p < n; p++ {
				p := p
				reqs[p] = c.AcquireAsync(p, func() { fmt.Printf("node %d in the critical section\n", p) })
			}
			for p, req := range reqs {
				if err := req.Wait(ctx); err != nil {
					return fmt.Errorf("node %d: %w", p, err)
				}
			}
			if v := c.Violations(); len(v) > 0 {
				return fmt.Errorf("mutual exclusion violated: %v", v)
			}
			fmt.Printf("all served: %d exclusive entries, 0 violations\n", c.Entries())
			return nil
		}
	case "reset":
		c := snapstab.NewResetCluster(n, func(p int, epoch int64) {
			fmt.Printf("node %d reinitialized under epoch %d\n", p, epoch)
		}, opts...)
		cluster = c
		request = func() error {
			fmt.Println("node 0 requesting a global reset...")
			req := c.ResetAsync(0)
			if err := req.Wait(ctx); err != nil {
				return err
			}
			fmt.Printf("decision: every node acknowledged epoch %d\n", req.Epoch())
			return nil
		}
	case "snap":
		c := snapstab.NewSnapshotCluster(n, func(p int) snapstab.Payload {
			return snapstab.Payload{Tag: "state", Num: int64(p) * 111}
		}, opts...)
		cluster = c
		request = func() error {
			fmt.Println("node 0 collecting a global snapshot...")
			req := c.CollectAsync(0)
			if err := req.Wait(ctx); err != nil {
				return err
			}
			fmt.Printf("collected: %v\n", req.Views())
			return nil
		}
	case "forward":
		// The tree-forwarding cluster: node 0 sends a string item hop by
		// hop to node n-1 (over -topology when given, the default line
		// otherwise), the armed spec checker riding along.
		c := snapstab.NewForwardingCluster(n, snapstab.JSON[string](), opts...)
		cluster = c
		request = func() error {
			payload := fmt.Sprintf("hello-%d", seed)
			fmt.Printf("node 0 forwarding %q to node %d...\n", payload, n-1)
			req := c.SendAsync(0, n-1, payload)
			if err := req.Wait(ctx); err != nil {
				return err
			}
			for _, d := range c.Deliveries(n - 1) {
				if d.Err == nil && d.Value == payload && d.From == 0 {
					fmt.Printf("delivered: node %d received %q (item %s)\n", n-1, d.Value, req.Key())
					if rep := c.SpecReport(); len(rep.Violations) > 0 {
						return fmt.Errorf("forwarding specification violated: %v", rep.Violations)
					}
					return nil
				}
			}
			return fmt.Errorf("item %s completed but is missing from node %d's deliveries", req.Key(), n-1)
		}
	default:
		return fmt.Errorf("unknown protocol %q (want pif, typed, idl, mutex, reset, snap, or forward)", protocol)
	}
	defer cluster.Close()

	for i, s := range cluster.TransportStats() {
		fmt.Printf("node %d listening on %s\n", i, s.Addr)
	}
	if corrupt {
		type corrupter interface{ CorruptEverything(seed uint64) }
		cluster.(corrupter).CorruptEverything(seed)
		fmt.Println("initial protocol states: corrupted")
	}

	start := time.Now()
	err := request()
	if err == nil {
		fmt.Printf("completed in %v\n", time.Since(start).Round(time.Millisecond))
	}
	// Print the counters even (especially) on failure: the drop columns
	// are the first diagnostic for a timed-out run.
	printStats(cluster)
	return err
}

// printStats reports the transport counters per node: sender-side drops
// (failed sendto) and receiver-side drops (full mailboxes, the model's
// lose-on-full rule) are distinguished, mirroring EvSendLost vs EvLose.
func printStats(cluster statser) {
	for i, s := range cluster.TransportStats() {
		fmt.Printf("node %d: sent=%d send-drops=%d mailbox-drops=%d\n",
			i, s.Sends, s.SendDrops, s.MailboxDrops)
	}
}
