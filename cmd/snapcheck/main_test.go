package main

import "testing"

func TestRunSafetyAblatedFindsViolation(t *testing.T) {
	t.Parallel()
	if runSafety(2, true) {
		t.Fatal("ablated domain reported safe")
	}
}

func TestRunTerminationAblatedHolds(t *testing.T) {
	t.Parallel()
	if !runTermination(2) {
		t.Fatal("ablated domain reported non-terminating")
	}
}

func TestRunSafetyFullDomain(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration skipped in -short mode")
	}
	t.Parallel()
	if !runSafety(4, false) {
		t.Fatal("the paper's protocol reported unsafe")
	}
}
