// Command snapcheck runs the exhaustive model checker on the two-process
// PIF instance: safety (no stale-feedback decision from any abstract
// initial configuration) and termination (no reachable trap).
//
// Usage:
//
//	snapcheck                 # the paper's protocol (flag domain {0..4})
//	snapcheck -top 3 -trace   # ablated domain: prints a counter-example
//	snapcheck -mode termination
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/snapstab/snapstab/internal/check"
)

func main() {
	var (
		top   = flag.Int("top", 4, "flag-domain top (4 = the paper's protocol)")
		mode  = flag.String("mode", "both", "analysis: safety, termination, or both")
		trace = flag.Bool("trace", false, "record a counter-example trace (memory-heavy)")
	)
	flag.Parse()
	ok := true
	if *mode == "safety" || *mode == "both" {
		ok = runSafety(*top, *trace) && ok
	}
	if *mode == "termination" || *mode == "both" {
		ok = runTermination(*top) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

func runSafety(top int, trace bool) bool {
	fmt.Printf("safety: exploring all abstract initial configurations (FlagTop=%d)...\n", top)
	start := time.Now()
	res, err := check.Safety(check.Options{FlagTop: top, TraceViolation: trace})
	if err != nil {
		fmt.Println("  error:", err)
		return false
	}
	fmt.Printf("  %d initial configurations, %d reachable states, %.1fs\n",
		res.InitialConfigs, res.Explored, time.Since(start).Seconds())
	if res.Violation == nil {
		fmt.Println("  SAFE: no execution lets a started computation accept stale feedback (exhaustive)")
		return true
	}
	fmt.Println("  UNSAFE:", res.Violation.Description)
	fmt.Println("  violating configuration:", res.Violation.Config)
	for _, line := range res.Violation.Trace {
		fmt.Println("   ", line)
	}
	return false
}

func runTermination(top int) bool {
	fmt.Printf("termination: payload-free abstraction, both processes cycling (FlagTop=%d)...\n", top)
	start := time.Now()
	res, err := check.Termination(check.Options{FlagTop: top})
	if err != nil {
		fmt.Println("  error:", err)
		return false
	}
	fmt.Printf("  %d states, %d edges, %.1fs\n", res.States, res.Edges, time.Since(start).Seconds())
	if res.PTrapped == 0 && res.QTrapped == 0 {
		fmt.Println("  TERMINATING: every configuration can reach each process's decision")
		return true
	}
	fmt.Printf("  TRAPPED: %d (p) / %d (q) configurations cannot terminate, e.g. %s\n",
		res.PTrapped, res.QTrapped, res.SampleTrap)
	return false
}
