// Command snapvet runs the repository's static-analysis suite
// (internal/analysis): five analyzers that mechanically enforce the
// conventions the snap-stabilization reproduction depends on —
// determinism of sim-reachable code, transport lock order, pooled-buffer
// flush scoping, sentinel-error wrapping, and loss-event attribution —
// plus the subset of `go vet` the transports lean on (copylocks,
// atomic).
//
// Usage:
//
//	snapvet [packages]            # default ./...
//	snapvet -list                 # describe the analyzers
//	snapvet -only determinism,senterr ./...
//	snapvet -novet ./...          # skip the go vet passes
//
// Exit status is 0 when the tree is clean, 1 when any diagnostic (or
// go vet finding) survives, 2 on operational failure. Diagnostics are
// suppressed site-by-site with a justified directive:
//
//	//lint:ignore <analyzer> <justification>
//
// on the flagged line or the line above it (see DESIGN.md §14 for the
// escape-hatch policy).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"github.com/snapstab/snapstab/internal/analysis"
)

func main() {
	var (
		list  = flag.Bool("list", false, "describe the analyzers and exit")
		only  = flag.String("only", "", "comma-separated analyzer subset to run")
		novet = flag.Bool("novet", false, "skip the go vet copylocks/atomic passes")
	)
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "snapvet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapvet: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}

	vetFailed := false
	if !*novet {
		// The two vet passes the transports lean on: copylocks (a copied
		// Node or group would silently fork mu/mbMu/injMu) and atomic.
		args := append([]string{"vet", "-copylocks", "-atomic"}, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			vetFailed = true
		}
	}

	if len(diags) > 0 || vetFailed {
		os.Exit(1)
	}
}
