package snapstab

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/spec"
)

// pifConfig is what distinguishes the two PIF façades over the shared
// machinery: how application values map onto the wire payload. The
// legacy cluster works in structured (Tag, Num) payloads with the
// ack-derivation default receiver; the typed cluster works in opaque
// codec-marshaled bodies with the echo default receiver.
type pifConfig struct {
	// recv handles an accepted broadcast at process proc and returns the
	// feedback payload. Always non-nil.
	recv func(proc, from int, b core.Payload) core.Payload
	// expect, when non-nil, predicts the feedback process q must produce
	// for broadcast b; it arms the Specification 1 checker's value-exact
	// Decision clause. Nil when a custom receiver makes the expected
	// values unknowable (SpecReport then says so via ValueChecked).
	expect func(q core.ProcID, b core.Payload) core.Payload
	// garbageBlob is the maximum opaque-body length CorruptEverything
	// draws into garbage payloads (0 for the legacy cluster, keeping its
	// corruption streams byte-identical to earlier revisions).
	garbageBlob int
}

// pifCore is the payload-level PIF cluster machinery shared by
// PIFCluster and TypedPIFCluster: machines, substrate, request plumbing,
// feedback collection, spec checking, corruption. The façades above it
// only translate application values to core.Payload and back.
type pifCore struct {
	clusterCore
	cfg      pifConfig
	machines []*pif.PIF
	checker  *spec.PIFChecker
	// active[p] is the feedback sink of process p's in-flight broadcast
	// request. Written inside completion conditions and read inside
	// OnFeedback — both in process p's substrate-atomic context, so no
	// extra locking is needed and callbacks are never swapped per call.
	active []*feedbackSink
}

// feedbackSink collects one computation's acknowledgments.
type feedbackSink struct {
	fb map[core.ProcID]core.Payload
}

// rawFeedback is one process's acknowledgment at the payload level.
type rawFeedback struct {
	From  int
	Value core.Payload
}

// payloadBroadcastRequest is the payload-level broadcast handle the
// typed wrappers decode from.
type payloadBroadcastRequest struct {
	*Request
	fb []rawFeedback
}

// newPIFCore assembles the machines and substrate.
func newPIFCore(n int, cfg pifConfig, o options) *pifCore {
	c := &pifCore{cfg: cfg}
	c.machines = make([]*pif.PIF, n)
	c.active = make([]*feedbackSink, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		i := i
		id := core.ProcID(i)
		popts := []pif.Option{capacityBound(o), pif.WithGarbageBlobs(cfg.garbageBlob)}
		if o.topology != nil {
			// Over a sparse graph each PIF instance handshakes with its
			// neighbours only; on the complete graph the peer set equals
			// the default and executions stay byte-identical.
			popts = append(popts, pif.WithPeers(o.topology.Neighbors(id)))
		}
		c.machines[i] = pif.New("pif", id, n, pif.Callbacks{
			OnBroadcast: func(_ core.Env, from core.ProcID, b core.Payload) core.Payload {
				return cfg.recv(int(id), int(from), b)
			},
			OnFeedback: func(_ core.Env, from core.ProcID, f core.Payload) {
				if sink := c.active[i]; sink != nil {
					sink.fb[from] = f
				}
			},
		}, popts...)
		stacks[i] = core.Stack{c.machines[i]}
	}
	// The checker stays dormant until armSpec; it is wired here so the
	// deterministic substrate can judge Specification 1 online. When the
	// expected feedback values are known exactly (default receivers),
	// the Decision clause is checked value-for-value.
	c.checker = &spec.PIFChecker{N: n, Initiator: 0, Instance: "pif"}
	if o.topology != nil {
		c.checker.Participants = o.topology.Neighbors(0)
	}
	c.checker.ExpectFck = cfg.expect
	c.init(o, stacks, c.checker)
	return c
}

// armSpec arms the Specification 1 checker for the next broadcast of
// token initiated at process p (Sim substrate only).
func (c *pifCore) armSpec(p int, token core.Payload) error {
	if c.simNet == nil {
		return fmt.Errorf("snapstab: spec checking requires the Sim substrate")
	}
	if p < 0 || p >= len(c.machines) {
		return fmt.Errorf("%w: ArmSpec at process %d (cluster has %d)", ErrInvalidProcess, p, len(c.machines))
	}
	c.simNet.Sync(func() {
		c.checker.Initiator = core.ProcID(p)
		if topo := c.opt.topology; topo != nil {
			// The obligations follow the initiator: its neighbourhood is
			// the computation's participant set.
			c.checker.Participants = topo.Neighbors(core.ProcID(p))
		}
		c.checker.Arm(token)
	})
	return nil
}

// specReport snapshots the armed computation's verdict.
func (c *pifCore) specReport() SpecReport {
	var r SpecReport
	if c.simNet == nil {
		return r
	}
	c.simNet.Sync(func() {
		r.Started = c.checker.Started()
		r.Decided = c.checker.Decided()
		r.ValueChecked = c.checker.ValueChecking()
		for _, v := range c.checker.Violations() {
			r.Violations = append(r.Violations, v.String())
		}
	})
	return r
}

// corruptEverything drives the cluster into an arbitrary initial
// configuration, drawing opaque garbage bodies when the façade carries
// them (cfg.garbageBlob > 0).
func (c *pifCore) corruptEverything(seed uint64) {
	c.corrupt(rng.New(seed), config.PIFSpecs("pif", c.machines[0].FlagTop()),
		config.Options{GarbageBlobLen: c.cfg.garbageBlob})
}

// broadcastAsync submits a PIF computation request for token at process
// p. The request is accepted as soon as the machine's previous
// computation (if any — possibly fabricated by corruption) has decided;
// requests issued concurrently at the same process serialize, one
// request owning the process at a time. The guarantee (Theorem 2) holds
// no matter how corrupted the cluster was at submission.
func (c *pifCore) broadcastAsync(p int, token core.Payload) *payloadBroadcastRequest {
	req := &payloadBroadcastRequest{Request: c.newRequest()}
	// An out-of-range p fails the request in start before the condition
	// can ever run, so the nil machine is never dereferenced.
	var machine *pif.PIF
	if p >= 0 && p < len(c.machines) {
		machine = c.machines[p]
	}
	sink := &feedbackSink{fb: make(map[core.ProcID]core.Payload)}
	injected := false
	abort := func(core.Env) {
		if injected && c.active[p] == sink {
			c.active[p] = nil
		}
	}
	c.start(req.Request, p, "broadcast", func(env core.Env) bool {
		if !injected {
			if !machine.Invoke(env, token) {
				return false
			}
			injected = true
			c.active[p] = sink
			return false
		}
		if !machine.Done() || !machine.BMes.Equal(token) {
			return false
		}
		c.active[p] = nil
		req.fb = make([]rawFeedback, 0, len(sink.fb))
		for q := 0; q < env.N(); q++ {
			if f, ok := sink.fb[core.ProcID(q)]; ok {
				req.fb = append(req.fb, rawFeedback{From: q, Value: f})
			}
		}
		return true
	}, abort)
	return req
}
