package pif

import (
	"fmt"
	"testing"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
)

// ackFor is the feedback the test application at process id returns for a
// received broadcast payload: a value derived from both, so a stale or
// fabricated feedback is detectable.
func ackFor(id core.ProcID, b core.Payload) core.Payload {
	return core.Payload{Tag: "ack", Num: b.Num*1000 + int64(id)}
}

// testNet builds an n-process network of bare PIF machines whose
// application callbacks implement ackFor.
func testNet(t *testing.T, n int, opts ...sim.Option) (*sim.Network, []*PIF) {
	t.Helper()
	machines := make([]*PIF, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		id := core.ProcID(i)
		machines[i] = New("pif", id, n, Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return ackFor(id, b)
			},
		})
		stacks[i] = core.Stack{machines[i]}
	}
	return sim.New(stacks, opts...), machines
}

func TestCleanBroadcastTwoProcesses(t *testing.T) {
	t.Parallel()
	rec := core.NewRecorder(10000)
	net, machines := testNet(t, 2, sim.WithSeed(3), sim.WithObserver(rec))
	token := core.Payload{Tag: "hello", Num: 7}
	if !machines[0].Invoke(net.Env(0), token) {
		t.Fatal("Invoke rejected on clean machine")
	}
	if err := net.RunUntil(machines[0].Done, 100000); err != nil {
		t.Fatalf("computation did not terminate: %v\n%s", err, rec.Dump())
	}

	// The paper: "our protocol does not prevent processes to generate
	// unexpected receive-brd or receive-fck events" — the handshake is
	// symmetric, so p1's flags also rise and p0 may observe events for
	// p1's (empty) B-Mes. The specification constrains only the events of
	// the requested broadcast, so filter by payload.
	var brd, fck []core.Event
	for _, e := range rec.Events() {
		switch {
		case e.Kind == core.EvRecvBrd && e.Msg.B.Equal(token):
			brd = append(brd, e)
		case e.Kind == core.EvRecvFck && e.Proc == 0:
			fck = append(fck, e)
		}
	}
	if len(brd) != 1 || brd[0].Proc != 1 {
		t.Fatalf("broadcast events = %v, want exactly one at p1 carrying %v", brd, token)
	}
	if len(fck) != 1 || !fck[0].Msg.F.Equal(ackFor(1, token)) {
		t.Fatalf("feedback events = %v, want one at p0 carrying %v", fck, ackFor(1, token))
	}
}

func TestBroadcastFiveProcesses(t *testing.T) {
	t.Parallel()
	rec := core.NewRecorder(100000)
	net, machines := testNet(t, 5, sim.WithSeed(17), sim.WithObserver(rec))
	token := core.Payload{Tag: "m", Num: 3}
	machines[2].Invoke(net.Env(2), token)
	if err := net.RunUntil(machines[2].Done, 500000); err != nil {
		t.Fatalf("computation did not terminate: %v", err)
	}
	gotBrd := make(map[core.ProcID]bool)
	gotFck := make(map[core.ProcID]core.Payload)
	for _, e := range rec.Events() {
		switch {
		case e.Kind == core.EvRecvBrd && e.Msg.B.Equal(token):
			gotBrd[e.Proc] = true
		case e.Kind == core.EvRecvFck && e.Proc == 2:
			gotFck[e.Peer] = e.Msg.F
		}
	}
	for q := core.ProcID(0); q < 5; q++ {
		if q == 2 {
			continue
		}
		if !gotBrd[q] {
			t.Errorf("process %d never received the broadcast", q)
		}
		if got, want := gotFck[q], ackFor(q, token); !got.Equal(want) {
			t.Errorf("feedback from %d = %v, want %v", q, got, want)
		}
	}
}

func TestBroadcastUnderHeavyLoss(t *testing.T) {
	t.Parallel()
	net, machines := testNet(t, 3, sim.WithSeed(23), sim.WithLossRate(0.5))
	machines[0].Invoke(net.Env(0), core.Payload{Tag: "x", Num: 1})
	if err := net.RunUntil(machines[0].Done, 2_000_000); err != nil {
		t.Fatalf("computation did not survive 50%% loss: %v", err)
	}
	if net.Stats().LinkLosses == 0 {
		t.Fatal("no losses occurred; test is vacuous")
	}
}

func TestConcurrentInitiators(t *testing.T) {
	t.Parallel()
	const n = 4
	rec := core.NewRecorder(1 << 20)
	net, machines := testNet(t, n, sim.WithSeed(29), sim.WithObserver(rec))
	for i := 0; i < n; i++ {
		tok := core.Payload{Tag: "m", Num: int64(i + 1)}
		if !machines[i].Invoke(net.Env(core.ProcID(i)), tok) {
			t.Fatalf("Invoke at %d rejected", i)
		}
	}
	err := net.RunUntil(func() bool {
		for _, m := range machines {
			if !m.Done() {
				return false
			}
		}
		return true
	}, 2_000_000)
	if err != nil {
		t.Fatalf("concurrent computations did not all terminate: %v", err)
	}
	// Every initiator got the right feedback from every other process.
	fck := make(map[[2]core.ProcID]core.Payload)
	for _, e := range rec.Events() {
		if e.Kind == core.EvRecvFck {
			fck[[2]core.ProcID{e.Proc, e.Peer}] = e.Msg.F
		}
	}
	for i := core.ProcID(0); i < n; i++ {
		for q := core.ProcID(0); q < n; q++ {
			if i == q {
				continue
			}
			want := ackFor(q, core.Payload{Tag: "m", Num: int64(i + 1)})
			if got := fck[[2]core.ProcID{i, q}]; !got.Equal(want) {
				t.Errorf("initiator %d feedback from %d = %v, want %v", i, q, got, want)
			}
		}
	}
}

func TestInvokeRejectedWhileBusy(t *testing.T) {
	t.Parallel()
	net, machines := testNet(t, 2)
	if !machines[0].Invoke(net.Env(0), core.Payload{Tag: "a"}) {
		t.Fatal("first Invoke rejected")
	}
	if machines[0].Invoke(net.Env(0), core.Payload{Tag: "b"}) {
		t.Fatal("second Invoke accepted while Request != Done")
	}
}

func TestQuiescenceAfterDecision(t *testing.T) {
	t.Parallel()
	// "if the requests eventually stop, the system eventually contains no
	// message" (§4.1).
	net, machines := testNet(t, 3, sim.WithSeed(31))
	machines[0].Invoke(net.Env(0), core.Payload{Tag: "x"})
	if err := net.RunUntil(machines[0].Done, 500000); err != nil {
		t.Fatal(err)
	}
	// Let stragglers drain.
	for i := 0; i < 200 && !net.Quiescent(); i++ {
		net.SyncRound()
	}
	if !net.Quiescent() {
		t.Fatalf("system not quiescent after decision: %d in transit", net.InTransit())
	}
}

// corruptNet builds a network, corrupts every machine's state, and fills
// every PIF channel with garbage.
func corruptNet(t *testing.T, n int, seed uint64, opts ...sim.Option) (*sim.Network, []*PIF, *core.Recorder) {
	t.Helper()
	rec := core.NewRecorder(1 << 20)
	opts = append(opts, sim.WithSeed(seed), sim.WithObserver(rec))
	net, machines := testNet(t, n, opts...)
	r := rng.New(rng.Mix(seed, 0xDEAD))
	for _, m := range machines {
		m.Corrupt(r)
	}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from == to {
				continue
			}
			link := net.Link(sim.LinkKey{From: core.ProcID(from), To: core.ProcID(to), Instance: "pif"})
			if r.Bool() {
				if err := link.Preload([]core.Message{GarbageMessage(r, "pif", machines[0].FlagTop())}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return net, machines, rec
}

// TestSnapStabilizationRandomized is the statistical heart of Theorem 2's
// verification: from many corrupted configurations, a requested broadcast
// always starts, terminates, reaches every process, and decides on
// feedback generated for this very broadcast.
func TestSnapStabilizationRandomized(t *testing.T) {
	t.Parallel()
	trials := 300
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial + 1)
		net, machines, rec := corruptNet(t, 3, seed)
		// Drive any in-flight corrupted computations as they are; then
		// request a fresh broadcast at p0 and watch it.
		token := core.Payload{Tag: "fresh", Num: int64(100 + trial)}
		requested := false
		var startStep int
		err := net.RunUntil(func() bool {
			if !requested {
				if machines[0].Invoke(net.Env(0), token) {
					requested = true
					startStep = net.StepCount()
				}
				return false
			}
			return machines[0].Done() && machines[0].BMes.Equal(token)
		}, 2_000_000)
		if err != nil {
			t.Fatalf("trial %d (seed %d): %v", trial, seed, err)
		}
		// Specification 1 on the event window [start, decide]:
		var sawStart bool
		brd := map[core.ProcID]bool{}
		fck := map[core.ProcID]core.Payload{}
		for _, e := range rec.Events() {
			if e.Step < startStep {
				continue
			}
			switch {
			case e.Kind == core.EvStart && e.Proc == 0 && e.Note == token.String():
				sawStart = true
			case e.Kind == core.EvRecvBrd && e.Msg.B.Equal(token):
				brd[e.Proc] = true
			case e.Kind == core.EvRecvFck && e.Proc == 0 && sawStart && !machinesDoneBefore(machines[0], e.Step):
				fck[e.Peer] = e.Msg.F
			}
		}
		if !sawStart {
			t.Fatalf("trial %d: no start event for the requested broadcast", trial)
		}
		for q := core.ProcID(1); q < 3; q++ {
			if !brd[q] {
				t.Fatalf("trial %d: process %d never received the broadcast\n%s", trial, q, rec.Dump())
			}
			want := ackFor(q, token)
			if got := fck[q]; !got.Equal(want) {
				t.Fatalf("trial %d: decision used feedback %v from %d, want %v", trial, got, q, want)
			}
		}
	}
}

// machinesDoneBefore is a placeholder hook: within one computation the
// recorder window already bounds events, so it always reports false.
func machinesDoneBefore(*PIF, int) bool { return false }

// TestProperty1ChannelFlush verifies Property 1: after p completes a
// started computation, no initial-configuration message remains in a
// channel incident to p.
func TestProperty1ChannelFlush(t *testing.T) {
	t.Parallel()
	for trial := 0; trial < 100; trial++ {
		seed := uint64(trial + 500)
		net, machines, _ := corruptNet(t, 3, seed)
		// Force garbage into every channel incident to p0 so the property
		// is exercised on every link.
		r := rng.New(seed)
		initial := make(map[string]bool)
		msgKey := func(m core.Message) string { return string(core.AppendMessage(nil, m)) }
		for q := 1; q < 3; q++ {
			for _, k := range []sim.LinkKey{
				{From: 0, To: core.ProcID(q), Instance: "pif"},
				{From: core.ProcID(q), To: 0, Instance: "pif"},
			} {
				g := GarbageMessage(r, "pif", machines[0].FlagTop())
				g.B = core.Payload{Tag: "initial-garbage", Num: int64(trial*10 + q)}
				if err := net.Link(k).Preload([]core.Message{g}); err != nil {
					t.Fatal(err)
				}
				initial[msgKey(g)] = true
			}
		}
		token := core.Payload{Tag: "fresh", Num: int64(trial)}
		requested := false
		err := net.RunUntil(func() bool {
			if !requested {
				requested = machines[0].Invoke(net.Env(0), token)
				return false
			}
			return machines[0].Done() && machines[0].BMes.Equal(token)
		}, 2_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 1; q < 3; q++ {
			for _, k := range []sim.LinkKey{
				{From: 0, To: core.ProcID(q), Instance: "pif"},
				{From: core.ProcID(q), To: 0, Instance: "pif"},
			} {
				for _, m := range net.Link(k).Contents() {
					if initial[msgKey(m)] {
						t.Fatalf("trial %d: initial message %v still in %v after completed computation", trial, m, k)
					}
				}
			}
		}
	}
}

// TestFigure1WorstCase reproduces Figure 1: the adversarially chosen
// initial configuration lets the initiator take exactly FlagTop-1 = 3
// spurious increments, and the final increment is impossible without a
// genuine post-start round trip.
func TestFigure1WorstCase(t *testing.T) {
	t.Parallel()
	net, machines := testNet(t, 2)
	p, q := machines[0], machines[1]

	// Adversarial initial configuration (p = p0, q = p1):
	//   - channel q->p holds a stale message echoing flag 0,
	//   - channel p->q holds a stale message with flag 2,
	//   - q's NeigState[p] is 1 and q is mid-computation (Request = In),
	//     so q keeps emitting messages echoing its stale NeigState.
	q.Request = core.In
	q.Neig[0] = 1
	q.State[0] = 1
	kQP := sim.LinkKey{From: 1, To: 0, Instance: "pif"}
	kPQ := sim.LinkKey{From: 0, To: 1, Instance: "pif"}
	if err := net.Link(kQP).Preload([]core.Message{{Instance: "pif", Kind: Kind, State: 1, Echo: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := net.Link(kPQ).Preload([]core.Message{{Instance: "pif", Kind: Kind, State: 2, Echo: 0}}); err != nil {
		t.Fatal(err)
	}

	// p starts a fresh computation.
	p.Invoke(net.Env(0), core.Payload{Tag: "fresh"})
	net.Activate(0) // A1: State[1] <- 0; A2: send (may be lost, channel full)

	// 1st spurious increment: stale q->p message echoes 0.
	net.Deliver(kQP)
	if got := p.State[1]; got != 1 {
		t.Fatalf("after stale echo 0: State = %d, want 1", got)
	}
	// q (mid-computation, NeigState 1) emits a message echoing 1.
	net.Activate(1)
	net.Deliver(kQP)
	if got := p.State[1]; got != 2 {
		t.Fatalf("after stale NeigState echo 1: State = %d, want 2", got)
	}
	// The stale p->q message with flag 2 updates q's NeigState to 2 and
	// triggers a reply echoing 2: the 3rd spurious increment.
	net.Deliver(kPQ)
	net.Deliver(kQP)
	if got := p.State[1]; got != 3 {
		t.Fatalf("after stale flag-2 message: State = %d, want 3", got)
	}

	// All garbage is now consumed: p cannot reach 4 without a genuine
	// round trip. Feed q only stale-independent activations and verify p
	// stays at 3 until its own flag-3 message reaches q.
	net.Activate(1)
	// q's NeigState[p] is 2, so its emission echoes 2 — no increment.
	for net.Deliver(kQP) {
		if p.State[1] > 3 {
			t.Fatalf("State reached %d without a post-start round trip", p.State[1])
		}
	}
	// Genuine round trip: p transmits flag 3, q echoes it.
	net.Activate(0)
	net.Deliver(kPQ)
	net.Deliver(kQP)
	if got := p.State[1]; got != 4 {
		t.Fatalf("after genuine round trip: State = %d, want 4", got)
	}
}

// TestFlagDomainAblationUnsound shows why the domain {0..4} is necessary:
// with FlagTop = 3 the Figure 1 configuration drives the initiator to a
// decision built entirely from garbage — the 3 spurious increments
// suffice, and the "feedback" it decides on was never sent by anyone.
func TestFlagDomainAblationUnsound(t *testing.T) {
	t.Parallel()
	n := 2
	machines := make([]*PIF, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		id := core.ProcID(i)
		machines[i] = New("pif", id, n, Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return ackFor(id, b)
			},
		}, WithFlagTop(3))
		stacks[i] = core.Stack{machines[i]}
	}
	net := sim.New(stacks)
	p, q := machines[0], machines[1]
	q.Request = core.In
	q.Neig[0] = 1
	q.State[0] = 1
	q.FMes[0] = core.Payload{Tag: "stale-feedback"}
	kQP := sim.LinkKey{From: 1, To: 0, Instance: "pif"}
	kPQ := sim.LinkKey{From: 0, To: 1, Instance: "pif"}
	if err := net.Link(kQP).Preload([]core.Message{{Instance: "pif", Kind: Kind, State: 1, Echo: 0, F: core.Payload{Tag: "stale-feedback"}}}); err != nil {
		t.Fatal(err)
	}
	if err := net.Link(kPQ).Preload([]core.Message{{Instance: "pif", Kind: Kind, State: 2, Echo: 0}}); err != nil {
		t.Fatal(err)
	}
	decided := false
	var decidedOn core.Payload
	p.cb.OnFeedback = func(_ core.Env, _ core.ProcID, f core.Payload) { decided, decidedOn = true, f }

	token := core.Payload{Tag: "fresh", Num: 7}
	p.Invoke(net.Env(0), token)
	net.Activate(0)
	net.Deliver(kQP) // spurious increment 1 (echo 0)
	net.Activate(1)
	net.Deliver(kQP) // spurious increment 2 (echo 1)
	net.Deliver(kPQ)
	net.Deliver(kQP) // spurious increment 3 -> State = 3 = FlagTop: decision!

	if p.State[1] != 3 {
		t.Fatalf("ablated protocol State = %d, want 3 (spurious completion)", p.State[1])
	}
	if !decided {
		t.Fatal("ablated protocol did not decide on garbage; ablation vacuous")
	}
	// The genuine feedback for this broadcast would be ackFor(1, token);
	// the ablated protocol decided on something that was never produced
	// for it — the unsound decision the flag domain {0..4} rules out.
	if decidedOn.Equal(ackFor(1, token)) {
		t.Fatalf("decision %v matches the genuine feedback; ablation vacuous", decidedOn)
	}
}

// TestStateMonotoneDuringComputation: within one started computation the
// per-neighbour flag never decreases (it is reset only by a new start).
func TestStateMonotoneDuringComputation(t *testing.T) {
	t.Parallel()
	for trial := 0; trial < 50; trial++ {
		net, machines, _ := corruptNet(t, 3, uint64(trial+900))
		token := core.Payload{Tag: "fresh"}
		requested, started := false, false
		last := make([]uint8, 3)
		err := net.RunUntil(func() bool {
			if !requested {
				requested = machines[0].Invoke(net.Env(0), token)
				return false
			}
			if !started {
				// Monotonicity holds from the start action A1 (which
				// resets the flags to 0) to the decision.
				if machines[0].Request == core.In {
					started = true
					copy(last, machines[0].State)
				}
				return false
			}
			for q := 1; q < 3; q++ {
				if machines[0].State[q] < last[q] {
					t.Fatalf("trial %d: State[%d] decreased %d -> %d mid-computation",
						trial, q, last[q], machines[0].State[q])
				}
				last[q] = machines[0].State[q]
			}
			return machines[0].Done() && machines[0].BMes.Equal(token)
		}, 2_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestAppendStateDistinguishesConfigs(t *testing.T) {
	t.Parallel()
	a := New("pif", 0, 3, Callbacks{})
	b := New("pif", 0, 3, Callbacks{})
	if string(a.AppendState(nil)) != string(b.AppendState(nil)) {
		t.Fatal("identical machines encode differently")
	}
	b.State[1] = 2
	if string(a.AppendState(nil)) == string(b.AppendState(nil)) {
		t.Fatal("different State encodes identically")
	}
	b.State[1] = 0
	b.Neig[2] = 1
	if string(a.AppendState(nil)) == string(b.AppendState(nil)) {
		t.Fatal("different NeigState encodes identically")
	}
}

func TestCorruptStaysInDomain(t *testing.T) {
	t.Parallel()
	r := rng.New(123)
	for trial := 0; trial < 200; trial++ {
		m := New("pif", 1, 4, Callbacks{})
		m.Corrupt(r)
		if m.Request > core.Done {
			t.Fatalf("corrupted Request %d out of domain", m.Request)
		}
		for q := 0; q < 4; q++ {
			if q == 1 {
				continue
			}
			if m.State[q] > m.FlagTop() || m.Neig[q] > m.FlagTop() {
				t.Fatalf("corrupted flags out of domain: State=%d Neig=%d", m.State[q], m.Neig[q])
			}
		}
	}
}

func TestCapacityBoundOptionSizesFlagDomain(t *testing.T) {
	t.Parallel()
	for c := 1; c <= 4; c++ {
		m := New("pif", 0, 2, Callbacks{}, WithCapacityBound(c))
		if got, want := m.FlagTop(), uint8(2*c+2); got != want {
			t.Errorf("capacity %d: FlagTop = %d, want %d", c, got, want)
		}
	}
}

func TestCapacityTwoEndToEnd(t *testing.T) {
	t.Parallel()
	// Capacity-2 channels with the matching flag domain {0..6}: the
	// protocol still satisfies its specification from corrupted starts.
	const n, c = 3, 2
	for trial := 0; trial < 50; trial++ {
		machines := make([]*PIF, n)
		stacks := make([]core.Stack, n)
		for i := 0; i < n; i++ {
			id := core.ProcID(i)
			machines[i] = New("pif", id, n, Callbacks{
				OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
					return ackFor(id, b)
				},
			}, WithCapacityBound(c))
			stacks[i] = core.Stack{machines[i]}
		}
		rec := core.NewRecorder(1 << 18)
		net := sim.New(stacks, sim.WithSeed(uint64(trial+1)), sim.WithCapacity(c), sim.WithObserver(rec))
		r := rng.New(uint64(trial + 77))
		for _, m := range machines {
			m.Corrupt(r)
		}
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from == to {
					continue
				}
				k := sim.LinkKey{From: core.ProcID(from), To: core.ProcID(to), Instance: "pif"}
				garbage := []core.Message{
					GarbageMessage(r, "pif", machines[0].FlagTop()),
					GarbageMessage(r, "pif", machines[0].FlagTop()),
				}
				if err := net.Link(k).Preload(garbage); err != nil {
					t.Fatal(err)
				}
			}
		}
		token := core.Payload{Tag: "fresh", Num: int64(trial)}
		requested := false
		err := net.RunUntil(func() bool {
			if !requested {
				requested = machines[0].Invoke(net.Env(0), token)
				return false
			}
			return machines[0].Done() && machines[0].BMes.Equal(token)
		}, 2_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want1, want2 := ackFor(1, token), ackFor(2, token)
		got := map[core.ProcID]core.Payload{}
		for _, e := range rec.Events() {
			if e.Kind == core.EvRecvFck && e.Proc == 0 {
				got[e.Peer] = e.Msg.F
			}
		}
		if !got[1].Equal(want1) || !got[2].Equal(want2) {
			t.Fatalf("trial %d: feedback = %v, want %v / %v", trial, got, want1, want2)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	t.Parallel()
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("n=1", func() { New("pif", 0, 1, Callbacks{}) })
	expectPanic("self out of range", func() { New("pif", 5, 3, Callbacks{}) })
	expectPanic("capacity 0", func() { New("pif", 0, 2, Callbacks{}, WithCapacityBound(0)) })
	expectPanic("flag top 0", func() { New("pif", 0, 2, Callbacks{}, WithFlagTop(0)) })
}

func TestGarbageMessageInDomain(t *testing.T) {
	t.Parallel()
	r := rng.New(55)
	for i := 0; i < 500; i++ {
		m := GarbageMessage(r, "pif", 4)
		if m.State > 4 || m.Echo > 4 {
			t.Fatalf("garbage message out of domain: %v", m)
		}
		if m.Instance != "pif" || m.Kind != Kind {
			t.Fatalf("garbage message misrouted: %v", m)
		}
	}
}

func TestDeliverIgnoresForeignKindsAndSelf(t *testing.T) {
	t.Parallel()
	net, machines := testNet(t, 2)
	before := string(machines[0].AppendState(nil))
	machines[0].Deliver(net.Env(0), 1, core.Message{Instance: "pif", Kind: "OTHER"})
	machines[0].Deliver(net.Env(0), 0, core.Message{Instance: "pif", Kind: Kind}) // from self: impossible, ignored
	machines[0].Deliver(net.Env(0), 9, core.Message{Instance: "pif", Kind: Kind}) // out of range
	if got := string(machines[0].AppendState(nil)); got != before {
		t.Fatal("ill-formed deliveries mutated machine state")
	}
}

func TestRepeatedComputations(t *testing.T) {
	t.Parallel()
	net, machines := testNet(t, 3, sim.WithSeed(41))
	for round := 0; round < 10; round++ {
		token := core.Payload{Tag: "r", Num: int64(round)}
		requested := false
		err := net.RunUntil(func() bool {
			if !requested {
				requested = machines[0].Invoke(net.Env(0), token)
				return false
			}
			return machines[0].Done() && machines[0].BMes.Equal(token)
		}, 1_000_000)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func fmtStates(ms []*PIF) string {
	s := ""
	for _, m := range ms {
		s += fmt.Sprintf("p%d{%v S%v N%v} ", m.self, m.Request, m.State, m.Neig)
	}
	return s
}

func TestStringHelpersCompile(t *testing.T) {
	t.Parallel()
	_, machines := testNet(t, 2)
	if fmtStates(machines) == "" {
		t.Fatal("empty debug string")
	}
}

// TestGarbageBlobStreamInvariance pins the determinism contract of the
// typed-payload change: drawing blob-free garbage (maxBlob = 0) consumes
// EXACTLY the random stream of the pre-blob GarbagePayload, so legacy
// corrupted configurations — and with them every deterministic-sim
// experiment table — replay byte-identically.
func TestGarbageBlobStreamInvariance(t *testing.T) {
	t.Parallel()
	r1, r2 := rng.New(77), rng.New(77)
	for i := 0; i < 100; i++ {
		a := GarbagePayload(r1)
		b := GarbagePayloadBlob(r2, 0)
		if !a.Equal(b) {
			t.Fatalf("draw %d diverged: %v vs %v", i, a, b)
		}
	}
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("maxBlob=0 consumed extra randomness: legacy streams shifted")
	}

	// And with a bound, bodies are actually drawn, within the bound.
	r := rng.New(3)
	sawBody := false
	for i := 0; i < 100; i++ {
		p := GarbagePayloadBlob(r, 32)
		if len(p.Blob) > 32 {
			t.Fatalf("garbage body of %d bytes exceeds bound 32", len(p.Blob))
		}
		if len(p.Blob) > 0 {
			sawBody = true
		}
	}
	if !sawBody {
		t.Fatal("maxBlob=32 never drew a body in 100 payloads")
	}
}
