package pif

import (
	"testing"
	"testing/quick"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
)

// TestPropertyFlagsStayInDomain: under arbitrary corruption, garbage, and
// random schedules, no machine's flags ever leave {0..FlagTop}.
func TestPropertyFlagsStayInDomain(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, n8, top8, steps16 uint16) bool {
		n := int(n8%3) + 2     // 2..4
		top := int(top8%5) + 1 // 1..5
		steps := int(steps16%2000) + 100
		machines := make([]*PIF, n)
		stacks := make([]core.Stack, n)
		for i := 0; i < n; i++ {
			machines[i] = New("pif", core.ProcID(i), n, Callbacks{}, WithFlagTop(top))
			stacks[i] = core.Stack{machines[i]}
		}
		net := sim.New(stacks, sim.WithSeed(seed))
		r := rng.New(rng.Mix(seed, 0xABCD))
		for _, m := range machines {
			m.Corrupt(r)
			m.Request = core.Wait // everything computes
		}
		for i := 0; i < steps; i++ {
			net.Step()
			for _, m := range machines {
				for q := 0; q < n; q++ {
					if q == int(m.Self()) {
						continue
					}
					if m.State[q] > uint8(top) || m.Neig[q] > uint8(top) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDecisionImpliesAllTop: whenever Request transitions to Done
// from In, every per-neighbour flag equals FlagTop (A2's guard).
func TestPropertyDecisionImpliesAllTop(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%3) + 2
		machines := make([]*PIF, n)
		stacks := make([]core.Stack, n)
		for i := 0; i < n; i++ {
			machines[i] = New("pif", core.ProcID(i), n, Callbacks{})
			stacks[i] = core.Stack{machines[i]}
		}
		net := sim.New(stacks, sim.WithSeed(seed))
		r := rng.New(rng.Mix(seed, 0xF00D))
		for _, m := range machines {
			m.Corrupt(r)
		}
		prev := make([]core.ReqState, n)
		for i, m := range machines {
			prev[i] = m.Request
		}
		for i := 0; i < 3000; i++ {
			net.Step()
			for j, m := range machines {
				if prev[j] == core.In && m.Request == core.Done {
					for q := 0; q < n; q++ {
						if q != j && m.State[q] != m.FlagTop() {
							return false
						}
					}
				}
				prev[j] = m.Request
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySingleFckPerComputation: within one started computation, at
// most one receive-fck event is generated per neighbour.
func TestPropertySingleFckPerComputation(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		const n = 3
		fcks := make(map[[2]core.ProcID]int)
		ok := true
		machines := make([]*PIF, n)
		stacks := make([]core.Stack, n)
		for i := 0; i < n; i++ {
			machines[i] = New("pif", core.ProcID(i), n, Callbacks{})
			stacks[i] = core.Stack{machines[i]}
		}
		obs := core.ObserverFunc(func(e core.Event) {
			switch e.Kind {
			case core.EvRecvFck:
				key := [2]core.ProcID{e.Proc, e.Peer}
				fcks[key]++
				if fcks[key] > 1 {
					ok = false
				}
			case core.EvStart, core.EvDecide:
				// A new computation (or its end) resets the per-pair count.
				for k := range fcks {
					if k[0] == e.Proc {
						delete(fcks, k)
					}
				}
			}
		})
		net := sim.New(stacks, sim.WithSeed(seed), sim.WithObserver(obs))
		r := rng.New(rng.Mix(seed, 5))
		for _, m := range machines {
			m.Corrupt(r)
			m.Request = core.Wait
		}
		for i := 0; i < 5000 && ok; i++ {
			net.Step()
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQuiescenceAfterAllDone: once every machine is Done and the
// channels drain, the system stays silent (no sends ever again).
func TestPropertyQuiescenceAfterAllDone(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		const n = 3
		machines := make([]*PIF, n)
		stacks := make([]core.Stack, n)
		for i := 0; i < n; i++ {
			machines[i] = New("pif", core.ProcID(i), n, Callbacks{})
			stacks[i] = core.Stack{machines[i]}
		}
		net := sim.New(stacks, sim.WithSeed(seed))
		r := rng.New(rng.Mix(seed, 3))
		for _, m := range machines {
			m.Corrupt(r)
		}
		// Run until all Done (termination property) and channels empty.
		err := net.RunUntil(func() bool {
			for _, m := range machines {
				if !m.Done() {
					return false
				}
			}
			return net.InTransit() == 0
		}, 2_000_000)
		if err != nil {
			return false
		}
		before := net.Stats().Sends
		for i := 0; i < 500; i++ {
			net.Step()
		}
		return net.Stats().Sends == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
