package pif

import (
	"testing"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/sim"
)

// TestCrashBlocksDecisionButNeverFakesIt documents the model boundary the
// paper defers to future work: with a crashed participant the initiator's
// computation cannot decide (liveness requires every process), but it also
// never decides SPURIOUSLY — the handshake cannot be completed by garbage,
// crash or no crash.
func TestCrashBlocksDecisionButNeverFakesIt(t *testing.T) {
	t.Parallel()
	net, machines := testNet(t, 3, sim.WithSeed(13))
	net.Crash(2)
	machines[0].Invoke(net.Env(0), core.Payload{Tag: "m", Num: 1})
	err := net.RunUntil(machines[0].Done, 500000)
	if err == nil {
		t.Fatal("decision reached with a crashed participant: fabricated completion")
	}
	// The live pair's handshake completed; only the crashed one blocks.
	if got := machines[0].State[1]; got != machines[0].FlagTop() {
		t.Fatalf("live handshake at flag %d, want %d", got, machines[0].FlagTop())
	}
	if got := machines[0].State[2]; got == machines[0].FlagTop() {
		t.Fatal("handshake with the crashed process 'completed'")
	}
}

// TestCrashAfterDecisionHarmless: a crash after the computation decided
// does not retroactively affect it, and new computations among live
// processes of a DIFFERENT system (excluding the crashed one) are a
// deployment concern, not a protocol one — the paper's model has no
// membership change. This test pins the first half.
func TestCrashAfterDecisionHarmless(t *testing.T) {
	t.Parallel()
	net, machines := testNet(t, 3, sim.WithSeed(17))
	machines[0].Invoke(net.Env(0), core.Payload{Tag: "m", Num: 1})
	if err := net.RunUntil(machines[0].Done, 500000); err != nil {
		t.Fatal(err)
	}
	net.Crash(1)
	// The decided state is stable.
	for i := 0; i < 1000; i++ {
		net.Step()
	}
	if !machines[0].Done() {
		t.Fatal("a crash after the decision un-decided the computation")
	}
}
