// Package pif implements Protocol PIF (Algorithm 1 of the paper): the
// first snap-stabilizing Propagation of Information with Feedback for
// message-passing systems with bounded-capacity channels.
//
// # The algorithm
//
// Per neighbour q, the initiator p keeps a handshake flag State[q] and the
// last flag value received from q, NeigState[q]. While a computation is in
// progress (Request = In), p repeatedly sends
//
//	<PIF, B-Mes, F-Mes[q], State[q], NeigState[q]>
//
// and increments State[q] only when it receives a message from q echoing
// State[q] back. With channel capacity c, an arbitrary initial
// configuration holds at most c stale messages in each direction plus one
// stale NeigState at q — at most 2c+1 stale echo tokens — so after
// FlagTop = 2c+2 increments the last echo necessarily answers a message p
// sent after its start. The paper fixes c = 1, giving the flag domain
// {0..4} (Figure 1 is the worst case, where garbage yields the first three
// increments). This implementation keeps c as a parameter and instantiates
// the paper's protocol at c = 1; the reduction "known capacity c ⇒ flag
// domain {0..2c+2}" is the extension the paper calls straightforward, and
// experiment E10 validates it empirically.
//
// The q-side behaviour is part of the same action A3: q accepts the
// broadcast (generates receive-brd, exactly once per computation) when the
// incoming flag reaches FlagTop-1, and answers every message whose flag is
// below FlagTop.
//
// # Events
//
// The machine emits EvStart at action A1, EvDecide at termination in A2,
// and EvRecvBrd / EvRecvFck at the corresponding acceptance points of A3,
// so specification checkers can verify Specification 1 externally.
package pif

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
)

// Kind is the single message type used by the protocol (the paper's PIF
// messages).
const Kind = "PIF"

// Callbacks connects a PIF instance to the application layered above it
// (IDL, mutual exclusion, or user code).
type Callbacks struct {
	// OnBroadcast handles a "receive-brd<B> from q" event and returns the
	// feedback value to store into F-Mes[q]. A nil OnBroadcast leaves
	// F-Mes[q] unchanged.
	OnBroadcast func(env core.Env, from core.ProcID, b core.Payload) core.Payload
	// OnFeedback handles a "receive-fck<F> from q" event. May be nil.
	OnFeedback func(env core.Env, from core.ProcID, f core.Payload)
}

// Option configures a PIF machine.
type Option func(*PIF)

// WithCapacityBound declares the known channel capacity bound c >= 1 and
// sizes the flag domain to {0..2c+2} accordingly. Default is the paper's
// c = 1 (flag domain {0..4}).
func WithCapacityBound(c int) Option {
	return func(p *PIF) {
		if c < 1 {
			panic(fmt.Sprintf("pif: invalid capacity bound %d", c))
		}
		p.top = uint8(2*c + 2)
	}
}

// WithFlagTop overrides the flag-domain top directly. It exists for the
// ablation experiments (E9): tops below 2c+2 make the protocol unsound,
// which the model checker then demonstrates. Production code should use
// WithCapacityBound.
func WithFlagTop(top int) Option {
	return func(p *PIF) {
		if top < 1 || top > 250 {
			panic(fmt.Sprintf("pif: invalid flag top %d", top))
		}
		p.top = uint8(top)
	}
}

// WithPeers restricts the machine to a set of communication neighbours:
// the handshake runs only toward peers, the broadcast is accepted only
// from peers, and termination requires State[q] = top exactly for the
// peers. The default (nil) is every other process — the paper's complete
// graph. The slice is copied and sorted ascending, so on the complete
// graph every loop visits exactly the processes the unrestricted machine
// visits, in the same order: executions are byte-identical.
func WithPeers(peers []core.ProcID) Option {
	return func(p *PIF) {
		out := make([]core.ProcID, len(peers))
		copy(out, peers)
		sortProcIDs(out)
		for i, q := range out {
			if q < 0 || int(q) >= p.n || q == p.self {
				panic(fmt.Sprintf("pif: peer %d invalid for process %d of %d", q, p.self, p.n))
			}
			if i > 0 && out[i-1] == q {
				panic(fmt.Sprintf("pif: duplicate peer %d", q))
			}
		}
		p.peers = out
	}
}

func sortProcIDs(s []core.ProcID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// WithGarbageBlobs makes Corrupt draw opaque payload bodies of up to max
// random bytes alongside the structured garbage, realizing arbitrary
// initial configurations for typed (blob-carrying) deployments. The
// default max of 0 draws nothing extra, so legacy corruption consumes
// exactly the random stream of earlier revisions — deterministic-sim
// experiment output is unchanged.
func WithGarbageBlobs(max int) Option {
	return func(p *PIF) {
		if max < 0 {
			panic(fmt.Sprintf("pif: invalid garbage blob bound %d", max))
		}
		p.blobMax = max
	}
}

// PIF is one process's instance of Protocol PIF. Exported fields mirror
// the paper's variables; they are exported because sibling packages
// (checkers, corruption, composed protocols) manipulate raw protocol state
// — exactly what "arbitrary initial configuration" means.
type PIF struct {
	inst    string
	self    core.ProcID
	n       int
	top     uint8
	blobMax int
	peers   []core.ProcID // sorted communication neighbours
	cb      Callbacks

	// Request is the input/output variable driving computations
	// (Wait -> In -> Done).
	Request core.ReqState
	// BMes is the data to broadcast (input variable B-Mes).
	BMes core.Payload
	// FMes[q] is the feedback value for neighbour q (input variable
	// F-Mes[q]); entry self is unused.
	FMes []core.Payload
	// State[q] is the handshake flag toward q; entry self is unused.
	State []uint8
	// Neig[q] is the last flag value received from q (NeigState[q]).
	Neig []uint8
}

var (
	_ core.Machine     = (*PIF)(nil)
	_ core.Snapshotter = (*PIF)(nil)
	_ core.Corruptible = (*PIF)(nil)
)

// New returns a PIF machine for process self in an n-process system,
// publishing on protocol instance inst. The zero-value state corresponds
// to the clean configuration (Request = Wait is NOT assumed; Request
// starts Done so nothing runs until invoked or corrupted).
func New(inst string, self core.ProcID, n int, cb Callbacks, opts ...Option) *PIF {
	if n < 2 {
		panic(fmt.Sprintf("pif: need n >= 2, got %d", n))
	}
	if self < 0 || int(self) >= n {
		panic(fmt.Sprintf("pif: self %d outside [0,%d)", self, n))
	}
	p := &PIF{
		inst:    inst,
		self:    self,
		n:       n,
		top:     4, // c = 1, the paper's setting
		cb:      cb,
		Request: core.Done,
		FMes:    make([]core.Payload, n),
		State:   make([]uint8, n),
		Neig:    make([]uint8, n),
	}
	for _, opt := range opts {
		opt(p)
	}
	if p.peers == nil {
		p.peers = make([]core.ProcID, 0, n-1)
		for q := 0; q < n; q++ {
			if q != int(self) {
				p.peers = append(p.peers, core.ProcID(q))
			}
		}
	}
	return p
}

// Instance returns the protocol instance ID.
func (p *PIF) Instance() string { return p.inst }

// Callbacks returns the current application callbacks.
func (p *PIF) Callbacks() Callbacks { return p.cb }

// SetCallbacks replaces the application callbacks; tools and tests use it
// to attach observation hooks after construction.
func (p *PIF) SetCallbacks(cb Callbacks) { p.cb = cb }

// FlagTop returns the top of the flag domain (4 for the paper's c = 1).
func (p *PIF) FlagTop() uint8 { return p.top }

// Self returns the owning process.
func (p *PIF) Self() core.ProcID { return p.self }

// Peers returns the machine's communication neighbours in ascending
// order. The slice is shared and must not be mutated.
func (p *PIF) Peers() []core.ProcID { return p.peers }

// isPeer reports whether q is a communication neighbour (binary search
// over the sorted peer list).
func (p *PIF) isPeer(q core.ProcID) bool {
	lo, hi := 0, len(p.peers)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.peers[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(p.peers) && p.peers[lo] == q
}

// Invoke submits an external request to broadcast b. Following the model
// (§4.1), the application must not re-request before the previous
// computation decided; Invoke reports false, without effect, if
// Request != Done.
func (p *PIF) Invoke(env core.Env, b core.Payload) bool {
	if p.Request != core.Done {
		return false
	}
	p.BMes = b
	p.Request = core.Wait
	env.Emit(core.Event{Kind: core.EvRequest, Peer: -1, Instance: p.inst, Note: b.String()})
	return true
}

// Reset unconditionally re-requests a broadcast of b, abandoning any
// computation in progress. Composed protocols (Algorithm 3's phase
// machine) use it; external applications should use Invoke.
func (p *PIF) Reset(b core.Payload) {
	p.BMes = b
	p.Request = core.Wait
}

// Done reports whether no computation is requested or in progress.
func (p *PIF) Done() bool { return p.Request == core.Done }

// Step runs the internal actions A1 and A2 in text order.
func (p *PIF) Step(env core.Env) bool {
	fired := false

	// A1 :: Request = Wait -> start: Request <- In; forall q: State[q] <- 0.
	if p.Request == core.Wait {
		p.Request = core.In
		for _, q := range p.peers {
			p.State[q] = 0
		}
		env.Emit(core.Event{Kind: core.EvStart, Peer: -1, Instance: p.inst, Note: p.BMes.String()})
		fired = true
	}

	// A2 :: Request = In -> terminate or (re)transmit.
	if p.Request == core.In {
		if p.allTop() {
			p.Request = core.Done
			env.Emit(core.Event{Kind: core.EvDecide, Peer: -1, Instance: p.inst, Note: p.BMes.String()})
		} else {
			for _, q := range p.peers {
				if p.State[q] == p.top {
					continue
				}
				env.Send(q, core.Message{
					Instance: p.inst,
					Kind:     Kind,
					B:        p.BMes,
					F:        p.FMes[q],
					State:    p.State[q],
					Echo:     p.Neig[q],
				})
			}
		}
		fired = true
	}

	return fired
}

// Deliver runs the receive action A3 for a message from q.
//
// The incoming message fields are, in the paper's notation at receiver p:
// m.State = qState (the sender's flag toward p) and m.Echo = pState (the
// sender's NeigState, i.e. the echo of p's own flag).
func (p *PIF) Deliver(env core.Env, from core.ProcID, m core.Message) {
	if m.Kind != Kind || !p.isPeer(from) {
		// Garbage from the initial configuration, or a sender that is not
		// a communication neighbour: consumed, no effect.
		return
	}
	q := int(from)

	// Clamp out-of-domain flag values from garbage messages. A value
	// above top can never equal State[q] (<= top) nor top-1 except when
	// clamped; clamping to top keeps it inert in every comparison below,
	// matching the model where garbage fields range over the declared
	// domain.
	qState := m.State
	if qState > p.top {
		qState = p.top
	}
	echo := m.Echo

	// receive-brd: accepted once per incoming broadcast, when the
	// sender's flag first shows top-1.
	if p.Neig[q] != p.top-1 && qState == p.top-1 {
		env.Emit(core.Event{Kind: core.EvRecvBrd, Peer: from, Instance: p.inst, Msg: m, Note: m.B.String()})
		if p.cb.OnBroadcast != nil {
			p.FMes[q] = p.cb.OnBroadcast(env, from, m.B)
		}
	}

	p.Neig[q] = qState

	// Echo-matched increment; at top, the feedback is accepted.
	if p.State[q] == echo && p.State[q] < p.top {
		p.State[q]++
		if p.State[q] == p.top {
			env.Emit(core.Event{Kind: core.EvRecvFck, Peer: from, Instance: p.inst, Msg: m, Note: m.F.String()})
			if p.cb.OnFeedback != nil {
				p.cb.OnFeedback(env, from, m.F)
			}
		}
	}

	// Answer the sender while it still waits for echoes.
	if qState < p.top {
		env.Send(from, core.Message{
			Instance: p.inst,
			Kind:     Kind,
			B:        p.BMes,
			F:        p.FMes[q],
			State:    p.State[q],
			Echo:     p.Neig[q],
		})
	}
}

func (p *PIF) allTop() bool {
	for _, q := range p.peers {
		if p.State[q] != p.top {
			return false
		}
	}
	return true
}

// AppendState appends a canonical encoding of the machine state.
func (p *PIF) AppendState(dst []byte) []byte {
	dst = append(dst, 'P', byte(p.Request))
	dst = core.AppendPayload(dst, p.BMes)
	for _, q := range p.peers {
		dst = append(dst, p.State[q], p.Neig[q])
		dst = core.AppendPayload(dst, p.FMes[q])
	}
	return dst
}

// Corrupt overwrites every variable with uniformly random values from its
// domain, realizing an arbitrary initial configuration. Constants (n,
// self, instance, flag top) are untouched, as in the model. Machines
// built WithGarbageBlobs additionally draw random payload bodies.
func (p *PIF) Corrupt(r core.Rand) {
	p.Request = core.ReqState(r.Intn(core.NumReqStates))
	p.BMes = GarbagePayloadBlob(r, p.blobMax)
	for _, q := range p.peers {
		p.State[q] = uint8(r.Intn(int(p.top) + 1))
		p.Neig[q] = uint8(r.Intn(int(p.top) + 1))
		p.FMes[q] = GarbagePayloadBlob(r, p.blobMax)
	}
}

// GarbagePayload draws a random payload, used for corrupted variables and
// garbage channel contents. The tag marks provenance so Property 1 tests
// can recognize initial-configuration data.
func GarbagePayload(r core.Rand) core.Payload {
	return core.Payload{Tag: "garbage", Num: int64(r.Intn(1 << 16))}
}

// GarbagePayloadBlob draws a random payload carrying an opaque body of up
// to maxBlob random bytes. With maxBlob = 0 it draws exactly as
// GarbagePayload — no extra randomness is consumed, so legacy corruption
// streams replay unchanged.
func GarbagePayloadBlob(r core.Rand, maxBlob int) core.Payload {
	p := GarbagePayload(r)
	if maxBlob > 0 {
		blob := make([]byte, r.Intn(maxBlob+1))
		for i := range blob {
			blob[i] = byte(r.Uint64())
		}
		p.Blob = blob
	}
	return p
}

// GarbageMessage draws a random PIF message for instance inst with flags
// in the domain {0..top}, used to fill channels in arbitrary initial
// configurations.
func GarbageMessage(r core.Rand, inst string, top uint8) core.Message {
	return GarbageMessageBlob(r, inst, top, 0)
}

// GarbageMessageBlob is GarbageMessage with payload bodies of up to
// maxBlob random bytes (0 draws none, consuming the legacy stream
// exactly).
func GarbageMessageBlob(r core.Rand, inst string, top uint8, maxBlob int) core.Message {
	return core.Message{
		Instance: inst,
		Kind:     Kind,
		B:        GarbagePayloadBlob(r, maxBlob),
		F:        GarbagePayloadBlob(r, maxBlob),
		State:    uint8(r.Intn(int(top) + 1)),
		Echo:     uint8(r.Intn(int(top) + 1)),
	}
}
