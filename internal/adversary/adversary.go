// Package adversary executes the proof of Theorem 1: no safety-distributed
// specification has a snap-stabilizing solution when channel capacity is
// finite but unbounded (unknown to the processes).
//
// The proof is constructive, and this package makes each of its steps a
// function:
//
//  1. Record (the execution e_p of Definition 5): run a legal execution in
//     which the victim process p completes a computation, and record
//     MesSeq — the exact sequence of messages p consumed from its peer.
//     Also record Φ_p(e1_p), the state-projection of p along the factor.
//  2. Construct γ0 (the initial configuration of the proof): a fresh
//     system whose channel q→p is preloaded with MesSeq. This step is
//     exactly where bounded capacity saves the day: a capacity-c channel
//     rejects a preload longer than c, so the configuration does not
//     exist ("no configuration satisfies Point (2)"). An unbounded
//     channel accepts it.
//  3. Replay: drive only p (its peer never acts). Because p is
//     deterministic and consumes the same message sequence, its state
//     projection reproduces Φ_p(BAD): p runs its computation to the
//     decision while no other process participates — the bad thing for
//     every safety-distributed specification built on the feedback
//     (mutual exclusion privileges, ID learning, ...).
//
// The same machinery quantifies the "known capacity" requirement: a PIF
// built for capacity bound c (flag domain {0..2c+2}) is defeated exactly
// when the attacker can place 2c+2 messages in a channel — experiment E2
// sweeps that threshold.
package adversary

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/spec"
)

// Recording is the outcome of the record phase.
type Recording struct {
	// MesSeq is the ordered sequence of messages the victim consumed from
	// its peer during the computation (the proof's MesSeq^q_p).
	MesSeq []core.Message
	// Projection is Φ_p(e1_p): the victim's state sequence along the
	// factor, consecutive duplicates collapsed.
	Projection spec.SequenceProjection
	// Token is the broadcast payload used; the replay reuses it.
	Token core.Payload
}

// victim builds the 2-process PIF system used by both phases: process 0
// is the victim initiator, process 1 the peer. Returns the network and
// machines.
func victim(capacityBound int, channelCapacity int, unbounded bool) (*sim.Network, []*pif.PIF) {
	machines := make([]*pif.PIF, 2)
	stacks := make([]core.Stack, 2)
	for i := 0; i < 2; i++ {
		id := core.ProcID(i)
		machines[i] = pif.New("pif", id, 2, pif.Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return core.Payload{Tag: "ack", Num: b.Num}
			},
		}, pif.WithCapacityBound(capacityBound))
		stacks[i] = core.Stack{machines[i]}
	}
	opts := []sim.Option{sim.WithSeed(1)}
	if unbounded {
		opts = append(opts, sim.WithUnbounded())
	} else {
		opts = append(opts, sim.WithCapacity(channelCapacity))
	}
	return sim.New(stacks, opts...), machines
}

// projectVictim samples the victim's single-process abstract state.
func projectVictim(m *pif.PIF) spec.AbstractConfig {
	return spec.AbstractConfig{string(m.AppendState(nil))}
}

// Record runs the legal execution and captures MesSeq and Φ_p. The
// schedule is the canonical handshake drive: activate p, deliver q→p,
// activate q, deliver p→q, repeatedly, until p decides.
func Record(capacityBound int) (*Recording, error) {
	net, machines := victim(capacityBound, capacityBound, false)
	p := machines[0]
	rec := &Recording{Token: core.Payload{Tag: "m", Num: 42}}

	var consumed []core.Message
	kQP := sim.LinkKey{From: 1, To: 0, Instance: "pif"}
	kPQ := sim.LinkKey{From: 0, To: 1, Instance: "pif"}

	if !p.Invoke(net.Env(0), rec.Token) {
		return nil, fmt.Errorf("adversary: victim rejected the request")
	}
	sample := func() {
		rec.Projection = append(rec.Projection, projectVictim(p))
	}
	sample()
	for step := 0; step < 10000 && !p.Done(); step++ {
		net.Activate(0)
		sample()
		if m, ok := net.Link(kQP).Peek(); ok {
			consumed = append(consumed, m)
			net.Deliver(kQP)
			sample()
		}
		net.Activate(1)
		net.Deliver(kPQ)
	}
	if !p.Done() {
		return nil, fmt.Errorf("adversary: record phase did not complete")
	}
	rec.MesSeq = consumed
	return rec, nil
}

// Outcome reports what happened when the construction was attempted
// against a given channel regime.
type Outcome struct {
	// PreloadAccepted reports whether γ0 could be constructed (the
	// channel admitted MesSeq). Bounded channels shorter than MesSeq
	// refuse — the proof's step (2) fails and the attack is impossible.
	PreloadAccepted bool
	// Decided reports whether the victim completed its computation during
	// the replay.
	Decided bool
	// PeerParticipated reports whether the peer received the broadcast
	// during the replay (it never acts, so this must be false).
	PeerParticipated bool
	// ProjectionReproduced reports whether the victim's replayed state
	// sequence contains Φ_p(BAD) from the recording — the proof's
	// Φ(PRED) = BAD step.
	ProjectionReproduced bool
	// PreloadLen is len(MesSeq).
	PreloadLen int
}

// Violation reports whether the outcome realizes the bad thing: the victim
// decided a computation in which its peer never participated.
func (o Outcome) Violation() bool {
	return o.PreloadAccepted && o.Decided && !o.PeerParticipated
}

// Replay attempts the construction against a victim whose PIF assumes
// capacityBound, over channels of the given capacity (unbounded when
// unbounded is true). Only the victim acts; its peer is never activated
// and no message is ever delivered to it.
func Replay(rec *Recording, capacityBound int, channelCapacity int, unbounded bool) Outcome {
	net, machines := victim(capacityBound, channelCapacity, unbounded)
	p, q := machines[0], machines[1]
	kQP := sim.LinkKey{From: 1, To: 0, Instance: "pif"}

	out := Outcome{PreloadLen: len(rec.MesSeq)}
	if err := net.Link(kQP).Preload(rec.MesSeq); err != nil {
		return out // γ0 does not exist in this regime
	}
	out.PreloadAccepted = true

	var replayed spec.SequenceProjection
	sample := func() {
		replayed = append(replayed, projectVictim(p))
	}
	if !p.Invoke(net.Env(0), rec.Token) {
		return out
	}
	sample()
	qBefore := string(q.AppendState(nil))
	for step := 0; step < 10000 && !p.Done(); step++ {
		net.Activate(0)
		sample()
		if net.Deliver(kQP) {
			sample()
		}
		// The peer is never activated; messages p sends to it are left in
		// (or lost from) the channel, exactly as if the peer were merely
		// slow — an admissible asynchronous execution.
	}
	out.Decided = p.Done()
	// The peer was never activated and never delivered to, so any state
	// change would indicate participation; there is none by construction,
	// and we verify it rather than assume it.
	out.PeerParticipated = string(q.AppendState(nil)) != qBefore
	out.ProjectionReproduced = replayed.ContainsFactor(rec.Projection)
	return out
}

// MinimalFoolingSequence synthesizes the shortest message sequence that
// drives a victim with flag domain {0..top} from a fresh start to a
// decision: top messages whose echoes ascend 0..top-1, each claiming the
// sender is at flag top-1 with the feedback payload forged. Its length is
// the attack threshold of experiment E2: a channel of capacity < top
// cannot hold it.
func MinimalFoolingSequence(inst string, top uint8, forgedF core.Payload) []core.Message {
	out := make([]core.Message, 0, int(top))
	for echo := uint8(0); echo < top; echo++ {
		out = append(out, core.Message{
			Instance: inst,
			Kind:     pif.Kind,
			B:        core.Payload{Tag: "forged-brd"},
			F:        forgedF,
			State:    top - 1,
			Echo:     echo,
		})
	}
	return out
}

// AttackWithPreload preloads an arbitrary message sequence against a fresh
// victim (capacityBound flags) on channels of the given capacity and
// reports the outcome. Used by the E2 capacity sweep.
func AttackWithPreload(preload []core.Message, capacityBound, channelCapacity int, unbounded bool) Outcome {
	rec := &Recording{MesSeq: preload, Token: core.Payload{Tag: "m", Num: 42}}
	return Replay(rec, capacityBound, channelCapacity, unbounded)
}
