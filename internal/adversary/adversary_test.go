package adversary

import (
	"testing"

	"github.com/snapstab/snapstab/internal/core"
)

func TestRecordCapturesHandshake(t *testing.T) {
	t.Parallel()
	rec, err := Record(1)
	if err != nil {
		t.Fatal(err)
	}
	// A capacity-1 victim needs 4 echo-matched messages (flags 0..3); the
	// recording may contain additional non-incrementing duplicates.
	if len(rec.MesSeq) < 4 {
		t.Fatalf("recorded %d messages, want >= 4", len(rec.MesSeq))
	}
	if len(rec.Projection) < 5 {
		t.Fatalf("projection has %d samples, want at least the 5 flag states", len(rec.Projection))
	}
}

// TestTheorem1UnboundedChannelsAttackSucceeds is the executable statement
// of Theorem 1 for the PIF family: over unbounded channels, the
// record/preload/replay construction yields an execution in which the
// victim decides a computation its peer never participated in, and the
// victim's state sequence reproduces the recorded bad factor.
func TestTheorem1UnboundedChannelsAttackSucceeds(t *testing.T) {
	t.Parallel()
	rec, err := Record(1)
	if err != nil {
		t.Fatal(err)
	}
	out := Replay(rec, 1, 0, true)
	if !out.PreloadAccepted {
		t.Fatal("unbounded channel refused the preload")
	}
	if !out.Decided {
		t.Fatal("victim did not decide during the replay")
	}
	if out.PeerParticipated {
		t.Fatal("peer participated; the replay is not the proof's construction")
	}
	if !out.ProjectionReproduced {
		t.Fatal("victim's state sequence does not reproduce Φ_p(BAD)")
	}
	if !out.Violation() {
		t.Fatal("outcome not classified as a violation")
	}
}

// TestBoundedChannelsRefuseTheConstruction is the positive side: with the
// capacity bound the protocol was built for, γ0 cannot be constructed.
func TestBoundedChannelsRefuseTheConstruction(t *testing.T) {
	t.Parallel()
	rec, err := Record(1)
	if err != nil {
		t.Fatal(err)
	}
	out := Replay(rec, 1, 1, false)
	if out.PreloadAccepted {
		t.Fatalf("capacity-1 channel accepted a %d-message preload", out.PreloadLen)
	}
	if out.Violation() {
		t.Fatal("violation reported although the configuration does not exist")
	}
}

// TestCapacityThreshold sweeps the attack against protocols built for
// capacity bound c over channels of actual capacity g: the minimal attack
// needs g >= 2c+2 slots, so protocols whose real channels respect their
// assumed bound are exactly the safe ones.
func TestCapacityThreshold(t *testing.T) {
	t.Parallel()
	for c := 1; c <= 3; c++ {
		top := 2*c + 2
		seq := MinimalFoolingSequence("pif", uint8(top), core.Payload{Tag: "forged"})
		if len(seq) != top {
			t.Fatalf("c=%d: minimal sequence has %d messages, want %d", c, len(seq), top)
		}
		for g := 1; g <= top+1; g++ {
			out := AttackWithPreload(seq, c, g, false)
			wantAccepted := g >= top
			if out.PreloadAccepted != wantAccepted {
				t.Fatalf("c=%d g=%d: PreloadAccepted=%v, want %v", c, g, out.PreloadAccepted, wantAccepted)
			}
			if out.Violation() != wantAccepted {
				t.Fatalf("c=%d g=%d: Violation=%v, want %v", c, g, out.Violation(), wantAccepted)
			}
		}
		// And always over unbounded channels.
		if out := AttackWithPreload(seq, c, 0, true); !out.Violation() {
			t.Fatalf("c=%d: attack failed over unbounded channels", c)
		}
	}
}

// TestMinimalSequenceIsMinimal verifies that one message fewer no longer
// drives the victim to a decision: the flag-domain size is exactly the
// defense margin.
func TestMinimalSequenceIsMinimal(t *testing.T) {
	t.Parallel()
	seq := MinimalFoolingSequence("pif", 4, core.Payload{Tag: "forged"})
	out := AttackWithPreload(seq[:3], 1, 0, true)
	if out.Decided {
		t.Fatal("victim decided with only 3 preloaded messages; the handshake is too weak")
	}
	if out.Violation() {
		t.Fatal("violation with a sub-threshold preload")
	}
}

func TestReplayDeterministic(t *testing.T) {
	t.Parallel()
	rec, err := Record(1)
	if err != nil {
		t.Fatal(err)
	}
	a := Replay(rec, 1, 0, true)
	b := Replay(rec, 1, 0, true)
	if a != b {
		t.Fatalf("replays diverged: %+v vs %+v", a, b)
	}
}

func TestRecordDifferentCapacities(t *testing.T) {
	t.Parallel()
	for c := 1; c <= 3; c++ {
		rec, err := Record(c)
		if err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		if len(rec.MesSeq) < 2*c+2 {
			t.Fatalf("c=%d: recorded %d messages, want >= %d", c, len(rec.MesSeq), 2*c+2)
		}
		out := Replay(rec, c, 0, true)
		if !out.Violation() || !out.ProjectionReproduced {
			t.Fatalf("c=%d: replay outcome %+v", c, out)
		}
	}
}
