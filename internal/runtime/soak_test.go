package runtime

import (
	"fmt"
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
)

// TestRuntimeSoak is the scaled-up confidence run for the event-driven
// engine: cluster sizes the ticker-polling engine could not sustain
// (n=16 meant 16 processes × 15 links hammering one global mutex every
// 50µs), corrupted initial states, injected loss, and rotating
// initiators. Skipped under -short.
func TestRuntimeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	t.Parallel()
	for _, tc := range []struct {
		n    int
		loss float64
	}{
		{n: 8, loss: 0},
		{n: 8, loss: 0.2},
		{n: 16, loss: 0},
		{n: 16, loss: 0.1},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n=%d/loss=%v", tc.n, tc.loss), func(t *testing.T) {
			t.Parallel()
			stacks, machines := pifStacks(tc.n)
			r := rng.New(uint64(tc.n)*31 + uint64(tc.loss*100))
			for _, m := range machines {
				m.Corrupt(r)
			}
			opts := []Option{WithCapacity(2)}
			if tc.loss > 0 {
				opts = append(opts, WithLossRate(tc.loss))
			}
			e := New(stacks, opts...)
			e.Start()
			defer e.Stop()

			for round := 0; round < 5; round++ {
				p := core.ProcID(round % tc.n)
				token := core.Payload{Tag: "soak", Num: int64(round*100 + tc.n)}
				invoked := waitFor(t, 30*time.Second, func() bool {
					var ok bool
					e.Do(p, func(env core.Env) { ok = machines[p].Invoke(env, token) })
					return ok
				})
				if !invoked {
					t.Fatalf("round %d: initiator %d never accepted the request", round, p)
				}
				done := waitFor(t, 60*time.Second, func() bool {
					var d bool
					e.Do(p, func(core.Env) { d = machines[p].Done() && machines[p].BMes.Equal(token) })
					return d
				})
				if !done {
					t.Fatalf("round %d: broadcast from %d did not decide", round, p)
				}
			}
		})
	}
}
