package runtime

import (
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
)

func TestPIFUnderFaultPlan(t *testing.T) {
	t.Parallel()
	stacks, machines := pifStacks(3)
	plan := &core.FaultPlan{
		Seed: 5,
		Default: core.LinkFaults{
			DropRate:    0.15,
			DupRate:     0.10,
			ReorderRate: 0.10,
			DelayRate:   0.05,
			DelayTicks:  3,
			CorruptRate: 0.05,
		},
	}
	e := New(stacks, WithFaults(plan))
	e.Start()
	defer e.Stop()

	token := core.Payload{Tag: "m", Num: 4}
	e.Do(0, func(env core.Env) {
		if !machines[0].Invoke(env, token) {
			t.Error("Invoke rejected")
		}
	})
	if !waitFor(t, 30*time.Second, func() bool {
		var d bool
		e.Do(0, func(core.Env) { d = machines[0].Done() && machines[0].BMes.Equal(token) })
		return d
	}) {
		t.Fatalf("broadcast did not survive the fault plan (faults: %+v)", e.FaultStats())
	}
	if e.FaultStats().Total() == 0 {
		t.Fatal("fault plan injected nothing")
	}
}

func TestCrashRestartWindowOnRuntime(t *testing.T) {
	t.Parallel()
	stacks, machines := pifStacks(3)
	plan := &core.FaultPlan{
		Seed:    5,
		Unit:    time.Millisecond,
		Crashes: []core.CrashWindow{{Proc: 1, From: 0, Until: 250}},
	}
	e := New(stacks, WithFaults(plan))
	e.Start()
	defer e.Stop()

	token := core.Payload{Tag: "m", Num: 9}
	e.Do(0, func(env core.Env) { machines[0].Invoke(env, token) })
	// The PIF decision needs feedback from process 1, so completion
	// implies the crash window ended and the warm restart worked.
	if !waitFor(t, 30*time.Second, func() bool {
		var d bool
		e.Do(0, func(core.Env) { d = machines[0].Done() && machines[0].BMes.Equal(token) })
		return d
	}) {
		t.Fatalf("broadcast did not complete after the crash window (faults: %+v)", e.FaultStats())
	}
	if e.FaultStats().CrashDrops == 0 {
		t.Fatal("no arrivals were consumed during the crash window")
	}
}

func TestPartitionWindowOnRuntime(t *testing.T) {
	t.Parallel()
	stacks, machines := pifStacks(4)
	plan := &core.FaultPlan{
		Seed:       5,
		Unit:       time.Millisecond,
		Partitions: []core.PartitionWindow{{From: 0, Until: 250, GroupA: []core.ProcID{0}}},
	}
	e := New(stacks, WithFaults(plan))
	e.Start()
	defer e.Stop()

	token := core.Payload{Tag: "m", Num: 2}
	e.Do(0, func(env core.Env) { machines[0].Invoke(env, token) })
	if !waitFor(t, 30*time.Second, func() bool {
		var d bool
		e.Do(0, func(core.Env) { d = machines[0].Done() && machines[0].BMes.Equal(token) })
		return d
	}) {
		t.Fatalf("broadcast did not complete after the heal (faults: %+v)", e.FaultStats())
	}
	if e.FaultStats().PartitionDrops == 0 {
		t.Fatal("no messages were dropped by the partition")
	}
}
