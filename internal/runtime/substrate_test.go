package runtime

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
)

// TestEngineAwait completes a corrupted broadcast through the substrate
// interface alone.
func TestEngineAwait(t *testing.T) {
	t.Parallel()
	const n = 3
	stacks := make([]core.Stack, n)
	machines := make([]*pif.PIF, n)
	for i := 0; i < n; i++ {
		machines[i] = pif.New("pif", core.ProcID(i), n, pif.Callbacks{})
		stacks[i] = core.Stack{machines[i]}
	}
	var sub core.Substrate = New(stacks)
	sub.(*Engine).Start()
	defer sub.Close()
	if sub.N() != n {
		t.Fatalf("N = %d, want %d", sub.N(), n)
	}
	token := core.Payload{Tag: "t", Num: 9}
	requested := false
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	err := sub.Await(ctx, 0, func(env core.Env) bool {
		if !requested {
			requested = machines[0].Invoke(env, token)
			return false
		}
		return machines[0].Done() && machines[0].BMes.Equal(token)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEngineAwaitStopped verifies Await unblocks with ErrStopped when
// the engine is closed underneath it, and that Close is idempotent.
func TestEngineAwaitStopped(t *testing.T) {
	t.Parallel()
	stacks := make([]core.Stack, 2)
	for i := range stacks {
		stacks[i] = core.Stack{pif.New("pif", core.ProcID(i), 2, pif.Callbacks{})}
	}
	e := New(stacks)
	e.Start()
	done := make(chan error, 1)
	go func() {
		done <- e.Await(context.Background(), 0, func(core.Env) bool { return false })
	}()
	time.Sleep(2 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("got %v, want ErrStopped", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Await never unblocked after Close")
	}
}
