package runtime

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/stat"
)

// flooder is a synthetic machine for throughput measurement: every Step
// seeds one message to each peer, and every Deliver echoes one message
// back to the sender. Once seeded, the echo traffic is self-sustaining,
// so the sustained delivery rate measures the substrate's message path
// (link bookkeeping, delivery dispatch) rather than the step pacing.
type flooder struct {
	inst      string
	self      core.ProcID
	n         int
	blob      []byte // opaque payload body carried by every message
	delivered *atomic.Int64
}

func (f *flooder) Instance() string { return f.inst }

func (f *flooder) Step(env core.Env) bool {
	for q := 0; q < f.n; q++ {
		if core.ProcID(q) != f.self {
			env.Send(core.ProcID(q), core.Message{Instance: f.inst, Kind: "flood", B: core.Payload{Blob: f.blob}})
		}
	}
	return true
}

func (f *flooder) Deliver(env core.Env, from core.ProcID, m core.Message) {
	f.delivered.Add(1)
	env.Send(from, core.Message{Instance: f.inst, Kind: "flood", B: core.Payload{Blob: f.blob}})
}

func flooderStacks(n, blob int, delivered *atomic.Int64) []core.Stack {
	var body []byte
	if blob > 0 {
		body = make([]byte, blob)
		for i := range body {
			body[i] = byte(i)
		}
	}
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		stacks[i] = core.Stack{&flooder{inst: "flood", self: core.ProcID(i), n: n, blob: body, delivered: delivered}}
	}
	return stacks
}

// BenchmarkRuntimeThroughput measures sustained deliveries/sec on the
// concurrent substrate: one op is one delivered message. Compare across
// revisions with benchstat (ns/op is the inverse of throughput; the
// msgs/sec metric is reported explicitly as well). The blob sub-family
// scales the opaque payload body (0B / 256B / 4KiB) at fixed n, so the
// benchgate CI job guards the blob hot path against regressions.
func BenchmarkRuntimeThroughput(b *testing.B) {
	for _, n := range []int{3, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchRuntimeThroughput(b, n, 0)
		})
	}
	// The plain n=8 case above IS the 0B point of the payload triple
	// (0B / 256B / 4KiB); re-running it under a second name would double
	// the benchgate's work for the identical configuration.
	for _, size := range []int{256, 4096} {
		b.Run(fmt.Sprintf("n=8/blob=%s", stat.SizeLabel(size)), func(b *testing.B) {
			benchRuntimeThroughput(b, 8, size)
		})
	}
}

func benchRuntimeThroughput(b *testing.B, n, blob int) {
	var delivered atomic.Int64
	e := New(flooderStacks(n, blob, &delivered), WithCapacity(4))
	e.Start()
	defer e.Stop()
	// Let the flood reach steady state before timing.
	warmup := time.Now().Add(10 * time.Second)
	for delivered.Load() < int64(n) {
		if time.Now().After(warmup) {
			b.Fatalf("flood never started: %d deliveries", delivered.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.ResetTimer()
	start := time.Now()
	deadline := start.Add(5 * time.Minute)
	target := delivered.Load() + int64(b.N)
	for delivered.Load() < target {
		if time.Now().After(deadline) {
			b.Fatalf("flood stalled: %d of %d deliveries", target-delivered.Load(), b.N)
		}
		time.Sleep(50 * time.Microsecond)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "msgs/sec")
	}
}
