// Package runtime executes protocol stacks as real concurrent processes:
// one goroutine per process, and one buffered Go channel per directed
// (sender, receiver, instance) link.
//
// The mapping to the paper's model is direct:
//
//   - a Go channel with capacity c is a FIFO channel holding at most c
//     messages;
//   - a non-blocking send (select/default) into a full channel drops the
//     message — exactly "if a process sends a message in a channel that
//     is full, then the message is lost" (§4);
//   - goroutine scheduling provides genuine asynchrony; the Go runtime's
//     fairness gives the paper's weak fairness in practice.
//
// Unlike internal/sim, executions here are not reproducible — this
// substrate exists to demonstrate that the protocols run unchanged under
// true concurrency (and, via internal/transport/udp, on real sockets).
// The deterministic simulator remains the tool for experiments and
// counter-examples.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
)

// Option configures an Engine.
type Option func(*Engine)

// WithCapacity sets the per-link channel capacity (default 1).
func WithCapacity(c int) Option {
	return func(e *Engine) { e.capacity = c }
}

// WithLossRate drops each received message with the given probability,
// exercising the protocols' loss tolerance on this substrate too.
func WithLossRate(p float64) Option {
	return func(e *Engine) { e.loss = p }
}

// WithObserver subscribes a thread-safe event observer.
func WithObserver(o core.Observer) Option {
	return func(e *Engine) { e.observers = append(e.observers, o) }
}

// WithTick sets the pacing of process activations (default 50µs). Shorter
// ticks run hotter and faster.
func WithTick(d time.Duration) Option {
	return func(e *Engine) { e.tick = d }
}

// linkKey identifies a directed per-instance link.
type linkKey struct {
	from, to core.ProcID
	instance string
}

// Engine is a running concurrent deployment.
type Engine struct {
	n         int
	capacity  int
	loss      float64
	tick      time.Duration
	stacks    []core.Stack
	routes    []map[string]core.Machine
	observers core.MultiObserver

	mu    sync.Mutex // guards links map creation
	links map[linkKey]chan core.Message

	procMu []sync.Mutex // one per process: atomic guarded actions

	step    atomic.Int64
	dropped atomic.Int64
	started bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// New assembles an engine from one stack per process.
func New(stacks []core.Stack, opts ...Option) *Engine {
	if len(stacks) < 2 {
		panic(fmt.Sprintf("runtime: need at least 2 processes, got %d", len(stacks)))
	}
	e := &Engine{
		n:        len(stacks),
		capacity: 1,
		tick:     50 * time.Microsecond,
		stacks:   stacks,
		links:    make(map[linkKey]chan core.Message),
		procMu:   make([]sync.Mutex, len(stacks)),
		stop:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.capacity < 1 {
		panic(fmt.Sprintf("runtime: invalid capacity %d", e.capacity))
	}
	if e.loss < 0 || e.loss >= 1 {
		panic(fmt.Sprintf("runtime: loss rate %v outside [0,1)", e.loss))
	}
	e.routes = make([]map[string]core.Machine, e.n)
	for i, s := range stacks {
		e.routes[i] = s.ByInstance()
	}
	return e
}

// link returns (creating on demand) the Go channel for k.
func (e *Engine) link(k linkKey) chan core.Message {
	e.mu.Lock()
	defer e.mu.Unlock()
	ch, ok := e.links[k]
	if !ok {
		ch = make(chan core.Message, e.capacity)
		e.links[k] = ch
	}
	return ch
}

// env implements core.Env for one process. It must only be used while the
// process mutex is held (the engine and Do guarantee that).
type env struct {
	e    *Engine
	self core.ProcID
}

func (v env) Self() core.ProcID { return v.self }
func (v env) N() int            { return v.e.n }

func (v env) Send(to core.ProcID, m core.Message) {
	ch := v.e.link(linkKey{from: v.self, to: to, instance: m.Instance})
	select {
	case ch <- m:
		v.e.emit(core.Event{Kind: core.EvSend, Proc: v.self, Peer: to, Instance: m.Instance, Msg: m})
	default:
		// Channel full: the message is lost, per the model.
		v.e.dropped.Add(1)
		v.e.emit(core.Event{Kind: core.EvSendLost, Proc: v.self, Peer: to, Instance: m.Instance, Msg: m})
	}
}

func (v env) Emit(ev core.Event) {
	ev.Proc = v.self
	v.e.emit(ev)
}

func (e *Engine) emit(ev core.Event) {
	ev.Step = int(e.step.Add(1))
	if len(e.observers) > 0 {
		e.observers.OnEvent(ev)
	}
}

// Start launches the process goroutines. It may be called once.
func (e *Engine) Start() {
	if e.started {
		panic("runtime: Start called twice")
	}
	e.started = true
	for p := 0; p < e.n; p++ {
		p := core.ProcID(p)
		e.wg.Add(1)
		go e.run(p)
	}
}

// run is the main loop of one process: activate the stack, then drain
// every incoming link once, forever.
func (e *Engine) run(p core.ProcID) {
	defer e.wg.Done()
	r := rng.New(uint64(p) + 0x9E3779B9)
	ticker := time.NewTicker(e.tick)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
		}

		e.procMu[p].Lock()
		ev := env{e: e, self: p}
		for _, m := range e.stacks[p] {
			m.Step(ev)
		}
		// Drain each incoming link non-blockingly.
		for from := 0; from < e.n; from++ {
			if from == int(p) {
				continue
			}
			for inst, mach := range e.routes[p] {
				ch := e.link(linkKey{from: core.ProcID(from), to: p, instance: inst})
				select {
				case m := <-ch:
					if e.loss > 0 && r.Float64() < e.loss {
						e.dropped.Add(1)
						e.emit(core.Event{Kind: core.EvLose, Proc: p, Peer: core.ProcID(from), Instance: inst, Msg: m})
						continue
					}
					e.emit(core.Event{Kind: core.EvDeliver, Proc: p, Peer: core.ProcID(from), Instance: inst, Msg: m})
					mach.Deliver(ev, core.ProcID(from), m)
				default:
				}
			}
		}
		e.procMu[p].Unlock()
	}
}

// Do runs f under process p's action mutex, with p's environment. Use it
// for external interactions (submitting requests, reading protocol state)
// while the engine runs.
func (e *Engine) Do(p core.ProcID, f func(env core.Env)) {
	e.procMu[p].Lock()
	defer e.procMu[p].Unlock()
	f(env{e: e, self: p})
}

// Dropped returns the number of messages lost so far (full channels plus
// injected loss).
func (e *Engine) Dropped() int64 { return e.dropped.Load() }

// Stop terminates all process goroutines and waits for them to exit.
func (e *Engine) Stop() {
	select {
	case <-e.stop:
		return // already stopped
	default:
	}
	close(e.stop)
	e.wg.Wait()
}
