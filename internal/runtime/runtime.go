// Package runtime executes protocol stacks as real concurrent processes:
// one goroutine per process, delivering messages through a per-process
// fan-in channel fed by a dense, precomputed link table.
//
// The mapping to the paper's model is direct:
//
//   - every directed (sender, receiver, instance) link carries an atomic
//     in-flight counter bounded by the configured capacity c: a send that
//     would exceed the bound is dropped — exactly "if a process sends a
//     message in a channel that is full, then the message is lost" (§4);
//   - admitted messages travel as core.Envelope values through the
//     receiver's fan-in channel, sized so that a send never blocks; the
//     receiver drains the channel to empty on every wakeup, so links with
//     capacity > 1 never backlog;
//   - internal (non-receive) actions are paced by a per-process step
//     timer (WithTick); deliveries are event-driven and happen as soon as
//     the receiving goroutine is scheduled. Go's scheduler provides
//     genuine asynchrony, and its fairness gives the paper's weak
//     fairness in practice.
//
// The link table is built once at New from the stacks' instances — the
// hot path takes no engine-wide lock and performs no map writes. A
// message addressed to an instance the destination does not run is
// dropped at the send (it could never be delivered; in the model this is
// a send into a zero-capacity channel).
//
// Unlike internal/sim, executions here are not reproducible — this
// substrate exists to demonstrate that the protocols run unchanged under
// true concurrency (and, via internal/transport/udp, on real sockets).
// The deterministic simulator remains the tool for experiments and
// counter-examples. See DESIGN.md §7.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
)

// Option configures an Engine.
type Option func(*Engine)

// WithCapacity sets the per-link capacity bound (default 1).
func WithCapacity(c int) Option {
	return func(e *Engine) { e.capacity = c }
}

// WithLossRate drops each received message with the given probability,
// exercising the protocols' loss tolerance on this substrate too.
func WithLossRate(p float64) Option {
	return func(e *Engine) { e.loss = p }
}

// WithObserver subscribes an event observer. Callbacks arrive
// concurrently from every process goroutine, so the observer must be
// goroutine-safe.
func WithObserver(o core.Observer) Option {
	return func(e *Engine) { e.observers = append(e.observers, o) }
}

// WithTick sets the pacing of internal protocol actions (default 50µs).
// Deliveries are event-driven and do not wait for the tick; the tick is
// the retransmission cadence of actions like PIF's A2.
func WithTick(d time.Duration) Option {
	return func(e *Engine) { e.tick = d }
}

// WithTopology restricts the engine to the edges of t: each receiver's
// link table holds one row per NEIGHBOUR instead of one per process, so
// the in-flight counters and fan-in buffers are degree-bounded, and a
// send to a non-neighbour is dropped at the sender (there is no channel
// to carry it). The default (nil) is the complete graph, with the exact
// all-pairs table layout of earlier revisions.
func WithTopology(t *core.Topology) Option {
	return func(e *Engine) { e.topo = t }
}

// runtimeFaultSalt namespaces this substrate's injector seeds within the
// plan's rng.Mix hierarchy (sim and udp use their own salts).
const runtimeFaultSalt = 0x52

// WithFaults installs a fault-injection plan (see core.FaultPlan),
// interposed at the per-receiver link table: every envelope leaving a
// receiver's fan-in channel passes its process's injector, which may drop,
// duplicate, corrupt, reorder, or delay it, honor partition windows, and
// silence the process inside crash windows (no internal actions, arrivals
// consumed). Each receiver owns one injector seeded
// rng.Mix(plan.Seed, salt, receiver), so decision streams are reproducible
// per process even though the engine's interleaving is not. Schedule
// windows are measured in plan.Unit ticks of wall time from Start.
func WithFaults(plan *core.FaultPlan) Option {
	return func(e *Engine) { e.fault = plan }
}

// linkTable is the precomputed delivery state for one receiver: its
// instances in stack order and one in-flight counter per directed
// (sender, instance) link. Senders are compacted through senderIdx —
// the identity map on the complete graph, a dense neighbour index on a
// sparse topology — so the table is degree-bounded. The slot for a link
// is senderIdx[sender]*len(instances) + instance index; the instance
// recovers from a slot with one modulo (the sender rides alongside in
// the envelope), so envelopes carry only the slot.
type linkTable struct {
	instances []string
	instIdx   map[string]int
	machines  []core.Machine
	senderIdx []int // per-process dense sender row, -1 = not a neighbour
	inflight  []atomic.Int32
}

// Engine is a running concurrent deployment.
type Engine struct {
	n         int
	capacity  int
	loss      float64
	tick      time.Duration
	topo      *core.Topology
	stacks    []core.Stack
	observers core.MultiObserver

	tables []*linkTable         // per-receiver link state, built at New
	inbox  []chan core.Envelope // per-receiver fan-in delivery channel

	fault     *core.FaultPlan
	injs      []*core.Injector // per-receiver, used only under that process's mutex
	faultUnit time.Duration
	epoch     time.Time // set by Start, before the goroutines launch

	procMu []sync.Mutex // one per process: atomic guarded actions

	step     atomic.Int64
	dropped  atomic.Int64
	started  atomic.Bool
	launched atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New assembles an engine from one stack per process.
func New(stacks []core.Stack, opts ...Option) *Engine {
	if len(stacks) < 2 {
		panic(fmt.Sprintf("runtime: need at least 2 processes, got %d", len(stacks)))
	}
	e := &Engine{
		n:        len(stacks),
		capacity: 1,
		tick:     50 * time.Microsecond,
		stacks:   stacks,
		procMu:   make([]sync.Mutex, len(stacks)),
		stop:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.capacity < 1 {
		panic(fmt.Sprintf("runtime: invalid capacity %d", e.capacity))
	}
	if e.loss < 0 || e.loss >= 1 {
		panic(fmt.Sprintf("runtime: loss rate %v outside [0,1)", e.loss))
	}
	if e.topo != nil && e.topo.N() != e.n {
		panic(fmt.Sprintf("runtime: topology over %d processes, %d stacks", e.topo.N(), e.n))
	}
	if e.fault != nil {
		if err := e.fault.Validate(); err != nil {
			panic("runtime: " + err.Error())
		}
		if err := e.fault.ValidateTopology(e.topo); err != nil {
			panic("runtime: " + err.Error())
		}
		e.faultUnit = e.fault.TickUnit()
		e.injs = make([]*core.Injector, e.n)
		for p := range e.injs {
			e.injs[p] = core.NewInjector(e.fault, rng.New(rng.Mix(e.fault.Seed, runtimeFaultSalt, uint64(p))))
		}
	}
	e.tables = make([]*linkTable, e.n)
	e.inbox = make([]chan core.Envelope, e.n)
	for i, s := range stacks {
		t := &linkTable{instIdx: make(map[string]int, len(s))}
		for _, mach := range s {
			id := mach.Instance()
			if _, dup := t.instIdx[id]; dup {
				panic("runtime: duplicate machine instance " + id)
			}
			t.instIdx[id] = len(t.instances)
			t.instances = append(t.instances, id)
			t.machines = append(t.machines, mach)
		}
		// Compact senders: every process on the complete graph, only the
		// neighbours under a topology. Ascending neighbour order keeps the
		// dense rows deterministic.
		t.senderIdx = make([]int, e.n)
		senders := 0
		if e.topo == nil {
			for p := range t.senderIdx {
				t.senderIdx[p] = p
			}
			senders = e.n
		} else {
			for p := range t.senderIdx {
				t.senderIdx[p] = -1
			}
			for _, q := range e.topo.Neighbors(core.ProcID(i)) {
				t.senderIdx[q] = senders
				senders++
			}
		}
		t.inflight = make([]atomic.Int32, senders*len(t.instances))
		e.tables[i] = t
		// Sized to the total in-flight bound across all of this
		// receiver's links, so a send that passed the capacity check can
		// never block on the channel. An isolated process (degree 0) can
		// receive nothing; give its channel a slot anyway so the type
		// stays uniform.
		buf := senders * len(t.instances) * e.capacity
		if buf < 1 {
			buf = 1
		}
		e.inbox[i] = make(chan core.Envelope, buf)
	}
	return e
}

// Topology returns the installed communication graph, or nil for the
// default complete graph.
func (e *Engine) Topology() *core.Topology { return e.topo }

// env implements core.Env for one process. It must only be used while the
// process mutex is held (the engine and Do guarantee that).
type env struct {
	e    *Engine
	self core.ProcID
}

func (v env) Self() core.ProcID { return v.self }
func (v env) N() int            { return v.e.n }

func (v env) Send(to core.ProcID, m core.Message) {
	e := v.e
	t := e.tables[to]
	row := t.senderIdx[v.self]
	if row < 0 {
		// Not a neighbour under the topology: no channel exists, the send
		// vanishes at the sender.
		e.dropped.Add(1)
		e.emit(core.Event{Kind: core.EvSendLost, Proc: v.self, Peer: to, Instance: m.Instance, Msg: m, Note: "no edge"})
		return
	}
	idx, ok := t.instIdx[m.Instance]
	if !ok {
		// The destination runs no machine for this instance, so the
		// message could never be delivered: a send into a zero-capacity
		// channel, lost immediately.
		e.dropped.Add(1)
		e.emit(core.Event{Kind: core.EvSendLost, Proc: v.self, Peer: to, Instance: m.Instance, Msg: m})
		return
	}
	slot := row*len(t.instances) + idx
	ctr := &t.inflight[slot]
	if in := ctr.Add(1); in > int32(e.capacity) {
		// Link full: the message is lost, per the model.
		ctr.Add(-1)
		e.dropped.Add(1)
		e.emit(core.Event{Kind: core.EvSendLost, Proc: v.self, Peer: to, Instance: m.Instance, Msg: m})
		return
	}
	e.inbox[to] <- core.Envelope{From: v.self, Link: int32(slot), Msg: m}
	e.emit(core.Event{Kind: core.EvSend, Proc: v.self, Peer: to, Instance: m.Instance, Msg: m})
}

func (v env) Emit(ev core.Event) {
	ev.Proc = v.self
	v.e.emit(ev)
}

func (e *Engine) emit(ev core.Event) {
	ev.Step = int(e.step.Add(1))
	if len(e.observers) > 0 {
		e.observers.OnEvent(ev)
	}
}

// Start launches the process goroutines. It may be called once; a second
// call panics. Safe to race with Stop.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		panic("runtime: Start called twice")
	}
	e.epoch = time.Now() // fault-schedule tick zero
	e.wg.Add(e.n)
	e.launched.Store(true)
	for p := 0; p < e.n; p++ {
		go e.run(core.ProcID(p))
	}
}

// run is the main loop of one process: block on the fan-in channel (a
// delivery) or the step timer (internal actions), forever.
func (e *Engine) run(p core.ProcID) {
	defer e.wg.Done()
	r := rng.New(uint64(p) + 0x9E3779B9)
	t := e.tables[p]
	in := e.inbox[p]
	// Deliver at most one full inbox per lock hold, so a continuous
	// message storm cannot starve the step timer (weak fairness).
	batch := cap(in)
	ticker := time.NewTicker(e.tick)
	defer ticker.Stop()
	ev := env{e: e, self: p}
	for {
		select {
		case <-e.stop:
			return
		case first := <-in:
			e.procMu[p].Lock()
			e.deliver(ev, t, first, r)
		drain:
			for k := 1; k < batch; k++ {
				select {
				case next := <-in:
					e.deliver(ev, t, next, r)
				default:
					break drain
				}
			}
			e.procMu[p].Unlock()
		case <-ticker.C:
			e.procMu[p].Lock()
			if e.injs != nil {
				now := e.faultNow()
				e.flushFaults(ev, t, p, now)
				if e.fault.Down(p, now) {
					// Crash window: no internal actions until restart.
					e.procMu[p].Unlock()
					continue
				}
			}
			for _, m := range e.stacks[p] {
				m.Step(ev)
			}
			e.procMu[p].Unlock()
		}
	}
}

// deliver removes one envelope from the link (freeing its capacity slot),
// applies injected loss and the fault plan, and runs the receive action.
// Caller holds the process mutex.
func (e *Engine) deliver(ev env, t *linkTable, in core.Envelope, r *rng.Source) {
	t.inflight[in.Link].Add(-1)
	idx := int(in.Link) % len(t.instances)
	inst := t.instances[idx]
	if e.loss > 0 && r.Float64() < e.loss {
		e.dropped.Add(1)
		e.emit(core.Event{Kind: core.EvLose, Proc: ev.self, Peer: in.From, Instance: inst, Msg: in.Msg})
		return
	}
	if e.injs != nil {
		out, fate := e.injs[ev.self].Filter(in.From, ev.self, in.Msg, e.faultNow())
		if fate == core.FateDrop {
			// Injected drops are counted in FaultStats only — Dropped()
			// keeps measuring the engine's native losses (full links,
			// WithLossRate), matching the sim/udp counter contract.
			e.emit(core.Event{Kind: core.EvLose, Proc: ev.self, Peer: in.From, Instance: inst, Msg: in.Msg})
		}
		// Every surviving copy — the message, duplicates, and released
		// holdbacks — shares the envelope's link, hence its machine.
		for _, m := range out {
			e.emit(core.Event{Kind: core.EvDeliver, Proc: ev.self, Peer: in.From, Instance: inst, Msg: m})
			t.machines[idx].Deliver(ev, in.From, m)
		}
		return
	}
	e.emit(core.Event{Kind: core.EvDeliver, Proc: ev.self, Peer: in.From, Instance: inst, Msg: in.Msg})
	t.machines[idx].Deliver(ev, in.From, in.Msg)
}

// faultNow returns the fault-schedule tick: wall time since Start in
// plan.Unit ticks.
func (e *Engine) faultNow() int64 {
	return int64(time.Since(e.epoch) / e.faultUnit)
}

// flushFaults delivers every expired held-back message of receiver p.
// Caller holds p's mutex.
func (e *Engine) flushFaults(ev env, t *linkTable, p core.ProcID, now int64) {
	for _, rel := range e.injs[p].Flush(now) {
		idx, ok := t.instIdx[rel.Msg.Instance]
		if !ok {
			continue // unreachable: the message was admitted on this table
		}
		e.emit(core.Event{Kind: core.EvDeliver, Proc: p, Peer: rel.From, Instance: rel.Msg.Instance, Msg: rel.Msg})
		t.machines[idx].Deliver(ev, rel.From, rel.Msg)
	}
}

// FaultStats returns the engine-wide injected-fault counters, aggregated
// over the per-receiver injectors. Zero when no plan is installed. Safe to
// call while the engine runs.
func (e *Engine) FaultStats() core.FaultStats {
	var agg core.FaultStats
	for _, inj := range e.injs {
		agg.Add(inj.Stats())
	}
	return agg
}

// Do runs f under process p's action mutex, with p's environment. Use it
// for external interactions (submitting requests, reading protocol state)
// while the engine runs.
func (e *Engine) Do(p core.ProcID, f func(env core.Env)) {
	e.procMu[p].Lock()
	defer e.procMu[p].Unlock()
	f(env{e: e, self: p})
}

// Dropped returns the number of messages lost so far to the engine's
// native mechanisms: full links, unroutable instances, and WithLossRate.
// Fault-plan drops are counted in FaultStats only, so injected adversity
// never contaminates the loss measurement.
func (e *Engine) Dropped() int64 { return e.dropped.Load() }

// Stop terminates all process goroutines and waits for them to exit. It
// is idempotent and safe to call from multiple goroutines concurrently
// (and concurrently with Start: the goroutines observe the closed stop
// channel and exit immediately).
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	if e.launched.Load() {
		e.wg.Wait()
	}
}
