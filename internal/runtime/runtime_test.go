package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/idl"
	"github.com/snapstab/snapstab/internal/mutex"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/spec"
)

// waitFor polls cond (under no lock; use engine.Do inside cond if state
// access is needed) until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

func pifStacks(n int) ([]core.Stack, []*pif.PIF) {
	stacks := make([]core.Stack, n)
	machines := make([]*pif.PIF, n)
	for i := 0; i < n; i++ {
		id := core.ProcID(i)
		machines[i] = pif.New("pif", id, n, pif.Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return core.Payload{Tag: "ack", Num: b.Num*100 + int64(id)}
			},
		})
		stacks[i] = core.Stack{machines[i]}
	}
	return stacks, machines
}

func TestPIFOnConcurrentSubstrate(t *testing.T) {
	t.Parallel()
	stacks, machines := pifStacks(4)
	e := New(stacks)
	e.Start()
	defer e.Stop()

	token := core.Payload{Tag: "m", Num: 9}
	e.Do(0, func(env core.Env) {
		if !machines[0].Invoke(env, token) {
			t.Error("Invoke rejected")
		}
	})
	done := waitFor(t, 10*time.Second, func() bool {
		var d bool
		e.Do(0, func(core.Env) { d = machines[0].Done() && machines[0].BMes.Equal(token) })
		return d
	})
	if !done {
		t.Fatal("broadcast did not complete on the concurrent substrate")
	}
}

func TestPIFUnderInjectedLoss(t *testing.T) {
	t.Parallel()
	stacks, machines := pifStacks(3)
	e := New(stacks, WithLossRate(0.3))
	e.Start()
	defer e.Stop()
	e.Do(0, func(env core.Env) { machines[0].Invoke(env, core.Payload{Tag: "m"}) })
	if !waitFor(t, 20*time.Second, func() bool {
		var d bool
		e.Do(0, func(core.Env) { d = machines[0].Done() })
		return d
	}) {
		t.Fatal("broadcast did not survive injected loss")
	}
	if e.Dropped() == 0 {
		t.Fatal("no messages dropped; loss injection inert")
	}
}

func TestPIFFromCorruptedStateConcurrent(t *testing.T) {
	t.Parallel()
	stacks, machines := pifStacks(3)
	r := rng.New(99)
	for _, m := range machines {
		m.Corrupt(r)
	}
	checker := &spec.PIFChecker{N: 3, Initiator: 0, Instance: "pif",
		ExpectFck: func(q core.ProcID, b core.Payload) core.Payload {
			return core.Payload{Tag: "ack", Num: b.Num*100 + int64(q)}
		}}
	guard := &lockedObserver{inner: checker}
	e := New(stacks, WithObserver(guard))
	e.Start()
	defer e.Stop()

	token := core.Payload{Tag: "fresh", Num: 5}
	invoked := waitFor(t, 10*time.Second, func() bool {
		var ok bool
		e.Do(0, func(env core.Env) {
			// Invoke emits an event through the observer, so the guard
			// must not be held around it; the process mutex (held by Do)
			// already keeps the start action from racing ahead of Arm.
			ok = machines[0].Invoke(env, token)
			if ok {
				guard.mu.Lock()
				checker.Arm(token)
				guard.mu.Unlock()
			}
		})
		return ok
	})
	if !invoked {
		t.Fatal("corrupted computation never terminated to accept the request")
	}
	if !waitFor(t, 20*time.Second, func() bool {
		guard.mu.Lock()
		defer guard.mu.Unlock()
		return checker.Decided()
	}) {
		t.Fatal("requested computation did not decide")
	}
	guard.mu.Lock()
	defer guard.mu.Unlock()
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("specification violated on concurrent substrate: %v", v)
	}
}

// lockedObserver serializes observer callbacks from multiple goroutines.
type lockedObserver struct {
	mu    sync.Mutex
	inner core.Observer
}

func (l *lockedObserver) OnEvent(e core.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnEvent(e)
}

func TestIDLOnConcurrentSubstrate(t *testing.T) {
	t.Parallel()
	ids := []int64{42, 7, 19}
	stacks := make([]core.Stack, 3)
	machines := make([]*idl.IDL, 3)
	for i := range stacks {
		machines[i] = idl.New("idl", core.ProcID(i), 3, ids[i])
		stacks[i] = machines[i].Machines()
	}
	e := New(stacks)
	e.Start()
	defer e.Stop()
	e.Do(2, func(env core.Env) { machines[2].Invoke(env) })
	if !waitFor(t, 10*time.Second, func() bool {
		var d bool
		e.Do(2, func(core.Env) { d = machines[2].Done() })
		return d
	}) {
		t.Fatal("IDs-Learning did not complete")
	}
	e.Do(2, func(core.Env) {
		if machines[2].MinID != 7 || machines[2].IDTab[0] != 42 || machines[2].IDTab[1] != 7 {
			t.Errorf("learned MinID=%d IDTab=%v", machines[2].MinID, machines[2].IDTab)
		}
	})
}

func TestMutexOnConcurrentSubstrate(t *testing.T) {
	t.Parallel()
	const n = 3
	stacks := make([]core.Stack, n)
	machines := make([]*mutex.ME, n)
	for i := range stacks {
		machines[i] = mutex.New("me", core.ProcID(i), n, int64(i+1))
		stacks[i] = machines[i].Machines()
	}
	checker := spec.NewMutexChecker()
	guard := &lockedObserver{inner: checker}
	e := New(stacks, WithObserver(guard))
	e.Start()
	defer e.Stop()

	for i := 0; i < n; i++ {
		i := core.ProcID(i)
		e.Do(i, func(env core.Env) { machines[i].Invoke(env) })
	}
	if !waitFor(t, 60*time.Second, func() bool {
		served := true
		for i := 0; i < n; i++ {
			i := core.ProcID(i)
			e.Do(i, func(core.Env) {
				if machines[i].Requested() {
					served = false
				}
			})
		}
		return served
	}) {
		t.Fatal("not every request was served on the concurrent substrate")
	}
	guard.mu.Lock()
	defer guard.mu.Unlock()
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("mutual exclusion violated: %v", v)
	}
	if checker.Entries() != n {
		t.Fatalf("served entries = %d, want %d", checker.Entries(), n)
	}
}

func TestStopIsIdempotentAndTerminates(t *testing.T) {
	t.Parallel()
	stacks, _ := pifStacks(2)
	e := New(stacks)
	e.Start()
	e.Stop()
	e.Stop() // second call must not panic or hang
}

// TestStartStopConcurrent pins the liveness and memory safety of the
// Start/Stop paths under -race: Start racing many concurrent Stops must
// neither panic, nor leak goroutines, nor trip the race detector (the
// old plain-bool `started` and the drained-select Stop did).
func TestStartStopConcurrent(t *testing.T) {
	t.Parallel()
	for i := 0; i < 20; i++ {
		stacks, _ := pifStacks(3)
		e := New(stacks)
		var wg sync.WaitGroup
		wg.Add(5)
		go func() {
			defer wg.Done()
			e.Start()
		}()
		for s := 0; s < 4; s++ {
			go func() {
				defer wg.Done()
				e.Stop()
			}()
		}
		wg.Wait()
		e.Stop() // final Stop must wait out every goroutine
	}
}

// TestStartTwicePanics pins the documented single-Start contract.
func TestStartTwicePanics(t *testing.T) {
	t.Parallel()
	stacks, _ := pifStacks(2)
	e := New(stacks)
	e.Start()
	defer e.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	e.Start()
}

// TestCapacityDoesNotBacklog pins the drain-to-empty behavior: with
// capacity c > 1, a burst of c messages on one link is delivered in full
// (the old one-message-per-link-per-tick drain backlogged them).
func TestCapacityDoesNotBacklog(t *testing.T) {
	t.Parallel()
	const c = 8
	var delivered atomic.Int64
	stacks := []core.Stack{
		{&flooder{inst: "flood", self: 0, n: 2, delivered: &delivered}},
		{&countSink{inst: "flood", delivered: &delivered}},
	}
	e := New(stacks, WithCapacity(c), WithTick(time.Hour)) // no step-driven traffic
	e.Start()
	defer e.Stop()
	e.Do(0, func(env core.Env) {
		for i := 0; i < c; i++ {
			env.Send(1, core.Message{Instance: "flood", Kind: "burst"})
		}
	})
	if !waitFor(t, 10*time.Second, func() bool { return delivered.Load() >= c }) {
		t.Fatalf("delivered %d of %d burst messages", delivered.Load(), c)
	}
	if e.Dropped() != 0 {
		t.Fatalf("%d messages dropped inside a burst within capacity", e.Dropped())
	}
}

// countSink counts deliveries and never sends.
type countSink struct {
	inst      string
	delivered *atomic.Int64
}

func (s *countSink) Instance() string   { return s.inst }
func (s *countSink) Step(core.Env) bool { return false }
func (s *countSink) Deliver(_ core.Env, _ core.ProcID, _ core.Message) {
	s.delivered.Add(1)
}

func TestConstructorValidation(t *testing.T) {
	t.Parallel()
	stacks, _ := pifStacks(2)
	for name, f := range map[string]func(){
		"one process": func() { New(stacks[:1]) },
		"capacity 0":  func() { New(stacks, WithCapacity(0)) },
		"loss 1":      func() { New(stacks, WithLossRate(1)) },
	} {
		name, f := name, f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
