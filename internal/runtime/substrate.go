// Substrate-mode driving: Engine implements core.Substrate. Do already
// gives external code atomic actions under the per-process mutex; Await
// adds condition waiting by polling the condition at the engine's tick
// cadence (deliveries are event-driven, so the tick bounds only how
// quickly an external observer notices a state change, not how quickly
// the protocols progress).
package runtime

import (
	"context"
	"errors"
	"time"

	"github.com/snapstab/snapstab/internal/core"
)

// ErrStopped is returned by Await when the engine was stopped before the
// condition held.
var ErrStopped = errors.New("runtime: engine stopped")

var _ core.Substrate = (*Engine)(nil)

// N returns the number of processes.
func (e *Engine) N() int { return e.n }

// Await evaluates cond under process p's mutex at the tick cadence until
// it holds; see core.Substrate for the contract. It returns nil,
// ctx.Err(), or ErrStopped.
func (e *Engine) Await(ctx context.Context, p core.ProcID, cond func(env core.Env) bool) error {
	poll := e.tick
	if poll <= 0 {
		poll = 50 * time.Microsecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		ok := false
		e.Do(p, func(env core.Env) { ok = cond(env) })
		if ok {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-e.stop:
			return ErrStopped
		case <-ticker.C:
		}
	}
}

// Close stops the engine; idempotent. Part of the core.Substrate
// interface.
func (e *Engine) Close() error {
	e.Stop()
	return nil
}

// TransportStats implements core.TransportStatser with one zero-valued
// entry per process: the runtime delivers through in-memory channels, so
// there is no transport to count. Callers that range over per-node
// transport counters work uniformly across substrates.
func (e *Engine) TransportStats() []core.TransportStats {
	return make([]core.TransportStats, e.N())
}
