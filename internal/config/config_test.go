package config

import (
	"testing"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
)

func pifStacks(n int) ([]core.Stack, []*pif.PIF) {
	stacks := make([]core.Stack, n)
	machines := make([]*pif.PIF, n)
	for i := 0; i < n; i++ {
		machines[i] = pif.New("pif", core.ProcID(i), n, pif.Callbacks{})
		stacks[i] = core.Stack{machines[i]}
	}
	return stacks, machines
}

func TestCorruptMachinesChangesState(t *testing.T) {
	t.Parallel()
	stacks, machines := pifStacks(3)
	net := sim.New(stacks)
	before := make([]string, 3)
	for i, m := range machines {
		before[i] = string(m.AppendState(nil))
	}
	CorruptMachines(net, rng.New(7))
	changed := 0
	for i, m := range machines {
		if string(m.AppendState(nil)) != before[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("corruption changed no machine state")
	}
}

func TestFillChannelsRespectsCapacity(t *testing.T) {
	t.Parallel()
	for _, capacity := range []int{1, 2, 4} {
		stacks, machines := pifStacks(3)
		net := sim.New(stacks, sim.WithCapacity(capacity))
		FillChannels(net, rng.New(3), PIFSpecs("pif", machines[0].FlagTop()), Options{FillProbability: 0.99})
		for _, k := range net.Links() {
			if got := net.Link(k).Len(); got > capacity {
				t.Fatalf("capacity %d: link %v holds %d messages", capacity, k, got)
			}
		}
		if net.InTransit() == 0 {
			t.Fatal("high fill probability produced no garbage at all")
		}
	}
}

func TestFillChannelsCoversAllPairs(t *testing.T) {
	t.Parallel()
	stacks, machines := pifStacks(4)
	net := sim.New(stacks)
	FillChannels(net, rng.New(5), PIFSpecs("pif", machines[0].FlagTop()), Options{FillProbability: 0.999})
	want := 4 * 3 // directed pairs
	if got := len(net.Links()); got != want {
		t.Fatalf("links created = %d, want %d", got, want)
	}
}

func TestFillChannelsUnboundedUsesMax(t *testing.T) {
	t.Parallel()
	stacks, machines := pifStacks(2)
	net := sim.New(stacks, sim.WithUnbounded())
	FillChannels(net, rng.New(9), PIFSpecs("pif", machines[0].FlagTop()),
		Options{FillProbability: 0.999, MaxUnboundedGarbage: 5})
	for _, k := range net.Links() {
		if got := net.Link(k).Len(); got > 5 {
			t.Fatalf("link %v holds %d messages, above MaxUnboundedGarbage", k, got)
		}
	}
}

func TestCorruptIsReproducible(t *testing.T) {
	t.Parallel()
	run := func() string {
		stacks, machines := pifStacks(3)
		net := sim.New(stacks)
		Corrupt(net, rng.New(42), PIFSpecs("pif", machines[0].FlagTop()), Options{})
		return net.ConfigHash()
	}
	if run() != run() {
		t.Fatal("same corruption seed produced different configurations")
	}
}

func TestCorruptedRunStillSatisfiesSpec(t *testing.T) {
	t.Parallel()
	// End-to-end: corrupt everything, then a requested broadcast still
	// completes (glue test for the corruptor + protocol).
	stacks, machines := pifStacks(3)
	net := sim.New(stacks, sim.WithSeed(11))
	Corrupt(net, rng.New(13), PIFSpecs("pif", machines[0].FlagTop()), Options{})
	requested := false
	err := net.RunUntil(func() bool {
		if !requested {
			requested = machines[0].Invoke(net.Env(0), core.Payload{Tag: "fresh"})
			return false
		}
		return machines[0].Done() && machines[0].BMes.Tag == "fresh"
	}, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	t.Parallel()
	o := Options{}.withDefaults()
	if o.FillProbability != 0.5 || o.MaxUnboundedGarbage != 3 {
		t.Fatalf("defaults = %+v", o)
	}
	o = Options{FillProbability: 0.9, MaxUnboundedGarbage: 7}.withDefaults()
	if o.FillProbability != 0.9 || o.MaxUnboundedGarbage != 7 {
		t.Fatalf("explicit values overridden: %+v", o)
	}
}
