// Package config constructs arbitrary initial configurations, realizing
// the model's I = C: every execution of a snap-stabilizing protocol may
// begin with every process variable and every channel holding arbitrary
// values from their domains (§2).
//
// Corruption has two parts:
//
//   - machine state: every core.Corruptible machine in every stack
//     randomizes its own variables over their domains;
//   - channel contents: every logical channel is filled with up to
//     capacity random well-formed protocol messages (garbage), the
//     situation Figure 1 and Lemma 4 reason about.
//
// All randomness comes from a caller-provided generator, so corrupted
// configurations replay from a seed.
package config

import (
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
)

// InstanceSpec describes the wire domain of one protocol instance so the
// corruptor can synthesize well-formed garbage for its channels.
type InstanceSpec struct {
	// Instance is the protocol instance ID carried by the messages.
	Instance string
	// FlagTop is the top of the handshake-flag domain (4 for the paper's
	// capacity-1 PIF).
	FlagTop uint8
	// Generator, when non-nil, synthesizes this instance's garbage
	// messages instead of the default PIF-shaped draw. Non-PIF protocols
	// (the forwarding layer) install one so their channels receive garbage
	// their receive actions actually parse. It must draw all randomness
	// from r, so corrupted configurations still replay from the seed.
	Generator func(r *rng.Source) core.Message
}

// Options tunes corruption.
type Options struct {
	// FillProbability is the chance that each channel slot receives a
	// garbage message (default 0.5 when zero).
	FillProbability float64
	// MaxUnboundedGarbage bounds the garbage per channel in unbounded
	// networks, where "up to capacity" is meaningless (default 3 when
	// zero). Theorem 1's adversary preloads its own, longer sequences.
	MaxUnboundedGarbage int
	// GarbageBlobLen, when positive, gives every garbage payload an
	// opaque body of up to that many random bytes — the arbitrary
	// initial configuration of a typed (blob-carrying) deployment. The
	// default 0 draws no extra randomness, so legacy corruption streams
	// replay byte-identically.
	GarbageBlobLen int
}

func (o Options) withDefaults() Options {
	if o.FillProbability == 0 {
		o.FillProbability = 0.5
	}
	if o.MaxUnboundedGarbage == 0 {
		o.MaxUnboundedGarbage = 3
	}
	return o
}

// CorruptMachines randomizes the state of every corruptible machine in the
// network.
func CorruptMachines(net *sim.Network, r *rng.Source) {
	for p := 0; p < net.N(); p++ {
		net.Stack(core.ProcID(p)).Corrupt(r)
	}
}

// FillChannels loads random garbage messages into every directed channel
// of every listed instance. Each slot of a bounded channel is filled with
// probability opts.FillProbability; unbounded channels receive up to
// opts.MaxUnboundedGarbage messages. Only channels that exist under the
// network's topology are filled — non-edges have no channel to corrupt —
// and skipped pairs draw no randomness, so a complete-graph fill is
// byte-identical with or without an explicit topology.
func FillChannels(net *sim.Network, r *rng.Source, specs []InstanceSpec, opts Options) {
	opts = opts.withDefaults()
	topo := net.Topology()
	for _, s := range specs {
		for from := 0; from < net.N(); from++ {
			for to := 0; to < net.N(); to++ {
				if from == to {
					continue
				}
				if topo != nil && !topo.HasEdge(core.ProcID(from), core.ProcID(to)) {
					continue
				}
				slots := net.Capacity()
				if slots < 0 {
					slots = opts.MaxUnboundedGarbage
				}
				var garbage []core.Message
				for i := 0; i < slots; i++ {
					if r.Float64() < opts.FillProbability {
						var m core.Message
						if s.Generator != nil {
							m = s.Generator(r)
						} else {
							m = pif.GarbageMessageBlob(r, s.Instance, s.FlagTop, opts.GarbageBlobLen)
						}
						garbage = append(garbage, m)
					}
				}
				k := sim.LinkKey{From: core.ProcID(from), To: core.ProcID(to), Instance: s.Instance}
				if err := net.Link(k).Preload(garbage); err != nil {
					// Unreachable: garbage never exceeds the capacity we
					// just read. Panic loudly rather than corrupt half a
					// configuration.
					panic("config: " + err.Error())
				}
			}
		}
	}
}

// Corrupt applies CorruptMachines and FillChannels: a full arbitrary
// initial configuration.
func Corrupt(net *sim.Network, r *rng.Source, specs []InstanceSpec, opts Options) {
	CorruptMachines(net, r)
	FillChannels(net, r, specs, opts)
}

// PIFSpecs returns the instance specs of a bare PIF deployment.
func PIFSpecs(instance string, flagTop uint8) []InstanceSpec {
	return []InstanceSpec{{Instance: instance, FlagTop: flagTop}}
}
