package stat

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-1.5811) > 0.001 {
		t.Fatalf("std = %v, want ~1.5811", s.Std)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %v, want 3", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	t.Parallel()
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.P99 != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestPercentileBounds(t *testing.T) {
	t.Parallel()
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s := Summarize(raw)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntsConversion(t *testing.T) {
	t.Parallel()
	xs := Ints([]int{1, 2})
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 2 {
		t.Fatalf("Ints = %v", xs)
	}
}

func TestTableRender(t *testing.T) {
	t.Parallel()
	tab := Table{ID: "E0", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 5)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"[E0] demo", "a", "bb", "1", "2", "note: hello 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	t.Parallel()
	tab := Table{ID: "E1", Title: "demo", Columns: []string{"x", "y"}}
	tab.AddRow("a", "b")
	var sb strings.Builder
	tab.Markdown(&sb)
	out := sb.String()
	if !strings.Contains(out, "| x | y |") || !strings.Contains(out, "| a | b |") {
		t.Fatalf("markdown rendering wrong:\n%s", out)
	}
}

func TestAddRowPanicsOnMismatch(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	tab := Table{Columns: []string{"a"}}
	tab.AddRow("1", "2")
}

func TestFormatHelpers(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		F(3):      "3",
		F(3.25):   "3.2",
		F(0.1234): "0.123",
		F(1234.5): "1234",
		I(-2):     "-2",
		B(true):   "yes",
		B(false):  "no",
		Pct(1, 4): "25%",
		Pct(1, 0): "n/a",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("format: got %q, want %q", got, want)
		}
	}
}

func TestSamplesMergePreservesOrder(t *testing.T) {
	t.Parallel()
	var a, b, merged Samples
	a.Add(1, 2)
	b.AddInt(3)
	merged.Merge(a, b)
	if merged.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", merged.Len())
	}
	want := []float64{1, 2, 3}
	for i, v := range merged.Values() {
		if v != want[i] {
			t.Fatalf("Values()[%d] = %v, want %v", i, v, want[i])
		}
	}
	// Merging per-trial parts in index order must equal sequential
	// accumulation, whatever grouping the workers produced.
	var seq Samples
	seq.Add(1, 2, 3)
	if merged.Summary() != seq.Summary() {
		t.Fatalf("merged summary %+v != sequential summary %+v", merged.Summary(), seq.Summary())
	}
}

func TestSizeLabel(t *testing.T) {
	t.Parallel()
	cases := map[int]string{
		0:       "0B",
		256:     "256B",
		1024:    "1KiB",
		1536:    "1536B", // not an exact KiB multiple: must not collide with 1KiB
		4096:    "4KiB",
		1 << 20: "1MiB",
		3 << 20: "3MiB",
	}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}
