// Package stat provides the small statistics and table-rendering toolkit
// used by the experiment harness: summaries of sample sets and fixed-width
// tables matching the layout of EXPERIMENTS.md.
package stat

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Summary describes a sample set.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary. An empty input yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile returns the p-quantile of sorted data by nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Ints converts integer samples for Summarize.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Samples accumulates observations across trials. The parallel experiment
// runner collects one Samples (or result struct) per trial and folds them
// in trial order, so merged statistics are independent of worker count and
// completion order.
type Samples struct {
	xs []float64
}

// Add appends observations.
func (s *Samples) Add(xs ...float64) { s.xs = append(s.xs, xs...) }

// AddInt appends one integer observation.
func (s *Samples) AddInt(x int) { s.xs = append(s.xs, float64(x)) }

// Merge appends every observation of parts, preserving order: merging
// per-trial Samples in trial index order is deterministic regardless of
// the order the trials finished in.
func (s *Samples) Merge(parts ...Samples) {
	for _, p := range parts {
		s.xs = append(s.xs, p.xs...)
	}
}

// Len returns the number of observations.
func (s *Samples) Len() int { return len(s.xs) }

// Values returns the accumulated observations (not a copy).
func (s *Samples) Values() []float64 { return s.xs }

// Summary summarizes the accumulated observations.
func (s *Samples) Summary() Summary { return Summarize(s.xs) }

// Table is a titled grid of cells with optional footnotes.
type Table struct {
	// ID ties the table to an experiment ("E3").
	ID string
	// Title describes the table.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows hold the data cells.
	Rows [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a row; it panics if the cell count does not match the
// header, which would silently misalign the rendering.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("stat: row has %d cells, table %q has %d columns", len(cells), t.Title, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	if t.ID != "" {
		fmt.Fprintf(w, "[%s] %s\n", t.ID, t.Title)
	} else {
		fmt.Fprintln(w, t.Title)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	sep := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		sep[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown writes the table as a GitHub-flavoured markdown table (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown(w io.Writer) {
	if t.ID != "" {
		fmt.Fprintf(w, "**[%s] %s**\n\n", t.ID, t.Title)
	} else {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*note: %s*\n", n)
	}
	fmt.Fprintln(w)
}

// Format helpers for table cells.

// F formats a float compactly.
func F(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// B formats a yes/no cell.
func B(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

// Pct formats a ratio as a percentage.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(num)/float64(den))
}

// SizeLabel renders a byte count for table rows and benchmark
// sub-names: "0B", "256B", "4KiB", "2MiB". Only exact unit multiples
// collapse to a larger unit — 1536 stays "1536B" — so distinct sizes
// can never collide into one label (benchmark names pair base and head
// runs textually in the benchgate).
func SizeLabel(bytes int) string {
	switch {
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", bytes>>20)
	case bytes >= 1024 && bytes%1024 == 0:
		return fmt.Sprintf("%dKiB", bytes>>10)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}
