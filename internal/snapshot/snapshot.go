// Package snapshot implements snap-stabilizing global state collection,
// the second application the paper names for PIF ("Reset, Snapshot,
// Leader Election, and Termination Detection", §4.1).
//
// A collection requested at process p broadcasts a probe and gathers, in
// the feedback phase, the application state of every process. By
// Theorem 2 the gathered values are exactly the states the processes
// reported for THIS probe — never stale channel garbage — regardless of
// the initial configuration.
//
// What this gives is an *instantaneous-per-process* snapshot (each value
// was read atomically at its process while the probe computation ran),
// not a Chandy–Lamport consistent cut with channel states; the paper's
// PIF-based snapshot is of this kind, and it is exactly what IDs-Learning
// instantiates with "state = identifier". The package generalizes it to
// arbitrary application state.
package snapshot

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
)

// TagProbe is the broadcast payload tag; Num carries a probe nonce.
const TagProbe = "SNAP"

// Provider reads one process's application state, atomically within the
// receive action. The returned payload is shipped as feedback.
type Provider func() core.Payload

// Snapshot is one process's instance of the collection protocol.
type Snapshot struct {
	inst string
	self core.ProcID
	n    int

	// Request drives collections (input/output variable).
	Request core.ReqState
	// Views[q] is the state collected from q during the last computation
	// (entry self is filled at the start action). Output variable.
	Views []core.Payload
	// Nonce tags the probes of this process's computations.
	Nonce int64

	// Provide reads the local application state; nil yields zero
	// payloads.
	Provide Provider

	// PIF is the child broadcast machine (instance inst+"/pif").
	PIF *pif.PIF
}

var (
	_ core.Machine     = (*Snapshot)(nil)
	_ core.Snapshotter = (*Snapshot)(nil)
	_ core.Corruptible = (*Snapshot)(nil)
)

// New returns a snapshot machine for process self.
func New(inst string, self core.ProcID, n int, pifOpts ...pif.Option) *Snapshot {
	if n < 2 {
		panic(fmt.Sprintf("snapshot: need n >= 2, got %d", n))
	}
	s := &Snapshot{
		inst:    inst,
		self:    self,
		n:       n,
		Request: core.Done,
		Views:   make([]core.Payload, n),
	}
	s.PIF = pif.New(inst+"/pif", self, n, pif.Callbacks{
		OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
			if b.Tag != TagProbe {
				return core.Payload{} // garbage probe: neutral reply
			}
			if s.Provide == nil {
				return core.Payload{}
			}
			return s.Provide()
		},
		OnFeedback: func(_ core.Env, from core.ProcID, f core.Payload) {
			s.Views[from] = f
		},
	}, pifOpts...)
	return s
}

// Machines returns the stack fragment in text order.
func (s *Snapshot) Machines() core.Stack { return core.Stack{s, s.PIF} }

// Instance returns the protocol instance ID.
func (s *Snapshot) Instance() string { return s.inst }

// Invoke requests a collection; rejected while one is pending or running.
func (s *Snapshot) Invoke(env core.Env) bool {
	if s.Request != core.Done {
		return false
	}
	s.Request = core.Wait
	env.Emit(core.Event{Kind: core.EvRequest, Peer: -1, Instance: s.inst})
	return true
}

// Done reports whether no collection is requested or in progress.
func (s *Snapshot) Done() bool { return s.Request == core.Done }

// Step runs the internal actions in text order.
func (s *Snapshot) Step(env core.Env) bool {
	fired := false
	if s.Request == core.Wait {
		s.Request = core.In
		s.Nonce++
		if s.Provide != nil {
			s.Views[s.self] = s.Provide()
		} else {
			s.Views[s.self] = core.Payload{}
		}
		s.PIF.Reset(core.Payload{Tag: TagProbe, Num: s.Nonce})
		env.Emit(core.Event{Kind: core.EvStart, Peer: -1, Instance: s.inst})
		fired = true
	}
	if s.Request == core.In && s.PIF.Done() {
		s.Request = core.Done
		env.Emit(core.Event{Kind: core.EvDecide, Peer: -1, Instance: s.inst})
		fired = true
	}
	return fired
}

// Deliver consumes initial-configuration garbage addressed to the
// snapshot instance itself.
func (s *Snapshot) Deliver(core.Env, core.ProcID, core.Message) {}

// AppendState appends a canonical encoding of the machine state.
func (s *Snapshot) AppendState(dst []byte) []byte {
	dst = append(dst, 'V', byte(s.Request))
	for shift := 0; shift < 64; shift += 8 {
		dst = append(dst, byte(s.Nonce>>shift))
	}
	for q := 0; q < s.n; q++ {
		dst = core.AppendPayload(dst, s.Views[q])
	}
	return dst
}

// Corrupt overwrites every variable with random domain values.
func (s *Snapshot) Corrupt(r core.Rand) {
	s.Request = core.ReqState(r.Intn(core.NumReqStates))
	s.Nonce = int64(r.Intn(1 << 12))
	for q := 0; q < s.n; q++ {
		s.Views[q] = pif.GarbagePayload(r)
	}
}
