package snapshot

import (
	"testing"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
)

// build assembles n snapshot machines whose application state is a local
// counter (readable and bump-able by the tests).
func build(t *testing.T, n int, opts ...sim.Option) (*sim.Network, []*Snapshot, []int64) {
	t.Helper()
	counters := make([]int64, n)
	machines := make([]*Snapshot, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		i := i
		machines[i] = New("snap", core.ProcID(i), n)
		machines[i].Provide = func() core.Payload {
			return core.Payload{Tag: "counter", Num: counters[i]}
		}
		stacks[i] = machines[i].Machines()
	}
	return sim.New(stacks, opts...), machines, counters
}

func TestCleanCollection(t *testing.T) {
	t.Parallel()
	net, machines, counters := build(t, 4, sim.WithSeed(3))
	for i := range counters {
		counters[i] = int64(i * 11)
	}
	if !machines[0].Invoke(net.Env(0)) {
		t.Fatal("Invoke rejected")
	}
	if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		if got, want := machines[0].Views[q], (core.Payload{Tag: "counter", Num: int64(q * 11)}); !got.Equal(want) {
			t.Errorf("view of %d = %v, want %v", q, got, want)
		}
	}
}

func TestCollectionFromCorruptedConfiguration(t *testing.T) {
	t.Parallel()
	trials := 80
	if testing.Short() {
		trials = 12
	}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial + 1)
		net, machines, counters := build(t, 3, sim.WithSeed(seed), sim.WithLossRate(0.2))
		r := rng.New(rng.Mix(seed, 17))
		config.Corrupt(net, r, config.PIFSpecs("snap/pif", machines[0].PIF.FlagTop()), config.Options{})
		for i := range counters {
			counters[i] = int64(1000 + trial*10 + i)
		}
		requested := false
		err := net.RunUntil(func() bool {
			if !requested {
				requested = machines[2].Invoke(net.Env(2))
				return false
			}
			return machines[2].Done()
		}, 5_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 0; q < 3; q++ {
			want := core.Payload{Tag: "counter", Num: int64(1000 + trial*10 + q)}
			if got := machines[2].Views[q]; !got.Equal(want) {
				t.Fatalf("trial %d: view of %d = %v, want %v (stale garbage survived)", trial, q, got, want)
			}
		}
	}
}

func TestViewsReflectStateAtProbeTime(t *testing.T) {
	t.Parallel()
	// Values changed AFTER a process answered the probe must not appear:
	// re-collect and compare.
	net, machines, counters := build(t, 2, sim.WithSeed(7))
	counters[1] = 5
	machines[0].Invoke(net.Env(0))
	if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
		t.Fatal(err)
	}
	first := machines[0].Views[1]
	counters[1] = 99
	machines[0].Invoke(net.Env(0))
	if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
		t.Fatal(err)
	}
	second := machines[0].Views[1]
	if first.Num != 5 || second.Num != 99 {
		t.Fatalf("views = %v then %v, want 5 then 99", first, second)
	}
}

func TestGarbageProbeAnsweredNeutrally(t *testing.T) {
	t.Parallel()
	_, machines, counters := build(t, 2)
	counters[1] = 42
	reply := machines[1].PIF.Callbacks().OnBroadcast(nil, 0, core.Payload{Tag: "garbage"})
	if !reply.IsZero() {
		t.Fatalf("garbage probe answered with %v, want neutral", reply)
	}
}

func TestNilProviderSafe(t *testing.T) {
	t.Parallel()
	n := 2
	machines := make([]*Snapshot, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		machines[i] = New("snap", core.ProcID(i), n)
		stacks[i] = machines[i].Machines()
	}
	net := sim.New(stacks)
	machines[0].Invoke(net.Env(0))
	if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !machines[0].Views[1].IsZero() {
		t.Fatalf("nil provider produced %v", machines[0].Views[1])
	}
}

func TestInvokeRejectedWhileBusy(t *testing.T) {
	t.Parallel()
	net, machines, _ := build(t, 2)
	if !machines[0].Invoke(net.Env(0)) {
		t.Fatal("first Invoke rejected")
	}
	if machines[0].Invoke(net.Env(0)) {
		t.Fatal("second Invoke accepted while busy")
	}
}

func TestSnapshotEncodingDistinguishes(t *testing.T) {
	t.Parallel()
	a, b := New("snap", 0, 2), New("snap", 0, 2)
	if string(a.AppendState(nil)) != string(b.AppendState(nil)) {
		t.Fatal("identical machines encode differently")
	}
	b.Views[1] = core.Payload{Tag: "x"}
	if string(a.AppendState(nil)) == string(b.AppendState(nil)) {
		t.Fatal("view change invisible")
	}
}

func TestCorruptInDomain(t *testing.T) {
	t.Parallel()
	m := New("snap", 0, 3)
	m.Corrupt(rng.New(2))
	if m.Request > core.Done {
		t.Fatalf("Request %v out of domain", m.Request)
	}
}

func TestConstructorValidation(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("New with n=1 did not panic")
		}
	}()
	New("snap", 0, 1)
}
