package fwd

import (
	"fmt"
	"testing"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/spec"
)

// testNet builds forwarding machines over topo on the deterministic
// simulator, with a spec checker and recorder attached.
func testNet(t *testing.T, topo *core.Topology, opts ...sim.Option) (*sim.Network, []*Forwarder, *spec.ForwardChecker, *core.Recorder) {
	t.Helper()
	n := topo.N()
	checker := spec.NewForwardChecker()
	rec := core.NewRecorder(100000)
	hops := topo.NextHops()
	machines := make([]*Forwarder, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		machines[i] = New("fwd", core.ProcID(i), n, topo.Neighbors(core.ProcID(i)), hops[i], Callbacks{})
		stacks[i] = core.Stack{machines[i]}
	}
	opts = append(opts, sim.WithTopology(topo), sim.WithObserver(checker), sim.WithObserver(rec))
	return sim.New(stacks, opts...), machines, checker, rec
}

// submit injects an item at src and arms its key.
func submit(net *sim.Network, m *Forwarder, checker *spec.ForwardChecker, src, dst core.ProcID, seq int64) spec.FwdKey {
	it := Item{Src: src, Dst: dst, Seq: seq, Body: []byte{byte(seq)}}
	k := spec.FwdKey{Src: src, Dst: dst, Seq: seq}
	checker.Arm(k)
	m.Submit(net.Env(src), it)
	return k
}

func TestCleanTransferAcrossLine(t *testing.T) {
	t.Parallel()
	topo := core.Line(5)
	net, machines, checker, rec := testNet(t, topo, sim.WithSeed(3))
	k := submit(net, machines[0], checker, 0, 4, SeqFloor)
	if err := net.RunUntil(func() bool { return checker.Delivered(k) }, 200000); err != nil {
		t.Fatalf("item not delivered: %v\n%s", err, rec.Dump())
	}
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	// The item crossed each of the four edges exactly once: one
	// EvFwdDeliver at 4, none elsewhere.
	delivers := 0
	for _, e := range rec.Events() {
		if e.Kind == core.EvFwdDeliver {
			delivers++
			if e.Proc != 4 {
				t.Errorf("delivered at %d, want 4", e.Proc)
			}
		}
	}
	if delivers != 1 {
		t.Errorf("%d deliveries, want 1", delivers)
	}
}

func TestSelfDelivery(t *testing.T) {
	t.Parallel()
	topo := core.Line(3)
	net, machines, checker, _ := testNet(t, topo, sim.WithSeed(1))
	k := submit(net, machines[1], checker, 1, 1, SeqFloor)
	if !checker.Delivered(k) {
		t.Fatal("self-addressed item not delivered immediately")
	}
	_ = net
}

func TestManyItemsManyRoutes(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		topo *core.Topology
	}{
		{"line-6", core.Line(6)},
		{"star-6", core.Star(6)},
		{"tree-9", core.RandomTree(9, rng.New(rng.Mix(5, 0x54)))},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			net, machines, checker, rec := testNet(t, tc.topo, sim.WithSeed(7))
			n := tc.topo.N()
			var keys []spec.FwdKey
			seq := int64(SeqFloor)
			for src := 0; src < n; src++ {
				for d := 1; d <= 2; d++ {
					dst := core.ProcID((src + d*2) % n)
					keys = append(keys, submit(net, machines[src], checker, core.ProcID(src), dst, seq))
					seq++
				}
			}
			all := func() bool {
				for _, k := range keys {
					if !checker.Delivered(k) {
						return false
					}
				}
				return true
			}
			if err := net.RunUntil(all, 2_000_000); err != nil {
				t.Fatalf("items not all delivered: %v\n%s", err, rec.Dump())
			}
			if v := checker.Violations(); len(v) != 0 {
				t.Fatalf("violations: %v", v)
			}
		})
	}
}

func TestArbitraryInitialConfiguration(t *testing.T) {
	t.Parallel()
	// The snap-stabilization claim itself: corrupt every machine variable
	// and fill every channel with well-formed FWD garbage, then check
	// every submitted item is still delivered exactly once — across many
	// seeds and tree shapes.
	shapes := map[string]func(seed uint64) *core.Topology{
		"line": func(uint64) *core.Topology { return core.Line(7) },
		"star": func(uint64) *core.Topology { return core.Star(7) },
		"tree": func(seed uint64) *core.Topology { return core.RandomTree(7, rng.New(rng.Mix(seed, 0x54))) },
	}
	for name, mk := range shapes {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 15; seed++ {
				topo := mk(seed)
				net, machines, checker, rec := testNet(t, topo, sim.WithSeed(seed))
				corrupt(net, machines, topo, rng.New(rng.Mix(seed, 977)))
				n := topo.N()
				var keys []spec.FwdKey
				for src := 0; src < n; src++ {
					dst := core.ProcID((src + 3) % n)
					keys = append(keys, submit(net, machines[src], checker, core.ProcID(src), dst, SeqFloor+int64(src)))
				}
				all := func() bool {
					for _, k := range keys {
						if !checker.Delivered(k) {
							return false
						}
					}
					return true
				}
				if err := net.RunUntil(all, 5_000_000); err != nil {
					t.Fatalf("seed %d: items not all delivered: %v\n%s", seed, err, rec.Dump())
				}
				if v := checker.Violations(); len(v) != 0 {
					t.Fatalf("seed %d: violations: %v", seed, v)
				}
			}
		})
	}
}

// corrupt randomizes machine state and fills every edge channel with FWD
// garbage (the fwd-package equivalent of config.Corrupt, kept local to
// avoid an import cycle with config's pif dependency).
func corrupt(net *sim.Network, machines []*Forwarder, topo *core.Topology, r *rng.Source) {
	for _, m := range machines {
		m.Corrupt(r)
	}
	top := machines[0].FlagTop()
	for from := 0; from < net.N(); from++ {
		for to := 0; to < net.N(); to++ {
			if from == to || !topo.HasEdge(core.ProcID(from), core.ProcID(to)) {
				continue
			}
			var garbage []core.Message
			for i := 0; i < net.Capacity(); i++ {
				if r.Float64() < 0.5 {
					garbage = append(garbage, GarbageMessage(r, "fwd", top, net.N()))
				}
			}
			k := sim.LinkKey{From: core.ProcID(from), To: core.ProcID(to), Instance: "fwd"}
			if err := net.Link(k).Preload(garbage); err != nil {
				panic(err)
			}
		}
	}
}

func TestWithholdPreservesBusyReceiver(t *testing.T) {
	t.Parallel()
	// Fill process 1's In buffer for the edge from 0 by hand, then submit
	// a genuine item 0 -> 2. The transfer must stall (withhold) until the
	// buffer drains, and the genuine item must still arrive exactly once.
	topo := core.Line(3)
	net, machines, checker, rec := testNet(t, topo, sim.WithSeed(11))
	// The simulator is single-threaded, so fabricating state between runs
	// is a plain assignment.
	blocked := Item{Src: 0, Dst: 2, Seq: 7, Body: []byte{1}} // fabricated: below SeqFloor
	machines[1].In[0] = slotFor(blocked)
	k := submit(net, machines[0], checker, 0, 2, SeqFloor)
	if err := net.RunUntil(func() bool { return checker.Delivered(k) }, 500000); err != nil {
		t.Fatalf("withheld item never delivered: %v\n%s", err, rec.Dump())
	}
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestSanitizeDiscardsOnlyGarbage(t *testing.T) {
	t.Parallel()
	topo := core.Line(3)
	net, machines, checker, rec := testNet(t, topo, sim.WithSeed(2))
	// Backtracking: sitting in In[0] at process 1 but routed back
	// through 0. Unroutable: endpoints outside the system.
	machines[1].In[0] = slotFor(Item{Src: 2, Dst: 0, Seq: 9})
	machines[1].In[2] = slotFor(Item{Src: 0, Dst: 55, Seq: 10})
	if err := net.RunUntil(net.Quiescent, 500000); err != nil {
		t.Fatalf("network never quiesced: %v\n%s", err, rec.Dump())
	}
	discards := 0
	for _, e := range rec.Events() {
		if e.Kind == core.EvFwdDiscard {
			discards++
		}
	}
	if discards != 2 {
		t.Errorf("%d discards, want 2 (backtracking + unroutable)\n%s", discards, rec.Dump())
	}
	if v := checker.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

// slotFor builds a full buffer slot (test helper for fabricating state).
func slotFor(it Item) slot { return slot{item: it, full: true} }

func TestGarbageSequencesStayBelowFloor(t *testing.T) {
	t.Parallel()
	r := rng.New(42)
	for i := 0; i < 1000; i++ {
		m := GarbageMessage(r, "fwd", 4, 8)
		if m.B.Num >= SeqFloor {
			t.Fatalf("garbage sequence %d reached the application range", m.B.Num)
		}
		it, ok := decodeItem(m)
		if !ok {
			t.Fatal("garbage message does not decode as an item")
		}
		if int(it.Src) >= 8 || int(it.Dst) >= 8 || it.Src < 0 || it.Dst < 0 {
			t.Fatalf("garbage endpoints %v outside the system", it)
		}
	}
}

func TestSnapshotCanonical(t *testing.T) {
	t.Parallel()
	topo := core.Star(4)
	hops := topo.NextHops()
	mk := func() *Forwarder {
		return New("fwd", 0, 4, topo.Neighbors(0), hops[0], Callbacks{})
	}
	a, b := mk(), mk()
	if string(a.AppendState(nil)) != string(b.AppendState(nil)) {
		t.Fatal("identical machines snapshot differently")
	}
	b.State[1] = 2
	if string(a.AppendState(nil)) == string(b.AppendState(nil)) {
		t.Fatal("snapshot misses State")
	}
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	topo := core.Line(3)
	hops := topo.NextHops()
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"n-too-small", func() { New("fwd", 0, 1, nil, []core.ProcID{-1}, Callbacks{}) }},
		{"hops-wrong-len", func() { New("fwd", 0, 3, topo.Neighbors(0), hops[0][:1], Callbacks{}) }},
		{"bad-capacity", func() { New("fwd", 0, 3, topo.Neighbors(0), hops[0], Callbacks{}, WithCapacityBound(0)) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
	var m *Forwarder
	func() {
		defer func() { recover() }()
		m = New("fwd", 0, 3, topo.Neighbors(0), hops[0], Callbacks{})
	}()
	if m == nil {
		t.Fatal("valid construction panicked")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Submit accepted an out-of-range destination")
			}
		}()
		m.Submit(fakeEnv{}, Item{Src: 0, Dst: 9, Seq: SeqFloor})
	}()
	_ = fmt.Sprint(m)
}

// fakeEnv satisfies core.Env for validation paths that never reach it.
type fakeEnv struct{}

func (fakeEnv) Self() core.ProcID              { return 0 }
func (fakeEnv) N() int                         { return 3 }
func (fakeEnv) Send(core.ProcID, core.Message) {}
func (fakeEnv) Emit(core.Event)                {}
