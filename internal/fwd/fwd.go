// Package fwd implements snap-stabilizing message forwarding on tree
// topologies, after Cournier, Dubois and Villain ("Faut-il tout jeter?" /
// the snap-stabilizing message forwarding line, arXiv:1107.6014 and its
// linear-chain variant arXiv:1006.3432), transposed to this repository's
// message-passing model: every item the application submits AFTER an
// arbitrary initial configuration is delivered to its destination exactly
// once, even though buffers, flags, and channels may initially hold
// arbitrary garbage.
//
// # Protocol
//
// An item travels hop by hop along the unique tree path to its
// destination. Each directed edge (p, q) runs an independent
// PIF-style handshake (the paper's flag machinery restricted to one
// neighbour): p repeatedly sends its current outgoing item with flag
// State[q], incrementing the flag only on a matching echo, and q accepts
// the item exactly when the flag first shows FlagTop-1. With channel
// capacity c and flag domain {0..2c+2}, FIFO order guarantees the
// acceptance fires on the genuine item (the same counting argument as
// PIF's Lemma 4 — see DESIGN.md §11), so one transfer moves one item
// across one edge, exactly once.
//
// The no-loss rule is backpressure: a receiver whose input buffer for the
// edge is occupied WITHHOLDS the handshake — it neither updates its
// neighbour flag nor consumes the item, so the sender keeps
// retransmitting until the buffer drains. An item is removed from the
// network only by delivering it (at its destination) or by sanitization
// (malformed endpoints, unroutable or backtracking route — which, on a
// tree, only garbage from the initial configuration can exhibit).
// Withheld edges form non-backtracking wait chains along tree paths, and
// every such chain ends at a consuming destination, so the protocol is
// deadlock-free.
//
// Duplicate suppression across transfers (a reordered stale copy of the
// previous item surfacing inside the next transfer's handshake) uses the
// last-accepted key per edge: accepting the same (src, dst, seq) twice in
// a row is recognized and dropped without an event. Sequence numbers are
// drawn by the application layer from SeqFloor upward, while corruption
// draws below it, so garbage can never impersonate a submitted item.
package fwd

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
)

// Kind is the message type of the forwarding protocol.
const Kind = "FWD"

// ItemTag marks payloads that carry a genuine forwarded item; anything
// else found at an acceptance point is initial-configuration garbage.
const ItemTag = "fwd"

// SeqFloor is the smallest sequence number the application layer may
// assign. Corruption draws sequence numbers below it (GarbageSeqBound),
// so an armed key can never collide with fabricated state.
const SeqFloor = 1 << 16

// GarbageSeqBound bounds the sequence numbers Corrupt fabricates.
const GarbageSeqBound = SeqFloor

// Item is one application message in transit: source, destination, the
// source-assigned sequence number, and an opaque body.
type Item struct {
	Src, Dst core.ProcID
	Seq      int64
	Body     []byte
}

// Key returns the item's identity for the spec checker.
func (it Item) Key() string {
	return fmt.Sprintf("p%d->p%d#%d", it.Src, it.Dst, it.Seq)
}

// slot is a one-item buffer.
type slot struct {
	item Item
	full bool
}

// Callbacks connects a forwarding instance to the application above it.
type Callbacks struct {
	// OnDeliver handles an item arriving at its destination. May be nil;
	// the EvFwdDeliver event fires regardless.
	OnDeliver func(env core.Env, from core.ProcID, it Item)
}

// Option configures a Forwarder.
type Option func(*Forwarder)

// WithCapacityBound declares the known channel capacity bound c >= 1 and
// sizes the per-edge flag domain to {0..2c+2}, exactly as pif.
func WithCapacityBound(c int) Option {
	return func(f *Forwarder) {
		if c < 1 {
			panic(fmt.Sprintf("fwd: invalid capacity bound %d", c))
		}
		f.top = uint8(2*c + 2)
	}
}

// Forwarder is one process's instance of the forwarding protocol.
// Exported fields mirror the protocol's variables; sibling packages
// (corruption, tests) manipulate raw state — that is what "arbitrary
// initial configuration" means.
type Forwarder struct {
	inst  string
	self  core.ProcID
	n     int
	top   uint8
	peers []core.ProcID // neighbours, ascending
	hops  []core.ProcID // hops[dst] = next hop toward dst, -1 for self/unreachable
	cb    Callbacks

	// Out[q] is the item currently being transferred to neighbour q.
	Out []slot
	// State[q] is the handshake flag toward q (top = idle/complete).
	State []uint8
	// Neig[q] is the last flag value received from q.
	Neig []uint8
	// In[q] is the one-item input buffer for items accepted from q and
	// awaiting forwarding; while it is full, the handshake from q is
	// withheld.
	In []slot
	// LastKey[q] is the identity of the item most recently accepted from
	// q, suppressing stale re-acceptance across consecutive transfers.
	LastKey []Item
	// Local is the application submission queue (FIFO).
	Local []Item
}

var (
	_ core.Machine     = (*Forwarder)(nil)
	_ core.Snapshotter = (*Forwarder)(nil)
	_ core.Corruptible = (*Forwarder)(nil)
)

// New returns a forwarding machine for process self of n, with the given
// neighbour set and next-hop row (hops[dst] is the neighbour on the path
// to dst, -1 for dst = self; a tree topology's NextHops supplies it).
func New(inst string, self core.ProcID, n int, peers, hops []core.ProcID, cb Callbacks, opts ...Option) *Forwarder {
	if n < 2 {
		panic(fmt.Sprintf("fwd: need n >= 2, got %d", n))
	}
	if len(hops) != n {
		panic(fmt.Sprintf("fwd: next-hop row of %d entries for n = %d", len(hops), n))
	}
	f := &Forwarder{
		inst:    inst,
		self:    self,
		n:       n,
		top:     4, // c = 1, as pif
		peers:   append([]core.ProcID(nil), peers...),
		hops:    append([]core.ProcID(nil), hops...),
		cb:      cb,
		Out:     make([]slot, n),
		State:   make([]uint8, n),
		Neig:    make([]uint8, n),
		In:      make([]slot, n),
		LastKey: make([]Item, n),
	}
	for _, opt := range opts {
		opt(f)
	}
	// Idle edges park at top so nothing handshakes until an item exists.
	for _, q := range f.peers {
		f.State[q] = f.top
	}
	return f
}

// Instance returns the protocol instance ID.
func (f *Forwarder) Instance() string { return f.inst }

// Self returns the owning process.
func (f *Forwarder) Self() core.ProcID { return f.self }

// FlagTop returns the top of the per-edge flag domain.
func (f *Forwarder) FlagTop() uint8 { return f.top }

// SetCallbacks replaces the application callbacks.
func (f *Forwarder) SetCallbacks(cb Callbacks) { f.cb = cb }

// isPeer reports whether q is a neighbour.
func (f *Forwarder) isPeer(q core.ProcID) bool {
	for _, p := range f.peers {
		if p == q {
			return true
		}
	}
	return false
}

// Submit hands an item to the protocol for routing. Items destined to
// self are delivered immediately. It panics on an endpoint outside the
// system — the application layer validates destinations.
func (f *Forwarder) Submit(env core.Env, it Item) {
	if it.Dst < 0 || int(it.Dst) >= f.n {
		panic(fmt.Sprintf("fwd: destination %d outside [0,%d)", it.Dst, f.n))
	}
	env.Emit(core.Event{Kind: core.EvRequest, Peer: -1, Instance: f.inst, Note: it.Key()})
	if it.Dst == f.self {
		f.deliver(env, f.self, it)
		return
	}
	f.Local = append(f.Local, it)
}

// deliver hands an item to the application.
func (f *Forwarder) deliver(env core.Env, from core.ProcID, it Item) {
	env.Emit(core.Event{
		Kind:     core.EvFwdDeliver,
		Peer:     from,
		Instance: f.inst,
		Msg:      itemMessage(f.inst, it),
		Note:     it.Key(),
	})
	if f.cb.OnDeliver != nil {
		f.cb.OnDeliver(env, from, it)
	}
}

// discard sanitizes an item out of the network.
func (f *Forwarder) discard(env core.Env, it Item, why string) {
	env.Emit(core.Event{
		Kind:     core.EvFwdDiscard,
		Peer:     -1,
		Instance: f.inst,
		Msg:      itemMessage(f.inst, it),
		Note:     why,
	})
}

// routable classifies an item held at this process: the next hop to move
// it along, or deliver/discard verdicts.
func (f *Forwarder) nextHop(it Item) (core.ProcID, bool) {
	if it.Dst < 0 || int(it.Dst) >= f.n || it.Src < 0 || int(it.Src) >= f.n {
		return -1, false
	}
	h := f.hops[it.Dst]
	if h < 0 {
		return -1, false
	}
	return h, true
}

// itemMessage encodes an item as the wire message body (shared by sends
// and the fwd events the spec checker reads).
func itemMessage(inst string, it Item) core.Message {
	return core.Message{
		Instance: inst,
		Kind:     Kind,
		B:        core.Payload{Tag: ItemTag, Num: it.Seq, Blob: it.Body},
		F:        core.Payload{Tag: "rt", Num: core.PackRoute(it.Src, it.Dst)},
	}
}

// decodeItem reads an item back out of a message; ok is false for
// anything that is not a genuine item encoding.
func decodeItem(m core.Message) (Item, bool) {
	if m.B.Tag != ItemTag {
		return Item{}, false
	}
	src, dst := core.UnpackRoute(m.F.Num)
	return Item{Src: src, Dst: dst, Seq: m.B.Num, Body: m.B.Blob}, true
}

// sanitize clears impossible local state: parked flags on empty slots,
// and buffered items that are deliverable here or unroutable. Only the
// arbitrary initial configuration produces such states; sanitizing them
// eagerly keeps the invariant "every buffered item has a forward route".
func (f *Forwarder) sanitize(env core.Env) bool {
	fired := false
	for _, q := range f.peers {
		if !f.Out[q].full && f.State[q] != f.top {
			f.State[q] = f.top
			fired = true
		}
		if f.Out[q].full {
			if h, ok := f.nextHop(f.Out[q].item); !ok || h != q {
				// Mid-transfer toward the wrong neighbour or unroutable:
				// fabricated state. (A genuine transfer always targets
				// the item's next hop.)
				if it := f.Out[q].item; it.Dst == f.self {
					f.deliver(env, q, it)
				} else if !ok {
					f.discard(env, f.Out[q].item, "unroutable out slot")
				} else {
					// Routable but aimed at the wrong edge: re-queue it
					// locally rather than destroy it.
					f.Local = append(f.Local, f.Out[q].item)
				}
				f.Out[q] = slot{}
				f.State[q] = f.top
				fired = true
			} else if f.State[q] == f.top {
				// A full slot under a completed-transfer flag is fabricated:
				// a genuine completion clears the slot in the same action
				// that reaches top. Restart the transfer from flag 0 rather
				// than guess whether the item ever crossed — re-acceptance
				// of an item the neighbour already forwarded is suppressed
				// by its LastKey.
				f.State[q] = 0
				fired = true
			}
		}
		if f.In[q].full {
			it := f.In[q].item
			if it.Dst == f.self {
				f.deliver(env, q, it)
				f.In[q] = slot{}
				fired = true
			} else if h, ok := f.nextHop(it); !ok {
				f.discard(env, it, "unroutable buffered item")
				f.In[q] = slot{}
				fired = true
			} else if h == q {
				// An accepted item never routes back through the edge it
				// arrived on (the acceptance point rejects that), so this
				// is fabricated — and it must not stay: an In[q] item
				// waiting for Out[q] couples the edge's two directions,
				// and two such items close a withhold cycle (deadlock).
				f.discard(env, it, "backtracking buffered item")
				f.In[q] = slot{}
				fired = true
			}
		}
	}
	return fired
}

// pick fills Out[q] with the next item routed through q, if any: the
// local queue first (FIFO), then the input buffers in ascending neighbour
// order.
func (f *Forwarder) pick(q core.ProcID) bool {
	for i, it := range f.Local {
		if h, ok := f.nextHop(it); ok && h == q {
			f.Local = append(f.Local[:i], f.Local[i+1:]...)
			f.Out[q] = slot{item: it, full: true}
			f.State[q] = 0
			return true
		}
	}
	for _, src := range f.peers {
		if !f.In[src].full {
			continue
		}
		if h, ok := f.nextHop(f.In[src].item); ok && h == q {
			f.Out[q] = slot{item: f.In[src].item, full: true}
			f.In[src] = slot{}
			f.State[q] = 0
			return true
		}
	}
	return false
}

// send transmits the current transfer state toward q.
func (f *Forwarder) send(env core.Env, q core.ProcID) {
	m := itemMessage(f.inst, f.Out[q].item)
	if !f.Out[q].full {
		m.B, m.F = core.Payload{}, core.Payload{}
	}
	m.State = f.State[q]
	m.Echo = f.Neig[q]
	env.Send(q, m)
}

// Step runs the internal actions: sanitize fabricated state, start
// transfers for idle edges with routable items, retransmit active
// transfers.
func (f *Forwarder) Step(env core.Env) bool {
	fired := f.sanitize(env)
	for _, q := range f.peers {
		if !f.Out[q].full {
			if !f.pick(q) {
				continue
			}
			fired = true
		}
		if f.State[q] < f.top {
			f.send(env, q)
			fired = true
		}
	}
	return fired
}

// Deliver runs the receive action for a message from q: the acceptance
// point of the incoming transfer (with the no-loss withhold rule and
// stale-duplicate suppression), the echo-driven progress of the outgoing
// transfer, and the reply.
func (f *Forwarder) Deliver(env core.Env, from core.ProcID, m core.Message) {
	if m.Kind != Kind || !f.isPeer(from) {
		// Garbage, or not a neighbour: consumed, no effect.
		return
	}
	q := from
	qState := m.State
	if qState > f.top {
		qState = f.top // clamp out-of-domain garbage, as pif
	}
	echo := m.Echo

	// Acceptance point: the incoming transfer's flag first shows top-1.
	if f.Neig[q] != f.top-1 && qState == f.top-1 {
		it, ok := decodeItem(m)
		switch {
		case !ok:
			// Not an item at all: fabricated handshake state. Sanitized;
			// nothing real is lost.
			f.discard(env, Item{}, "malformed item")
		case sameKey(it, f.LastKey[q]):
			// The item most recently accepted on this edge, resurfacing
			// through a stale or duplicated flag message: already
			// forwarded, drop the copy silently.
		case it.Dst == f.self:
			f.accept(q, it)
			f.deliver(env, q, it)
		default:
			h, ok := f.nextHop(it)
			if !ok || h == q {
				// Unroutable, or routed straight back where it came from:
				// on a tree only garbage does this.
				f.discard(env, it, "unroutable or backtracking item")
				break
			}
			if f.In[q].full {
				// No-loss backpressure: withhold the handshake — no flag
				// update, no consumption. The sender keeps retransmitting;
				// our reply below still carries the stale Neig, which is
				// exactly the stall signal.
				goto duplex
			}
			f.accept(q, it)
			f.In[q] = slot{item: it, full: true}
		}
	}
	f.Neig[q] = qState

duplex:
	// Outgoing-transfer progress: echo-matched increment; at top the
	// transfer is complete and the edge parks.
	if f.State[q] == echo && f.State[q] < f.top {
		f.State[q]++
		if f.State[q] == f.top {
			f.Out[q] = slot{}
		}
	}

	// Answer while the incoming transfer still wants echoes.
	if qState < f.top {
		f.send(env, q)
	}
}

// accept records the edge's last-accepted key.
func (f *Forwarder) accept(q core.ProcID, it Item) {
	f.LastKey[q] = Item{Src: it.Src, Dst: it.Dst, Seq: it.Seq}
}

// sameKey compares item identities — (src, dst, seq); bodies are opaque.
func sameKey(a, b Item) bool {
	return a.Src == b.Src && a.Dst == b.Dst && a.Seq == b.Seq
}

// Busy reports whether the process still holds items: a non-empty local
// queue, input buffer, or active transfer.
func (f *Forwarder) Busy() bool {
	if len(f.Local) > 0 {
		return true
	}
	for _, q := range f.peers {
		if f.Out[q].full || f.In[q].full {
			return true
		}
	}
	return false
}

// Holds reports whether the process still holds an item with it's key:
// queued locally, in an input buffer, or in an unacknowledged transfer.
// Once false for a submitted item, the next hop has accepted it and the
// protocol's no-loss guarantee carries it the rest of the way.
func (f *Forwarder) Holds(it Item) bool {
	for _, x := range f.Local {
		if sameKey(x, it) {
			return true
		}
	}
	for _, q := range f.peers {
		if f.Out[q].full && sameKey(f.Out[q].item, it) {
			return true
		}
		if f.In[q].full && sameKey(f.In[q].item, it) {
			return true
		}
	}
	return false
}

// AppendState appends a canonical encoding of the machine state.
func (f *Forwarder) AppendState(dst []byte) []byte {
	dst = append(dst, 'F')
	appendItem := func(dst []byte, it Item, full bool) []byte {
		b := byte(0)
		if full {
			b = 1
		}
		dst = append(dst, b)
		dst = core.AppendPayload(dst, core.Payload{Tag: ItemTag, Num: it.Seq, Blob: it.Body})
		dst = core.AppendPayload(dst, core.Payload{Num: core.PackRoute(it.Src, it.Dst)})
		return dst
	}
	for _, q := range f.peers {
		dst = append(dst, f.State[q], f.Neig[q])
		dst = appendItem(dst, f.Out[q].item, f.Out[q].full)
		dst = appendItem(dst, f.In[q].item, f.In[q].full)
		dst = appendItem(dst, f.LastKey[q], true)
	}
	for _, it := range f.Local {
		dst = appendItem(dst, it, true)
	}
	return dst
}

// garbageItem draws an arbitrary item: in-range endpoints, a sequence
// number below SeqFloor (application sequence numbers start there, so
// fabricated items can never impersonate submitted ones), and a short
// opaque body.
func garbageItem(r core.Rand, n int) Item {
	it := Item{
		Src: core.ProcID(r.Intn(n)),
		Dst: core.ProcID(r.Intn(n)),
		Seq: int64(r.Intn(GarbageSeqBound)),
	}
	if body := r.Intn(4); body > 0 {
		it.Body = make([]byte, body)
		for i := range it.Body {
			it.Body[i] = byte(r.Uint64())
		}
	}
	return it
}

// Corrupt overwrites every protocol variable with arbitrary values from
// its domain. The local submission queue belongs to the application side
// of the interface and stays — the specification is about items
// submitted, and corrupting the submission queue would un-submit them.
func (f *Forwarder) Corrupt(r core.Rand) {
	for _, q := range f.peers {
		f.State[q] = uint8(r.Intn(int(f.top) + 1))
		f.Neig[q] = uint8(r.Intn(int(f.top) + 1))
		f.Out[q] = slot{}
		if r.Bool() {
			f.Out[q] = slot{item: garbageItem(r, f.n), full: true}
		}
		f.In[q] = slot{}
		if r.Bool() {
			f.In[q] = slot{item: garbageItem(r, f.n), full: true}
		}
		f.LastKey[q] = garbageItem(r, f.n)
		f.LastKey[q].Body = nil
	}
}

// GarbageMessage draws a random FWD message with flags in {0..top}, used
// to fill channels in arbitrary initial configurations.
func GarbageMessage(r core.Rand, inst string, top uint8, n int) core.Message {
	m := itemMessage(inst, garbageItem(r, n))
	m.State = uint8(r.Intn(int(top) + 1))
	m.Echo = uint8(r.Intn(int(top) + 1))
	return m
}
