// The daemon: one fleet process hosted over the TCP substrate, driven
// through an HTTP control API.
//
// Endpoints:
//
//	GET  /v1/status   — node identity, fleet shape, transport counters
//	POST /v1/request  — submit one protocol request; the response streams
//	                    NDJSON: an "accepted" line with the request id,
//	                    then a "done" line with the result (or "error")
//	GET  /metrics     — Prometheus text exposition
//
// Every HTTP request's duration lands in the latency histogram, and
// every protocol request is logged with its request id at submission and
// completion, so a fleet's logs correlate across daemons.
package deploy

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	snapstab "github.com/snapstab/snapstab"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/obs"
)

// Daemon hosts one fleet process.
type Daemon struct {
	cfg     Config
	log     *slog.Logger
	metrics *obs.NodeMetrics
	ids     *obs.RequestIDs
	drv     *driver
	start   time.Time

	httpLn  net.Listener
	httpSrv *http.Server

	closeOnce sync.Once
}

// driver is the protocol-specific slice of a daemon: the built cluster
// and the operations it serves.
type driver struct {
	cluster interface {
		TransportStats() []snapstab.TransportStats
		Close() error
	}
	// ops maps operation names to handlers. Params arrive as the
	// request's raw JSON "params" field.
	ops map[string]func(ctx context.Context, params json.RawMessage) (any, error)
}

// opNames lists the driver's operations for error messages and status.
func (d *driver) opNames() []string {
	names := make([]string, 0, len(d.ops))
	for name := range d.ops {
		names = append(names, name)
	}
	// Deterministic order for status output and error messages.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// New builds a daemon from its config: the cluster on the TCPHost
// substrate (binding the transport listener), the metrics registry, and
// the control HTTP listener. Call Serve to start handling requests and
// Close to tear everything down.
func New(cfg Config, log *slog.Logger) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if log == nil {
		log = obs.NewLogger(noopWriter{}, slog.LevelError, cfg.Node, cfg.Protocol)
	}
	d := &Daemon{
		cfg:   cfg,
		log:   log,
		ids:   obs.NewRequestIDs(cfg.Node),
		start: time.Now(),
	}
	drv, err := buildDriver(cfg, func(kind string) {
		if d.metrics != nil {
			d.metrics.CountEvent(kind)
		}
	}, log)
	if err != nil {
		return nil, err
	}
	d.drv = drv
	d.metrics = obs.NewNodeMetrics(cfg.Node, cfg.Protocol, coreStatser{drv.cluster.TransportStats})
	if cfg.Corrupt {
		type corrupter interface{ CorruptEverything(seed uint64) }
		if c, ok := drv.cluster.(corrupter); ok {
			c.CorruptEverything(cfg.corruptSeed())
			log.Info("initial configuration corrupted", "seed", cfg.corruptSeed())
		}
	}
	ln, err := net.Listen("tcp", cfg.Control)
	if err != nil {
		drv.cluster.Close()
		return nil, fmt.Errorf("deploy: control listen %q: %w", cfg.Control, err)
	}
	d.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", d.handleStatus)
	mux.HandleFunc("/v1/request", d.handleRequest)
	mux.Handle("/metrics", d.metrics.Registry().Handler())
	d.httpSrv = &http.Server{Handler: d.timed(mux)}
	return d, nil
}

// noopWriter drops log output (tests and the default nil-logger path).
type noopWriter struct{}

func (noopWriter) Write(p []byte) (int, error) { return len(p), nil }

// coreStatser adapts the façade's TransportStats to the core shape the
// metrics layer consumes (obs depends on internal/core only, not on the
// root package).
type coreStatser struct {
	get func() []snapstab.TransportStats
}

func (c coreStatser) TransportStats() []core.TransportStats {
	pub := c.get()
	out := make([]core.TransportStats, len(pub))
	for i, s := range pub {
		cs := core.TransportStats{
			Addr:         s.Addr,
			Sends:        s.Sends,
			Recvs:        s.Recvs,
			SendDrops:    s.SendDrops,
			MailboxDrops: s.MailboxDrops,
			Redials:      s.Redials,
			Faults:       core.FaultStats(s.Faults),
		}
		for _, l := range s.Links {
			cs.Links = append(cs.Links, core.LinkStats{
				Peer: core.ProcID(l.Peer), Sent: l.Sent, Received: l.Received, Dropped: l.Dropped,
			})
		}
		out[i] = cs
	}
	return out
}

// ControlAddr returns the bound control address (useful with port 0).
func (d *Daemon) ControlAddr() string { return d.httpLn.Addr().String() }

// TransportAddr returns the hosted node's bound transport address.
func (d *Daemon) TransportAddr() string {
	for i, s := range d.drv.cluster.TransportStats() {
		if i == d.cfg.Node {
			return s.Addr
		}
	}
	return ""
}

// Serve handles control requests until Close; it returns the server's
// terminal error (http.ErrServerClosed after a clean Close).
func (d *Daemon) Serve() error {
	d.log.Info("daemon up",
		"transport", d.TransportAddr(),
		"control", d.ControlAddr(),
		"fleet", len(d.cfg.Peers),
		"ops", d.drv.opNames())
	return d.httpSrv.Serve(d.httpLn)
}

// Close shuts the control server and the cluster down. Idempotent.
func (d *Daemon) Close() error {
	var err error
	d.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = d.httpSrv.Shutdown(ctx)
		err = d.drv.cluster.Close()
	})
	return err
}

// timed wraps the whole control surface with the request-latency
// histogram: every endpoint's duration is observed, so even a daemon
// that only ever served status and scrapes has a live histogram.
func (d *Daemon) timed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		d.metrics.RequestLatency.Observe(time.Since(start).Seconds())
	})
}

// Status is the /v1/status response body.
type Status struct {
	Node      int                     `json:"node"`
	Protocol  string                  `json:"protocol"`
	Fleet     int                     `json:"fleet"`
	Transport string                  `json:"transport"`
	Control   string                  `json:"control"`
	UptimeSec float64                 `json:"uptime_sec"`
	Ops       []string                `json:"ops"`
	Stats     snapstab.TransportStats `json:"stats"`
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	var self snapstab.TransportStats
	if all := d.drv.cluster.TransportStats(); d.cfg.Node < len(all) {
		self = all[d.cfg.Node]
	}
	st := Status{
		Node:      d.cfg.Node,
		Protocol:  d.cfg.Protocol,
		Fleet:     len(d.cfg.Peers),
		Transport: d.TransportAddr(),
		Control:   d.ControlAddr(),
		UptimeSec: time.Since(d.start).Seconds(),
		Ops:       d.drv.opNames(),
		Stats:     self,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// RequestBody is the /v1/request submission shape.
type RequestBody struct {
	// Op names the operation; /v1/status lists what the daemon's
	// protocol serves.
	Op string `json:"op"`
	// Params are the operation's arguments (shape per operation).
	Params json.RawMessage `json:"params,omitempty"`
	// TimeoutMS bounds the request (default 30000).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// StreamLine is one NDJSON line of a /v1/request response.
type StreamLine struct {
	ID      string          `json:"id"`
	Event   string          `json:"event"` // "accepted", "done", "error"
	Op      string          `json:"op,omitempty"`
	Error   string          `json:"error,omitempty"`
	Elapsed float64         `json:"elapsed_sec,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

func (d *Daemon) handleRequest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var body RequestBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	op, ok := d.drv.ops[body.Op]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown op %q for protocol %s (have %v)",
			body.Op, d.cfg.Protocol, d.drv.opNames()), http.StatusBadRequest)
		d.metrics.Requests.With(body.Op, "unknown").Inc()
		return
	}
	timeout := 30 * time.Second
	if body.TimeoutMS > 0 {
		timeout = time.Duration(body.TimeoutMS) * time.Millisecond
	}
	id := d.ids.Next()
	log := d.log.With("req", id, "op", body.Op)
	log.Info("request accepted")

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	enc.Encode(StreamLine{ID: id, Event: "accepted", Op: body.Op})
	flush()

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	start := time.Now()
	result, err := op(ctx, body.Params)
	elapsed := time.Since(start)
	if err != nil {
		d.metrics.Requests.With(body.Op, "error").Inc()
		log.Error("request failed", "err", err, "elapsed", elapsed)
		enc.Encode(StreamLine{ID: id, Event: "error", Op: body.Op, Error: err.Error(), Elapsed: elapsed.Seconds()})
		return
	}
	raw, merr := json.Marshal(result)
	if merr != nil {
		raw = []byte(fmt.Sprintf("%q", fmt.Sprint(result)))
	}
	d.metrics.Requests.With(body.Op, "ok").Inc()
	log.Info("request done", "elapsed", elapsed)
	enc.Encode(StreamLine{ID: id, Event: "done", Op: body.Op, Elapsed: elapsed.Seconds(), Result: raw})
}
