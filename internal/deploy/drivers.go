// Protocol drivers: one builder per cluster type, mapping the daemon's
// HTTP operations onto the façade's request API. Every operation
// initiates at the daemon's own process — on the TCPHost substrate a
// request at any other process belongs to that process's daemon, and the
// façade enforces it with ErrRemoteProcess.
package deploy

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"

	snapstab "github.com/snapstab/snapstab"
)

// fleetIDs derives the identifier set the id-based protocols (idl,
// mutex) use: a pure function of the fleet size, so every daemon agrees
// without configuring ids explicitly.
func fleetIDs(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i*13 + 5)
	}
	return out
}

// buildDriver constructs the configured protocol's cluster on the
// TCPHost substrate and wires its operations. Cluster construction
// panics on substrate failures (a busy transport port); the recover
// turns that into a startup error.
func buildDriver(cfg Config, countEvent func(kind string), log *slog.Logger) (drv *driver, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("deploy: cluster construction: %v", r)
		}
	}()
	opts, topo, err := cfg.options()
	if err != nil {
		return nil, err
	}
	opts = append(opts, snapstab.WithEventHook(func(e snapstab.ObservedEvent) {
		countEvent(e.Kind)
	}))
	n := len(cfg.Peers)
	self := cfg.Node
	if !topo.IsZero() {
		switch {
		case cfg.Protocol == "forward" && !topo.IsTree():
			return nil, fmt.Errorf("deploy: the forwarding protocol needs a tree topology, %q is not one", cfg.Topology)
		case (cfg.Protocol == "idl" || cfg.Protocol == "mutex" || cfg.Protocol == "reset" || cfg.Protocol == "snap") && !topo.IsComplete():
			return nil, fmt.Errorf("deploy: protocol %q needs the complete graph, %q is not complete", cfg.Protocol, cfg.Topology)
		case !topo.Connected():
			return nil, fmt.Errorf("deploy: topology %q is disconnected", cfg.Topology)
		}
	}

	switch cfg.Protocol {
	case "pif":
		c := snapstab.NewPIFCluster(n, opts...)
		return &driver{cluster: c, ops: opsMap{
			"broadcast": func(ctx context.Context, params json.RawMessage) (any, error) {
				var p struct {
					Tag string `json:"tag"`
					Num int64  `json:"num"`
				}
				if err := unmarshalParams(params, &p); err != nil {
					return nil, err
				}
				req := c.BroadcastAsync(self, p.Tag, p.Num)
				if err := req.Wait(ctx); err != nil {
					return nil, err
				}
				type fb struct {
					From int    `json:"from"`
					Tag  string `json:"tag"`
					Num  int64  `json:"num"`
				}
				var out []fb
				for _, f := range req.Feedbacks() {
					out = append(out, fb{From: f.From, Tag: f.Value.Tag, Num: f.Value.Num})
				}
				return map[string]any{"feedbacks": out}, nil
			},
		}.done()}, nil

	case "typed":
		// Application values are arbitrary JSON documents: the codec
		// carries them as opaque wire blobs, and feedbacks echo them.
		c := snapstab.NewTypedPIFCluster(n, snapstab.JSON[json.RawMessage](), opts...)
		return &driver{cluster: c, ops: opsMap{
			"broadcast": func(ctx context.Context, params json.RawMessage) (any, error) {
				var p struct {
					Value json.RawMessage `json:"value"`
				}
				if err := unmarshalParams(params, &p); err != nil {
					return nil, err
				}
				if len(p.Value) == 0 {
					return nil, fmt.Errorf("typed broadcast needs params.value (a JSON document)")
				}
				req := c.BroadcastAsync(self, p.Value)
				if err := req.Wait(ctx); err != nil {
					return nil, err
				}
				type fb struct {
					From  int             `json:"from"`
					Value json.RawMessage `json:"value,omitempty"`
					Error string          `json:"error,omitempty"`
				}
				var out []fb
				for _, f := range req.Feedbacks() {
					e := fb{From: f.From, Value: f.Value}
					if f.Err != nil {
						e.Error = f.Err.Error()
						e.Value = nil
					}
					out = append(out, e)
				}
				return map[string]any{"feedbacks": out}, nil
			},
		}.done()}, nil

	case "idl":
		c := snapstab.NewIDCluster(fleetIDs(n), opts...)
		return &driver{cluster: c, ops: opsMap{
			"learn": func(ctx context.Context, params json.RawMessage) (any, error) {
				req := c.LearnAsync(self)
				if err := req.Wait(ctx); err != nil {
					return nil, err
				}
				return map[string]any{"min_id": req.MinID(), "table": req.Table()}, nil
			},
		}.done()}, nil

	case "mutex":
		c := snapstab.NewMutexCluster(fleetIDs(n), opts...)
		return &driver{cluster: c, ops: opsMap{
			"acquire": func(ctx context.Context, params json.RawMessage) (any, error) {
				entered := false
				req := c.AcquireAsync(self, func() {
					entered = true
					log.Info("critical section", "node", self)
				})
				if err := req.Wait(ctx); err != nil {
					return nil, err
				}
				return map[string]any{
					"entered":    entered,
					"entries":    c.Entries(),
					"violations": len(c.Violations()),
				}, nil
			},
		}.done()}, nil

	case "reset":
		c := snapstab.NewResetCluster(n, func(p int, epoch int64) {
			log.Info("reinitialized", "proc", p, "epoch", epoch)
		}, opts...)
		return &driver{cluster: c, ops: opsMap{
			"reset": func(ctx context.Context, params json.RawMessage) (any, error) {
				req := c.ResetAsync(self)
				if err := req.Wait(ctx); err != nil {
					return nil, err
				}
				return map[string]any{"epoch": req.Epoch()}, nil
			},
		}.done()}, nil

	case "snap":
		// The snapshot provider is a pure function of the process index,
		// so the collected view is verifiable fleet-wide: each daemon's
		// provider answers for its own process only (on the TCPHost
		// substrate the remote providers run in the remote daemons).
		c := snapstab.NewSnapshotCluster(n, func(p int) snapstab.Payload {
			return snapstab.Payload{Tag: "state", Num: int64(p) * 111}
		}, opts...)
		return &driver{cluster: c, ops: opsMap{
			"snapshot": func(ctx context.Context, params json.RawMessage) (any, error) {
				req := c.CollectAsync(self)
				if err := req.Wait(ctx); err != nil {
					return nil, err
				}
				type view struct {
					Proc int    `json:"proc"`
					Tag  string `json:"tag"`
					Num  int64  `json:"num"`
				}
				var out []view
				for q, v := range req.Views() {
					out = append(out, view{Proc: q, Tag: v.Tag, Num: v.Num})
				}
				return map[string]any{"views": out}, nil
			},
		}.done()}, nil

	case "forward":
		c := snapstab.NewForwardingCluster(n, snapstab.JSON[json.RawMessage](), opts...)
		return &driver{cluster: c, ops: opsMap{
			"forward": func(ctx context.Context, params json.RawMessage) (any, error) {
				var p struct {
					Dst   int             `json:"dst"`
					Value json.RawMessage `json:"value"`
				}
				if err := unmarshalParams(params, &p); err != nil {
					return nil, err
				}
				if len(p.Value) == 0 {
					return nil, fmt.Errorf("forward needs params.value (a JSON document)")
				}
				req := c.SendAsync(self, p.Dst, p.Value)
				if err := req.Wait(ctx); err != nil {
					return nil, err
				}
				return map[string]any{"key": req.Key(), "dst": p.Dst}, nil
			},
			"deliveries": func(ctx context.Context, params json.RawMessage) (any, error) {
				type delivery struct {
					From  int             `json:"from"`
					Value json.RawMessage `json:"value,omitempty"`
					Error string          `json:"error,omitempty"`
				}
				var out []delivery
				for _, d := range c.Deliveries(self) {
					e := delivery{From: d.From, Value: d.Value}
					if d.Err != nil {
						e.Error = d.Err.Error()
						e.Value = nil
					}
					out = append(out, e)
				}
				return map[string]any{"deliveries": out}, nil
			},
		}.done()}, nil
	}
	return nil, fmt.Errorf("deploy: unknown protocol %q", cfg.Protocol)
}

// opsMap is sugar for the driver op tables.
type opsMap map[string]func(ctx context.Context, params json.RawMessage) (any, error)

func (m opsMap) done() map[string]func(ctx context.Context, params json.RawMessage) (any, error) {
	return m
}

// unmarshalParams decodes params into v, treating absent params as the
// zero value (operations with optional arguments).
func unmarshalParams(params json.RawMessage, v any) error {
	if len(params) == 0 {
		return nil
	}
	if err := json.Unmarshal(params, v); err != nil {
		return fmt.Errorf("bad params: %w", err)
	}
	return nil
}
