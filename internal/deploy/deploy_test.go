package deploy

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// reservePorts grabs k distinct loopback TCP ports by binding and
// releasing them. The window between release and reuse is racy in
// principle; in practice the kernel does not rebind a just-released
// ephemeral port before the daemons claim it.
func reservePorts(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	lns := make([]net.Listener, k)
	for i := 0; i < k; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// startFleet builds and serves one daemon per fleet process from a base
// config, returning the daemons and their control clients. Daemons are
// closed at test cleanup.
func startFleet(t *testing.T, base Config) ([]*Daemon, []*Client) {
	t.Helper()
	n := len(base.Peers)
	daemons := make([]*Daemon, n)
	clients := make([]*Client, n)
	controls := reservePorts(t, n)
	for i := 0; i < n; i++ {
		cfg := base
		cfg.Node = i
		cfg.Listen = base.Peers[i]
		cfg.Control = controls[i]
		d, err := New(cfg, nil)
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		daemons[i] = d
		t.Cleanup(func() { d.Close() })
		go d.Serve()
		clients[i] = NewClient(d.ControlAddr())
	}
	return daemons, clients
}

// TestFleetTypedBroadcastWithMetrics is the acceptance scenario in
// miniature: a 3-daemon typed fleet from a corrupted initial
// configuration completes a JSON broadcast submitted through the control
// API, and every daemon's scrape shows nonzero per-link throughput and a
// live latency histogram.
func TestFleetTypedBroadcastWithMetrics(t *testing.T) {
	base := Config{
		Protocol: "typed",
		Peers:    reservePorts(t, 3),
		Seed:     11,
		Corrupt:  true,
	}
	_, clients := startFleet(t, base)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	doc := `{"k":"v","n":42}`
	var lines []string
	last, err := clients[0].Request(ctx, RequestBody{
		Op:     "broadcast",
		Params: json.RawMessage(fmt.Sprintf(`{"value":%s}`, doc)),
	}, func(l StreamLine) { lines = append(lines, l.Event) })
	if err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if len(lines) < 2 || lines[0] != "accepted" || last.Event != "done" {
		t.Fatalf("stream events = %v, want accepted...done", lines)
	}
	var result struct {
		Feedbacks []struct {
			From  int             `json:"from"`
			Value json.RawMessage `json:"value"`
			Error string          `json:"error"`
		} `json:"feedbacks"`
	}
	if err := json.Unmarshal(last.Result, &result); err != nil {
		t.Fatalf("result: %v", err)
	}
	if len(result.Feedbacks) != 2 {
		t.Fatalf("%d feedbacks, want 2", len(result.Feedbacks))
	}
	for _, f := range result.Feedbacks {
		if f.Error != "" {
			t.Fatalf("feedback from %d errored: %s", f.From, f.Error)
		}
		if string(f.Value) != doc {
			t.Fatalf("feedback from %d = %s, want %s", f.From, f.Value, doc)
		}
	}

	// Every daemon: status reachable, then the scrape must show nonzero
	// per-link throughput and a live request-latency histogram.
	for i, c := range clients {
		st, err := c.Status(ctx)
		if err != nil {
			t.Fatalf("status %d: %v", i, err)
		}
		if st.Node != i || st.Fleet != 3 || st.Stats.Sends == 0 {
			t.Fatalf("status %d: %+v", i, st)
		}
		text, err := c.Metrics(ctx)
		if err != nil {
			t.Fatalf("metrics %d: %v", i, err)
		}
		if !strings.Contains(text, `snapstab_link_sent_total{peer=`) {
			t.Fatalf("node %d scrape has no per-link throughput:\n%s", i, text)
		}
		if strings.Contains(text, "snapstab_request_duration_seconds_count 0\n") {
			t.Fatalf("node %d scrape has an empty latency histogram", i)
		}
		for _, want := range []string{
			fmt.Sprintf(`snapstab_node_info{node="%d",protocol="typed"} 1`, i),
			`snapstab_events_total{kind="send"}`,
			"snapstab_transport_sends_total",
		} {
			if !strings.Contains(text, want) {
				t.Fatalf("node %d scrape missing %q", i, want)
			}
		}
	}
}

// TestFleetForwardOnTree drives the tree-forwarding protocol across
// daemons: node 0 forwards a document to node 2 over the default line,
// and node 2's daemon reports the delivery.
func TestFleetForwardOnTree(t *testing.T) {
	base := Config{
		Protocol: "forward",
		Peers:    reservePorts(t, 3),
		Seed:     5,
		Corrupt:  true,
	}
	_, clients := startFleet(t, base)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	last, err := clients[0].Request(ctx, RequestBody{
		Op:     "forward",
		Params: json.RawMessage(`{"dst":2,"value":"fleet-item"}`),
	}, nil)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	if last.Event != "done" {
		t.Fatalf("terminal event %q", last.Event)
	}
	// The send request completing means the item was acknowledged hop by
	// hop; the destination daemon must now list it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		last, err = clients[2].Request(ctx, RequestBody{Op: "deliveries"}, nil)
		if err != nil {
			t.Fatalf("deliveries: %v", err)
		}
		if strings.Contains(string(last.Result), `"fleet-item"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 2 never delivered the item: %s", last.Result)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestFleetSurvivesDaemonRestart kills one non-initiator daemon,
// restarts it with the same config, and requires a broadcast submitted
// afterwards to complete — the transport redials the restarted peer and
// the protocol absorbs the crash as message loss.
func TestFleetSurvivesDaemonRestart(t *testing.T) {
	base := Config{
		Protocol: "pif",
		Peers:    reservePorts(t, 3),
		Seed:     7,
	}
	daemons, clients := startFleet(t, base)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := clients[0].Request(ctx, RequestBody{
		Op: "broadcast", Params: json.RawMessage(`{"tag":"before","num":1}`),
	}, nil); err != nil {
		t.Fatalf("broadcast before restart: %v", err)
	}

	// Kill node 1 and restart it on the same addresses.
	if err := daemons[1].Close(); err != nil {
		t.Fatalf("close daemon 1: %v", err)
	}
	cfg := base
	cfg.Node = 1
	cfg.Listen = base.Peers[1]
	cfg.Control = daemons[1].ControlAddr()
	restarted, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("restart daemon 1: %v", err)
	}
	t.Cleanup(func() { restarted.Close() })
	go restarted.Serve()

	last, err := clients[0].Request(ctx, RequestBody{
		Op: "broadcast", Params: json.RawMessage(`{"tag":"after","num":2}`), TimeoutMS: 45_000,
	}, nil)
	if err != nil {
		t.Fatalf("broadcast after restart: %v", err)
	}
	var result struct {
		Feedbacks []struct {
			From int   `json:"from"`
			Num  int64 `json:"num"`
		} `json:"feedbacks"`
	}
	if err := json.Unmarshal(last.Result, &result); err != nil {
		t.Fatalf("result: %v", err)
	}
	if len(result.Feedbacks) != 2 {
		t.Fatalf("%d feedbacks after restart, want 2", len(result.Feedbacks))
	}
	for _, f := range result.Feedbacks {
		if f.Num != 2*1000+int64(f.From) {
			t.Fatalf("feedback %+v not derived from the post-restart broadcast", f)
		}
	}

	// The initiator's transport must have redialed the restarted peer.
	st, err := clients[0].Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Stats.Redials == 0 {
		t.Fatalf("no redials recorded at node 0 after a peer restart: %+v", st.Stats)
	}
}

// TestConfigValidation pins the config error paths.
func TestConfigValidation(t *testing.T) {
	good := Config{
		Node: 0, Protocol: "pif",
		Listen: "127.0.0.1:1", Control: "127.0.0.1:2",
		Peers: []string{"127.0.0.1:1", "127.0.0.1:3"},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"short fleet":  func(c *Config) { c.Peers = c.Peers[:1] },
		"node range":   func(c *Config) { c.Node = 2 },
		"bad protocol": func(c *Config) { c.Protocol = "paxos" },
		"no listen":    func(c *Config) { c.Listen = "" },
		"no control":   func(c *Config) { c.Control = "" },
		"unwired peer": func(c *Config) { c.Peers = []string{"127.0.0.1:1", ""} },
	} {
		cfg := good
		cfg.Peers = append([]string(nil), good.Peers...)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestFaultConfigRoundTrip pins the JSON fault-plan shape onto the
// façade plan, link overrides included.
func TestFaultConfigRoundTrip(t *testing.T) {
	raw := `{
		"seed": 9,
		"default": {"drop_rate": 0.1, "delay_rate": 0.05, "delay_ticks": 20},
		"links": [{"from": 0, "to": 1, "corrupt_rate": 0.5}],
		"crashes": [{"Proc": 1, "From": 0, "Until": 100}],
		"unit_ms": 2
	}`
	var fc FaultConfig
	if err := json.Unmarshal([]byte(raw), &fc); err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan := fc.Plan()
	if plan.Seed != 9 || plan.Default.DropRate != 0.1 || plan.Default.DelayTicks != 20 {
		t.Fatalf("default policy lost: %+v", plan)
	}
	if plan.Unit != 2*time.Millisecond {
		t.Fatalf("unit = %v", plan.Unit)
	}
	lf, ok := plan.Links[struct{ From, To int }{0, 1}]
	_ = lf
	_ = ok
	if got := plan.Links; len(got) != 1 {
		t.Fatalf("links: %+v", got)
	}
	for sel, f := range plan.Links {
		if sel.From != 0 || sel.To != 1 || f.CorruptRate != 0.5 {
			t.Fatalf("override lost: %+v -> %+v", sel, f)
		}
	}
	if len(plan.Crashes) != 1 || plan.Crashes[0].Until != 100 {
		t.Fatalf("crashes lost: %+v", plan.Crashes)
	}
}
