// Client side of the control API, used by cmd/snapctl and the e2e
// tests: plain HTTP against a daemon's control address, with /v1/request
// responses consumed line by line as they stream.
package deploy

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to one daemon's control address.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the daemon at addr (a host:port or an
// http:// URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), http: &http.Client{}}
}

// Status fetches /v1/status.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var st Status
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/status", nil)
	if err != nil {
		return st, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, httpError(resp)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", httpError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Request submits one protocol request and consumes the NDJSON stream:
// onLine (when non-nil) sees every line as it arrives, and the terminal
// line ("done" or "error") is returned. A protocol-level failure comes
// back as a non-nil error alongside the terminal line.
func (c *Client) Request(ctx context.Context, body RequestBody, onLine func(StreamLine)) (StreamLine, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return StreamLine{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/request", bytes.NewReader(payload))
	if err != nil {
		return StreamLine{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return StreamLine{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return StreamLine{}, httpError(resp)
	}
	var last StreamLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	seen := false
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return last, fmt.Errorf("deploy: bad stream line %q: %w", sc.Text(), err)
		}
		seen = true
		last = line
		if onLine != nil {
			onLine(line)
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	if !seen {
		return last, fmt.Errorf("deploy: empty response stream")
	}
	switch last.Event {
	case "done":
		return last, nil
	case "error":
		return last, fmt.Errorf("deploy: %s failed: %s", last.Op, last.Error)
	}
	return last, fmt.Errorf("deploy: stream ended at %q without a terminal line", last.Event)
}

func httpError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("deploy: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
}
