// Package deploy is the multi-host deployment plane: the snapd config
// file format, the daemon that hosts one fleet process over the TCP
// substrate behind an HTTP control API, and the client snapctl drives it
// with. One JSON config file fully determines a daemon; n config files
// that agree on the fleet-wide fields (everything except node, listen,
// and control) determine a fleet that behaves as one cluster — including
// seeded corruption, which each daemon applies to its full local stack
// set so the draws line up across the fleet.
package deploy

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	snapstab "github.com/snapstab/snapstab"
)

// Protocols lists the cluster types a daemon can host.
var Protocols = []string{"pif", "typed", "idl", "mutex", "reset", "snap", "forward"}

// Config is one daemon's config file.
type Config struct {
	// Node is the fleet process this daemon hosts.
	Node int `json:"node"`
	// Protocol selects the cluster type: pif, typed, idl, mutex, reset,
	// snap, or forward. Must agree across the fleet.
	Protocol string `json:"protocol"`
	// Listen is the transport listen address. It should resolve to the
	// same endpoint as Peers[Node], which is what the other daemons dial.
	Listen string `json:"listen"`
	// Control is the HTTP control/metrics listen address.
	Control string `json:"control"`
	// Peers maps every fleet process to its advertised transport address.
	// The length is the fleet size; must agree across the fleet.
	Peers []string `json:"peers"`
	// Topology routes over this graph: a family name (complete, ring,
	// line, star, tree, gnp:<p>) or a graph.txt path. Empty = the
	// protocol's native graph. Must agree across the fleet.
	Topology string `json:"topology,omitempty"`
	// Seed seeds the cluster (default 1). Must agree across the fleet.
	Seed uint64 `json:"seed,omitempty"`
	// Corrupt randomizes every protocol state at startup, before the
	// daemon serves requests — the fleet starts from an arbitrary
	// configuration. Must agree across the fleet.
	Corrupt bool `json:"corrupt,omitempty"`
	// CorruptSeed seeds the corruption draws (default: Seed). Must agree
	// across the fleet.
	CorruptSeed uint64 `json:"corrupt_seed,omitempty"`
	// Batch bounds how many wire frames one socket write may carry on
	// this daemon's transport (snapstab.WithBatch; 0 = the transport
	// default, 1 disables write amortization). A local performance knob:
	// it never changes the bytes on the wire, so daemons in one fleet may
	// set it differently.
	Batch int `json:"batch,omitempty"`
	// Faults installs a fault plan on the transport. Must agree across
	// the fleet for a coherent adversary (each daemon injects at its own
	// mailbox boundary).
	Faults *FaultConfig `json:"faults,omitempty"`
	// LogLevel selects the slog level: debug, info (default), warn,
	// error.
	LogLevel string `json:"log_level,omitempty"`
}

// FaultConfig is the JSON shape of a fault plan (snapstab.FaultPlan with
// link overrides as a list, since JSON has no struct keys, and the tick
// unit in milliseconds).
type FaultConfig struct {
	Seed       uint64                     `json:"seed,omitempty"`
	Default    LinkFaultsConfig           `json:"default,omitempty"`
	Links      []LinkOverride             `json:"links,omitempty"`
	Partitions []snapstab.PartitionWindow `json:"partitions,omitempty"`
	Crashes    []snapstab.CrashWindow     `json:"crashes,omitempty"`
	UnitMS     int64                      `json:"unit_ms,omitempty"`
}

// LinkFaultsConfig mirrors snapstab.LinkFaults with JSON tags.
type LinkFaultsConfig struct {
	DropRate    float64 `json:"drop_rate,omitempty"`
	DupRate     float64 `json:"dup_rate,omitempty"`
	ReorderRate float64 `json:"reorder_rate,omitempty"`
	DelayRate   float64 `json:"delay_rate,omitempty"`
	DelayTicks  int64   `json:"delay_ticks,omitempty"`
	CorruptRate float64 `json:"corrupt_rate,omitempty"`
}

// LinkOverride is one directed link's policy override.
type LinkOverride struct {
	From int `json:"from"`
	To   int `json:"to"`
	LinkFaultsConfig
}

func (l LinkFaultsConfig) plan() snapstab.LinkFaults {
	return snapstab.LinkFaults{
		DropRate:    l.DropRate,
		DupRate:     l.DupRate,
		ReorderRate: l.ReorderRate,
		DelayRate:   l.DelayRate,
		DelayTicks:  l.DelayTicks,
		CorruptRate: l.CorruptRate,
	}
}

// Plan converts the config shape to the façade's plan.
func (f *FaultConfig) Plan() snapstab.FaultPlan {
	p := snapstab.FaultPlan{
		Seed:       f.Seed,
		Default:    f.Default.plan(),
		Partitions: f.Partitions,
		Crashes:    f.Crashes,
		Unit:       time.Duration(f.UnitMS) * time.Millisecond,
	}
	if len(f.Links) > 0 {
		p.Links = make(map[snapstab.Link]snapstab.LinkFaults, len(f.Links))
		for _, o := range f.Links {
			p.Links[snapstab.Link{From: o.From, To: o.To}] = o.LinkFaultsConfig.plan()
		}
	}
	return p
}

// Load reads and validates a config file.
func Load(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("deploy: parse %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("deploy: %s: %w", path, err)
	}
	return cfg, nil
}

// Validate checks the fields a daemon cannot start without.
func (c Config) Validate() error {
	if len(c.Peers) < 2 {
		return fmt.Errorf("need at least 2 peers, got %d", len(c.Peers))
	}
	if c.Node < 0 || c.Node >= len(c.Peers) {
		return fmt.Errorf("node %d outside fleet of %d", c.Node, len(c.Peers))
	}
	ok := false
	for _, p := range Protocols {
		if p == c.Protocol {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("unknown protocol %q", c.Protocol)
	}
	if c.Listen == "" {
		return fmt.Errorf("listen address required")
	}
	if c.Control == "" {
		return fmt.Errorf("control address required")
	}
	for i, p := range c.Peers {
		if p == "" {
			return fmt.Errorf("peer %d has no address", i)
		}
	}
	if c.Batch < 0 {
		return fmt.Errorf("batch must be >= 0, got %d", c.Batch)
	}
	return nil
}

// corruptSeed returns the effective corruption seed.
func (c Config) corruptSeed() uint64 {
	if c.CorruptSeed != 0 {
		return c.CorruptSeed
	}
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

// options assembles the façade options the daemon's cluster is built
// with: the TCPHost substrate plus the fleet-wide settings. The resolved
// topology is returned for protocol validation.
func (c Config) options() ([]snapstab.Option, snapstab.Topology, error) {
	opts := []snapstab.Option{
		snapstab.WithSubstrate(snapstab.TCPHost(snapstab.TCPFleet{
			Self:   c.Node,
			Listen: c.Listen,
			Peers:  c.Peers,
		})),
	}
	if c.Seed != 0 {
		opts = append(opts, snapstab.WithSeed(c.Seed))
	}
	if c.Batch > 0 {
		opts = append(opts, snapstab.WithBatch(c.Batch))
	}
	var topo snapstab.Topology
	if c.Topology != "" {
		t, err := snapstab.ResolveTopology(c.Topology, len(c.Peers), c.Seed)
		if err != nil {
			return nil, topo, err
		}
		topo = t
		opts = append(opts, snapstab.WithTopology(topo))
	}
	if c.Faults != nil {
		opts = append(opts, snapstab.WithFaults(c.Faults.Plan()))
	}
	return opts, topo, nil
}
