// Package reset implements a snap-stabilizing global reset — the first
// application the paper names for PIF ("many fundamental protocols, e.g.,
// Reset, Snapshot, Leader Election, and Termination Detection, can be
// solved using a PIF-based solution", §4.1).
//
// A reset computation, requested at any process, drives every process to
// reinitialize its application state under a fresh epoch number and
// reports completion to the initiator only after every process
// acknowledged its reinitialization. Snap-stabilization is inherited from
// Protocol PIF (Theorem 2): no matter how corrupted the system is when
// the reset is requested, the decision certifies that every process
// executed the reset handler for this very epoch.
//
// The epoch counter itself is protocol state and can therefore be
// corrupted; what the protocol guarantees is relative consistency — all
// processes adopt the epoch value carried by the reset broadcast — not
// global monotonicity across corruptions, which no protocol can provide
// (the initial epoch is arbitrary by assumption).
package reset

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
)

// TagReset is the broadcast payload tag; the Num field carries the epoch.
const TagReset = "RESET"

// TagAck is the feedback payload tag; the Num field echoes the epoch the
// responder adopted.
const TagAck = "RESET-ACK"

// Handler reinitializes the application at one process for the given
// epoch. It runs inside the receive action, atomically.
type Handler func(epoch int64)

// Reset is one process's instance of the reset protocol.
type Reset struct {
	inst string
	self core.ProcID
	n    int

	// Request drives reset computations (input/output variable).
	Request core.ReqState
	// Epoch is the epoch of the last reset this process initiated or
	// adopted.
	Epoch int64
	// Acked[q] records the epoch q acknowledged during the current
	// computation; used by the initiator's decision check. Entry self
	// unused.
	Acked []int64

	// OnReset is the application's reinitialization hook; may be nil.
	OnReset Handler

	// PIF is the child broadcast machine (instance inst+"/pif").
	PIF *pif.PIF
}

var (
	_ core.Machine     = (*Reset)(nil)
	_ core.Snapshotter = (*Reset)(nil)
	_ core.Corruptible = (*Reset)(nil)
)

// New returns a reset machine for process self. PIF options (capacity
// bound) are forwarded to the child machine.
func New(inst string, self core.ProcID, n int, pifOpts ...pif.Option) *Reset {
	if n < 2 {
		panic(fmt.Sprintf("reset: need n >= 2, got %d", n))
	}
	r := &Reset{
		inst:    inst,
		self:    self,
		n:       n,
		Request: core.Done,
		Acked:   make([]int64, n),
	}
	r.PIF = pif.New(inst+"/pif", self, n, pif.Callbacks{
		OnBroadcast: r.onBroadcast,
		OnFeedback:  r.onFeedback,
	}, pifOpts...)
	return r
}

// Machines returns the stack fragment in text order.
func (r *Reset) Machines() core.Stack { return core.Stack{r, r.PIF} }

// Instance returns the protocol instance ID.
func (r *Reset) Instance() string { return r.inst }

// Invoke requests a global reset. Rejected while one is pending or in
// progress.
func (r *Reset) Invoke(env core.Env) bool {
	if r.Request != core.Done {
		return false
	}
	r.Request = core.Wait
	env.Emit(core.Event{Kind: core.EvRequest, Peer: -1, Instance: r.inst})
	return true
}

// Done reports whether no reset is requested or in progress.
func (r *Reset) Done() bool { return r.Request == core.Done }

// Step runs the internal actions in text order.
func (r *Reset) Step(env core.Env) bool {
	fired := false

	// A1: start — adopt a fresh epoch locally, reset the application,
	// and broadcast the epoch.
	if r.Request == core.Wait {
		r.Request = core.In
		r.Epoch++
		if r.OnReset != nil {
			r.OnReset(r.Epoch)
		}
		for q := range r.Acked {
			r.Acked[q] = -1
		}
		r.PIF.Reset(core.Payload{Tag: TagReset, Num: r.Epoch})
		env.Emit(core.Event{Kind: core.EvStart, Peer: -1, Instance: r.inst,
			Note: fmt.Sprintf("epoch=%d", r.Epoch)})
		fired = true
	}

	// A2: terminate when the PIF decided — every process acknowledged.
	if r.Request == core.In && r.PIF.Done() {
		r.Request = core.Done
		env.Emit(core.Event{Kind: core.EvDecide, Peer: -1, Instance: r.inst,
			Note: fmt.Sprintf("epoch=%d", r.Epoch)})
		fired = true
	}

	return fired
}

// onBroadcast handles an incoming reset: adopt the epoch, reinitialize,
// acknowledge.
func (r *Reset) onBroadcast(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
	if b.Tag != TagReset {
		// Initial-configuration garbage: acknowledge neutrally without
		// touching the application.
		return core.Payload{Tag: TagAck, Num: -1}
	}
	r.Epoch = b.Num
	if r.OnReset != nil {
		r.OnReset(b.Num)
	}
	return core.Payload{Tag: TagAck, Num: b.Num}
}

// onFeedback records the epoch each process acknowledged.
func (r *Reset) onFeedback(_ core.Env, from core.ProcID, f core.Payload) {
	if f.Tag == TagAck {
		r.Acked[from] = f.Num
	}
}

// Deliver consumes initial-configuration garbage addressed to the reset
// instance itself (the protocol communicates through its child PIF).
func (r *Reset) Deliver(core.Env, core.ProcID, core.Message) {}

// AllAcked reports whether every other process acknowledged the given
// epoch during the last computation (meaningful after a decision).
func (r *Reset) AllAcked(epoch int64) bool {
	for q := 0; q < r.n; q++ {
		if q == int(r.self) {
			continue
		}
		if r.Acked[q] != epoch {
			return false
		}
	}
	return true
}

// AppendState appends a canonical encoding of the machine state.
func (r *Reset) AppendState(dst []byte) []byte {
	dst = append(dst, 'R', byte(r.Request))
	for shift := 0; shift < 64; shift += 8 {
		dst = append(dst, byte(r.Epoch>>shift))
	}
	for q := 0; q < r.n; q++ {
		if q == int(r.self) {
			continue
		}
		for shift := 0; shift < 64; shift += 8 {
			dst = append(dst, byte(r.Acked[q]>>shift))
		}
	}
	return dst
}

// Corrupt overwrites every variable with random domain values (the child
// PIF corrupts itself as part of the stack).
func (r *Reset) Corrupt(rand core.Rand) {
	r.Request = core.ReqState(rand.Intn(core.NumReqStates))
	r.Epoch = int64(rand.Intn(1 << 12))
	for q := 0; q < r.n; q++ {
		if q == int(r.self) {
			continue
		}
		r.Acked[q] = int64(rand.Intn(1 << 12))
	}
}
