package reset

import (
	"testing"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
)

func build(t *testing.T, n int, opts ...sim.Option) (*sim.Network, []*Reset) {
	t.Helper()
	machines := make([]*Reset, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		machines[i] = New("reset", core.ProcID(i), n)
		stacks[i] = machines[i].Machines()
	}
	return sim.New(stacks, opts...), machines
}

func TestCleanResetReachesEveryone(t *testing.T) {
	t.Parallel()
	net, machines := build(t, 4, sim.WithSeed(3))
	applied := make([]int64, 4)
	for i := range machines {
		i := i
		machines[i].OnReset = func(epoch int64) { applied[i] = epoch }
	}
	if !machines[0].Invoke(net.Env(0)) {
		t.Fatal("Invoke rejected")
	}
	if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
		t.Fatal(err)
	}
	epoch := machines[0].Epoch
	for i, got := range applied {
		if got != epoch {
			t.Errorf("process %d applied epoch %d, want %d", i, got, epoch)
		}
	}
	if !machines[0].AllAcked(epoch) {
		t.Fatalf("initiator's acknowledgment record incomplete: %v", machines[0].Acked)
	}
}

func TestResetFromCorruptedConfiguration(t *testing.T) {
	t.Parallel()
	trials := 100
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial + 1)
		net, machines := build(t, 3, sim.WithSeed(seed), sim.WithLossRate(0.2))
		r := rng.New(rng.Mix(seed, 33))
		config.Corrupt(net, r, config.PIFSpecs("reset/pif", machines[0].PIF.FlagTop()), config.Options{})
		// Corrupted Request = In at peers can launch concurrent reset
		// computations whose epochs overwrite later state; the guarantee
		// of the STARTED computation is that every process EXECUTED the
		// handler with its epoch before the decision — record sets.
		applied := make([]map[int64]bool, 3)
		for i := range machines {
			i := i
			applied[i] = make(map[int64]bool)
			machines[i].OnReset = func(epoch int64) { applied[i][epoch] = true }
		}
		requested := false
		var epochAtStart int64
		err := net.RunUntil(func() bool {
			if !requested {
				if machines[1].Invoke(net.Env(1)) {
					requested = true
				}
				return false
			}
			if epochAtStart == 0 && machines[1].Request == core.In {
				epochAtStart = machines[1].Epoch
			}
			return epochAtStart != 0 && machines[1].Done()
		}, 5_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range machines {
			if !applied[i][epochAtStart] {
				t.Fatalf("trial %d: process %d never executed the reset handler for epoch %d (applied: %v)",
					trial, i, epochAtStart, applied[i])
			}
		}
		if !machines[1].AllAcked(epochAtStart) {
			t.Fatalf("trial %d: decision without full acknowledgment of epoch %d: %v",
				trial, epochAtStart, machines[1].Acked)
		}
	}
}

func TestGarbageBroadcastDoesNotResetApplication(t *testing.T) {
	t.Parallel()
	m := New("reset", 0, 2)
	resets := 0
	m.OnReset = func(int64) { resets++ }
	f := m.onBroadcast(nil, 1, core.Payload{Tag: "garbage", Num: 9})
	if resets != 0 {
		t.Fatal("garbage broadcast triggered the application handler")
	}
	if f.Tag != TagAck || f.Num != -1 {
		t.Fatalf("garbage acknowledged with %v, want neutral ack", f)
	}
}

func TestEpochAdoption(t *testing.T) {
	t.Parallel()
	m := New("reset", 1, 2)
	m.Epoch = 5
	m.onBroadcast(nil, 0, core.Payload{Tag: TagReset, Num: 42})
	if m.Epoch != 42 {
		t.Fatalf("epoch = %d after reset broadcast, want 42", m.Epoch)
	}
}

func TestRepeatedResetsIncrementEpoch(t *testing.T) {
	t.Parallel()
	net, machines := build(t, 2, sim.WithSeed(9))
	var last int64
	for round := 0; round < 4; round++ {
		requested := false
		err := net.RunUntil(func() bool {
			if !requested {
				requested = machines[0].Invoke(net.Env(0))
				return false
			}
			return machines[0].Done()
		}, 1_000_000)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if machines[0].Epoch <= last {
			t.Fatalf("round %d: epoch did not advance (%d -> %d)", round, last, machines[0].Epoch)
		}
		last = machines[0].Epoch
	}
}

func TestInvokeRejectedWhileBusy(t *testing.T) {
	t.Parallel()
	net, machines := build(t, 2)
	if !machines[0].Invoke(net.Env(0)) {
		t.Fatal("first Invoke rejected")
	}
	if machines[0].Invoke(net.Env(0)) {
		t.Fatal("second Invoke accepted while busy")
	}
}

func TestSnapshotDistinguishes(t *testing.T) {
	t.Parallel()
	a, b := New("reset", 0, 3), New("reset", 0, 3)
	if string(a.AppendState(nil)) != string(b.AppendState(nil)) {
		t.Fatal("identical machines encode differently")
	}
	b.Epoch = 7
	if string(a.AppendState(nil)) == string(b.AppendState(nil)) {
		t.Fatal("epoch change invisible in encoding")
	}
}

func TestCorruptInDomain(t *testing.T) {
	t.Parallel()
	m := New("reset", 0, 3)
	m.Corrupt(rng.New(5))
	if m.Request > core.Done {
		t.Fatalf("Request %v out of domain", m.Request)
	}
}

func TestConstructorValidation(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("New with n=1 did not panic")
		}
	}()
	New("reset", 0, 1)
}
