// Mux-mode driving: many independent clusters over one connection mesh.
// A Mux binds one bare node per process — no default group — and Attach
// installs each cluster as a fresh wire v3 group on every node, so many
// logical snap-stabilizing groups share n listeners, one set of
// persistent connections, and the vectored write path instead of each
// paying for its own mesh. Groups are isolated end to end: routing,
// observers, topology, fault plane, and counters are per group, and a
// frame for a group a node does not host is dropped before it can cross
// into another group's mailboxes.
package tcp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/snapstab/snapstab/internal/core"
)

// Mux hosts many core.Substrate instances over one set of TCP
// connections.
type Mux struct {
	nodes []*Node

	mu      sync.Mutex
	nextGid uint64
	closed  bool

	closeOnce sync.Once
}

// NewMux binds one loopback listener per process and starts the shared
// loops with no groups attached. Options must be node-level (mailbox,
// send queue, tick, step interval, backoff, write timeout); per-cluster
// options (topology, faults, observers) belong to Attach. The caller
// owns the mux and must Close it to release the listeners.
func NewMux(nProcs int, opts ...Option) (*Mux, error) {
	if nProcs < 2 {
		return nil, fmt.Errorf("tcp: need at least 2 processes, got %d", nProcs)
	}
	m := &Mux{nodes: make([]*Node, nProcs), nextGid: 1}
	addrs := make([]string, nProcs)
	for i := 0; i < nProcs; i++ {
		node, err := NewNode(core.ProcID(i), nil, "127.0.0.1:0", make([]string, nProcs), opts...)
		if err != nil {
			for _, prev := range m.nodes[:i] {
				prev.Stop()
			}
			return nil, fmt.Errorf("tcp: bind mux node %d: %w", i, err)
		}
		m.nodes[i] = node
		addrs[i] = node.Addr()
	}
	// Full wiring: per-group topologies restrict traffic at the message
	// level, so the connection mesh needs every address.
	for i, node := range m.nodes {
		for j, a := range addrs {
			if i != j {
				node.SetPeer(core.ProcID(j), a)
			}
		}
	}
	for _, node := range m.nodes {
		node.Start()
	}
	return m, nil
}

// N returns the number of processes.
func (m *Mux) N() int { return len(m.nodes) }

// Addrs returns every node's bound local address.
func (m *Mux) Addrs() []string {
	out := make([]string, len(m.nodes))
	for i, node := range m.nodes {
		out[i] = node.Addr()
	}
	return out
}

// Attach installs one cluster — one stack per process — as a fresh
// group on every node and returns its substrate view. Options here are
// per-cluster (WithTopology, WithFaults, WithObserver); node-level
// options are rejected, they were fixed at NewMux. Attach may be called
// any time while the mux runs; a cluster's fault schedule starts at its
// own attach instant.
func (m *Mux) Attach(stacks []core.Stack, opts ...Option) (*MuxCluster, error) {
	if len(stacks) != len(m.nodes) {
		return nil, fmt.Errorf("tcp: %d stacks for a mux of %d processes", len(stacks), len(m.nodes))
	}
	topo, fault, obs, err := clusterOptions(opts)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("tcp: mux closed")
	}
	gid := m.nextGid
	m.nextGid++
	m.mu.Unlock()

	c := &MuxCluster{mux: m, gid: gid, groups: make([]*group, len(m.nodes)), done: make(chan struct{})}
	epoch := time.Now()
	for i, node := range m.nodes {
		g, err := buildGroup(gid, stacks[i], topo, fault, obs, len(m.nodes), node.self)
		if err != nil {
			for _, prev := range m.nodes[:i] {
				prev.removeGroup(gid)
			}
			return nil, err
		}
		g.epoch = epoch
		c.groups[i] = g
		node.addGroup(g)
	}
	return c, nil
}

// clusterOptions extracts the per-cluster settings from opts, rejecting
// anything node-level: the connection mesh those options configure is
// shared by every attached cluster.
func clusterOptions(opts []Option) (*core.Topology, *core.FaultPlan, core.MultiObserver, error) {
	var s Node
	for _, o := range opts {
		o(&s)
	}
	if s.mailboxSlots != 0 || s.sendSlots != 0 || s.vecCap != 0 || s.tick != 0 ||
		s.stepInterval != 0 || s.dialMin != 0 || s.dialMax != 0 || s.writeTimeout != 0 {
		return nil, nil, nil, fmt.Errorf("tcp: node-level option per attached cluster; set it on NewMux")
	}
	return s.topo0, s.fault0, s.obs0, nil
}

// Close stops every node, releasing loops, listeners, and connections —
// and with them every attached cluster. Idempotent.
func (m *Mux) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.closeOnce.Do(func() {
		for _, node := range m.nodes {
			node.Stop()
		}
	})
	return nil
}

// MuxCluster is one cluster hosted on a Mux: a core.Substrate whose
// processes share their connections and loops with every other attached
// cluster, isolated from them by the wire v3 group id.
type MuxCluster struct {
	mux    *Mux
	gid    uint64
	groups []*group // per process

	closeOnce sync.Once
	done      chan struct{}
}

var (
	_ core.Substrate        = (*MuxCluster)(nil)
	_ core.TransportStatser = (*MuxCluster)(nil)
)

// N returns the number of processes.
func (c *MuxCluster) N() int { return len(c.groups) }

// Group returns the wire v3 group id this cluster's traffic carries.
func (c *MuxCluster) Group() uint64 { return c.gid }

// Do runs f under process p's action mutex with this cluster's
// environment.
func (c *MuxCluster) Do(p core.ProcID, f func(env core.Env)) {
	c.mux.nodes[p].doGroup(c.groups[p], f)
}

// Await evaluates cond under process p's action mutex until it holds,
// polling at millisecond cadence (deliveries are event-driven; the poll
// bounds only external observation latency). It returns nil, ctx.Err(),
// or ErrStopped.
func (c *MuxCluster) Await(ctx context.Context, p core.ProcID, cond func(env core.Env) bool) error {
	node := c.mux.nodes[p]
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	for {
		ok := false
		c.Do(p, func(env core.Env) { ok = cond(env) })
		if ok {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.done:
			return ErrStopped
		case <-node.stop:
			return ErrStopped
		case <-ticker.C:
		}
	}
}

// NodeStats returns every process's transport counters for this
// cluster. The message counters are this cluster's own; the frame,
// syscall, redial, and link counters are per socket, shared with the
// other attached clusters.
func (c *MuxCluster) NodeStats() []Stats {
	out := make([]Stats, len(c.groups))
	for i, g := range c.groups {
		out[i] = c.mux.nodes[i].groupStats(g)
	}
	return out
}

// TransportStats implements core.TransportStatser for this cluster.
func (c *MuxCluster) TransportStats() []core.TransportStats {
	out := make([]core.TransportStats, len(c.groups))
	for i, g := range c.groups {
		out[i] = c.mux.nodes[i].transportStats(g)
	}
	return out
}

// Close detaches the cluster from every node: its boxed mail is
// discarded, subsequent frames for its group id are dropped, and the
// mux keeps running for its siblings. Idempotent.
func (c *MuxCluster) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		for _, node := range c.mux.nodes {
			node.removeGroup(c.gid)
		}
	})
	return nil
}
