// Substrate-mode driving, in two shapes. Cluster assembles one Node per
// stack on loopback listeners — the TCP twin of udp.Cluster, used by the
// façade's TCP() substrate and the tests. Host runs ONE real node of a
// fleet whose other processes live in other OS processes (snapd daemons
// on other hosts): it still holds all n stacks so that seeded operations
// (CorruptEverything) stay deterministic fleet-wide, but only stacks[self]
// is driven by a transport; the rest are inert local copies.
package tcp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/snapstab/snapstab/internal/core"
)

// ErrStopped is returned by Await when the substrate was closed before
// the condition held.
var ErrStopped = errors.New("tcp: stopped")

// ErrRemoteProcess is returned by Host.Await for any process other than
// the hosted one: a daemon can only observe its own process; requests at
// other processes belong to their daemons.
var ErrRemoteProcess = errors.New("tcp: process is hosted by another daemon")

// Cluster is a set of TCP nodes on the loopback interface, one per
// protocol stack, fully wired and started.
type Cluster struct {
	nodes     []*Node
	closeOnce sync.Once
}

var _ core.Substrate = (*Cluster)(nil)
var _ core.TransportStatser = (*Cluster)(nil)

// NewCluster binds one loopback listener per stack on port 0, wires the
// learned addresses along the topology's edges, and starts every node.
func NewCluster(stacks []core.Stack, opts ...Option) (*Cluster, error) {
	n := len(stacks)
	if n < 2 {
		return nil, fmt.Errorf("tcp: need at least 2 processes, got %d", n)
	}
	c := &Cluster{nodes: make([]*Node, n)}
	for i, s := range stacks {
		node, err := NewNode(core.ProcID(i), s, "127.0.0.1:0", make([]string, n), opts...)
		if err != nil {
			for _, prev := range c.nodes[:i] {
				prev.Stop()
			}
			return nil, fmt.Errorf("tcp: bind node %d: %w", i, err)
		}
		c.nodes[i] = node
	}
	// Wire addresses along edges only: under a topology a node simply
	// never learns where its non-neighbours live, mirroring a deployment
	// where each host is configured with its neighbour list.
	topo := c.nodes[0].topo0
	for i, node := range c.nodes {
		for j, other := range c.nodes {
			if i == j {
				continue
			}
			if topo != nil && !topo.HasEdge(core.ProcID(i), core.ProcID(j)) {
				continue
			}
			node.SetPeer(core.ProcID(j), other.Addr())
		}
	}
	for _, node := range c.nodes {
		node.Start()
	}
	return c, nil
}

// N returns the number of nodes.
func (c *Cluster) N() int { return len(c.nodes) }

// Addrs returns every node's bound local address.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.nodes))
	for i, node := range c.nodes {
		out[i] = node.Addr()
	}
	return out
}

// NodeStats returns every node's transport counters.
func (c *Cluster) NodeStats() []Stats {
	out := make([]Stats, len(c.nodes))
	for i, node := range c.nodes {
		out[i] = node.Stats()
	}
	return out
}

// TransportStats implements core.TransportStatser: one snapshot per
// node, with per-directed-link counters.
func (c *Cluster) TransportStats() []core.TransportStats {
	out := make([]core.TransportStats, len(c.nodes))
	for i, node := range c.nodes {
		out[i] = node.transportStats(node.g0)
	}
	return out
}

// Do runs f under node p's action mutex with its environment.
func (c *Cluster) Do(p core.ProcID, f func(env core.Env)) {
	c.nodes[p].Do(f)
}

// Await evaluates cond under node p's action mutex until it holds,
// polling at millisecond cadence (deliveries are event-driven; the poll
// bounds only external observation latency). It returns nil, ctx.Err(),
// or ErrStopped.
func (c *Cluster) Await(ctx context.Context, p core.ProcID, cond func(env core.Env) bool) error {
	return awaitNode(ctx, c.nodes[p], cond)
}

func awaitNode(ctx context.Context, node *Node, cond func(env core.Env) bool) error {
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	for {
		ok := false
		node.Do(func(env core.Env) { ok = cond(env) })
		if ok {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-node.stop:
			return ErrStopped
		case <-ticker.C:
		}
	}
}

// Close stops every node, releasing loops and sockets. Idempotent.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		for _, node := range c.nodes {
			node.Stop()
		}
	})
	return nil
}

// HostConfig describes one daemon's place in a multi-host fleet.
type HostConfig struct {
	// Self is the process this daemon hosts.
	Self core.ProcID
	// Listen is the local listen address (use port 0 to let the kernel
	// pick; the bound address is available via Host.Addr).
	Listen string
	// Peers maps every process ID to its advertised address. Entry Self
	// is ignored. An empty entry leaves that link unwired: sends to it
	// vanish silently, as to an unwired UDP peer.
	Peers []string
}

// Host is a core.Substrate hosting exactly one process of an n-process
// fleet over TCP. The other processes run in other daemons; their stacks
// exist here only as inert local copies, kept so that seeded whole-
// cluster operations (corruption draws in particular) consume the same
// randomness at the same stack positions in every daemon — a fleet of n
// daemons sharing a seed perturbs its n real processes exactly as one
// local cluster would.
type Host struct {
	node      *Node
	self      core.ProcID
	stacks    []core.Stack
	deadMu    []sync.Mutex // one per inert stack; index Self is unused
	closeOnce sync.Once
}

var _ core.Substrate = (*Host)(nil)
var _ core.TransportStatser = (*Host)(nil)

// NewHost binds the hosted process's listener and starts it. The caller
// owns the host and must Close it.
func NewHost(cfg HostConfig, stacks []core.Stack, opts ...Option) (*Host, error) {
	n := len(stacks)
	if n < 2 {
		return nil, fmt.Errorf("tcp: need at least 2 processes, got %d", n)
	}
	if int(cfg.Self) < 0 || int(cfg.Self) >= n {
		return nil, fmt.Errorf("tcp: self %d outside fleet of %d", cfg.Self, n)
	}
	if len(cfg.Peers) != n {
		return nil, fmt.Errorf("tcp: %d peer addresses for a fleet of %d", len(cfg.Peers), n)
	}
	listen := cfg.Listen
	if listen == "" {
		listen = ":0"
	}
	node, err := NewNode(cfg.Self, stacks[cfg.Self], listen, cfg.Peers, opts...)
	if err != nil {
		return nil, err
	}
	h := &Host{
		node:   node,
		self:   cfg.Self,
		stacks: stacks,
		deadMu: make([]sync.Mutex, n),
	}
	node.Start()
	return h, nil
}

// N returns the fleet size (not the number of local processes).
func (h *Host) N() int { return len(h.stacks) }

// Self returns the hosted process.
func (h *Host) Self() core.ProcID { return h.self }

// Addr returns the hosted node's bound listen address.
func (h *Host) Addr() string { return h.node.Addr() }

// NodeStats returns the hosted node's transport counters.
func (h *Host) NodeStats() Stats { return h.node.Stats() }

// deadEnv is the environment handed to Do calls against inert remote
// stacks: sends vanish (the stack is not connected to anything) and
// events are discarded.
type deadEnv struct {
	self core.ProcID
	n    int
}

func (d deadEnv) Self() core.ProcID                   { return d.self }
func (d deadEnv) N() int                              { return d.n }
func (d deadEnv) Send(to core.ProcID, m core.Message) {}
func (d deadEnv) Emit(ev core.Event)                  {}

// Do runs f atomically at process p. For the hosted process this is the
// real node's action mutex; for any other process it runs against the
// inert local stack copy with a detached environment — state mutations
// (seeded corruption) land, sends vanish.
func (h *Host) Do(p core.ProcID, f func(env core.Env)) {
	if p == h.self {
		h.node.Do(f)
		return
	}
	h.deadMu[p].Lock()
	f(deadEnv{self: p, n: len(h.stacks)})
	h.deadMu[p].Unlock()
}

// Await observes the hosted process like Cluster.Await; for any other
// process it fails immediately with ErrRemoteProcess — that process's
// daemon is the only place its requests can be issued and observed.
func (h *Host) Await(ctx context.Context, p core.ProcID, cond func(env core.Env) bool) error {
	if p != h.self {
		return fmt.Errorf("%w: %d (this daemon hosts %d)", ErrRemoteProcess, p, h.self)
	}
	return awaitNode(ctx, h.node, cond)
}

// TransportStats returns one entry per fleet process: real counters at
// the hosted index, zero values elsewhere (those counters live in the
// other daemons).
func (h *Host) TransportStats() []core.TransportStats {
	out := make([]core.TransportStats, len(h.stacks))
	out[h.self] = h.node.transportStats(h.node.g0)
	return out
}

// Close stops the hosted node. Idempotent.
func (h *Host) Close() error {
	h.closeOnce.Do(func() { h.node.Stop() })
	return nil
}
