package tcp

import (
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
)

// pifStacks builds one PIF stack per process for mux tests.
func pifStacks(n int) ([]core.Stack, []*pif.PIF) {
	machines := make([]*pif.PIF, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		self := core.ProcID(i)
		machines[i] = pif.New("pif", self, n, pif.Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return core.Payload{Tag: "ack", Num: b.Num*10 + int64(self)}
			},
		}, pif.WithCapacityBound(DefaultAssumedCapacity))
		stacks[i] = core.Stack{machines[i]}
	}
	return stacks, machines
}

func muxBroadcast(t *testing.T, c *MuxCluster, machines []*pif.PIF, token core.Payload) {
	t.Helper()
	invoked := waitFor(t, 20*time.Second, func() bool {
		var ok bool
		c.Do(0, func(env core.Env) { ok = machines[0].Invoke(env, token) })
		return ok
	})
	if !invoked {
		t.Fatal("Invoke never accepted")
	}
	ok := waitFor(t, 30*time.Second, func() bool {
		var done bool
		c.Do(0, func(core.Env) { done = machines[0].Done() && machines[0].BMes.Equal(token) })
		return done
	})
	if !ok {
		t.Fatalf("broadcast %v over the TCP mux did not complete", token)
	}
}

// TestTCPMuxHostsIndependentClusters runs two PIF clusters over one
// connection mesh and checks both complete with their own tokens: group
// routing works over v3 count=1 frames on a shared stream.
func TestTCPMuxHostsIndependentClusters(t *testing.T) {
	// Not parallel: concurrent clusters share the loopback path.
	const n = 3
	m, err := NewMux(n, WithDialBackoff(time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })

	stacksA, machA := pifStacks(n)
	stacksB, machB := pifStacks(n)
	ca, err := m.Attach(stacksA)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := m.Attach(stacksB)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Group() == cb.Group() || ca.Group() == 0 {
		t.Fatalf("group ids %d and %d must be distinct and nonzero", ca.Group(), cb.Group())
	}
	muxBroadcast(t, ca, machA, core.Payload{Tag: "a", Num: 1})
	muxBroadcast(t, cb, machB, core.Payload{Tag: "b", Num: 2})

	sa, sb := ca.NodeStats(), cb.NodeStats()
	if sa[0].Sends == 0 || sb[0].Sends == 0 {
		t.Fatalf("per-cluster Sends: a=%d b=%d, want both > 0", sa[0].Sends, sb[0].Sends)
	}
	// The shared stream moved both clusters' frames; the socket-level
	// frame counter is common to both views.
	if sa[0].SendFrames == 0 || sa[0].SendFrames != sb[0].SendFrames {
		t.Fatalf("socket-level SendFrames differ across views: a=%d b=%d", sa[0].SendFrames, sb[0].SendFrames)
	}
}

// TestTCPMuxFaultIsolation: cluster A runs under an aggressive fault
// plan while cluster B runs clean on the same connections; B must see
// zero injected faults.
func TestTCPMuxFaultIsolation(t *testing.T) {
	// Not parallel: shares the loopback path.
	const n = 2
	m, err := NewMux(n, WithDialBackoff(time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })

	plan := &core.FaultPlan{
		Seed: 23,
		Default: core.LinkFaults{
			DropRate:    0.20,
			CorruptRate: 0.20,
			DupRate:     0.10,
		},
	}
	stacksA, machA := pifStacks(n)
	stacksB, machB := pifStacks(n)
	ca, err := m.Attach(stacksA, WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := m.Attach(stacksB)
	if err != nil {
		t.Fatal(err)
	}
	muxBroadcast(t, ca, machA, core.Payload{Tag: "a", Num: 5})
	muxBroadcast(t, cb, machB, core.Payload{Tag: "b", Num: 6})

	var faultsA, faultsB int64
	for _, s := range ca.NodeStats() {
		faultsA += s.Faults.Total()
	}
	for _, s := range cb.NodeStats() {
		faultsB += s.Faults.Total()
	}
	if faultsA == 0 {
		t.Fatal("cluster A's fault plan injected nothing")
	}
	if faultsB != 0 {
		t.Fatalf("clean cluster B saw %d injected faults: fault plane leaked across groups", faultsB)
	}
}

// TestTCPMuxClusterCloseDetaches: closing one cluster leaves its
// siblings running on the shared connections.
func TestTCPMuxClusterCloseDetaches(t *testing.T) {
	// Not parallel: shares the loopback path.
	const n = 2
	m, err := NewMux(n, WithDialBackoff(time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	stacksA, machA := pifStacks(n)
	stacksB, machB := pifStacks(n)
	ca, err := m.Attach(stacksA)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := m.Attach(stacksB)
	if err != nil {
		t.Fatal(err)
	}
	muxBroadcast(t, ca, machA, core.Payload{Tag: "a", Num: 1})
	if err := ca.Close(); err != nil {
		t.Fatal(err)
	}
	muxBroadcast(t, cb, machB, core.Payload{Tag: "b", Num: 2})
}

// TestTCPMuxRejectsNodeLevelAttachOptions: connection-level knobs are
// fixed at NewMux; passing them per cluster must fail loudly.
func TestTCPMuxRejectsNodeLevelAttachOptions(t *testing.T) {
	t.Parallel()
	m, err := NewMux(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	stacks, _ := pifStacks(2)
	if _, err := m.Attach(stacks, WithMailbox(4)); err == nil {
		t.Fatal("WithMailbox accepted per attached cluster")
	}
	if _, err := m.Attach(stacks, WithSendQueue(4)); err == nil {
		t.Fatal("WithSendQueue accepted per attached cluster")
	}
}
