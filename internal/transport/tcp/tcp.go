// Package tcp runs protocol stacks over persistent TCP connections — the
// multi-host deployment substrate. Where the UDP transport demonstrates
// the paper's model on raw datagrams, this transport is the serving
// layer: nodes on different machines dial each other, stream
// length-prefixed wire-v2 frames, and survive connection loss with
// exponential-backoff redial, so a snapd fleet can span real hosts.
//
// # Channel semantics on TCP
//
// TCP provides reliable in-order delivery per connection — but the
// model's channels are lossy with a KNOWN capacity bound, and the
// transport deliberately restores both properties at its edges:
//
//   - each directed link (p -> q) is one connection dialed by p, fed
//     through a bounded outbound queue; a send finding the queue full is
//     dropped at the sender (core.EvSendLost), and a send caught by a
//     dead or timed-out connection is dropped in transit;
//   - each (sender, instance) pair gets a bounded mailbox at the
//     receiver; a frame arriving at a full mailbox is dropped
//     (lose-on-full, the model's rule) and reported as core.EvLose;
//   - AssumedCapacity reports the bound a protocol stack should declare
//     (the handshake flag domain grows linearly in it, and must stay
//     within the wire format's one-byte flag fields).
//
// Connection loss is therefore just message loss, which the protocols
// tolerate by design: the retransmitting action A2 keeps fresh copies
// coming while the writer redials, and snap-stabilization holds across a
// peer's crash and restart without any connection-level recovery
// protocol.
//
// # Dial/accept lifecycle
//
// Each node listens on one TCP address and runs one writer goroutine per
// outgoing link. The writer owns the link's connection: it dials with
// exponential backoff (jitter-free, bounded), identifies itself with a
// hello frame, streams frames, and on any write error closes the
// connection and redials. The accept loop spawns one reader per inbound
// connection; the reader validates the hello (peer index, topology edge,
// and — when the peer's address is configured — the source host) and
// then moves frames into the bounded mailboxes. A peer restart simply
// kills both directions: the reader sees EOF and exits, the writer's
// next write fails and it redials until the new process accepts.
//
// # Concurrency structure
//
// The action mutex / mailbox lock split of the UDP transport (DESIGN.md
// §7) carries over: readers append under the mailbox lock and signal a
// wakeup; the activation loop swaps the mailbox map and delivers —
// running any resulting sends — under the action mutex only. Sends
// enqueue encoded frames and never block: a blocking socket write can
// only stall its own link's writer goroutine, never a protocol action.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/wire"
)

// DefaultAssumedCapacity is the per-link capacity bound the transport is
// configured for by default: outbound queue plus mailbox slots plus a
// conservative allowance for socket-buffered frames. The protocol flag
// domain is 2c+2 values and must fit the wire format's one-byte flag
// fields, so the bound must stay <= 126.
const DefaultAssumedCapacity = 64

// Frame format: a 4-byte big-endian length prefix followed by one
// wire-encoded message (version 1 or 2). maxFrame bounds the declared
// length against memory exhaustion from a malformed or hostile peer; a
// violation is a protocol error and closes the connection.
const maxFrame = 2*wire.MaxBlobLen + 4<<10

// helloInstance marks the identification frame that opens every dialed
// connection: a regular wire message whose B.Num carries the dialer's
// process index. It is consumed by the transport and never delivered.
const helloInstance = "tcp/hello"

// tcpFaultSalt namespaces this substrate's injector seeds within the
// plan's rng.Mix hierarchy (sim, runtime, and udp use their own salts).
const tcpFaultSalt = 0x7c

// Option configures a Node.
type Option func(*Node)

// WithMailbox sets the per-(sender, instance) mailbox size (default 8).
func WithMailbox(slots int) Option {
	return func(n *Node) { n.mailboxSlots = slots }
}

// WithSendQueue sets the per-link outbound queue length (default 32). A
// send finding the queue full — a dead link under retransmission, a
// backlogged connection — is dropped at the sender, the bounded-capacity
// rule applied to the transport's own buffering.
func WithSendQueue(slots int) Option {
	return func(n *Node) { n.sendSlots = slots }
}

// WithTick sets the fallback mailbox sweep interval (default 1ms).
// Mailbox drains are notification-driven; the sweep is a safety net and
// the cadence at which delayed fault-plan messages are surfaced.
func WithTick(d time.Duration) Option {
	return func(n *Node) { n.tick = d }
}

// WithStepInterval sets the pacing of internal protocol actions (default
// 2ms) — the retransmission interval, exactly as on UDP.
func WithStepInterval(d time.Duration) Option {
	return func(n *Node) { n.stepInterval = d }
}

// WithDialBackoff sets the redial backoff range (default 25ms..1s): the
// first redial after a connection loss waits min, doubling up to max.
func WithDialBackoff(min, max time.Duration) Option {
	return func(n *Node) { n.dialMin, n.dialMax = min, max }
}

// WithWriteTimeout bounds every connect and frame write (default 2s). A
// write that cannot complete within it is treated as a lost message and
// a lost connection.
func WithWriteTimeout(d time.Duration) Option {
	return func(n *Node) { n.writeTimeout = d }
}

// WithObserver subscribes an event observer. Callbacks arrive
// concurrently from reader goroutines (mailbox-full EvLose), writer
// goroutines (EvSendLost on dead connections), and the activation loop,
// so the observer must be goroutine-safe.
func WithObserver(o core.Observer) Option {
	return func(n *Node) { n.observers = append(n.observers, o) }
}

// WithTopology declares the communication graph: sends to non-neighbours
// are dropped (and counted) at the sender, inbound connections from
// non-neighbours are rejected at the hello, and the installed fault plan
// is validated against the edge set. The default (nil) is the complete
// graph.
func WithTopology(t *core.Topology) Option {
	return func(n *Node) { n.topo = t }
}

// WithFaults installs a fault-injection plan (see core.FaultPlan),
// interposed at the mailbox boundary exactly as on UDP: every decoded
// frame from a known peer passes the node's injector before it is boxed,
// which may drop, duplicate, corrupt, reorder, or delay it, honor
// partition windows, and silence the node inside crash windows (no
// internal actions, no mailbox drains, arrivals consumed). The injector
// is seeded rng.Mix(plan.Seed, salt, self); schedule windows are
// measured in plan.Unit ticks of wall time from Start. TCP's own
// connection losses compose underneath the plan.
func WithFaults(plan *core.FaultPlan) Option {
	return func(n *Node) { n.fault = plan }
}

// link is one outgoing directed edge: a bounded queue of encoded frames
// drained by a writer goroutine that owns the connection lifecycle.
type link struct {
	peer core.ProcID
	addr string
	q    chan []byte
}

// Node is one process bound to a TCP listener.
type Node struct {
	self         core.ProcID
	stack        core.Stack
	routes       map[string]core.Machine
	topo         *core.Topology
	ln           net.Listener
	peerAddrs    []string
	mailboxSlots int
	sendSlots    int
	tick         time.Duration
	stepInterval time.Duration
	dialMin      time.Duration
	dialMax      time.Duration
	writeTimeout time.Duration
	observers    core.MultiObserver

	// mu is the action mutex: it makes stack actions (Step, Deliver, Do)
	// atomic. Sends performed under it only encode and enqueue — socket
	// writes happen on the writer goroutines — so no protocol action ever
	// blocks on the network.
	mu sync.Mutex

	out []*link // indexed by peer; nil for self, unwired, or non-neighbour

	// mbMu guards the double-buffered mailboxes (DESIGN.md §7) and is
	// never held across socket operations or protocol actions.
	mbMu      sync.Mutex
	mailboxes map[mailKey][]core.Message
	spare     map[mailKey][]core.Message
	boxed     int
	mail      chan struct{}

	sends        atomic.Int64
	recvs        atomic.Int64
	sendDrops    atomic.Int64
	mailboxDrops atomic.Int64
	redials      atomic.Int64
	linkSent     []atomic.Int64
	linkRecvd    []atomic.Int64
	linkDropped  []atomic.Int64

	// injMu guards the injector: unlike UDP's single receive loop, TCP
	// has one reader per inbound connection, so the (not goroutine-safe)
	// injector needs its own lock.
	injMu     sync.Mutex
	fault     *core.FaultPlan
	inj       *core.Injector
	faultUnit time.Duration
	epoch     time.Time // set by Start, before the loops launch

	// connMu guards the accepted-connection registry used for teardown:
	// Stop closes every registered connection to unblock its reader.
	connMu   sync.Mutex
	accepted map[net.Conn]struct{}
	closed   bool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

type mailKey struct {
	from     core.ProcID
	instance string
}

// Stats counts transport-level events. All counters are safe to read
// concurrently with the node's loops.
type Stats struct {
	// Sends counts messages accepted into an outbound link queue (and
	// therefore into the model's channel).
	Sends int64
	// Recvs counts frames accepted into a mailbox.
	Recvs int64
	// SendDrops counts messages lost at the sender: sends to
	// non-neighbours, unencodable payloads, full outbound queues, and
	// writes caught by a dead or timed-out connection.
	SendDrops int64
	// MailboxDrops counts frames dropped at a full receive mailbox (the
	// model's lose-on-full rule, reported as core.EvLose).
	MailboxDrops int64
	// Redials counts connection establishments beyond each link's first —
	// the dial/accept lifecycle recovering from a lost connection.
	Redials int64
	// Links holds per-directed-link counters for every peer.
	Links []core.LinkStats
	// Faults counts the faults injected at this node's mailbox boundary
	// by the installed FaultPlan; zero without one.
	Faults core.FaultStats
}

// Stats returns a snapshot of the transport counters.
func (n *Node) Stats() Stats {
	s := Stats{
		Sends:        n.sends.Load(),
		Recvs:        n.recvs.Load(),
		SendDrops:    n.sendDrops.Load(),
		MailboxDrops: n.mailboxDrops.Load(),
		Redials:      n.redials.Load(),
	}
	for p := range n.linkSent {
		if core.ProcID(p) == n.self {
			continue
		}
		s.Links = append(s.Links, core.LinkStats{
			Peer:     core.ProcID(p),
			Sent:     n.linkSent[p].Load(),
			Received: n.linkRecvd[p].Load(),
			Dropped:  n.linkDropped[p].Load(),
		})
	}
	if n.inj != nil {
		n.injMu.Lock()
		s.Faults = n.inj.Stats()
		n.injMu.Unlock()
	}
	return s
}

// NewNode binds process self to laddr. peers maps every process ID
// (including self, whose entry is ignored) to its address; empty entries
// may be wired later with SetPeer, before Start.
func NewNode(self core.ProcID, stack core.Stack, laddr string, peers []string, opts ...Option) (*Node, error) {
	if int(self) >= len(peers) || self < 0 {
		return nil, fmt.Errorf("tcp: self %d outside peer list of %d", self, len(peers))
	}
	ln, err := net.Listen("tcp", laddr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %q: %w", laddr, err)
	}
	n := &Node{
		self:         self,
		stack:        stack,
		routes:       stack.ByInstance(),
		ln:           ln,
		peerAddrs:    append([]string(nil), peers...),
		mailboxSlots: 8,
		sendSlots:    32,
		tick:         time.Millisecond,
		stepInterval: 2 * time.Millisecond,
		dialMin:      25 * time.Millisecond,
		dialMax:      time.Second,
		writeTimeout: 2 * time.Second,
		mailboxes:    make(map[mailKey][]core.Message),
		spare:        make(map[mailKey][]core.Message),
		mail:         make(chan struct{}, 1),
		accepted:     make(map[net.Conn]struct{}),
		stop:         make(chan struct{}),
		linkSent:     make([]atomic.Int64, len(peers)),
		linkRecvd:    make([]atomic.Int64, len(peers)),
		linkDropped:  make([]atomic.Int64, len(peers)),
	}
	for _, opt := range opts {
		opt(n)
	}
	fail := func(err error) (*Node, error) {
		ln.Close()
		return nil, err
	}
	if n.mailboxSlots < 1 || n.sendSlots < 1 {
		return fail(fmt.Errorf("tcp: invalid mailbox %d / send queue %d", n.mailboxSlots, n.sendSlots))
	}
	if n.dialMin <= 0 || n.dialMax < n.dialMin || n.writeTimeout <= 0 {
		return fail(fmt.Errorf("tcp: invalid backoff %v..%v / write timeout %v", n.dialMin, n.dialMax, n.writeTimeout))
	}
	if n.topo != nil && n.topo.N() != len(peers) {
		return fail(fmt.Errorf("tcp: topology over %d processes, %d peers", n.topo.N(), len(peers)))
	}
	if n.fault != nil {
		if err := n.fault.Validate(); err != nil {
			return fail(fmt.Errorf("tcp: %w", err))
		}
		if err := n.fault.ValidateTopology(n.topo); err != nil {
			return fail(fmt.Errorf("tcp: %w", err))
		}
		n.faultUnit = n.fault.TickUnit()
		n.inj = core.NewInjector(n.fault, rng.New(rng.Mix(n.fault.Seed, tcpFaultSalt, uint64(self))))
	}
	return n, nil
}

// Addr returns the bound local address (useful with port 0).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// SetPeer sets the address of peer id after construction, enabling
// two-phase setup: bind every listener with port 0 first, then wire the
// learned addresses. Must be called before Start.
func (n *Node) SetPeer(id core.ProcID, addr string) { n.peerAddrs[id] = addr }

// Start launches the accept and activation loops and one writer per
// wired outgoing link. Peers must not change after Start.
func (n *Node) Start() {
	n.epoch = time.Now() // fault-schedule tick zero
	n.out = make([]*link, len(n.peerAddrs))
	for p, addr := range n.peerAddrs {
		id := core.ProcID(p)
		if id == n.self || addr == "" {
			continue
		}
		if n.topo != nil && !n.topo.HasEdge(n.self, id) {
			// A wired address that is not a neighbour never gets a link:
			// its sends vanish at the sender, counted, like on UDP.
			continue
		}
		l := &link{peer: id, addr: addr, q: make(chan []byte, n.sendSlots)}
		n.out[p] = l
		n.wg.Add(1)
		go n.writeLoop(l)
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.actLoop()
}

// framePool recycles encoded frames between Send (producer) and the
// writer goroutines (consumer), so steady-state sending allocates only
// when a frame outgrows its recycled buffer.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// env implements core.Env; use only under n.mu.
type env struct{ n *Node }

func (v env) Self() core.ProcID { return v.n.self }
func (v env) N() int            { return len(v.n.peerAddrs) }

func (v env) Send(to core.ProcID, m core.Message) {
	n := v.n
	if int(to) < 0 || int(to) >= len(n.peerAddrs) {
		return
	}
	if n.topo != nil && !n.topo.HasEdge(n.self, to) {
		// Not a neighbour under the topology: no channel exists, the send
		// vanishes at the sender (and is counted, unlike an unwired peer).
		n.sendDrops.Add(1)
		n.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m, Note: "no edge"})
		return
	}
	l := n.out[to]
	if l == nil {
		return
	}
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0)
	buf, err := wire.AppendEncode(buf, m)
	if err != nil {
		*bp = buf[:0]
		framePool.Put(bp)
		n.sendDrops.Add(1)
		n.linkDropped[to].Add(1)
		n.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m})
		return
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	*bp = buf
	select {
	case l.q <- buf:
		n.sends.Add(1)
		n.linkSent[to].Add(1)
		n.emit(core.Event{Kind: core.EvSend, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m})
	default:
		// Queue full: the bounded channel's lose-on-full rule applied at
		// the sender (a dead link under retransmission fills it fast).
		framePool.Put(bp)
		n.sendDrops.Add(1)
		n.linkDropped[to].Add(1)
		n.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m, Note: "queue full"})
	}
}

func (v env) Emit(ev core.Event) {
	ev.Proc = v.n.self
	v.n.emit(ev)
}

func (n *Node) emit(ev core.Event) {
	if len(n.observers) > 0 {
		n.observers.OnEvent(ev)
	}
}

// helloFrame encodes this node's identification frame.
func (n *Node) helloFrame() []byte {
	buf := []byte{0, 0, 0, 0}
	buf, err := wire.AppendEncode(buf, core.Message{
		Instance: helloInstance,
		Kind:     "HELLO",
		B:        core.Payload{Num: int64(n.self)},
	})
	if err != nil {
		panic("tcp: hello frame unencodable: " + err.Error())
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf
}

// dial establishes one connection for l: connect, enable keepalive (so a
// silently dead peer eventually fails the writer out of its connection),
// and identify with the hello frame.
func (n *Node) dial(l *link) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", l.addr, n.writeTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(30 * time.Second)
		_ = tc.SetNoDelay(true)
	}
	_ = conn.SetWriteDeadline(time.Now().Add(n.writeTimeout))
	if _, err := conn.Write(n.helloFrame()); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// writeLoop owns l's connection lifecycle: dial with exponential
// backoff, stream frames, redial on any error. A frame caught by a write
// error is lost in transit — the model's message loss; the protocols'
// retransmission keeps fresh copies coming once the link is back.
func (n *Node) writeLoop(l *link) {
	defer n.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := n.dialMin
	dialed := 0
	for {
		if conn == nil {
			c, err := n.dial(l)
			if err != nil {
				select {
				case <-n.stop:
					return
				case <-time.After(backoff):
				}
				backoff *= 2
				if backoff > n.dialMax {
					backoff = n.dialMax
				}
				continue
			}
			conn = c
			backoff = n.dialMin
			dialed++
			if dialed > 1 {
				n.redials.Add(1)
			}
		}
		select {
		case <-n.stop:
			return
		case frame := <-l.q:
			_ = conn.SetWriteDeadline(time.Now().Add(n.writeTimeout))
			_, err := conn.Write(frame)
			fp := frame[:0]
			framePool.Put(&fp)
			if err != nil {
				// The message was in the channel and is lost with the
				// connection; subsequent frames redial first.
				conn.Close()
				conn = nil
				n.sendDrops.Add(1)
				n.linkDropped[l.peer].Add(1)
				n.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: l.peer, Note: "connection lost"})
			}
		}
	}
}

// register adds an accepted connection to the teardown registry; a false
// return means the node already stopped and the caller must close conn.
func (n *Node) register(conn net.Conn) bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.closed {
		return false
	}
	n.accepted[conn] = struct{}{}
	return true
}

func (n *Node) unregister(conn net.Conn) {
	n.connMu.Lock()
	delete(n.accepted, conn)
	n.connMu.Unlock()
}

// acceptLoop admits inbound connections and spawns one reader per
// connection. Transient accept errors back off briefly; the loop exits
// when the listener closes at Stop.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.stop:
				return
			case <-time.After(5 * time.Millisecond):
				continue
			}
		}
		if !n.register(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// errBadHello rejects connections that do not open with a valid
// identification frame.
var errBadHello = errors.New("tcp: invalid hello")

// readHello consumes and validates the identification frame, returning
// the peer index the connection speaks for.
func (n *Node) readHello(conn net.Conn, buf []byte) (core.ProcID, error) {
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	m, _, err := readFrame(conn, buf)
	if err != nil {
		return 0, err
	}
	_ = conn.SetReadDeadline(time.Time{})
	if m.Instance != helloInstance || m.Kind != "HELLO" {
		return 0, errBadHello
	}
	id := core.ProcID(m.B.Num)
	if int64(id) != m.B.Num || int(id) < 0 || int(id) >= len(n.peerAddrs) || id == n.self {
		return 0, errBadHello
	}
	if n.topo != nil && !n.topo.HasEdge(id, n.self) {
		return 0, fmt.Errorf("tcp: peer %d is not a neighbour", id)
	}
	// When the peer's address is configured, the connection must come
	// from that host (ports are ephemeral on the dialing side). A fleet
	// config is therefore also a minimal allowlist; an unwired peer is
	// accepted on its own claim, mirroring UDP's unwired-sender drop in
	// reverse (TCP must accept before it can identify).
	if want := n.peerAddrs[id]; want != "" {
		wantHost, _, err1 := net.SplitHostPort(want)
		gotHost, _, err2 := net.SplitHostPort(conn.RemoteAddr().String())
		if err1 == nil && err2 == nil {
			wip, gip := net.ParseIP(wantHost), net.ParseIP(gotHost)
			if wip != nil && gip != nil && !wip.IsUnspecified() && !wip.Equal(gip) {
				return 0, fmt.Errorf("tcp: peer %d dialed from %s, configured at %s", id, gotHost, wantHost)
			}
		}
	}
	return id, nil
}

// readFrame reads one length-prefixed frame into buf (growing it as
// needed) and decodes it. The returned buffer is reused by the caller;
// wire.Decode copies all variable-length fields, so the message never
// aliases it.
func readFrame(r io.Reader, buf []byte) (core.Message, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return core.Message{}, buf, err
	}
	sz := binary.BigEndian.Uint32(hdr[:])
	if sz == 0 || sz > maxFrame {
		return core.Message{}, buf, fmt.Errorf("tcp: frame of %d bytes outside (0, %d]", sz, maxFrame)
	}
	if cap(buf) < int(sz) {
		buf = make([]byte, sz)
	}
	buf = buf[:sz]
	if _, err := io.ReadFull(r, buf); err != nil {
		return core.Message{}, buf, err
	}
	m, err := wire.Decode(buf)
	if err != nil {
		// A stream that stops framing valid messages is broken — unlike
		// UDP, where a malformed datagram can be skipped, the connection
		// is the unit of trust here.
		return core.Message{}, buf, err
	}
	return m, buf, nil
}

// readLoop moves one connection's frames into the bounded mailboxes. It
// exits on any read error — EOF when the peer closes or restarts, a
// local close from Stop — and the dialing side redials.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer n.unregister(conn)
	defer conn.Close()
	buf := make([]byte, 0, 4096)
	sender, err := n.readHello(conn, buf[:cap(buf)])
	if err != nil {
		return
	}
	for {
		var m core.Message
		m, buf, err = readFrame(conn, buf[:cap(buf)])
		if err != nil {
			return
		}
		if m.Instance == helloInstance {
			continue // a duplicate hello is consumed, never delivered
		}
		if n.inj != nil {
			n.injMu.Lock()
			out, fate := n.inj.Filter(sender, n.self, m, n.faultNow())
			// Filter returns the injector's reusable scratch slice; another
			// connection's reader may call Filter (rewriting it) as soon as
			// the lock drops, so snapshot it first.
			if len(out) > 0 {
				out = append([]core.Message(nil), out...)
			}
			n.injMu.Unlock()
			if fate == core.FateDrop {
				n.emit(core.Event{Kind: core.EvLose, Proc: n.self, Peer: sender, Instance: m.Instance, Msg: m})
			}
			for _, dm := range out {
				n.box(sender, dm)
			}
			continue
		}
		n.box(sender, m)
	}
}

// faultNow returns the fault-schedule tick: wall time since Start in
// plan.Unit ticks.
func (n *Node) faultNow() int64 {
	return int64(time.Since(n.epoch) / n.faultUnit)
}

// box appends one in-transit message to its bounded mailbox (the model's
// lose-on-full rule applies) and wakes the activation loop.
func (n *Node) box(sender core.ProcID, m core.Message) {
	key := mailKey{from: sender, instance: m.Instance}
	n.mbMu.Lock()
	b := n.mailboxes[key]
	full := len(b) >= n.mailboxSlots
	if !full {
		n.mailboxes[key] = append(b, m)
		n.boxed++
	}
	n.mbMu.Unlock()
	if full {
		// Lose-on-full: the message was in transit and is dropped at the
		// receiver — the model's link loss, not a send failure.
		n.mailboxDrops.Add(1)
		n.linkDropped[sender].Add(1)
		n.emit(core.Event{Kind: core.EvLose, Proc: n.self, Peer: sender, Instance: m.Instance, Msg: m})
		return
	}
	n.recvs.Add(1)
	n.linkRecvd[sender].Add(1)
	select {
	case n.mail <- struct{}{}:
	default: // a wakeup is already pending
	}
}

// actLoop delivers mailbox batches as soon as a reader signals them and
// runs the stack's internal actions at the step interval; the tick timer
// is the fallback sweep and the cadence at which delayed fault-plan
// messages surface.
func (n *Node) actLoop() {
	defer n.wg.Done()
	stepTimer := time.NewTicker(n.stepInterval)
	defer stepTimer.Stop()
	sweep := time.NewTicker(n.tick)
	defer sweep.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-n.mail:
			n.drainMail()
		case <-sweep.C:
			n.flushDelayed()
			n.drainMail()
		case <-stepTimer.C:
			if n.fault != nil && n.fault.Down(n.self, n.faultNow()) {
				continue // crash window: no internal actions until restart
			}
			n.mu.Lock()
			ev := env{n: n}
			for _, m := range n.stack {
				m.Step(ev)
			}
			n.mu.Unlock()
		}
	}
}

// flushDelayed surfaces expired delayed messages even on quiet links.
func (n *Node) flushDelayed() {
	if n.inj == nil {
		return
	}
	n.injMu.Lock()
	rel := n.inj.Flush(n.faultNow())
	n.injMu.Unlock()
	for _, r := range rel {
		n.box(r.From, r.Msg)
	}
}

// drainMail swaps the filled mailbox buffer out (one pointer swap under
// the mailbox lock, batching the handoff) and delivers its contents
// under the action mutex.
func (n *Node) drainMail() {
	if n.fault != nil && n.fault.Down(n.self, n.faultNow()) {
		// Crash window: boxed mail stays in transit until the restart.
		return
	}
	n.mbMu.Lock()
	if n.boxed == 0 {
		n.mbMu.Unlock()
		return
	}
	batch := n.mailboxes
	n.mailboxes, n.spare = n.spare, n.mailboxes
	n.boxed = 0
	n.mbMu.Unlock()

	n.mu.Lock()
	ev := env{n: n}
	for key, box := range batch {
		if len(box) == 0 {
			continue
		}
		if mach, ok := n.routes[key.instance]; ok {
			for _, m := range box {
				n.emit(core.Event{Kind: core.EvDeliver, Proc: n.self, Peer: key.from, Instance: key.instance, Msg: m})
				mach.Deliver(ev, key.from, m)
			}
		}
		// A message addressed to an unknown instance is consumed with no
		// effect, like a receive action with a false guard.
		batch[key] = box[:0]
	}
	n.mu.Unlock()
}

// Do runs f under the node's action mutex with its environment.
func (n *Node) Do(f func(env core.Env)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	f(env{n: n})
}

// Stop terminates the loops, closes the listener and every connection.
// It is idempotent and safe to call from multiple goroutines.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.ln.Close()
		n.connMu.Lock()
		n.closed = true
		for c := range n.accepted {
			c.Close()
		}
		n.connMu.Unlock()
		n.wg.Wait()
	})
}
