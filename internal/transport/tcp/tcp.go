// Package tcp runs protocol stacks over persistent TCP connections — the
// multi-host deployment substrate. Where the UDP transport demonstrates
// the paper's model on raw datagrams, this transport is the serving
// layer: nodes on different machines dial each other, stream
// length-prefixed wire frames, and survive connection loss with
// exponential-backoff redial, so a snapd fleet can span real hosts.
//
// # Channel semantics on TCP
//
// TCP provides reliable in-order delivery per connection — but the
// model's channels are lossy with a KNOWN capacity bound, and the
// transport deliberately restores both properties at its edges:
//
//   - each directed link (p -> q) is one connection dialed by p, fed
//     through a bounded outbound queue; a send finding the queue full is
//     dropped at the sender (core.EvSendLost), and a send caught by a
//     dead or timed-out connection is dropped in transit;
//   - each (group, sender, instance) triple gets a bounded mailbox at
//     the receiver; a frame arriving at a full mailbox is dropped
//     (lose-on-full, the model's rule) and reported as core.EvLose;
//   - AssumedCapacity reports the bound a protocol stack should declare
//     (the handshake flag domain grows linearly in it, and must stay
//     within the wire format's one-byte flag fields).
//
// Connection loss is therefore just message loss, which the protocols
// tolerate by design: the retransmitting action A2 keeps fresh copies
// coming while the writer redials, and snap-stabilization holds across a
// peer's crash and restart without any connection-level recovery
// protocol.
//
// # Wire framing and groups
//
// Every frame on a connection is a 4-byte big-endian length prefix
// followed by one wire-encoded unit. The default group (group 0) streams
// bare wire v1/v2 frames, byte-compatible with peers that predate the v3
// batch format; any other group wraps each message in a wire v3 batch
// frame (count 1) whose uvarint group id routes it at the receiver. A
// Node hosts one or more groups — independent protocol stacks with their
// own routes, observers, topology, and fault plan — over one listener
// and one set of connections; the legacy constructor installs its stack
// as group 0 and Mux attaches further clusters with fresh ids (mux.go).
//
// # Amortized socket IO
//
// Writers coalesce: when a writer wakes it drains every frame already
// queued on its link and hands them to the kernel as one vectored write
// (writev via net.Buffers), so a retransmission burst costs one syscall,
// not one per message. Readers amortize symmetrically through a buffered
// reader sized to pull many frames per socket read. Stats separates
// message counts from frame and syscall counts so the amortization is
// observable.
//
// # Dial/accept lifecycle
//
// Each node listens on one TCP address and runs one writer goroutine per
// outgoing link. The writer owns the link's connection: it dials with
// exponential backoff (jitter-free, bounded), identifies itself with a
// hello frame, streams frames, and on any write error closes the
// connection and redials. The accept loop spawns one reader per inbound
// connection; the reader validates the hello (peer index, topology edge,
// and — when the peer's address is configured — the source host) and
// then moves frames into the bounded mailboxes. A peer restart simply
// kills both directions: the reader sees EOF and exits, the writer's
// next write fails and it redials until the new process accepts.
//
// # Concurrency structure
//
// The action mutex / mailbox lock split of the UDP transport (DESIGN.md
// §7) carries over: readers append under the mailbox lock and signal a
// wakeup; the activation loop swaps the mailbox map and delivers —
// running any resulting sends — under the action mutex only. Sends
// enqueue encoded frames and never block: a blocking socket write can
// only stall its own link's writer goroutine, never a protocol action.
//
// The fault plane acts per logical message at the mailbox boundary:
// every decoded message passes its group's injector individually, so §9
// semantics are independent of connection framing, and each group's
// injector stream is isolated from its siblings on the shared sockets.
package tcp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/wire"
)

// DefaultAssumedCapacity is the per-link capacity bound the transport is
// configured for by default: outbound queue plus mailbox slots plus a
// conservative allowance for socket-buffered frames. The protocol flag
// domain is 2c+2 values and must fit the wire format's one-byte flag
// fields, so the bound must stay <= 126.
const DefaultAssumedCapacity = 64

// Frame format: a 4-byte big-endian length prefix followed by one wire
// frame — bare v1/v2 for the default group, a v3 batch frame for any
// other. maxFrame bounds the declared length against memory exhaustion
// from a malformed or hostile peer; the headroom over a maximal v2
// record covers the v3 batch header and per-record prefixes. A violation
// is a protocol error and closes the connection.
const maxFrame = 2*wire.MaxBlobLen + 8<<10

// sendVecCap is the default bound on how many queued frames one
// vectored write carries (see WithBatch).
const sendVecCap = 32

// helloInstance marks the identification frame that opens every dialed
// connection: a regular wire message whose B.Num carries the dialer's
// process index. It is consumed by the transport and never delivered.
const helloInstance = "tcp/hello"

// tcpFaultSalt namespaces this substrate's injector seeds within the
// plan's rng.Mix hierarchy (sim, runtime, and udp use their own salts).
const tcpFaultSalt = 0x7c

// Option configures a Node.
type Option func(*Node)

// WithMailbox sets the per-(group, sender, instance) mailbox size
// (default 8).
func WithMailbox(slots int) Option {
	return func(n *Node) { n.mailboxSlots = slots }
}

// WithSendQueue sets the per-link outbound queue length (default 32). A
// send finding the queue full — a dead link under retransmission, a
// backlogged connection — is dropped at the sender, the bounded-capacity
// rule applied to the transport's own buffering.
func WithSendQueue(slots int) Option {
	return func(n *Node) { n.sendSlots = slots }
}

// WithBatch bounds how many queued frames one vectored write may carry
// (default 32). WithBatch(1) gives every frame its own write system
// call — the pre-amortization behavior. Unlike UDP's coalescing knob
// this is purely a syscall bound: frames are never merged or delayed,
// so the bytes on the wire are identical at every setting.
func WithBatch(k int) Option {
	return func(n *Node) { n.vecCap = k }
}

// WithTick sets the fallback mailbox sweep interval (default 1ms).
// Mailbox drains are notification-driven; the sweep is a safety net and
// the cadence at which delayed fault-plan messages are surfaced.
func WithTick(d time.Duration) Option {
	return func(n *Node) { n.tick = d }
}

// WithStepInterval sets the pacing of internal protocol actions (default
// 2ms) — the retransmission interval, exactly as on UDP.
func WithStepInterval(d time.Duration) Option {
	return func(n *Node) { n.stepInterval = d }
}

// WithDialBackoff sets the redial backoff range (default 25ms..1s): the
// first redial after a connection loss waits min, doubling up to max.
func WithDialBackoff(min, max time.Duration) Option {
	return func(n *Node) { n.dialMin, n.dialMax = min, max }
}

// WithWriteTimeout bounds every connect and frame write (default 2s). A
// write that cannot complete within it is treated as a lost message and
// a lost connection.
func WithWriteTimeout(d time.Duration) Option {
	return func(n *Node) { n.writeTimeout = d }
}

// WithObserver subscribes an event observer on the node's default group.
// Callbacks arrive concurrently from reader goroutines (mailbox-full
// EvLose), writer goroutines (EvSendLost on dead connections), and the
// activation loop, so the observer must be goroutine-safe.
func WithObserver(o core.Observer) Option {
	return func(n *Node) { n.obs0 = append(n.obs0, o) }
}

// WithTopology declares the communication graph of the node's default
// group: sends to non-neighbours are dropped (and counted) at the
// sender, inbound connections from non-neighbours are rejected at the
// hello, and the installed fault plan is validated against the edge set.
// The default (nil) is the complete graph.
func WithTopology(t *core.Topology) Option {
	return func(n *Node) { n.topo0 = t }
}

// WithFaults installs a fault-injection plan (see core.FaultPlan) on the
// node's default group, interposed at the mailbox boundary exactly as on
// UDP: every decoded message from a known peer — individually, whatever
// frame carried it — passes the group's injector before it is boxed,
// which may drop, duplicate, corrupt, reorder, or delay it, honor
// partition windows, and silence the group inside crash windows (no
// internal actions, no mailbox drains, arrivals consumed). The injector
// is seeded rng.Mix(plan.Seed, salt, self); schedule windows are
// measured in plan.Unit ticks of wall time from Start. TCP's own
// connection losses compose underneath the plan.
func WithFaults(plan *core.FaultPlan) Option {
	return func(n *Node) { n.fault0 = plan }
}

// group is one protocol stack hosted on a node: an independent cluster
// member with its own routing, observers, topology, fault plane, and
// message counters, multiplexed with its siblings over the node's
// connections by the wire v3 group id.
type group struct {
	id        uint64
	stack     core.Stack
	routes    map[string]core.Machine
	topo      *core.Topology
	observers core.MultiObserver
	fault     *core.FaultPlan
	faultUnit time.Duration
	epoch     time.Time // fault-schedule tick zero; set before the group is visible to the loops

	// injMu guards the injector: TCP has one reader per inbound
	// connection, so the (not goroutine-safe) injector needs a lock even
	// within one group.
	injMu sync.Mutex
	inj   *core.Injector

	sends        atomic.Int64
	recvs        atomic.Int64
	sendDrops    atomic.Int64
	mailboxDrops atomic.Int64
}

func (g *group) emit(ev core.Event) {
	if len(g.observers) > 0 {
		g.observers.OnEvent(ev)
	}
}

// now returns the group's fault-schedule tick: wall time since its epoch
// in plan.Unit ticks. Only meaningful when a fault plan is installed.
func (g *group) now() int64 {
	return int64(time.Since(g.epoch) / g.faultUnit)
}

// down reports whether the group is inside a crash window for self.
func (g *group) down(self core.ProcID) bool {
	return g.fault != nil && g.fault.Down(self, g.now())
}

// buildGroup assembles and validates one hosted group.
func buildGroup(id uint64, stack core.Stack, topo *core.Topology, plan *core.FaultPlan,
	obs core.MultiObserver, nProcs int, self core.ProcID) (*group, error) {
	if topo != nil && topo.N() != nProcs {
		return nil, fmt.Errorf("tcp: topology over %d processes, %d peers", topo.N(), nProcs)
	}
	g := &group{
		id:        id,
		stack:     stack,
		routes:    stack.ByInstance(),
		topo:      topo,
		observers: obs,
		fault:     plan,
	}
	if plan != nil {
		if err := plan.Validate(); err != nil {
			return nil, fmt.Errorf("tcp: %w", err)
		}
		if err := plan.ValidateTopology(topo); err != nil {
			return nil, fmt.Errorf("tcp: %w", err)
		}
		g.faultUnit = plan.TickUnit()
		seed := rng.Mix(plan.Seed, tcpFaultSalt, uint64(self))
		if id != 0 {
			// Extra groups get distinct injector streams; group 0 keeps the
			// exact legacy seeding so recorded runs stay reproducible.
			seed = rng.Mix(plan.Seed, tcpFaultSalt, uint64(self), id)
		}
		g.inj = core.NewInjector(plan, rng.New(seed))
	}
	return g, nil
}

// groupSet is the copy-on-write view of a node's hosted groups, swapped
// atomically so the loops read it without locks.
type groupSet struct {
	byID map[uint64]*group
	list []*group
}

// outFrame is one encoded frame queued on a link, tagged with the group
// whose counters and observers account for its fate.
type outFrame struct {
	b []byte
	g *group
}

// link is one outgoing directed edge: a bounded queue of encoded frames
// drained by a writer goroutine that owns the connection lifecycle.
type link struct {
	peer core.ProcID
	addr string
	q    chan outFrame
}

// Node is one process bound to a TCP listener, hosting one or more
// groups.
type Node struct {
	self         core.ProcID
	ln           net.Listener
	peerAddrs    []string
	mailboxSlots int
	sendSlots    int
	vecCap       int
	tick         time.Duration
	stepInterval time.Duration
	dialMin      time.Duration
	dialMax      time.Duration
	writeTimeout time.Duration

	// Group-0 staging, written by options and consumed by NewNode; a
	// mux-hosted node (nil stack) must not carry any of these. topo0 also
	// shapes the socket layer itself — link wiring at Start and hello
	// admission follow the default group's graph — and is nil on a mux
	// node, whose groups restrict traffic per message instead.
	topo0  *core.Topology
	fault0 *core.FaultPlan
	obs0   core.MultiObserver

	g0 *group // the default group (nil on mux-hosted nodes)

	gmu    sync.Mutex // serializes attach/detach
	groups atomic.Pointer[groupSet]

	// mu is the action mutex: it makes stack actions (Step, Deliver, Do)
	// atomic. Sends performed under it only encode and enqueue — socket
	// writes happen on the writer goroutines — so no protocol action ever
	// blocks on the network.
	mu      sync.Mutex
	sendOne [1]core.Message // v3 single-record scratch, guarded by mu

	out []*link // indexed by peer; nil for self, unwired, or non-neighbour

	// mbMu guards the double-buffered mailboxes (DESIGN.md §7) and is
	// never held across socket operations or protocol actions.
	mbMu      sync.Mutex
	mailboxes map[mailKey][]core.Message
	spare     map[mailKey][]core.Message
	boxed     int
	mail      chan struct{}

	redials     atomic.Int64
	linkSent    []atomic.Int64
	linkRecvd   []atomic.Int64
	linkDropped []atomic.Int64

	// Socket-level IO counters, shared by every group the node hosts.
	sendFrames   atomic.Int64
	sendSyscalls atomic.Int64
	recvFrames   atomic.Int64
	recvSyscalls atomic.Int64

	// connMu guards the accepted-connection registry used for teardown:
	// Stop closes every registered connection to unblock its reader.
	connMu   sync.Mutex
	accepted map[net.Conn]struct{}
	closed   bool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

type mailKey struct {
	gid      uint64
	from     core.ProcID
	instance string
}

// Stats counts transport-level events. All counters are safe to read
// concurrently with the node's loops. The message counters (Sends,
// Recvs, SendDrops, MailboxDrops, Faults) belong to the node's default
// group; the frame, syscall, redial, and link counters are per socket
// and therefore shared by every group the node hosts.
type Stats struct {
	// Sends counts messages accepted into an outbound link queue (and
	// therefore into the model's channel).
	Sends int64
	// Recvs counts messages accepted into a mailbox.
	Recvs int64
	// SendDrops counts messages lost at the sender: sends to
	// non-neighbours, unencodable payloads, full outbound queues, and
	// writes caught by a dead or timed-out connection.
	SendDrops int64
	// MailboxDrops counts messages dropped at a full receive mailbox (the
	// model's lose-on-full rule, reported as core.EvLose).
	MailboxDrops int64
	// Redials counts connection establishments beyond each link's first —
	// the dial/accept lifecycle recovering from a lost connection.
	Redials int64
	// SendFrames and RecvFrames count length-prefixed wire frames moved
	// on the node's connections (the stream analogue of datagrams).
	SendFrames int64
	RecvFrames int64
	// SendSyscalls counts vectored socket writes — each covers every
	// frame queued on its link at wake-up — and RecvSyscalls counts
	// buffered socket reads, each pulling as many frames as the kernel
	// had; SendFrames/SendSyscalls is the write amortization.
	SendSyscalls int64
	RecvSyscalls int64
	// Links holds per-directed-link counters for every peer.
	Links []core.LinkStats
	// Faults counts the faults injected at this node's mailbox boundary
	// by the installed FaultPlan; zero without one.
	Faults core.FaultStats
}

// Stats returns a snapshot of the transport counters for the default
// group (plus the socket-wide frame/syscall counters).
func (n *Node) Stats() Stats {
	if n.g0 != nil {
		return n.groupStats(n.g0)
	}
	return n.groupStats(&group{})
}

func (n *Node) groupStats(g *group) Stats {
	s := Stats{
		Sends:        g.sends.Load(),
		Recvs:        g.recvs.Load(),
		SendDrops:    g.sendDrops.Load(),
		MailboxDrops: g.mailboxDrops.Load(),
		Redials:      n.redials.Load(),
		SendFrames:   n.sendFrames.Load(),
		RecvFrames:   n.recvFrames.Load(),
		SendSyscalls: n.sendSyscalls.Load(),
		RecvSyscalls: n.recvSyscalls.Load(),
	}
	for p := range n.linkSent {
		if core.ProcID(p) == n.self {
			continue
		}
		s.Links = append(s.Links, core.LinkStats{
			Peer:     core.ProcID(p),
			Sent:     n.linkSent[p].Load(),
			Received: n.linkRecvd[p].Load(),
			Dropped:  n.linkDropped[p].Load(),
		})
	}
	if g.inj != nil {
		g.injMu.Lock()
		s.Faults = g.inj.Stats()
		g.injMu.Unlock()
	}
	return s
}

// transportStats assembles the substrate-agnostic snapshot for one
// hosted group. Frames map onto the datagram fields: on a stream
// transport the length-prefixed frame is the unit the socket moves.
func (n *Node) transportStats(g *group) core.TransportStats {
	s := n.groupStats(g)
	return core.TransportStats{
		Addr:          n.Addr(),
		Sends:         s.Sends,
		Recvs:         s.Recvs,
		SendDrops:     s.SendDrops,
		MailboxDrops:  s.MailboxDrops,
		Redials:       s.Redials,
		SendDatagrams: s.SendFrames,
		RecvDatagrams: s.RecvFrames,
		SendSyscalls:  s.SendSyscalls,
		RecvSyscalls:  s.RecvSyscalls,
		Links:         s.Links,
		Faults:        s.Faults,
	}
}

// NewNode binds process self to laddr. peers maps every process ID
// (including self, whose entry is ignored) to its address; empty entries
// may be wired later with SetPeer, before Start. stack becomes the
// node's default group (group 0); a nil stack builds a bare mux-style
// node hosting no groups yet.
func NewNode(self core.ProcID, stack core.Stack, laddr string, peers []string, opts ...Option) (*Node, error) {
	if int(self) >= len(peers) || self < 0 {
		return nil, fmt.Errorf("tcp: self %d outside peer list of %d", self, len(peers))
	}
	ln, err := net.Listen("tcp", laddr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listen %q: %w", laddr, err)
	}
	n := &Node{
		self:         self,
		ln:           ln,
		peerAddrs:    append([]string(nil), peers...),
		mailboxSlots: 8,
		sendSlots:    32,
		vecCap:       sendVecCap,
		tick:         time.Millisecond,
		stepInterval: 2 * time.Millisecond,
		dialMin:      25 * time.Millisecond,
		dialMax:      time.Second,
		writeTimeout: 2 * time.Second,
		mailboxes:    make(map[mailKey][]core.Message),
		spare:        make(map[mailKey][]core.Message),
		mail:         make(chan struct{}, 1),
		accepted:     make(map[net.Conn]struct{}),
		stop:         make(chan struct{}),
		linkSent:     make([]atomic.Int64, len(peers)),
		linkRecvd:    make([]atomic.Int64, len(peers)),
		linkDropped:  make([]atomic.Int64, len(peers)),
	}
	n.groups.Store(&groupSet{byID: map[uint64]*group{}})
	for _, opt := range opts {
		opt(n)
	}
	fail := func(err error) (*Node, error) {
		ln.Close()
		return nil, err
	}
	if n.mailboxSlots < 1 || n.sendSlots < 1 || n.vecCap < 1 {
		return fail(fmt.Errorf("tcp: invalid mailbox %d / send queue %d / batch %d", n.mailboxSlots, n.sendSlots, n.vecCap))
	}
	if n.dialMin <= 0 || n.dialMax < n.dialMin || n.writeTimeout <= 0 {
		return fail(fmt.Errorf("tcp: invalid backoff %v..%v / write timeout %v", n.dialMin, n.dialMax, n.writeTimeout))
	}
	if stack == nil {
		if n.topo0 != nil || n.fault0 != nil || len(n.obs0) > 0 {
			return fail(fmt.Errorf("tcp: group option on a node with no default group"))
		}
		return n, nil
	}
	g, err := buildGroup(0, stack, n.topo0, n.fault0, n.obs0, len(peers), self)
	if err != nil {
		return fail(err)
	}
	n.g0 = g
	n.addGroup(g)
	return n, nil
}

// addGroup publishes g to the loops (copy-on-write).
func (n *Node) addGroup(g *group) {
	n.gmu.Lock()
	defer n.gmu.Unlock()
	old := n.groups.Load()
	gs := &groupSet{byID: make(map[uint64]*group, len(old.byID)+1)}
	for id, og := range old.byID {
		gs.byID[id] = og
	}
	gs.byID[g.id] = g
	gs.list = make([]*group, 0, len(gs.byID))
	for _, og := range gs.byID {
		gs.list = append(gs.list, og)
	}
	n.groups.Store(gs)
}

// removeGroup detaches group id; its boxed mail is discarded on the next
// drain and inbound frames for it are dropped.
func (n *Node) removeGroup(id uint64) {
	n.gmu.Lock()
	defer n.gmu.Unlock()
	old := n.groups.Load()
	if _, ok := old.byID[id]; !ok {
		return
	}
	gs := &groupSet{byID: make(map[uint64]*group, len(old.byID)-1)}
	for gid, og := range old.byID {
		if gid != id {
			gs.byID[gid] = og
		}
	}
	gs.list = make([]*group, 0, len(gs.byID))
	for _, og := range gs.byID {
		gs.list = append(gs.list, og)
	}
	n.groups.Store(gs)
}

// Addr returns the bound local address (useful with port 0).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// SetPeer sets the address of peer id after construction, enabling
// two-phase setup: bind every listener with port 0 first, then wire the
// learned addresses. Must be called before Start.
func (n *Node) SetPeer(id core.ProcID, addr string) { n.peerAddrs[id] = addr }

// Start launches the accept and activation loops and one writer per
// wired outgoing link. Peers must not change after Start.
func (n *Node) Start() {
	epoch := time.Now() // fault-schedule tick zero
	for _, g := range n.groups.Load().list {
		g.epoch = epoch
	}
	n.out = make([]*link, len(n.peerAddrs))
	for p, addr := range n.peerAddrs {
		id := core.ProcID(p)
		if id == n.self || addr == "" {
			continue
		}
		if n.topo0 != nil && !n.topo0.HasEdge(n.self, id) {
			// A wired address that is not a neighbour of the default group
			// never gets a link: its sends vanish at the sender, counted,
			// like on UDP. (A mux node has no default topology and wires
			// everything; its groups restrict traffic per message.)
			continue
		}
		l := &link{peer: id, addr: addr, q: make(chan outFrame, n.sendSlots)}
		n.out[p] = l
		n.wg.Add(1)
		go n.writeLoop(l)
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.actLoop()
}

// framePool recycles encoded frames between Send (producer) and the
// writer goroutines (consumer), so steady-state sending allocates only
// when a frame outgrows its recycled buffer.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// env implements core.Env for one group; use only under n.mu.
type env struct {
	n *Node
	g *group
}

func (v env) Self() core.ProcID { return v.n.self }
func (v env) N() int            { return len(v.n.peerAddrs) }

func (v env) Send(to core.ProcID, m core.Message) {
	n, g := v.n, v.g
	if int(to) < 0 || int(to) >= len(n.peerAddrs) {
		return
	}
	if g.topo != nil && !g.topo.HasEdge(n.self, to) {
		// Not a neighbour under the topology: no channel exists, the send
		// vanishes at the sender (and is counted, unlike an unwired peer).
		g.sendDrops.Add(1)
		g.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m, Note: "no edge"})
		return
	}
	l := n.out[to]
	if l == nil {
		return
	}
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0)
	var err error
	if g.id == 0 {
		// The default group keeps the bare v1/v2 framing, byte-compatible
		// with peers that predate the v3 batch frame.
		buf, err = wire.AppendEncode(buf, m)
	} else {
		n.sendOne[0] = m
		buf, err = wire.AppendBatch(buf, g.id, n.sendOne[:])
		n.sendOne[0] = core.Message{}
	}
	if err != nil {
		*bp = buf[:0]
		framePool.Put(bp)
		g.sendDrops.Add(1)
		n.linkDropped[to].Add(1)
		g.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m})
		return
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	*bp = buf
	select {
	case l.q <- outFrame{b: buf, g: g}:
		g.sends.Add(1)
		n.linkSent[to].Add(1)
		g.emit(core.Event{Kind: core.EvSend, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m})
	default:
		// Queue full: the bounded channel's lose-on-full rule applied at
		// the sender (a dead link under retransmission fills it fast).
		framePool.Put(bp)
		g.sendDrops.Add(1)
		n.linkDropped[to].Add(1)
		g.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m, Note: "queue full"})
	}
}

func (v env) Emit(ev core.Event) {
	ev.Proc = v.n.self
	v.g.emit(ev)
}

// helloFrame encodes this node's identification frame (always a bare
// group-0 frame, so pre-v3 peers can validate it).
func (n *Node) helloFrame() []byte {
	buf := []byte{0, 0, 0, 0}
	buf, err := wire.AppendEncode(buf, core.Message{
		Instance: helloInstance,
		Kind:     "HELLO",
		B:        core.Payload{Num: int64(n.self)},
	})
	if err != nil {
		panic("tcp: hello frame unencodable: " + err.Error())
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf
}

// dial establishes one connection for l: connect, enable keepalive (so a
// silently dead peer eventually fails the writer out of its connection),
// and identify with the hello frame.
func (n *Node) dial(l *link) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", l.addr, n.writeTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(30 * time.Second)
		_ = tc.SetNoDelay(true)
	}
	_ = conn.SetWriteDeadline(time.Now().Add(n.writeTimeout))
	if _, err := conn.Write(n.helloFrame()); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// writeLoop owns l's connection lifecycle: dial with exponential
// backoff, stream frames, redial on any error. Each wake-up drains every
// frame already queued and hands the lot to the kernel as one vectored
// write (writev), so a burst costs one syscall, not one per frame. A
// frame caught by a write error is lost in transit — the model's message
// loss; the protocols' retransmission keeps fresh copies coming once the
// link is back.
func (n *Node) writeLoop(l *link) {
	defer n.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	backoff := n.dialMin
	dialed := 0
	batch := make([]outFrame, 0, n.vecCap)
	vec := make(net.Buffers, 0, n.vecCap)
	for {
		if conn == nil {
			c, err := n.dial(l)
			if err != nil {
				select {
				case <-n.stop:
					return
				case <-time.After(backoff):
				}
				backoff *= 2
				if backoff > n.dialMax {
					backoff = n.dialMax
				}
				continue
			}
			conn = c
			backoff = n.dialMin
			dialed++
			if dialed > 1 {
				n.redials.Add(1)
			}
		}
		select {
		case <-n.stop:
			return
		case f := <-l.q:
			batch = append(batch[:0], f)
		drain:
			for len(batch) < cap(batch) {
				select {
				case f2 := <-l.q:
					batch = append(batch, f2)
				default:
					break drain
				}
			}
			vec = vec[:0]
			for _, bf := range batch {
				vec = append(vec, bf.b)
			}
			_ = conn.SetWriteDeadline(time.Now().Add(n.writeTimeout))
			_, err := (&vec).WriteTo(conn)
			n.sendSyscalls.Add(1)
			// WriteTo consumed the written prefix of vec; what remains (a
			// partially written first frame included) was lost with the
			// connection.
			lost := len(vec)
			for _, bf := range batch {
				fp := bf.b[:0]
				framePool.Put(&fp)
			}
			n.sendFrames.Add(int64(len(batch) - lost))
			if err != nil {
				conn.Close()
				conn = nil
				for _, bf := range batch[len(batch)-lost:] {
					bf.g.sendDrops.Add(1)
					n.linkDropped[l.peer].Add(1)
					bf.g.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: l.peer, Note: "connection lost"})
				}
			}
		}
	}
}

// register adds an accepted connection to the teardown registry; a false
// return means the node already stopped and the caller must close conn.
func (n *Node) register(conn net.Conn) bool {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.closed {
		return false
	}
	n.accepted[conn] = struct{}{}
	return true
}

func (n *Node) unregister(conn net.Conn) {
	n.connMu.Lock()
	delete(n.accepted, conn)
	n.connMu.Unlock()
}

// acceptLoop admits inbound connections and spawns one reader per
// connection. Transient accept errors back off briefly; the loop exits
// when the listener closes at Stop.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.stop:
				return
			case <-time.After(5 * time.Millisecond):
				continue
			}
		}
		if !n.register(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// errBadHello rejects connections that do not open with a valid
// identification frame.
var errBadHello = errors.New("tcp: invalid hello")

// readHello consumes and validates the identification frame, returning
// the peer index the connection speaks for.
func (n *Node) readHello(conn net.Conn, src io.Reader, buf []byte) (core.ProcID, error) {
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	gid, msgs, _, err := readFrame(src, buf, nil)
	if err != nil {
		return 0, err
	}
	_ = conn.SetReadDeadline(time.Time{})
	if gid != 0 || len(msgs) != 1 {
		return 0, errBadHello
	}
	m := msgs[0]
	if m.Instance != helloInstance || m.Kind != "HELLO" {
		return 0, errBadHello
	}
	id := core.ProcID(m.B.Num)
	if int64(id) != m.B.Num || int(id) < 0 || int(id) >= len(n.peerAddrs) || id == n.self {
		return 0, errBadHello
	}
	if n.topo0 != nil && !n.topo0.HasEdge(id, n.self) {
		return 0, fmt.Errorf("tcp: peer %d is not a neighbour", id)
	}
	// When the peer's address is configured, the connection must come
	// from that host (ports are ephemeral on the dialing side). A fleet
	// config is therefore also a minimal allowlist; an unwired peer is
	// accepted on its own claim, mirroring UDP's unwired-sender drop in
	// reverse (TCP must accept before it can identify).
	if want := n.peerAddrs[id]; want != "" {
		wantHost, _, err1 := net.SplitHostPort(want)
		gotHost, _, err2 := net.SplitHostPort(conn.RemoteAddr().String())
		if err1 == nil && err2 == nil {
			wip, gip := net.ParseIP(wantHost), net.ParseIP(gotHost)
			if wip != nil && gip != nil && !wip.IsUnspecified() && !wip.Equal(gip) {
				return 0, fmt.Errorf("tcp: peer %d dialed from %s, configured at %s", id, gotHost, wantHost)
			}
		}
	}
	return id, nil
}

// readFrame reads one length-prefixed frame into buf (growing it as
// needed) and decodes it with the version-dispatching batch decoder: a
// bare v1/v2 frame yields group 0 and one message, a v3 frame its group
// id and records. The returned message slice reuses msgs's capacity and
// never aliases buf (wire.Decode copies all variable-length fields).
func readFrame(r io.Reader, buf []byte, msgs []core.Message) (uint64, []core.Message, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, msgs, buf, err
	}
	sz := binary.BigEndian.Uint32(hdr[:])
	if sz == 0 || sz > maxFrame {
		return 0, msgs, buf, fmt.Errorf("tcp: frame of %d bytes outside (0, %d]", sz, maxFrame)
	}
	if cap(buf) < int(sz) {
		buf = make([]byte, sz)
	}
	buf = buf[:sz]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, msgs, buf, err
	}
	gid, out, err := wire.DecodeBatch(msgs[:0], buf)
	if err != nil {
		// A stream that stops framing valid messages is broken — unlike
		// UDP, where a malformed datagram can be skipped, the connection
		// is the unit of trust here.
		return 0, msgs, buf, err
	}
	return gid, out, buf, nil
}

// countingReader counts socket reads underneath the buffered reader, so
// RecvSyscalls reflects actual kernel round-trips, not frames.
type countingReader struct {
	conn  net.Conn
	calls *atomic.Int64
}

func (r *countingReader) Read(p []byte) (int, error) {
	sz, err := r.conn.Read(p)
	if sz > 0 {
		r.calls.Add(1)
	}
	return sz, err
}

// readLoop moves one connection's frames into the bounded mailboxes,
// routing each decoded message to its group. It exits on any read error
// — EOF when the peer closes or restarts, a local close from Stop — and
// the dialing side redials. Reads go through a buffered reader sized to
// pull many frames per socket read.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer n.unregister(conn)
	defer conn.Close()
	src := bufio.NewReaderSize(&countingReader{conn: conn, calls: &n.recvSyscalls}, 64<<10)
	buf := make([]byte, 0, 4096)
	var msgs []core.Message
	sender, err := n.readHello(conn, src, buf[:cap(buf)])
	if err != nil {
		return
	}
	for {
		var gid uint64
		gid, msgs, buf, err = readFrame(src, buf[:cap(buf)], msgs)
		if err != nil {
			return
		}
		n.recvFrames.Add(1)
		g := n.groups.Load().byID[gid]
		if g == nil {
			continue // no such group here (stale or stray traffic): dropped
		}
		if g.topo != nil && !g.topo.HasEdge(sender, n.self) {
			continue // not a neighbour in this group's graph: dropped
		}
		for _, m := range msgs {
			if m.Instance == helloInstance {
				continue // a duplicate hello is consumed, never delivered
			}
			if g.inj != nil {
				// Per logical message, never per frame: framing is invisible
				// to the fault plane.
				g.injMu.Lock()
				out, fate := g.inj.Filter(sender, n.self, m, g.now())
				// Filter returns the injector's reusable scratch slice; another
				// connection's reader may call Filter (rewriting it) as soon as
				// the lock drops, so snapshot it first.
				if len(out) > 0 {
					out = append([]core.Message(nil), out...)
				}
				g.injMu.Unlock()
				if fate == core.FateDrop {
					g.emit(core.Event{Kind: core.EvLose, Proc: n.self, Peer: sender, Instance: m.Instance, Msg: m})
				}
				for _, dm := range out {
					n.box(g, sender, dm)
				}
				continue
			}
			n.box(g, sender, m)
		}
	}
}

// box appends one in-transit message to its bounded mailbox (the model's
// lose-on-full rule applies) and wakes the activation loop.
func (n *Node) box(g *group, sender core.ProcID, m core.Message) {
	key := mailKey{gid: g.id, from: sender, instance: m.Instance}
	n.mbMu.Lock()
	b := n.mailboxes[key]
	full := len(b) >= n.mailboxSlots
	if !full {
		n.mailboxes[key] = append(b, m)
		n.boxed++
	}
	n.mbMu.Unlock()
	if full {
		// Lose-on-full: the message was in transit and is dropped at the
		// receiver — the model's link loss, not a send failure.
		g.mailboxDrops.Add(1)
		n.linkDropped[sender].Add(1)
		g.emit(core.Event{Kind: core.EvLose, Proc: n.self, Peer: sender, Instance: m.Instance, Msg: m})
		return
	}
	g.recvs.Add(1)
	n.linkRecvd[sender].Add(1)
	select {
	case n.mail <- struct{}{}:
	default: // a wakeup is already pending
	}
}

// actLoop delivers mailbox batches as soon as a reader signals them and
// runs every group's internal actions at the step interval; the tick
// timer is the fallback sweep and the cadence at which delayed
// fault-plan messages surface.
func (n *Node) actLoop() {
	defer n.wg.Done()
	stepTimer := time.NewTicker(n.stepInterval)
	defer stepTimer.Stop()
	sweep := time.NewTicker(n.tick)
	defer sweep.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-n.mail:
			n.drainMail()
		case <-sweep.C:
			n.flushDelayed()
			n.drainMail()
		case <-stepTimer.C:
			gs := n.groups.Load()
			n.mu.Lock()
			for _, g := range gs.list {
				if g.down(n.self) {
					continue // crash window: no internal actions until restart
				}
				ev := env{n: n, g: g}
				for _, m := range g.stack {
					m.Step(ev)
				}
			}
			n.mu.Unlock()
		}
	}
}

// flushDelayed surfaces expired delayed messages even on quiet links.
func (n *Node) flushDelayed() {
	for _, g := range n.groups.Load().list {
		if g.inj == nil {
			continue
		}
		g.injMu.Lock()
		rel := g.inj.Flush(g.now())
		g.injMu.Unlock()
		for _, r := range rel {
			n.box(g, r.From, r.Msg)
		}
	}
}

// drainMail swaps the filled mailbox buffer out (one pointer swap under
// the mailbox lock, batching the handoff) and delivers its contents
// under the action mutex, routing each mailbox to its group. Mail for a
// group inside a crash window stays in transit: it is re-boxed untouched
// and the sweep retries after the window (re-boxed mail that no longer
// fits is dropped and counted, the lose-on-full rule again).
func (n *Node) drainMail() {
	gs := n.groups.Load()
	if len(gs.list) == 1 && gs.list[0].down(n.self) {
		// Sole group crashed: leave everything boxed without swapping.
		return
	}
	n.mbMu.Lock()
	if n.boxed == 0 {
		n.mbMu.Unlock()
		return
	}
	batch := n.mailboxes
	n.mailboxes, n.spare = n.spare, n.mailboxes
	n.boxed = 0
	n.mbMu.Unlock()

	type heldBox struct {
		key  mailKey
		msgs []core.Message
	}
	var held []heldBox
	n.mu.Lock()
	for key, box := range batch {
		if len(box) == 0 {
			continue
		}
		g := gs.byID[key.gid]
		if g == nil {
			// Group detached: its in-transit mail evaporates.
			batch[key] = box[:0]
			continue
		}
		if g.down(n.self) {
			held = append(held, heldBox{key: key, msgs: append([]core.Message(nil), box...)})
			batch[key] = box[:0]
			continue
		}
		if mach, ok := g.routes[key.instance]; ok {
			ev := env{n: n, g: g}
			for _, m := range box {
				g.emit(core.Event{Kind: core.EvDeliver, Proc: n.self, Peer: key.from, Instance: key.instance, Msg: m})
				mach.Deliver(ev, key.from, m)
			}
		}
		// A message addressed to an unknown instance is consumed with no
		// effect, like a receive action with a false guard.
		batch[key] = box[:0]
	}
	n.mu.Unlock()

	if len(held) > 0 {
		n.mbMu.Lock()
		for _, h := range held {
			b := n.mailboxes[h.key]
			for _, m := range h.msgs {
				if len(b) >= n.mailboxSlots {
					if g := gs.byID[h.key.gid]; g != nil {
						g.mailboxDrops.Add(1)
					}
					continue
				}
				b = append(b, m)
				n.boxed++
			}
			n.mailboxes[h.key] = b
		}
		n.mbMu.Unlock()
	}
}

// Do runs f under the node's action mutex with its default group's
// environment.
func (n *Node) Do(f func(env core.Env)) {
	if n.g0 == nil {
		panic("tcp: Do on a node with no default group")
	}
	n.doGroup(n.g0, f)
}

func (n *Node) doGroup(g *group, f func(env core.Env)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	f(env{n: n, g: g})
}

// Stop terminates the loops, closes the listener and every connection.
// It is idempotent and safe to call from multiple goroutines.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.ln.Close()
		n.connMu.Lock()
		n.closed = true
		for c := range n.accepted {
			c.Close()
		}
		n.connMu.Unlock()
		n.wg.Wait()
	})
}
