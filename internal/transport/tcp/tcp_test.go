package tcp

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/wire"
)

// mkPIF builds one process's PIF stack, recording the machine.
func mkPIF(machines []*pif.PIF, self core.ProcID, n int) core.Stack {
	m := pif.New("pif", self, n, pif.Callbacks{
		OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
			return core.Payload{Tag: "ack", Num: b.Num*10 + int64(self)}
		},
	}, pif.WithCapacityBound(DefaultAssumedCapacity))
	machines[self] = m
	return core.Stack{m}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// broadcastDone drives a broadcast at node src and waits for its PIF
// handshake to complete with the token.
func broadcastDone(t *testing.T, node *Node, m *pif.PIF, token core.Payload) {
	t.Helper()
	invoked := waitFor(t, 20*time.Second, func() bool {
		var ok bool
		node.Do(func(env core.Env) { ok = m.Invoke(env, token) })
		return ok
	})
	if !invoked {
		t.Fatal("Invoke never accepted (prior computation never terminated)")
	}
	ok := waitFor(t, 20*time.Second, func() bool {
		var done bool
		node.Do(func(core.Env) { done = m.Done() && m.BMes.Equal(token) })
		return done
	})
	if !ok {
		t.Fatal("broadcast over TCP did not complete")
	}
}

func TestPIFOverLoopbackTCP(t *testing.T) {
	// Not parallel: concurrent clusters share the loopback path; the
	// interference slows the handshakes.
	const n = 3
	machines := make([]*pif.PIF, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		stacks[i] = mkPIF(machines, core.ProcID(i), n)
	}
	c, err := NewCluster(stacks)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	broadcastDone(t, c.nodes[0], machines[0], core.Payload{Tag: "hello", Num: 4})
	for i, s := range c.TransportStats() {
		if s.Sends == 0 {
			t.Errorf("node %d accepted no sends", i)
		}
		if s.Recvs == 0 {
			t.Errorf("node %d boxed no frames", i)
		}
	}
}

func TestPIFOverTCPFromCorruptedState(t *testing.T) {
	// Not parallel: shares the loopback path.
	const n = 2
	machines := make([]*pif.PIF, n)
	stacks := make([]core.Stack, n)
	r := rng.New(7)
	for i := 0; i < n; i++ {
		stacks[i] = mkPIF(machines, core.ProcID(i), n)
		machines[i].Corrupt(r)
	}
	c, err := NewCluster(stacks)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	broadcastDone(t, c.nodes[0], machines[0], core.Payload{Tag: "fresh", Num: 3})
}

// TestSimultaneousStartDialRace releases every node's Start from a
// barrier so all writers dial while all listeners are barely up, the
// worst-case connection race: the handshake must still complete.
func TestSimultaneousStartDialRace(t *testing.T) {
	// Not parallel: shares the loopback path.
	const n = 3
	machines := make([]*pif.PIF, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(core.ProcID(i), mkPIF(machines, core.ProcID(i), n), "127.0.0.1:0", make([]string, n),
			WithDialBackoff(time.Millisecond, 50*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	for i, node := range nodes {
		for j, other := range nodes {
			if i != j {
				node.SetPeer(core.ProcID(j), other.Addr())
			}
		}
	}
	var barrier, started sync.WaitGroup
	barrier.Add(1)
	for _, node := range nodes {
		node := node
		started.Add(1)
		go func() {
			barrier.Wait()
			node.Start()
			started.Done()
		}()
	}
	barrier.Done()
	started.Wait()
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Stop()
		}
	})
	broadcastDone(t, nodes[0], machines[0], core.Payload{Tag: "race", Num: 9})
}

// TestRedialAfterPeerRestart kills one node, rebinds a fresh node (fresh
// protocol state) on the same address, and requires a broadcast to
// complete afterwards with the survivor's redial counter advanced: a
// peer's crash-and-restart is absorbed as message loss plus a redial.
func TestRedialAfterPeerRestart(t *testing.T) {
	// Not parallel: shares the loopback path, and rebinds a fixed port.
	const n = 2
	machines := make([]*pif.PIF, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(core.ProcID(i), mkPIF(machines, core.ProcID(i), n), "127.0.0.1:0", make([]string, n),
			WithDialBackoff(time.Millisecond, 50*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	addr1 := nodes[1].Addr()
	nodes[0].SetPeer(1, addr1)
	nodes[1].SetPeer(0, nodes[0].Addr())
	nodes[0].Start()
	nodes[1].Start()
	t.Cleanup(func() { nodes[0].Stop(); nodes[1].Stop() })

	broadcastDone(t, nodes[0], machines[0], core.Payload{Tag: "before", Num: 1})

	nodes[1].Stop()
	// Rebind the same port. The listener was closed, not left in
	// TIME_WAIT, so the bind should succeed promptly; retry briefly in
	// case the kernel lags.
	var restarted *Node
	deadline := time.Now().Add(5 * time.Second)
	for {
		node, err := NewNode(1, mkPIF(machines, 1, n), addr1, make([]string, n),
			WithDialBackoff(time.Millisecond, 50*time.Millisecond))
		if err == nil {
			restarted = node
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr1, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	restarted.SetPeer(0, nodes[0].Addr())
	restarted.Start()
	t.Cleanup(restarted.Stop)

	broadcastDone(t, nodes[0], machines[0], core.Payload{Tag: "after", Num: 2})
	if got := nodes[0].Stats().Redials; got == 0 {
		t.Fatalf("Redials = %d after a peer restart, want > 0", got)
	}
}

// TestHalfOpenConnectionsDoNotWedge connects raw sockets that go silent
// after (a) a valid hello and (b) garbage, and verifies the node keeps
// serving protocol traffic and that Stop returns promptly with the
// half-open connections still registered.
func TestHalfOpenConnectionsDoNotWedge(t *testing.T) {
	// Not parallel: shares the loopback path.
	const n = 3
	machines := make([]*pif.PIF, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		stacks[i] = mkPIF(machines, core.ProcID(i), n)
	}
	c, err := NewCluster(stacks)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			c.Close()
		}
	}()

	// A liar claiming to be process 1 (a real peer), then silence: the
	// reader blocks on the next frame forever.
	liar, err := net.Dial("tcp", c.nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer liar.Close()
	hello := []byte{0, 0, 0, 0}
	hello, err = wire.AppendEncode(hello, core.Message{
		Instance: helloInstance, Kind: "HELLO", B: core.Payload{Num: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(hello[:4], uint32(len(hello)-4))
	if _, err := liar.Write(hello); err != nil {
		t.Fatal(err)
	}

	// A babbler: a length prefix promising more than maxFrame, which the
	// reader must reject without allocating it.
	babbler, err := net.Dial("tcp", c.nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer babbler.Close()
	if _, err := babbler.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}

	// The node still serves real traffic around both.
	broadcastDone(t, c.nodes[0], machines[0], core.Payload{Tag: "alive", Num: 6})

	// Stop must unblock the half-open readers and return promptly.
	done := make(chan struct{})
	go func() { c.Close(); close(done) }()
	select {
	case <-done:
		closed = true
	case <-time.After(10 * time.Second):
		t.Fatal("Close wedged on half-open connections")
	}
}

func TestStopIdempotent(t *testing.T) {
	t.Parallel()
	machines := make([]*pif.PIF, 2)
	node, err := NewNode(0, mkPIF(machines, 0, 2), "127.0.0.1:0", make([]string, 2))
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	node.Stop()
	node.Stop() // second Stop must be a no-op, not a panic or deadlock

	stacks := make([]core.Stack, 2)
	for i := 0; i < 2; i++ {
		stacks[i] = mkPIF(machines, core.ProcID(i), 2)
	}
	c, err := NewCluster(stacks)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		stacks[i] = mkPIF(machines, core.ProcID(i), 2)
	}
	h, err := NewHost(HostConfig{Self: 0, Peers: make([]string, 2)}, stacks)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSendAfterStopCountsDrops pins the silent-swallow path: sends on a
// stopped node land in SendDrops, never block, never panic.
func TestSendAfterStopCountsDrops(t *testing.T) {
	t.Parallel()
	machines := make([]*pif.PIF, 2)
	node, err := NewNode(0, mkPIF(machines, 0, 2), "127.0.0.1:0", []string{"", "127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	node.Stop()
	const attempts = 3
	node.Do(func(env core.Env) {
		for i := 0; i < attempts; i++ {
			env.Send(1, core.Message{Instance: "pif", Kind: pif.Kind})
		}
	})
	// The writer may have died before or after taking frames off the
	// queue; either way nothing may be counted as both sent and dropped.
	s := node.Stats()
	if s.Sends+s.SendDrops != attempts {
		t.Fatalf("Sends (%d) + SendDrops (%d) = %d, want %d", s.Sends, s.SendDrops, s.Sends+s.SendDrops, attempts)
	}
}

func TestNodeValidation(t *testing.T) {
	t.Parallel()
	machines := make([]*pif.PIF, 2)
	stack := mkPIF(machines, 0, 2)
	if _, err := NewNode(5, stack, "127.0.0.1:0", []string{"a", "b"}); err == nil {
		t.Fatal("out-of-range self accepted")
	}
	if _, err := NewNode(0, stack, "127.0.0.1:0", make([]string, 2), WithMailbox(0)); err == nil {
		t.Fatal("zero mailbox accepted")
	}
	if _, err := NewNode(0, stack, "127.0.0.1:0", make([]string, 2), WithDialBackoff(time.Second, time.Millisecond)); err == nil {
		t.Fatal("inverted backoff accepted")
	}
	if _, err := NewCluster(nil); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewHost(HostConfig{Self: 7, Peers: make([]string, 2)}, []core.Stack{stack, stack}); err == nil {
		t.Fatal("out-of-range host self accepted")
	}
	if _, err := NewHost(HostConfig{Self: 0, Peers: make([]string, 3)}, []core.Stack{stack, stack}); err == nil {
		t.Fatal("mismatched peer list accepted")
	}
}
