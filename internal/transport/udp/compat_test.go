package udp

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/wire"
)

// recorder is a sink machine: it keeps every delivered message.
type recorder struct {
	inst string
	mu   sync.Mutex
	got  []core.Message
}

func (r *recorder) Instance() string   { return r.inst }
func (r *recorder) Step(core.Env) bool { return false }
func (r *recorder) Deliver(_ core.Env, _ core.ProcID, m core.Message) {
	r.mu.Lock()
	r.got = append(r.got, m)
	r.mu.Unlock()
}

func (r *recorder) snapshot() []core.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]core.Message(nil), r.got...)
}

// rawPeer pairs a node with a hand-driven UDP socket standing in for
// peer 1, so tests can watch the node's exact wire bytes and feed it
// arbitrary frames.
func rawPeer(t *testing.T, opts ...Option) (*Node, *recorder, *net.UDPConn) {
	t.Helper()
	rec := &recorder{inst: "rec"}
	node, err := NewNode(0, core.Stack{rec}, "127.0.0.1:0", make([]string, 2), opts...)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		node.Stop()
		t.Fatal(err)
	}
	node.SetPeer(1, raw.LocalAddr().(*net.UDPAddr))
	node.Start()
	t.Cleanup(func() { node.Stop(); raw.Close() })
	return node, rec, raw
}

// TestBatchOneIsWireV2OnTheWire pins the cross-version contract at the
// socket: a WithBatch(1) node's datagrams are bare wire v1/v2 frames
// that a pre-v3 peer decodes with the single-message wire.Decode, and
// bare v1/v2 frames from such a peer are delivered by the node.
func TestBatchOneIsWireV2OnTheWire(t *testing.T) {
	// Not parallel: shares the loopback path with the cluster tests.
	node, rec, raw := rawPeer(t, WithBatch(1))
	out := core.Message{Instance: "rec", Kind: "K", B: core.Payload{Tag: "m", Num: 42, Blob: []byte("body")}}
	node.Do(func(env core.Env) { env.Send(1, out) })

	buf := make([]byte, 64*1024)
	_ = raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	sz, _, err := raw.ReadFromUDP(buf)
	if err != nil {
		t.Fatalf("no datagram from the batch=1 node: %v", err)
	}
	got, err := wire.Decode(buf[:sz]) // the pre-v3 decoder, not DecodeBatch
	if err != nil {
		t.Fatalf("batch=1 datagram is not a plain v1/v2 frame: %v", err)
	}
	if !got.Equal(out) {
		t.Fatalf("wire-v2 peer decoded %v, want %v", got, out)
	}

	// The reverse direction: a legacy frame into the node.
	in := core.Message{Instance: "rec", Kind: "K", B: core.Payload{Tag: "legacy", Num: 7}}
	data, err := wire.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.WriteToUDP(data, mustUDPAddr(t, node.Addr())); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool { return len(rec.snapshot()) == 1 }) {
		t.Fatal("legacy v1 frame was not delivered")
	}
	if got := rec.snapshot()[0]; !got.Equal(in) {
		t.Fatalf("delivered %v, want %v", got, in)
	}
}

// TestBatchedSendCoalescesAndCounts pins the amortization arithmetic: a
// burst of sends to one destination inside one atomic section leaves as
// a single v3 datagram, and the datagram/syscall counters expose it.
func TestBatchedSendCoalescesAndCounts(t *testing.T) {
	// Not parallel: shares the loopback path with the cluster tests.
	node, _, raw := rawPeer(t) // default batching
	const burst = 10
	node.Do(func(env core.Env) {
		for i := 0; i < burst; i++ {
			env.Send(1, core.Message{Instance: "rec", Kind: "K", B: core.Payload{Num: int64(i)}})
		}
	})
	buf := make([]byte, 64*1024)
	_ = raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	sz, _, err := raw.ReadFromUDP(buf)
	if err != nil {
		t.Fatalf("no datagram: %v", err)
	}
	group, msgs, err := wire.DecodeBatch(nil, buf[:sz])
	if err != nil {
		t.Fatalf("burst datagram does not decode: %v", err)
	}
	if group != 0 || len(msgs) != burst {
		t.Fatalf("burst arrived as group %d with %d messages, want group 0 with %d", group, len(msgs), burst)
	}
	for i, m := range msgs {
		if m.B.Num != int64(i) {
			t.Fatalf("record %d carries Num %d: batch reordered", i, m.B.Num)
		}
	}
	s := node.Stats()
	if s.Sends != burst {
		t.Fatalf("Sends = %d, want %d", s.Sends, burst)
	}
	if s.SendDatagrams != 1 {
		t.Fatalf("SendDatagrams = %d for one coalesced burst, want 1", s.SendDatagrams)
	}
	if s.SendSyscalls != 1 {
		t.Fatalf("SendSyscalls = %d for one coalesced burst, want 1", s.SendSyscalls)
	}
}

// TestV3BatchDeliveredPerMessage: a hand-built v3 batch frame from a
// known peer is unpacked into individual mailbox deliveries.
func TestV3BatchDeliveredPerMessage(t *testing.T) {
	// Not parallel: shares the loopback path with the cluster tests.
	node, rec, raw := rawPeer(t)
	msgs := []core.Message{
		{Instance: "rec", Kind: "K", B: core.Payload{Num: 1}},
		{Instance: "rec", Kind: "K", B: core.Payload{Num: 2, Blob: []byte("x")}},
		{Instance: "rec", Kind: "K", B: core.Payload{Num: 3}},
	}
	data, err := wire.AppendBatch(nil, 0, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.WriteToUDP(data, mustUDPAddr(t, node.Addr())); err != nil {
		t.Fatal(err)
	}
	if !waitFor(t, 5*time.Second, func() bool { return len(rec.snapshot()) == len(msgs) }) {
		t.Fatalf("v3 batch delivered %d of %d messages", len(rec.snapshot()), len(msgs))
	}
	for i, m := range rec.snapshot() {
		if !m.Equal(msgs[i]) {
			t.Fatalf("delivery %d = %v, want %v", i, m, msgs[i])
		}
	}
	s := node.Stats()
	if s.Recvs != int64(len(msgs)) || s.RecvDatagrams != 1 {
		t.Fatalf("Recvs = %d, RecvDatagrams = %d; want %d and 1", s.Recvs, s.RecvDatagrams, len(msgs))
	}
}

func mustUDPAddr(t *testing.T, s string) *net.UDPAddr {
	t.Helper()
	a, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
