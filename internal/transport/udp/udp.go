// Package udp runs protocol stacks over real UDP sockets — the paper's
// concluding challenge ("actually implementing them is a future
// challenge") made concrete on the loopback interface or a LAN.
//
// # Channel semantics on UDP
//
// UDP already provides the model's unreliability: datagrams are dropped
// under congestion and (on one pair, one path) are not reordered in
// practice on loopback/LAN. What UDP does not provide is the KNOWN
// capacity bound that Theorem 1 makes mandatory. The transport restores
// it conservatively:
//
//   - each (sender, instance) pair gets a bounded mailbox at the
//     receiver; a datagram arriving at a full mailbox is dropped
//     (lose-on-full, the model's rule) and reported as core.EvLose — a
//     receive-side loss, distinct from the sender-side core.EvSendLost;
//   - the socket receive buffer is capped, bounding the kernel-queued
//     backlog; the protocol stacks must be built with a capacity bound
//     covering mailbox + kernel backlog. AssumedCapacity reports the
//     bound a stack should use (the flag domain grows linearly in it, so
//     being conservative is cheap: 2c+2 flag values for bound c).
//
// # Concurrency structure
//
// Two goroutines per node, coupled only through the double-buffered
// mailboxes (DESIGN.md §7): the receive loop appends decoded datagrams
// under the mailbox lock and signals a wakeup channel; the activation
// loop swaps the whole mailbox map out under that lock, then delivers
// the batch — and performs any resulting sendto calls — under the action
// mutex only. A blocking sendto therefore never stalls the receive loop,
// and mailbox handoff costs one pointer swap per batch regardless of how
// many datagrams arrived.
//
// Malformed datagrams fail wire.Decode and are dropped — in the model,
// that is just message loss, which the protocols tolerate by design.
package udp

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/wire"
)

// DefaultAssumedCapacity is the per-link capacity bound the transport is
// configured for by default: mailbox slots plus a conservative allowance
// for kernel-buffered datagrams.
const DefaultAssumedCapacity = 64

// Option configures a Node.
type Option func(*Node)

// WithMailbox sets the per-(sender, instance) mailbox size (default 8).
func WithMailbox(slots int) Option {
	return func(n *Node) { n.mailboxSlots = slots }
}

// WithTick sets the fallback mailbox sweep interval (default 1ms).
// Mailbox drains are notification-driven — the receive loop wakes the
// activation loop as soon as a datagram is boxed — so the periodic sweep
// is only a safety net; it no longer paces delivery.
func WithTick(d time.Duration) Option {
	return func(n *Node) { n.tick = d }
}

// WithStepInterval sets the pacing of internal protocol actions (default
// 2ms). Action A2 retransmits on every activation, so this is the
// retransmission interval; unpaced retransmission floods the path and the
// queueing delay stalls the handshake (deliveries, by contrast, are
// event-driven and unpaced).
func WithStepInterval(d time.Duration) Option {
	return func(n *Node) { n.stepInterval = d }
}

// WithObserver subscribes an event observer. Callbacks arrive
// concurrently from the receive loop (mailbox-full EvLose) and the
// activation loop (everything else), so the observer must be
// goroutine-safe.
func WithObserver(o core.Observer) Option {
	return func(n *Node) { n.observers = append(n.observers, o) }
}

// WithTopology declares the communication graph the node belongs to:
// sends to non-neighbours are dropped (and counted) at the sender even if
// an address is wired, datagrams from non-neighbours are rejected at the
// sender lookup, and the installed fault plan is validated against the
// edge set. NewCluster additionally uses it to wire only neighbour
// addresses. The default (nil) is the complete graph.
func WithTopology(t *core.Topology) Option {
	return func(n *Node) { n.topo = t }
}

// udpFaultSalt namespaces this substrate's injector seeds within the
// plan's rng.Mix hierarchy (sim and runtime use their own salts).
const udpFaultSalt = 0x53

// WithFaults installs a fault-injection plan (see core.FaultPlan),
// interposed at the mailbox boundary: every decoded datagram from a known
// peer passes the node's injector before it is boxed, which may drop,
// duplicate, corrupt, reorder, or delay it, honor partition windows, and
// silence the node inside crash windows (no internal actions, no mailbox
// drains, arrivals consumed). The injector is owned by the receive loop
// and seeded rng.Mix(plan.Seed, salt, self); schedule windows are
// measured in plan.Unit ticks of wall time from Start. UDP's natural
// losses compose underneath the plan, exactly as on a real adversarial
// network.
func WithFaults(plan *core.FaultPlan) Option {
	return func(n *Node) { n.fault = plan }
}

// Node is one process bound to a UDP socket.
type Node struct {
	self         core.ProcID
	stack        core.Stack
	routes       map[string]core.Machine
	topo         *core.Topology
	conn         *net.UDPConn
	peers        []*net.UDPAddr
	senders      map[netip.AddrPort]core.ProcID // canonical ip:port -> peer, built at Start
	mailboxSlots int
	tick         time.Duration
	stepInterval time.Duration
	observers    core.MultiObserver

	// mu is the action mutex: it makes stack actions (Step, Deliver, Do)
	// atomic. Socket writes happen under it — never under mbMu — so a
	// blocking sendto cannot stall the receive loop.
	mu     sync.Mutex
	encBuf []byte // send-path scratch, guarded by mu

	// mbMu guards the double-buffered mailboxes and is never held across
	// socket operations or protocol actions.
	mbMu      sync.Mutex
	mailboxes map[mailKey][]core.Message // filled by recvLoop
	spare     map[mailKey][]core.Message // drained buffer, swapped in by actLoop
	boxed     int                        // messages currently in mailboxes
	mail      chan struct{}              // capacity 1: drain wakeup

	sends        atomic.Int64
	recvs        atomic.Int64
	sendDrops    atomic.Int64
	mailboxDrops atomic.Int64

	fault     *core.FaultPlan
	inj       *core.Injector // owned by recvLoop; counters readable anywhere
	faultUnit time.Duration
	epoch     time.Time // set by Start, before the loops launch

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// Stats counts transport-level events, mirroring sim.Stats where the model
// concepts coincide. All counters are safe to read concurrently with the
// node's loops.
type Stats struct {
	// Sends counts datagrams successfully handed to the socket.
	Sends int64
	// Recvs counts datagrams accepted into a mailbox (received from a
	// known peer, surviving the fault plane, not dropped on full).
	Recvs int64
	// SendDrops counts messages lost at the sender — WriteToUDP failures
	// and unencodable payloads. The simulator's analogue is
	// sim.Stats.SendLosses; without this counter a misconfigured or
	// saturated transport is indistinguishable from fair loss.
	SendDrops int64
	// MailboxDrops counts datagrams dropped at a full receive mailbox,
	// the transport's lose-on-full rule (reported as core.EvLose: the
	// message was in transit and was lost at the receiver).
	MailboxDrops int64
	// Faults counts the faults injected at this node's mailbox boundary
	// by the installed FaultPlan (WithFaults); zero without one. Injected
	// drops are not folded into MailboxDrops, so injected adversity stays
	// distinguishable from genuine backpressure.
	Faults core.FaultStats
}

// Stats returns a snapshot of the transport counters.
func (n *Node) Stats() Stats {
	s := Stats{
		Sends:        n.sends.Load(),
		Recvs:        n.recvs.Load(),
		SendDrops:    n.sendDrops.Load(),
		MailboxDrops: n.mailboxDrops.Load(),
	}
	if n.inj != nil {
		s.Faults = n.inj.Stats()
	}
	return s
}

type mailKey struct {
	from     core.ProcID
	instance string
}

// NewNode binds process self to laddr. peers maps every process ID
// (including self, whose entry is ignored) to its address.
func NewNode(self core.ProcID, stack core.Stack, laddr string, peers []string, opts ...Option) (*Node, error) {
	if int(self) >= len(peers) {
		return nil, fmt.Errorf("udp: self %d outside peer list of %d", self, len(peers))
	}
	addr, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udp: resolve local %q: %w", laddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udp: listen %q: %w", laddr, err)
	}
	// Bound the kernel backlog so the total in-flight count stays within
	// the assumed capacity (best effort; some platforms round up).
	_ = conn.SetReadBuffer(64 * 1024)

	n := &Node{
		self:         self,
		stack:        stack,
		routes:       stack.ByInstance(),
		conn:         conn,
		peers:        make([]*net.UDPAddr, len(peers)),
		mailboxSlots: 8,
		tick:         time.Millisecond,
		stepInterval: 2 * time.Millisecond,
		mailboxes:    make(map[mailKey][]core.Message),
		spare:        make(map[mailKey][]core.Message),
		mail:         make(chan struct{}, 1),
		stop:         make(chan struct{}),
	}
	for i, p := range peers {
		if core.ProcID(i) == self {
			continue
		}
		a, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("udp: resolve peer %d %q: %w", i, p, err)
		}
		n.peers[i] = a
	}
	for _, opt := range opts {
		opt(n)
	}
	if n.mailboxSlots < 1 {
		conn.Close()
		return nil, fmt.Errorf("udp: invalid mailbox size %d", n.mailboxSlots)
	}
	if n.topo != nil && n.topo.N() != len(peers) {
		conn.Close()
		return nil, fmt.Errorf("udp: topology over %d processes, %d peers", n.topo.N(), len(peers))
	}
	if n.fault != nil {
		if err := n.fault.Validate(); err != nil {
			conn.Close()
			return nil, fmt.Errorf("udp: %w", err)
		}
		if err := n.fault.ValidateTopology(n.topo); err != nil {
			conn.Close()
			return nil, fmt.Errorf("udp: %w", err)
		}
		n.faultUnit = n.fault.TickUnit()
		n.inj = core.NewInjector(n.fault, rng.New(rng.Mix(n.fault.Seed, udpFaultSalt, uint64(self))))
	}
	return n, nil
}

// Addr returns the bound local address (useful with port 0).
func (n *Node) Addr() string { return n.conn.LocalAddr().String() }

// SetPeer sets the address of peer id after construction, enabling
// two-phase setup: bind every socket with port 0 first, then wire the
// learned addresses. Must be called before Start.
func (n *Node) SetPeer(id core.ProcID, addr *net.UDPAddr) { n.peers[id] = addr }

// env implements core.Env; use only under n.mu.
type env struct{ n *Node }

func (v env) Self() core.ProcID { return v.n.self }
func (v env) N() int            { return len(v.n.peers) }

func (v env) Send(to core.ProcID, m core.Message) {
	n := v.n
	if n.topo != nil && !n.topo.HasEdge(n.self, to) {
		// Not a neighbour under the topology: no channel exists, the send
		// vanishes at the sender (and is counted, unlike an unwired peer).
		n.sendDrops.Add(1)
		n.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m, Note: "no edge"})
		return
	}
	peer := n.peers[to]
	if peer == nil {
		return
	}
	data, err := wire.AppendEncode(n.encBuf[:0], m)
	if err != nil {
		// Unencodable payloads are dropped: message loss, but counted so
		// the loss is observable.
		n.sendDrops.Add(1)
		n.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m})
		return
	}
	n.encBuf = data[:0]
	if _, err := n.conn.WriteToUDP(data, peer); err != nil {
		n.sendDrops.Add(1)
		n.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m})
		return
	}
	n.sends.Add(1)
	n.emit(core.Event{Kind: core.EvSend, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m})
}

func (v env) Emit(ev core.Event) {
	ev.Proc = v.n.self
	v.n.emit(ev)
}

func (n *Node) emit(ev core.Event) {
	if len(n.observers) > 0 {
		n.observers.OnEvent(ev)
	}
}

// canonical normalizes an address for sender lookup: 4-in-6 mapped
// addresses (as dual-stack sockets report v4 sources) compare equal to
// their plain IPv4 form.
func canonical(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// Start builds the sender lookup table from the wired peers and launches
// the receive and activation loops. Peers must not change after Start.
func (n *Node) Start() {
	n.epoch = time.Now() // fault-schedule tick zero
	n.senders = make(map[netip.AddrPort]core.ProcID, len(n.peers))
	for i, p := range n.peers {
		if p == nil || core.ProcID(i) == n.self {
			continue
		}
		if n.topo != nil && !n.topo.HasEdge(core.ProcID(i), n.self) {
			// A wired address that is not a neighbour never enters the
			// sender table: its datagrams are dropped like any stranger's.
			continue
		}
		n.senders[canonical(p.AddrPort())] = core.ProcID(i)
	}
	n.wg.Add(2)
	go n.recvLoop()
	go n.actLoop()
}

// recvLoop moves datagrams from the socket into the bounded mailboxes and
// wakes the activation loop. It takes only the mailbox lock, so a stalled
// activation loop (slow actions, blocking sendto) cannot back it up into
// kernel-buffer drops.
func (n *Node) recvLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		if n.inj != nil {
			// Surface expired delayed messages even on quiet links; the
			// read deadline below bounds the flush latency.
			for _, rel := range n.inj.Flush(n.faultNow()) {
				n.box(rel.From, rel.Msg)
			}
		}
		_ = n.conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		sz, from, err := n.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			continue // timeout or transient error: try again
		}
		m, err := wire.Decode(buf[:sz])
		if err != nil {
			continue // malformed datagram: dropped (message loss)
		}
		sender, ok := n.senders[canonical(from)]
		if !ok {
			continue // not a known peer: dropped
		}
		if n.inj != nil {
			now := n.faultNow()
			out, fate := n.inj.Filter(sender, n.self, m, now)
			if fate == core.FateDrop {
				n.emit(core.Event{Kind: core.EvLose, Proc: n.self, Peer: sender, Instance: m.Instance, Msg: m})
			}
			for _, dm := range out {
				n.box(sender, dm)
			}
			continue
		}
		n.box(sender, m)
	}
}

// faultNow returns the fault-schedule tick: wall time since Start in
// plan.Unit ticks.
func (n *Node) faultNow() int64 {
	return int64(time.Since(n.epoch) / n.faultUnit)
}

// box appends one in-transit message to its bounded mailbox (the model's
// lose-on-full rule applies) and wakes the activation loop.
func (n *Node) box(sender core.ProcID, m core.Message) {
	key := mailKey{from: sender, instance: m.Instance}
	n.mbMu.Lock()
	b := n.mailboxes[key]
	full := len(b) >= n.mailboxSlots
	if !full {
		n.mailboxes[key] = append(b, m)
		n.boxed++
	}
	n.mbMu.Unlock()
	if full {
		// Lose-on-full: the message was in transit and is dropped at
		// the receiver — the model's link loss, not a send failure.
		n.mailboxDrops.Add(1)
		n.emit(core.Event{Kind: core.EvLose, Proc: n.self, Peer: sender, Instance: m.Instance, Msg: m})
		return
	}
	n.recvs.Add(1)
	select {
	case n.mail <- struct{}{}:
	default: // a wakeup is already pending
	}
}

// actLoop delivers mailbox batches as soon as the receive loop signals
// them and runs the stack's internal actions at the step interval. The
// tick timer is only a fallback sweep.
func (n *Node) actLoop() {
	defer n.wg.Done()
	stepTimer := time.NewTicker(n.stepInterval)
	defer stepTimer.Stop()
	sweep := time.NewTicker(n.tick)
	defer sweep.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-n.mail:
			n.drainMail()
		case <-sweep.C:
			n.drainMail()
		case <-stepTimer.C:
			if n.fault != nil && n.fault.Down(n.self, n.faultNow()) {
				continue // crash window: no internal actions until restart
			}
			n.mu.Lock()
			ev := env{n: n}
			for _, m := range n.stack {
				m.Step(ev)
			}
			n.mu.Unlock()
		}
	}
}

// drainMail swaps the filled mailbox buffer out (one pointer swap under
// the mailbox lock, batching the handoff) and delivers its contents
// under the action mutex.
func (n *Node) drainMail() {
	if n.fault != nil && n.fault.Down(n.self, n.faultNow()) {
		// Crash window: boxed mail stays in transit until the restart.
		return
	}
	n.mbMu.Lock()
	if n.boxed == 0 {
		n.mbMu.Unlock()
		return
	}
	batch := n.mailboxes
	n.mailboxes, n.spare = n.spare, n.mailboxes
	n.boxed = 0
	n.mbMu.Unlock()

	n.mu.Lock()
	ev := env{n: n}
	for key, box := range batch {
		if len(box) == 0 {
			continue
		}
		if mach, ok := n.routes[key.instance]; ok {
			for _, m := range box {
				n.emit(core.Event{Kind: core.EvDeliver, Proc: n.self, Peer: key.from, Instance: key.instance, Msg: m})
				mach.Deliver(ev, key.from, m)
			}
		}
		// A message addressed to an unknown instance is consumed with no
		// effect, like a receive action with a false guard.
		batch[key] = box[:0]
	}
	n.mu.Unlock()
}

// Do runs f under the node's action mutex with its environment.
func (n *Node) Do(f func(env core.Env)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	f(env{n: n})
}

// Stop terminates the loops and closes the socket. It is idempotent and
// safe to call from multiple goroutines concurrently.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.wg.Wait()
		n.conn.Close()
	})
}
