// Package udp runs protocol stacks over real UDP sockets — the paper's
// concluding challenge ("actually implementing them is a future
// challenge") made concrete on the loopback interface or a LAN.
//
// # Channel semantics on UDP
//
// UDP already provides the model's unreliability: datagrams are dropped
// under congestion and (on one pair, one path) are not reordered in
// practice on loopback/LAN. What UDP does not provide is the KNOWN
// capacity bound that Theorem 1 makes mandatory. The transport restores
// it conservatively:
//
//   - each (sender, instance) pair gets a bounded mailbox at the
//     receiver; a datagram arriving at a full mailbox is dropped
//     (lose-on-full, the model's rule);
//   - the socket receive buffer is capped, bounding the kernel-queued
//     backlog; the protocol stacks must be built with a capacity bound
//     covering mailbox + kernel backlog. AssumedCapacity reports the
//     bound a stack should use (the flag domain grows linearly in it, so
//     being conservative is cheap: 2c+2 flag values for bound c).
//
// Malformed datagrams fail wire.Decode and are dropped — in the model,
// that is just message loss, which the protocols tolerate by design.
package udp

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/wire"
)

// DefaultAssumedCapacity is the per-link capacity bound the transport is
// configured for by default: mailbox slots plus a conservative allowance
// for kernel-buffered datagrams.
const DefaultAssumedCapacity = 64

// Option configures a Node.
type Option func(*Node)

// WithMailbox sets the per-(sender, instance) mailbox size (default 8).
func WithMailbox(slots int) Option {
	return func(n *Node) { n.mailboxSlots = slots }
}

// WithTick sets the mailbox drain pacing (default 200µs).
func WithTick(d time.Duration) Option {
	return func(n *Node) { n.tick = d }
}

// WithStepInterval sets the pacing of internal protocol actions (default
// 2ms). Action A2 retransmits on every activation, so this is the
// retransmission interval; unpaced retransmission floods the path and the
// queueing delay stalls the handshake (deliveries, by contrast, are
// drained at the faster tick).
func WithStepInterval(d time.Duration) Option {
	return func(n *Node) { n.stepInterval = d }
}

// WithObserver subscribes a thread-safe event observer.
func WithObserver(o core.Observer) Option {
	return func(n *Node) { n.observers = append(n.observers, o) }
}

// Node is one process bound to a UDP socket.
type Node struct {
	self         core.ProcID
	stack        core.Stack
	routes       map[string]core.Machine
	conn         *net.UDPConn
	peers        []*net.UDPAddr
	mailboxSlots int
	tick         time.Duration
	stepInterval time.Duration
	observers    core.MultiObserver

	mu        sync.Mutex // guards machines and mailboxes (atomic actions)
	mailboxes map[mailKey][]core.Message

	sends        atomic.Int64
	sendDrops    atomic.Int64
	mailboxDrops atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// Stats counts transport-level events, mirroring sim.Stats where the model
// concepts coincide. All counters are safe to read concurrently with the
// node's loops.
type Stats struct {
	// Sends counts datagrams successfully handed to the socket.
	Sends int64
	// SendDrops counts messages lost at the sender — WriteToUDP failures
	// and unencodable payloads. The simulator's analogue is
	// sim.Stats.SendLosses; without this counter a misconfigured or
	// saturated transport is indistinguishable from fair loss.
	SendDrops int64
	// MailboxDrops counts datagrams dropped at a full receive mailbox,
	// the transport's lose-on-full rule.
	MailboxDrops int64
}

// Stats returns a snapshot of the transport counters.
func (n *Node) Stats() Stats {
	return Stats{
		Sends:        n.sends.Load(),
		SendDrops:    n.sendDrops.Load(),
		MailboxDrops: n.mailboxDrops.Load(),
	}
}

type mailKey struct {
	from     core.ProcID
	instance string
}

// NewNode binds process self to laddr. peers maps every process ID
// (including self, whose entry is ignored) to its address.
func NewNode(self core.ProcID, stack core.Stack, laddr string, peers []string, opts ...Option) (*Node, error) {
	if int(self) >= len(peers) {
		return nil, fmt.Errorf("udp: self %d outside peer list of %d", self, len(peers))
	}
	addr, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udp: resolve local %q: %w", laddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udp: listen %q: %w", laddr, err)
	}
	// Bound the kernel backlog so the total in-flight count stays within
	// the assumed capacity (best effort; some platforms round up).
	_ = conn.SetReadBuffer(64 * 1024)

	n := &Node{
		self:         self,
		stack:        stack,
		routes:       stack.ByInstance(),
		conn:         conn,
		peers:        make([]*net.UDPAddr, len(peers)),
		mailboxSlots: 8,
		tick:         200 * time.Microsecond,
		stepInterval: 2 * time.Millisecond,
		mailboxes:    make(map[mailKey][]core.Message),
		stop:         make(chan struct{}),
	}
	for i, p := range peers {
		if core.ProcID(i) == self {
			continue
		}
		a, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("udp: resolve peer %d %q: %w", i, p, err)
		}
		n.peers[i] = a
	}
	for _, opt := range opts {
		opt(n)
	}
	if n.mailboxSlots < 1 {
		conn.Close()
		return nil, fmt.Errorf("udp: invalid mailbox size %d", n.mailboxSlots)
	}
	return n, nil
}

// Addr returns the bound local address (useful with port 0).
func (n *Node) Addr() string { return n.conn.LocalAddr().String() }

// SetPeer sets the address of peer id after construction, enabling
// two-phase setup: bind every socket with port 0 first, then wire the
// learned addresses. Must be called before Start.
func (n *Node) SetPeer(id core.ProcID, addr *net.UDPAddr) { n.peers[id] = addr }

// env implements core.Env; use only under n.mu.
type env struct{ n *Node }

func (v env) Self() core.ProcID { return v.n.self }
func (v env) N() int            { return len(v.n.peers) }

func (v env) Send(to core.ProcID, m core.Message) {
	peer := v.n.peers[to]
	if peer == nil {
		return
	}
	data, err := wire.Encode(m)
	if err != nil {
		// Unencodable payloads are dropped: message loss, but counted so
		// the loss is observable.
		v.n.sendDrops.Add(1)
		v.n.emit(core.Event{Kind: core.EvSendLost, Proc: v.n.self, Peer: to, Instance: m.Instance, Msg: m})
		return
	}
	if _, err := v.n.conn.WriteToUDP(data, peer); err != nil {
		v.n.sendDrops.Add(1)
		v.n.emit(core.Event{Kind: core.EvSendLost, Proc: v.n.self, Peer: to, Instance: m.Instance, Msg: m})
		return
	}
	v.n.sends.Add(1)
	v.n.emit(core.Event{Kind: core.EvSend, Proc: v.n.self, Peer: to, Instance: m.Instance, Msg: m})
}

func (v env) Emit(ev core.Event) {
	ev.Proc = v.n.self
	v.n.emit(ev)
}

func (n *Node) emit(ev core.Event) {
	if len(n.observers) > 0 {
		n.observers.OnEvent(ev)
	}
}

// Start launches the receive and activation loops.
func (n *Node) Start() {
	n.wg.Add(2)
	go n.recvLoop()
	go n.actLoop()
}

// recvLoop moves datagrams from the socket into the bounded mailboxes.
func (n *Node) recvLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		_ = n.conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		sz, from, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			continue // timeout or transient error: try again
		}
		m, err := wire.Decode(buf[:sz])
		if err != nil {
			continue // malformed datagram: dropped (message loss)
		}
		sender := n.senderOf(from)
		if sender < 0 {
			continue // not a known peer: dropped
		}
		key := mailKey{from: sender, instance: m.Instance}
		n.mu.Lock()
		box := n.mailboxes[key]
		if len(box) < n.mailboxSlots {
			n.mailboxes[key] = append(box, m)
		} else {
			n.mailboxDrops.Add(1)
			n.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: sender, Instance: m.Instance, Msg: m})
		}
		n.mu.Unlock()
	}
}

// senderOf maps a source address to a peer ID.
func (n *Node) senderOf(addr *net.UDPAddr) core.ProcID {
	for i, p := range n.peers {
		if p != nil && p.Port == addr.Port && p.IP.Equal(addr.IP) {
			return core.ProcID(i)
		}
	}
	return -1
}

// actLoop drains the mailboxes at every tick and runs the stack's
// internal actions at the (slower) step interval.
func (n *Node) actLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.tick)
	defer ticker.Stop()
	var lastStep time.Time
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		ev := env{n: n}
		if now := time.Now(); now.Sub(lastStep) >= n.stepInterval {
			lastStep = now
			for _, m := range n.stack {
				m.Step(ev)
			}
		}
		for key, box := range n.mailboxes {
			if len(box) == 0 {
				continue
			}
			mach, ok := n.routes[key.instance]
			if !ok {
				n.mailboxes[key] = box[:0]
				continue
			}
			for _, m := range box {
				n.emit(core.Event{Kind: core.EvDeliver, Proc: n.self, Peer: key.from, Instance: key.instance, Msg: m})
				mach.Deliver(ev, key.from, m)
			}
			n.mailboxes[key] = box[:0]
		}
		n.mu.Unlock()
	}
}

// Do runs f under the node's action mutex with its environment.
func (n *Node) Do(f func(env core.Env)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	f(env{n: n})
}

// Stop terminates the loops and closes the socket.
func (n *Node) Stop() {
	select {
	case <-n.stop:
		return
	default:
	}
	close(n.stop)
	n.wg.Wait()
	n.conn.Close()
}
