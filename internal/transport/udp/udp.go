// Package udp runs protocol stacks over real UDP sockets — the paper's
// concluding challenge ("actually implementing them is a future
// challenge") made concrete on the loopback interface or a LAN.
//
// # Channel semantics on UDP
//
// UDP already provides the model's unreliability: datagrams are dropped
// under congestion and (on one pair, one path) are not reordered in
// practice on loopback/LAN. What UDP does not provide is the KNOWN
// capacity bound that Theorem 1 makes mandatory. The transport restores
// it conservatively:
//
//   - each (group, sender, instance) triple gets a bounded mailbox at
//     the receiver; a message arriving at a full mailbox is dropped
//     (lose-on-full, the model's rule) and reported as core.EvLose — a
//     receive-side loss, distinct from the sender-side core.EvSendLost;
//   - the socket receive buffer is capped, bounding the kernel-queued
//     backlog; the protocol stacks must be built with a capacity bound
//     covering mailbox + kernel backlog. AssumedCapacity reports the
//     bound a stack should use (the flag domain grows linearly in it, so
//     being conservative is cheap: 2c+2 flag values for bound c).
//
// # Batched datagrams (wire v3)
//
// Outbound messages are coalesced per (destination, group) into wire v3
// batch frames and flushed at the end of every atomic section (a Step
// round, a mailbox drain, a Do body), when a batch reaches WithBatch
// messages or the datagram budget, and on the sweep tick as a deadline.
// Flushing hands all pending frames — across destinations — to the
// kernel in one sendmmsg call where the platform supports it (Linux
// amd64/arm64; elsewhere a portable write loop), and the receive loop
// pulls multiple datagrams per recvmmsg. One syscall therefore moves
// many protocol messages in both directions; Stats separates message
// counts from datagram and syscall counts so the amortization is
// observable. With WithBatch(1) every message is written immediately in
// its own datagram and default-group traffic keeps the bare wire v1/v2
// framing, byte-compatible with pre-v3 peers.
//
// # Groups: many clusters, one socket
//
// A Node hosts one or more groups, each an independent protocol stack
// with its own routes, observers, topology, and fault plan, all sharing
// the node's socket and loops. The wire v3 group id routes every
// received message to its group's mailboxes. The legacy constructor
// installs its stack as group 0; Mux attaches further clusters with
// fresh group ids (see mux.go).
//
// # Concurrency structure
//
// Two goroutines per node, coupled only through the double-buffered
// mailboxes (DESIGN.md §7): the receive loop appends decoded messages
// under the mailbox lock and signals a wakeup channel; the activation
// loop swaps the whole mailbox map out under that lock, then delivers
// the batch — and performs any resulting sends — under the action mutex
// only. A blocking send therefore never stalls the receive loop, and
// mailbox handoff costs one pointer swap per batch regardless of how
// many messages arrived.
//
// The fault plane acts per logical message, never per datagram: every
// message decoded out of a batch passes its group's injector
// individually before it is boxed, so §9 semantics and seed
// reproducibility are independent of how messages were packed on the
// wire. Malformed datagrams fail wire.DecodeBatch and are dropped whole
// — in the model, that is just the loss of the messages they carried,
// which the protocols tolerate by design.
package udp

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/wire"
)

// DefaultAssumedCapacity is the per-link capacity bound the transport is
// configured for by default: mailbox slots plus a conservative allowance
// for kernel-buffered datagrams.
const DefaultAssumedCapacity = 64

// DefaultBatch is the default ceiling on messages coalesced into one
// datagram (see WithBatch).
const DefaultBatch = 16

// maxRecordBytes conservatively bounds one batched record (a maximal v2
// frame plus its length prefix); flushCut is the batch size past which
// the next record could overflow the datagram, so the batch is flushed
// first.
const (
	maxRecordBytes = 2*wire.MaxBlobLen + 2048
	flushCut       = wire.MaxDatagram - maxRecordBytes
)

// Option configures a Node.
type Option func(*Node)

// WithMailbox sets the per-(sender, instance) mailbox size. The default
// scales with the batch ceiling — 2×WithBatch slots, so one full
// inbound batch never mass-drops at a quiet mailbox — and is 8 when
// batching is disabled (WithBatch(1)).
func WithMailbox(slots int) Option {
	return func(n *Node) { n.mailboxSlots, n.mailboxSet = slots, true }
}

// WithTick sets the fallback mailbox sweep interval (default 1ms).
// Mailbox drains are notification-driven — the receive loop wakes the
// activation loop as soon as a datagram is boxed — so the periodic sweep
// is only a safety net; it also bounds how long a coalesced send can sit
// unflushed (the batching deadline).
func WithTick(d time.Duration) Option {
	return func(n *Node) { n.tick = d }
}

// WithStepInterval sets the pacing of internal protocol actions (default
// 2ms). Action A2 retransmits on every activation, so this is the
// retransmission interval; unpaced retransmission floods the path and the
// queueing delay stalls the handshake (deliveries, by contrast, are
// event-driven and unpaced).
func WithStepInterval(d time.Duration) Option {
	return func(n *Node) { n.stepInterval = d }
}

// WithBatch sets the maximum number of messages coalesced into one
// datagram (default DefaultBatch; ceiling wire.MaxBatch). Batches also
// flush at the end of every atomic section and on the sweep tick, so
// raising the ceiling never delays a message past the tick. WithBatch(1)
// disables coalescing entirely: every message is written immediately in
// its own datagram and default-group traffic uses the bare wire v1/v2
// framing, byte-compatible with peers that predate the v3 batch frame.
func WithBatch(k int) Option {
	return func(n *Node) { n.batchMsgs, n.batchSet = k, true }
}

// WithObserver subscribes an event observer. Callbacks arrive
// concurrently from the receive loop (mailbox-full EvLose) and the
// activation loop (everything else), so the observer must be
// goroutine-safe.
func WithObserver(o core.Observer) Option {
	return func(n *Node) { n.obs0 = append(n.obs0, o) }
}

// WithTopology declares the communication graph the node's default group
// belongs to: sends to non-neighbours are dropped (and counted) at the
// sender even if an address is wired, messages from non-neighbours are
// rejected at the receiver, and the installed fault plan is validated
// against the edge set. NewCluster additionally uses it to wire only
// neighbour addresses. The default (nil) is the complete graph.
func WithTopology(t *core.Topology) Option {
	return func(n *Node) { n.topo0 = t }
}

// udpFaultSalt namespaces this substrate's injector seeds within the
// plan's rng.Mix hierarchy (sim and runtime use their own salts).
const udpFaultSalt = 0x53

// WithFaults installs a fault-injection plan (see core.FaultPlan) on the
// node's default group, interposed at the mailbox boundary: every
// decoded message from a known peer — individually, regardless of how
// messages were batched into datagrams — passes the group's injector
// before it is boxed, which may drop, duplicate, corrupt, reorder, or
// delay it, honor partition windows, and silence the group inside crash
// windows (no internal actions, no mailbox drains, arrivals consumed).
// The injector is owned by the receive loop and seeded
// rng.Mix(plan.Seed, salt, self); schedule windows are measured in
// plan.Unit ticks of wall time from Start. UDP's natural losses compose
// underneath the plan, exactly as on a real adversarial network.
func WithFaults(plan *core.FaultPlan) Option {
	return func(n *Node) { n.fault0 = plan }
}

// group is one protocol stack hosted on a node: an independent cluster
// member with its own routing, observers, topology, fault plane, and
// message counters, multiplexed with its siblings over the node's
// socket by the wire v3 group id.
type group struct {
	id        uint64
	stack     core.Stack
	routes    map[string]core.Machine
	topo      *core.Topology
	observers core.MultiObserver
	fault     *core.FaultPlan
	inj       *core.Injector // owned by recvLoop; counters readable anywhere
	faultUnit time.Duration
	epoch     time.Time // fault-schedule tick zero; set before the group is visible to the loops

	sends        atomic.Int64
	recvs        atomic.Int64
	sendDrops    atomic.Int64
	mailboxDrops atomic.Int64
}

func (g *group) emit(ev core.Event) {
	if len(g.observers) > 0 {
		g.observers.OnEvent(ev)
	}
}

// now returns the group's fault-schedule tick: wall time since its epoch
// in plan.Unit ticks. Only meaningful when a fault plan is installed.
func (g *group) now() int64 {
	return int64(time.Since(g.epoch) / g.faultUnit)
}

// down reports whether the group is inside a crash window for self.
func (g *group) down(self core.ProcID) bool {
	return g.fault != nil && g.fault.Down(self, g.now())
}

// buildGroup assembles and validates one hosted group.
func buildGroup(id uint64, stack core.Stack, topo *core.Topology, plan *core.FaultPlan,
	obs core.MultiObserver, nProcs int, self core.ProcID) (*group, error) {
	if topo != nil && topo.N() != nProcs {
		return nil, fmt.Errorf("udp: topology over %d processes, %d peers", topo.N(), nProcs)
	}
	g := &group{
		id:        id,
		stack:     stack,
		routes:    stack.ByInstance(),
		topo:      topo,
		observers: obs,
		fault:     plan,
	}
	if plan != nil {
		if err := plan.Validate(); err != nil {
			return nil, fmt.Errorf("udp: %w", err)
		}
		if err := plan.ValidateTopology(topo); err != nil {
			return nil, fmt.Errorf("udp: %w", err)
		}
		g.faultUnit = plan.TickUnit()
		seed := rng.Mix(plan.Seed, udpFaultSalt, uint64(self))
		if id != 0 {
			// Extra groups get distinct injector streams; group 0 keeps the
			// exact legacy seeding so recorded runs stay reproducible.
			seed = rng.Mix(plan.Seed, udpFaultSalt, uint64(self), id)
		}
		g.inj = core.NewInjector(plan, rng.New(seed))
	}
	return g, nil
}

// groupSet is the copy-on-write view of a node's hosted groups, swapped
// atomically so the loops read it without locks.
type groupSet struct {
	byID map[uint64]*group
	list []*group
}

// Node is one process bound to a UDP socket, hosting one or more groups.
type Node struct {
	self         core.ProcID
	conn         *net.UDPConn
	peers        []*net.UDPAddr
	senders      map[netip.AddrPort]core.ProcID // canonical ip:port -> peer, built at Start
	mailboxSlots int
	mailboxSet   bool
	tick         time.Duration
	stepInterval time.Duration
	batchMsgs    int
	batchSet     bool

	// Group-0 staging, written by options and consumed by NewNode; a
	// mux-hosted node (nil stack) must not carry any of these.
	topo0  *core.Topology
	fault0 *core.FaultPlan
	obs0   core.MultiObserver

	g0 *group // the default group (nil on mux-hosted nodes)

	gmu    sync.Mutex // serializes attach/detach
	groups atomic.Pointer[groupSet]

	// mu is the action mutex: it makes stack actions (Step, Deliver, Do)
	// atomic. Socket writes happen under it — never under mbMu — so a
	// blocking send cannot stall the receive loop. The pending outbound
	// batches live under it too; every atomic section flushes them on
	// exit.
	mu      sync.Mutex
	sendBuf []byte // flush scratch: rendered frames, guarded by mu
	frames  []frameRef
	pending map[sendKey]*outBatch
	queue   []*outBatch // pending in insertion order
	free    []*outBatch

	// mbMu guards the double-buffered mailboxes and is never held across
	// socket operations or protocol actions.
	mbMu      sync.Mutex
	mailboxes map[mailKey][]core.Message // filled by recvLoop
	spare     map[mailKey][]core.Message // drained buffer, swapped in by actLoop
	boxed     int                        // messages currently in mailboxes
	mail      chan struct{}              // capacity 1: drain wakeup

	sendDatagrams atomic.Int64
	sendSyscalls  atomic.Int64
	recvDatagrams atomic.Int64
	recvSyscalls  atomic.Int64

	decMsgs []core.Message // recvLoop-owned decode scratch

	mm mmsgState // platform batch-IO state (see mmsg_*.go)

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// Stats counts transport-level events, mirroring sim.Stats where the model
// concepts coincide. All counters are safe to read concurrently with the
// node's loops. The message counters (Sends, Recvs, SendDrops,
// MailboxDrops, Faults) belong to the node's default group; the datagram
// and syscall counters are per-socket and therefore shared by every
// group the node hosts.
type Stats struct {
	// Sends counts messages successfully handed to the socket (inside a
	// datagram whose write succeeded).
	Sends int64
	// Recvs counts messages accepted into a mailbox (received from a
	// known peer, surviving the fault plane, not dropped on full).
	Recvs int64
	// SendDrops counts messages lost at the sender — failed writes and
	// unencodable payloads. The simulator's analogue is
	// sim.Stats.SendLosses; without this counter a misconfigured or
	// saturated transport is indistinguishable from fair loss.
	SendDrops int64
	// MailboxDrops counts messages dropped at a full receive mailbox,
	// the transport's lose-on-full rule (reported as core.EvLose: the
	// message was in transit and was lost at the receiver).
	MailboxDrops int64
	// SendDatagrams and RecvDatagrams count datagrams on the socket;
	// Sends/SendDatagrams is the outbound batch occupancy.
	SendDatagrams int64
	RecvDatagrams int64
	// SendSyscalls and RecvSyscalls count the socket system calls that
	// moved those datagrams; sendmmsg/recvmmsg make them smaller than
	// the datagram counts, and Sends/SendSyscalls is the syscall
	// amortization the batching path exists to maximize.
	SendSyscalls int64
	RecvSyscalls int64
	// Faults counts the faults injected at this group's mailbox boundary
	// by the installed FaultPlan (WithFaults); zero without one. Injected
	// drops are not folded into MailboxDrops, so injected adversity stays
	// distinguishable from genuine backpressure.
	Faults core.FaultStats
}

// Stats returns a snapshot of the transport counters for the default
// group (plus the socket-wide datagram/syscall counters).
func (n *Node) Stats() Stats {
	if n.g0 != nil {
		return n.groupStats(n.g0)
	}
	return n.groupStats(&group{})
}

func (n *Node) groupStats(g *group) Stats {
	s := Stats{
		Sends:         g.sends.Load(),
		Recvs:         g.recvs.Load(),
		SendDrops:     g.sendDrops.Load(),
		MailboxDrops:  g.mailboxDrops.Load(),
		SendDatagrams: n.sendDatagrams.Load(),
		RecvDatagrams: n.recvDatagrams.Load(),
		SendSyscalls:  n.sendSyscalls.Load(),
		RecvSyscalls:  n.recvSyscalls.Load(),
	}
	if g.inj != nil {
		s.Faults = g.inj.Stats()
	}
	return s
}

// transportStats assembles the substrate-agnostic snapshot for one
// hosted group.
func (n *Node) transportStats(g *group) core.TransportStats {
	s := n.groupStats(g)
	return core.TransportStats{
		Addr:          n.Addr(),
		Sends:         s.Sends,
		Recvs:         s.Recvs,
		SendDrops:     s.SendDrops,
		MailboxDrops:  s.MailboxDrops,
		SendDatagrams: s.SendDatagrams,
		RecvDatagrams: s.RecvDatagrams,
		SendSyscalls:  s.SendSyscalls,
		RecvSyscalls:  s.RecvSyscalls,
		Faults:        s.Faults,
	}
}

type mailKey struct {
	gid      uint64
	from     core.ProcID
	instance string
}

// sendKey addresses one pending outbound batch.
type sendKey struct {
	to  core.ProcID
	gid uint64
}

// outBatch is one coalesced datagram under construction.
type outBatch struct {
	to   core.ProcID
	g    *group
	b    wire.BatchBuilder
	live bool
}

// frameRef locates one rendered datagram in the flush buffer, with the
// accounting context needed after the write.
type frameRef struct {
	off, len int
	to       core.ProcID
	g        *group
	count    int
}

// NewNode binds process self to laddr. peers maps every process ID
// (including self, whose entry is ignored) to its address. stack becomes
// the node's default group (group 0); a nil stack builds a bare
// mux-style node hosting no groups yet.
func NewNode(self core.ProcID, stack core.Stack, laddr string, peers []string, opts ...Option) (*Node, error) {
	if int(self) >= len(peers) {
		return nil, fmt.Errorf("udp: self %d outside peer list of %d", self, len(peers))
	}
	addr, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udp: resolve local %q: %w", laddr, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udp: listen %q: %w", laddr, err)
	}
	// Bound the kernel backlog so the total in-flight count stays within
	// the assumed capacity (best effort; some platforms round up).
	_ = conn.SetReadBuffer(64 * 1024)

	n := &Node{
		self:      self,
		conn:      conn,
		peers:     make([]*net.UDPAddr, len(peers)),
		mailboxes: make(map[mailKey][]core.Message),
		spare:     make(map[mailKey][]core.Message),
		pending:   make(map[sendKey]*outBatch),
		mail:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	n.groups.Store(&groupSet{byID: map[uint64]*group{}})
	for i, p := range peers {
		if core.ProcID(i) == self {
			continue
		}
		a, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("udp: resolve peer %d %q: %w", i, p, err)
		}
		n.peers[i] = a
	}
	for _, opt := range opts {
		opt(n)
	}
	if n.batchSet && (n.batchMsgs < 1 || n.batchMsgs > wire.MaxBatch) {
		conn.Close()
		return nil, fmt.Errorf("udp: invalid batch size %d", n.batchMsgs)
	}
	if !n.batchSet {
		n.batchMsgs = DefaultBatch
	}
	if n.mailboxSet && n.mailboxSlots < 1 {
		conn.Close()
		return nil, fmt.Errorf("udp: invalid mailbox size %d", n.mailboxSlots)
	}
	if !n.mailboxSet {
		// A full inbound batch lands in one (group, sender, instance)
		// mailbox; give it headroom so batching does not mass-drop at a
		// momentarily quiet receiver.
		if n.batchMsgs > 1 {
			n.mailboxSlots = 2 * n.batchMsgs
		} else {
			n.mailboxSlots = 8
		}
	}
	if n.tick <= 0 {
		n.tick = time.Millisecond
	}
	if n.stepInterval <= 0 {
		n.stepInterval = 2 * time.Millisecond
	}
	if stack == nil {
		if n.topo0 != nil || n.fault0 != nil || len(n.obs0) > 0 {
			conn.Close()
			return nil, fmt.Errorf("udp: group option on a node with no default group")
		}
		return n, nil
	}
	g, err := buildGroup(0, stack, n.topo0, n.fault0, n.obs0, len(peers), self)
	if err != nil {
		conn.Close()
		return nil, err
	}
	n.g0 = g
	n.addGroup(g)
	return n, nil
}

// addGroup publishes g to the loops (copy-on-write).
func (n *Node) addGroup(g *group) {
	n.gmu.Lock()
	defer n.gmu.Unlock()
	old := n.groups.Load()
	gs := &groupSet{byID: make(map[uint64]*group, len(old.byID)+1)}
	for id, og := range old.byID {
		gs.byID[id] = og
	}
	gs.byID[g.id] = g
	gs.list = make([]*group, 0, len(gs.byID))
	for _, og := range gs.byID {
		gs.list = append(gs.list, og)
	}
	n.groups.Store(gs)
}

// removeGroup detaches group id; its boxed mail is discarded on the next
// drain and inbound datagrams for it are dropped.
func (n *Node) removeGroup(id uint64) {
	n.gmu.Lock()
	defer n.gmu.Unlock()
	old := n.groups.Load()
	if _, ok := old.byID[id]; !ok {
		return
	}
	gs := &groupSet{byID: make(map[uint64]*group, len(old.byID)-1)}
	for gid, og := range old.byID {
		if gid != id {
			gs.byID[gid] = og
		}
	}
	gs.list = make([]*group, 0, len(gs.byID))
	for _, og := range gs.byID {
		gs.list = append(gs.list, og)
	}
	n.groups.Store(gs)
}

// Addr returns the bound local address (useful with port 0).
func (n *Node) Addr() string { return n.conn.LocalAddr().String() }

// SetPeer sets the address of peer id after construction, enabling
// two-phase setup: bind every socket with port 0 first, then wire the
// learned addresses. Must be called before Start.
func (n *Node) SetPeer(id core.ProcID, addr *net.UDPAddr) { n.peers[id] = addr }

// env implements core.Env for one group; use only under n.mu.
type env struct {
	n *Node
	g *group
}

func (v env) Self() core.ProcID { return v.n.self }
func (v env) N() int            { return len(v.n.peers) }

func (v env) Send(to core.ProcID, m core.Message) {
	n, g := v.n, v.g
	if g.topo != nil && !g.topo.HasEdge(n.self, to) {
		// Not a neighbour under the topology: no channel exists, the send
		// vanishes at the sender (and is counted, unlike an unwired peer).
		g.sendDrops.Add(1)
		g.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m, Note: "no edge"})
		return
	}
	if n.peers[to] == nil {
		return
	}
	ob := n.outFor(to, g)
	if ob.b.Count() > 0 && ob.b.Size() > flushCut {
		// The next record could overflow the datagram: ship what we have.
		n.flushBatch(ob)
		ob = n.outFor(to, g)
	}
	if err := ob.b.Add(m); err != nil {
		// Unencodable payloads are dropped: message loss, but counted so
		// the loss is observable.
		g.sendDrops.Add(1)
		g.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m})
		return
	}
	// The send event fires at enqueue so observers see protocol order;
	// the Sends counter increments at the write, when the datagram
	// actually left.
	g.emit(core.Event{Kind: core.EvSend, Proc: n.self, Peer: to, Instance: m.Instance, Msg: m})
	if ob.b.Count() >= n.batchMsgs {
		n.flushBatch(ob)
	}
}

func (v env) Emit(ev core.Event) {
	ev.Proc = v.n.self
	v.g.emit(ev)
}

// outFor returns the pending batch for (to, g), creating one from the
// free list if needed. Callers hold n.mu.
func (n *Node) outFor(to core.ProcID, g *group) *outBatch {
	k := sendKey{to: to, gid: g.id}
	if ob := n.pending[k]; ob != nil {
		return ob
	}
	var ob *outBatch
	if len(n.free) > 0 {
		ob = n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
	} else {
		ob = new(outBatch)
	}
	ob.to, ob.g, ob.live = to, g, true
	ob.b.Reset(g.id)
	n.pending[k] = ob
	n.queue = append(n.queue, ob)
	return ob
}

// flushBatch renders and writes one pending batch immediately (count or
// size threshold reached). Callers hold n.mu.
func (n *Node) flushBatch(ob *outBatch) {
	n.sendBuf = ob.b.AppendFrame(n.sendBuf[:0])
	n.frames = append(n.frames[:0], frameRef{
		off: 0, len: len(n.sendBuf), to: ob.to, g: ob.g, count: ob.b.Count(),
	})
	n.retire(ob)
	n.sendFrames(n.sendBuf, n.frames)
}

// flushAll renders every pending batch into the flush buffer and hands
// the lot to the kernel — one sendmmsg covering all destinations where
// the platform allows. Called at the end of every atomic section and on
// the sweep tick. Callers hold n.mu.
func (n *Node) flushAll() {
	if len(n.queue) == 0 {
		return
	}
	n.sendBuf = n.sendBuf[:0]
	n.frames = n.frames[:0]
	for _, ob := range n.queue {
		if !ob.live || ob.b.Count() == 0 {
			if ob.live {
				n.retirePending(ob)
			}
			ob.live = false
			n.free = append(n.free, ob)
			continue
		}
		off := len(n.sendBuf)
		n.sendBuf = ob.b.AppendFrame(n.sendBuf)
		n.frames = append(n.frames, frameRef{
			off: off, len: len(n.sendBuf) - off, to: ob.to, g: ob.g, count: ob.b.Count(),
		})
		n.retirePending(ob)
		ob.live = false
		n.free = append(n.free, ob)
	}
	n.queue = n.queue[:0]
	if len(n.frames) > 0 {
		n.sendFrames(n.sendBuf, n.frames)
	}
}

// retire removes a threshold-flushed batch from the pending map; it
// stays in the queue as a dead entry that flushAll recycles.
func (n *Node) retire(ob *outBatch) {
	n.retirePending(ob)
	ob.live = false
}

func (n *Node) retirePending(ob *outBatch) {
	delete(n.pending, sendKey{to: ob.to, gid: ob.g.id})
}

// frameFailed accounts one datagram the kernel refused: every message it
// carried is a sender-side loss.
func (n *Node) frameFailed(fr frameRef) {
	fr.g.sendDrops.Add(int64(fr.count))
	for i := 0; i < fr.count; i++ {
		// The coalesced messages are not retained past encoding, so the
		// loss events carry the link, not the message body.
		fr.g.emit(core.Event{Kind: core.EvSendLost, Proc: n.self, Peer: fr.to, Note: "batched write failed"})
	}
}

// frameSent accounts one datagram the kernel accepted.
func (n *Node) frameSent(fr frameRef) {
	fr.g.sends.Add(int64(fr.count))
	n.sendDatagrams.Add(1)
}

// sendFramesLoop is the portable writer: one sendto per frame. The
// Linux batch path falls back to it when raw access is unavailable.
func (n *Node) sendFramesLoop(buf []byte, frames []frameRef) {
	for _, fr := range frames {
		n.sendSyscalls.Add(1)
		if _, err := n.conn.WriteToUDP(buf[fr.off:fr.off+fr.len], n.peers[fr.to]); err != nil {
			n.frameFailed(fr)
			continue
		}
		n.frameSent(fr)
	}
}

// readPortable is the portable reader: one datagram per recvfrom.
func (n *Node) readPortable(buf []byte, h func([]byte, netip.AddrPort)) {
	sz, from, err := n.conn.ReadFromUDPAddrPort(buf)
	if err != nil {
		return // timeout or transient error: try again
	}
	n.recvSyscalls.Add(1)
	n.recvDatagrams.Add(1)
	h(buf[:sz], from)
}

// canonical normalizes an address for sender lookup: 4-in-6 mapped
// addresses (as dual-stack sockets report v4 sources) compare equal to
// their plain IPv4 form.
func canonical(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

// Start builds the sender lookup table from the wired peers and launches
// the receive and activation loops. Peers must not change after Start.
func (n *Node) Start() {
	epoch := time.Now() // fault-schedule tick zero
	for _, g := range n.groups.Load().list {
		g.epoch = epoch
	}
	n.senders = make(map[netip.AddrPort]core.ProcID, len(n.peers))
	for i, p := range n.peers {
		if p == nil || core.ProcID(i) == n.self {
			continue
		}
		n.senders[canonical(p.AddrPort())] = core.ProcID(i)
	}
	n.initTransportIO()
	n.wg.Add(2)
	go n.recvLoop()
	go n.actLoop()
}

// recvLoop moves datagrams from the socket into the bounded mailboxes and
// wakes the activation loop. It takes only the mailbox lock, so a stalled
// activation loop (slow actions, blocking sends) cannot back it up into
// kernel-buffer drops.
func (n *Node) recvLoop() {
	defer n.wg.Done()
	r := n.newReader()
	for {
		select {
		case <-n.stop:
			return
		default:
		}
		for _, g := range n.groups.Load().list {
			if g.inj != nil {
				// Surface expired delayed messages even on quiet links; the
				// read deadline below bounds the flush latency.
				for _, rel := range g.inj.Flush(g.now()) {
					n.box(g, rel.From, rel.Msg)
				}
			}
		}
		_ = n.conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		r.read(n.handleDatagram)
	}
}

// handleDatagram decodes one datagram (any wire version) and pushes each
// carried message through its group's fault plane into the mailboxes.
// Runs on the receive loop.
func (n *Node) handleDatagram(data []byte, from netip.AddrPort) {
	gid, msgs, err := wire.DecodeBatch(n.decMsgs[:0], data)
	if err != nil {
		return // malformed datagram: dropped whole (message loss)
	}
	n.decMsgs = msgs[:0] // keep the grown capacity for the next datagram
	sender, ok := n.senders[canonical(from)]
	if !ok {
		return // not a known peer: dropped
	}
	g := n.groups.Load().byID[gid]
	if g == nil {
		return // no such group here (stale or stray traffic): dropped
	}
	if g.topo != nil && !g.topo.HasEdge(sender, n.self) {
		return // not a neighbour in this group's graph: dropped
	}
	for _, m := range msgs {
		if g.inj != nil {
			// Per logical message, never per datagram: batching is
			// invisible to the fault plane.
			out, fate := g.inj.Filter(sender, n.self, m, g.now())
			if fate == core.FateDrop {
				g.emit(core.Event{Kind: core.EvLose, Proc: n.self, Peer: sender, Instance: m.Instance, Msg: m})
			}
			for _, dm := range out {
				n.box(g, sender, dm)
			}
			continue
		}
		n.box(g, sender, m)
	}
}

// box appends one in-transit message to its bounded mailbox (the model's
// lose-on-full rule applies) and wakes the activation loop.
func (n *Node) box(g *group, sender core.ProcID, m core.Message) {
	key := mailKey{gid: g.id, from: sender, instance: m.Instance}
	n.mbMu.Lock()
	b := n.mailboxes[key]
	full := len(b) >= n.mailboxSlots
	if !full {
		n.mailboxes[key] = append(b, m)
		n.boxed++
	}
	n.mbMu.Unlock()
	if full {
		// Lose-on-full: the message was in transit and is dropped at
		// the receiver — the model's link loss, not a send failure.
		g.mailboxDrops.Add(1)
		g.emit(core.Event{Kind: core.EvLose, Proc: n.self, Peer: sender, Instance: m.Instance, Msg: m})
		return
	}
	g.recvs.Add(1)
	select {
	case n.mail <- struct{}{}:
	default: // a wakeup is already pending
	}
}

// actLoop delivers mailbox batches as soon as the receive loop signals
// them and runs every group's internal actions at the step interval. The
// tick timer is a fallback sweep and the batching deadline.
func (n *Node) actLoop() {
	defer n.wg.Done()
	stepTimer := time.NewTicker(n.stepInterval)
	defer stepTimer.Stop()
	sweep := time.NewTicker(n.tick)
	defer sweep.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-n.mail:
			n.drainMail()
		case <-sweep.C:
			n.drainMail()
			// Deadline flush: a Send whose section somehow did not flush
			// (or a threshold edge) never waits longer than one tick.
			n.mu.Lock()
			n.flushAll()
			n.mu.Unlock()
		case <-stepTimer.C:
			gs := n.groups.Load()
			n.mu.Lock()
			for _, g := range gs.list {
				if g.down(n.self) {
					continue // crash window: no internal actions until restart
				}
				ev := env{n: n, g: g}
				for _, m := range g.stack {
					m.Step(ev)
				}
			}
			n.flushAll()
			n.mu.Unlock()
		}
	}
}

// drainMail swaps the filled mailbox buffer out (one pointer swap under
// the mailbox lock, batching the handoff) and delivers its contents
// under the action mutex, routing each mailbox to its group. Mail for a
// group inside a crash window stays in transit: it is re-boxed untouched
// and the sweep retries after the window (re-boxed mail that no longer
// fits is dropped and counted, the lose-on-full rule again).
func (n *Node) drainMail() {
	gs := n.groups.Load()
	if len(gs.list) == 1 && gs.list[0].down(n.self) {
		// Sole group crashed: leave everything boxed without swapping.
		return
	}
	n.mbMu.Lock()
	if n.boxed == 0 {
		n.mbMu.Unlock()
		return
	}
	batch := n.mailboxes
	n.mailboxes, n.spare = n.spare, n.mailboxes
	n.boxed = 0
	n.mbMu.Unlock()

	type heldBox struct {
		key  mailKey
		msgs []core.Message
	}
	var held []heldBox
	n.mu.Lock()
	for key, box := range batch {
		if len(box) == 0 {
			continue
		}
		g := gs.byID[key.gid]
		if g == nil {
			// Group detached: its in-transit mail evaporates.
			batch[key] = box[:0]
			continue
		}
		if g.down(n.self) {
			held = append(held, heldBox{key: key, msgs: append([]core.Message(nil), box...)})
			batch[key] = box[:0]
			continue
		}
		if mach, ok := g.routes[key.instance]; ok {
			ev := env{n: n, g: g}
			for _, m := range box {
				g.emit(core.Event{Kind: core.EvDeliver, Proc: n.self, Peer: key.from, Instance: key.instance, Msg: m})
				mach.Deliver(ev, key.from, m)
			}
		}
		// A message addressed to an unknown instance is consumed with no
		// effect, like a receive action with a false guard.
		batch[key] = box[:0]
	}
	n.flushAll()
	n.mu.Unlock()

	if len(held) > 0 {
		n.mbMu.Lock()
		for _, h := range held {
			b := n.mailboxes[h.key]
			for _, m := range h.msgs {
				if len(b) >= n.mailboxSlots {
					if g := gs.byID[h.key.gid]; g != nil {
						g.mailboxDrops.Add(1)
					}
					continue
				}
				b = append(b, m)
				n.boxed++
			}
			n.mailboxes[h.key] = b
		}
		n.mbMu.Unlock()
	}
}

// Do runs f under the node's action mutex with its default group's
// environment, then flushes any sends f made.
func (n *Node) Do(f func(env core.Env)) {
	if n.g0 == nil {
		panic("udp: Do on a node with no default group")
	}
	n.doGroup(n.g0, f)
}

func (n *Node) doGroup(g *group, f func(env core.Env)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	f(env{n: n, g: g})
	n.flushAll()
}

// Stop terminates the loops and closes the socket. It is idempotent and
// safe to call from multiple goroutines concurrently.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.wg.Wait()
		n.conn.Close()
	})
}
