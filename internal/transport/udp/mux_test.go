package udp

import (
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/wire"
)

// pifStacks builds one PIF stack per process for mux tests.
func pifStacks(n int) ([]core.Stack, []*pif.PIF) {
	machines := make([]*pif.PIF, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		self := core.ProcID(i)
		machines[i] = pif.New("pif", self, n, pif.Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return core.Payload{Tag: "ack", Num: b.Num*10 + int64(self)}
			},
		}, pif.WithCapacityBound(DefaultAssumedCapacity))
		stacks[i] = core.Stack{machines[i]}
	}
	return stacks, machines
}

func runBroadcast(t *testing.T, c *MuxCluster, machines []*pif.PIF, token core.Payload) {
	t.Helper()
	c.Do(0, func(env core.Env) {
		if !machines[0].Invoke(env, token) {
			t.Error("Invoke rejected")
		}
	})
	ok := waitFor(t, 30*time.Second, func() bool {
		var done bool
		c.Do(0, func(core.Env) { done = machines[0].Done() && machines[0].BMes.Equal(token) })
		return done
	})
	if !ok {
		t.Fatalf("broadcast %v over the mux did not complete", token)
	}
}

// TestMuxHostsIndependentClusters runs two PIF clusters over one socket
// pair per process and checks both complete with their own tokens.
func TestMuxHostsIndependentClusters(t *testing.T) {
	// Not parallel: concurrent clusters share the loopback path and
	// the timer wheel; interference slows the handshakes by >20x.
	const n = 3
	m, err := NewMux(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })

	stacksA, machA := pifStacks(n)
	stacksB, machB := pifStacks(n)
	ca, err := m.Attach(stacksA)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := m.Attach(stacksB)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Group() == cb.Group() || ca.Group() == 0 {
		t.Fatalf("group ids %d and %d must be distinct and nonzero", ca.Group(), cb.Group())
	}
	runBroadcast(t, ca, machA, core.Payload{Tag: "a", Num: 1})
	runBroadcast(t, cb, machB, core.Payload{Tag: "b", Num: 2})

	// The clusters shared sockets: each cluster counts its own messages,
	// and both rode the same datagram stream.
	sa, sb := ca.NodeStats(), cb.NodeStats()
	if sa[0].Sends == 0 || sb[0].Sends == 0 {
		t.Fatalf("per-cluster Sends: a=%d b=%d, want both > 0", sa[0].Sends, sb[0].Sends)
	}
}

// TestMuxIsolation is the corruption-crossing test: cluster A runs
// under an aggressive corruption/drop plan while cluster B runs clean
// on the same sockets. B must complete untouched — no injected faults,
// no foreign deliveries — and hand-built garbage aimed at A's group id
// (or at no group at all) must never surface in B.
func TestMuxIsolation(t *testing.T) {
	// Not parallel: shares the loopback path (see above).
	const n = 3
	m, err := NewMux(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })

	plan := &core.FaultPlan{
		Seed: 11,
		Default: core.LinkFaults{
			DropRate:    0.20,
			CorruptRate: 0.20,
			DupRate:     0.10,
		},
	}
	stacksA, machA := pifStacks(n)
	stacksB, machB := pifStacks(n)
	ca, err := m.Attach(stacksA, WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := m.Attach(stacksB)
	if err != nil {
		t.Fatal(err)
	}

	// Garbage pressure: corrupt v3 frames for A's group, an unknown
	// group, and raw noise, all fired at node 0 from node 1's address —
	// i.e. from a known peer, past the sender check.
	batch, err := wire.AppendBatch(nil, ca.Group(), []core.Message{{Instance: "pif", Kind: "PIF"}})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), batch...)
	corrupt[len(corrupt)-1] ^= 0xFF
	stray, err := wire.AppendBatch(nil, 9999, []core.Message{{Instance: "pif", Kind: "PIF"}})
	if err != nil {
		t.Fatal(err)
	}
	noise := [][]byte{corrupt, stray, {0x53, 0x4e, 3, 0xFF}, {1, 2, 3}}
	target := mustUDPAddr(t, m.nodes[0].Addr())
	for i := 0; i < 20; i++ {
		for _, d := range noise {
			// Sent from node 1's own socket so the sender table accepts the
			// source address; the frame contents must still be quarantined.
			if _, err := m.nodes[1].conn.WriteToUDP(d, target); err != nil {
				t.Fatal(err)
			}
		}
	}

	runBroadcast(t, ca, machA, core.Payload{Tag: "a", Num: 5})
	runBroadcast(t, cb, machB, core.Payload{Tag: "b", Num: 6})

	var faultsA, faultsB int64
	for _, s := range ca.NodeStats() {
		faultsA += s.Faults.Total()
	}
	for _, s := range cb.NodeStats() {
		faultsB += s.Faults.Total()
	}
	if faultsA == 0 {
		t.Fatal("cluster A's fault plan injected nothing")
	}
	if faultsB != 0 {
		t.Fatalf("clean cluster B saw %d injected faults: fault plane leaked across groups", faultsB)
	}
}

// TestMuxClusterCloseDetaches: closing one cluster leaves its siblings
// running on the shared sockets.
func TestMuxClusterCloseDetaches(t *testing.T) {
	// Not parallel: shares the loopback path (see above).
	const n = 2
	m, err := NewMux(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	stacksA, machA := pifStacks(n)
	stacksB, machB := pifStacks(n)
	ca, err := m.Attach(stacksA)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := m.Attach(stacksB)
	if err != nil {
		t.Fatal(err)
	}
	runBroadcast(t, ca, machA, core.Payload{Tag: "a", Num: 1})
	if err := ca.Close(); err != nil {
		t.Fatal(err)
	}
	runBroadcast(t, cb, machB, core.Payload{Tag: "b", Num: 2})
}

// TestMuxRejectsNodeLevelAttachOptions: socket-level knobs are fixed at
// NewMux; passing them per cluster must fail loudly.
func TestMuxRejectsNodeLevelAttachOptions(t *testing.T) {
	t.Parallel()
	m, err := NewMux(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	stacks, _ := pifStacks(2)
	if _, err := m.Attach(stacks, WithBatch(4)); err == nil {
		t.Fatal("WithBatch accepted per attached cluster")
	}
	if _, err := m.Attach(stacks, WithMailbox(4)); err == nil {
		t.Fatal("WithMailbox accepted per attached cluster")
	}
}
