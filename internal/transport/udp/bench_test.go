package udp

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/stat"
)

// flooder mirrors the runtime package's throughput machine: Step seeds
// one message per peer, Deliver echoes one back, so sustained traffic is
// driven by the delivery path, not the step pacing.
type flooder struct {
	inst      string
	self      core.ProcID
	n         int
	blob      []byte // opaque payload body wire-encoded into every datagram
	delivered *atomic.Int64
}

func (f *flooder) Instance() string { return f.inst }

func (f *flooder) Step(env core.Env) bool {
	for q := 0; q < f.n; q++ {
		if core.ProcID(q) != f.self {
			env.Send(core.ProcID(q), core.Message{Instance: f.inst, Kind: "flood", B: core.Payload{Blob: f.blob}})
		}
	}
	return true
}

func (f *flooder) Deliver(env core.Env, from core.ProcID, m core.Message) {
	f.delivered.Add(1)
	env.Send(from, core.Message{Instance: f.inst, Kind: "flood", B: core.Payload{Blob: f.blob}})
}

func blobBody(size int) []byte {
	if size == 0 {
		return nil
	}
	body := make([]byte, size)
	for i := range body {
		body[i] = byte(i)
	}
	return body
}

// benchCluster binds n nodes on loopback and wires the learned ports.
func benchCluster(b *testing.B, n int, mk func(self core.ProcID) core.Stack) []*Node {
	b.Helper()
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := NewNode(core.ProcID(i), mk(core.ProcID(i)), "127.0.0.1:0", make([]string, n))
		if err != nil {
			b.Fatalf("bind node %d: %v", i, err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
	}
	for i, node := range nodes {
		for j, a := range addrs {
			if i == j {
				continue
			}
			peer, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				b.Fatalf("parse %q: %v", a, err)
			}
			node.SetPeer(core.ProcID(j), peer)
		}
	}
	for _, node := range nodes {
		node.Start()
	}
	return nodes
}

func stopCluster(nodes []*Node) {
	for _, node := range nodes {
		node.Stop()
	}
}

// BenchmarkUDPThroughput measures sustained deliveries/sec over real
// loopback sockets: one op is one delivered message. Compare across
// revisions with benchstat. The blob sub-family scales the opaque
// payload body (0B / 256B / 4KiB) at fixed n — every body is
// wire-encoded into and decoded out of real datagrams — so the benchgate
// CI job guards the v2 framing hot path against regressions.
func BenchmarkUDPThroughput(b *testing.B) {
	for _, n := range []int{3, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchUDPThroughput(b, n, 0)
		})
	}
	// The plain n=8 case above IS the 0B point of the payload triple
	// (0B / 256B / 4KiB); re-running it under a second name would double
	// the benchgate's work for the identical configuration.
	for _, size := range []int{256, 4096} {
		b.Run(fmt.Sprintf("n=8/blob=%s", stat.SizeLabel(size)), func(b *testing.B) {
			benchUDPThroughput(b, 8, size)
		})
	}
}

func benchUDPThroughput(b *testing.B, n, blob int) {
	var delivered atomic.Int64
	body := blobBody(blob)
	nodes := benchCluster(b, n, func(self core.ProcID) core.Stack {
		return core.Stack{&flooder{inst: "flood", self: self, n: n, blob: body, delivered: &delivered}}
	})
	// Stop per invocation (not b.Cleanup): the runner re-invokes
	// this function while calibrating b.N, and leaked clusters
	// would keep flooding the loopback during the timed run.
	defer stopCluster(nodes)
	// Let the flood reach steady state before timing.
	warmup := time.Now().Add(10 * time.Second)
	for delivered.Load() < int64(n) {
		if time.Now().After(warmup) {
			b.Fatalf("flood never started: %d deliveries", delivered.Load())
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.ResetTimer()
	start := time.Now()
	deadline := start.Add(5 * time.Minute)
	target := delivered.Load() + int64(b.N)
	for delivered.Load() < target {
		if time.Now().After(deadline) {
			b.Fatalf("flood stalled: %d of %d deliveries", target-delivered.Load(), b.N)
		}
		time.Sleep(50 * time.Microsecond)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "msgs/sec")
	}
}
