//go:build !linux || (!amd64 && !arm64)

package udp

import "net/netip"

// Portable batch-IO shims: platforms without the raw
// sendmmsg/recvmmsg path still batch messages into wire v3 datagrams —
// the per-message syscall amortization — but move one datagram per
// system call.

type mmsgState struct{}

func (n *Node) initTransportIO() {}

func (n *Node) sendFrames(buf []byte, frames []frameRef) {
	n.sendFramesLoop(buf, frames)
}

type reader struct {
	n   *Node
	buf []byte
}

func (n *Node) newReader() *reader {
	return &reader{n: n, buf: make([]byte, 64*1024)}
}

func (r *reader) read(h func([]byte, netip.AddrPort)) {
	r.n.readPortable(r.buf, h)
}
