package udp

import (
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
)

// faultCluster builds a started PIF Cluster with the given plan installed
// on every node.
func faultCluster(t *testing.T, n int, plan *core.FaultPlan) (*Cluster, []*pif.PIF) {
	t.Helper()
	machines := make([]*pif.PIF, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		self := core.ProcID(i)
		machines[i] = pif.New("pif", self, n, pif.Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return core.Payload{Tag: "ack", Num: b.Num*10 + int64(self)}
			},
		}, pif.WithCapacityBound(DefaultAssumedCapacity))
		stacks[i] = core.Stack{machines[i]}
	}
	c, err := NewCluster(stacks, WithFaults(plan))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c, machines
}

func TestPIFOverUDPUnderFaultPlan(t *testing.T) {
	// Not parallel: concurrent clusters share the loopback path and
	// the timer wheel; interference slows the handshakes by >20x.
	const n = 3
	plan := &core.FaultPlan{
		Seed: 9,
		Default: core.LinkFaults{
			DropRate:    0.15,
			DupRate:     0.10,
			ReorderRate: 0.10,
			DelayRate:   0.05,
			DelayTicks:  5,
			CorruptRate: 0.05,
		},
	}
	c, machines := faultCluster(t, n, plan)

	token := core.Payload{Tag: "hello", Num: 4}
	c.Do(0, func(env core.Env) {
		if !machines[0].Invoke(env, token) {
			t.Error("Invoke rejected")
		}
	})
	ok := waitFor(t, 30*time.Second, func() bool {
		var done bool
		c.Do(0, func(core.Env) { done = machines[0].Done() && machines[0].BMes.Equal(token) })
		return done
	})
	if !ok {
		t.Fatal("broadcast over UDP did not survive the fault plan")
	}
	var agg core.FaultStats
	for _, s := range c.NodeStats() {
		agg.Add(s.Faults)
	}
	if agg.Total() == 0 {
		t.Fatal("fault plan injected nothing at the mailbox boundary")
	}
}

func TestCrashRestartWindowOverUDP(t *testing.T) {
	// Not parallel: shares the loopback path (see above).
	const n = 3
	plan := &core.FaultPlan{
		Seed:    9,
		Unit:    time.Millisecond,
		Crashes: []core.CrashWindow{{Proc: 1, From: 0, Until: 250}},
	}
	c, machines := faultCluster(t, n, plan)

	token := core.Payload{Tag: "hello", Num: 7}
	c.Do(0, func(env core.Env) { machines[0].Invoke(env, token) })
	// The decision needs feedback from the crashed node, so completion
	// implies the window ended and the warm restart worked.
	ok := waitFor(t, 30*time.Second, func() bool {
		var done bool
		c.Do(0, func(core.Env) { done = machines[0].Done() && machines[0].BMes.Equal(token) })
		return done
	})
	if !ok {
		t.Fatal("broadcast did not complete after the crash window")
	}
	if c.nodes[1].Stats().Faults.CrashDrops == 0 {
		t.Fatal("no arrivals were consumed during the crash window")
	}
}

func TestInvalidFaultPlanRejectedAtBind(t *testing.T) {
	t.Parallel()
	bad := &core.FaultPlan{Default: core.LinkFaults{DropRate: 1.5}}
	if _, err := NewNode(0, core.Stack{}, "127.0.0.1:0", make([]string, 2), WithFaults(bad)); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
