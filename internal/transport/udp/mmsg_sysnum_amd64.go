//go:build linux

package udp

// The frozen stdlib syscall tables predate sendmmsg(2) (Linux 3.0), so
// its number is spelled here per architecture; recvmmsg comes from
// syscall.SYS_RECVMMSG, which the tables do carry.
const sysSENDMMSG = 307
