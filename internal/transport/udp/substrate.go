// Substrate-mode driving: Cluster assembles one Node per stack on
// loopback sockets and implements core.Substrate over the set, so the
// façade can run the same cluster code over real datagrams. The two-phase
// setup (bind every socket on port 0 first, then wire the learned
// addresses) that cmd/snapnet used to hand-roll lives here now.
package udp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/snapstab/snapstab/internal/core"
)

// ErrStopped is returned by Cluster.Await when the cluster was closed
// before the condition held.
var ErrStopped = errors.New("udp: cluster stopped")

// Cluster is a set of UDP nodes on the loopback interface, one per
// protocol stack, fully wired and started.
type Cluster struct {
	nodes     []*Node
	closeOnce sync.Once
}

var _ core.Substrate = (*Cluster)(nil)

// NewCluster binds one loopback socket per stack, wires every node to
// every other, and starts them. The caller owns the cluster and must
// Close it to release the sockets.
func NewCluster(stacks []core.Stack, opts ...Option) (*Cluster, error) {
	n := len(stacks)
	if n < 2 {
		return nil, fmt.Errorf("udp: need at least 2 processes, got %d", n)
	}
	c := &Cluster{nodes: make([]*Node, n)}
	addrs := make([]*net.UDPAddr, n)
	for i, s := range stacks {
		node, err := NewNode(core.ProcID(i), s, "127.0.0.1:0", make([]string, n), opts...)
		if err != nil {
			for _, prev := range c.nodes[:i] {
				prev.Stop()
			}
			return nil, fmt.Errorf("udp: bind node %d: %w", i, err)
		}
		c.nodes[i] = node
		addrs[i] = node.conn.LocalAddr().(*net.UDPAddr)
	}
	// Wire addresses along edges only: under a topology a node simply
	// never learns where its non-neighbours live, mirroring a deployment
	// where each host is configured with its neighbour list.
	topo := c.nodes[0].topo0
	for i, node := range c.nodes {
		for j, a := range addrs {
			if i == j {
				continue
			}
			if topo != nil && !topo.HasEdge(core.ProcID(i), core.ProcID(j)) {
				continue
			}
			node.SetPeer(core.ProcID(j), a)
		}
	}
	for _, node := range c.nodes {
		node.Start()
	}
	return c, nil
}

// N returns the number of nodes.
func (c *Cluster) N() int { return len(c.nodes) }

// Addrs returns every node's bound local address.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.nodes))
	for i, node := range c.nodes {
		out[i] = node.Addr()
	}
	return out
}

// NodeStats returns every node's transport counters.
func (c *Cluster) NodeStats() []Stats {
	out := make([]Stats, len(c.nodes))
	for i, node := range c.nodes {
		out[i] = node.Stats()
	}
	return out
}

// TransportStats implements core.TransportStatser: one snapshot per node
// in the substrate-agnostic shape. UDP tracks node-level counters only,
// so Links stays nil; the datagram and syscall counters expose the wire
// v3 batching path's amortization (Sends/SendDatagrams is the batch
// occupancy, Sends/SendSyscalls the syscall amortization).
func (c *Cluster) TransportStats() []core.TransportStats {
	out := make([]core.TransportStats, len(c.nodes))
	for i, node := range c.nodes {
		out[i] = node.transportStats(node.g0)
	}
	return out
}

var _ core.TransportStatser = (*Cluster)(nil)

// Do runs f under node p's action mutex with its environment.
func (c *Cluster) Do(p core.ProcID, f func(env core.Env)) {
	c.nodes[p].Do(f)
}

// Await evaluates cond under node p's action mutex until it holds,
// polling at millisecond cadence (deliveries are event-driven; the poll
// bounds only external observation latency). It returns nil, ctx.Err(),
// or ErrStopped.
func (c *Cluster) Await(ctx context.Context, p core.ProcID, cond func(env core.Env) bool) error {
	node := c.nodes[p]
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	for {
		ok := false
		node.Do(func(env core.Env) { ok = cond(env) })
		if ok {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-node.stop:
			return ErrStopped
		case <-ticker.C:
		}
	}
}

// Close stops every node, releasing loops and sockets. Idempotent.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		for _, node := range c.nodes {
			node.Stop()
		}
	})
	return nil
}
