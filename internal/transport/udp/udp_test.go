package udp

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/idl"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
)

// cluster spins up n nodes on loopback with OS-assigned ports. Each
// process's stack is produced by mk once the port layout is known.
func cluster(t *testing.T, n int, mk func(self core.ProcID) core.Stack) []*Node {
	t.Helper()
	// First bind placeholder nodes to learn ports: bind real nodes in two
	// phases instead — phase 1 reserves addresses.
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	// Reserve ports by binding, then rebuild the peer lists.
	for i := 0; i < n; i++ {
		node, err := NewNode(core.ProcID(i), mk(core.ProcID(i)), "127.0.0.1:0", make([]string, n))
		if err != nil {
			t.Fatalf("bind node %d: %v", i, err)
		}
		nodes[i] = node
		addrs[i] = node.Addr()
	}
	// Fill in the real peer addresses now that all ports are known.
	for i, node := range nodes {
		for j, a := range addrs {
			if i == j {
				continue
			}
			peer, err := net.ResolveUDPAddr("udp", a)
			if err != nil {
				t.Fatalf("parse %q: %v", a, err)
			}
			node.peers[j] = peer
		}
	}
	for _, node := range nodes {
		node.Start()
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.Stop()
		}
	})
	return nodes
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func TestPIFOverLoopbackUDP(t *testing.T) {
	// Not parallel: concurrent clusters share the loopback path and
	// the timer wheel; interference slows the handshakes by >20x.
	const n = 3
	machines := make([]*pif.PIF, n)
	nodes := cluster(t, n, func(self core.ProcID) core.Stack {
		m := pif.New("pif", self, n, pif.Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return core.Payload{Tag: "ack", Num: b.Num*10 + int64(self)}
			},
		}, pif.WithCapacityBound(DefaultAssumedCapacity))
		machines[self] = m
		return core.Stack{m}
	})

	token := core.Payload{Tag: "hello", Num: 4}
	nodes[0].Do(func(env core.Env) {
		if !machines[0].Invoke(env, token) {
			t.Error("Invoke rejected")
		}
	})
	ok := waitFor(t, 20*time.Second, func() bool {
		var done bool
		nodes[0].Do(func(core.Env) { done = machines[0].Done() && machines[0].BMes.Equal(token) })
		return done
	})
	if !ok {
		t.Fatal("broadcast over real UDP did not complete")
	}
}

func TestPIFOverUDPFromCorruptedState(t *testing.T) {
	// Not parallel: concurrent clusters share the loopback path and
	// the timer wheel; interference slows the handshakes by >20x.
	const n = 2
	machines := make([]*pif.PIF, n)
	r := rng.New(7)
	nodes := cluster(t, n, func(self core.ProcID) core.Stack {
		m := pif.New("pif", self, n, pif.Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return core.Payload{Tag: "ack", Num: b.Num*10 + int64(self)}
			},
		}, pif.WithCapacityBound(DefaultAssumedCapacity))
		m.Corrupt(r)
		machines[self] = m
		return core.Stack{m}
	})

	token := core.Payload{Tag: "fresh", Num: 3}
	invoked := waitFor(t, 20*time.Second, func() bool {
		var ok bool
		nodes[0].Do(func(env core.Env) { ok = machines[0].Invoke(env, token) })
		return ok
	})
	if !invoked {
		t.Fatal("corrupted computation never terminated")
	}
	var feedback core.Payload
	nodes[0].Do(func(core.Env) {
		cb := machines[0].Callbacks()
		cb.OnFeedback = func(_ core.Env, _ core.ProcID, f core.Payload) { feedback = f }
		machines[0].SetCallbacks(cb)
	})
	ok := waitFor(t, 20*time.Second, func() bool {
		var done bool
		nodes[0].Do(func(core.Env) { done = machines[0].Done() && machines[0].BMes.Equal(token) })
		return done
	})
	if !ok {
		t.Fatal("requested broadcast did not complete over UDP")
	}
	want := core.Payload{Tag: "ack", Num: token.Num*10 + 1}
	if !feedback.Equal(want) {
		t.Fatalf("decided on feedback %v, want %v", feedback, want)
	}
}

func TestIDLOverUDP(t *testing.T) {
	// Not parallel: concurrent clusters share the loopback path and
	// the timer wheel; interference slows the handshakes by >20x.
	const n = 3
	ids := []int64{30, 10, 20}
	machines := make([]*idl.IDL, n)
	nodes := cluster(t, n, func(self core.ProcID) core.Stack {
		d := idl.New("idl", self, n, ids[self], pif.WithCapacityBound(DefaultAssumedCapacity))
		machines[self] = d
		return d.Machines()
	})
	nodes[0].Do(func(env core.Env) { machines[0].Invoke(env) })
	ok := waitFor(t, 20*time.Second, func() bool {
		var done bool
		nodes[0].Do(func(core.Env) { done = machines[0].Done() })
		return done
	})
	if !ok {
		t.Fatal("IDs-Learning over UDP did not complete")
	}
	nodes[0].Do(func(core.Env) {
		if machines[0].MinID != 10 || machines[0].IDTab[1] != 10 || machines[0].IDTab[2] != 20 {
			t.Errorf("MinID=%d IDTab=%v", machines[0].MinID, machines[0].IDTab)
		}
	})
}

func TestMailboxBoundsBacklog(t *testing.T) {
	// Not parallel: concurrent clusters share the loopback path and
	// the timer wheel; interference slows the handshakes by >20x.
	// A node that is never activated accumulates at most mailboxSlots
	// messages per (sender, instance).
	const n = 2
	machines := make([]*pif.PIF, n)
	nodes := cluster(t, n, func(self core.ProcID) core.Stack {
		m := pif.New("pif", self, n, pif.Callbacks{}, pif.WithCapacityBound(DefaultAssumedCapacity))
		machines[self] = m
		return core.Stack{m}
	})
	// Freeze node 1's activation loop by holding its mutex while node 0
	// floods it.
	release := make(chan struct{})
	frozen := make(chan struct{})
	go func() {
		nodes[1].Do(func(core.Env) {
			close(frozen)
			<-release
		})
	}()
	<-frozen
	nodes[0].Do(func(env core.Env) {
		for i := 0; i < 100; i++ {
			env.Send(1, core.Message{Instance: "pif", Kind: pif.Kind})
		}
	})
	time.Sleep(300 * time.Millisecond) // let the receive loop drain the socket
	close(release)
	nodes[1].Do(func(core.Env) {}) // synchronize
	nodes[1].mbMu.Lock()
	box := nodes[1].mailboxes[mailKey{from: 0, instance: "pif"}]
	over := len(box) > nodes[1].mailboxSlots
	nodes[1].mbMu.Unlock()
	if over {
		t.Fatalf("mailbox holds %d messages, above the bound", len(box))
	}
}

func TestStatsCountSendsAndDrops(t *testing.T) {
	// Not parallel: shares the loopback path with the cluster tests.
	const n = 2
	machines := make([]*pif.PIF, n)
	nodes := cluster(t, n, func(self core.ProcID) core.Stack {
		m := pif.New("pif", self, n, pif.Callbacks{}, pif.WithCapacityBound(DefaultAssumedCapacity))
		machines[self] = m
		return core.Stack{m}
	})
	nodes[0].Do(func(env core.Env) {
		env.Send(1, core.Message{Instance: "pif", Kind: pif.Kind})
	})
	if got := nodes[0].Stats().Sends; got < 1 {
		t.Fatalf("Sends = %d after a successful send, want >= 1", got)
	}
	if got := nodes[0].Stats().SendDrops; got != 0 {
		t.Fatalf("SendDrops = %d on a healthy socket, want 0", got)
	}
}

func TestStatsCountDroppedSends(t *testing.T) {
	t.Parallel()
	stack := core.Stack{pif.New("pif", 0, 2, pif.Callbacks{})}
	node, err := NewNode(0, stack, "127.0.0.1:0", []string{"", "127.0.0.1:9"})
	if err != nil {
		t.Fatal(err)
	}
	// Stop closes the socket (the loops were never started), so every
	// subsequent WriteToUDP fails: the silent-swallow path of env.Send.
	node.Stop()
	const attempts = 3
	node.Do(func(env core.Env) {
		for i := 0; i < attempts; i++ {
			env.Send(1, core.Message{Instance: "pif", Kind: pif.Kind})
		}
	})
	s := node.Stats()
	if s.SendDrops != attempts {
		t.Fatalf("SendDrops = %d, want %d", s.SendDrops, attempts)
	}
	if s.Sends != 0 {
		t.Fatalf("Sends = %d on a closed socket, want 0", s.Sends)
	}
}

func TestStatsCountMailboxDrops(t *testing.T) {
	// Not parallel: shares the loopback path with the cluster tests.
	// A receiver with a 1-slot mailbox whose activation loop is frozen
	// (its action mutex is held) must count every overflowing datagram —
	// and report each as a receive-side EvLose, never as the sender-side
	// EvSendLost.
	mk := func(self core.ProcID) core.Stack {
		return core.Stack{pif.New("pif", self, 2, pif.Callbacks{}, pif.WithCapacityBound(DefaultAssumedCapacity))}
	}
	var losses, sendLost atomic.Int64
	recv, err := NewNode(1, mk(1), "127.0.0.1:0", make([]string, 2),
		WithMailbox(1), WithObserver(core.ObserverFunc(func(e core.Event) {
			switch e.Kind {
			case core.EvLose:
				losses.Add(1)
			case core.EvSendLost:
				sendLost.Add(1)
			}
		})))
	if err != nil {
		t.Fatal(err)
	}
	send, err := NewNode(0, mk(0), "127.0.0.1:0", make([]string, 2))
	if err != nil {
		t.Fatal(err)
	}
	recvAddr, err := net.ResolveUDPAddr("udp", recv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sendAddr, err := net.ResolveUDPAddr("udp", send.Addr())
	if err != nil {
		t.Fatal(err)
	}
	send.SetPeer(1, recvAddr)
	recv.SetPeer(0, sendAddr)
	recv.Start() // the sender's loops stay off: Do drives its socket directly
	t.Cleanup(func() { recv.Stop(); send.Stop() })

	// Freeze the receiver's activation loop by holding its action mutex:
	// drains stop, but the receive loop keeps boxing (and dropping).
	release := make(chan struct{})
	frozen := make(chan struct{})
	go func() {
		recv.Do(func(core.Env) {
			close(frozen)
			<-release
		})
	}()
	<-frozen
	defer close(release)

	send.Do(func(env core.Env) {
		for i := 0; i < 50; i++ {
			env.Send(1, core.Message{Instance: "pif", Kind: pif.Kind})
		}
	})
	if !waitFor(t, 5*time.Second, func() bool { return recv.Stats().MailboxDrops > 0 }) {
		t.Fatal("flooding a 1-slot mailbox on a frozen receiver produced no MailboxDrops")
	}
	if losses.Load() == 0 {
		t.Fatal("mailbox-full drops emitted no EvLose events")
	}
	if got := sendLost.Load(); got != 0 {
		t.Fatalf("mailbox-full drops emitted %d EvSendLost events; receive-side loss must be EvLose", got)
	}
}

func TestNodeValidation(t *testing.T) {
	t.Parallel()
	stack := core.Stack{pif.New("pif", 0, 2, pif.Callbacks{})}
	if _, err := NewNode(5, stack, "127.0.0.1:0", []string{"a", "b"}); err == nil {
		t.Fatal("out-of-range self accepted")
	}
	if _, err := NewNode(0, stack, "127.0.0.1:0", []string{"", "not-an-addr:xx"}); err == nil {
		t.Fatal("bad peer address accepted")
	}
}
