//go:build linux && (amd64 || arm64)

package udp

// Raw batch IO: sendmmsg/recvmmsg through the runtime's netpoller. The
// stdlib syscall package carries the syscall numbers on these
// platforms, so no external dependency is needed; everywhere else the
// portable shims apply (mmsg_portable.go).
//
// The RawConn callbacks keep the Go IO discipline intact: the sockets
// are non-blocking, so a syscall that would block returns EAGAIN, the
// callback returns false, and the runtime parks the goroutine on the
// netpoller until readiness or the configured deadline — exactly the
// semantics ReadFromUDPAddrPort/WriteToUDP provide, one datagram batch
// at a time instead of one datagram.

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"

	"github.com/snapstab/snapstab/internal/core"
)

// mmsgCap is how many datagrams one recvmmsg/sendmmsg call moves at
// most. Receive buffers are sized for a maximal datagram, so the cap
// also bounds the reader's standing allocation (16 × 64KiB = 1MiB).
const mmsgCap = 16

// mmsghdr is struct mmsghdr from socket(7): a Msghdr plus the
// kernel-written datagram length, padded to keep the array stride
// 8-aligned on both amd64 and arm64.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

type mmsgState struct {
	ok     bool
	rc     syscall.RawConn
	sendSA [][]byte // per-peer raw sockaddr bytes, fixed after Start

	// sendmmsg scratch, used under n.mu only.
	sIov  []syscall.Iovec
	sHdrs []mmsghdr
}

// initTransportIO precomputes raw sockaddrs for every wired peer and
// grabs the raw connection. Any address the socket's family cannot
// express disables the raw path wholesale; the portable loop takes over.
func (n *Node) initTransportIO() {
	rc, err := n.conn.SyscallConn()
	if err != nil {
		return
	}
	la, ok := n.conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		return
	}
	v4sock := la.IP.To4() != nil
	n.mm.sendSA = make([][]byte, len(n.peers))
	for i, p := range n.peers {
		if p == nil || core.ProcID(i) == n.self {
			continue
		}
		sa := rawSockaddr(p, v4sock)
		if sa == nil {
			return
		}
		n.mm.sendSA[i] = sa
	}
	n.mm.rc = rc
	n.mm.sIov = make([]syscall.Iovec, mmsgCap)
	n.mm.sHdrs = make([]mmsghdr, mmsgCap)
	n.mm.ok = true
}

// rawSockaddr renders addr as the raw sockaddr bytes the socket's
// family expects: AF_INET for a v4 socket, AF_INET6 (v4-mapped when
// needed) for a dual-stack one.
func rawSockaddr(addr *net.UDPAddr, v4sock bool) []byte {
	if v4sock {
		ip4 := addr.IP.To4()
		if ip4 == nil {
			return nil
		}
		var sa syscall.RawSockaddrInet4
		sa.Family = syscall.AF_INET
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(addr.Port>>8), byte(addr.Port)
		copy(sa.Addr[:], ip4)
		buf := make([]byte, syscall.SizeofSockaddrInet4)
		copy(buf, (*(*[syscall.SizeofSockaddrInet4]byte)(unsafe.Pointer(&sa)))[:])
		return buf
	}
	ip16 := addr.IP.To16()
	if ip16 == nil {
		return nil
	}
	var sa syscall.RawSockaddrInet6
	sa.Family = syscall.AF_INET6
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0], p[1] = byte(addr.Port>>8), byte(addr.Port)
	copy(sa.Addr[:], ip16)
	buf := make([]byte, syscall.SizeofSockaddrInet6)
	copy(buf, (*(*[syscall.SizeofSockaddrInet6]byte)(unsafe.Pointer(&sa)))[:])
	return buf
}

// sendFrames writes every rendered frame, packing up to mmsgCap
// datagrams — across destinations — into each sendmmsg call. Callers
// hold n.mu.
func (n *Node) sendFrames(buf []byte, frames []frameRef) {
	if !n.mm.ok {
		n.sendFramesLoop(buf, frames)
		return
	}
	for start := 0; start < len(frames); {
		k := len(frames) - start
		if k > mmsgCap {
			k = mmsgCap
		}
		for j := 0; j < k; j++ {
			fr := frames[start+j]
			sa := n.mm.sendSA[fr.to]
			iov := &n.mm.sIov[j]
			iov.Base = &buf[fr.off]
			iov.SetLen(fr.len)
			h := &n.mm.sHdrs[j].hdr
			h.Name = &sa[0]
			h.Namelen = uint32(len(sa))
			h.Iov = iov
			h.Iovlen = 1
		}
		sent := 0
		var serr syscall.Errno
		werr := n.mm.rc.Write(func(fd uintptr) bool {
			for sent < k {
				v, _, e := syscall.Syscall6(sysSENDMMSG, fd,
					uintptr(unsafe.Pointer(&n.mm.sHdrs[sent])), uintptr(k-sent), 0, 0, 0)
				if e == syscall.EINTR {
					continue
				}
				if e == syscall.EAGAIN {
					return false // park on the netpoller until writable
				}
				if e != 0 {
					serr = e
					return true
				}
				n.sendSyscalls.Add(1)
				sent += int(v)
			}
			return true
		})
		for j := 0; j < sent; j++ {
			n.frameSent(frames[start+j])
		}
		if sent < k {
			for j := sent; j < k; j++ {
				n.frameFailed(frames[start+j])
			}
			if werr != nil || serr != 0 {
				// Socket-level failure (closed, unreachable): the remaining
				// chunks would fail identically.
				for _, fr := range frames[start+k:] {
					n.frameFailed(fr)
				}
				return
			}
		}
		start += k
	}
}

// reader pulls up to mmsgCap datagrams per recvmmsg call.
type reader struct {
	n     *Node
	ok    bool
	bufs  [][]byte
	names []syscall.RawSockaddrAny
	iovs  []syscall.Iovec
	hdrs  []mmsghdr
	pbuf  []byte // portable fallback
}

func (n *Node) newReader() *reader {
	r := &reader{n: n}
	rc := n.mm.rc
	if rc == nil {
		var err error
		if rc, err = n.conn.SyscallConn(); err != nil {
			r.pbuf = make([]byte, 64*1024)
			return r
		}
		n.mm.rc = rc
	}
	r.ok = true
	r.bufs = make([][]byte, mmsgCap)
	r.names = make([]syscall.RawSockaddrAny, mmsgCap)
	r.iovs = make([]syscall.Iovec, mmsgCap)
	r.hdrs = make([]mmsghdr, mmsgCap)
	for i := range r.bufs {
		r.bufs[i] = make([]byte, 64*1024)
		r.iovs[i].Base = &r.bufs[i][0]
		r.iovs[i].SetLen(len(r.bufs[i]))
		h := &r.hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&r.names[i]))
		h.Iov = &r.iovs[i]
		h.Iovlen = 1
	}
	return r
}

func (r *reader) read(h func([]byte, netip.AddrPort)) {
	if !r.ok {
		r.n.readPortable(r.pbuf, h)
		return
	}
	n := r.n
	for i := range r.hdrs {
		// The kernel overwrote these on the previous call.
		r.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrAny
		r.hdrs[i].n = 0
	}
	got := 0
	var serr syscall.Errno
	err := n.mm.rc.Read(func(fd uintptr) bool {
		for {
			v, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&r.hdrs[0])), uintptr(len(r.hdrs)),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			switch e {
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false // park until readable or the read deadline
			}
			if e != 0 {
				serr = e
			} else {
				got = int(v)
			}
			return true
		}
	})
	if err != nil || serr != 0 || got == 0 {
		return // deadline or transient error: try again
	}
	n.recvSyscalls.Add(1)
	n.recvDatagrams.Add(int64(got))
	for i := 0; i < got; i++ {
		from, ok := rawToAddrPort(&r.names[i])
		if !ok {
			continue
		}
		h(r.bufs[i][:r.hdrs[i].n], from)
	}
}

// rawToAddrPort converts a kernel-written sockaddr to netip form.
func rawToAddrPort(rsa *syscall.RawSockaddrAny) (netip.AddrPort, bool) {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), uint16(p[0])<<8|uint16(p[1])), true
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), uint16(p[0])<<8|uint16(p[1])), true
	}
	return netip.AddrPort{}, false
}
