package core

// LinkStats counts the traffic this node exchanged with one peer over a
// real network transport. A "drop" here is a message this node lost on
// that link — a failed or timed-out write on the send side, a full
// receive mailbox on the receive side — so Sent+Dropped at the sender and
// Received+Dropped at the receiver bracket the link's true delivery rate.
type LinkStats struct {
	// Peer is the other endpoint of the link.
	Peer ProcID
	// Sent counts messages handed to the network toward Peer.
	Sent int64
	// Received counts messages delivered from Peer.
	Received int64
	// Dropped counts messages lost on this link at this node: send-side
	// failures (dead connection, timed-out write, full send queue) plus
	// receive-side mailbox drops attributed to Peer.
	Dropped int64
}

// TransportStats is the substrate-agnostic transport counter snapshot for
// one node. The network substrates (UDP, TCP) fill it from their socket
// paths; the in-memory substrates (sim, runtime) have no transport and
// report the zero value. The façade re-exports it per node, so operators
// and the metrics layer read one shape regardless of the engine.
type TransportStats struct {
	// Addr is the node's bound local address ("" on in-memory substrates).
	Addr string
	// Sends counts messages successfully handed to the network.
	Sends int64
	// Recvs counts messages received and delivered to the mailbox layer.
	Recvs int64
	// SendDrops counts messages lost at the sender — failed writes,
	// unencodable payloads, dead or backlogged connections.
	SendDrops int64
	// MailboxDrops counts messages dropped at a full receive mailbox,
	// the transport's lose-on-full rule (reported as EvLose).
	MailboxDrops int64
	// Redials counts transport reconnection attempts (TCP only: the
	// dial/accept lifecycle re-establishing a lost connection).
	Redials int64
	// SendDatagrams and RecvDatagrams count wire frames (datagrams on
	// UDP, length-prefixed frames on TCP). With wire v3 batching one
	// frame carries many messages, so Sends/SendDatagrams is the
	// outbound batch occupancy; zero on substrates without a framed
	// wire.
	SendDatagrams int64
	RecvDatagrams int64
	// SendSyscalls and RecvSyscalls count the socket system calls that
	// moved those frames (sendmmsg/recvmmsg and vectored writes make
	// them smaller than the frame counts); Sends/SendSyscalls is the
	// syscall amortization the batching path exists to maximize. Zero
	// where the transport cannot observe the syscall boundary.
	SendSyscalls int64
	RecvSyscalls int64
	// Links holds per-link detail when the transport tracks it (TCP);
	// nil when only node-level counters exist.
	Links []LinkStats
	// Faults counts the faults injected at this node's mailbox boundary
	// by an installed FaultPlan; zero without one.
	Faults FaultStats
}

// TransportStatser is implemented by substrates that move messages over
// a real network and count what happened to them. The in-memory
// substrates (sim, runtime) implement it too, returning one zero-valued
// entry per process, so callers can range over the result uniformly;
// use the zero Addr to tell "no transport" from "no traffic yet".
type TransportStatser interface {
	TransportStats() []TransportStats
}
