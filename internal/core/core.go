// Package core defines the computation model of the paper (§2): processes
// are deterministic machines executing guarded actions atomically, and
// communicating by exchanging messages over per-pair channels.
//
// A protocol stack on one process is a list of Machines executed in "text
// order" (the paper: "when several actions are simultaneously enabled at a
// process p, all these actions are sequentially executed following the
// order of their appearance in the text of the protocol"). Machines send
// and receive Messages through an Env provided by the execution substrate
// (deterministic simulator, goroutine runtime, or UDP transport), so the
// same protocol code runs unchanged on all three.
package core

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"strconv"
)

// ProcID identifies a process; processes are numbered 0..n-1.
type ProcID int

// ReqState is the paper's Request variable: the interface between a
// protocol and the external application requesting its service.
type ReqState uint8

// Request states, in the order Wait -> In -> Done.
const (
	// Wait means the application has requested a computation that has not
	// started yet.
	Wait ReqState = iota
	// In means a computation is in progress.
	In
	// Done means no computation is requested or in progress. (It is also
	// the decision point of the previous computation.)
	Done
)

// NumReqStates is the size of the ReqState domain, used by corruption and
// state enumeration.
const NumReqStates = 3

// String returns the paper's name for the state.
func (r ReqState) String() string {
	switch r {
	case Wait:
		return "Wait"
	case In:
		return "In"
	case Done:
		return "Done"
	default:
		return "ReqState(" + strconv.Itoa(int(r)) + ")"
	}
}

// MaxBlobLen bounds a payload body everywhere — the authoritative limit
// the wire format enforces per datagram (internal/wire re-exports it).
// The corruption policy clamps garbled bodies to it too: a corrupted
// message must stay routable AND encodable, so adversity degrades
// values, never the transport's ability to carry the message.
const MaxBlobLen = 16 << 10

// Payload is a message-value: the application-level data carried in the
// broadcast and feedback fields of a message. The structured fields (Tag,
// Num) are what the paper-facing protocols and experiments manipulate;
// Blob is an opaque application body carried verbatim through the
// handshake machines for typed application payloads (the façade's codec
// layer marshals arbitrary Go values into it). The protocols never
// inspect Blob — to them it is data to propagate, exactly like the
// message-switched forwarding model where the carried datum is opaque
// bytes.
//
// Payload is no longer comparable with == (Blob is a slice); use Equal.
// Blob contents are immutable by convention: every layer that "changes" a
// blob (codecs, the fault plane's corruption policy) replaces the slice,
// never writes through it, so in-flight copies may safely alias one
// backing array.
type Payload struct {
	// Tag names the datum kind ("IDL", "ASK", "YES", garbage tags, ...).
	Tag string
	// Num carries a numeric argument (an identifier, an age, ...).
	Num int64
	// Blob is the opaque application body; nil and empty are equivalent
	// (both mean "no body") and encode identically everywhere.
	Blob []byte
}

// Equal reports whether two payloads carry the same value. A nil and an
// empty Blob are equal.
func (p Payload) Equal(o Payload) bool {
	return p.Tag == o.Tag && p.Num == o.Num && bytes.Equal(p.Blob, o.Blob)
}

// IsZero reports whether p is the zero payload (no tag, no number, no
// body).
func (p Payload) IsZero() bool {
	return p.Tag == "" && p.Num == 0 && len(p.Blob) == 0
}

// String renders the payload compactly for traces. Payloads without a
// body render exactly as in earlier revisions, keeping legacy event
// traces byte-identical; a body adds its length and a short prefix.
func (p Payload) String() string {
	s := p.Tag
	if p.Num != 0 {
		s = p.Tag + "(" + strconv.FormatInt(p.Num, 10) + ")"
	}
	if n := len(p.Blob); n > 0 {
		prefix := p.Blob
		if n > 8 {
			prefix = prefix[:8]
		}
		s += "+blob[" + strconv.Itoa(n) + "]" + hex.EncodeToString(prefix)
	}
	return s
}

// Message is the wire unit exchanged by processes:
// <message-type, message-values...> in the paper's notation. All protocols
// in this repository (the PIF family and the baselines) fit one flat shape,
// which keeps encoding, hashing, and garbage generation uniform. Like
// Payload, Message is not comparable with ==; use Equal or IsZero.
type Message struct {
	// Instance routes the message to one protocol instance on the
	// destination process (e.g. "me/idl/pif"); composed stacks multiplex
	// several instances over each physical link.
	Instance string
	// Kind is the paper's message-type field (e.g. "PIF").
	Kind string
	// B is the broadcast value (B-Mes of the sender).
	B Payload
	// F is the feedback value (F-Mes[dest] of the sender).
	F Payload
	// State is the sender's handshake flag for this destination
	// (State_p[q] in Algorithm 1).
	State uint8
	// Echo is the last flag value the sender received from the
	// destination (NeigState_p[q] in Algorithm 1).
	Echo uint8
}

// String renders the message compactly for traces.
func (m Message) String() string {
	return fmt.Sprintf("<%s|%s B=%s F=%s s=%d e=%d>", m.Instance, m.Kind, m.B, m.F, m.State, m.Echo)
}

// Equal reports whether two messages carry the same fields and values.
func (m Message) Equal(o Message) bool {
	return m.Instance == o.Instance && m.Kind == o.Kind &&
		m.State == o.State && m.Echo == o.Echo &&
		m.B.Equal(o.B) && m.F.Equal(o.F)
}

// IsZero reports whether m is the zero message.
func (m Message) IsZero() bool {
	return m.Instance == "" && m.Kind == "" && m.State == 0 && m.Echo == 0 &&
		m.B.IsZero() && m.F.IsZero()
}

// Envelope is a routed message with provenance: the unit the concurrent
// substrates pass between goroutines (the runtime's per-process fan-in
// channels, the UDP transport's mailbox batches). The deterministic
// simulator has no use for it — its scheduler owns both endpoints of
// every link and routes by LinkKey directly.
type Envelope struct {
	// From is the sending process.
	From ProcID
	// Link is a substrate-defined dense link index: the slot of the
	// (sender, instance) pair in the receiver's precomputed link table.
	// Substrates that route by instance string may leave it 0.
	Link int32
	// Msg is the message itself.
	Msg Message
}

// Env is the world a machine acts on during one atomic action: it can send
// messages and emit observable events. Substrates provide implementations.
type Env interface {
	// Self returns the identity of the process executing the action.
	Self() ProcID
	// N returns the number of processes in the system.
	N() int
	// Send transmits m to process `to` over the sender's outgoing channel.
	// The message may be lost (full channel, lossy link); Send never
	// blocks and reports nothing, exactly as in the model.
	Send(to ProcID, m Message)
	// Emit records an observable event (protocol starts, decisions,
	// receive-brd/receive-fck events, critical-section entry/exit).
	// Specification checkers subscribe to these events.
	Emit(e Event)
}

// Machine is one protocol instance on one process: a set of guarded
// actions over local state.
type Machine interface {
	// Instance returns the instance ID this machine sends and receives
	// on. Instance IDs are unique within a process's stack.
	Instance() string
	// Step executes every enabled internal (non-receive) action once, in
	// text order, and reports whether any action fired. The substrate
	// calls Step atomically.
	Step(env Env) bool
	// Deliver executes the receive action for message m arriving from
	// process `from`. The substrate calls Deliver atomically.
	Deliver(env Env, from ProcID, m Message)
}

// Snapshotter is implemented by machines whose full local state can be
// canonically encoded; the model checker and the configuration hash
// require it.
type Snapshotter interface {
	// AppendState appends a canonical encoding of the machine's complete
	// local state to dst and returns the extended slice.
	AppendState(dst []byte) []byte
}

// Corruptible is implemented by machines that can randomize their own
// local state uniformly over its domain, realizing the arbitrary initial
// configurations of the model (I = C). The source of randomness is
// provided by the caller so corruption is reproducible.
type Corruptible interface {
	// Corrupt overwrites the machine's state with values drawn from r.
	// The parameter is an rng.Source-compatible generator; it is typed
	// loosely here to keep core free of the rng dependency direction.
	Corrupt(r Rand)
}

// Rand is the minimal random interface machines need for corruption (and
// randomized baselines).
type Rand interface {
	Intn(n int) int
	Uint64() uint64
	Float64() float64
	Bool() bool
}

// Stack is a full protocol stack for one process: the machines in text
// order, first to last. Substrates step machines in this order and route
// deliveries by instance ID.
type Stack []Machine

// ByInstance builds the delivery routing table. It panics on duplicate
// instance IDs, which indicate a mis-assembled stack.
func (s Stack) ByInstance() map[string]Machine {
	m := make(map[string]Machine, len(s))
	for _, mach := range s {
		id := mach.Instance()
		if _, dup := m[id]; dup {
			panic("core: duplicate machine instance " + id)
		}
		m[id] = mach
	}
	return m
}

// AppendState appends the canonical encoding of every machine in the stack.
// Machines that do not implement Snapshotter contribute nothing.
func (s Stack) AppendState(dst []byte) []byte {
	for _, mach := range s {
		if sn, ok := mach.(Snapshotter); ok {
			dst = append(dst, 0x1f) // unit separator between machines
			dst = sn.AppendState(dst)
		}
	}
	return dst
}

// Corrupt randomizes the state of every corruptible machine in the stack.
func (s Stack) Corrupt(r Rand) {
	for _, mach := range s {
		if c, ok := mach.(Corruptible); ok {
			c.Corrupt(r)
		}
	}
}
