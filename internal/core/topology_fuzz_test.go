package core

import (
	"bytes"
	"testing"
)

// FuzzParseTopology throws arbitrary bytes at the graph.txt parser. The
// property under test: parsing either fails cleanly or yields a valid
// topology whose canonical serialization round-trips exactly — the
// parser must never panic, and canonicalization must be a fixed point.
func FuzzParseTopology(f *testing.F) {
	f.Add([]byte("n 4\n0 1\n1 2\n2 3\n"))
	f.Add([]byte("# comment\n\nn 5\n4 0\n0 2\n1 0\n0 3\n"))
	f.Add([]byte("n 2\n0 1\n"))
	f.Add([]byte("n 3\n"))
	f.Add([]byte(""))
	f.Add([]byte("n 1000000\n"))
	f.Add([]byte("n 3\n0 1 2\n"))
	f.Add([]byte("n 3\n-1 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		topo, err := ParseTopology(data)
		if err != nil {
			return
		}
		if topo.N() < 2 {
			t.Fatalf("parser accepted n = %d < 2", topo.N())
		}
		text := topo.AppendText(nil)
		back, err := ParseTopology(text)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, text)
		}
		if again := back.AppendText(nil); !bytes.Equal(text, again) {
			t.Fatalf("canonicalization is not a fixed point:\n%s\nvs\n%s", text, again)
		}
		if back.N() != topo.N() || back.EdgeCount() != topo.EdgeCount() {
			t.Fatalf("round-trip changed the graph: n %d->%d, edges %d->%d",
				topo.N(), back.N(), topo.EdgeCount(), back.EdgeCount())
		}
	})
}
