package core

import "context"

// Substrate is a running execution substrate: a set of protocol stacks
// being executed under some scheduling discipline, with channels between
// them. The three substrates of the repository implement it — the
// deterministic simulator (internal/sim), the goroutine runtime
// (internal/runtime), and the UDP transport (internal/transport/udp) — so
// the high-level façade can assemble and drive a cluster without knowing
// which engine runs it.
//
// The interface deliberately exposes no scheduling detail. Its unit of
// interaction is the atomic external action: Do and Await run caller code
// atomically with respect to every protocol action of one process, which
// is exactly the power the paper's model grants the external application
// (submitting a request, reading the Request variable). How atomicity is
// realized — the simulator's single-threaded driver, the runtime's
// per-process mutex, the UDP node's action mutex — is the substrate's
// business.
type Substrate interface {
	// N returns the number of processes.
	N() int

	// Do runs f atomically with respect to every protocol action of
	// process p, passing p's environment. Use it to inject requests and
	// read protocol state while the substrate runs. f must not block and
	// must not call back into the substrate.
	Do(p ProcID, f func(env Env))

	// Await drives or observes the execution until cond holds, then
	// returns nil. cond is evaluated in process p's atomic context,
	// exactly like a Do body, and is re-evaluated as the execution
	// advances; it may carry side effects — issuing the request under
	// test on its first successful evaluation is the idiomatic use.
	//
	// Await returns ctx.Err() when the context is cancelled first (the
	// execution itself keeps running), or a substrate-specific error when
	// the substrate gives up (deterministic-simulator step budget
	// exhausted, substrate closed). Await is safe to call from many
	// goroutines concurrently; each call waits for its own condition.
	Await(ctx context.Context, p ProcID, cond func(env Env) bool) error

	// Close permanently shuts the substrate down, releasing any
	// goroutines and sockets it holds and failing pending Awaits. It is
	// idempotent and safe to call concurrently.
	Close() error
}
