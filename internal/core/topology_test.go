package core

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/snapstab/snapstab/internal/rng"
)

func TestConstructorShapes(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name      string
		t         *Topology
		edges     int
		tree      bool
		complete  bool
		connected bool
	}{
		{"complete-5", Complete(5), 10, false, true, true},
		{"complete-2", Complete(2), 1, true, true, true},
		{"ring-5", Ring(5), 5, false, false, true},
		{"ring-2", Ring(2), 1, true, true, true},
		{"ring-3", Ring(3), 3, false, true, true},
		{"line-6", Line(6), 5, true, false, true},
		{"star-6", Star(6), 5, true, false, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			if got := c.t.EdgeCount(); got != c.edges {
				t.Errorf("EdgeCount = %d, want %d", got, c.edges)
			}
			if got := c.t.IsTree(); got != c.tree {
				t.Errorf("IsTree = %v, want %v", got, c.tree)
			}
			if got := c.t.IsComplete(); got != c.complete {
				t.Errorf("IsComplete = %v, want %v", got, c.complete)
			}
			if got := c.t.Connected(); got != c.connected {
				t.Errorf("Connected = %v, want %v", got, c.connected)
			}
		})
	}
}

func TestDegreeAndAdjacencyInvariants(t *testing.T) {
	t.Parallel()
	for name, topo := range map[string]*Topology{
		"complete-7": Complete(7),
		"ring-7":     Ring(7),
		"line-7":     Line(7),
		"star-7":     Star(7),
		"tree-17":    RandomTree(17, rng.New(rng.Mix(3, 0x54))),
		"gnp-12":     GNP(12, 0.4, rng.New(rng.Mix(4, 0x54))),
	} {
		// Handshake lemma: degrees sum to twice the edge count.
		sum := 0
		for p := 0; p < topo.N(); p++ {
			sum += topo.Degree(ProcID(p))
			prev := ProcID(-1)
			for _, q := range topo.Neighbors(ProcID(p)) {
				if q <= prev {
					t.Errorf("%s: neighbors of %d not strictly ascending", name, p)
				}
				prev = q
				if !topo.HasEdge(ProcID(p), q) || !topo.HasEdge(q, ProcID(p)) {
					t.Errorf("%s: HasEdge(%d,%d) not symmetric with adjacency", name, p, q)
				}
			}
		}
		if sum != 2*topo.EdgeCount() {
			t.Errorf("%s: degree sum %d != 2 * %d edges", name, sum, topo.EdgeCount())
		}
		if topo.HasEdge(0, 0) || topo.HasEdge(-1, 1) || topo.HasEdge(0, ProcID(topo.N())) {
			t.Errorf("%s: HasEdge accepts invalid endpoints", name)
		}
	}
}

func TestNewTopologyRejectsMalformedEdges(t *testing.T) {
	t.Parallel()
	bad := []struct {
		name  string
		n     int
		edges [][2]ProcID
	}{
		{"n-too-small", 1, nil},
		{"self-loop", 3, [][2]ProcID{{1, 1}}},
		{"out-of-range", 3, [][2]ProcID{{0, 3}}},
		{"negative", 3, [][2]ProcID{{-1, 0}}},
		{"duplicate", 3, [][2]ProcID{{0, 1}, {0, 1}}},
		{"duplicate-flipped", 3, [][2]ProcID{{0, 1}, {1, 0}}},
	}
	for _, c := range bad {
		if _, err := NewTopology(c.n, c.edges); err == nil {
			t.Errorf("%s: NewTopology accepted malformed input", c.name)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	t.Parallel()
	for seed := uint64(1); seed <= 10; seed++ {
		a := RandomTree(20, rng.New(rng.Mix(seed, 0x54)))
		b := RandomTree(20, rng.New(rng.Mix(seed, 0x54)))
		if a.String() != b.String() {
			t.Fatalf("RandomTree(seed %d) not deterministic", seed)
		}
		if !a.IsTree() {
			t.Fatalf("RandomTree(seed %d) is not a tree:\n%s", seed, a)
		}
		g1 := GNP(15, 0.3, rng.New(rng.Mix(seed, 0x54)))
		g2 := GNP(15, 0.3, rng.New(rng.Mix(seed, 0x54)))
		if g1.String() != g2.String() {
			t.Fatalf("GNP(seed %d) not deterministic", seed)
		}
	}
	// Distinct seeds should eventually produce distinct trees.
	distinct := false
	base := RandomTree(20, rng.New(rng.Mix(1, 0x54))).String()
	for seed := uint64(2); seed <= 10; seed++ {
		if RandomTree(20, rng.New(rng.Mix(seed, 0x54))).String() != base {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Fatal("RandomTree ignores its seed")
	}
	// GNP endpoints: p=0 is empty, p=1 is complete.
	if GNP(6, 0, rng.New(1)).EdgeCount() != 0 {
		t.Fatal("GNP(p=0) produced edges")
	}
	if !GNP(6, 1, rng.New(1)).IsComplete() {
		t.Fatal("GNP(p=1) is not complete")
	}
}

func TestNextHops(t *testing.T) {
	t.Parallel()
	// Line: every route moves one step toward the destination.
	line := Line(5)
	hops := line.NextHops()
	for src := 0; src < 5; src++ {
		for dst := 0; dst < 5; dst++ {
			want := ProcID(-1)
			if dst < src {
				want = ProcID(src - 1)
			} else if dst > src {
				want = ProcID(src + 1)
			}
			if hops[src][dst] != want {
				t.Errorf("line NextHops[%d][%d] = %d, want %d", src, dst, hops[src][dst], want)
			}
		}
	}
	// Star: leaves route through the center, the center routes directly.
	star := Star(5)
	hops = star.NextHops()
	for leaf := 1; leaf < 5; leaf++ {
		for dst := 0; dst < 5; dst++ {
			if dst == leaf {
				continue
			}
			if hops[leaf][dst] != 0 {
				t.Errorf("star NextHops[%d][%d] = %d, want 0", leaf, dst, hops[leaf][dst])
			}
		}
		if hops[0][leaf] != ProcID(leaf) {
			t.Errorf("star NextHops[0][%d] = %d, want %d", leaf, hops[0][leaf], leaf)
		}
	}
	// Every tree: following the table from any src reaches any dst in at
	// most n-1 steps (unique paths, no cycles).
	tree := RandomTree(12, rng.New(rng.Mix(9, 0x54)))
	hops = tree.NextHops()
	for src := ProcID(0); int(src) < tree.N(); src++ {
		for dst := ProcID(0); int(dst) < tree.N(); dst++ {
			at, steps := src, 0
			for at != dst {
				next := hops[at][dst]
				if next < 0 || !tree.HasEdge(at, next) {
					t.Fatalf("tree route %d->%d broken at %d (next %d)", src, dst, at, next)
				}
				at = next
				if steps++; steps >= tree.N() {
					t.Fatalf("tree route %d->%d does not terminate", src, dst)
				}
			}
		}
	}
	// Disconnected pairs have no route.
	two, err := NewTopology(4, [][2]ProcID{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if h := two.NextHops(); h[0][2] != -1 || h[3][1] != -1 {
		t.Error("disconnected pairs should route to -1")
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	t.Parallel()
	for name, topo := range map[string]*Topology{
		"complete-6": Complete(6),
		"ring-9":     Ring(9),
		"tree-14":    RandomTree(14, rng.New(rng.Mix(11, 0x54))),
		"gnp-10":     GNP(10, 0.5, rng.New(rng.Mix(12, 0x54))),
	} {
		text := topo.String()
		back, err := ParseTopology([]byte(text))
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", name, err, text)
		}
		if back.String() != text {
			t.Errorf("%s: round-trip not exact:\n%s\nvs\n%s", name, text, back.String())
		}
	}
}

func TestParseGoldenFiles(t *testing.T) {
	t.Parallel()
	line4, err := os.ReadFile(filepath.Join("testdata", "line4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := ParseTopology(line4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.String() != Line(4).String() {
		t.Errorf("line4.txt parsed to\n%s\nwant Line(4)", topo)
	}
	if topo.String() != string(line4) {
		t.Errorf("line4.txt is not canonical: serialization differs from file")
	}

	// A messy file — comments, blank lines, unordered endpoints — parses
	// to the same graph as its canonical form.
	messy, err := os.ReadFile(filepath.Join("testdata", "star5_messy.txt"))
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := os.ReadFile(filepath.Join("testdata", "star5_canonical.txt"))
	if err != nil {
		t.Fatal(err)
	}
	mt, err := ParseTopology(messy)
	if err != nil {
		t.Fatal(err)
	}
	if mt.String() != string(canonical) {
		t.Errorf("star5_messy.txt canonicalized to\n%s\nwant\n%s", mt, canonical)
	}
	if mt.String() != Star(5).String() {
		t.Errorf("star5_messy.txt is not Star(5)")
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	bad := map[string]string{
		"empty":          "",
		"no-header":      "0 1\n",
		"bad-header":     "m 4\n",
		"tiny-n":         "n 1\n",
		"bad-edge":       "n 3\n0 x\n",
		"three-fields":   "n 3\n0 1 2\n",
		"self-loop":      "n 3\n1 1\n",
		"out-of-range":   "n 3\n0 5\n",
		"duplicate-edge": "n 3\n0 1\n1 0\n",
	}
	for name, text := range bad {
		if _, err := ParseTopology([]byte(text)); err == nil {
			t.Errorf("%s: ParseTopology accepted %q", name, text)
		}
	}
}
