package core

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
)

// EventKind classifies observable events. Specification checkers are
// written entirely against the event stream, so the set below is the
// observation vocabulary of the whole repository.
type EventKind uint8

// Event kinds. Scheduler-level kinds (send/deliver/lose/activate) describe
// the execution; protocol-level kinds mark the actions the specifications
// of the paper talk about.
const (
	// EvSend: a process pushed a message into a channel.
	EvSend EventKind = iota + 1
	// EvSendLost: the message was lost at the SENDER, before it entered
	// the channel — a full bounded channel (sim, runtime), a socket
	// write failure (udp), or, on tcp, a missing topology edge, a full
	// writer queue, or a dead connection under retransmission. Proc is
	// the sender, Peer the intended destination.
	EvSendLost
	// EvDeliver: a message was removed from a channel and handed to the
	// destination's receive action.
	EvDeliver
	// EvLose: an in-transit message was dropped at the RECEIVER — by the
	// adversary/lossy link (sim, runtime), the fault injector (udp,
	// tcp), or a full receive mailbox under the model's lose-on-full
	// rule (udp, tcp). Proc is the receiver, Peer the original sender.
	// Observers can therefore attribute every loss to one side of the
	// channel.
	EvLose
	// EvStart: a protocol executed its starting action for an external
	// request (Request: Wait -> In).
	EvStart
	// EvDecide: a protocol terminated a computation (Request: In -> Done).
	EvDecide
	// EvRecvBrd: a "receive-brd<B> from q" event (PIF broadcast accepted).
	EvRecvBrd
	// EvRecvFck: a "receive-fck<F> from q" event (PIF feedback accepted).
	EvRecvFck
	// EvEnterCS: a process entered the critical section.
	EvEnterCS
	// EvExitCS: a process left the critical section.
	EvExitCS
	// EvRequest: the external application requested a service
	// (Request <- Wait).
	EvRequest
	// EvFwdDeliver: the forwarding protocol handed a routed item to the
	// application at its destination. Proc is the destination, Peer the
	// neighbor the item arrived from; Note carries the (src,dst,seq) key.
	EvFwdDeliver
	// EvFwdDiscard: the forwarding protocol sanitized an item out of the
	// network (invalid endpoints, backtracking route, or unroutable).
	// Discarding an item the spec checker has armed is a loss violation.
	EvFwdDiscard
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvSendLost:
		return "send-lost"
	case EvDeliver:
		return "deliver"
	case EvLose:
		return "lose"
	case EvStart:
		return "start"
	case EvDecide:
		return "decide"
	case EvRecvBrd:
		return "recv-brd"
	case EvRecvFck:
		return "recv-fck"
	case EvEnterCS:
		return "enter-cs"
	case EvExitCS:
		return "exit-cs"
	case EvRequest:
		return "request"
	case EvFwdDeliver:
		return "fwd-deliver"
	case EvFwdDiscard:
		return "fwd-discard"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one observable occurrence in an execution. Proc is always the
// process at which the event happened; Peer is the other endpoint when the
// event involves a message or a remote process.
type Event struct {
	// Step is the global step index at which the event occurred, stamped
	// by the substrate.
	Step int
	// Kind classifies the event.
	Kind EventKind
	// Proc is the process at which the event occurred.
	Proc ProcID
	// Peer is the other endpoint, when meaningful (sender of a delivered
	// message, destination of a sent message); -1 otherwise.
	Peer ProcID
	// Instance is the protocol instance involved, when meaningful.
	Instance string
	// Msg is the message involved, when meaningful.
	Msg Message
	// Note carries free-form detail (e.g. which payload was decided on).
	Note string
}

// String renders the event on one line for traces and test failures.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%6d] p%d %s", e.Step, e.Proc, e.Kind)
	if e.Peer >= 0 {
		fmt.Fprintf(&b, " peer=p%d", e.Peer)
	}
	if e.Instance != "" {
		fmt.Fprintf(&b, " inst=%s", e.Instance)
	}
	if !e.Msg.IsZero() {
		fmt.Fprintf(&b, " msg=%s", e.Msg)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " (%s)", e.Note)
	}
	return b.String()
}

// NoteRequested marks EvEnterCS events that serve an external request.
// The mutual exclusion guarantee of Specification 3 covers exactly those
// entries (paper, footnote 1); entries caused purely by the arbitrary
// initial configuration carry an empty note.
const NoteRequested = "requested"

// Observer consumes events as they occur. Implementations must be fast;
// they run inside the simulation loop.
type Observer interface {
	OnEvent(e Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(e Event)

// OnEvent calls f(e).
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// Recorder is an Observer that retains the most recent events in a ring
// buffer, for debugging and for printing counter-example traces. The zero
// value retains nothing; use NewRecorder.
type Recorder struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total int
}

var _ Observer = (*Recorder)(nil)

// NewRecorder returns a recorder retaining the last limit events.
func NewRecorder(limit int) *Recorder {
	if limit < 1 {
		limit = 1
	}
	return &Recorder{buf: make([]Event, 0, limit)}
}

// OnEvent records e, evicting the oldest event when full.
func (r *Recorder) OnEvent(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events observed (including evicted ones).
func (r *Recorder) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string {
	events := r.Events()
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// MultiObserver fans events out to several observers.
type MultiObserver []Observer

// OnEvent forwards e to every observer.
func (m MultiObserver) OnEvent(e Event) {
	for _, o := range m {
		o.OnEvent(e)
	}
}

// PackRoute encodes a (source, destination) endpoint pair into one int64
// — the forwarding protocol's wire representation of an item's route,
// carried in Payload.Num fields and read back by its spec checker.
func PackRoute(src, dst ProcID) int64 {
	return int64(uint64(uint32(src))<<32 | uint64(uint32(dst)))
}

// UnpackRoute decodes a PackRoute value.
func UnpackRoute(v int64) (src, dst ProcID) {
	return ProcID(uint32(uint64(v) >> 32)), ProcID(uint32(uint64(v)))
}

// AppendPayload appends a canonical encoding of p to dst. Helper for
// Snapshotter implementations. The encoding is self-delimiting — tag
// length, tag, fixed-width number, uvarint blob length, blob — so
// concatenations of payloads (machine snapshots, configuration hashes)
// stay injective with bodies of any content.
func AppendPayload(dst []byte, p Payload) []byte {
	dst = append(dst, byte(len(p.Tag)))
	dst = append(dst, p.Tag...)
	for shift := 0; shift < 64; shift += 8 {
		dst = append(dst, byte(p.Num>>shift))
	}
	dst = binary.AppendUvarint(dst, uint64(len(p.Blob)))
	dst = append(dst, p.Blob...)
	return dst
}

// AppendMessage appends a canonical encoding of m to dst. Helper for
// configuration hashing.
func AppendMessage(dst []byte, m Message) []byte {
	dst = append(dst, byte(len(m.Instance)))
	dst = append(dst, m.Instance...)
	dst = append(dst, byte(len(m.Kind)))
	dst = append(dst, m.Kind...)
	dst = AppendPayload(dst, m.B)
	dst = AppendPayload(dst, m.F)
	dst = append(dst, m.State, m.Echo)
	return dst
}
