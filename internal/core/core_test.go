package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestReqStateString(t *testing.T) {
	t.Parallel()
	cases := map[ReqState]string{
		Wait:        "Wait",
		In:          "In",
		Done:        "Done",
		ReqState(9): "ReqState(9)",
	}
	for state, want := range cases {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}

func TestPayloadString(t *testing.T) {
	t.Parallel()
	if got := (Payload{Tag: "ASK"}).String(); got != "ASK" {
		t.Errorf("got %q", got)
	}
	if got := (Payload{Tag: "ID", Num: 42}).String(); got != "ID(42)" {
		t.Errorf("got %q", got)
	}
}

func TestMessageEqual(t *testing.T) {
	t.Parallel()
	a := Message{Instance: "pif", Kind: "PIF", B: Payload{Tag: "x"}, State: 3}
	b := Message{Instance: "pif", Kind: "PIF", B: Payload{Tag: "x"}, State: 3}
	if !a.Equal(b) {
		t.Fatal("identical messages compare unequal")
	}
	b.Echo = 1
	if a.Equal(b) {
		t.Fatal("distinct messages compare equal")
	}
	b.Echo = 0
	b.B.Blob = []byte{1, 2, 3}
	if a.Equal(b) {
		t.Fatal("messages differing only in blob compare equal")
	}
	a.B.Blob = []byte{1, 2, 3}
	if !a.Equal(b) {
		t.Fatal("equal-blob messages compare unequal")
	}
}

func TestPayloadEqualBlobSemantics(t *testing.T) {
	t.Parallel()
	if !(Payload{Blob: nil}).Equal(Payload{Blob: []byte{}}) {
		t.Fatal("nil and empty blob must be equal")
	}
	if (Payload{Blob: []byte{1}}).Equal(Payload{}) {
		t.Fatal("non-empty blob equal to empty")
	}
	if !(Payload{}).IsZero() || (Payload{Blob: []byte{1}}).IsZero() {
		t.Fatal("IsZero wrong on blob payloads")
	}
}

func TestEventString(t *testing.T) {
	t.Parallel()
	e := Event{Step: 12, Kind: EvDeliver, Proc: 1, Peer: 0, Instance: "pif", Note: "x"}
	s := e.String()
	for _, want := range []string{"p1", "deliver", "peer=p0", "inst=pif", "(x)"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestEventKindStringsAreUnique(t *testing.T) {
	t.Parallel()
	seen := make(map[string]EventKind)
	for k := EvSend; k <= EvRequest; k++ {
		s := k.String()
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %d and %d share string %q", prev, k, s)
		}
		seen[s] = k
	}
}

type fakeMachine struct {
	inst      string
	steps     int
	delivered []Message
}

func (f *fakeMachine) Instance() string { return f.inst }
func (f *fakeMachine) Step(Env) bool    { f.steps++; return false }
func (f *fakeMachine) Deliver(_ Env, _ ProcID, m Message) {
	f.delivered = append(f.delivered, m)
}

func TestStackByInstance(t *testing.T) {
	t.Parallel()
	a, b := &fakeMachine{inst: "a"}, &fakeMachine{inst: "b"}
	s := Stack{a, b}
	routes := s.ByInstance()
	if routes["a"] != a || routes["b"] != b {
		t.Fatal("routing table wrong")
	}
}

func TestStackByInstancePanicsOnDuplicate(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate instance did not panic")
		}
	}()
	Stack{&fakeMachine{inst: "x"}, &fakeMachine{inst: "x"}}.ByInstance()
}

func TestRecorderRingBuffer(t *testing.T) {
	t.Parallel()
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.OnEvent(Event{Step: i, Peer: -1})
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, e := range got {
		if e.Step != i+2 {
			t.Fatalf("event %d has step %d, want %d (oldest-first order)", i, e.Step, i+2)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total() = %d, want 5", r.Total())
	}
}

func TestRecorderDump(t *testing.T) {
	t.Parallel()
	r := NewRecorder(2)
	r.OnEvent(Event{Kind: EvStart, Proc: 0, Peer: -1})
	if !strings.Contains(r.Dump(), "start") {
		t.Fatalf("Dump() = %q missing event", r.Dump())
	}
}

func TestMultiObserverFansOut(t *testing.T) {
	t.Parallel()
	var a, b int
	m := MultiObserver{
		ObserverFunc(func(Event) { a++ }),
		ObserverFunc(func(Event) { b++ }),
	}
	m.OnEvent(Event{})
	m.OnEvent(Event{})
	if a != 2 || b != 2 {
		t.Fatalf("observers saw %d and %d events, want 2 and 2", a, b)
	}
}

func TestAppendPayloadInjective(t *testing.T) {
	t.Parallel()
	f := func(tag1 string, num1 int64, blob1 []byte, tag2 string, num2 int64, blob2 []byte) bool {
		if len(tag1) > 255 || len(tag2) > 255 {
			return true // out of the encoding's domain
		}
		p1 := Payload{Tag: tag1, Num: num1, Blob: blob1}
		p2 := Payload{Tag: tag2, Num: num2, Blob: blob2}
		e1 := string(AppendPayload(nil, p1))
		e2 := string(AppendPayload(nil, p2))
		return p1.Equal(p2) == (e1 == e2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendPayloadSelfDelimiting pins that concatenated payload
// encodings cannot be re-segmented: a blob ending exactly where another
// payload's fields begin must not collide with a blob-free pair.
func TestAppendPayloadSelfDelimiting(t *testing.T) {
	t.Parallel()
	a := AppendPayload(AppendPayload(nil, Payload{Tag: "x", Blob: []byte{'y', 0}}), Payload{})
	b := AppendPayload(AppendPayload(nil, Payload{Tag: "x"}), Payload{Tag: "y"})
	if string(a) == string(b) {
		t.Fatal("blob bytes re-segmented as a following payload")
	}
}

func TestAppendMessageInjective(t *testing.T) {
	t.Parallel()
	mk := func(inst, kind string, s, e uint8) Message {
		return Message{Instance: inst, Kind: kind, State: s, Echo: e}
	}
	a := string(AppendMessage(nil, mk("pif", "PIF", 1, 2)))
	b := string(AppendMessage(nil, mk("pif", "PIF", 2, 1)))
	c := string(AppendMessage(nil, mk("pi", "fPIF", 1, 2)))
	if a == b {
		t.Fatal("State/Echo swap not distinguished")
	}
	if a == c {
		t.Fatal("field-boundary shift not distinguished")
	}
}

func TestStackCorruptOnlyCorruptible(t *testing.T) {
	t.Parallel()
	// A stack with no Corruptible machines must be a no-op, not a panic.
	s := Stack{&fakeMachine{inst: "a"}}
	s.Corrupt(nil)
}
