// Fault-injection plane: a substrate-agnostic description of adversarial
// channel and process behavior (FaultPlan) plus the machinery that applies
// it at a delivery boundary (Injector).
//
// The paper's whole claim is correct behavior from ARBITRARY initial
// configurations under message loss, duplication, and reordering; the
// deterministic simulator can realize those faults through its scheduler,
// but the concurrent substrates could not. A FaultPlan closes the gap: the
// same plan value installs into all three engines (sim at Step delivery,
// runtime at the per-receiver link table, udp at the mailbox boundary), so
// one seeded chaos scenario runs everywhere.
//
// # Composition
//
// A plan composes independent per-link policies (LinkFaults: drop,
// duplicate, reorder, delay, payload-corrupt) with global schedules
// (PartitionWindow: messages crossing the partition are dropped while the
// window is open; CrashWindow: the process takes no actions and arriving
// messages are consumed with no effect while down, then resumes with its
// state intact — a warm restart). Policies are evaluated per in-transit
// message at the substrate's delivery boundary, in a fixed order (crash,
// partition, drop, corrupt, hold, duplicate), so the random stream a plan
// consumes is a pure function of the plan and the message sequence.
//
// # Time
//
// Schedules are expressed in abstract ticks. The deterministic simulator
// maps one tick to one scheduler step; the real-time substrates map one
// tick to FaultPlan.Unit of wall time (default 1ms) measured from engine
// start. A plan therefore carries its windows unchanged across substrates;
// only the tick length differs.
//
// # Determinism contract
//
// Every Injector draws from a private generator seeded (by the substrate)
// from rng.Mix(plan.Seed, substrate, receiver), never from the scheduler's
// stream. On the simulator the whole run — including every fault decision —
// replays exactly from (topology, options, plan). On runtime and udp the
// per-receiver decision STREAMS are reproducible, but their interleaving
// with real concurrency is not; two runs with the same plan are
// statistically, not bitwise, equivalent. A nil plan is free: no injector
// exists and the substrates' hot paths are untouched. An empty (zero-value)
// plan is installed but draws nothing and changes nothing — executions are
// byte-identical to a nil plan (pinned by tests).
package core

import (
	"sync/atomic"
	"time"
)

// LinkFaults is the fault policy of one directed link (or the plan-wide
// default): independent probabilities applied to each in-transit message
// at the delivery boundary. All rates must lie in [0, 1).
type LinkFaults struct {
	// DropRate is the probability the message is dropped (link loss).
	DropRate float64
	// DupRate is the probability the message is delivered twice.
	DupRate float64
	// ReorderRate is the probability the message is held back and released
	// behind the next message on its link — an adjacent swap, the FIFO
	// violation the paper's channels forbid and adversarial networks
	// commit.
	ReorderRate float64
	// DelayRate is the probability the message is held for DelayTicks
	// ticks before delivery (released by later traffic on its link or by
	// the substrate's periodic flush).
	DelayRate float64
	// DelayTicks is how long a delayed message is held.
	DelayTicks int64
	// CorruptRate is the probability the message's application payloads
	// (B and F) and handshake fields are garbled before delivery. The
	// routing envelope (Instance, Kind) stays intact: a fully malformed
	// message is mere loss, while a well-formed message carrying garbage
	// is the adversarial case snap-stabilization must reject.
	CorruptRate float64
}

// active reports whether any policy can ever fire.
func (f LinkFaults) active() bool {
	return f.DropRate > 0 || f.DupRate > 0 || f.ReorderRate > 0 ||
		f.DelayRate > 0 || f.CorruptRate > 0
}

// LinkSel selects one directed physical link for a per-link override; all
// protocol instances multiplexed over the link share the policy.
type LinkSel struct {
	From, To ProcID
}

// PartitionWindow splits the system for [From, Until) ticks: every message
// crossing between GroupA and the rest is dropped at the delivery
// boundary. The window's end is the heal — no explicit action needed.
type PartitionWindow struct {
	// From and Until bound the window in ticks: active when
	// From <= now < Until.
	From, Until int64
	// GroupA is one side of the partition; every process not listed is on
	// the other side.
	GroupA []ProcID
}

// contains reports whether p is in GroupA.
func (w PartitionWindow) contains(p ProcID) bool {
	for _, q := range w.GroupA {
		if q == p {
			return true
		}
	}
	return false
}

// cuts reports whether a message from -> to crosses the open partition at
// tick now.
func (w PartitionWindow) cuts(from, to ProcID, now int64) bool {
	if now < w.From || now >= w.Until {
		return false
	}
	return w.contains(from) != w.contains(to)
}

// CrashWindow silences process Proc for [From, Until) ticks: it takes no
// internal actions and messages arriving at it are consumed with no
// effect. At Until the process resumes with its local state intact (a warm
// restart); the paper's model excludes permanent crashes, and a transient
// silence is exactly the kind of fault snap-stabilization absorbs.
type CrashWindow struct {
	Proc ProcID
	// From and Until bound the window in ticks: down when
	// From <= now < Until.
	From, Until int64
}

// FaultPlan is one complete adversarial schedule for a run. The zero value
// injects nothing. Plans are specifications: each substrate instantiates
// its own Injector(s) from the plan at construction and the plan itself is
// never mutated, so one plan value may configure several engines.
type FaultPlan struct {
	// Seed roots every random decision. Substrates derive per-injector
	// seeds from it with rng.Mix, so one scenario seed reproduces the
	// whole run (exactly on sim, stream-for-stream on runtime/udp).
	Seed uint64
	// Default applies to every directed link without an override.
	Default LinkFaults
	// Links overrides the default policy per directed physical link.
	Links map[LinkSel]LinkFaults
	// Partitions are the scheduled split-brain windows.
	Partitions []PartitionWindow
	// Crashes are the scheduled crash-restart windows.
	Crashes []CrashWindow
	// Unit is the tick length on the real-time substrates (default 1ms).
	// The deterministic simulator ignores it: one tick is one scheduler
	// step there.
	Unit time.Duration
}

// TickUnit returns the real-time tick length, defaulting to 1ms.
func (p *FaultPlan) TickUnit() time.Duration {
	if p.Unit <= 0 {
		return time.Millisecond
	}
	return p.Unit
}

// Validate reports whether every rate and window is well-formed.
func (p *FaultPlan) Validate() error {
	check := func(f LinkFaults) error {
		for _, r := range []float64{f.DropRate, f.DupRate, f.ReorderRate, f.DelayRate, f.CorruptRate} {
			if r < 0 || r >= 1 {
				return &FaultPlanError{Detail: "fault rate outside [0,1)"}
			}
		}
		if f.DelayTicks < 0 {
			return &FaultPlanError{Detail: "negative DelayTicks"}
		}
		return nil
	}
	if err := check(p.Default); err != nil {
		return err
	}
	for _, f := range p.Links {
		if err := check(f); err != nil {
			return err
		}
	}
	for _, w := range p.Partitions {
		if w.Until < w.From {
			return &FaultPlanError{Detail: "partition window ends before it starts"}
		}
	}
	for _, w := range p.Crashes {
		if w.Until < w.From {
			return &FaultPlanError{Detail: "crash window ends before it starts"}
		}
	}
	return nil
}

// ValidateTopology reports whether the plan only addresses links and
// processes that exist in t: per-link overrides must select directed
// channels along edges, and partition/crash windows must name processes
// in [0, n). A plan naming a non-edge is almost certainly a typo'd
// scenario — it would silently never fire — so substrates reject it at
// construction.
func (p *FaultPlan) ValidateTopology(t *Topology) error {
	if t == nil {
		return nil
	}
	for sel := range p.Links {
		if !t.HasEdge(sel.From, sel.To) {
			return &FaultPlanError{Detail: "link override addresses a non-edge of the topology"}
		}
	}
	for _, w := range p.Partitions {
		for _, q := range w.GroupA {
			if q < 0 || int(q) >= t.N() {
				return &FaultPlanError{Detail: "partition window names a process outside the topology"}
			}
		}
	}
	for _, w := range p.Crashes {
		if w.Proc < 0 || int(w.Proc) >= t.N() {
			return &FaultPlanError{Detail: "crash window names a process outside the topology"}
		}
	}
	return nil
}

// FaultPlanError describes an invalid plan.
type FaultPlanError struct{ Detail string }

func (e *FaultPlanError) Error() string { return "core: invalid fault plan: " + e.Detail }

// Down reports whether process q is inside a crash window at tick now.
// Pure function of the plan — safe to call from any goroutine.
func (p *FaultPlan) Down(q ProcID, now int64) bool {
	for _, w := range p.Crashes {
		if w.Proc == q && now >= w.From && now < w.Until {
			return true
		}
	}
	return false
}

// Cut reports whether a message from -> to crosses an open partition at
// tick now. Pure function of the plan — safe to call from any goroutine.
func (p *FaultPlan) Cut(from, to ProcID, now int64) bool {
	for _, w := range p.Partitions {
		if w.cuts(from, to, now) {
			return true
		}
	}
	return false
}

// linkFaults resolves the policy of the directed link from -> to.
func (p *FaultPlan) linkFaults(from, to ProcID) LinkFaults {
	if p.Links != nil {
		if f, ok := p.Links[LinkSel{From: from, To: to}]; ok {
			return f
		}
	}
	return p.Default
}

// FaultStats counts injected faults by category. Substrates surface a
// snapshot next to their native counters so injected adversity is always
// distinguishable from natural loss (sim.Stats.LinkLosses, udp mailbox
// drops).
type FaultStats struct {
	// Drops counts messages dropped by DropRate.
	Drops int64
	// Duplicates counts extra copies delivered by DupRate.
	Duplicates int64
	// Reorders counts messages held back by ReorderRate.
	Reorders int64
	// Delays counts messages held back by DelayRate.
	Delays int64
	// Corrupts counts messages garbled by CorruptRate.
	Corrupts int64
	// PartitionDrops counts messages dropped crossing an open partition.
	PartitionDrops int64
	// CrashDrops counts messages consumed by a down process.
	CrashDrops int64
}

// Add accumulates o into s (for aggregating per-receiver injectors).
func (s *FaultStats) Add(o FaultStats) {
	s.Drops += o.Drops
	s.Duplicates += o.Duplicates
	s.Reorders += o.Reorders
	s.Delays += o.Delays
	s.Corrupts += o.Corrupts
	s.PartitionDrops += o.PartitionDrops
	s.CrashDrops += o.CrashDrops
}

// Total returns the total number of injected faults.
func (s FaultStats) Total() int64 {
	return s.Drops + s.Duplicates + s.Reorders + s.Delays + s.Corrupts +
		s.PartitionDrops + s.CrashDrops
}

// Fate is the injector's verdict on one in-transit message.
type Fate uint8

const (
	// FateDeliver: the message is delivered (it is the first entry of the
	// returned batch; duplication or corruption may have applied).
	FateDeliver Fate = iota
	// FateDrop: the message is dropped — injected loss. Substrates emit
	// EvLose for it, attributing the loss to the receiver side like every
	// other in-transit loss.
	FateDrop
	// FateHold: the message is still in transit — held for reordering or
	// delay. No event; it will surface from a later Filter or Flush.
	FateHold
)

// Released is a held message leaving the injector through Flush.
type Released struct {
	From, To ProcID
	Msg      Message
}

// faultLink keys the injector's holdback state: one queue per directed
// logical link (the unit the substrates deliver on).
type faultLink struct {
	From, To ProcID
	Instance string
}

// heldMsg is one message in a holdback queue. The two release conditions
// are separate because they answer different adversaries: trafficAt is
// when later traffic on the link may carry the message out (Filter — the
// reordering swap), flushAt is when the substrate's periodic flush may
// (Flush — the delay bound). A reorder holdback is releasable by traffic
// immediately but NOT by the next flush, otherwise the flush cadence
// (every sim step, every udp receive iteration) would re-deliver it
// before the next message could arrive and the "swap" would degenerate
// into a one-tick delay.
type heldMsg struct {
	msg Message
	// trafficAt is the earliest tick a later Filter on the link may
	// release the message.
	trafficAt int64
	// flushAt is the earliest tick Flush may release the message.
	flushAt int64
}

// ReorderFlushGrace is how many ticks a reorder holdback waits for the
// next message on its link before the periodic flush may deliver it
// anyway. On a link with traffic (every protocol here retransmits
// continuously) the swap happens first; on a quiet link the holdback
// degrades into a bounded delay instead of a silent permanent loss.
const ReorderFlushGrace = 64

// atomicFaultStats is the injector's live counter set: written only by
// the injector's owner, but snapshot-readable from any goroutine.
type atomicFaultStats struct {
	drops, duplicates, reorders, delays, corrupts, partitionDrops, crashDrops atomic.Int64
}

// snapshot copies the counters into a plain FaultStats.
func (a *atomicFaultStats) snapshot() FaultStats {
	return FaultStats{
		Drops:          a.drops.Load(),
		Duplicates:     a.duplicates.Load(),
		Reorders:       a.reorders.Load(),
		Delays:         a.delays.Load(),
		Corrupts:       a.corrupts.Load(),
		PartitionDrops: a.partitionDrops.Load(),
		CrashDrops:     a.crashDrops.Load(),
	}
}

// Injector applies one FaultPlan at one delivery boundary. It is NOT
// goroutine-safe; substrates create injectors aligned with their delivery
// concurrency (sim: one for the whole network, under the scheduler;
// runtime: one per receiving process, under its mutex; udp: one per node,
// owned by its receive loop). The fault counters alone are written
// atomically so Stats may be read concurrently with injection.
type Injector struct {
	plan *FaultPlan
	r    Rand

	hold      map[faultLink][]heldMsg
	holdOrder []faultLink // deterministic Flush iteration order
	heldN     int
	out       []Message // reusable Filter result buffer

	stats atomicFaultStats
}

// NewInjector builds an injector applying plan with randomness from r.
// The caller seeds r from rng.Mix(plan.Seed, ...) per the determinism
// contract; core stays free of the rng dependency direction.
func NewInjector(plan *FaultPlan, r Rand) *Injector {
	return &Injector{plan: plan, r: r, hold: make(map[faultLink][]heldMsg)}
}

// Plan returns the installed plan.
func (inj *Injector) Plan() *FaultPlan { return inj.plan }

// Stats returns a snapshot of the fault counters. Safe to call
// concurrently with Filter/Flush.
func (inj *Injector) Stats() FaultStats { return inj.stats.snapshot() }

// Held returns the number of messages currently held back (in transit
// inside the injector). Quiescence checks must count them.
func (inj *Injector) Held() int { return inj.heldN }

// Filter decides the fate of message m in transit from -> to at tick now.
// The returned batch holds the messages to hand to the receiver, in order:
// the current message first (possibly corrupted, possibly twice), then any
// expired held messages of the same link. The batch aliases an internal
// buffer valid until the next Filter call. Policy draw order is fixed —
// crash, partition, drop, corrupt, hold (delay, then reorder), duplicate —
// so the consumed random stream is reproducible.
func (inj *Injector) Filter(from, to ProcID, m Message, now int64) ([]Message, Fate) {
	p := inj.plan
	if p.Down(to, now) {
		// The receiver is down: the message is consumed with no effect.
		// Held messages stay held — the network keeps them for the
		// restart.
		inj.stats.crashDrops.Add(1)
		return nil, FateDrop
	}
	if p.Cut(from, to, now) {
		inj.stats.partitionDrops.Add(1)
		return nil, FateDrop
	}
	f := p.linkFaults(from, to)
	key := faultLink{From: from, To: to, Instance: m.Instance}
	out := inj.out[:0]
	fate := FateDeliver
	var stash *heldMsg
	switch {
	case f.DropRate > 0 && inj.r.Float64() < f.DropRate:
		inj.stats.drops.Add(1)
		fate = FateDrop
	default:
		if f.CorruptRate > 0 && inj.r.Float64() < f.CorruptRate {
			m = corruptMessage(m, inj.r)
			inj.stats.corrupts.Add(1)
		}
		switch {
		case f.DelayRate > 0 && inj.r.Float64() < f.DelayRate:
			stash = &heldMsg{msg: m, trafficAt: now + f.DelayTicks, flushAt: now + f.DelayTicks}
			inj.stats.delays.Add(1)
			fate = FateHold
		case f.ReorderRate > 0 && inj.r.Float64() < f.ReorderRate:
			// Held for the next traffic on this link: stashing AFTER the
			// release scan below defers it to the next Filter, which
			// delivers its own message first — an adjacent swap. Flush
			// must not pre-empt the swap (see heldMsg), so its release
			// waits out the grace period.
			stash = &heldMsg{msg: m, trafficAt: now, flushAt: now + ReorderFlushGrace}
			inj.stats.reorders.Add(1)
			fate = FateHold
		default:
			out = append(out, m)
			if f.DupRate > 0 && inj.r.Float64() < f.DupRate {
				out = append(out, m)
				inj.stats.duplicates.Add(1)
			}
		}
	}
	if inj.heldN > 0 {
		out = inj.releaseLink(key, now, out)
	}
	if stash != nil {
		inj.stashMsg(key, *stash)
	}
	inj.out = out
	return out, fate
}

// releaseLink appends every expired held message of key to out and removes
// it from the queue.
func (inj *Injector) releaseLink(key faultLink, now int64, out []Message) []Message {
	q := inj.hold[key]
	if len(q) == 0 {
		return out
	}
	keep := q[:0]
	for _, h := range q {
		if h.trafficAt <= now {
			out = append(out, h.msg)
			inj.heldN--
		} else {
			keep = append(keep, h)
		}
	}
	inj.hold[key] = keep
	return out
}

// stashMsg queues h on key's holdback queue.
func (inj *Injector) stashMsg(key faultLink, h heldMsg) {
	if _, ok := inj.hold[key]; !ok {
		inj.holdOrder = append(inj.holdOrder, key)
	}
	inj.hold[key] = append(inj.hold[key], h)
	inj.heldN++
}

// Flush releases every expired held message whose receiver is up and whose
// link is not cut, in a deterministic (first-held link first) order.
// Substrates call it periodically so a delayed message on a quiet link
// still surfaces.
func (inj *Injector) Flush(now int64) []Released {
	if inj.heldN == 0 {
		return nil
	}
	var out []Released
	for _, key := range inj.holdOrder {
		q := inj.hold[key]
		if len(q) == 0 {
			continue
		}
		if inj.plan.Down(key.To, now) || inj.plan.Cut(key.From, key.To, now) {
			continue
		}
		keep := q[:0]
		for _, h := range q {
			if h.flushAt <= now {
				out = append(out, Released{From: key.From, To: key.To, Msg: h.msg})
				inj.heldN--
			} else {
				keep = append(keep, h)
			}
		}
		inj.hold[key] = keep
	}
	return out
}

// corruptTags is the garbage vocabulary for payload corruption; it
// includes the empty tag and tags that collide with no protocol's
// meaningful values.
var corruptTags = []string{"", "junk", "zap", "noise"}

// corruptMessage garbles the message's application payloads and handshake
// fields, keeping the routing envelope (Instance, Kind) intact so the
// message still reaches a receive action — the adversarial case the
// protocols must survive, per the arbitrary-channel-content model.
// Payload bodies are garbled too, but only when the message carries one:
// a blob-free message consumes exactly the random draws of earlier
// revisions, keeping legacy decision streams reproducible.
func corruptMessage(m Message, r Rand) Message {
	m.B = corruptPayload(m.B, r)
	m.F = corruptPayload(m.F, r)
	m.State = uint8(r.Intn(256))
	m.Echo = uint8(r.Intn(256))
	return m
}

// corruptPayload draws a garbage replacement for p. A carried blob is
// replaced by a fresh random body (never mutated in place — in-flight
// duplicates may alias it) whose length varies around the original —
// clamped to MaxBlobLen, so corruption exercises truncation and growth
// at the decode layer without manufacturing a message the wire format
// could never carry (an unencodable feedback echo would silently drop
// at every UDP send, forever).
func corruptPayload(p Payload, r Rand) Payload {
	out := Payload{Tag: corruptTags[r.Intn(len(corruptTags))], Num: int64(r.Uint64() % 1024)}
	if n := len(p.Blob); n > 0 {
		bound := 2 * n
		if bound > MaxBlobLen {
			bound = MaxBlobLen
		}
		garbled := make([]byte, r.Intn(bound+1))
		for i := range garbled {
			garbled[i] = byte(r.Uint64())
		}
		out.Blob = garbled
	}
	return out
}
