package core

import (
	"testing"
)

// stubRand is a deterministic core.Rand whose Float64 stream is scripted
// and whose other draws are fixed, so tests can force each policy branch.
type stubRand struct {
	floats []float64
	i      int
}

func (s *stubRand) Float64() float64 {
	if s.i >= len(s.floats) {
		return 0.999999
	}
	v := s.floats[s.i]
	s.i++
	return v
}
func (s *stubRand) Intn(n int) int { return 0 }
func (s *stubRand) Uint64() uint64 { return 7 }
func (s *stubRand) Bool() bool     { return false }

// panicRand fails the test on any draw: installed behind an empty plan to
// pin that a zero-value plan consumes no randomness at all.
type panicRand struct{ t *testing.T }

func (p panicRand) Float64() float64 { p.t.Fatal("empty plan drew Float64"); return 0 }
func (p panicRand) Intn(n int) int   { p.t.Fatal("empty plan drew Intn"); return 0 }
func (p panicRand) Uint64() uint64   { p.t.Fatal("empty plan drew Uint64"); return 0 }
func (p panicRand) Bool() bool       { p.t.Fatal("empty plan drew Bool"); return false }

func msg(kind string) Message {
	return Message{Instance: "pif", Kind: kind, B: Payload{Tag: "b", Num: 1}}
}

func TestEmptyPlanPassesEverythingWithoutRandomness(t *testing.T) {
	inj := NewInjector(&FaultPlan{}, panicRand{t})
	for i := 0; i < 10; i++ {
		out, fate := inj.Filter(0, 1, msg("PIF"), int64(i))
		if fate != FateDeliver || len(out) != 1 || !out[0].Equal(msg("PIF")) {
			t.Fatalf("empty plan altered delivery: fate=%v out=%v", fate, out)
		}
	}
	if got := inj.Stats().Total(); got != 0 {
		t.Fatalf("empty plan counted %d faults", got)
	}
	if rel := inj.Flush(100); rel != nil {
		t.Fatalf("empty plan flushed %v", rel)
	}
}

func TestDropAndDuplicate(t *testing.T) {
	plan := &FaultPlan{Default: LinkFaults{DropRate: 0.5, DupRate: 0.5}}
	// First message: drop roll hits (0.1 < 0.5). Second: drop misses
	// (0.9), dup hits (0.1).
	r := &stubRand{floats: []float64{0.1, 0.9, 0.1}}
	inj := NewInjector(plan, r)

	out, fate := inj.Filter(0, 1, msg("PIF"), 0)
	if fate != FateDrop || len(out) != 0 {
		t.Fatalf("want drop, got fate=%v out=%v", fate, out)
	}
	out, fate = inj.Filter(0, 1, msg("PIF"), 1)
	if fate != FateDeliver || len(out) != 2 {
		t.Fatalf("want duplicate pair, got fate=%v out=%v", fate, out)
	}
	st := inj.Stats()
	if st.Drops != 1 || st.Duplicates != 1 {
		t.Fatalf("stats = %+v, want 1 drop 1 duplicate", st)
	}
}

func TestReorderSwapsAdjacentMessages(t *testing.T) {
	plan := &FaultPlan{Default: LinkFaults{ReorderRate: 0.5}}
	// First message: reorder hits (held). Second: reorder misses, so it
	// delivers first and the held one is released behind it.
	r := &stubRand{floats: []float64{0.1, 0.9}}
	inj := NewInjector(plan, r)

	m1, m2 := msg("ONE"), msg("TWO")
	out, fate := inj.Filter(0, 1, m1, 0)
	if fate != FateHold || len(out) != 0 {
		t.Fatalf("first message not held: fate=%v out=%v", fate, out)
	}
	if inj.Held() != 1 {
		t.Fatalf("Held() = %d, want 1", inj.Held())
	}
	out, fate = inj.Filter(0, 1, m2, 1)
	if fate != FateDeliver || len(out) != 2 || !out[0].Equal(m2) || !out[1].Equal(m1) {
		t.Fatalf("want [TWO ONE], got fate=%v out=%v", fate, out)
	}
	if inj.Held() != 0 {
		t.Fatalf("Held() = %d after release, want 0", inj.Held())
	}
	if st := inj.Stats(); st.Reorders != 1 {
		t.Fatalf("stats = %+v, want 1 reorder", st)
	}
}

// TestReorderHoldSurvivesFlush pins the property that makes the swap
// real on the substrates: the periodic Flush — which sim runs every step
// and udp every receive iteration — must NOT release a reorder holdback
// before the next message on the link has had a chance to overtake it.
// Only after the grace period may Flush deliver it (a quiet link degrades
// the reorder into a bounded delay, never a permanent loss).
func TestReorderHoldSurvivesFlush(t *testing.T) {
	plan := &FaultPlan{Default: LinkFaults{ReorderRate: 0.5}}
	r := &stubRand{floats: []float64{0.1, 0.9}}
	inj := NewInjector(plan, r)

	m1, m2 := msg("ONE"), msg("TWO")
	if _, fate := inj.Filter(0, 1, m1, 0); fate != FateHold {
		t.Fatalf("first message not held: fate=%v", fate)
	}
	// Immediate flushes (the substrates' cadence) must not pre-empt the
	// swap.
	for now := int64(0); now < ReorderFlushGrace; now += 8 {
		if rel := inj.Flush(now); len(rel) != 0 {
			t.Fatalf("Flush(%d) pre-empted the reorder: %v", now, rel)
		}
	}
	// The next message overtakes the held one: a genuine adjacent swap.
	out, fate := inj.Filter(0, 1, m2, 10)
	if fate != FateDeliver || len(out) != 2 || !out[0].Equal(m2) || !out[1].Equal(m1) {
		t.Fatalf("want [TWO ONE], got fate=%v out=%v", fate, out)
	}

	// On a quiet link the grace period bounds the holdback.
	r2 := &stubRand{floats: []float64{0.1}}
	inj2 := NewInjector(plan, r2)
	if _, fate := inj2.Filter(0, 1, m1, 0); fate != FateHold {
		t.Fatal("message not held")
	}
	if rel := inj2.Flush(ReorderFlushGrace - 1); len(rel) != 0 {
		t.Fatalf("released before the grace period: %v", rel)
	}
	if rel := inj2.Flush(ReorderFlushGrace); len(rel) != 1 || !rel[0].Msg.Equal(m1) {
		t.Fatalf("quiet-link holdback not released after grace: %v", rel)
	}
}

func TestDelayReleasedByFlushAfterTicks(t *testing.T) {
	plan := &FaultPlan{Default: LinkFaults{DelayRate: 0.5, DelayTicks: 10}}
	r := &stubRand{floats: []float64{0.1}}
	inj := NewInjector(plan, r)

	m := msg("PIF")
	if _, fate := inj.Filter(0, 1, m, 0); fate != FateHold {
		t.Fatalf("message not held, fate=%v", fate)
	}
	if rel := inj.Flush(5); len(rel) != 0 {
		t.Fatalf("released early: %v", rel)
	}
	rel := inj.Flush(10)
	if len(rel) != 1 || !rel[0].Msg.Equal(m) || rel[0].From != 0 || rel[0].To != 1 {
		t.Fatalf("Flush(10) = %v, want the delayed message", rel)
	}
	if st := inj.Stats(); st.Delays != 1 {
		t.Fatalf("stats = %+v, want 1 delay", st)
	}
}

func TestCorruptKeepsRoutingEnvelope(t *testing.T) {
	plan := &FaultPlan{Default: LinkFaults{CorruptRate: 0.5}}
	r := &stubRand{floats: []float64{0.1}}
	inj := NewInjector(plan, r)

	in := Message{Instance: "me/pif", Kind: "PIF", B: Payload{Tag: "real", Num: 42}, State: 3, Echo: 3}
	out, fate := inj.Filter(0, 1, in, 0)
	if fate != FateDeliver || len(out) != 1 {
		t.Fatalf("corrupted message not delivered: fate=%v out=%v", fate, out)
	}
	got := out[0]
	if got.Instance != in.Instance || got.Kind != in.Kind {
		t.Fatalf("corruption touched the routing envelope: %v", got)
	}
	if got.B.Equal(in.B) {
		t.Fatalf("payload not corrupted: %v", got)
	}
	if st := inj.Stats(); st.Corrupts != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt", st)
	}
}

func TestPartitionWindowCutsAndHeals(t *testing.T) {
	plan := &FaultPlan{Partitions: []PartitionWindow{{From: 10, Until: 20, GroupA: []ProcID{0, 1}}}}
	inj := NewInjector(plan, panicRand{t}) // window checks draw nothing

	// Before the window: crossing traffic passes.
	if _, fate := inj.Filter(0, 2, msg("PIF"), 5); fate != FateDeliver {
		t.Fatal("message dropped before the window opened")
	}
	// Open: crossing traffic dropped, same-side traffic passes.
	if _, fate := inj.Filter(0, 2, msg("PIF"), 15); fate != FateDrop {
		t.Fatal("crossing message survived the open partition")
	}
	if _, fate := inj.Filter(2, 0, msg("PIF"), 15); fate != FateDrop {
		t.Fatal("reverse crossing message survived the open partition")
	}
	if _, fate := inj.Filter(0, 1, msg("PIF"), 15); fate != FateDeliver {
		t.Fatal("same-side message dropped")
	}
	// Healed.
	if _, fate := inj.Filter(0, 2, msg("PIF"), 20); fate != FateDeliver {
		t.Fatal("message dropped after the heal")
	}
	if st := inj.Stats(); st.PartitionDrops != 2 {
		t.Fatalf("stats = %+v, want 2 partition drops", st)
	}
}

func TestCrashWindowConsumesArrivalsAndEnds(t *testing.T) {
	plan := &FaultPlan{Crashes: []CrashWindow{{Proc: 1, From: 0, Until: 10}}}
	inj := NewInjector(plan, panicRand{t})

	if !plan.Down(1, 5) || plan.Down(1, 10) || plan.Down(0, 5) {
		t.Fatal("Down window arithmetic wrong")
	}
	if _, fate := inj.Filter(0, 1, msg("PIF"), 5); fate != FateDrop {
		t.Fatal("arrival at a down process not consumed")
	}
	if _, fate := inj.Filter(0, 1, msg("PIF"), 10); fate != FateDeliver {
		t.Fatal("arrival after restart dropped")
	}
	if st := inj.Stats(); st.CrashDrops != 1 {
		t.Fatalf("stats = %+v, want 1 crash drop", st)
	}
}

func TestHeldMessagesSurviveCrashAndPartition(t *testing.T) {
	plan := &FaultPlan{
		Default: LinkFaults{DelayRate: 0.5, DelayTicks: 1},
		Crashes: []CrashWindow{{Proc: 1, From: 2, Until: 6}},
	}
	r := &stubRand{floats: []float64{0.1}}
	inj := NewInjector(plan, r)
	m := msg("PIF")
	if _, fate := inj.Filter(0, 1, m, 0); fate != FateHold {
		t.Fatal("message not held")
	}
	// Expired while the receiver is down: Flush must keep holding it.
	if rel := inj.Flush(4); len(rel) != 0 {
		t.Fatalf("flushed to a down process: %v", rel)
	}
	if rel := inj.Flush(6); len(rel) != 1 || !rel[0].Msg.Equal(m) {
		t.Fatalf("held message lost across the crash window: %v", rel)
	}
}

func TestPerLinkOverride(t *testing.T) {
	plan := &FaultPlan{
		Default: LinkFaults{},
		Links:   map[LinkSel]LinkFaults{{From: 0, To: 1}: {DropRate: 0.5}},
	}
	r := &stubRand{floats: []float64{0.1}}
	inj := NewInjector(plan, r)
	if _, fate := inj.Filter(0, 1, msg("PIF"), 0); fate != FateDrop {
		t.Fatal("override link did not drop")
	}
	// The reverse link has the (empty) default policy: no draw, no drop.
	inj2 := NewInjector(plan, panicRand{t})
	if _, fate := inj2.Filter(1, 0, msg("PIF"), 0); fate != FateDeliver {
		t.Fatal("default link dropped")
	}
}

func TestValidate(t *testing.T) {
	bad := []*FaultPlan{
		{Default: LinkFaults{DropRate: 1.0}},
		{Default: LinkFaults{DupRate: -0.1}},
		{Default: LinkFaults{DelayTicks: -1}},
		{Links: map[LinkSel]LinkFaults{{0, 1}: {CorruptRate: 2}}},
		{Partitions: []PartitionWindow{{From: 10, Until: 5}}},
		{Crashes: []CrashWindow{{Proc: 0, From: 10, Until: 5}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated", i)
		}
	}
	ok := &FaultPlan{
		Default:    LinkFaults{DropRate: 0.2, DupRate: 0.1, ReorderRate: 0.1, DelayRate: 0.1, DelayTicks: 5, CorruptRate: 0.05},
		Partitions: []PartitionWindow{{From: 0, Until: 10, GroupA: []ProcID{0}}},
		Crashes:    []CrashWindow{{Proc: 1, From: 5, Until: 15}},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

// TestCorruptGarblesBlobs pins the blob half of the corruption policy: a
// carried body is replaced (fresh backing array — in-flight duplicates
// may alias the original) while the routing envelope stays intact, and a
// blob-free message stays blob-free.
func TestCorruptGarblesBlobs(t *testing.T) {
	t.Parallel()
	plan := &FaultPlan{Default: LinkFaults{CorruptRate: 0.999}}
	inj := NewInjector(plan, newTestRand(9))
	blob := []byte("immutable-original-body")
	in := Message{Instance: "pif", Kind: "PIF", B: Payload{Tag: "app", Blob: blob}}
	var sawCorrupt bool
	for i := 0; i < 50 && !sawCorrupt; i++ {
		out, fate := inj.Filter(0, 1, in, int64(i))
		if fate != FateDeliver || len(out) != 1 {
			t.Fatalf("iteration %d: fate=%v out=%d", i, fate, len(out))
		}
		got := out[0]
		if got.Instance != "pif" || got.Kind != "PIF" {
			t.Fatalf("corruption touched the routing envelope: %v", got)
		}
		if !got.B.Equal(in.B) {
			sawCorrupt = true
			if len(got.B.Blob) > 0 && &got.B.Blob[0] == &blob[0] {
				t.Fatal("garbled blob aliases the original backing array")
			}
		}
	}
	if !sawCorrupt {
		t.Fatal("CorruptRate=0.999 never corrupted in 50 filters")
	}
	if string(blob) != "immutable-original-body" {
		t.Fatal("corruption mutated the original blob in place")
	}
	if s := inj.Stats(); s.Corrupts == 0 {
		t.Fatal("corrupts counter not incremented")
	}

	// Blob-free messages stay blob-free through corruption.
	inj2 := NewInjector(plan, newTestRand(9))
	for i := 0; i < 50; i++ {
		out, _ := inj2.Filter(0, 1, Message{Instance: "pif", Kind: "PIF", B: Payload{Tag: "m"}}, int64(i))
		for _, m := range out {
			if len(m.B.Blob) != 0 || len(m.F.Blob) != 0 {
				t.Fatal("corrupting a blob-free message fabricated a body")
			}
		}
	}
}

// testRand is a self-contained SplitMix64 core.Rand for tests that need
// genuine variability (core stays free of the rng package dependency).
type testRand struct{ state uint64 }

func newTestRand(seed uint64) *testRand { return &testRand{state: seed} }

func (r *testRand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
func (r *testRand) Intn(n int) int   { return int(r.Uint64() % uint64(n)) }
func (r *testRand) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }
func (r *testRand) Bool() bool       { return r.Uint64()&1 == 1 }

// TestCorruptClampsBlobToWireBound pins that corruption never
// manufactures a body the wire format cannot carry: garbling a
// MaxBlobLen-sized blob (the largest legal body) must stay within
// MaxBlobLen, not grow toward 2x.
func TestCorruptClampsBlobToWireBound(t *testing.T) {
	t.Parallel()
	plan := &FaultPlan{Default: LinkFaults{CorruptRate: 0.999}}
	inj := NewInjector(plan, newTestRand(4))
	in := Message{Instance: "pif", Kind: "PIF", B: Payload{Tag: "app", Blob: make([]byte, MaxBlobLen)}}
	for i := 0; i < 200; i++ {
		out, _ := inj.Filter(0, 1, in, int64(i))
		for _, m := range out {
			if len(m.B.Blob) > MaxBlobLen {
				t.Fatalf("corruption grew a blob to %d bytes (> MaxBlobLen %d)", len(m.B.Blob), MaxBlobLen)
			}
		}
	}
	if inj.Stats().Corrupts == 0 {
		t.Fatal("nothing was corrupted; the clamp went untested")
	}
}
