// Topology: the communication graph of a system. The paper fixes a
// fully-connected network; everything else in this repository treats the
// graph as a first-class value so the same substrates route rings, lines,
// stars, trees, and random graphs — and the complete graph remains one
// ordinary (default) instance.
//
// A Topology is an undirected simple graph over processes 0..n-1. Every
// undirected edge {u, v} yields two directed channels (u -> v and v -> u),
// matching the model's per-pair channel structure restricted to edges.
// Values are immutable after construction, so one Topology may configure
// several engines (like FaultPlan).
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Topology is an immutable undirected simple graph over n processes.
type Topology struct {
	n     int
	adj   [][]ProcID // sorted neighbor lists
	edges int        // undirected edge count
}

// NewTopology builds a topology over n processes (n >= 2) from undirected
// edges. Self-loops, out-of-range endpoints, and duplicate edges are
// errors — a topology is a specification, and a malformed one should fail
// loudly at construction, not route strangely later.
func NewTopology(n int, edges [][2]ProcID) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: topology needs n >= 2, got %d", n)
	}
	t := &Topology{n: n, adj: make([][]ProcID, n)}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			return nil, fmt.Errorf("core: topology edge %d-%d outside [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("core: topology self-loop at %d", u)
		}
		t.adj[u] = append(t.adj[u], v)
		t.adj[v] = append(t.adj[v], u)
		t.edges++
	}
	for p := range t.adj {
		nb := t.adj[p]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		for i := 1; i < len(nb); i++ {
			if nb[i] == nb[i-1] {
				return nil, fmt.Errorf("core: duplicate topology edge %d-%d", p, nb[i])
			}
		}
	}
	return t, nil
}

// mustTopology wraps NewTopology for the generators, whose edge sets are
// correct by construction.
func mustTopology(n int, edges [][2]ProcID) *Topology {
	t, err := NewTopology(n, edges)
	if err != nil {
		panic(err)
	}
	return t
}

// Complete returns the paper's fully-connected graph K_n.
func Complete(n int) *Topology {
	var edges [][2]ProcID
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]ProcID{ProcID(u), ProcID(v)})
		}
	}
	return mustTopology(n, edges)
}

// Ring returns the cycle 0-1-...-(n-1)-0.
func Ring(n int) *Topology {
	edges := make([][2]ProcID, 0, n)
	for u := 0; u < n; u++ {
		edges = append(edges, [2]ProcID{ProcID(u), ProcID((u + 1) % n)})
	}
	if n == 2 {
		// The 2-cycle degenerates to a single edge (simple graph).
		edges = edges[:1]
	}
	return mustTopology(n, edges)
}

// Line returns the path 0-1-...-(n-1).
func Line(n int) *Topology {
	edges := make([][2]ProcID, 0, n-1)
	for u := 0; u+1 < n; u++ {
		edges = append(edges, [2]ProcID{ProcID(u), ProcID(u + 1)})
	}
	return mustTopology(n, edges)
}

// Star returns the star with center 0 and leaves 1..n-1.
func Star(n int) *Topology {
	edges := make([][2]ProcID, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]ProcID{0, ProcID(v)})
	}
	return mustTopology(n, edges)
}

// RandomTree returns a uniformly random recursive tree: process i > 0
// attaches to a uniform earlier process. Deterministic in r's stream, so
// a tree replays from its seed (callers derive r from rng.Mix).
func RandomTree(n int, r Rand) *Topology {
	if n < 2 {
		panic(fmt.Sprintf("core: RandomTree needs n >= 2, got %d", n))
	}
	edges := make([][2]ProcID, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]ProcID{ProcID(r.Intn(i)), ProcID(i)})
	}
	return mustTopology(n, edges)
}

// GNP returns an Erdős–Rényi graph G(n, p): each of the n(n-1)/2
// candidate edges is included independently with probability p, drawn in
// the fixed (u, v) ascending order so the graph is a pure function of
// (n, p, r's seed). The result may be disconnected; callers that need a
// usable system should check Connected.
func GNP(n int, p float64, r Rand) *Topology {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("core: GNP probability %v outside [0,1]", p))
	}
	var edges [][2]ProcID
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				edges = append(edges, [2]ProcID{ProcID(u), ProcID(v)})
			}
		}
	}
	return mustTopology(n, edges)
}

// N returns the number of processes.
func (t *Topology) N() int { return t.n }

// EdgeCount returns the number of undirected edges.
func (t *Topology) EdgeCount() int { return t.edges }

// Degree returns the number of neighbors of p.
func (t *Topology) Degree(p ProcID) int { return len(t.adj[p]) }

// Neighbors returns p's neighbors in ascending order. The slice is shared
// with the topology and must not be mutated.
func (t *Topology) Neighbors(p ProcID) []ProcID { return t.adj[p] }

// HasEdge reports whether {u, v} is an edge. Binary search over the
// sorted neighbor list: O(log degree).
func (t *Topology) HasEdge(u, v ProcID) bool {
	if u < 0 || v < 0 || int(u) >= t.n || int(v) >= t.n || u == v {
		return false
	}
	nb := t.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// Edges returns every undirected edge as (u, v) with u < v, in ascending
// order — the canonical edge list the text format serializes.
func (t *Topology) Edges() [][2]ProcID {
	out := make([][2]ProcID, 0, t.edges)
	for u := 0; u < t.n; u++ {
		for _, v := range t.adj[u] {
			if ProcID(u) < v {
				out = append(out, [2]ProcID{ProcID(u), v})
			}
		}
	}
	return out
}

// IsComplete reports whether every pair of processes is connected — the
// paper's topology, on which every engine must behave byte-identically to
// the pre-topology code paths.
func (t *Topology) IsComplete() bool {
	return t.edges == t.n*(t.n-1)/2
}

// Connected reports whether the graph has a single connected component.
func (t *Topology) Connected() bool {
	seen := make([]bool, t.n)
	stack := []ProcID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range t.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == t.n
}

// IsTree reports whether the graph is a tree (connected and acyclic) —
// the topology class the snap-stabilizing forwarding protocol's
// deadlock-freedom argument needs.
func (t *Topology) IsTree() bool {
	return t.edges == t.n-1 && t.Connected()
}

// NextHops returns the shortest-path routing table: NextHops()[p][dst] is
// the neighbor of p on a shortest path from p to dst, or -1 when dst is p
// itself or unreachable. Ties break toward the lowest-numbered neighbor
// (BFS visits neighbors in ascending order), so the table is a pure
// function of the topology. On a tree the table is THE routing function:
// paths are unique.
func (t *Topology) NextHops() [][]ProcID {
	out := make([][]ProcID, t.n)
	queue := make([]ProcID, 0, t.n)
	for src := 0; src < t.n; src++ {
		hop := make([]ProcID, t.n)
		for i := range hop {
			hop[i] = -1
		}
		visited := make([]bool, t.n)
		visited[src] = true
		queue = queue[:0]
		// Seed the frontier with src's neighbors: each routes through
		// itself, and BFS propagates that first hop outward.
		for _, v := range t.adj[src] {
			visited[v] = true
			hop[v] = v
			queue = append(queue, v)
		}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range t.adj[u] {
				if !visited[v] {
					visited[v] = true
					hop[v] = hop[u]
					queue = append(queue, v)
				}
			}
		}
		out[src] = hop
	}
	return out
}

// AppendText appends the canonical graph.txt serialization: an "n <N>"
// header followed by the ascending (u < v) edge list, one "u v" line
// each. ParseTopology reads it back; serialize-parse round-trips are
// exact.
func (t *Topology) AppendText(dst []byte) []byte {
	dst = append(dst, "n "...)
	dst = strconv.AppendInt(dst, int64(t.n), 10)
	dst = append(dst, '\n')
	for _, e := range t.Edges() {
		dst = strconv.AppendInt(dst, int64(e[0]), 10)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(e[1]), 10)
		dst = append(dst, '\n')
	}
	return dst
}

// String returns the canonical graph.txt serialization.
func (t *Topology) String() string { return string(t.AppendText(nil)) }

// MaxParseN bounds the process count ParseTopology accepts. The parser
// allocates adjacency structure proportional to the header's count
// before reading any edge, so an unbounded count would let a 16-byte
// input demand gigabytes.
const MaxParseN = 1 << 20

// ParseTopology parses the graph.txt format: an "n <N>" header line
// followed by one "u v" line per undirected edge. Blank lines and
// "#"-prefixed comments are ignored anywhere. Errors carry the 1-based
// line number.
func ParseTopology(data []byte) (*Topology, error) {
	var (
		n     = -1
		edges [][2]ProcID
	)
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if n < 0 {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("core: topology line %d: want header \"n <count>\", got %q", lineNo+1, line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 2 || v > MaxParseN {
				return nil, fmt.Errorf("core: topology line %d: invalid process count %q (want 2..%d)", lineNo+1, fields[1], MaxParseN)
			}
			n = v
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("core: topology line %d: want \"u v\", got %q", lineNo+1, line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("core: topology line %d: invalid edge %q", lineNo+1, line)
		}
		edges = append(edges, [2]ProcID{ProcID(u), ProcID(v)})
	}
	if n < 0 {
		return nil, fmt.Errorf("core: topology has no \"n <count>\" header")
	}
	return NewTopology(n, edges)
}
