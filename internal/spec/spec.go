// Package spec formalizes the paper's specifications as executable
// checkers over event streams, plus the §3 machinery (state projections
// and safety-distributed bad-factors) used by the impossibility
// construction.
//
// Snap-stabilization cannot be verified as a set of legitimate
// configurations; it is a predicate on executions (§2: "specifications
// based on a sequence of actions"). The checkers therefore subscribe to
// the substrate's event stream and judge the properties of Specification 1
// (PIF: Start, Correctness, Termination, Decision) and Specification 3
// (mutual exclusion: Start, Correctness) online. Termination and the
// finite-time halves of Start are bounded-budget obligations discharged by
// the harness (a violation manifests as a run exceeding its generous step
// budget); everything else is checked exactly.
package spec

import (
	"fmt"
	"sort"

	"github.com/snapstab/snapstab/internal/core"
)

// Violation describes one observed specification violation.
type Violation struct {
	// Property names the violated clause ("Correctness", "Decision", ...).
	Property string
	// Detail is a human-readable description.
	Detail string
	// Step is the scheduler step at which the violation was detected.
	Step int
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("step %d: %s violated: %s", v.Step, v.Property, v.Detail)
}

// PIFChecker verifies Specification 1 for the computations of one
// initiator on one protocol instance. Arm it with the requested broadcast
// payload right after submitting the request; it then watches the
// following computation through to its decision.
//
// ExpectFck, when non-nil, gives the feedback value process q is expected
// to produce for broadcast b; the Decision check then verifies the
// initiator decided on exactly those values ("taking all acknowledgments
// of the last message it broadcasts into account only").
type PIFChecker struct {
	N         int
	Initiator core.ProcID
	Instance  string
	ExpectFck func(q core.ProcID, b core.Payload) core.Payload
	// Participants restricts the Correctness/Decision obligations to a set
	// of processes — the initiator's neighbours when the PIF runs over a
	// non-complete topology. Nil means every process except the initiator
	// (the paper's complete graph).
	Participants []core.ProcID

	armed      bool
	token      core.Payload
	started    bool
	decided    bool
	brd        map[core.ProcID]bool
	fck        map[core.ProcID][]core.Payload
	violations []Violation
}

var _ core.Observer = (*PIFChecker)(nil)

// Arm begins checking the computation that will broadcast token. It must
// be called after the previous computation's decision (the model forbids
// re-requesting earlier).
func (c *PIFChecker) Arm(token core.Payload) {
	c.armed = true
	c.token = token
	c.started = false
	c.decided = false
	c.brd = make(map[core.ProcID]bool)
	c.fck = make(map[core.ProcID][]core.Payload)
}

// Started reports whether the armed computation has started.
func (c *PIFChecker) Started() bool { return c.started }

// Decided reports whether the armed computation has decided.
func (c *PIFChecker) Decided() bool { return c.decided }

// ValueChecking reports whether the Decision clause is being checked
// value-for-value: only when ExpectFck is installed does the checker
// compare the decided feedback against the expected values. Callers
// surfacing a verdict (the façade's SpecReport) must report this bit —
// a clean verdict that never compared values is weaker than it looks.
func (c *PIFChecker) ValueChecking() bool { return c.ExpectFck != nil }

// OnEvent consumes one event.
func (c *PIFChecker) OnEvent(e core.Event) {
	if !c.armed || c.decided || e.Instance != c.Instance {
		return
	}
	switch e.Kind {
	case core.EvStart:
		if e.Proc == c.Initiator && e.Note == c.token.String() {
			c.started = true
		}
	case core.EvRecvBrd:
		if c.started && e.Proc != c.Initiator && e.Msg.B.Equal(c.token) {
			c.brd[e.Proc] = true
		}
	case core.EvRecvFck:
		if c.started && e.Proc == c.Initiator {
			c.fck[e.Peer] = append(c.fck[e.Peer], e.Msg.F)
		}
	case core.EvDecide:
		if e.Proc == c.Initiator && c.started {
			c.decided = true
			c.checkAtDecision(e.Step)
		}
	}
}

// checkAtDecision applies the Correctness and Decision clauses once the
// started computation decides (Lemma 5: all receive-brd and receive-fck
// events of the computation precede the decision).
func (c *PIFChecker) checkAtDecision(step int) {
	participants := c.Participants
	if participants == nil {
		participants = make([]core.ProcID, 0, c.N-1)
		for q := core.ProcID(0); int(q) < c.N; q++ {
			if q != c.Initiator {
				participants = append(participants, q)
			}
		}
	}
	for _, q := range participants {
		if !c.brd[q] {
			c.violations = append(c.violations, Violation{
				Property: "Correctness",
				Detail:   fmt.Sprintf("process %d never received broadcast %v", q, c.token),
				Step:     step,
			})
		}
		acks := c.fck[q]
		switch {
		case len(acks) == 0:
			c.violations = append(c.violations, Violation{
				Property: "Correctness",
				Detail:   fmt.Sprintf("no acknowledgment from %d for %v", q, c.token),
				Step:     step,
			})
		case len(acks) > 1:
			c.violations = append(c.violations, Violation{
				Property: "Decision",
				Detail:   fmt.Sprintf("%d acknowledgments from %d within one computation, want exactly 1", len(acks), q),
				Step:     step,
			})
		case c.ExpectFck != nil:
			if want := c.ExpectFck(q, c.token); !acks[0].Equal(want) {
				c.violations = append(c.violations, Violation{
					Property: "Decision",
					Detail:   fmt.Sprintf("decision used feedback %v from %d, want %v (stale or fabricated acknowledgment)", acks[0], q, want),
					Step:     step,
				})
			}
		}
	}
}

// Violations returns the violations observed so far.
func (c *PIFChecker) Violations() []Violation { return c.violations }

// MutexChecker verifies Specification 3's Correctness clause: if a
// requesting process enters the critical section, it executes it alone —
// among requesting processes. The paper's footnote 1 is explicit that
// processes placed inside the critical section by the arbitrary initial
// configuration (zombies) are outside the guarantee; PrimeZombie marks
// those, and overlaps involving them are tallied separately rather than
// reported as violations.
type MutexChecker struct {
	// servedIn maps processes currently inside a served (post-start)
	// critical section to the step at which they entered.
	servedIn map[core.ProcID]int
	// zombieIn holds processes occupying the critical section since the
	// initial configuration.
	zombieIn map[core.ProcID]bool

	entries        int
	zombieEntries  int
	zombieOverlaps int
	violations     []Violation
}

var _ core.Observer = (*MutexChecker)(nil)

// NewMutexChecker returns an empty checker.
func NewMutexChecker() *MutexChecker {
	return &MutexChecker{
		servedIn: make(map[core.ProcID]int),
		zombieIn: make(map[core.ProcID]bool),
	}
}

// PrimeZombie registers that process p occupies the critical section in
// the initial configuration.
func (c *MutexChecker) PrimeZombie(p core.ProcID) { c.zombieIn[p] = true }

// OnEvent consumes one event.
func (c *MutexChecker) OnEvent(e core.Event) {
	switch e.Kind {
	case core.EvEnterCS:
		if e.Note != core.NoteRequested {
			// A non-requested entry: the arbitrary initial configuration
			// fabricated the conditions (corrupted Request = In, phase,
			// privileges). Footnote 1 places it outside the guarantee;
			// track its occupancy like an initial occupant.
			c.zombieEntries++
			c.zombieIn[e.Proc] = true
			return
		}
		c.entries++
		// Report concurrent occupants in process order: the violation
		// list must not depend on map iteration order.
		occupants := make([]core.ProcID, 0, len(c.servedIn))
		for other := range c.servedIn {
			if other != e.Proc {
				occupants = append(occupants, other)
			}
		}
		sort.Slice(occupants, func(i, j int) bool { return occupants[i] < occupants[j] })
		for _, other := range occupants {
			c.violations = append(c.violations, Violation{
				Property: "Correctness",
				Detail:   fmt.Sprintf("processes %d and %d are in the critical section concurrently", other, e.Proc),
				Step:     e.Step,
			})
		}
		if len(c.zombieIn) > 0 {
			c.zombieOverlaps++
		}
		c.servedIn[e.Proc] = e.Step
	case core.EvExitCS:
		delete(c.servedIn, e.Proc)
		delete(c.zombieIn, e.Proc)
	}
}

// Entries returns the number of served critical-section entries observed.
func (c *MutexChecker) Entries() int { return c.entries }

// ZombieEntries counts critical-section entries that served no external
// request (fabricated by the initial configuration).
func (c *MutexChecker) ZombieEntries() int { return c.zombieEntries }

// ZombieOverlaps counts served entries that overlapped an
// initial-configuration occupant — permitted by the specification
// (footnote 1) but interesting to report.
func (c *MutexChecker) ZombieOverlaps() int { return c.zombieOverlaps }

// Violations returns the violations observed so far.
func (c *MutexChecker) Violations() []Violation { return c.violations }
