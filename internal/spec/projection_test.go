package spec

import (
	"testing"

	"github.com/snapstab/snapstab/internal/core"
)

// regMachine is a minimal snapshot-able machine holding one register.
type regMachine struct {
	inst string
	val  byte
}

func (m *regMachine) Instance() string                            { return m.inst }
func (m *regMachine) Step(core.Env) bool                          { return false }
func (m *regMachine) Deliver(core.Env, core.ProcID, core.Message) {}
func (m *regMachine) AppendState(dst []byte) []byte               { return append(dst, m.val) }

func stacksWith(vals ...byte) []core.Stack {
	out := make([]core.Stack, len(vals))
	for i, v := range vals {
		out[i] = core.Stack{&regMachine{inst: "r", val: v}}
	}
	return out
}

func TestProjectErasesNothingButChannels(t *testing.T) {
	t.Parallel()
	stacks := stacksWith(1, 2, 3)
	a := Project(stacks)
	if len(a) != 3 {
		t.Fatalf("projection has %d entries, want 3", len(a))
	}
	stacks[1][0].(*regMachine).val = 9
	b := Project(stacks)
	if a.Equal(b) {
		t.Fatal("projection did not reflect a state change")
	}
	if a[0] != b[0] || a[2] != b[2] {
		t.Fatal("unrelated process projections changed")
	}
}

func TestProjectProcessMatchesProject(t *testing.T) {
	t.Parallel()
	stacks := stacksWith(7, 8)
	full := Project(stacks)
	for p := core.ProcID(0); p < 2; p++ {
		if got := ProjectProcess(stacks, p); got != full[p] {
			t.Fatalf("ProjectProcess(%d) = %q, want %q", p, got, full[p])
		}
	}
}

func TestAbstractConfigEqual(t *testing.T) {
	t.Parallel()
	a := AbstractConfig{"x", "y"}
	if !a.Equal(AbstractConfig{"x", "y"}) {
		t.Fatal("equal configs compare unequal")
	}
	if a.Equal(AbstractConfig{"x"}) || a.Equal(AbstractConfig{"x", "z"}) {
		t.Fatal("unequal configs compare equal")
	}
}

func TestProjectionRecorderAndFactor(t *testing.T) {
	t.Parallel()
	stacks := stacksWith(0, 0)
	rec := NewProjectionRecorder(stacks)

	step := func(p int, v byte) {
		stacks[p][0].(*regMachine).val = v
		rec.Sample()
	}
	step(0, 1)
	step(1, 1)
	step(0, 2)

	// The recorded sequence contains the factor [ (1,0), (1,1) ].
	bad := SequenceProjection{
		Project(stacksWith(1, 0)),
		Project(stacksWith(1, 1)),
	}
	if !rec.Sequence().ContainsFactor(bad) {
		t.Fatal("recorded sequence does not contain the expected factor")
	}

	// A factor that never occurred is not found.
	absent := SequenceProjection{
		Project(stacksWith(9, 9)),
	}
	if rec.Sequence().ContainsFactor(absent) {
		t.Fatal("found a factor that never occurred")
	}
}

func TestContainsFactorCollapsesStutter(t *testing.T) {
	t.Parallel()
	// Sampling the same configuration repeatedly (steps that change only
	// channels) must not hide a factor.
	seq := SequenceProjection{
		Project(stacksWith(0)),
		Project(stacksWith(0)),
		Project(stacksWith(1)),
		Project(stacksWith(1)),
		Project(stacksWith(2)),
	}
	bad := SequenceProjection{
		Project(stacksWith(0)),
		Project(stacksWith(1)),
		Project(stacksWith(2)),
	}
	if !seq.ContainsFactor(bad) {
		t.Fatal("stuttered sequence hid the factor")
	}
}

func TestContainsFactorEmptyBad(t *testing.T) {
	t.Parallel()
	seq := SequenceProjection{Project(stacksWith(0))}
	if !seq.ContainsFactor(nil) {
		t.Fatal("empty factor must trivially be contained")
	}
}

func TestSequenceProjectionString(t *testing.T) {
	t.Parallel()
	seq := SequenceProjection{Project(stacksWith(0, 1))}
	if seq.String() == "" {
		t.Fatal("empty rendering")
	}
}
