package spec

import (
	"strings"
	"testing"

	"github.com/snapstab/snapstab/internal/core"
)

func ack(q core.ProcID, b core.Payload) core.Payload {
	return core.Payload{Tag: "ack", Num: b.Num*10 + int64(q)}
}

func newPIFChecker(n int) *PIFChecker {
	return &PIFChecker{N: n, Initiator: 0, Instance: "pif", ExpectFck: ack}
}

// feed delivers a canned event sequence for a clean computation of token
// on a 3-process system, optionally mutated by the caller.
func cleanComputation(token core.Payload) []core.Event {
	return []core.Event{
		{Kind: core.EvStart, Proc: 0, Instance: "pif", Note: token.String()},
		{Kind: core.EvRecvBrd, Proc: 1, Peer: 0, Instance: "pif", Msg: core.Message{Instance: "pif", B: token}},
		{Kind: core.EvRecvBrd, Proc: 2, Peer: 0, Instance: "pif", Msg: core.Message{Instance: "pif", B: token}},
		{Kind: core.EvRecvFck, Proc: 0, Peer: 1, Instance: "pif", Msg: core.Message{Instance: "pif", F: ack(1, token)}},
		{Kind: core.EvRecvFck, Proc: 0, Peer: 2, Instance: "pif", Msg: core.Message{Instance: "pif", F: ack(2, token)}},
		{Kind: core.EvDecide, Proc: 0, Instance: "pif", Note: token.String()},
	}
}

func TestPIFCheckerCleanRun(t *testing.T) {
	t.Parallel()
	token := core.Payload{Tag: "m", Num: 4}
	c := newPIFChecker(3)
	c.Arm(token)
	for _, e := range cleanComputation(token) {
		c.OnEvent(e)
	}
	if !c.Started() || !c.Decided() {
		t.Fatalf("Started=%v Decided=%v, want true/true", c.Started(), c.Decided())
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("clean run produced violations: %v", v)
	}
}

func TestPIFCheckerMissingBroadcast(t *testing.T) {
	t.Parallel()
	token := core.Payload{Tag: "m", Num: 4}
	c := newPIFChecker(3)
	c.Arm(token)
	for _, e := range cleanComputation(token) {
		if e.Kind == core.EvRecvBrd && e.Proc == 2 {
			continue // process 2 never receives m
		}
		c.OnEvent(e)
	}
	v := c.Violations()
	if len(v) != 1 || v[0].Property != "Correctness" || !strings.Contains(v[0].Detail, "process 2") {
		t.Fatalf("violations = %v, want one Correctness violation for process 2", v)
	}
}

func TestPIFCheckerMissingAck(t *testing.T) {
	t.Parallel()
	token := core.Payload{Tag: "m", Num: 4}
	c := newPIFChecker(3)
	c.Arm(token)
	for _, e := range cleanComputation(token) {
		if e.Kind == core.EvRecvFck && e.Peer == 1 {
			continue
		}
		c.OnEvent(e)
	}
	v := c.Violations()
	if len(v) != 1 || v[0].Property != "Correctness" || !strings.Contains(v[0].Detail, "no acknowledgment from 1") {
		t.Fatalf("violations = %v, want one missing-ack violation", v)
	}
}

func TestPIFCheckerStaleFeedback(t *testing.T) {
	t.Parallel()
	token := core.Payload{Tag: "m", Num: 4}
	c := newPIFChecker(3)
	c.Arm(token)
	for _, e := range cleanComputation(token) {
		if e.Kind == core.EvRecvFck && e.Peer == 2 {
			e.Msg.F = core.Payload{Tag: "stale"}
		}
		c.OnEvent(e)
	}
	v := c.Violations()
	if len(v) != 1 || v[0].Property != "Decision" || !strings.Contains(v[0].Detail, "stale") {
		t.Fatalf("violations = %v, want one Decision violation", v)
	}
}

func TestPIFCheckerDuplicateAck(t *testing.T) {
	t.Parallel()
	token := core.Payload{Tag: "m", Num: 4}
	c := newPIFChecker(3)
	c.Arm(token)
	for _, e := range cleanComputation(token) {
		c.OnEvent(e)
		if e.Kind == core.EvRecvFck && e.Peer == 1 {
			c.OnEvent(e) // duplicated acknowledgment within one computation
		}
	}
	v := c.Violations()
	if len(v) != 1 || v[0].Property != "Decision" {
		t.Fatalf("violations = %v, want one Decision violation for duplicate ack", v)
	}
}

func TestPIFCheckerIgnoresPreStartEvents(t *testing.T) {
	t.Parallel()
	// Garbage-driven receive-fck events before the start action must not
	// count toward the computation (footnote 1: no guarantee on
	// non-requested computations; the spec constrains the started one).
	token := core.Payload{Tag: "m", Num: 4}
	c := newPIFChecker(3)
	c.Arm(token)
	c.OnEvent(core.Event{Kind: core.EvRecvFck, Proc: 0, Peer: 1, Instance: "pif",
		Msg: core.Message{Instance: "pif", F: core.Payload{Tag: "garbage"}}})
	for _, e := range cleanComputation(token) {
		c.OnEvent(e)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("pre-start garbage caused violations: %v", v)
	}
}

func TestPIFCheckerIgnoresOtherInstances(t *testing.T) {
	t.Parallel()
	token := core.Payload{Tag: "m", Num: 4}
	c := newPIFChecker(3)
	c.Arm(token)
	c.OnEvent(core.Event{Kind: core.EvDecide, Proc: 0, Instance: "other", Note: token.String()})
	if c.Decided() {
		t.Fatal("decision on a different instance was counted")
	}
}

func TestPIFCheckerUnarmedIsInert(t *testing.T) {
	t.Parallel()
	c := newPIFChecker(3)
	for _, e := range cleanComputation(core.Payload{Tag: "m"}) {
		c.OnEvent(e)
	}
	if c.Started() || c.Decided() || len(c.Violations()) != 0 {
		t.Fatal("unarmed checker reacted to events")
	}
}

func TestMutexCheckerCleanAlternation(t *testing.T) {
	t.Parallel()
	c := NewMutexChecker()
	for i := 0; i < 5; i++ {
		p := core.ProcID(i % 3)
		c.OnEvent(core.Event{Kind: core.EvEnterCS, Proc: p, Step: i * 2, Note: core.NoteRequested})
		c.OnEvent(core.Event{Kind: core.EvExitCS, Proc: p, Step: i*2 + 1})
	}
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("alternating CS produced violations: %v", v)
	}
	if c.Entries() != 5 {
		t.Fatalf("Entries() = %d, want 5", c.Entries())
	}
}

func TestMutexCheckerDetectsOverlap(t *testing.T) {
	t.Parallel()
	c := NewMutexChecker()
	c.OnEvent(core.Event{Kind: core.EvEnterCS, Proc: 1, Step: 1, Note: core.NoteRequested})
	c.OnEvent(core.Event{Kind: core.EvEnterCS, Proc: 2, Step: 2, Note: core.NoteRequested})
	v := c.Violations()
	if len(v) != 1 || v[0].Property != "Correctness" {
		t.Fatalf("violations = %v, want one overlap violation", v)
	}
	if !strings.Contains(v[0].Detail, "1") || !strings.Contains(v[0].Detail, "2") {
		t.Fatalf("violation detail %q does not name both processes", v[0].Detail)
	}
}

func TestMutexCheckerZombieOverlapNotViolation(t *testing.T) {
	t.Parallel()
	// Footnote 1: an initial-configuration occupant overlapping a served
	// entry is outside the guarantee.
	c := NewMutexChecker()
	c.PrimeZombie(2)
	c.OnEvent(core.Event{Kind: core.EvEnterCS, Proc: 1, Step: 1, Note: core.NoteRequested})
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("zombie overlap reported as violation: %v", v)
	}
	if c.ZombieOverlaps() != 1 {
		t.Fatalf("ZombieOverlaps() = %d, want 1", c.ZombieOverlaps())
	}
	// Once the zombie exits, later entries are clean.
	c.OnEvent(core.Event{Kind: core.EvExitCS, Proc: 2, Step: 2})
	c.OnEvent(core.Event{Kind: core.EvExitCS, Proc: 1, Step: 3})
	c.OnEvent(core.Event{Kind: core.EvEnterCS, Proc: 0, Step: 4, Note: core.NoteRequested})
	if c.ZombieOverlaps() != 1 {
		t.Fatalf("ZombieOverlaps() = %d after zombie exit, want 1", c.ZombieOverlaps())
	}
}

func TestMutexCheckerReentrySameProcess(t *testing.T) {
	t.Parallel()
	// The same process re-entering (new request served) while still
	// recorded inside would be an accounting bug, not a mutual exclusion
	// violation between two processes.
	c := NewMutexChecker()
	c.OnEvent(core.Event{Kind: core.EvEnterCS, Proc: 1, Step: 1, Note: core.NoteRequested})
	c.OnEvent(core.Event{Kind: core.EvEnterCS, Proc: 1, Step: 2, Note: core.NoteRequested})
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("self-overlap reported as violation: %v", v)
	}
}

func TestViolationString(t *testing.T) {
	t.Parallel()
	v := Violation{Property: "Correctness", Detail: "x", Step: 9}
	s := v.String()
	for _, want := range []string{"step 9", "Correctness", "x"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
}
