package spec

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
)

// FwdKey identifies one forwarded item: its endpoints and the sender's
// sequence number. The forwarding protocol's events carry the route
// packed into Msg.F.Num (core.PackRoute) and the sequence in Msg.B.Num.
type FwdKey struct {
	Src, Dst core.ProcID
	Seq      int64
}

// String renders the key compactly.
func (k FwdKey) String() string {
	return fmt.Sprintf("p%d->p%d#%d", k.Src, k.Dst, k.Seq)
}

// ForwardChecker verifies the snap-stabilizing message-forwarding
// specification (after Cournier–Dubois–Villain): every item the
// application hands to the protocol after an arbitrary initial
// configuration is delivered to its destination, exactly once, and
// nowhere else. Arm it with the item's key right after submitting the
// send; it then judges the event stream online:
//
//   - a second EvFwdDeliver of an armed key is a Duplication violation;
//   - an EvFwdDeliver of an armed key at a process other than its
//     destination is a Correctness violation;
//   - an EvFwdDiscard of an armed, not-yet-delivered key is a Loss
//     violation — the protocol sanitized the genuine item away. (Items
//     fabricated by the initial configuration may be discarded freely;
//     they are never armed.)
//
// The no-loss half ("eventually delivered") is a bounded-budget
// obligation discharged by the harness, like every liveness clause in
// this package: a run that exhausts its budget before Delivered(key)
// holds is the failure.
//
// The checker is not goroutine-safe; wrap it in a mutex-holding observer
// on the concurrent substrates (the façade does).
type ForwardChecker struct {
	armed      map[FwdKey]int // armed key -> deliveries observed
	violations []Violation
}

var _ core.Observer = (*ForwardChecker)(nil)

// NewForwardChecker returns an empty checker.
func NewForwardChecker() *ForwardChecker {
	return &ForwardChecker{armed: make(map[FwdKey]int)}
}

// Arm begins checking the item with key k. Keys must be unique across the
// run (the façade draws sequence numbers from one counter).
func (c *ForwardChecker) Arm(k FwdKey) {
	if _, dup := c.armed[k]; dup {
		panic("spec: forwarding key armed twice: " + k.String())
	}
	c.armed[k] = 0
}

// Delivered reports whether the armed item k has reached its destination.
func (c *ForwardChecker) Delivered(k FwdKey) bool { return c.armed[k] > 0 }

// key extracts the item key from a forwarding event.
func eventFwdKey(e core.Event) FwdKey {
	src, dst := core.UnpackRoute(e.Msg.F.Num)
	return FwdKey{Src: src, Dst: dst, Seq: e.Msg.B.Num}
}

// OnEvent consumes one event.
func (c *ForwardChecker) OnEvent(e core.Event) {
	switch e.Kind {
	case core.EvFwdDeliver:
		k := eventFwdKey(e)
		n, ok := c.armed[k]
		if !ok {
			return // an item we did not send: outside the guarantee
		}
		c.armed[k] = n + 1
		if e.Proc != k.Dst {
			c.violations = append(c.violations, Violation{
				Property: "Correctness",
				Detail:   fmt.Sprintf("item %v delivered at process %d, not its destination", k, e.Proc),
				Step:     e.Step,
			})
		}
		if n > 0 {
			c.violations = append(c.violations, Violation{
				Property: "Duplication",
				Detail:   fmt.Sprintf("item %v delivered %d times", k, n+1),
				Step:     e.Step,
			})
		}
	case core.EvFwdDiscard:
		k := eventFwdKey(e)
		if n, ok := c.armed[k]; ok && n == 0 {
			c.violations = append(c.violations, Violation{
				Property: "Loss",
				Detail:   fmt.Sprintf("undelivered item %v discarded at process %d", k, e.Proc),
				Step:     e.Step,
			})
		}
	}
}

// Violations returns the violations observed so far.
func (c *ForwardChecker) Violations() []Violation { return c.violations }
