package spec

import (
	"strings"

	"github.com/snapstab/snapstab/internal/core"
)

// AbstractConfig is a configuration restricted to the states of the
// processes — the channel contents removed (Definition 2). Each entry is
// the canonical encoding of one process's full machine stack.
type AbstractConfig []string

// Equal reports whether two abstract configurations are identical.
func (a AbstractConfig) Equal(b AbstractConfig) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Project computes the state-projection φ(γ) of the current configuration
// of the given stacks (Definition 3): the product of the local states of
// all processes, with every channel erased.
func Project(stacks []core.Stack) AbstractConfig {
	out := make(AbstractConfig, len(stacks))
	for i, s := range stacks {
		out[i] = string(s.AppendState(nil))
	}
	return out
}

// ProjectProcess computes the state-projection φ_p(γ) on a single process
// (Definition 3).
func ProjectProcess(stacks []core.Stack, p core.ProcID) string {
	return string(stacks[p].AppendState(nil))
}

// SequenceProjection is Φ(s) (Definition 4): the sequence of abstract
// configurations along an execution, as sampled by the caller after each
// step.
type SequenceProjection []AbstractConfig

// ProjectionRecorder samples the abstract configuration after every
// scheduler step, building a sequence-projection of the execution. Because
// sampling after each step is costly, it is meant for the small systems of
// the impossibility demonstration, not for benchmarks.
type ProjectionRecorder struct {
	stacks []core.Stack
	seq    SequenceProjection
}

// NewProjectionRecorder starts recording from the current configuration.
func NewProjectionRecorder(stacks []core.Stack) *ProjectionRecorder {
	r := &ProjectionRecorder{stacks: stacks}
	r.Sample()
	return r
}

// Sample appends the current abstract configuration to the sequence.
func (r *ProjectionRecorder) Sample() {
	r.seq = append(r.seq, Project(r.stacks))
}

// Sequence returns the recorded sequence-projection.
func (r *ProjectionRecorder) Sequence() SequenceProjection { return r.seq }

// ContainsFactor reports whether bad occurs as a contiguous factor of the
// recorded sequence — the executable form of Definition 5's condition (1):
// an execution e = e0·e1·e2 with Φ(e1) = BAD does not satisfy the
// specification. Consecutive duplicate configurations in the recording are
// collapsed first, since a stuttering sample of the same configuration is
// the same execution factor.
func (s SequenceProjection) ContainsFactor(bad SequenceProjection) bool {
	if len(bad) == 0 {
		return true
	}
	collapsed := s.collapse()
	badCollapsed := bad.collapse()
	for i := 0; i+len(badCollapsed) <= len(collapsed); i++ {
		match := true
		for j := range badCollapsed {
			if !collapsed[i+j].Equal(badCollapsed[j]) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func (s SequenceProjection) collapse() SequenceProjection {
	var out SequenceProjection
	for _, c := range s {
		if len(out) == 0 || !out[len(out)-1].Equal(c) {
			out = append(out, c)
		}
	}
	return out
}

// String renders the projection compactly (lengths only; the encodings are
// binary).
func (s SequenceProjection) String() string {
	var b strings.Builder
	for i, c := range s {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString("γ")
		for range c {
			b.WriteByte('.')
		}
	}
	return b.String()
}
