// Package idl implements Protocol IDL (Algorithm 2 of the paper): the
// snap-stabilizing IDs-Learning protocol, a direct client of Protocol PIF.
//
// A complete computation (from the start action to the decision) leaves
// the initiator knowing the identifier of every neighbour (ID-Tab) and the
// minimum identifier in the system (minID) — Specification 2. Algorithm 3
// uses it to locate the leader before every critical-section attempt.
package idl

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
)

// Message payload tags used on the wire.
const (
	// TagQuery is the broadcast payload ("IDL" in Algorithm 2).
	TagQuery = "IDL"
	// TagID tags feedback payloads carrying the responder's identifier.
	TagID = "ID"
)

// IDL is one process's instance of Protocol IDL. The child PIF machine
// must be placed immediately after it in the process's stack (Machines
// assembles both in order).
type IDL struct {
	inst string
	self core.ProcID
	n    int
	id   int64

	// Request drives computations (input/output variable).
	Request core.ReqState
	// MinID is the smallest identifier learned (output variable).
	MinID int64
	// IDTab[q] is the learned identifier of process q (output variable;
	// entry self unused).
	IDTab []int64

	// PIF is the child broadcast machine.
	PIF *pif.PIF
}

var (
	_ core.Machine     = (*IDL)(nil)
	_ core.Snapshotter = (*IDL)(nil)
	_ core.Corruptible = (*IDL)(nil)
)

// New returns an IDL machine for process self with identifier id, layered
// on a fresh PIF instance named inst+"/pif". PIF options (capacity bound)
// are forwarded.
func New(inst string, self core.ProcID, n int, id int64, pifOpts ...pif.Option) *IDL {
	if n < 2 {
		panic(fmt.Sprintf("idl: need n >= 2, got %d", n))
	}
	d := &IDL{
		inst:    inst,
		self:    self,
		n:       n,
		id:      id,
		Request: core.Done,
		IDTab:   make([]int64, n),
	}
	d.PIF = pif.New(inst+"/pif", self, n, pif.Callbacks{
		// A3 :: receive-brd<IDL> from q -> F-Mes[q] <- ID_p.
		OnBroadcast: func(_ core.Env, _ core.ProcID, _ core.Payload) core.Payload {
			return core.Payload{Tag: TagID, Num: d.id}
		},
		// A4 :: receive-fck<qID> from q -> learn it.
		OnFeedback: func(_ core.Env, from core.ProcID, f core.Payload) {
			d.IDTab[from] = f.Num
			if f.Num < d.MinID {
				d.MinID = f.Num
			}
		},
	}, pifOpts...)
	return d
}

// Machines returns the stack fragment for this protocol: the IDL machine
// followed by its PIF, in text order.
func (d *IDL) Machines() core.Stack { return core.Stack{d, d.PIF} }

// Instance returns the protocol instance ID.
func (d *IDL) Instance() string { return d.inst }

// ID returns the process's own (constant) identifier.
func (d *IDL) ID() int64 { return d.id }

// Invoke submits an external request. It reports false, without effect,
// while a computation is requested or in progress.
func (d *IDL) Invoke(env core.Env) bool {
	if d.Request != core.Done {
		return false
	}
	d.Request = core.Wait
	env.Emit(core.Event{Kind: core.EvRequest, Peer: -1, Instance: d.inst})
	return true
}

// Reset unconditionally re-requests a computation, abandoning any in
// progress; used by composed protocols (Algorithm 3's action A0).
func (d *IDL) Reset() { d.Request = core.Wait }

// Done reports whether no computation is requested or in progress.
func (d *IDL) Done() bool { return d.Request == core.Done }

// Step runs the internal actions A1 and A2 in text order.
func (d *IDL) Step(env core.Env) bool {
	fired := false

	// A1 :: Request = Wait -> start: reset minID and launch the PIF.
	if d.Request == core.Wait {
		d.Request = core.In
		d.MinID = d.id
		d.PIF.Reset(core.Payload{Tag: TagQuery})
		env.Emit(core.Event{Kind: core.EvStart, Peer: -1, Instance: d.inst})
		fired = true
	}

	// A2 :: Request = In and PIF.Request = Done -> terminate.
	if d.Request == core.In && d.PIF.Done() {
		d.Request = core.Done
		env.Emit(core.Event{Kind: core.EvDecide, Peer: -1, Instance: d.inst,
			Note: fmt.Sprintf("minID=%d", d.MinID)})
		fired = true
	}

	return fired
}

// Deliver handles messages addressed to the IDL instance itself. The
// protocol communicates exclusively through its child PIF, so only
// initial-configuration garbage arrives here; it is consumed with no
// effect.
func (d *IDL) Deliver(core.Env, core.ProcID, core.Message) {}

// AppendState appends a canonical encoding of the machine state (the
// child PIF encodes itself separately as part of the stack).
func (d *IDL) AppendState(dst []byte) []byte {
	dst = append(dst, 'I', byte(d.Request))
	for shift := 0; shift < 64; shift += 8 {
		dst = append(dst, byte(d.MinID>>shift))
	}
	for q := 0; q < d.n; q++ {
		if q == int(d.self) {
			continue
		}
		for shift := 0; shift < 64; shift += 8 {
			dst = append(dst, byte(d.IDTab[q]>>shift))
		}
	}
	return dst
}

// Corrupt overwrites every variable with random values (the child PIF
// corrupts itself separately as part of the stack). The identifier is a
// constant and survives.
func (d *IDL) Corrupt(r core.Rand) {
	d.Request = core.ReqState(r.Intn(core.NumReqStates))
	d.MinID = int64(r.Intn(1 << 16))
	for q := 0; q < d.n; q++ {
		if q == int(d.self) {
			continue
		}
		d.IDTab[q] = int64(r.Intn(1 << 16))
	}
}
