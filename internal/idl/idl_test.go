package idl

import (
	"testing"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
)

// build assembles an n-process IDL deployment with the given identifiers.
func build(t *testing.T, ids []int64, opts ...sim.Option) (*sim.Network, []*IDL) {
	t.Helper()
	n := len(ids)
	machines := make([]*IDL, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		machines[i] = New("idl", core.ProcID(i), n, ids[i])
		stacks[i] = machines[i].Machines()
	}
	return sim.New(stacks, opts...), machines
}

func minOf(ids []int64) int64 {
	m := ids[0]
	for _, v := range ids[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// checkOutputs asserts Specification 2's Correctness clause on d.
func checkOutputs(t *testing.T, d *IDL, self int, ids []int64, label string) {
	t.Helper()
	if got, want := d.MinID, minOf(ids); got != want {
		t.Fatalf("%s: MinID = %d, want %d", label, got, want)
	}
	for q := range ids {
		if q == self {
			continue
		}
		if got := d.IDTab[q]; got != ids[q] {
			t.Fatalf("%s: IDTab[%d] = %d, want %d", label, q, got, ids[q])
		}
	}
}

func TestCleanLearning(t *testing.T) {
	t.Parallel()
	ids := []int64{42, 7, 99, 15}
	net, machines := build(t, ids, sim.WithSeed(5))
	if !machines[0].Invoke(net.Env(0)) {
		t.Fatal("Invoke rejected")
	}
	if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, machines[0], 0, ids, "clean")
}

func TestLearningFromCorruptedConfigurations(t *testing.T) {
	t.Parallel()
	ids := []int64{50, 31, 77}
	trials := 200
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial + 1)
		net, machines := build(t, ids, sim.WithSeed(seed))
		r := rng.New(rng.Mix(seed, 31))
		config.Corrupt(net, r, config.PIFSpecs("idl/pif", machines[0].PIF.FlagTop()), config.Options{})
		requested := false
		err := net.RunUntil(func() bool {
			if !requested {
				requested = machines[1].Invoke(net.Env(1))
				return false
			}
			return machines[1].Done()
		}, 2_000_000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkOutputs(t, machines[1], 1, ids, "corrupted")
	}
}

func TestLearningUnderLoss(t *testing.T) {
	t.Parallel()
	ids := []int64{9, 3, 12, 4, 100}
	net, machines := build(t, ids, sim.WithSeed(77), sim.WithLossRate(0.3))
	requested := false
	err := net.RunUntil(func() bool {
		if !requested {
			requested = machines[4].Invoke(net.Env(4))
			return false
		}
		return machines[4].Done()
	}, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, machines[4], 4, ids, "lossy")
}

func TestAllProcessesLearnConcurrently(t *testing.T) {
	t.Parallel()
	ids := []int64{20, 10, 30}
	net, machines := build(t, ids, sim.WithSeed(13))
	for i := range machines {
		if !machines[i].Invoke(net.Env(core.ProcID(i))) {
			t.Fatalf("Invoke at %d rejected", i)
		}
	}
	err := net.RunUntil(func() bool {
		for _, m := range machines {
			if !m.Done() {
				return false
			}
		}
		return true
	}, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range machines {
		checkOutputs(t, m, i, ids, "concurrent")
	}
}

func TestRepeatedComputationsStayCorrect(t *testing.T) {
	t.Parallel()
	ids := []int64{5, 2}
	net, machines := build(t, ids, sim.WithSeed(3))
	for round := 0; round < 5; round++ {
		// Sabotage the outputs between rounds; a fresh computation must
		// rebuild them.
		machines[0].MinID = 999
		machines[0].IDTab[1] = 888
		requested := false
		err := net.RunUntil(func() bool {
			if !requested {
				requested = machines[0].Invoke(net.Env(0))
				return false
			}
			return machines[0].Done()
		}, 1_000_000)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkOutputs(t, machines[0], 0, ids, "repeated")
	}
}

func TestInvokeRejectedWhileBusy(t *testing.T) {
	t.Parallel()
	net, machines := build(t, []int64{1, 2})
	if !machines[0].Invoke(net.Env(0)) {
		t.Fatal("first Invoke rejected")
	}
	if machines[0].Invoke(net.Env(0)) {
		t.Fatal("second Invoke accepted while busy")
	}
}

func TestTerminationOfNonStartedComputations(t *testing.T) {
	t.Parallel()
	// Corrupted Request values (Wait/In with no external request) must
	// still lead every machine to Done (Specification 2, Termination).
	ids := []int64{8, 6, 4}
	for trial := 0; trial < 50; trial++ {
		net, machines := build(t, ids, sim.WithSeed(uint64(trial+100)))
		r := rng.New(uint64(trial + 1))
		config.Corrupt(net, r, config.PIFSpecs("idl/pif", machines[0].PIF.FlagTop()), config.Options{})
		err := net.RunUntil(func() bool {
			for _, m := range machines {
				if !m.Done() {
					return false
				}
			}
			return true
		}, 2_000_000)
		if err != nil {
			t.Fatalf("trial %d: non-started computations did not terminate: %v", trial, err)
		}
	}
}

func TestEventsEmitted(t *testing.T) {
	t.Parallel()
	rec := core.NewRecorder(1 << 16)
	net, machines := build(t, []int64{4, 1}, sim.WithSeed(9), sim.WithObserver(rec))
	machines[0].Invoke(net.Env(0))
	if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
		t.Fatal(err)
	}
	var start, decide bool
	for _, e := range rec.Events() {
		if e.Instance != "idl" || e.Proc != 0 {
			continue
		}
		switch e.Kind {
		case core.EvStart:
			start = true
		case core.EvDecide:
			decide = true
		}
	}
	if !start || !decide {
		t.Fatalf("start=%v decide=%v, want both", start, decide)
	}
}

func TestAppendStateReflectsOutputs(t *testing.T) {
	t.Parallel()
	a := New("idl", 0, 3, 5)
	b := New("idl", 0, 3, 5)
	if string(a.AppendState(nil)) != string(b.AppendState(nil)) {
		t.Fatal("identical machines encode differently")
	}
	b.MinID = 1
	if string(a.AppendState(nil)) == string(b.AppendState(nil)) {
		t.Fatal("MinID change not reflected in encoding")
	}
}

func TestCorruptPreservesConstants(t *testing.T) {
	t.Parallel()
	d := New("idl", 1, 3, 1234)
	d.Corrupt(rng.New(8))
	if d.ID() != 1234 {
		t.Fatalf("corruption changed the constant ID: %d", d.ID())
	}
}

func TestConstructorValidation(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("New with n=1 did not panic")
		}
	}()
	New("idl", 0, 1, 5)
}
