package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	t.Parallel()
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestKnownStream(t *testing.T) {
	t.Parallel()
	// Reference values for SplitMix64 seeded with 1234567, from the
	// published reference implementation.
	s := New(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("value %d: got %d, want %d", i, got, w)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	t.Parallel()
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	t.Parallel()
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			if v := s.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	t.Parallel()
	s := New(99)
	const n = 7
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[s.Intn(n)] = true
	}
	if len(seen) != n {
		t.Fatalf("Intn(%d) covered only %d values", n, len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	s := New(3)
	for i := 0; i < 1000; i++ {
		if v := s.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	t.Parallel()
	s := New(11)
	var sum float64
	const trials = 100000
	for i := 0; i < trials; i++ {
		sum += s.Float64()
	}
	mean := sum / trials
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of uniform draws = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	if err := quick.Check(func(seed uint64, n8 uint8) bool {
		n := int(n8%32) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermZero(t *testing.T) {
	t.Parallel()
	if p := New(1).Perm(0); len(p) != 0 {
		t.Fatalf("Perm(0) = %v, want empty", p)
	}
}

func TestSplitIndependence(t *testing.T) {
	t.Parallel()
	parent := New(5)
	child := parent.Split()
	// The child stream must not simply mirror the parent stream.
	diverged := false
	for i := 0; i < 50; i++ {
		if parent.Uint64() != child.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("split stream mirrors parent stream")
	}
}

func TestZeroValueUsable(t *testing.T) {
	t.Parallel()
	var s Source
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero-value source produced all-zero stream")
	}
}

func TestBoolBalance(t *testing.T) {
	t.Parallel()
	s := New(17)
	trues := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if s.Bool() {
			trues++
		}
	}
	if trues < trials*45/100 || trues > trials*55/100 {
		t.Fatalf("Bool() returned true %d/%d times, want ~50%%", trues, trials)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}

func TestMixDeterministicAndSensitive(t *testing.T) {
	t.Parallel()
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Fatal("Mix is not deterministic")
	}
	seen := make(map[uint64][3]uint64)
	for base := uint64(0); base < 3; base++ {
		for row := uint64(0); row < 20; row++ {
			for trial := uint64(0); trial < 50; trial++ {
				v := Mix(base, row, trial)
				if prev, dup := seen[v]; dup {
					t.Fatalf("Mix collision: (%d,%d,%d) and %v -> %d", base, row, trial, prev, v)
				}
				seen[v] = [3]uint64{base, row, trial}
			}
		}
	}
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix is order-insensitive; hierarchical seeds would collide")
	}
}
