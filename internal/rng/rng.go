// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The simulator's executions must be exactly reproducible from a seed so
// that every experiment, counter-example, and regression test can be
// replayed. The standard library's math/rand does not guarantee a stable
// stream across Go releases, so we implement SplitMix64 (Steele, Lea &
// Flood, OOPSLA 2014), a tiny generator with a fixed, well-known output
// stream and excellent statistical quality for simulation workloads.
package rng

// Source is a deterministic SplitMix64 generator. The zero value is a
// valid generator seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators created with
// the same seed produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill;
	// the modulo bias for the n values used here (all far below 2^63) is
	// negligible for simulation purposes, but we still reject the biased
	// tail to keep the stream exactly uniform.
	bound := uint64(n)
	limit := -bound % bound // == 2^64 mod bound
	for {
		v := s.Uint64()
		if v >= limit {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits, the standard conversion.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split returns a new generator whose stream is independent of the
// receiver's continued stream. Splitting lets each simulated component own
// a private generator while the whole run remains a function of one seed.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()}
}

// Mix hashes parts into one well-distributed seed by folding each part
// through the SplitMix64 finalizer. It is order-sensitive — Mix(a, b) and
// Mix(b, a) differ — so hierarchical seeds like (base, row, trial) stay
// collision-free in practice. The parallel experiment runner derives every
// trial's seed this way, making each trial a pure function of its
// coordinates regardless of worker scheduling.
func Mix(parts ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h += p + 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
