package experiment

import (
	"bytes"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/stat"
	"github.com/snapstab/snapstab/internal/wire"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Typed payload scaling: opaque bodies through corrupted clusters",
		Paper: "message-switched forwarding of opaque data (Cournier–Dubois–Villain) over Theorem 2",
		Run:   runE12,
	})
}

// runE12 measures what carrying real application data costs and proves
// it stays exact: a blob of each size (the benchmark triple 0B / 256B /
// 4KiB) is broadcast from a fully corrupted configuration whose garbage
// carries blobs of the same magnitude, and the decision must echo the
// body byte-identically at every feedback. Steps are payload-invariant
// (the handshake does not look at the body); wire bytes scale linearly.
func runE12(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()
	t := stat.Table{
		ID:      "E12",
		Title:   "PIF with opaque payload bodies, from corrupted configurations (echo application)",
		Columns: []string{"n", "payload", "trials", "timeouts", "garbled decisions", "steps/request (mean)", "msgs/request (mean)", "wire bytes/msg (mean)"},
	}
	ns := []int{3, 5}
	if cfg.Quick {
		ns = []int{3}
	}
	sizes := []int{0, 256, 4096}
	type trialResult struct {
		timeout   bool
		garbled   int
		steps     int
		msgs      int
		wireBytes int64
	}
	row := 0
	for _, n := range ns {
		for _, size := range sizes {
			n, size := n, size
			results := runTrials(cfg, row, cfg.Trials, func(trial int, seed uint64) trialResult {
				var res trialResult
				body := make([]byte, size)
				for i := range body {
					body[i] = byte(int(seed) + i*37)
				}
				token := core.Payload{Tag: "app", Num: int64(trial), Blob: body}

				// Echo application: feedback is the broadcast verbatim, so
				// a garbled decision is directly observable. The initiator
				// records each accepted feedback; the last acceptance per
				// peer is what its decision used.
				fck := make(map[core.ProcID]core.Payload, n)
				machines := make([]*pif.PIF, n)
				stacks := make([]core.Stack, n)
				for i := 0; i < n; i++ {
					cb := pif.Callbacks{
						OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
							return b
						},
					}
					if i == 0 {
						cb.OnFeedback = func(_ core.Env, from core.ProcID, f core.Payload) {
							fck[from] = f
						}
					}
					machines[i] = pif.New("pif", core.ProcID(i), n, cb,
						pif.WithFlagTop(4), pif.WithGarbageBlobs(size))
					stacks[i] = core.Stack{machines[i]}
				}
				// Account every sent message at its wire-encoded size; the
				// scratch buffer keeps the observer allocation-free.
				scratch := make([]byte, 0, 2*size+256)
				net := sim.New(stacks, sim.WithSeed(seed), sim.WithObserver(core.ObserverFunc(func(e core.Event) {
					if e.Kind != core.EvSend {
						return
					}
					res.msgs++
					if enc, err := wire.AppendEncode(scratch[:0], e.Msg); err == nil {
						res.wireBytes += int64(len(enc))
					}
				})))
				//lint:ignore determinism pinned pre-PR-10 derivation: the E12 corruption stream is byte-frozen with the published tables
				r := rng.New(seed ^ 0xB10B)
				config.Corrupt(net, r, config.PIFSpecs("pif", 4),
					config.Options{GarbageBlobLen: size})

				requested := false
				begin := net.StepCount()
				err := net.RunUntil(func() bool {
					if !requested {
						requested = machines[0].Invoke(net.Env(0), token)
						return false
					}
					return machines[0].Done() && machines[0].BMes.Equal(token)
				}, cfg.MaxSteps)
				if err != nil {
					res.timeout = true
					return res
				}
				res.steps = net.StepCount() - begin
				for q := 1; q < n; q++ {
					f, ok := fck[core.ProcID(q)]
					if !ok || f.Tag != token.Tag || f.Num != token.Num || !bytes.Equal(f.Blob, token.Blob) {
						res.garbled++
					}
				}
				return res
			})
			row++
			timeouts, garbled := 0, 0
			var steps, msgs, bytesPerMsg stat.Samples
			for _, res := range results {
				if res.timeout {
					timeouts++
					continue
				}
				garbled += res.garbled
				steps.AddInt(res.steps)
				msgs.AddInt(res.msgs)
				if res.msgs > 0 {
					bytesPerMsg.Add(float64(res.wireBytes) / float64(res.msgs))
				}
			}
			t.AddRow(stat.I(n), stat.SizeLabel(size), stat.I(cfg.Trials), stat.I(timeouts),
				stat.I(garbled), stat.F(steps.Summary().Mean), stat.F(msgs.Summary().Mean),
				stat.F(bytesPerMsg.Summary().Mean))
		}
	}
	t.AddNote("timeouts and garbled decisions must be 0: the decided feedback echoes the body byte-identically at every size; steps are payload-invariant, wire bytes scale with the body")
	return []stat.Table{t}
}
