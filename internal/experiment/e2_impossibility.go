package experiment

import (
	"github.com/snapstab/snapstab/internal/adversary"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/stat"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "Impossibility with unbounded channel capacity",
		Paper: "Theorem 1",
		Run:   runE2,
	})
}

func runE2(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()

	// Table 1: the proof executed — record, preload, replay.
	t1 := stat.Table{
		ID:      "E2",
		Title:   "Theorem 1 construction (record MesSeq -> preload gamma_0 -> replay) against PIF(c=1)",
		Columns: []string{"channel regime", "gamma_0 constructible", "victim decided", "peer participated", "phi_p(BAD) reproduced", "safety violated"},
	}
	rec, err := adversary.Record(1)
	if err != nil {
		t1.AddNote("record phase failed: %v", err)
		return []stat.Table{t1}
	}
	regimes := []struct {
		name      string
		capacity  int
		unbounded bool
	}{
		{"unbounded", 0, true},
		{"bounded, capacity 1 (known)", 1, false},
		{"bounded, capacity = |MesSeq|", len(rec.MesSeq), false},
	}
	t1Rows := runRows(cfg, len(regimes), func(i int) []string {
		r := regimes[i]
		out := adversary.Replay(rec, 1, r.capacity, r.unbounded)
		return []string{r.name, stat.B(out.PreloadAccepted), stat.B(out.Decided),
			stat.B(out.PeerParticipated), stat.B(out.ProjectionReproduced), stat.B(out.Violation())}
	})
	for _, row := range t1Rows {
		t1.AddRow(row...)
	}
	t1.AddNote("recorded MesSeq length: %d messages; the bounded capacity-1 channel refuses the preload, so gamma_0 does not exist — the paper's escape hatch", len(rec.MesSeq))

	// Table 2: the quantitative version — a protocol assuming capacity c
	// is defeated exactly when the attacker can place 2c+2 messages.
	t2 := stat.Table{
		ID:      "E2",
		Title:   "Attack threshold: PIF assuming capacity bound c vs. actual channel capacity g (minimal fooling preload = 2c+2 messages)",
		Columns: []string{"assumed c (flags 0..2c+2)", "g=1", "g=2", "g=4", "g=6", "g=8", "g=10", "unbounded"},
	}
	t2Rows := runRows(cfg, 3, func(i int) []string {
		c := i + 1
		top := uint8(2*c + 2)
		seq := adversary.MinimalFoolingSequence("pif", top, core.Payload{Tag: "forged"})
		row := []string{stat.I(c)}
		for _, g := range []int{1, 2, 4, 6, 8, 10} {
			out := adversary.AttackWithPreload(seq, c, g, false)
			row = append(row, cell(out))
		}
		out := adversary.AttackWithPreload(seq, c, 0, true)
		row = append(row, cell(out))
		return row
	})
	for _, row := range t2Rows {
		t2.AddRow(row...)
	}
	t2.AddNote("FOOLED iff the channel admits the 2c+2-message preload: protocols are safe exactly on channels respecting their known bound")
	return []stat.Table{t1, t2}
}

func cell(out adversary.Outcome) string {
	if out.Violation() {
		return "FOOLED"
	}
	if !out.PreloadAccepted {
		return "safe (no gamma_0)"
	}
	return "safe"
}
