// Package experiment is the benchmark harness: one registered experiment
// per claim/figure of the paper (see DESIGN.md §6 for the index). Each
// experiment regenerates its table(s) from scratch; cmd/snapbench prints
// them and EXPERIMENTS.md records a reference run.
//
//	E1  Figure 1          worst-case initial configuration of Protocol PIF
//	E2  Theorem 1         impossibility with unbounded/unknown capacity
//	E3  Theorem 2         PIF snap-stabilization under corruption and loss
//	E4  Property 1        channel flushing by a complete computation
//	E5  Theorem 3         IDs-Learning correctness
//	E6  Theorem 4         mutual exclusion safety and liveness
//	E7  (analysis §4.1)   message/round complexity of PIF
//	E8  (§2 discussion)   self- vs snap-stabilization service quality
//	E9  (design choice)   flag-domain ablation, exhaustive
//	E10 (§4 remark)       known-capacity extension c > 1
//	E11 (§5 conclusion)   crash-failure boundary (future work)
//	E12 (related work)    typed payload scaling: opaque bodies at 0B/256B/4KiB
package experiment

import (
	"fmt"
	"sort"

	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/stat"
)

// Config scales an experiment run.
type Config struct {
	// Trials is the number of randomized trials per table row (default
	// 200; Quick runs use fewer).
	Trials int
	// Seed seeds all randomness (default 1).
	Seed uint64
	// Quick shrinks problem sizes for smoke tests and benchmarks.
	Quick bool
	// MaxSteps bounds each simulated run (default 20M).
	MaxSteps int
	// Parallelism bounds the trial-runner worker pool: trials (and
	// independent rows) fan out across this many goroutines. 0 means
	// GOMAXPROCS; 1 runs sequentially. Tables are byte-identical at every
	// setting — each trial's randomness is a pure function of (Seed, row,
	// trial) and results merge in trial order (see runner.go).
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = 200
		if c.Quick {
			c.Trials = 25
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 20_000_000
	}
	return c
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the experiment identifier ("E3").
	ID string
	// Title describes the experiment.
	Title string
	// Paper names the artifact reproduced.
	Paper string
	// Run produces the tables.
	Run func(cfg Config) []stat.Table
}

// registry holds all experiments, keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiment: duplicate ID " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// E2 < E10 requires numeric comparison.
		return idNum(out[i].ID) < idNum(out[j].ID)
	})
	return out
}

func idNum(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// --- shared builders ---

// ackFor is the reference application feedback: derived from both the
// responder and the broadcast so stale or forged values are detectable.
func ackFor(q core.ProcID, b core.Payload) core.Payload {
	return core.Payload{Tag: "ack", Num: b.Num*1000 + int64(q)}
}

// pifDeployment is an n-process bare-PIF system with the reference
// application callbacks.
func pifDeployment(n int, flagTop int, opts ...sim.Option) (*sim.Network, []*pif.PIF) {
	machines := make([]*pif.PIF, n)
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		id := core.ProcID(i)
		machines[i] = pif.New("pif", id, n, pif.Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return ackFor(id, b)
			},
		}, pif.WithFlagTop(flagTop))
		stacks[i] = core.Stack{machines[i]}
	}
	return sim.New(stacks, opts...), machines
}
