package experiment

import (
	"github.com/snapstab/snapstab/internal/check"
	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/spec"
	"github.com/snapstab/snapstab/internal/stat"
)

func init() {
	register(Experiment{ID: "E9", Title: "Flag-domain ablation: exhaustive model checking", Paper: "design of Algorithm 1 (why flags {0..4})", Run: runE9})
	register(Experiment{ID: "E10", Title: "Known-capacity extension: flag domain 2c+2", Paper: "§4 remark (extension to capacity c)", Run: runE10})
}

func runE9(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()
	t := stat.Table{
		ID:      "E9",
		Title:   "Exhaustive model checking of the 2-process PIF per flag-domain size (capacity 1)",
		Columns: []string{"FlagTop", "abstract states explored", "safety", "termination traps", "counter-example"},
	}
	tops := []int{1, 2, 3, 4, 5}
	if cfg.Quick {
		tops = []int{2, 3, 4}
	}
	rows := runRows(cfg, len(tops), func(i int) []string {
		top := tops[i]
		res, err := check.Safety(check.Options{FlagTop: top, TraceViolation: top < 4})
		if err != nil {
			return []string{stat.I(top), "-", "error: " + err.Error(), "-", "-"}
		}
		term, err := check.Termination(check.Options{FlagTop: top})
		traps := "-"
		if err == nil {
			traps = stat.I(term.PTrapped + term.QTrapped)
		}
		verdict := "SAFE (exhaustive)"
		example := "-"
		if res.Violation != nil {
			verdict = "UNSAFE"
			example = res.Violation.Description
			if len(res.Violation.Trace) > 0 {
				example += "; " + stat.I(len(res.Violation.Trace)) + "-step counter-example"
			}
		}
		return []string{stat.I(top), stat.I(res.Explored), verdict, traps, example}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("the paper's domain {0..4} (FlagTop 4) is the smallest safe one; termination holds for every size (handshakes complete either way — too easily below the threshold)")
	return []stat.Table{t}
}

// capacityAdversary generalizes the Figure 1 construction to capacity c:
// c stale messages per direction plus a stale NeigState give 2c+1 spurious
// increments. It returns the spurious increments achieved and whether the
// victim was driven to a decision.
func capacityAdversary(c int, flagTop int) (spurious uint8, fooled bool) {
	machines := make([]*pif.PIF, 2)
	stacks := make([]core.Stack, 2)
	for i := 0; i < 2; i++ {
		id := core.ProcID(i)
		machines[i] = pif.New("pif", id, 2, pif.Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return ackFor(id, b)
			},
		}, pif.WithFlagTop(flagTop))
		stacks[i] = core.Stack{machines[i]}
	}
	net := sim.New(stacks, sim.WithCapacity(c))
	p, q := machines[0], machines[1]

	// q is mid-computation with a stale NeigState of c (its replies echo
	// c); the channel q->p holds echoes 0..c-1; the channel p->q holds
	// flag values c+1..2c, each of which refreshes q's NeigState upward.
	q.Request = core.In
	q.State[0] = 1
	q.Neig[0] = uint8(c)
	kQP := sim.LinkKey{From: 1, To: 0, Instance: "pif"}
	kPQ := sim.LinkKey{From: 0, To: 1, Instance: "pif"}
	var qp, pq []core.Message
	for i := 0; i < c; i++ {
		qp = append(qp, core.Message{Instance: "pif", Kind: pif.Kind, State: 1, Echo: uint8(i), F: core.Payload{Tag: "stale"}})
		pq = append(pq, core.Message{Instance: "pif", Kind: pif.Kind, State: uint8(c + 1 + i), Echo: 0})
	}
	mustPreload(net, kQP, qp...)
	mustPreload(net, kPQ, pq...)

	decided := false
	cb := p.Callbacks()
	cb.OnFeedback = func(core.Env, core.ProcID, core.Payload) { decided = true }
	p.SetCallbacks(cb)

	p.Invoke(net.Env(0), core.Payload{Tag: "fresh"})
	net.Activate(0)
	// Consume the c stale q->p messages: echoes 0..c-1.
	for i := 0; i < c; i++ {
		net.Deliver(kQP)
	}
	// q's stale NeigState: one reply echoing c.
	net.Activate(1)
	net.Deliver(kQP)
	// The c stale p->q messages: each bumps q's NeigState, and q's reply
	// echoes it.
	for i := 0; i < c; i++ {
		net.Deliver(kPQ)
		net.Deliver(kQP)
	}
	spurious = p.State[1]
	return spurious, decided
}

func runE10(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()

	// Table 1: the adversarial threshold at capacity c.
	t1 := stat.Table{
		ID:      "E10",
		Title:   "Capacity-c adversary: spurious increments available vs. flag-domain size",
		Columns: []string{"capacity c", "stale tokens (2c+1)", "spurious reached", "fooled @ FlagTop 2c+1", "fooled @ FlagTop 2c+2"},
	}
	caps := []int{1, 2, 3, 4}
	if cfg.Quick {
		caps = []int{1, 2}
	}
	t1Rows := runRows(cfg, len(caps), func(i int) []string {
		c := caps[i]
		spuriousLow, fooledLow := capacityAdversary(c, 2*c+1)
		spuriousOK, fooledOK := capacityAdversary(c, 2*c+2)
		return []string{stat.I(c), stat.I(2*c + 1), stat.I(int(maxU8(spuriousLow, spuriousOK))),
			stat.B(fooledLow), stat.B(fooledOK)}
	})
	for _, row := range t1Rows {
		t1.AddRow(row...)
	}
	t1.AddNote("with capacity c the adversary owns exactly 2c+1 stale echo tokens; FlagTop = 2c+2 is the smallest safe domain — the paper's c = 1 case generalizes linearly")

	// Table 2: randomized end-to-end validation at each capacity with the
	// correctly sized flag domain.
	t2 := stat.Table{
		ID:      "E10",
		Title:   "PIF(c) with FlagTop 2c+2 from corrupted configurations (n = 3, channels full of garbage)",
		Columns: []string{"capacity c", "FlagTop", "trials", "timeouts", "violations"},
	}
	trials := cfg.Trials / 2
	if trials < 10 {
		trials = 10
	}
	type trialResult struct {
		timeout    bool
		violations int
	}
	for row, c := range caps {
		c := c
		top := 2*c + 2
		results := runTrials(cfg, row, trials, func(trial int, seed uint64) trialResult {
			net, machines := pifDeployment(3, top, sim.WithSeed(seed), sim.WithCapacity(c))
			checker := &spec.PIFChecker{N: 3, Initiator: 0, Instance: "pif", ExpectFck: ackFor}
			net = sim.New(stacksOf(machines), sim.WithSeed(seed), sim.WithCapacity(c), sim.WithObserver(checker))
			//lint:ignore determinism pinned pre-PR-10 derivation: the E9/E10 corruption stream is byte-frozen with the published tables
			r := rng.New(seed ^ 0xFACE)
			config.Corrupt(net, r, config.PIFSpecs("pif", uint8(top)), config.Options{FillProbability: 0.9})
			token := core.Payload{Tag: "fresh", Num: int64(trial)}
			requested := false
			err := net.RunUntil(func() bool {
				if !requested {
					if machines[0].Invoke(net.Env(0), token) {
						requested = true
						checker.Arm(token)
					}
					return false
				}
				return checker.Decided()
			}, cfg.MaxSteps)
			if err != nil {
				return trialResult{timeout: true}
			}
			return trialResult{violations: len(checker.Violations())}
		})
		timeouts, violations := 0, 0
		for _, res := range results {
			if res.timeout {
				timeouts++
				continue
			}
			violations += res.violations
		}
		t2.AddRow(stat.I(c), stat.I(top), stat.I(trials), stat.I(timeouts), stat.I(violations))
	}
	t2.AddNote("timeouts and violations must be 0 at every capacity")
	return []stat.Table{t1, t2}
}
