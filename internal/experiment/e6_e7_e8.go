package experiment

import (
	"github.com/snapstab/snapstab/internal/baseline"
	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/mutex"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/spec"
	"github.com/snapstab/snapstab/internal/stat"
)

func init() {
	register(Experiment{ID: "E6", Title: "Mutual exclusion safety and liveness under corruption", Paper: "Theorem 4 / Specification 3", Run: runE6})
	register(Experiment{ID: "E7", Title: "Message and round complexity of PIF", Paper: "analysis of §4.1", Run: runE7})
	register(Experiment{ID: "E8", Title: "Self- vs snap-stabilization: pre-convergence service quality", Paper: "§2 discussion (self- vs snap-stabilization)", Run: runE8})
}

func meSpecs() []config.InstanceSpec {
	return []config.InstanceSpec{
		{Instance: "me/idl/pif", FlagTop: 4},
		{Instance: "me/pif", FlagTop: 4},
	}
}

func runE6(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()
	trials := cfg.Trials / 4
	if trials < 5 {
		trials = 5
	}
	t := stat.Table{
		ID:      "E6",
		Title:   "Mutual exclusion from corrupted configurations (all processes requesting)",
		Columns: []string{"n", "loss", "trials", "unserved", "ME violations", "zombie overlaps", "steps/request (mean)", "steps (p90)"},
	}
	ns := []int{2, 3, 5}
	if cfg.Quick {
		ns = []int{2, 3}
	}
	type trialResult struct {
		unserved           bool
		violations, zombie int
		steps              int
	}
	row := 0
	for _, n := range ns {
		for _, loss := range []float64{0, 0.1} {
			n, loss := n, loss
			results := runTrials(cfg, row, trials, func(_ int, seed uint64) trialResult {
				machines := make([]*mutex.ME, n)
				stacks := make([]core.Stack, n)
				for i := 0; i < n; i++ {
					machines[i] = mutex.New("me", core.ProcID(i), n, int64(i*7+5))
					stacks[i] = machines[i].Machines()
				}
				//lint:ignore determinism pinned pre-PR-10 derivation: the E6/E7/E8 corruption stream is byte-frozen with the published tables
				r := rng.New(seed * 31)
				net := sim.New(stacks, sim.WithSeed(seed), sim.WithLossRate(loss))
				config.CorruptMachines(net, r)
				checker := spec.NewMutexChecker()
				for i, m := range machines {
					if m.InCS {
						checker.PrimeZombie(core.ProcID(i))
					}
				}
				net = sim.New(stacks, sim.WithSeed(seed), sim.WithLossRate(loss), sim.WithObserver(checker))
				config.FillChannels(net, r, meSpecs(), config.Options{})

				requested := make([]bool, n)
				begin := net.StepCount()
				err := net.RunUntil(func() bool {
					all := true
					for i := 0; i < n; i++ {
						if !requested[i] {
							requested[i] = machines[i].Invoke(net.Env(core.ProcID(i)))
						}
						if !requested[i] || machines[i].Requested() {
							all = false
						}
					}
					return all
				}, cfg.MaxSteps)
				if err != nil {
					return trialResult{unserved: true}
				}
				return trialResult{
					violations: len(checker.Violations()),
					zombie:     checker.ZombieOverlaps(),
					steps:      (net.StepCount() - begin) / n,
				}
			})
			row++
			unserved, violations, zombies := 0, 0, 0
			var steps stat.Samples
			for _, res := range results {
				if res.unserved {
					unserved++
					continue
				}
				violations += res.violations
				zombies += res.zombie
				steps.AddInt(res.steps)
			}
			sum := steps.Summary()
			t.AddRow(stat.I(n), stat.F(loss), stat.I(trials), stat.I(unserved),
				stat.I(violations), stat.I(zombies), stat.F(sum.Mean), stat.F(sum.P90))
		}
	}
	t.AddNote("unserved and ME violations must be 0; zombie overlaps (footnote 1: initial occupants overlapping served entries) are permitted and reported")
	return []stat.Table{t}
}

func runE7(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()
	trials := cfg.Trials
	t := stat.Table{
		ID:      "E7",
		Title:   "PIF cost per computation (clean start; naive echo baseline = 2(n-1) messages)",
		Columns: []string{"n", "loss", "messages (mean)", "rounds (mean)", "naive msgs", "overhead factor"},
	}
	ns := []int{2, 4, 6, 8, 12}
	if cfg.Quick {
		ns = []int{2, 4, 6}
	}
	type trialResult struct {
		ok           bool
		msgs, rounds int
	}
	row := 0
	for _, n := range ns {
		for _, loss := range []float64{0, 0.2} {
			n, loss := n, loss
			results := runTrials(cfg, row, trials, func(trial int, seed uint64) trialResult {
				net, machines := pifDeployment(n, 4, sim.WithSeed(seed), sim.WithLossRate(loss))
				token := core.Payload{Tag: "m", Num: int64(trial)}
				machines[0].Invoke(net.Env(0), token)
				before := net.Stats()
				if err := net.RunRoundsUntil(machines[0].Done, 1_000_000); err != nil {
					return trialResult{}
				}
				after := net.Stats()
				return trialResult{ok: true, msgs: after.Sends - before.Sends, rounds: after.Rounds - before.Rounds}
			})
			row++
			var msgs, rounds stat.Samples
			for _, res := range results {
				if !res.ok {
					continue
				}
				msgs.AddInt(res.msgs)
				rounds.AddInt(res.rounds)
			}
			m := msgs.Summary()
			r := rounds.Summary()
			naive := 2 * (n - 1)
			t.AddRow(stat.I(n), stat.F(loss), stat.F(m.Mean), stat.F(r.Mean),
				stat.I(naive), stat.F(m.Mean/float64(naive)))
		}
	}
	t.AddNote("messages grow linearly in n (per-neighbour handshakes are independent); the constant factor is the price of the 4-increment handshake plus retransmission")
	return []stat.Table{t}
}

func runE8(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()
	t := stat.Table{
		ID:      "E8",
		Title:   "Requests violated before convergence, by protocol (2 processes, adversarial garbage of depth G)",
		Columns: []string{"G (garbage depth)", "naive PIF", "self-stab seq-PIF", "snap-stab PIF"},
	}
	gs := []int{1, 2, 4, 8}
	rows := runRows(cfg, len(gs), func(i int) []string {
		g := gs[i]
		return []string{stat.I(g), e8Naive(), e8Seq(g), e8Snap(g, cfg)}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("seq-PIF is fooled once per forged acknowledgment (then converges: self-stabilization); snap-PIF serves every request correctly (snap-stabilization); naive PIF is fooled by a single forged message and deadlocks under loss")
	return []stat.Table{t}
}

// e8Naive runs the naive protocol against one forged feedback message.
func e8Naive() string {
	machines := make([]*baseline.Naive, 2)
	stacks := make([]core.Stack, 2)
	for i := 0; i < 2; i++ {
		id := core.ProcID(i)
		machines[i] = baseline.NewNaive("npif", id, 2, callbackFor(id))
		stacks[i] = core.Stack{machines[i]}
	}
	net := sim.New(stacks)
	mustPreload(net, sim.LinkKey{From: 1, To: 0, Instance: "npif"},
		core.Message{Instance: "npif", Kind: baseline.KindNaiveFck, F: core.Payload{Tag: "forged"}})
	machines[0].Invoke(net.Env(0), core.Payload{Tag: "fresh", Num: 1})
	net.Activate(0)
	net.Deliver(sim.LinkKey{From: 1, To: 0, Instance: "npif"})
	net.Lose(sim.LinkKey{From: 0, To: 1, Instance: "npif"})
	net.Activate(0)
	if machines[0].Done() {
		return "fooled by 1 forged msg"
	}
	return "deadlocked"
}

// e8Seq counts fooled computations of the sequence-number protocol under
// the ascending-counter adversary.
func e8Seq(g int) string {
	machines := make([]*baseline.SeqPIF, 2)
	stacks := make([]core.Stack, 2)
	for i := 0; i < 2; i++ {
		id := core.ProcID(i)
		machines[i] = baseline.NewSeqPIF("seq", id, 2, callbackFor(id))
		stacks[i] = core.Stack{machines[i]}
	}
	net := sim.New(stacks, sim.WithUnbounded())
	mustPreload(net, sim.LinkKey{From: 1, To: 0, Instance: "seq"}, baseline.AscendingGarbageAcks("seq", 1, g)...)
	k10 := sim.LinkKey{From: 1, To: 0, Instance: "seq"}
	fooled := 0
	for round := 1; round <= g+2; round++ {
		var got core.Payload
		cb := callbackFor(0)
		cb.OnFeedback = func(_ core.Env, _ core.ProcID, f core.Payload) { got = f }
		machines[0].SetCallbacks(cb)
		machines[0].Invoke(net.Env(0), core.Payload{Tag: "m", Num: int64(round)})
		net.Activate(0)
		net.Deliver(k10)
		net.Activate(0)
		if !machines[0].Done() {
			// The forged ammunition is spent; finish genuinely.
			if err := net.RunUntil(machines[0].Done, 1_000_000); err != nil {
				return "stalled"
			}
		}
		if got.Tag == "forged" {
			fooled++
		}
	}
	return stat.I(fooled) + " of first " + stat.I(g+2) + " fooled"
}

// e8Snap runs the snap-stabilizing PIF over the worst admissible garbage
// (capacity-1 channels full) for the same number of requests.
func e8Snap(g int, cfg Config) string {
	requests := g + 2
	net, machines := pifDeployment(2, 4, sim.WithSeed(uint64(g)))
	r := rng.New(uint64(g) * 997)
	config.Corrupt(net, r, config.PIFSpecs("pif", 4), config.Options{FillProbability: 0.99})
	violated := 0
	for round := 0; round < requests; round++ {
		checker := &spec.PIFChecker{N: 2, Initiator: 0, Instance: "pif", ExpectFck: ackFor}
		net2 := sim.New(stacksOf(machines), sim.WithSeed(uint64(g*1000+round)), sim.WithObserver(checker))
		token := core.Payload{Tag: "m", Num: int64(round)}
		requested := false
		err := net2.RunUntil(func() bool {
			if !requested {
				if machines[0].Invoke(net2.Env(0), token) {
					requested = true
					checker.Arm(token)
				}
				return false
			}
			return checker.Decided()
		}, cfg.MaxSteps)
		if err != nil || len(checker.Violations()) > 0 {
			violated++
		}
	}
	return stat.I(violated) + " of first " + stat.I(requests) + " fooled"
}

func callbackFor(id core.ProcID) pif.Callbacks {
	return pif.Callbacks{
		OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
			return ackFor(id, b)
		},
	}
}
