package experiment

import (
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/stat"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Worst case of Protocol PIF in terms of configurations",
		Paper: "Figure 1",
		Run:   runE1,
	})
}

// figStep is one row of the Figure 1 trace.
type figStep struct {
	event string
	state uint8
}

// figure1Steps drives the Figure 1 adversarial configuration against a PIF
// with the given flag-domain top and returns the per-step trace plus the
// flag value reached from garbage alone and whether the initiator was
// driven to a (necessarily unsound) decision.
func figure1Steps(flagTop int) (trace []figStep, spurious uint8, fooled bool) {
	machines := make([]*pif.PIF, 2)
	stacks := make([]core.Stack, 2)
	for i := 0; i < 2; i++ {
		id := core.ProcID(i)
		machines[i] = pif.New("pif", id, 2, pif.Callbacks{
			OnBroadcast: func(_ core.Env, _ core.ProcID, b core.Payload) core.Payload {
				return ackFor(id, b)
			},
		}, pif.WithFlagTop(flagTop))
		stacks[i] = core.Stack{machines[i]}
	}
	net := sim.New(stacks)
	p, q := machines[0], machines[1]

	// The Figure 1 configuration: a stale message in each direction and a
	// stale NeigState at q, each good for one spurious increment.
	q.Request = core.In
	q.State[0] = 1
	q.Neig[0] = 1
	q.FMes[0] = core.Payload{Tag: "stale-feedback"}
	kQP := sim.LinkKey{From: 1, To: 0, Instance: "pif"}
	kPQ := sim.LinkKey{From: 0, To: 1, Instance: "pif"}
	mustPreload(net, kQP, core.Message{Instance: "pif", Kind: pif.Kind, State: 1, Echo: 0, F: core.Payload{Tag: "stale-feedback"}})
	mustPreload(net, kPQ, core.Message{Instance: "pif", Kind: pif.Kind, State: 2, Echo: 0})

	decided := false
	cb := p.Callbacks()
	cb.OnFeedback = func(core.Env, core.ProcID, core.Payload) { decided = true }
	p.SetCallbacks(cb)

	log := func(action string) {
		trace = append(trace, figStep{event: action, state: p.State[1]})
	}
	p.Invoke(net.Env(0), core.Payload{Tag: "fresh", Num: 9})
	net.Activate(0)
	log("p starts (A1, A2)")
	net.Deliver(kQP)
	log("stale q->p message, echo 0")
	spurious = p.State[1]
	net.Activate(1)
	net.Deliver(kQP)
	log("q echoes its stale NeigState (1)")
	spurious = maxU8(spurious, p.State[1])
	net.Deliver(kPQ)
	net.Deliver(kQP)
	log("stale p->q flag-2 message echoed")
	spurious = maxU8(spurious, p.State[1])
	if decided {
		return trace, spurious, true
	}
	// All garbage consumed: only a genuine round trip can continue.
	net.Activate(0)
	net.Deliver(kPQ)
	net.Deliver(kQP)
	log("genuine round trip (flag 3)")
	return trace, spurious, false
}

func maxU8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

func mustPreload(net *sim.Network, k sim.LinkKey, msgs ...core.Message) {
	if err := net.Link(k).Preload(msgs); err != nil {
		panic("experiment: " + err.Error())
	}
}

func runE1(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()

	// Table 1: the step-by-step Figure 1 trace on the paper's protocol.
	t1 := stat.Table{
		ID:      "E1",
		Title:   "Figure 1 trace: flag value of the initiator under the worst-case initial configuration (FlagTop = 4)",
		Columns: []string{"step", "event", "State_p[q]"},
	}
	trace, spurious, fooled := figure1Steps(4)
	for i, step := range trace {
		t1.AddRow(stat.I(i+1), step.event, stat.I(int(step.state)))
	}
	t1.AddNote("spurious increments from garbage alone: %d (= FlagTop-1); initiator fooled: %s", spurious, stat.B(fooled))

	// Table 2: the same adversary against ablated flag domains — the
	// threshold at which the garbage suffices for a full (unsound)
	// decision.
	t2 := stat.Table{
		ID:      "E1",
		Title:   "Figure 1 adversary vs. flag-domain size (capacity 1: 3 stale tokens available)",
		Columns: []string{"FlagTop", "increments needed", "spurious increments reached", "decision from garbage"},
	}
	tops := []int{1, 2, 3, 4, 5}
	rows := runRows(cfg, len(tops), func(i int) []string {
		top := tops[i]
		_, sp, fooledAt := figure1Steps(top)
		return []string{stat.I(top), stat.I(top), stat.I(int(sp)), stat.B(fooledAt)}
	})
	for _, row := range rows {
		t2.AddRow(row...)
	}
	t2.AddNote("the paper's domain {0..4} is the smallest whose decision threshold exceeds the 2c+1 = 3 stale tokens of a capacity-1 configuration")
	return []stat.Table{t1, t2}
}
