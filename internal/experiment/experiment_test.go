package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"github.com/snapstab/snapstab/internal/stat"
)

func TestRegistryComplete(t *testing.T) {
	t.Parallel()
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d experiments, want 12 (E1..E12)", len(all))
	}
	for i, e := range all {
		want := "E" + stat.I(i+1)
		if e.ID != want {
			t.Fatalf("experiment %d has ID %s, want %s (ordering broken)", i, e.ID, want)
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete: %+v", e.ID, e)
		}
	}
}

func TestByID(t *testing.T) {
	t.Parallel()
	if _, ok := ByID("E3"); !ok {
		t.Fatal("E3 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 found")
	}
}

// quickCfg runs every experiment at smoke-test scale.
func quickCfg() Config { return Config{Quick: true, Trials: 6, Seed: 7} }

// findCell returns true if any cell of any row equals want.
func hasCell(tables []stat.Table, want string) bool {
	for _, tab := range tables {
		for _, row := range tab.Rows {
			for _, cell := range row {
				if cell == want {
					return true
				}
			}
		}
	}
	return false
}

// column returns the index of the named column, or -1.
func column(tab stat.Table, name string) int {
	for i, c := range tab.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

func TestE1ReproducesFigure1(t *testing.T) {
	t.Parallel()
	tables := runE1(quickCfg())
	if len(tables) != 2 {
		t.Fatalf("E1 produced %d tables, want 2", len(tables))
	}
	// Table 2: fooled for FlagTop <= 3, safe for >= 4.
	fooledCol := column(tables[1], "decision from garbage")
	for _, row := range tables[1].Rows {
		top := row[0]
		fooled := row[fooledCol]
		wantFooled := top == "1" || top == "2" || top == "3"
		if (fooled == "yes") != wantFooled {
			t.Errorf("FlagTop %s: fooled=%s, want %v", top, fooled, wantFooled)
		}
	}
}

func TestE2Shape(t *testing.T) {
	t.Parallel()
	tables := runE2(quickCfg())
	// Table 1 row 1 (unbounded): violation yes; row 2 (capacity 1): no.
	t1 := tables[0]
	vCol := column(t1, "safety violated")
	if t1.Rows[0][vCol] != "yes" {
		t.Errorf("unbounded regime not violated: %v", t1.Rows[0])
	}
	if t1.Rows[1][vCol] != "no" {
		t.Errorf("known-capacity regime violated: %v", t1.Rows[1])
	}
	// Table 2: a FOOLED cell exists (large g) and a safe cell exists.
	if !hasCell(tables[1:], "FOOLED") {
		t.Error("capacity sweep found no FOOLED cell")
	}
}

func TestE3NoViolations(t *testing.T) {
	t.Parallel()
	tables := runE3(quickCfg())
	tab := tables[0]
	vCol, toCol := column(tab, "violations"), column(tab, "timeouts")
	for _, row := range tab.Rows {
		if row[vCol] != "0" || row[toCol] != "0" {
			t.Errorf("row %v has violations/timeouts", row)
		}
	}
}

func TestE4NoResidual(t *testing.T) {
	t.Parallel()
	tables := runE4(quickCfg())
	col := column(tables[0], "residual after completion")
	for _, row := range tables[0].Rows {
		if row[col] != "0" {
			t.Errorf("row %v has residual garbage", row)
		}
	}
}

func TestE5AllCorrect(t *testing.T) {
	t.Parallel()
	tables := runE5(quickCfg())
	tab := tables[0]
	for _, name := range []string{"timeouts", "wrong minID", "wrong ID-Tab entries"} {
		col := column(tab, name)
		for _, row := range tab.Rows {
			if row[col] != "0" {
				t.Errorf("%s nonzero in row %v", name, row)
			}
		}
	}
}

func TestE6NoViolations(t *testing.T) {
	t.Parallel()
	tables := runE6(quickCfg())
	tab := tables[0]
	for _, name := range []string{"unserved", "ME violations"} {
		col := column(tab, name)
		for _, row := range tab.Rows {
			if row[col] != "0" {
				t.Errorf("%s nonzero in row %v", name, row)
			}
		}
	}
}

func TestE7LinearInN(t *testing.T) {
	t.Parallel()
	tables := runE7(quickCfg())
	tab := tables[0]
	// Lossless rows: messages must grow with n but stay within a constant
	// factor of the naive baseline.
	mCol := column(tab, "messages (mean)")
	oCol := column(tab, "overhead factor")
	var prev float64
	for _, row := range tab.Rows {
		if row[1] != "0" {
			continue
		}
		var m, o float64
		sscan(t, row[mCol], &m)
		sscan(t, row[oCol], &o)
		if m < prev {
			t.Errorf("messages decreased with n: %v", tab.Rows)
		}
		prev = m
		if o < 1 || o > 40 {
			t.Errorf("overhead factor %v out of plausible range", o)
		}
	}
}

func sscan(t *testing.T, s string, out *float64) {
	t.Helper()
	if _, err := fmtSscan(s, out); err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
}

func TestE8Shape(t *testing.T) {
	t.Parallel()
	tables := runE8(quickCfg())
	tab := tables[0]
	seqCol := column(tab, "self-stab seq-PIF")
	snapCol := column(tab, "snap-stab PIF")
	for i, row := range tab.Rows {
		g := []int{1, 2, 4, 8}[i]
		wantSeq := stat.I(g) + " of first " + stat.I(g+2) + " fooled"
		if row[seqCol] != wantSeq {
			t.Errorf("G=%d: seq cell %q, want %q", g, row[seqCol], wantSeq)
		}
		wantSnap := "0 of first " + stat.I(g+2) + " fooled"
		if row[snapCol] != wantSnap {
			t.Errorf("G=%d: snap cell %q, want %q", g, row[snapCol], wantSnap)
		}
	}
}

func TestE9Thresholds(t *testing.T) {
	t.Parallel()
	tables := runE9(quickCfg())
	tab := tables[0]
	sCol := column(tab, "safety")
	for _, row := range tab.Rows {
		top := row[0]
		safe := strings.HasPrefix(row[sCol], "SAFE")
		wantSafe := top == "4" || top == "5"
		if safe != wantSafe {
			t.Errorf("FlagTop %s: safe=%v, want %v", top, safe, wantSafe)
		}
	}
}

func TestE10Thresholds(t *testing.T) {
	t.Parallel()
	tables := runE10(quickCfg())
	t1 := tables[0]
	lowCol := column(t1, "fooled @ FlagTop 2c+1")
	okCol := column(t1, "fooled @ FlagTop 2c+2")
	for _, row := range t1.Rows {
		if row[lowCol] != "yes" {
			t.Errorf("capacity %s: 2c+1 flags not fooled: %v", row[0], row)
		}
		if row[okCol] != "no" {
			t.Errorf("capacity %s: 2c+2 flags fooled: %v", row[0], row)
		}
	}
	t2 := tables[1]
	vCol := column(t2, "violations")
	toCol := column(t2, "timeouts")
	for _, row := range t2.Rows {
		if row[vCol] != "0" || row[toCol] != "0" {
			t.Errorf("capacity %s: violations/timeouts nonzero: %v", row[0], row)
		}
	}
}

// fmtSscan wraps fmt.Sscan to keep the test imports tidy.
func fmtSscan(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}

// TestParallelRunnerDeterminism pins the tentpole contract of the trial
// runner: one Config renders byte-identical tables at Parallelism 1, 4,
// and NumCPU. Combined with `go test -race`, this also exercises the
// worker pool for data races.
func TestParallelRunnerDeterminism(t *testing.T) {
	t.Parallel()
	// A mix of trial-heavy (E3, E7, E11) and row-parallel (E1) experiments
	// keeps the run fast while covering both fan-out shapes.
	ids := []string{"E1", "E3", "E7", "E11"}
	render := func(parallelism int) string {
		var sb strings.Builder
		cfg := Config{Quick: true, Trials: 8, Seed: 3, Parallelism: parallelism}
		for _, id := range ids {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			for _, tab := range e.Run(cfg) {
				tab.Render(&sb)
			}
		}
		return sb.String()
	}
	want := render(1)
	for _, parallelism := range []int{4, runtime.NumCPU()} {
		if got := render(parallelism); got != want {
			t.Errorf("tables differ between Parallelism 1 and %d:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				parallelism, want, got)
		}
	}
}

func TestTrialSeedPureFunction(t *testing.T) {
	t.Parallel()
	if TrialSeed(1, 2, 3) != TrialSeed(1, 2, 3) {
		t.Fatal("TrialSeed not deterministic")
	}
	// Adjacent coordinates must not collide: rows share no seeds.
	seen := make(map[uint64]bool)
	for row := 0; row < 30; row++ {
		for trial := 0; trial < 200; trial++ {
			s := TrialSeed(7, row, trial)
			if seen[s] {
				t.Fatalf("seed collision at row %d trial %d", row, trial)
			}
			seen[s] = true
		}
	}
}

func TestE11CrashBoundary(t *testing.T) {
	t.Parallel()
	tables := runE11(quickCfg())
	tab := tables[0]
	fabCol := column(tab, "fabricated completions")
	crCol := column(tab, "crashed handshakes done")
	decCol := column(tab, "decisions")
	for _, row := range tab.Rows {
		if row[fabCol] != "0" || row[crCol] != "0" {
			t.Errorf("crash row %v forged progress", row)
		}
		k := row[1]
		if k == "0" && row[decCol] == "0" {
			t.Errorf("crash-free row %v never decided", row)
		}
		if k != "0" && row[decCol] != "0" {
			t.Errorf("row %v decided despite crashes", row)
		}
	}
}
