package experiment

import (
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/stat"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Future-work boundary: crash (permanent) failures",
		Paper: "§5 conclusion (open question: crash failures)",
		Run:   runE11,
	})
}

// runE11 quantifies the model boundary the paper's conclusion leaves open:
// the protocols assume no permanent failures. With k crashed processes,
// requested PIF computations block (liveness lost — the initiator waits
// for the crashed handshakes forever) but never fabricate a completion
// (safety kept): the per-neighbour flags toward crashed peers never reach
// the top, and the live handshakes still complete.
func runE11(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()
	trials := cfg.Trials
	t := stat.Table{
		ID:      "E11",
		Title:   "PIF with k crashed participants (crash injected before the request)",
		Columns: []string{"n", "crashed k", "trials", "decisions", "fabricated completions", "live handshakes done", "crashed handshakes done"},
	}
	ns := []int{3, 5}
	if cfg.Quick {
		ns = []int{3}
	}
	type trialResult struct {
		decided               bool
		liveDone, crashedDone int
	}
	row := 0
	for _, n := range ns {
		for k := 0; k < n-1; k++ {
			n, k := n, k
			results := runTrials(cfg, row, trials, func(trial int, seed uint64) trialResult {
				net, machines := pifDeployment(n, 4, sim.WithSeed(seed))
				for c := 0; c < k; c++ {
					net.Crash(core.ProcID(n - 1 - c)) // crash the tail processes
				}
				token := core.Payload{Tag: "m", Num: int64(trial)}
				machines[0].Invoke(net.Env(0), token)
				// A bounded run: with k = 0 this is ample to decide; with
				// k > 0 the computation must still be in progress at the
				// end.
				_ = net.RunUntil(machines[0].Done, 200_000)
				var res trialResult
				res.decided = machines[0].Done()
				for q := 1; q < n; q++ {
					done := machines[0].State[q] == machines[0].FlagTop()
					if q >= n-k {
						if done {
							res.crashedDone++
						}
					} else if done {
						res.liveDone++
					}
				}
				return res
			})
			row++
			decisions, fabricated, liveDone, crashedDone := 0, 0, 0, 0
			for _, res := range results {
				if res.decided {
					decisions++
					if k > 0 {
						fabricated++
					}
				}
				liveDone += res.liveDone
				crashedDone += res.crashedDone
			}
			t.AddRow(stat.I(n), stat.I(k), stat.I(trials), stat.I(decisions),
				stat.I(fabricated), stat.I(liveDone), stat.I(crashedDone))
		}
	}
	t.AddNote("fabricated completions and crashed-handshake completions must be 0: a crash blocks liveness (decisions happen only at k=0) but cannot forge the handshake — safety survives outside the model's assumptions")
	return []stat.Table{t}
}
