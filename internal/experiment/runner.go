package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/snapstab/snapstab/internal/rng"
)

// This file is the shared parallel trial runner (DESIGN.md §5). Every
// experiment fans its independent units of work — randomized trials within
// a table row, or whole deterministic rows — across a bounded worker pool.
//
// Determinism is preserved by construction, not by ordering the workers:
//
//   - each trial draws all of its randomness from TrialSeed(Seed, row,
//     trial), a pure function of the trial's coordinates, so what a trial
//     computes is independent of which worker ran it and when;
//   - results land in a slice slot indexed by trial, and callers fold them
//     in index order (stat.Samples.Merge, plain accumulation), so the
//     merged tables are byte-identical at every Parallelism level.

// TrialSeed derives the seed of one randomized trial from the experiment's
// base seed and the trial's coordinates (table row, trial index). Trials
// must draw every bit of randomness from this seed — never from shared
// state — so that tables do not depend on worker scheduling.
func TrialSeed(base uint64, row, trial int) uint64 {
	return rng.Mix(base, uint64(row), uint64(trial))
}

// workers resolves Config.Parallelism to a concrete pool size. Negative
// values run sequentially, like 1 — a computed negative should degrade
// safely rather than silently fan out across every core.
func (c Config) workers() int {
	if c.Parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if c.Parallelism < 1 {
		return 1
	}
	return c.Parallelism
}

// fanOut computes out[i] = fn(i) for i in [0, n) on up to workers
// goroutines, handing out indices through a shared counter. Slots are
// written exactly once each, so no further synchronization is needed to
// read the result after the pool drains.
func fanOut[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// runTrials runs one table row's randomized trials across the worker pool
// and returns the per-trial results in trial order. row must be unique per
// table row within the experiment so rows draw disjoint seed streams.
func runTrials[T any](cfg Config, row, trials int, trial func(t int, seed uint64) T) []T {
	return fanOut(cfg.workers(), trials, func(i int) T {
		return trial(i, TrialSeed(cfg.Seed, row, i))
	})
}

// runRows computes n independent table rows across the worker pool,
// returning them in row order. For deterministic (trial-free) experiments
// this parallelizes the rows themselves.
func runRows[T any](cfg Config, n int, row func(i int) T) []T {
	return fanOut(cfg.workers(), n, row)
}
