package experiment

import (
	"fmt"

	"github.com/snapstab/snapstab/internal/config"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/idl"
	"github.com/snapstab/snapstab/internal/pif"
	"github.com/snapstab/snapstab/internal/rng"
	"github.com/snapstab/snapstab/internal/sim"
	"github.com/snapstab/snapstab/internal/spec"
	"github.com/snapstab/snapstab/internal/stat"
)

func init() {
	register(Experiment{ID: "E3", Title: "PIF snap-stabilization under corruption and loss", Paper: "Theorem 2 / Specification 1", Run: runE3})
	register(Experiment{ID: "E4", Title: "Channel flushing by a complete PIF computation", Paper: "Property 1", Run: runE4})
	register(Experiment{ID: "E5", Title: "IDs-Learning correctness under corruption and loss", Paper: "Theorem 3 / Specification 2", Run: runE5})
}

// pifTrial runs one corrupted-start PIF computation and reports whether it
// started, decided, how many steps the decision took, and any
// specification violations.
func pifTrial(n int, loss float64, seed uint64, maxSteps int) (steps int, violations int, err error) {
	net, machines := pifDeployment(n, 4, sim.WithSeed(seed), sim.WithLossRate(loss))
	//lint:ignore determinism pinned pre-PR-10 derivation: the E3/E4/E5 tables are byte-frozen; rerouting through rng.Mix would re-seed every row
	r := rng.New(seed ^ 0xC0FFEE)
	config.Corrupt(net, r, config.PIFSpecs("pif", 4), config.Options{})

	checker := &spec.PIFChecker{N: n, Initiator: 0, Instance: "pif", ExpectFck: ackFor}
	// Rebuild with the observer attached (cheap; machines are shared).
	net = sim.New(stacksOf(machines), sim.WithSeed(seed), sim.WithLossRate(loss), sim.WithObserver(checker))
	config.FillChannels(net, r, config.PIFSpecs("pif", 4), config.Options{})

	//lint:ignore determinism token value (not a stream seed) derived from the trial seed; the E3/E4/E5 tables are byte-frozen
	token := core.Payload{Tag: "fresh", Num: int64(seed % 1000)}
	requested := false
	start := 0
	runErr := net.RunUntil(func() bool {
		if !requested {
			if machines[0].Invoke(net.Env(0), token) {
				requested = true
				checker.Arm(token)
				start = net.StepCount()
			}
			return false
		}
		return checker.Decided()
	}, maxSteps)
	if runErr != nil {
		return 0, 0, fmt.Errorf("trial seed %d: %w", seed, runErr)
	}
	return net.StepCount() - start, len(checker.Violations()), nil
}

func stacksOf(machines []*pif.PIF) []core.Stack {
	stacks := make([]core.Stack, len(machines))
	for i, m := range machines {
		stacks[i] = core.Stack{m}
	}
	return stacks
}

func runE3(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()
	t := stat.Table{
		ID:      "E3",
		Title:   "PIF from corrupted configurations: Specification 1 verdicts",
		Columns: []string{"n", "loss", "trials", "timeouts", "violations", "steps to decide (mean)", "steps (p90)"},
	}
	ns := []int{2, 3, 5, 8}
	if cfg.Quick {
		ns = []int{2, 3}
	}
	type trialResult struct {
		steps      int
		violations int
		timeout    bool
	}
	row := 0
	for _, n := range ns {
		for _, loss := range []float64{0, 0.1, 0.3} {
			n, loss := n, loss
			results := runTrials(cfg, row, cfg.Trials, func(_ int, seed uint64) trialResult {
				s, v, err := pifTrial(n, loss, seed, cfg.MaxSteps)
				if err != nil {
					return trialResult{timeout: true}
				}
				return trialResult{steps: s, violations: v}
			})
			row++
			var steps stat.Samples
			timeouts, violations := 0, 0
			for _, res := range results {
				if res.timeout {
					timeouts++
					continue
				}
				steps.AddInt(res.steps)
				violations += res.violations
			}
			sum := steps.Summary()
			t.AddRow(stat.I(n), stat.F(loss), stat.I(cfg.Trials), stat.I(timeouts),
				stat.I(violations), stat.F(sum.Mean), stat.F(sum.P90))
		}
	}
	t.AddNote("violations and timeouts must be 0: every requested broadcast starts, terminates, reaches all, and decides on genuine feedback")
	return []stat.Table{t}
}

func runE4(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()
	t := stat.Table{
		ID:      "E4",
		Title:   "Property 1: tagged garbage incident to the initiator after its first complete computation",
		Columns: []string{"n", "trials", "garbage messages planted", "residual after completion"},
	}
	ns := []int{2, 3, 5}
	if cfg.Quick {
		ns = []int{2, 3}
	}
	type trialResult struct {
		planted  int
		residual int
	}
	for row, n := range ns {
		n := n
		results := runTrials(cfg, row, cfg.Trials, func(trial int, seed uint64) trialResult {
			var res trialResult
			net, machines := pifDeployment(n, 4, sim.WithSeed(seed))
			//lint:ignore determinism pinned pre-PR-10 derivation: the E5 corruption stream is byte-frozen with the published tables
			r := rng.New(seed ^ 0xBEEF)
			config.CorruptMachines(net, r)
			// Plant identifiable garbage in every channel incident to the
			// initiator.
			// Messages are no longer comparable (opaque payload bodies);
			// key the planted set by canonical encoding instead.
			tagged := make(map[string]bool)
			msgKey := func(m core.Message) string { return string(core.AppendMessage(nil, m)) }
			for q := 1; q < n; q++ {
				for _, k := range []sim.LinkKey{
					{From: 0, To: core.ProcID(q), Instance: "pif"},
					{From: core.ProcID(q), To: 0, Instance: "pif"},
				} {
					g := pif.GarbageMessage(r, "pif", 4)
					g.B = core.Payload{Tag: "planted", Num: int64(trial*100 + q)}
					mustPreload(net, k, g)
					tagged[msgKey(g)] = true
					res.planted++
				}
			}
			token := core.Payload{Tag: "fresh", Num: int64(trial)}
			requested := false
			err := net.RunUntil(func() bool {
				if !requested {
					requested = machines[0].Invoke(net.Env(0), token)
					return false
				}
				return machines[0].Done() && machines[0].BMes.Equal(token)
			}, cfg.MaxSteps)
			if err != nil {
				res.residual++ // count a timeout as a failure
				return res
			}
			for q := 1; q < n; q++ {
				for _, k := range []sim.LinkKey{
					{From: 0, To: core.ProcID(q), Instance: "pif"},
					{From: core.ProcID(q), To: 0, Instance: "pif"},
				} {
					for _, m := range net.Link(k).Contents() {
						if tagged[msgKey(m)] {
							res.residual++
						}
					}
				}
			}
			return res
		})
		planted, residual := 0, 0
		for _, res := range results {
			planted += res.planted
			residual += res.residual
		}
		t.AddRow(stat.I(n), stat.I(cfg.Trials), stat.I(planted), stat.I(residual))
	}
	t.AddNote("residual must be 0: a complete computation flushes every initial message from the initiator's channels")
	return []stat.Table{t}
}

func runE5(cfg Config) []stat.Table {
	cfg = cfg.withDefaults()
	t := stat.Table{
		ID:      "E5",
		Title:   "IDs-Learning from corrupted configurations: Specification 2 verdicts",
		Columns: []string{"n", "loss", "trials", "timeouts", "wrong minID", "wrong ID-Tab entries"},
	}
	ns := []int{2, 4, 8}
	if cfg.Quick {
		ns = []int{2, 4}
	}
	type trialResult struct {
		timeout            bool
		wrongMin, wrongTab int
	}
	row := 0
	for _, n := range ns {
		for _, loss := range []float64{0, 0.2} {
			n, loss := n, loss
			results := runTrials(cfg, row, cfg.Trials, func(_ int, seed uint64) trialResult {
				r := rng.New(seed)
				ids := make([]int64, n)
				perm := r.Perm(n)
				for i := range ids {
					ids[i] = int64(perm[i]*17 + 3)
				}
				machines := make([]*idl.IDL, n)
				stacks := make([]core.Stack, n)
				for i := 0; i < n; i++ {
					machines[i] = idl.New("idl", core.ProcID(i), n, ids[i])
					stacks[i] = machines[i].Machines()
				}
				net := sim.New(stacks, sim.WithSeed(seed), sim.WithLossRate(loss))
				config.Corrupt(net, r, config.PIFSpecs("idl/pif", 4), config.Options{})
				requested := false
				err := net.RunUntil(func() bool {
					if !requested {
						requested = machines[0].Invoke(net.Env(0))
						return false
					}
					return machines[0].Done()
				}, cfg.MaxSteps)
				if err != nil {
					return trialResult{timeout: true}
				}
				var res trialResult
				minID := ids[0]
				for _, id := range ids {
					if id < minID {
						minID = id
					}
				}
				if machines[0].MinID != minID {
					res.wrongMin++
				}
				for q := 1; q < n; q++ {
					if machines[0].IDTab[q] != ids[q] {
						res.wrongTab++
					}
				}
				return res
			})
			row++
			timeouts, wrongMin, wrongTab := 0, 0, 0
			for _, res := range results {
				if res.timeout {
					timeouts++
				}
				wrongMin += res.wrongMin
				wrongTab += res.wrongTab
			}
			t.AddRow(stat.I(n), stat.F(loss), stat.I(cfg.Trials), stat.I(timeouts), stat.I(wrongMin), stat.I(wrongTab))
		}
	}
	t.AddNote("all error columns must be 0: at the decision the initiator knows every identifier and the minimum")
	return []stat.Table{t}
}
