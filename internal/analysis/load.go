package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked unit ready for analysis. Test-augmented
// variants ("pkg [pkg.test]" and external "pkg_test [pkg.test]") appear
// as their own Package with IsTestVariant set; the driver keeps only
// their _test.go findings.
type Package struct {
	Path          string // canonical import path, variant suffix stripped
	VariantPath   string // the go list ImportPath, verbatim
	Dir           string
	IsTestVariant bool

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	ForTest    string
	Standard   bool
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Load enumerates patterns with the go command and type-checks every
// matched non-standard package (plus test variants) from source.
// Dependencies are imported from compiler export data, which
// `go list -export` guarantees is up to date, so loading needs no module
// downloads and no second type-check of the dependency graph.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-test", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.Bytes())
	}

	byPath := make(map[string]*listPkg)
	var order []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		lp := p
		byPath[lp.ImportPath] = &lp
		order = append(order, &lp)
	}

	fset := token.NewFileSet()
	exports := func(path string) (io.ReadCloser, error) {
		p := byPath[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	}
	gc := importer.ForCompiler(fset, "gc", exports)

	var pkgs []*Package
	for _, lp := range order {
		if lp.Standard || strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 && len(lp.CgoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, gc, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package from source.
func check(fset *token.FileSet, gc types.Importer, lp *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range append(append([]string{}, lp.GoFiles...), lp.CgoFiles...) {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	canonical := lp.ImportPath
	if i := strings.Index(canonical, " ["); i >= 0 {
		canonical = canonical[:i]
	}
	conf := types.Config{
		Importer: resolver{gc: gc, importMap: lp.ImportMap},
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(canonical, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:          canonical,
		VariantPath:   lp.ImportPath,
		Dir:           lp.Dir,
		IsTestVariant: canonical != lp.ImportPath || strings.HasSuffix(canonical, "_test"),
		Fset:          fset,
		Files:         files,
		Types:         tpkg,
		Info:          info,
	}, nil
}

// resolver maps source-level import paths through go list's ImportMap
// (vendoring and test variants) and feeds them to the shared export-data
// importer.
type resolver struct {
	gc        types.Importer
	importMap map[string]string
}

func (r resolver) Import(path string) (*types.Package, error) {
	if mapped, ok := r.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return r.gc.Import(path)
}
