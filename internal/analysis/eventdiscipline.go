package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Loss-side naming discipline, from core/event.go: EvSendLost is a
// SENDER-side loss (Proc = sender, Peer = intended destination);
// EvLose is a RECEIVER-side loss (Proc = receiver, Peer = original
// sender). An emission site whose Peer expression names the wrong
// endpoint — or omits Peer — mis-attributes the loss, and every
// spec-checker statistic built on the event stream inherits the error.
var (
	sendLostPeerNames = map[string]bool{"to": true, "dst": true, "dest": true, "target": true, "peer": true}
	losePeerNames     = map[string]bool{"from": true, "sender": true, "src": true, "source": true}
)

// EventDiscipline checks every core.Event composite literal that emits a
// loss event against the documented loss-side semantics, and forbids
// folding injected-fault counters (core.FaultStats) into the native
// transport counters they must stay distinguishable from (DESIGN.md §9).
var EventDiscipline = &Analyzer{
	Name: "eventdiscipline",
	Doc:  "enforce send-side vs receive-side loss attribution and keep FaultStats out of native transport counters",
	Run:  runEventDiscipline,
}

func runEventDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkLossLiteral(pass, n)
			case *ast.BinaryExpr:
				checkFaultFold(pass, n)
			case *ast.AssignStmt:
				checkFaultFoldAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// isCoreType reports whether t (after pointer stripping) is the named
// type internal/core.<name> — matched by package-path suffix so fixture
// stubs of core participate.
func isCoreType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && pathMatches(n.Obj().Pkg().Path(), []string{"internal/core"})
}

func checkLossLiteral(pass *Pass, lit *ast.CompositeLit) {
	if !isCoreType(pass.Info.TypeOf(lit), "Event") {
		return
	}
	var kindName string
	var kindPos token.Pos
	var peerExpr ast.Expr
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Kind":
			if c, ok := pass.Info.ObjectOf(ident(kv.Value)).(*types.Const); ok {
				kindName, kindPos = c.Name(), kv.Value.Pos()
			}
		case "Peer":
			peerExpr = kv.Value
		}
	}
	if kindName != "EvSendLost" && kindName != "EvLose" {
		return
	}
	if peerExpr == nil {
		pass.Reportf(lit.Pos(), "%s emitted without Peer: every loss must be attributed to the other endpoint (core/event.go)", kindName)
		return
	}
	peer := strings.ToLower(baseName(peerExpr))
	switch kindName {
	case "EvSendLost":
		if losePeerNames[peer] && !sendLostPeerNames[peer] {
			pass.Reportf(kindPos, "EvSendLost is a SENDER-side loss but Peer is %q: a message lost after transit is the receiver's EvLose (core/event.go)", baseName(peerExpr))
		}
	case "EvLose":
		if sendLostPeerNames[peer] && !losePeerNames[peer] {
			pass.Reportf(kindPos, "EvLose is a RECEIVER-side loss but Peer is %q: a message dropped before leaving the sender is EvSendLost (core/event.go)", baseName(peerExpr))
		}
	}
}

func ident(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// faultStatsField reports whether e selects a counter field off a
// core.FaultStats value.
func faultStatsField(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isCoreType(pass.Info.TypeOf(sel.X), "FaultStats")
}

// otherStructField reports whether e selects a field off a named struct
// other than FaultStats — the shape of a native counter.
func otherStructField(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil || isCoreType(t, "FaultStats") {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	_, isStruct := n.Underlying().(*types.Struct)
	return isStruct
}

// checkFaultFold flags arithmetic that adds a FaultStats counter to a
// native counter: injected adversity must stay distinguishable from
// genuine transport behavior.
func checkFaultFold(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.ADD && be.Op != token.SUB {
		return
	}
	x, y := be.X, be.Y
	if (faultStatsField(pass, x) && otherStructField(pass, y)) ||
		(faultStatsField(pass, y) && otherStructField(pass, x)) {
		pass.Reportf(be.Pos(), "FaultStats counter folded into a native transport counter: injected faults must be surfaced beside native counters, never summed into them (DESIGN.md §9)")
	}
}

func checkFaultFoldAssign(pass *Pass, as *ast.AssignStmt) {
	if as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN {
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) || !otherStructField(pass, lhs) {
			continue
		}
		sensitive := false
		ast.Inspect(as.Rhs[i], func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && faultStatsField(pass, e) {
				sensitive = true
			}
			return !sensitive
		})
		if sensitive {
			pass.Reportf(as.Pos(), "FaultStats counter folded into a native transport counter: injected faults must be surfaced beside native counters, never summed into them (DESIGN.md §9)")
		}
	}
}
