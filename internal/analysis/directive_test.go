package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// reportFuncs is a test analyzer that flags every function declaration,
// giving the directive machinery something on every line we choose.
var reportFuncs = &Analyzer{
	Name: "reportfuncs",
	Doc:  "test analyzer: report every function declaration",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					p.Reportf(fd.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func testPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	tpkg, err := (&types.Config{}).Check("fix", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "fix", VariantPath: "fix", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

func messages(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Analyzer + ": " + d.Message
	}
	return out
}

func TestIgnoreDirectivePrecedingLine(t *testing.T) {
	pkg := testPkg(t, `package fix

//lint:ignore reportfuncs pinned for the test
func a() {}

func b() {}
`)
	diags := Run([]*Package{pkg}, []*Analyzer{reportFuncs})
	if len(diags) != 1 || diags[0].Message != "func b" {
		t.Fatalf("want only [func b], got %v", messages(diags))
	}
}

func TestIgnoreDirectiveSameLine(t *testing.T) {
	pkg := testPkg(t, `package fix

func a() {} //lint:ignore reportfuncs pinned for the test
`)
	diags := Run([]*Package{pkg}, []*Analyzer{reportFuncs})
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", messages(diags))
	}
}

func TestBareDirectiveReported(t *testing.T) {
	pkg := testPkg(t, `package fix

//lint:ignore reportfuncs
func a() {}
`)
	diags := Run([]*Package{pkg}, []*Analyzer{reportFuncs})
	// The malformed directive suppresses nothing, so both the lint
	// complaint and the analyzer's own finding surface.
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %v", messages(diags))
	}
	var sawLint, sawFunc bool
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "justification") {
			sawLint = true
		}
		if d.Message == "func a" {
			sawFunc = true
		}
	}
	if !sawLint || !sawFunc {
		t.Fatalf("want a lint justification complaint and the unsuppressed finding, got %v", messages(diags))
	}
}

func TestUnknownAnalyzerReported(t *testing.T) {
	pkg := testPkg(t, `package fix

//lint:ignore nosuch the analyzer name is wrong
func a() {}
`)
	diags := Run([]*Package{pkg}, []*Analyzer{reportFuncs})
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %v", messages(diags))
	}
	var sawUnknown bool
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, `unknown analyzer "nosuch"`) {
			sawUnknown = true
		}
	}
	if !sawUnknown {
		t.Fatalf("want an unknown-analyzer complaint, got %v", messages(diags))
	}
}

func TestIgnoreDirectiveMultipleNames(t *testing.T) {
	pkg := testPkg(t, `package fix

//lint:ignore reportfuncs,determinism shared justification
func a() {}
`)
	diags := Run([]*Package{pkg}, []*Analyzer{reportFuncs, Determinism})
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", messages(diags))
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "determinism",
		Message:  "boom",
	}
	if got, want := d.String(), "x.go:3:7: determinism: boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
