package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// SentErr enforces the repository's sentinel-error convention (PR 5):
// sentinels (package-level `var ErrX = errors.New(...)` values such as
// ErrBudget, ErrInvalidProcess, ErrRemoteProcess, ErrPartialAck) are
// matched with errors.Is through arbitrary wrapping, so == / != / switch
// comparisons against them are latent bugs, and fmt.Errorf calls that
// carry an error argument without a %w verb silently break the chain.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "require errors.Is and %w wrapping for sentinel errors; flag == comparisons and unwrapped fmt.Errorf",
	Run:  runSentErr,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func runSentErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, op := range []ast.Expr{n.X, n.Y} {
					if s := sentinelOf(pass, op); s != nil {
						pass.Reportf(n.Pos(), "%s compared with %s: wrapped sentinels only answer errors.Is", s.Name(), n.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				t := pass.Info.TypeOf(n.Tag)
				if t == nil || !types.AssignableTo(t, errorIface) {
					return true
				}
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := sentinelOf(pass, e); s != nil {
							pass.Reportf(e.Pos(), "switch case compares %s with ==: wrapped sentinels only answer errors.Is", s.Name())
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelOf resolves e to a package-level error variable named ErrXxx,
// the repository's sentinel shape; nil otherwise.
func sentinelOf(pass *Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := pass.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	name := v.Name()
	if !strings.HasPrefix(name, "Err") && !strings.HasPrefix(name, "err") {
		return nil
	}
	if len(name) <= 3 || (name[3] < 'A' || name[3] > 'Z') {
		return nil
	}
	if !types.AssignableTo(v.Type(), errorIface) {
		return nil
	}
	return v
}

// checkErrorfWrap flags fmt.Errorf calls whose arguments include an
// error but whose constant format string has no %w verb: the resulting
// error hides its cause from errors.Is / errors.As.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := funcOf(pass.Info, call)
	if !isPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := pass.Info.TypeOf(arg)
		if t == nil {
			continue
		}
		if types.AssignableTo(t, errorIface) && !types.Identical(t, types.Typ[types.UntypedNil]) {
			pass.Reportf(call.Pos(), "fmt.Errorf carries an error value but no %%w verb: the cause is flattened to text and errors.Is against the repo's sentinels will fail")
			return
		}
	}
}
