package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// simReachable lists the packages whose executions must be a pure
// function of the configured seed: everything the deterministic
// simulator can reach while replaying the E1–E12 tables, the protocol
// machines it drives, and the spec checkers that judge the event stream.
// Matched by path suffix (see pathMatches) so fixture packages can opt
// in.
var simReachable = []string{
	"internal/sim",
	"internal/channel",
	"internal/experiment",
	"internal/pif",
	"internal/fwd",
	"internal/spec",
	// protocol machines
	"internal/idl",
	"internal/mutex",
	"internal/reset",
	"internal/snapshot",
	"internal/termdet",
	"internal/baseline",
	// corruption and configuration feeding the machines
	"internal/adversary",
	"internal/config",
}

// wallClock are the time functions that read the wall clock; they are
// banned even in test-file mode, because a table or assertion derived
// from them cannot replay.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// pacing are the time functions that only pace real goroutines. They are
// banned in sim-reachable production code (the simulator has no clock)
// but tolerated in test files, which may legitimately wait for real
// concurrency to settle.
var pacing = map[string]bool{
	"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors are the math/rand entry points that build an
// explicitly seeded generator; everything else at package level draws
// from the global, unseedable-per-run stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism enforces seed-pure execution in sim-reachable packages:
// no wall clock, no timers, no global math/rand, no raw seed arithmetic
// outside rng.Mix, and no map iteration feeding order-sensitive state.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, timers, global math/rand, raw seed arithmetic, " +
		"and order-sensitive map iteration in sim-reachable packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !pathMatches(pass.Path, simReachable) {
		return nil
	}
	for _, f := range pass.Files {
		// A for-loop post statement like `seed++` enumerates a seed
		// sweep rather than deriving a stream; exempt it from the seed
		// arithmetic rule.
		loopPost := make(map[ast.Stmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if fs, ok := n.(*ast.ForStmt); ok && fs.Post != nil {
				loopPost[fs.Post] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkBannedRef(pass, n)
			case *ast.BlockStmt:
				checkMapRanges(pass, n.List)
			case *ast.CaseClause:
				checkMapRanges(pass, n.Body)
			case *ast.CommClause:
				checkMapRanges(pass, n.Body)
			case *ast.BinaryExpr:
				checkSeedArith(pass, n)
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE && !loopPost[n] {
					for _, lhs := range n.Lhs {
						if isSeedExpr(pass, lhs) {
							pass.Reportf(n.Pos(), "seed arithmetic outside rng.Mix: %s on %s; derive seeds with rng.Mix so every value is a pure function of its coordinates", n.Tok, baseName(lhs))
						}
					}
				}
			case *ast.IncDecStmt:
				if !loopPost[n] && isSeedExpr(pass, n.X) {
					pass.Reportf(n.Pos(), "seed arithmetic outside rng.Mix: %s on %s; derive seeds with rng.Mix so every value is a pure function of its coordinates", n.Tok, baseName(n.X))
				}
			}
			return true
		})
	}
	return nil
}

// checkBannedRef flags any reference (call or value use) to the banned
// time and math/rand package functions.
func checkBannedRef(pass *Pass, id *ast.Ident) {
	obj, _ := pass.Info.Uses[id].(*types.Func)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return
	}
	test := pass.InTestFile(id.Pos())
	switch obj.Pkg().Path() {
	case "time":
		name := obj.Name()
		switch {
		case wallClock[name]:
			pass.Reportf(id.Pos(), "time.%s reads the wall clock in a sim-reachable package; executions must be a pure function of the seed", name)
		case pacing[name] && !test:
			pass.Reportf(id.Pos(), "time.%s in a sim-reachable package; the deterministic simulator has no clock — pace only real-concurrency test code", name)
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[obj.Name()] {
			pass.Reportf(id.Pos(), "global %s.%s draws from an unseedable stream; use internal/rng (SplitMix64) so executions replay", obj.Pkg().Name(), obj.Name())
		}
	}
}

// checkMapRanges flags `for range m` over a map whose body feeds
// order-sensitive state. Collecting keys into a slice is exempt when a
// later statement of the same block visibly sorts that slice — the
// canonical deterministic-iteration idiom.
func checkMapRanges(pass *Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		if _, ok := pass.Info.TypeOf(rs.X).Underlying().(*types.Map); !ok {
			continue
		}
		kind, pos, dest, destObj := orderSensitive(pass, rs.Body)
		if kind == "" {
			continue
		}
		// An append destination declared inside the loop body restarts
		// every iteration; nothing order-sensitive accumulates.
		if destObj != nil && destObj.Pos() >= rs.Body.Pos() && destObj.Pos() <= rs.Body.End() {
			continue
		}
		if dest != "" && sortedLater(pass, stmts[i+1:], dest) {
			continue
		}
		pass.Reportf(pos, "map iteration feeds order-sensitive state (%s) in a sim-reachable package; iterate a sorted key slice instead", kind)
	}
}

// orderSensitive scans a range body for operations whose result depends
// on iteration order. It returns a description, the offending position,
// and the append destination (name and object) when the operation was an
// append.
func orderSensitive(pass *Pass, body *ast.BlockStmt) (kind string, pos token.Pos, dest string, destObj types.Object) {
	ast.Inspect(body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested ranges are checked as their own statements.
			return true
		case *ast.SendStmt:
			kind, pos = "channel send", n.Pos()
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(n.Args) > 0 {
					kind, pos, dest = "append", n.Pos(), baseName(n.Args[0])
					if base, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
						destObj = pass.Info.ObjectOf(base)
					}
					return false
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "OnEvent", "Emit", "emit", "Write", "WriteString", "WriteByte", "WriteRune",
					"Fprintf", "Fprint", "Fprintln", "Printf", "Print", "Println":
					kind, pos = "emission via "+sel.Sel.Name, n.Pos()
					return false
				}
			}
		}
		return true
	})
	return kind, pos, dest, destObj
}

// sortedLater reports whether a subsequent statement sorts dest via the
// sort or slices package.
func sortedLater(pass *Pass, stmts []ast.Stmt, dest string) bool {
	for _, stmt := range stmts {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[pkg].(*types.PkgName)
			if !ok {
				return true
			}
			if p := pn.Imported().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if mentionsName(arg, dest) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsName reports whether expr contains an identifier named name.
func mentionsName(expr ast.Expr, name string) bool {
	var found bool
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

var seedArithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.XOR: true, token.AND: true, token.OR: true,
	token.AND_NOT: true, token.SHL: true, token.SHR: true,
}

func checkSeedArith(pass *Pass, be *ast.BinaryExpr) {
	if !seedArithOps[be.Op] {
		return
	}
	for _, op := range []ast.Expr{be.X, be.Y} {
		if isSeedExpr(pass, op) {
			pass.Reportf(be.Pos(), "seed arithmetic outside rng.Mix: %s %s ...; derive seeds with rng.Mix so every value is a pure function of its coordinates", baseName(op), be.Op)
			return
		}
	}
}

// isSeedExpr reports whether e is an integer-typed identifier or field
// whose name contains "seed".
func isSeedExpr(pass *Pass, e ast.Expr) bool {
	name := strings.ToLower(baseName(e))
	if !strings.Contains(name, "seed") {
		return false
	}
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
