package analysis_test

import (
	"testing"

	"github.com/snapstab/snapstab/internal/analysis"
	"github.com/snapstab/snapstab/internal/analysis/analysistest"
)

// Each analyzer is exercised on fixture packages carrying // want
// expectations for every hit, plus clean packages (or clean functions in
// the same fixture) proving the no-hit side: path gating, exempt idioms,
// and lint:ignore suppression.

func TestDeterminism(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysistest.TestData(), analysis.Determinism, "internal/sim", "plainpkg")
}

func TestLockOrder(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysistest.TestData(), analysis.LockOrder, "internal/transport/udp", "plainpkg")
}

func TestPoolAlias(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysistest.TestData(), analysis.PoolAlias, "poolalias", "wirestub")
}

func TestSentErr(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysistest.TestData(), analysis.SentErr, "senterr")
}

func TestEventDiscipline(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysistest.TestData(), analysis.EventDiscipline, "eventdisc")
}

func TestRegistry(t *testing.T) {
	t.Parallel()
	all := analysis.All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d analyzers, want 5", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
