package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// transportPkgs are the packages whose locking discipline DESIGN.md §7
// and §12 document: the action mutex mu is outermost, the mailbox mutex
// mbMu next, and the injector mutex injMu innermost.
var transportPkgs = []string{
	"internal/transport/udp",
	"internal/transport/tcp",
}

// lockRank orders the documented mutexes. Acquisitions must happen in
// increasing rank; unranked mutexes (gmu, connMu, ...) are out of scope.
var lockRank = map[string]int{"mu": 1, "mbMu": 2, "injMu": 3}

// LockOrder enforces the transports' documented mu → mbMu → injMu
// acquisition order, rejects re-acquisition of a held rank, and forbids
// taking any ranked mutex inside an atomic-section callback (a func
// literal handed to a Do method, which already runs under mu).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce the documented mu → mbMu → injMu lock order in the socket transports",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) error {
	if !pathMatches(pass.Path, transportPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkLocks(pass, fd.Body.List, map[string]token.Pos{})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkAtomicCallback(pass, call)
			return true
		})
	}
	return nil
}

// walkLocks tracks held ranked mutexes through a statement list in
// lexical order. Branches are analyzed against a snapshot of the held
// set and their acquisitions are not propagated past the branch — a
// deliberate under-approximation that keeps the checker free of false
// positives from unbalanced control flow.
func walkLocks(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			applyLockExpr(pass, s.X, held)
		case *ast.DeferStmt:
			// defer x.Unlock() keeps x held to function end: no change.
			// Nested func literals start lock-free.
			walkFuncLits(pass, s.Call)
		case *ast.GoStmt:
			walkFuncLits(pass, s.Call)
		case *ast.BlockStmt:
			walkLocks(pass, s.List, held)
		case *ast.IfStmt:
			if s.Init != nil {
				walkLocks(pass, []ast.Stmt{s.Init}, held)
			}
			walkLocks(pass, s.Body.List, snapshot(held))
			if s.Else != nil {
				walkLocks(pass, []ast.Stmt{s.Else}, snapshot(held))
			}
		case *ast.ForStmt:
			walkLocks(pass, s.Body.List, snapshot(held))
		case *ast.RangeStmt:
			walkLocks(pass, s.Body.List, snapshot(held))
		case *ast.SwitchStmt:
			walkCases(pass, s.Body, held)
		case *ast.TypeSwitchStmt:
			walkCases(pass, s.Body, held)
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkLocks(pass, cc.Body, snapshot(held))
				}
			}
		case *ast.LabeledStmt:
			walkLocks(pass, []ast.Stmt{s.Stmt}, held)
		default:
			ast.Inspect(stmt, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					walkLocks(pass, fl.Body.List, map[string]token.Pos{})
					return false
				}
				return true
			})
		}
	}
}

func walkCases(pass *Pass, body *ast.BlockStmt, held map[string]token.Pos) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			walkLocks(pass, cc.Body, snapshot(held))
		}
	}
}

func snapshot(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// applyLockExpr interprets one expression statement: Lock/Unlock calls
// on ranked mutexes mutate the held set, and func literals inside the
// expression are walked lock-free.
func applyLockExpr(pass *Pass, e ast.Expr, held map[string]token.Pos) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	walkFuncLits(pass, call)
	name, op := rankedLockCall(pass, call)
	if name == "" {
		return
	}
	switch op {
	case "Lock", "RLock":
		for h := range held {
			if lockRank[h] > lockRank[name] {
				pass.Reportf(call.Pos(), "acquires %s while holding %s: the documented transport order is mu → mbMu → injMu", name, h)
			} else if h == name {
				pass.Reportf(call.Pos(), "acquires %s while already holding it", name)
			}
		}
		held[name] = call.Pos()
	case "Unlock", "RUnlock":
		delete(held, name)
	}
}

// walkFuncLits analyzes func-literal arguments of a call with a fresh
// (empty) held set: a goroutine or stored closure runs on its own stack.
func walkFuncLits(pass *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if fl, ok := arg.(*ast.FuncLit); ok {
			walkLocks(pass, fl.Body.List, map[string]token.Pos{})
		}
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		walkLocks(pass, fl.Body.List, map[string]token.Pos{})
	}
}

// rankedLockCall recognizes x.<mu>.<Lock|Unlock|RLock|RUnlock>() where
// <mu> is one of the ranked mutex fields with a sync.Mutex or
// sync.RWMutex type, returning the field name and the operation.
func rankedLockCall(pass *Pass, call *ast.CallExpr) (field, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	name := baseName(sel.X)
	if _, ranked := lockRank[name]; !ranked {
		return "", ""
	}
	if !isSyncMutex(pass.Info.TypeOf(sel.X)) {
		return "", ""
	}
	return name, sel.Sel.Name
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// checkAtomicCallback flags ranked-mutex acquisition inside a func
// literal passed to a Do method: Do is the transports' atomic-section
// entry point and already holds the action mutex, so any ranked Lock in
// the callback either self-deadlocks (mu) or runs socket-side work under
// a lock the callback must not know about.
func checkAtomicCallback(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" {
		return
	}
	for _, arg := range call.Args {
		fl, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, op := rankedLockCall(pass, inner); name != "" && (op == "Lock" || op == "RLock") {
				pass.Reportf(inner.Pos(), "acquires %s inside an atomic-section callback: Do already runs under mu; hoist the locking out of the callback", name)
			}
			return true
		})
	}
}
