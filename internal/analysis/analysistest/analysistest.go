// Package analysistest runs snapvet analyzers over fixture packages and
// checks their diagnostics against // want expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// Fixtures live under testdata/src/<importpath>/, GOPATH-style. A
// fixture file marks each expected diagnostic with a trailing comment
//
//	x := time.Now() // want `wall clock`
//
// holding one Go string literal (quoted or backquoted) per expected
// diagnostic on that line; each is a regexp matched against the
// diagnostic message. Diagnostics without a matching expectation, and
// expectations without a matching diagnostic, fail the test. Imports are
// resolved first against testdata/src (so fixtures can stub repository
// packages like internal/core), then against the standard library via
// compiler export data.
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/snapstab/snapstab/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package below testdata/src, applies the
// analyzer (through the driver, so lint:ignore directives participate),
// and compares diagnostics against the // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags := analysis.Run([]*analysis.Package{pkg.analysisPkg}, []*analysis.Analyzer{a})
		checkWants(t, l.fset, pkg, diags)
	}
}

type wantExpectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func checkWants(t *testing.T, fset *token.FileSet, pkg *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*wantExpectation
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if !strings.HasPrefix(strings.TrimSpace(text), "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range stringLits(text[idx+len("want "):]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						continue
					}
					wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// stringLits scans the Go string literals out of a want payload.
func stringLits(s string) []string {
	var out []string
	var sc scanner.Scanner
	fset := token.NewFileSet()
	file := fset.AddFile("", fset.Base(), len(s))
	sc.Init(file, []byte(s), nil, 0)
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF || tok == token.SEMICOLON {
			break
		}
		if tok == token.STRING {
			if u, err := strconv.Unquote(lit); err == nil {
				out = append(out, u)
			}
		}
	}
	return out
}

// loader type-checks fixture packages, resolving sibling fixtures by
// path and everything else from stdlib export data.
type loader struct {
	src     string
	fset    *token.FileSet
	gc      types.Importer
	pkgs    map[string]*fixturePkg
	exports map[string]string
}

type fixturePkg struct {
	files       []*ast.File
	analysisPkg *analysis.Package
}

func newLoader(src string) *loader {
	l := &loader{
		src:     src,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*fixturePkg),
		exports: make(map[string]string),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", l.exportData)
	return l
}

// exportData locates compiler export data for a standard-library (or
// module-cached) package by asking the go command, memoized per path.
func (l *loader) exportData(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("go list -export %s: %w\n%s", path, err, stderr.Bytes())
		}
		file = strings.TrimSpace(stdout.String())
		l.exports[path] = file
	}
	if file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: fixtureImporter{l},
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	pkg := &fixturePkg{
		files: files,
		analysisPkg: &analysis.Package{
			Path:        path,
			VariantPath: path,
			Dir:         dir,
			Fset:        l.fset,
			Files:       files,
			Types:       tpkg,
			Info:        info,
		},
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

type fixtureImporter struct{ l *loader }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, err := os.Stat(filepath.Join(fi.l.src, filepath.FromSlash(path))); err == nil {
		pkg, err := fi.l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.analysisPkg.Types, nil
	}
	return fi.l.gc.Import(path)
}
