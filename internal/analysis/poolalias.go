package analysis

import (
	"go/ast"
	"go/types"
)

// appendBufferFuncs are the wire helpers that render into a caller-owned
// scratch buffer. Their results are flush-scoped: valid until the buffer
// is next reused, so they must not outlive the function that produced
// them or alias application memory (the invariant the Bytes codec's
// copy-on-Marshal fixed by hand in PR 5).
var appendBufferFuncs = map[string]bool{
	"AppendEncode": true,
	"AppendBatch":  true,
	"AppendFrame":  true,
}

// frameMethods are BatchBuilder accessors whose result aliases the
// builder's internal record buffer and dies at the next Reset/Add.
var frameMethods = map[string]bool{"Frame": true, "Bytes": true}

// PoolAlias flags pool-obtained or append-rendered buffers that escape
// their flush scope: returned, sent on a channel, or stored into a
// field, element, or package variable. Self-append into an owned scratch
// field (buf = AppendEncode(buf, ...)) is the intended idiom and is not
// flagged; neither is the package that declares the helper itself.
var PoolAlias = &Analyzer{
	Name: "poolalias",
	Doc:  "flag sync.Pool and wire append buffers that escape their flush scope or alias application memory",
	Run:  runPoolAlias,
}

func runPoolAlias(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBufferScope(pass, n.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// checkBufferScope analyzes one function body: it collects the local
// variables bound to transient buffers, then reports every statement
// that lets such a buffer outlive the function's flush scope.
func checkBufferScope(pass *Pass, body *ast.BlockStmt) {
	tracked := make(map[types.Object]string) // var -> buffer kind
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			kind := transientBufferSource(pass, rhs)
			if kind == "" {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.Info.ObjectOf(id); obj != nil {
				tracked[obj] = kind
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj, kind := trackedIn(pass, tracked, res); obj != nil {
					pass.Reportf(res.Pos(), "%s %s escapes its flush scope: returned; copy it before it leaves the function", kind, obj.Name())
				}
			}
		case *ast.SendStmt:
			if obj, kind := trackedIn(pass, tracked, n.Value); obj != nil {
				pass.Reportf(n.Value.Pos(), "%s %s escapes its flush scope: sent on a channel", kind, obj.Name())
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if !longLivedTarget(pass, lhs) {
					continue
				}
				rhs := n.Rhs[i]
				if copiesContent(pass, lhs, rhs) {
					continue
				}
				if obj, kind := trackedIn(pass, tracked, rhs); obj != nil {
					pass.Reportf(rhs.Pos(), "%s %s is retained beyond its flush scope (stored into %s); it aliases memory the next flush reuses", kind, obj.Name(), baseName(lhs))
				}
			}
		}
		return true
	})
}

// transientBufferSource classifies an expression that yields a
// flush-scoped buffer, looking through type assertions: a sync.Pool Get,
// a wire Append helper (declared outside this package), or a
// BatchBuilder frame accessor.
func transientBufferSource(pass *Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg() == pass.Pkg {
		// The declaring package owns the buffer protocol; its internals
		// (and self-append helpers) are the implementation, not a leak.
		return ""
	}
	recv := recvNamed(fn)
	switch {
	case fn.Name() == "Get" && recv != nil && recv.Obj().Pkg() != nil &&
		recv.Obj().Pkg().Path() == "sync" && recv.Obj().Name() == "Pool":
		return "sync.Pool buffer"
	case appendBufferFuncs[fn.Name()]:
		return "append-rendered buffer"
	case frameMethods[fn.Name()] && recv != nil && recv.Obj().Name() == "BatchBuilder":
		return "BatchBuilder frame"
	}
	return ""
}

func recvNamed(fn *types.Func) *types.Named {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// trackedIn returns the first tracked buffer variable referenced inside
// e, along with its kind. References through index and slice expressions
// count: a subslice aliases the same backing array.
func trackedIn(pass *Pass, tracked map[types.Object]string, e ast.Expr) (types.Object, string) {
	var obj types.Object
	var kind string
	ast.Inspect(e, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// A call may copy (append, copy, string(...)); its result is
			// the callee's concern. Conversions to string copy too.
			return false
		case *ast.Ident:
			if o := pass.Info.ObjectOf(n); o != nil {
				if k, ok := tracked[o]; ok {
					obj, kind = o, k
				}
			}
		}
		return true
	})
	return obj, kind
}

// longLivedTarget reports whether lhs names storage that outlives the
// current call: a struct field, a map/slice element, a dereference, or a
// package-level variable.
func longLivedTarget(pass *Pass, lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := pass.Info.ObjectOf(lhs)
		return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
	}
	return false
}

// copiesContent recognizes the safe self-append idioms: dst =
// append(dst, buf...) copies the content into dst's backing array, and
// dst = AppendEncode(dst, ...) renders into the caller's own scratch —
// in both, nothing new aliases a transient buffer.
func copiesContent(pass *Pass, lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
			return false
		}
	case *ast.SelectorExpr:
		if !appendBufferFuncs[fun.Sel.Name] {
			return false
		}
	default:
		return false
	}
	return baseName(call.Args[0]) == baseName(lhs)
}
