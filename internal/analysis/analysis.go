// Package analysis implements snapvet, the repository's static-analysis
// suite. It mechanically enforces the conventions the reproduction's
// correctness argument leans on — deterministic replay, transport lock
// order, pooled-buffer ownership, sentinel-error wrapping, and loss-event
// attribution — which PRs 1–8 defended only by comment and after-the-fact
// invariance tests (DESIGN.md §14).
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Reportf) but is self-contained on the standard
// library: packages are enumerated with `go list -e -test -deps -export
// -json`, target packages are type-checked from source, and their
// dependencies are imported from the compiler's export data, so the suite
// needs no module requirements beyond the toolchain itself.
//
// Suppression: a diagnostic is silenced by a directive comment
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// placed on the flagged line or on the line directly above it. The
// justification is mandatory — a bare directive is itself reported — and
// should say why the invariant may be broken at that site (e.g. "pinned
// seed derivation: E6 tables are byte-frozen").
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the canonical import path with any test-variant suffix
	// (" [pkg.test]") stripped, so path-scoped analyzers treat a package
	// and its test-augmented variant alike.
	Path string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers use
// it for rules whose strictness differs between production and test code
// (the determinism analyzer's test-file mode).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one finding, located in the file system.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package, resolves lint:ignore
// directives, and returns the surviving diagnostics sorted by position.
// Malformed or unknown-name directives are themselves reported under the
// pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				raw = append(raw, Diagnostic{
					Pos:      pkg.Fset.Position(pkg.Files[0].Pos()),
					Analyzer: a.Name,
					Message:  fmt.Sprintf("analyzer failed: %v", err),
				})
			}
		}
		ignores, bad := directives(pkg, known)
		raw = append(raw, bad...)
		for _, d := range raw {
			// A test-augmented variant re-checks the package's
			// non-test files; only its _test.go findings are new.
			if pkg.IsTestVariant && !strings.HasSuffix(d.Pos.Filename, "_test.go") {
				continue
			}
			if d.Analyzer != "lint" && ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// A finding can surface once from the base package and once from a
	// test-variant pass; keep one.
	dedup := out[:0]
	for i, d := range out {
		if i > 0 && d == out[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup
}

type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

const directivePrefix = "//lint:ignore"

// directives collects lint:ignore suppressions for pkg. A directive
// suppresses the named analyzers on its own line and on the following
// line, covering both trailing and preceding-comment placement.
func directives(pkg *Package, known map[string]bool) (map[ignoreKey]bool, []Diagnostic) {
	ignores := make(map[ignoreKey]bool)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if pkg.IsTestVariant && !strings.HasSuffix(pos.Filename, "_test.go") {
					continue // already validated on the base pass
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other lint: directive family
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{Pos: pos, Analyzer: "lint",
						Message: "lint:ignore needs an analyzer name and a justification: //lint:ignore <analyzer> <why>"})
					continue
				}
				names := strings.Split(fields[0], ",")
				for _, name := range names {
					if !known[name] {
						bad = append(bad, Diagnostic{Pos: pos, Analyzer: "lint",
							Message: fmt.Sprintf("lint:ignore names unknown analyzer %q", name)})
						continue
					}
					ignores[ignoreKey{pos.Filename, pos.Line, name}] = true
					ignores[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return ignores, bad
}

// pathMatches reports whether the canonical package path matches one of
// the configured path suffixes: either the whole path equals the suffix
// or the path ends with "/"+suffix. "internal/sim" therefore matches both
// the module's internal/sim package and a fixture package of that path.
func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// funcOf resolves the *types.Func a call expression invokes, looking
// through parentheses; nil for builtins, conversions, and indirect calls.
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function
// pkgPath.name (declared at package scope, not a method).
func isPkgFunc(obj *types.Func, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// baseName returns the rightmost identifier of an expression: x → "x",
// a.b.c → "c", f(x) → "", stripping parens and unary &.
func baseName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.UnaryExpr:
		return baseName(e.X)
	}
	return ""
}
