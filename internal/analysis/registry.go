package analysis

// All returns the full snapvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		LockOrder,
		PoolAlias,
		SentErr,
		EventDiscipline,
	}
}
