// Package poolalias exercises flush-scope escapes of pooled and
// append-rendered buffers.
package poolalias

import (
	"sync"

	"wirestub"
)

var pool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

var global []byte

type sink struct{ saved []byte }

func returned() []byte {
	buf := pool.Get().([]byte)
	return buf // want `sync\.Pool buffer buf escapes its flush scope: returned`
}

func returnedCopy() []byte {
	buf := pool.Get().([]byte)
	defer pool.Put(&buf)
	return append([]byte(nil), buf...) // copied out: safe
}

func sent(ch chan []byte, b *wirestub.BatchBuilder) {
	fr := b.Frame()
	ch <- fr // want `BatchBuilder frame fr escapes its flush scope: sent on a channel`
}

func stored(s *sink) {
	buf := wirestub.AppendEncode(nil, 1)
	s.saved = buf // want `append-rendered buffer buf is retained beyond its flush scope`
}

func selfAppend(s *sink, v byte) {
	s.saved = wirestub.AppendEncode(s.saved, v) // rendering into owned scratch is the idiom
}

func appendGlobal(b *wirestub.BatchBuilder) {
	fr := b.Frame()
	global = append(global, fr...) // content copied into the package buffer
}

func aliasGlobal(b *wirestub.BatchBuilder) {
	fr := b.Frame()
	global = fr // want `BatchBuilder frame fr is retained beyond its flush scope`
}
