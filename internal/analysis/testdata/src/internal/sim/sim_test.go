package sim

import "time"

// Test-file mode: wall-clock reads stay banned (assertions derived from
// them cannot replay), but pacing real concurrency is tolerated.

func stampTest() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func settleTest() {
	time.Sleep(time.Millisecond) // pacing is allowed in test files
}
