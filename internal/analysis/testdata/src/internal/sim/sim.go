// Package sim is a determinism fixture: its import path suffix places
// it in the sim-reachable set, so the full production-mode rules apply
// to this file.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func pace() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in a sim-reachable package`
}

func globalRand() int {
	return rand.Intn(6) // want `global rand\.Intn draws from an unseedable stream`
}

func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // explicit constructors are fine
}

func deriveStream(seed uint64) uint64 {
	return seed * 31 // want `seed arithmetic outside rng\.Mix`
}

func sweep() uint64 {
	var total uint64
	for seed := uint64(0); seed < 10; seed++ { // a post-statement seed sweep is enumeration, not derivation
		total += uint64(1)
	}
	return total
}

func pinned(seed uint64) uint64 {
	//lint:ignore determinism fixture: pinned derivation kept for byte-frozen tables
	return seed ^ 0xBEEF
}

func unsortedEmit(m map[int]int, out []int) []int {
	for k := range m {
		out = append(out, k) // want `map iteration feeds order-sensitive state \(append\)`
	}
	return out
}

func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func perEntry(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		local := make([]int, 0, len(vs))
		for _, v := range vs {
			local = append(local, v)
		}
		n += len(local)
	}
	return n
}

func drain(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `map iteration feeds order-sensitive state \(channel send\)`
	}
}
