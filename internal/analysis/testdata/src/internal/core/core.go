// Package core stubs the event vocabulary for the eventdiscipline
// fixtures: the analyzer matches these types by package-path suffix.
package core

type ProcID int

type EventKind int

const (
	EvSend EventKind = iota
	EvSendLost
	EvLose
)

type Event struct {
	Kind EventKind
	Proc ProcID
	Peer ProcID
	Note string
}

type FaultStats struct {
	Drops int
	Dups  int
}
