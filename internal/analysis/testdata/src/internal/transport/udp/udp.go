// Package udp is a lockorder fixture mirroring the transport's ranked
// mutex fields (mu outermost, mbMu, then injMu).
package udp

import "sync"

type conn struct {
	mu    sync.Mutex
	mbMu  sync.Mutex
	injMu sync.RWMutex
	n     int
}

// Do is the atomic-section entry point: it runs f under mu.
func (c *conn) Do(f func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f()
}

func (c *conn) goodOrder() {
	c.mu.Lock()
	c.mbMu.Lock()
	c.injMu.Lock()
	c.injMu.Unlock()
	c.mbMu.Unlock()
	c.mu.Unlock()
}

func (c *conn) badOrder() {
	c.mbMu.Lock()
	c.mu.Lock() // want `acquires mu while holding mbMu`
	c.mu.Unlock()
	c.mbMu.Unlock()
}

func (c *conn) reacquire() {
	c.mu.Lock()
	c.mu.Lock() // want `acquires mu while already holding it`
	c.mu.Unlock()
	c.mu.Unlock()
}

func (c *conn) injBeforeMb() {
	c.injMu.RLock()
	c.mbMu.Lock() // want `acquires mbMu while holding injMu`
	c.mbMu.Unlock()
	c.injMu.RUnlock()
}

func (c *conn) branchesDoNotLeak(cond bool) {
	if cond {
		c.mbMu.Lock()
		c.mbMu.Unlock()
	}
	c.mu.Lock() // branch acquisitions are not propagated past the branch
	c.mu.Unlock()
}

func (c *conn) goroutineStartsFresh() {
	c.mbMu.Lock()
	go func() {
		c.mu.Lock() // a new goroutine holds nothing
		c.n++
		c.mu.Unlock()
	}()
	c.mbMu.Unlock()
}

func (c *conn) callbackLocks() {
	c.Do(func() {
		c.mbMu.Lock() // want `acquires mbMu inside an atomic-section callback`
		c.n++
		c.mbMu.Unlock()
	})
}
