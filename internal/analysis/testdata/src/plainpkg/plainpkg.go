// Package plainpkg sits outside both the sim-reachable set and the
// transport packages: the path-scoped analyzers must stay silent here
// no matter what the code does.
package plainpkg

import (
	"sync"
	"time"
)

func Stamp() time.Time { return time.Now() }

func Derive(seed uint64) uint64 { return seed * 31 }

type locks struct {
	mu   sync.Mutex
	mbMu sync.Mutex
}

func (l *locks) inverted() {
	l.mbMu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	l.mbMu.Unlock()
}
