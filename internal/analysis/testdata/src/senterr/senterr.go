// Package senterr exercises the sentinel-error conventions: sentinels
// answer errors.Is only, and wrapping must use %w.
package senterr

import (
	"errors"
	"fmt"
	"io"
)

var ErrBudget = errors.New("step budget exhausted")

func compare(err error) bool {
	return err == ErrBudget // want `ErrBudget compared with ==`
}

func compareNeq(err error) bool {
	return err != ErrBudget // want `ErrBudget compared with !=`
}

func viaIs(err error) bool {
	return errors.Is(err, ErrBudget) // the supported form
}

func viaSwitch(err error) string {
	switch err {
	case ErrBudget: // want `switch case compares ErrBudget with ==`
		return "budget"
	}
	return ""
}

func eofCompare(err error) bool {
	return err == io.EOF // EOF is not the repo's sentinel shape
}

func wrapFlat(err error) error {
	return fmt.Errorf("await failed: %v", err) // want `no %w verb`
}

func wrapOK(err error) error {
	return fmt.Errorf("await failed: %w", err)
}

func formatValue(n int) error {
	return fmt.Errorf("bad process %d", n)
}
