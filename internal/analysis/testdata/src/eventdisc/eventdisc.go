// Package eventdisc exercises loss-side event attribution and the
// FaultStats / native-counter separation.
package eventdisc

import "internal/core"

type Stats struct {
	Sends int
	Drops int
}

func emit(o func(core.Event), self, to, from core.ProcID) {
	o(core.Event{Kind: core.EvSendLost, Proc: self, Peer: to})   // sender-side loss, destination peer: correct
	o(core.Event{Kind: core.EvLose, Proc: self, Peer: from})     // receiver-side loss, sender peer: correct
	o(core.Event{Kind: core.EvSendLost, Proc: self, Peer: from}) // want `EvSendLost is a SENDER-side loss but Peer is "from"`
	o(core.Event{Kind: core.EvLose, Proc: self, Peer: to})       // want `EvLose is a RECEIVER-side loss but Peer is "to"`
	o(core.Event{Kind: core.EvSendLost, Proc: self})             // want `EvSendLost emitted without Peer`
	o(core.Event{Kind: core.EvSend, Proc: self})                 // non-loss events need no peer
}

func fold(s *Stats, fs core.FaultStats) int {
	s.Drops += fs.Drops      // want `FaultStats counter folded into a native transport counter`
	return s.Sends + fs.Dups // want `FaultStats counter folded into a native transport counter`
}

func surface(s *Stats, fs core.FaultStats) (int, int) {
	return s.Drops, fs.Drops // reported side by side: correct
}
