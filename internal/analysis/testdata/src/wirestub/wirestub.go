// Package wirestub stubs the wire append helpers for the poolalias
// fixtures. The declaring package is exempt from the analyzer (it owns
// the buffer protocol), so the fixture callers live in package
// poolalias.
package wirestub

type BatchBuilder struct{ buf []byte }

func (b *BatchBuilder) Frame() []byte { return b.buf }

func AppendEncode(dst []byte, v byte) []byte { return append(dst, v) }
