package channel

import (
	"testing"
	"testing/quick"

	"github.com/snapstab/snapstab/internal/rng"
)

func TestBoundedFIFOOrder(t *testing.T) {
	t.Parallel()
	ch := NewBounded[int](3)
	for i := 1; i <= 3; i++ {
		if !ch.Send(i) {
			t.Fatalf("Send(%d) lost in non-full channel", i)
		}
	}
	for i := 1; i <= 3; i++ {
		got, ok := ch.Recv()
		if !ok || got != i {
			t.Fatalf("Recv() = %d,%v, want %d,true", got, ok, i)
		}
	}
	if _, ok := ch.Recv(); ok {
		t.Fatal("Recv() on empty channel succeeded")
	}
}

func TestBoundedLosesWhenFull(t *testing.T) {
	t.Parallel()
	ch := NewBounded[string](1)
	if !ch.Send("a") {
		t.Fatal("first send lost")
	}
	if ch.Send("b") {
		t.Fatal("send into full channel not lost")
	}
	if got := ch.Lost(); got != 1 {
		t.Fatalf("Lost() = %d, want 1", got)
	}
	m, ok := ch.Recv()
	if !ok || m != "a" {
		t.Fatalf("Recv() = %q,%v, want \"a\",true", m, ok)
	}
}

func TestBoundedCapacityOne(t *testing.T) {
	t.Parallel()
	// The paper's single-message-capacity regime: after any send into an
	// occupied channel, the channel still holds exactly the old message.
	ch := NewBounded[int](1)
	ch.Send(1)
	ch.Send(2)
	ch.Send(3)
	if got := ch.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1", got)
	}
	if m, _ := ch.Peek(); m != 1 {
		t.Fatalf("Peek() = %d, want 1", m)
	}
}

func TestBoundedWraparound(t *testing.T) {
	t.Parallel()
	ch := NewBounded[int](2)
	for round := 0; round < 10; round++ {
		ch.Send(round * 2)
		ch.Send(round*2 + 1)
		a, _ := ch.Recv()
		b, _ := ch.Recv()
		if a != round*2 || b != round*2+1 {
			t.Fatalf("round %d: got %d,%d", round, a, b)
		}
	}
}

func TestBoundedDrop(t *testing.T) {
	t.Parallel()
	ch := NewBounded[int](2)
	if ch.Drop() {
		t.Fatal("Drop() on empty channel succeeded")
	}
	ch.Send(1)
	ch.Send(2)
	if !ch.Drop() {
		t.Fatal("Drop() failed on non-empty channel")
	}
	if m, _ := ch.Peek(); m != 2 {
		t.Fatalf("after Drop, Peek() = %d, want 2", m)
	}
	if got := ch.Lost(); got != 1 {
		t.Fatalf("Lost() = %d, want 1", got)
	}
}

func TestBoundedPreload(t *testing.T) {
	t.Parallel()
	ch := NewBounded[int](3)
	if err := ch.Preload([]int{7, 8}); err != nil {
		t.Fatal(err)
	}
	if got := ch.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	got := ch.Contents()
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("Contents() = %v, want [7 8]", got)
	}
}

func TestBoundedPreloadOverflow(t *testing.T) {
	t.Parallel()
	// The crucial modeling point for Theorem 1: a bounded channel refuses
	// an initial configuration holding more messages than its capacity.
	ch := NewBounded[int](1)
	if err := ch.Preload([]int{1, 2}); err == nil {
		t.Fatal("Preload over capacity succeeded, want error")
	}
}

func TestBoundedPreloadReplacesContents(t *testing.T) {
	t.Parallel()
	ch := NewBounded[int](2)
	ch.Send(1)
	if err := ch.Preload([]int{9}); err != nil {
		t.Fatal(err)
	}
	m, ok := ch.Recv()
	if !ok || m != 9 {
		t.Fatalf("Recv() = %d,%v, want 9,true", m, ok)
	}
	if _, ok := ch.Recv(); ok {
		t.Fatal("old contents survived Preload")
	}
}

func TestNewBoundedPanicsOnZeroCapacity(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("NewBounded(0) did not panic")
		}
	}()
	NewBounded[int](0)
}

func TestUnboundedNeverLosesOnSend(t *testing.T) {
	t.Parallel()
	ch := NewUnbounded[int]()
	for i := 0; i < 10000; i++ {
		if !ch.Send(i) {
			t.Fatalf("unbounded Send(%d) reported loss", i)
		}
	}
	if got := ch.Len(); got != 10000 {
		t.Fatalf("Len() = %d, want 10000", got)
	}
	for i := 0; i < 10000; i++ {
		m, ok := ch.Recv()
		if !ok || m != i {
			t.Fatalf("Recv() = %d,%v, want %d,true", m, ok, i)
		}
	}
}

func TestUnboundedPreloadAnyLength(t *testing.T) {
	t.Parallel()
	ch := NewUnbounded[int]()
	msgs := make([]int, 5000)
	for i := range msgs {
		msgs[i] = i
	}
	if err := ch.Preload(msgs); err != nil {
		t.Fatal(err)
	}
	if got := ch.Len(); got != 5000 {
		t.Fatalf("Len() = %d, want 5000", got)
	}
}

func TestUnboundedDropAndPeek(t *testing.T) {
	t.Parallel()
	ch := NewUnbounded[string]()
	ch.Send("x")
	ch.Send("y")
	if m, ok := ch.Peek(); !ok || m != "x" {
		t.Fatalf("Peek() = %q,%v", m, ok)
	}
	ch.Drop()
	if m, ok := ch.Peek(); !ok || m != "y" {
		t.Fatalf("after Drop, Peek() = %q,%v", m, ok)
	}
	if got := ch.Lost(); got != 1 {
		t.Fatalf("Lost() = %d, want 1", got)
	}
}

func TestCapReporting(t *testing.T) {
	t.Parallel()
	if got := NewBounded[int](4).Cap(); got != 4 {
		t.Fatalf("Bounded Cap() = %d, want 4", got)
	}
	if got := NewUnbounded[int]().Cap(); got != Unlimited {
		t.Fatalf("Unbounded Cap() = %d, want Unlimited", got)
	}
}

func TestContentsIsCopy(t *testing.T) {
	t.Parallel()
	ch := NewBounded[int](2)
	ch.Send(1)
	c := ch.Contents()
	c[0] = 99
	if m, _ := ch.Peek(); m != 1 {
		t.Fatal("mutating Contents() result affected channel state")
	}
}

// TestPropertyFIFOModuloLoss checks the paper's channel contract with
// random operation sequences: received messages are a subsequence of sent
// messages, in sending order, and the occupancy never exceeds capacity.
func TestPropertyFIFOModuloLoss(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, capRaw uint8) bool {
		capacity := int(capRaw%4) + 1
		r := rng.New(seed)
		ch := NewBounded[int](capacity)
		var sent, received []int
		next := 0
		for op := 0; op < 500; op++ {
			switch r.Intn(3) {
			case 0:
				if ch.Send(next) {
					sent = append(sent, next)
				}
				next++
			case 1:
				if m, ok := ch.Recv(); ok {
					received = append(received, m)
				}
			case 2:
				ch.Drop()
			}
			if ch.Len() > capacity {
				return false
			}
		}
		// received must be a subsequence of sent in order.
		i := 0
		for _, m := range received {
			for i < len(sent) && sent[i] != m {
				i++
			}
			if i == len(sent) {
				return false
			}
			i++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLenMatchesContents checks Len/Contents consistency under
// random workloads for both channel kinds.
func TestPropertyLenMatchesContents(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, unbounded bool) bool {
		r := rng.New(seed)
		var ch Queue[int]
		if unbounded {
			ch = NewUnbounded[int]()
		} else {
			ch = NewBounded[int](3)
		}
		for op := 0; op < 300; op++ {
			switch r.Intn(3) {
			case 0:
				ch.Send(op)
			case 1:
				ch.Recv()
			case 2:
				ch.Drop()
			}
			if ch.Len() != len(ch.Contents()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// transitionLog records every hook invocation.
type transitionLog struct{ calls []bool }

func (l *transitionLog) hook(nonEmpty bool) { l.calls = append(l.calls, nonEmpty) }

func TestTransitionHookBounded(t *testing.T) {
	t.Parallel()
	ch := NewBounded[int](2)
	var log transitionLog
	ch.SetTransition(log.hook)
	ch.Send(1) // empty -> non-empty
	ch.Send(2) // still non-empty: no call
	ch.Recv()  // still non-empty: no call
	ch.Recv()  // non-empty -> empty
	want := []bool{true, false}
	if len(log.calls) != 2 || log.calls[0] != want[0] || log.calls[1] != want[1] {
		t.Fatalf("hook calls = %v, want %v", log.calls, want)
	}
	// A send lost to a full channel must not fire the hook.
	one := NewBounded[int](1)
	var log2 transitionLog
	one.SetTransition(log2.hook)
	one.Send(1)
	one.Send(2) // lost
	if len(log2.calls) != 1 {
		t.Fatalf("lost send fired the hook: %v", log2.calls)
	}
	one.Drop() // non-empty -> empty, via Recv
	if len(log2.calls) != 2 || log2.calls[1] {
		t.Fatalf("Drop did not fire the emptying transition: %v", log2.calls)
	}
}

func TestTransitionHookPreload(t *testing.T) {
	t.Parallel()
	for _, unbounded := range []bool{false, true} {
		var ch Queue[int]
		if unbounded {
			ch = NewUnbounded[int]()
		} else {
			ch = NewBounded[int](3)
		}
		var log transitionLog
		ch.SetTransition(log.hook)
		if err := ch.Preload([]int{1, 2}); err != nil { // empty -> non-empty
			t.Fatal(err)
		}
		if err := ch.Preload([]int{9}); err != nil { // non-empty -> non-empty: no call
			t.Fatal(err)
		}
		if err := ch.Preload(nil); err != nil { // non-empty -> empty
			t.Fatal(err)
		}
		want := []bool{true, false}
		if len(log.calls) != 2 || log.calls[0] != want[0] || log.calls[1] != want[1] {
			t.Fatalf("unbounded=%v: hook calls = %v, want %v", unbounded, log.calls, want)
		}
	}
}

func TestTransitionHookUnbounded(t *testing.T) {
	t.Parallel()
	ch := NewUnbounded[int]()
	var log transitionLog
	ch.SetTransition(log.hook)
	ch.Send(1)
	ch.Send(2)
	ch.Drop()
	ch.Recv()
	want := []bool{true, false}
	if len(log.calls) != 2 || log.calls[0] != want[0] || log.calls[1] != want[1] {
		t.Fatalf("hook calls = %v, want %v", log.calls, want)
	}
}

func BenchmarkBoundedSendRecv(b *testing.B) {
	ch := NewBounded[int](1)
	for i := 0; i < b.N; i++ {
		ch.Send(i)
		ch.Recv()
	}
}

func BenchmarkUnboundedSendRecv(b *testing.B) {
	ch := NewUnbounded[int]()
	for i := 0; i < b.N; i++ {
		ch.Send(i)
		ch.Recv()
	}
}
