// Package channel implements the communication channels of the paper's
// model: FIFO, unreliable (fair-lossy) links between pairs of processes.
//
// Two capacity regimes matter:
//
//   - Bounded: the channel holds at most c messages; a message sent into a
//     full channel is lost (paper, §4: "if a process sends a message in a
//     channel that is full, then the message is lost"). This is the regime
//     in which snap-stabilization is possible (Theorems 2-4).
//   - Unbounded: the channel can hold arbitrarily many messages. This is
//     the regime of the impossibility result (Theorem 1): an arbitrary
//     initial configuration may contain an arbitrarily long sequence of
//     adversarial messages.
//
// Channels are plain data structures; loss beyond the full-channel drop is
// decided by the scheduler/adversary (which calls Drop), keeping all
// nondeterminism in one place so executions replay from a seed.
package channel

import "fmt"

// Queue is the common interface of bounded and unbounded FIFO channels.
type Queue[T any] interface {
	// Send enqueues m. It reports false when the message was lost because
	// the channel was full (only possible for bounded channels).
	Send(m T) bool
	// Recv dequeues the head message. ok is false when the channel is
	// empty.
	Recv() (m T, ok bool)
	// Peek returns the head message without dequeuing it.
	Peek() (m T, ok bool)
	// Drop removes the head message (models link-level loss). It reports
	// false when the channel was empty.
	Drop() bool
	// Len returns the number of messages currently in transit.
	Len() int
	// Cap returns the channel capacity; Unlimited for unbounded channels.
	Cap() int
	// Contents returns the in-transit messages, head first. The returned
	// slice is a copy.
	Contents() []T
	// Preload replaces the channel contents with msgs (head first). It is
	// used to construct arbitrary initial configurations. It returns an
	// error if msgs exceeds the channel capacity: such a configuration
	// does not exist in the bounded model (this is exactly the step of
	// the Theorem 1 proof that fails under bounded capacity).
	Preload(msgs []T) error
	// SetTransition registers f to be invoked whenever the channel
	// transitions between empty and non-empty: f(true) when a message
	// enters an empty channel, f(false) when the last message leaves. At
	// most one hook is supported; registering replaces the previous one.
	// The scheduler uses the hook to maintain its O(1) non-empty-link
	// index (DESIGN.md §4), so the hook fires from every mutating method,
	// including Preload.
	SetTransition(f func(nonEmpty bool))
}

// Unlimited is the Cap value reported by unbounded channels.
const Unlimited = -1

// Bounded is a FIFO channel with capacity c >= 1 that silently loses
// messages sent while full.
type Bounded[T any] struct {
	buf        []T
	head       int
	n          int
	lost       int
	transition func(nonEmpty bool)
}

var _ Queue[int] = (*Bounded[int])(nil)

// NewBounded returns an empty bounded channel of capacity c. It panics if
// c < 1: the paper's positive results assume at least single-message
// capacity.
func NewBounded[T any](c int) *Bounded[T] {
	if c < 1 {
		panic(fmt.Sprintf("channel: invalid capacity %d", c))
	}
	return &Bounded[T]{buf: make([]T, c)}
}

// Send enqueues m, reporting false (message lost) when the channel is full.
func (b *Bounded[T]) Send(m T) bool {
	if b.n == len(b.buf) {
		b.lost++
		return false
	}
	b.buf[(b.head+b.n)%len(b.buf)] = m
	b.n++
	if b.n == 1 && b.transition != nil {
		b.transition(true)
	}
	return true
}

// Recv dequeues the head message.
func (b *Bounded[T]) Recv() (T, bool) {
	var zero T
	if b.n == 0 {
		return zero, false
	}
	m := b.buf[b.head]
	b.buf[b.head] = zero
	b.head = (b.head + 1) % len(b.buf)
	b.n--
	if b.n == 0 && b.transition != nil {
		b.transition(false)
	}
	return m, true
}

// Peek returns the head message without dequeuing it.
func (b *Bounded[T]) Peek() (T, bool) {
	var zero T
	if b.n == 0 {
		return zero, false
	}
	return b.buf[b.head], true
}

// Drop removes the head message, modeling link-level loss.
func (b *Bounded[T]) Drop() bool {
	if _, ok := b.Recv(); !ok {
		return false
	}
	b.lost++
	return true
}

// Len returns the number of in-transit messages.
func (b *Bounded[T]) Len() int { return b.n }

// Cap returns the channel capacity.
func (b *Bounded[T]) Cap() int { return len(b.buf) }

// Lost returns the total number of messages lost so far, from both
// full-channel sends and explicit drops.
func (b *Bounded[T]) Lost() int { return b.lost }

// Contents returns a copy of the in-transit messages, head first.
func (b *Bounded[T]) Contents() []T {
	out := make([]T, 0, b.n)
	for i := 0; i < b.n; i++ {
		out = append(out, b.buf[(b.head+i)%len(b.buf)])
	}
	return out
}

// Preload replaces the contents with msgs, head first. It returns an error
// when len(msgs) exceeds the capacity: no such configuration exists in the
// bounded model.
func (b *Bounded[T]) Preload(msgs []T) error {
	if len(msgs) > len(b.buf) {
		return fmt.Errorf("channel: cannot preload %d messages into capacity-%d channel", len(msgs), len(b.buf))
	}
	var zero T
	for i := range b.buf {
		b.buf[i] = zero
	}
	was := b.n > 0
	b.head = 0
	b.n = copy(b.buf, msgs)
	if now := b.n > 0; now != was && b.transition != nil {
		b.transition(now)
	}
	return nil
}

// SetTransition registers the empty/non-empty hook.
func (b *Bounded[T]) SetTransition(f func(nonEmpty bool)) { b.transition = f }

// Unbounded is a FIFO channel with no capacity limit, the setting of the
// Theorem 1 impossibility result.
type Unbounded[T any] struct {
	buf        []T
	lost       int
	transition func(nonEmpty bool)
}

var _ Queue[int] = (*Unbounded[int])(nil)

// NewUnbounded returns an empty unbounded channel.
func NewUnbounded[T any]() *Unbounded[T] {
	return &Unbounded[T]{}
}

// Send enqueues m; an unbounded channel never loses on send.
func (u *Unbounded[T]) Send(m T) bool {
	u.buf = append(u.buf, m)
	if len(u.buf) == 1 && u.transition != nil {
		u.transition(true)
	}
	return true
}

// Recv dequeues the head message.
func (u *Unbounded[T]) Recv() (T, bool) {
	var zero T
	if len(u.buf) == 0 {
		return zero, false
	}
	m := u.buf[0]
	// Shift rather than re-slice so the backing array does not pin every
	// message ever sent.
	copy(u.buf, u.buf[1:])
	u.buf[len(u.buf)-1] = zero
	u.buf = u.buf[:len(u.buf)-1]
	if len(u.buf) == 0 && u.transition != nil {
		u.transition(false)
	}
	return m, true
}

// Peek returns the head message without dequeuing it.
func (u *Unbounded[T]) Peek() (T, bool) {
	var zero T
	if len(u.buf) == 0 {
		return zero, false
	}
	return u.buf[0], true
}

// Drop removes the head message, modeling link-level loss.
func (u *Unbounded[T]) Drop() bool {
	if _, ok := u.Recv(); !ok {
		return false
	}
	u.lost++
	return true
}

// Len returns the number of in-transit messages.
func (u *Unbounded[T]) Len() int { return len(u.buf) }

// Cap returns Unlimited.
func (u *Unbounded[T]) Cap() int { return Unlimited }

// Lost returns the number of messages dropped so far.
func (u *Unbounded[T]) Lost() int { return u.lost }

// Contents returns a copy of the in-transit messages, head first.
func (u *Unbounded[T]) Contents() []T {
	out := make([]T, len(u.buf))
	copy(out, u.buf)
	return out
}

// Preload replaces the contents with msgs, head first. An unbounded
// channel accepts any preload; this is the capability Theorem 1's
// adversary exploits.
func (u *Unbounded[T]) Preload(msgs []T) error {
	was := len(u.buf) > 0
	u.buf = append(u.buf[:0:0], msgs...)
	if now := len(u.buf) > 0; now != was && u.transition != nil {
		u.transition(now)
	}
	return nil
}

// SetTransition registers the empty/non-empty hook.
func (u *Unbounded[T]) SetTransition(f func(nonEmpty bool)) { u.transition = f }
