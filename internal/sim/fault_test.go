package sim

import (
	"errors"
	"testing"

	"github.com/snapstab/snapstab/internal/core"
)

// chaosPlan is a moderate everything-at-once plan for liveness tests.
func chaosPlan(seed uint64) *core.FaultPlan {
	return &core.FaultPlan{
		Seed: seed,
		Default: core.LinkFaults{
			DropRate:    0.15,
			DupRate:     0.10,
			ReorderRate: 0.10,
			DelayRate:   0.05,
			DelayTicks:  40,
			CorruptRate: 0.05,
		},
	}
}

// trace runs one pinger network for steps scheduler steps and returns the
// full event dump, the final stats, and the final configuration hash —
// the complete observable execution.
func trace(t *testing.T, steps int, opts ...Option) (string, Stats, string) {
	t.Helper()
	stacks, _ := pingerStacks(4)
	rec := core.NewRecorder(1 << 16)
	net := New(stacks, append([]Option{WithSeed(7), WithObserver(rec)}, opts...)...)
	for i := 0; i < steps; i++ {
		net.Step()
	}
	return rec.Dump(), net.Stats(), net.ConfigHash()
}

// TestNilVsEmptyFaultPlanByteIdentical pins the tentpole's free-when-off
// contract: installing a zero-value FaultPlan changes nothing — the event
// trace, the counters, and the final configuration are byte-identical to
// a network with no plan at all. Experiment tables are a function of
// exactly these observables, so they stay byte-identical too.
func TestNilVsEmptyFaultPlanByteIdentical(t *testing.T) {
	t.Parallel()
	const steps = 600
	dumpNil, statsNil, hashNil := trace(t, steps)
	dumpEmpty, statsEmpty, hashEmpty := trace(t, steps, WithFaults(&core.FaultPlan{}))
	if dumpNil != dumpEmpty {
		t.Fatal("empty fault plan altered the event trace")
	}
	if statsNil != statsEmpty {
		t.Fatalf("empty fault plan altered stats: %+v vs %+v", statsNil, statsEmpty)
	}
	if hashNil != hashEmpty {
		t.Fatal("empty fault plan altered the final configuration")
	}
}

// TestFaultPlanReplaysFromSeed pins the determinism contract: the same
// (scheduler seed, plan) replays the same execution, fault decisions
// included; a different plan seed diverges.
func TestFaultPlanReplaysFromSeed(t *testing.T) {
	t.Parallel()
	const steps = 800
	dumpA, statsA, hashA := trace(t, steps, WithFaults(chaosPlan(3)))
	dumpB, statsB, hashB := trace(t, steps, WithFaults(chaosPlan(3)))
	if dumpA != dumpB || statsA != statsB || hashA != hashB {
		t.Fatal("same plan seed did not replay the execution")
	}
	dumpC, _, _ := trace(t, steps, WithFaults(chaosPlan(4)))
	if dumpA == dumpC {
		t.Fatal("different plan seeds produced identical executions")
	}
}

func TestPingPongCompletesUnderChaos(t *testing.T) {
	t.Parallel()
	stacks, machines := pingerStacks(4)
	net := New(stacks, WithSeed(7), WithFaults(chaosPlan(11)))
	err := net.RunUntil(func() bool {
		for _, m := range machines {
			if !m.Done() {
				return false
			}
		}
		return true
	}, 2_000_000)
	if err != nil {
		t.Fatalf("ping-pong did not survive the chaos plan: %v", err)
	}
	st := net.Stats().Faults
	if st.Drops == 0 || st.Duplicates == 0 || st.Reorders == 0 || st.Corrupts == 0 {
		t.Fatalf("chaos plan injected too little: %+v", st)
	}
}

func TestCrashWindowSilencesThenRestores(t *testing.T) {
	t.Parallel()
	stacks, machines := pingerStacks(2)
	plan := &core.FaultPlan{
		Seed:    1,
		Crashes: []core.CrashWindow{{Proc: 1, From: 0, Until: 5_000}},
	}
	net := New(stacks, WithSeed(7), WithFaults(plan))
	allDone := func() bool { return machines[0].Done() && machines[1].Done() }
	// While process 1 is down nothing can complete: its arrivals are
	// consumed and it takes no actions.
	var budget *ErrBudget
	if err := net.RunUntil(allDone, 4_000); !errors.As(err, &budget) {
		t.Fatalf("completed with process 1 down (err=%v)", err)
	}
	if machines[1].Done() {
		t.Fatal("down process made progress")
	}
	// After the window the warm-restarted process resumes and the run
	// completes.
	if err := net.RunUntil(allDone, 500_000); err != nil {
		t.Fatalf("run did not recover after the crash window: %v", err)
	}
	if net.Stats().Faults.CrashDrops == 0 {
		t.Fatal("no arrivals were consumed during the crash window")
	}
}

func TestPartitionWindowHeals(t *testing.T) {
	t.Parallel()
	stacks, machines := pingerStacks(4)
	plan := &core.FaultPlan{
		Seed:       1,
		Partitions: []core.PartitionWindow{{From: 0, Until: 6_000, GroupA: []core.ProcID{0, 1}}},
	}
	net := New(stacks, WithSeed(7), WithFaults(plan))
	allDone := func() bool {
		for _, m := range machines {
			if !m.Done() {
				return false
			}
		}
		return true
	}
	var budget *ErrBudget
	if err := net.RunUntil(allDone, 5_000); !errors.As(err, &budget) {
		t.Fatalf("completed across an open partition (err=%v)", err)
	}
	if err := net.RunUntil(allDone, 500_000); err != nil {
		t.Fatalf("run did not complete after the heal: %v", err)
	}
	if net.Stats().Faults.PartitionDrops == 0 {
		t.Fatal("no messages were dropped by the partition")
	}
}

// seqSender emits one sequence-numbered message to process 1 per
// activation; seqReceiver records arrival order. Together they make FIFO
// violations observable end to end.
type seqSender struct{ next int64 }

func (s *seqSender) Instance() string { return "seq" }
func (s *seqSender) Step(env core.Env) bool {
	s.next++
	env.Send(1, core.Message{Instance: "seq", Kind: "N", B: core.Payload{Num: s.next}})
	return true
}
func (s *seqSender) Deliver(core.Env, core.ProcID, core.Message) {}

type seqReceiver struct{ got []int64 }

func (r *seqReceiver) Instance() string   { return "seq" }
func (r *seqReceiver) Step(core.Env) bool { return false }
func (r *seqReceiver) Deliver(_ core.Env, _ core.ProcID, m core.Message) {
	r.got = append(r.got, m.B.Num)
}

// TestReorderViolatesFIFOThroughTheScheduler pins that ReorderRate
// produces genuine out-of-order delivery through the full substrate —
// holdbacks survive the per-step flush until later traffic overtakes
// them — and that without a plan the channel stays FIFO.
func TestReorderViolatesFIFOThroughTheScheduler(t *testing.T) {
	t.Parallel()
	run := func(opts ...Option) []int64 {
		recv := &seqReceiver{}
		stacks := []core.Stack{{&seqSender{}}, {recv}}
		net := New(stacks, append([]Option{WithSeed(7)}, opts...)...)
		for i := 0; i < 4_000; i++ {
			net.Step()
		}
		return recv.got
	}
	inversions := func(got []int64) int {
		n := 0
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				n++
			}
		}
		return n
	}
	plain := run()
	if len(plain) == 0 || inversions(plain) != 0 {
		t.Fatalf("FIFO violated without a plan: %d inversions in %d deliveries", inversions(plain), len(plain))
	}
	chaotic := run(WithFaults(&core.FaultPlan{Seed: 1, Default: core.LinkFaults{ReorderRate: 0.3}}))
	if inv := inversions(chaotic); inv == 0 {
		t.Fatalf("ReorderRate=0.3 produced no FIFO violation in %d deliveries", len(chaotic))
	}
}

// TestQuiescentFalseDuringCrashWindow pins that a crash window keeps the
// network non-quiescent: the silenced process's guards cannot be probed
// and fire when the window closes.
func TestQuiescentFalseDuringCrashWindow(t *testing.T) {
	t.Parallel()
	stacks, machines := pingerStacks(2)
	plan := &core.FaultPlan{
		Seed:    1,
		Crashes: []core.CrashWindow{{Proc: 1, From: 0, Until: 1 << 40}},
	}
	net := New(stacks, WithSeed(7), WithFaults(plan))
	// Let the run drain: process 0's pings are consumed by the down
	// process, so channels empty out while p1 still has work pending.
	for i := 0; i < 5_000; i++ {
		net.Step()
	}
	if machines[1].Done() {
		t.Fatal("down process completed")
	}
	if net.Quiescent() {
		t.Fatal("network quiescent while a crash window silences enabled actions")
	}
}

// TestQuiescentCountsHeldMessages pins that messages held inside the
// injector (delayed far beyond the horizon) keep the network
// non-quiescent: they are still in transit.
func TestQuiescentCountsHeldMessages(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(2)
	plan := &core.FaultPlan{
		Seed:    1,
		Default: core.LinkFaults{DelayRate: 0.9, DelayTicks: 1 << 40},
	}
	net := New(stacks, WithSeed(7), WithFaults(plan))
	for i := 0; i < 2_000 && net.inj.Held() == 0; i++ {
		net.Step()
	}
	if net.inj.Held() == 0 {
		t.Skip("no message held within the horizon (seed drift)")
	}
	if net.Quiescent() {
		t.Fatal("network quiescent with messages held in the injector")
	}
}

func TestInvalidFaultPlanPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid plan did not panic")
		}
	}()
	stacks, _ := pingerStacks(2)
	New(stacks, WithFaults(&core.FaultPlan{Default: core.LinkFaults{DropRate: 1.5}}))
}
