// Package sim is the deterministic execution substrate: it runs protocol
// stacks (core.Stack) over per-pair bounded or unbounded channels under a
// seeded scheduler, realizing the asynchronous message-passing model of
// the paper (§2).
//
// All nondeterminism of the model — which process takes a step, which
// message is delivered, which message is lost — is resolved by a single
// seeded PRNG, so every execution replays exactly from (topology, stacks,
// seed). The scheduler offers two disciplines:
//
//   - Step: one uniformly random enabled scheduler step (activation,
//     delivery, or loss). Random scheduling is fair with probability 1,
//     matching the paper's fairness assumptions.
//   - SyncRound: activate every process once, then deliver (or lose)
//     every channel head once. Deterministic and fair; gives a
//     well-defined "round" unit for complexity measurements.
//
// The package also exposes the raw operations (Activate, Deliver, Lose,
// Link) so adversaries — notably the Theorem 1 construction in
// internal/adversary — can drive executions by hand.
package sim

import (
	"fmt"
	"sort"
	"sync"

	"github.com/snapstab/snapstab/internal/channel"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/rng"
)

// LinkKey identifies one directed logical channel: the physical link
// (From, To) carrying one protocol instance. Composed protocol stacks
// multiplex several instances per physical link; each instance gets its
// own capacity-bounded sub-channel (see DESIGN.md §4).
type LinkKey struct {
	From, To core.ProcID
	Instance string
}

// String renders the key compactly.
func (k LinkKey) String() string {
	return fmt.Sprintf("p%d->p%d/%s", k.From, k.To, k.Instance)
}

// Stats counts what happened during a run.
type Stats struct {
	// Steps is the number of scheduler steps executed.
	Steps int
	// Activations is the number of process activations.
	Activations int
	// Sends is the number of messages pushed into channels (including
	// those immediately lost to a full channel).
	Sends int
	// SendLosses counts messages lost because the channel was full.
	SendLosses int
	// LinkLosses counts in-transit messages dropped by the lossy link.
	LinkLosses int
	// Deliveries counts messages handed to receive actions.
	Deliveries int
	// Rounds counts completed rounds: a round completes when every
	// process has been activated at least once since the previous round.
	Rounds int
	// ProbeActivations counts activations executed by Quiescent's
	// termination probe. The probe sweep is a legal execution fragment,
	// but it is observation, not scheduled work, so it is accounted here
	// instead of inflating Activations and Rounds.
	ProbeActivations int
	// Faults counts the faults injected by the installed FaultPlan
	// (WithFaults), by category. Zero when no plan is installed. Injected
	// drops are NOT double-counted into LinkLosses: LinkLosses remains
	// the WithLossRate/Lose accounting, so injected adversity stays
	// distinguishable from the fair-loss link model.
	Faults core.FaultStats
}

// Option configures a Network.
type Option func(*Network)

// WithCapacity sets the per-instance channel capacity (default 1, the
// paper's single-message regime). The protocols must be constructed with
// the same known bound.
func WithCapacity(c int) Option {
	return func(n *Network) { n.capacity = c }
}

// WithUnbounded switches every channel to unbounded capacity — the
// Theorem 1 impossibility regime.
func WithUnbounded() Option {
	return func(n *Network) { n.unbounded = true }
}

// WithLossRate sets the probability that a scheduled delivery becomes a
// loss instead. Must be in [0, 1); 1 would violate the fair-loss
// assumption.
func WithLossRate(p float64) Option {
	return func(n *Network) { n.loss = p }
}

// WithSeed seeds the scheduler PRNG (default 1).
func WithSeed(seed uint64) Option {
	return func(n *Network) { n.seed = seed }
}

// WithObserver subscribes an event observer.
func WithObserver(o core.Observer) Option {
	return func(n *Network) { n.observers = append(n.observers, o) }
}

// WithTopology restricts the network to the edges of t: links exist only
// along edges (Link panics on a non-edge key), sends to non-neighbours
// are dropped at the sender, and the installed fault plan must address
// only real links. The default (nil) is the paper's complete graph. The
// link structures are lazily created per edge, so memory and the
// scheduler's pending index stay degree-bounded on sparse graphs. Edge
// checks consume no scheduler randomness: a network over an explicit
// Complete(n) executes byte-identically to one without a topology.
func WithTopology(t *core.Topology) Option {
	return func(n *Network) { n.topo = t }
}

// faultSeedSalt namespaces the simulator's injector seed within the
// plan's rng.Mix-derived seed hierarchy (the runtime and udp substrates
// use their own salts), so the same plan drives a distinct — but equally
// reproducible — decision stream on each substrate.
const faultSeedSalt = 0x51

// WithFaults installs a fault-injection plan (see core.FaultPlan). The
// plan is interposed at Step delivery: every message popped from a channel
// passes through the plan's injector, which may drop, duplicate, corrupt,
// reorder, or delay it, honor partition windows, and silence processes
// inside crash windows. The injector draws from its own generator seeded
// rng.Mix(plan.Seed, salt) — never from the scheduler PRNG — so a nil or
// zero-value plan leaves every execution byte-identical to a network
// without one, and a configured plan replays exactly from its seed.
func WithFaults(plan *core.FaultPlan) Option {
	return func(n *Network) { n.fault = plan }
}

// Network is a fully-connected system of n processes and the channels
// between them.
type Network struct {
	n         int
	capacity  int
	unbounded bool
	loss      float64
	seed      uint64
	topo      *core.Topology

	fault *core.FaultPlan
	inj   *core.Injector

	r         *rng.Source
	stacks    []core.Stack
	routes    []map[string]core.Machine
	links     map[LinkKey]channel.Queue[core.Message]
	linkOrder []LinkKey
	observers core.MultiObserver

	// The non-empty-link index: pending holds the ids (indices into
	// linkOrder) of every link currently carrying messages, as a dense
	// swap-remove set; pendingPos[id] is the id's position in pending, or
	// -1. Channel transition hooks keep the set exact through every
	// mutation path (Send, Deliver, Lose, Preload), so Step never scans
	// the links (DESIGN.md §4).
	pending    []int
	pendingPos []int
	scratch    []int
	envs       []core.Env

	step         int
	stats        Stats
	activatedSet []bool
	activatedN   int
	crashed      []bool
	probing      bool // inside Quiescent's sweep: divert activation counters

	// Substrate-mode state (substrate.go). Deterministic single-threaded
	// use — experiments, the model checker, the adversary — never touches
	// any of it: the driver goroutine is spawned lazily by the first
	// Await, so the scheduler hot path stays lock-free.
	subMu       sync.Mutex // guards the network while the driver runs
	subWaiters  []*awaitWaiter
	subDriver   bool
	subClosed   bool
	awaitBudget int
}

// New assembles a network from one protocol stack per process. The stacks
// slice length determines n; n must be at least 2.
func New(stacks []core.Stack, opts ...Option) *Network {
	if len(stacks) < 2 {
		panic(fmt.Sprintf("sim: need at least 2 processes, got %d", len(stacks)))
	}
	net := &Network{
		n:            len(stacks),
		capacity:     1,
		seed:         1,
		stacks:       stacks,
		links:        make(map[LinkKey]channel.Queue[core.Message]),
		activatedSet: make([]bool, len(stacks)),
		crashed:      make([]bool, len(stacks)),
		awaitBudget:  DefaultAwaitBudget,
	}
	for _, opt := range opts {
		opt(net)
	}
	if net.loss < 0 || net.loss >= 1 {
		panic(fmt.Sprintf("sim: loss rate %v outside [0,1)", net.loss))
	}
	if net.capacity < 1 {
		panic(fmt.Sprintf("sim: invalid capacity %d", net.capacity))
	}
	net.r = rng.New(net.seed)
	if net.topo != nil && net.topo.N() != net.n {
		panic(fmt.Sprintf("sim: topology over %d processes, %d stacks", net.topo.N(), net.n))
	}
	if net.fault != nil {
		if err := net.fault.Validate(); err != nil {
			panic("sim: " + err.Error())
		}
		if err := net.fault.ValidateTopology(net.topo); err != nil {
			panic("sim: " + err.Error())
		}
		net.inj = core.NewInjector(net.fault, rng.New(rng.Mix(net.fault.Seed, faultSeedSalt)))
	}
	net.routes = make([]map[string]core.Machine, net.n)
	for i, s := range stacks {
		net.routes[i] = s.ByInstance()
	}
	// Box one core.Env per process up front: handing machines a freshly
	// boxed env value on every activation would put one interface
	// allocation on the scheduler hot path.
	net.envs = make([]core.Env, net.n)
	for i := range net.envs {
		net.envs[i] = env{net: net, self: core.ProcID(i)}
	}
	return net
}

// N returns the number of processes.
func (net *Network) N() int { return net.n }

// Capacity returns the per-instance channel capacity bound
// (channel.Unlimited when unbounded).
func (net *Network) Capacity() int {
	if net.unbounded {
		return channel.Unlimited
	}
	return net.capacity
}

// Stats returns a copy of the run counters.
func (net *Network) Stats() Stats {
	out := net.stats
	out.Steps = net.step
	if net.inj != nil {
		out.Faults = net.inj.Stats()
	}
	return out
}

// FaultPlan returns the installed fault plan, or nil.
func (net *Network) FaultPlan() *core.FaultPlan { return net.fault }

// Topology returns the installed communication graph, or nil for the
// default complete graph.
func (net *Network) Topology() *core.Topology { return net.topo }

// StepCount returns the number of scheduler steps executed so far.
func (net *Network) StepCount() int { return net.step }

// Stack returns process p's protocol stack.
func (net *Network) Stack(p core.ProcID) core.Stack { return net.stacks[p] }

// Rand exposes the scheduler PRNG so callers (corruption, tests) can draw
// reproducible randomness from the same stream.
func (net *Network) Rand() *rng.Source { return net.r }

// Link returns the logical channel for key k, creating it empty on first
// use. Creation order is recorded so scheduling stays deterministic.
func (net *Network) Link(k LinkKey) channel.Queue[core.Message] {
	if q, ok := net.links[k]; ok {
		return q
	}
	if k.From == k.To || int(k.From) >= net.n || int(k.To) >= net.n || k.From < 0 || k.To < 0 {
		panic(fmt.Sprintf("sim: invalid link %v", k))
	}
	if net.topo != nil && !net.topo.HasEdge(k.From, k.To) {
		panic(fmt.Sprintf("sim: link %v is not an edge of the topology", k))
	}
	var q channel.Queue[core.Message]
	if net.unbounded {
		q = channel.NewUnbounded[core.Message]()
	} else {
		q = channel.NewBounded[core.Message](net.capacity)
	}
	net.links[k] = q
	id := len(net.linkOrder)
	net.linkOrder = append(net.linkOrder, k)
	net.pendingPos = append(net.pendingPos, -1)
	q.SetTransition(func(nonEmpty bool) {
		if nonEmpty {
			net.pendingPos[id] = len(net.pending)
			net.pending = append(net.pending, id)
			return
		}
		pos := net.pendingPos[id]
		last := len(net.pending) - 1
		moved := net.pending[last]
		net.pending[pos] = moved
		net.pendingPos[moved] = pos
		net.pending = net.pending[:last]
		net.pendingPos[id] = -1
	})
	return q
}

// Links returns the keys of every channel created so far, in a
// deterministic order.
func (net *Network) Links() []LinkKey {
	out := make([]LinkKey, len(net.linkOrder))
	copy(out, net.linkOrder)
	return out
}

// LinksSorted returns the created link keys in canonical sorted order
// (useful for stable output independent of creation order).
func (net *Network) LinksSorted() []LinkKey {
	out := net.Links()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Instance < b.Instance
	})
	return out
}

// emit stamps and fans out an event.
func (net *Network) emit(e core.Event) {
	e.Step = net.step
	if len(net.observers) > 0 {
		net.observers.OnEvent(e)
	}
}

// env adapts the network to core.Env for one process.
type env struct {
	net  *Network
	self core.ProcID
}

var _ core.Env = env{}

func (e env) Self() core.ProcID { return e.self }
func (e env) N() int            { return e.net.n }

func (e env) Send(to core.ProcID, m core.Message) {
	if e.net.topo != nil && !e.net.topo.HasEdge(e.self, to) {
		// No channel exists toward a non-neighbour: the send vanishes at
		// the sender, accounted like a full-channel loss. The check draws
		// no randomness, preserving the determinism contract.
		e.net.stats.Sends++
		e.net.stats.SendLosses++
		e.net.emit(core.Event{Kind: core.EvSendLost, Proc: e.self, Peer: to, Instance: m.Instance, Msg: m, Note: "no edge"})
		return
	}
	q := e.net.Link(LinkKey{From: e.self, To: to, Instance: m.Instance})
	e.net.stats.Sends++
	if q.Send(m) {
		e.net.emit(core.Event{Kind: core.EvSend, Proc: e.self, Peer: to, Instance: m.Instance, Msg: m})
		return
	}
	e.net.stats.SendLosses++
	e.net.emit(core.Event{Kind: core.EvSendLost, Proc: e.self, Peer: to, Instance: m.Instance, Msg: m})
}

func (e env) Emit(ev core.Event) {
	ev.Proc = e.self
	e.net.emit(ev)
}

// Env returns the environment for process p, letting external code (tests,
// the façade) invoke requests that emit events through the same stream.
func (net *Network) Env(p core.ProcID) core.Env { return net.envs[p] }

// Crash permanently silences process p: it takes no further internal
// actions and consumes incoming messages with no effect. The paper's model
// excludes crash (permanent) failures — it lists them as future work — so
// this exists for the boundary experiments: the protocols stay safe but
// lose liveness when a participant crashes mid-computation.
func (net *Network) Crash(p core.ProcID) { net.crashed[p] = true }

// Crashed reports whether p has crashed.
func (net *Network) Crashed(p core.ProcID) bool { return net.crashed[p] }

// Activate runs every enabled internal action of process p once, in text
// order. It reports whether any action fired.
func (net *Network) Activate(p core.ProcID) bool {
	if net.probing {
		net.stats.ProbeActivations++
	} else {
		net.stats.Activations++
		if !net.activatedSet[p] {
			net.activatedSet[p] = true
			net.activatedN++
			if net.activatedN == net.n {
				net.stats.Rounds++
				net.activatedN = 0
				for i := range net.activatedSet {
					net.activatedSet[i] = false
				}
			}
		}
	}
	if net.crashed[p] {
		// The scheduler gave p its turn; a crashed process just does
		// nothing with it (rounds keep advancing for liveness metrics).
		return false
	}
	if net.fault != nil && net.fault.Down(p, int64(net.step)) {
		// Inside a crash-restart window: silent, exactly like Crash, but
		// the silence ends when the window closes.
		return false
	}
	fired := false
	e := net.envs[p]
	for _, m := range net.stacks[p] {
		if m.Step(e) {
			fired = true
		}
	}
	return fired
}

// Deliver pops the head message of link k and runs the destination's
// receive action — routed through the installed fault plan, when one
// exists, which may turn the delivery into a drop, a duplicate pair, a
// corrupted message, or a holdback. It reports false when the link is
// empty.
func (net *Network) Deliver(k LinkKey) bool {
	q, ok := net.links[k]
	if !ok {
		return false
	}
	m, ok := q.Recv()
	if !ok {
		return false
	}
	if net.inj != nil {
		out, fate := net.inj.Filter(k.From, k.To, m, int64(net.step))
		if fate == core.FateDrop {
			// Injected loss is attributed to the receiver side like every
			// in-transit loss; the category lives in Stats.Faults.
			net.emit(core.Event{Kind: core.EvLose, Proc: k.To, Peer: k.From, Instance: m.Instance, Msg: m})
		}
		for _, dm := range out {
			net.deliverMsg(k.From, k.To, dm)
		}
		return true
	}
	net.deliverMsg(k.From, k.To, m)
	return true
}

// deliverMsg hands one in-transit message to the destination's receive
// action: the delivery accounting shared by the plain path, the fault
// plan's surviving copies, and flushed holdbacks.
func (net *Network) deliverMsg(from, to core.ProcID, m core.Message) {
	net.stats.Deliveries++
	net.emit(core.Event{Kind: core.EvDeliver, Proc: to, Peer: from, Instance: m.Instance, Msg: m})
	if mach, ok := net.routes[to][m.Instance]; ok && !net.crashed[to] {
		mach.Deliver(net.envs[to], from, m)
	}
	// A message addressed to an unknown instance (initial garbage) is
	// consumed with no effect, exactly like a message whose receive
	// action has a false guard.
}

// flushFaults releases every expired held-back message into its
// destination's receive action. Called once per scheduler step while a
// fault plan is installed, so a delayed message on a quiet link still
// surfaces on time.
func (net *Network) flushFaults() {
	for _, rel := range net.inj.Flush(int64(net.step)) {
		net.deliverMsg(rel.From, rel.To, rel.Msg)
	}
}

// Lose drops the head message of link k, modeling link-level loss. It
// reports false when the link is empty.
func (net *Network) Lose(k LinkKey) bool {
	q, ok := net.links[k]
	if !ok {
		return false
	}
	m, peeked := q.Peek()
	if !peeked {
		return false
	}
	q.Drop()
	net.stats.LinkLosses++
	net.emit(core.Event{Kind: core.EvLose, Proc: k.To, Peer: k.From, Instance: m.Instance, Msg: m})
	return true
}

// pendingSnapshot fills the reusable scratch buffer with the ids of
// non-empty links in creation order. A snapshot is needed whenever
// deliveries happen while iterating: delivering mutates the pending set.
func (net *Network) pendingSnapshot() []int {
	net.scratch = net.scratch[:0]
	for id := range net.linkOrder {
		if net.pendingPos[id] >= 0 {
			net.scratch = append(net.scratch, id)
		}
	}
	return net.scratch
}

// Step executes one random scheduler step: a uniformly chosen process
// activation or channel-head delivery (which becomes a loss with the
// configured probability). It reports whether the step changed anything
// (an action fired or a message moved).
//
// The choice over non-empty links reads the incrementally maintained
// pending index, so a step is O(1) in the number of links and performs no
// heap allocation in steady state. The index's swap-remove order differs
// from creation order, so a fixed seed may produce a different — but
// equally valid — execution than earlier revisions that scanned links.
func (net *Network) Step() bool {
	net.step++
	if net.inj != nil {
		net.flushFaults()
	}
	choice := net.r.Intn(net.n + len(net.pending))
	if choice < net.n {
		return net.Activate(core.ProcID(choice))
	}
	k := net.linkOrder[net.pending[choice-net.n]]
	if net.loss > 0 && net.r.Float64() < net.loss {
		return net.Lose(k)
	}
	return net.Deliver(k)
}

// SyncRound activates every process once and then delivers (or loses)
// every channel head once. It reports whether anything changed.
func (net *Network) SyncRound() bool {
	net.step++
	if net.inj != nil {
		net.flushFaults()
	}
	changed := false
	for p := 0; p < net.n; p++ {
		if net.Activate(core.ProcID(p)) {
			changed = true
		}
	}
	for _, id := range net.pendingSnapshot() {
		k := net.linkOrder[id]
		if net.loss > 0 && net.r.Float64() < net.loss {
			net.Lose(k)
		} else {
			net.Deliver(k)
		}
		changed = true
	}
	return changed
}

// ErrBudget is returned by RunUntil and RunRoundsUntil when the predicate
// did not hold within the budget — either a liveness violation or an
// undersized budget. The exhausted budget's unit is explicit: RunUntil
// budgets are counted in scheduler steps, RunRoundsUntil budgets in
// synchronous rounds (an earlier revision reported rounds through the
// Steps field, mis-labelling round budgets in E-runner error messages).
type ErrBudget struct {
	// Steps is the number of random-scheduler steps executed (RunUntil);
	// 0 for round-budgeted runs.
	Steps int
	// Rounds is the number of synchronous rounds executed
	// (RunRoundsUntil); 0 for step-budgeted runs.
	Rounds int
	// Unit names the exhausted budget's unit: "steps" or "rounds".
	Unit string
}

func (e *ErrBudget) Error() string {
	n, unit := e.Steps, e.Unit
	if unit == "" {
		unit = "steps"
	}
	if unit == "rounds" {
		n = e.Rounds
	}
	return fmt.Sprintf("sim: predicate still false after %d %s", n, unit)
}

// RunUntil executes random scheduler steps until pred() holds, returning
// nil, or until maxSteps have run, returning *ErrBudget with the number of
// steps actually executed. The predicate is evaluated exactly once before
// the first step and once after every step — the bounded, predictable
// cadence matters because experiment predicates carry side effects
// (issuing the request under test).
func (net *Network) RunUntil(pred func() bool, maxSteps int) error {
	if pred() {
		return nil
	}
	executed := 0
	for ; executed < maxSteps; executed++ {
		net.Step()
		if pred() {
			return nil
		}
	}
	return &ErrBudget{Steps: executed, Unit: "steps"}
}

// RunRoundsUntil is RunUntil with the synchronous-round scheduler; the
// budget is counted in rounds.
func (net *Network) RunRoundsUntil(pred func() bool, maxRounds int) error {
	if pred() {
		return nil
	}
	executed := 0
	for ; executed < maxRounds; executed++ {
		net.SyncRound()
		if pred() {
			return nil
		}
	}
	return &ErrBudget{Rounds: executed, Unit: "rounds"}
}

// Quiescent reports whether the system has terminated: every channel is
// empty and no process has an enabled internal action. Probing executes
// one activation sweep, which is itself a legal execution fragment, but
// the sweep is accounted in Stats.ProbeActivations rather than
// Activations/Rounds: it is observation, and must not inflate the run's
// liveness metrics. The channel check is O(1) via the pending index.
func (net *Network) Quiescent() bool {
	if len(net.pending) > 0 {
		return false
	}
	if net.inj != nil && net.inj.Held() > 0 {
		// Held-back messages are still in transit inside the injector.
		return false
	}
	if net.fault != nil {
		// A process inside a crash window cannot be probed — its guards
		// are silenced, not disabled, and fire when the window closes —
		// so quiescence is unknowable until then. (Permanently Crashed
		// processes are different: they never act again, and the sweep
		// below already treats them as contributing nothing.)
		for p := 0; p < net.n; p++ {
			if !net.crashed[p] && net.fault.Down(core.ProcID(p), int64(net.step)) {
				return false
			}
		}
	}
	net.probing = true
	defer func() { net.probing = false }()
	for p := 0; p < net.n; p++ {
		if net.Activate(core.ProcID(p)) {
			return false
		}
	}
	return len(net.pending) == 0
}

// InTransit returns the total number of messages currently in channels.
func (net *Network) InTransit() int {
	total := 0
	for _, k := range net.linkOrder {
		total += net.links[k].Len()
	}
	return total
}

// ConfigHash returns a canonical encoding of the global configuration:
// every process's machine states plus every channel's contents. Two equal
// encodings mean equal configurations (for snapshot-implementing
// machines). Used by tests and the divergence checks.
func (net *Network) ConfigHash() string {
	var buf []byte
	for p := 0; p < net.n; p++ {
		buf = append(buf, 0x02)
		buf = net.stacks[p].AppendState(buf)
	}
	for _, k := range net.LinksSorted() {
		buf = append(buf, 0x03)
		buf = append(buf, k.String()...)
		for _, m := range net.links[k].Contents() {
			buf = core.AppendMessage(buf, m)
		}
	}
	return string(buf)
}
