// Substrate-mode driving: Network implements core.Substrate so the
// façade can run clusters on the deterministic simulator through the
// same interface as the concurrent engines.
//
// The simulator is single-threaded by design — all nondeterminism flows
// from one seeded PRNG — so concurrent external requests cannot each
// drive the scheduler. Instead, the first Await lazily spawns ONE driver
// goroutine that owns the scheduler while any request is pending: each
// loop iteration it locks the network, evaluates every registered
// completion condition (in registration order), fails the ones whose
// step budget is exhausted, executes one scheduler step if any remain,
// and unlocks. Do, Sync, and new Awaits interleave between iterations
// under the same mutex, which is what makes external actions atomic.
//
// Single-threaded deterministic use (RunUntil, Step, the experiments,
// the model checker, the adversary) never calls Await, so the driver is
// never spawned and the hot path stays exactly as in DESIGN.md §4. A
// single sequential request through Await replays the same step sequence
// as the old RunUntil-based façade: the condition is evaluated once at
// registration and once after every step, and the budget counts steps
// elapsed since registration.
package sim

import (
	"context"
	"errors"

	"github.com/snapstab/snapstab/internal/core"
)

// DefaultAwaitBudget is the per-Await step budget when none is
// configured: generous enough for any terminating computation at the
// sizes this repository simulates.
const DefaultAwaitBudget = 50_000_000

// ErrClosed is returned by Await when the network was closed before (or
// while) the condition was being awaited.
var ErrClosed = errors.New("sim: network closed")

// WithAwaitBudget sets the step budget of each Await: an Await whose
// condition is still false after that many scheduler steps (counted from
// its registration) fails with *ErrBudget. A non-positive budget fails
// after the first condition evaluation, like RunUntil with a zero step
// budget. Default DefaultAwaitBudget.
func WithAwaitBudget(steps int) Option {
	return func(n *Network) { n.awaitBudget = steps }
}

// awaitWaiter is one pending Await: a completion condition plus the
// bookkeeping the driver needs to satisfy or expire it.
type awaitWaiter struct {
	p     core.ProcID
	cond  func(core.Env) bool
	done  chan struct{}
	err   error // written (at most once) before done is closed
	steps int   // scheduler steps elapsed since registration
}

var _ core.Substrate = (*Network)(nil)

// Do runs f atomically with respect to the driver, with process p's
// environment. Part of the core.Substrate interface; single-threaded
// callers can keep using Env(p) directly.
func (net *Network) Do(p core.ProcID, f func(env core.Env)) {
	net.subMu.Lock()
	defer net.subMu.Unlock()
	f(net.envs[p])
}

// Sync runs f while the driver is paused. Callers that mutate or read
// the network as a whole while Awaits may be in flight (corruption,
// statistics) use it to stay race-free.
func (net *Network) Sync(f func()) {
	net.subMu.Lock()
	defer net.subMu.Unlock()
	f()
}

// Await registers cond and drives the scheduler until it holds; see
// core.Substrate for the contract. The returned error is nil, ctx.Err(),
// ErrClosed, or *ErrBudget after the configured await budget.
func (net *Network) Await(ctx context.Context, p core.ProcID, cond func(env core.Env) bool) error {
	w := &awaitWaiter{p: p, cond: cond, done: make(chan struct{})}
	net.subMu.Lock()
	if net.subClosed {
		net.subMu.Unlock()
		return ErrClosed
	}
	net.subWaiters = append(net.subWaiters, w)
	if !net.subDriver {
		net.subDriver = true
		go net.drive()
	}
	net.subMu.Unlock()

	select {
	case <-w.done:
		return w.err
	case <-ctx.Done():
		net.subMu.Lock()
		for i, x := range net.subWaiters {
			if x == w {
				net.subWaiters = append(net.subWaiters[:i], net.subWaiters[i+1:]...)
				break
			}
		}
		net.subMu.Unlock()
		// The driver may have satisfied the condition while we were
		// acquiring the lock; completion wins over cancellation.
		select {
		case <-w.done:
			return w.err
		default:
			return ctx.Err()
		}
	}
}

// Close shuts substrate mode down: every pending or future Await fails
// with ErrClosed. Idempotent. The network itself remains readable
// single-threadedly afterwards.
func (net *Network) Close() error {
	net.subMu.Lock()
	net.subClosed = true
	// A running driver observes subClosed on its next iteration and
	// fails the pending waiters; an idle network has no driver (it exits
	// whenever the waiter list drains), so there is nothing to wake.
	net.subMu.Unlock()
	return nil
}

// drive owns the scheduler while requests are pending. One iteration:
// sweep the conditions, expire budgets, take one step if work remains.
// It exits as soon as the waiter list drains — the next Await respawns
// it — so an idle network holds no goroutine, and pre-Close code that
// never calls Close leaks nothing.
func (net *Network) drive() {
	for {
		net.subMu.Lock()
		if net.subClosed {
			for _, w := range net.subWaiters {
				w.err = ErrClosed
				close(w.done)
			}
			net.subWaiters = nil
			net.subDriver = false
			net.subMu.Unlock()
			return
		}
		if len(net.subWaiters) == 0 {
			net.subDriver = false
			net.subMu.Unlock()
			return
		}
		keep := net.subWaiters[:0]
		for _, w := range net.subWaiters {
			switch {
			case w.cond(net.envs[w.p]):
				close(w.done)
			case w.steps >= net.awaitBudget:
				w.err = &ErrBudget{Steps: w.steps, Unit: "steps"}
				close(w.done)
			default:
				keep = append(keep, w)
			}
		}
		net.subWaiters = keep
		if len(net.subWaiters) > 0 {
			net.Step()
			for _, w := range net.subWaiters {
				w.steps++
			}
		}
		net.subMu.Unlock()
	}
}

// TransportStats implements core.TransportStatser with one zero-valued
// entry per process: the simulator moves messages in memory, so there is
// no transport to count. Callers that range over per-node transport
// counters work uniformly across substrates.
func (net *Network) TransportStats() []core.TransportStats {
	return make([]core.TransportStats, net.N())
}
