package sim

import (
	"testing"

	"github.com/snapstab/snapstab/internal/core"
)

func TestCrashSilencesProcess(t *testing.T) {
	t.Parallel()
	stacks, machines := pingerStacks(2)
	net := New(stacks)
	net.Crash(1)
	if !net.Crashed(1) || net.Crashed(0) {
		t.Fatal("crash bookkeeping wrong")
	}
	// The crashed process fires no actions.
	if net.Activate(1) {
		t.Fatal("crashed process fired an action")
	}
	// Messages to the crashed process are consumed with no effect.
	net.Activate(0) // p0 sends PING to p1
	k := LinkKey{From: 0, To: 1, Instance: "ping"}
	if !net.Deliver(k) {
		t.Fatal("delivery to crashed process did not consume the message")
	}
	if got := net.Link(LinkKey{From: 1, To: 0, Instance: "ping"}).Len(); got != 0 {
		t.Fatalf("crashed process replied: %d messages", got)
	}
	_ = machines
}

func TestCrashBreaksLivenessNotSafety(t *testing.T) {
	t.Parallel()
	// The model excludes crashes; this documents the boundary: a peer
	// crashing mid-computation blocks the initiator's decision forever
	// (liveness lost) but never produces a bogus completion (safety kept).
	stacks, machines := pingerStacks(3)
	net := New(stacks, WithSeed(5))
	net.Crash(2)
	err := net.RunUntil(machines[0].Done, 200000)
	if err == nil {
		t.Fatal("initiator completed although a peer crashed; completion is fabricated")
	}
	// p0 did collect the live peer's reply (partial progress), just not
	// the crashed one's.
	if !machines[0].acked[1] {
		t.Fatal("live peer's reply lost too; scheduler starved the live pair")
	}
	if machines[0].acked[2] {
		t.Fatal("acknowledgment recorded from a crashed process")
	}
}

func TestCrashedProcessStopsRoundAccounting(t *testing.T) {
	t.Parallel()
	// Rounds still advance: crashed processes are activated (no-op) like
	// any other scheduler choice and must not wedge the round counter.
	stacks, _ := pingerStacks(2)
	net := New(stacks)
	net.Crash(1)
	for i := 0; i < 100; i++ {
		net.Step()
	}
	if net.Stats().Rounds == 0 {
		t.Fatal("rounds stopped advancing after a crash")
	}
}

var _ = core.ProcID(0)
