package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/snapstab/snapstab/internal/core"
)

// pinger sends PING to every peer on each activation until it has received
// a PONG from all of them; it answers every PING with a PONG. A toy
// request/reply protocol exercising the whole substrate.
type pinger struct {
	inst  string
	self  core.ProcID
	n     int
	acked map[core.ProcID]bool
}

func newPinger(inst string, self core.ProcID, n int) *pinger {
	return &pinger{inst: inst, self: self, n: n, acked: make(map[core.ProcID]bool)}
}

func (p *pinger) Instance() string { return p.inst }

func (p *pinger) Done() bool { return len(p.acked) == p.n-1 }

func (p *pinger) Step(env core.Env) bool {
	if p.Done() {
		return false
	}
	for q := 0; q < p.n; q++ {
		if q == int(p.self) || p.acked[core.ProcID(q)] {
			continue
		}
		env.Send(core.ProcID(q), core.Message{Instance: p.inst, Kind: "PING"})
	}
	return true
}

func (p *pinger) Deliver(env core.Env, from core.ProcID, m core.Message) {
	switch m.Kind {
	case "PING":
		env.Send(from, core.Message{Instance: p.inst, Kind: "PONG"})
	case "PONG":
		p.acked[from] = true
	}
}

func pingerStacks(n int) ([]core.Stack, []*pinger) {
	stacks := make([]core.Stack, n)
	machines := make([]*pinger, n)
	for i := 0; i < n; i++ {
		machines[i] = newPinger("ping", core.ProcID(i), n)
		stacks[i] = core.Stack{machines[i]}
	}
	return stacks, machines
}

func TestRunUntilCompletesPingPong(t *testing.T) {
	t.Parallel()
	stacks, machines := pingerStacks(4)
	net := New(stacks, WithSeed(7))
	err := net.RunUntil(func() bool {
		for _, m := range machines {
			if !m.Done() {
				return false
			}
		}
		return true
	}, 100000)
	if err != nil {
		t.Fatalf("ping-pong did not complete: %v", err)
	}
}

func TestRunUntilCompletesUnderLoss(t *testing.T) {
	t.Parallel()
	stacks, machines := pingerStacks(3)
	net := New(stacks, WithSeed(11), WithLossRate(0.4))
	err := net.RunUntil(func() bool {
		for _, m := range machines {
			if !m.Done() {
				return false
			}
		}
		return true
	}, 500000)
	if err != nil {
		t.Fatalf("ping-pong did not complete under loss: %v", err)
	}
	if net.Stats().LinkLosses == 0 {
		t.Fatal("loss rate 0.4 produced zero link losses")
	}
}

func TestDeterministicReplay(t *testing.T) {
	t.Parallel()
	run := func() (Stats, int) {
		stacks, machines := pingerStacks(3)
		net := New(stacks, WithSeed(99), WithLossRate(0.2))
		_ = net.RunUntil(func() bool {
			for _, m := range machines {
				if !m.Done() {
					return false
				}
			}
			return true
		}, 100000)
		return net.Stats(), net.StepCount()
	}
	s1, n1 := run()
	s2, n2 := run()
	if s1 != s2 || n1 != n2 {
		t.Fatalf("same seed diverged: %+v/%d vs %+v/%d", s1, n1, s2, n2)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	t.Parallel()
	run := func(seed uint64) int {
		stacks, machines := pingerStacks(3)
		net := New(stacks, WithSeed(seed))
		_ = net.RunUntil(func() bool {
			for _, m := range machines {
				if !m.Done() {
					return false
				}
			}
			return true
		}, 100000)
		return net.StepCount()
	}
	if run(1) == run(2) && run(3) == run(4) && run(5) == run(6) {
		t.Fatal("six different seeds produced pairwise identical step counts; scheduler likely ignores the seed")
	}
}

func TestCapacityOneLosesOverflow(t *testing.T) {
	t.Parallel()
	// Two activations in a row without a delivery: the second PING into
	// the same capacity-1 link must be lost.
	stacks, _ := pingerStacks(2)
	net := New(stacks)
	net.Activate(0)
	net.Activate(0)
	if got := net.Stats().SendLosses; got != 1 {
		t.Fatalf("SendLosses = %d, want 1", got)
	}
	if got := net.Link(LinkKey{From: 0, To: 1, Instance: "ping"}).Len(); got != 1 {
		t.Fatalf("link holds %d messages, want 1", got)
	}
}

func TestUnboundedAccumulates(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(2)
	net := New(stacks, WithUnbounded())
	for i := 0; i < 10; i++ {
		net.Activate(0)
	}
	if got := net.Link(LinkKey{From: 0, To: 1, Instance: "ping"}).Len(); got != 10 {
		t.Fatalf("unbounded link holds %d messages, want 10", got)
	}
	if got := net.Stats().SendLosses; got != 0 {
		t.Fatalf("SendLosses = %d, want 0 in unbounded mode", got)
	}
}

func TestDeliverRoutesAndPongs(t *testing.T) {
	t.Parallel()
	stacks, machines := pingerStacks(2)
	net := New(stacks)
	net.Activate(0) // p0 sends PING to p1
	k01 := LinkKey{From: 0, To: 1, Instance: "ping"}
	if !net.Deliver(k01) {
		t.Fatal("Deliver on loaded link failed")
	}
	// p1 replied with PONG synchronously.
	k10 := LinkKey{From: 1, To: 0, Instance: "ping"}
	if got := net.Link(k10).Len(); got != 1 {
		t.Fatalf("reply link holds %d, want 1", got)
	}
	if !net.Deliver(k10) {
		t.Fatal("Deliver of reply failed")
	}
	if !machines[0].Done() {
		t.Fatal("p0 did not record the PONG")
	}
}

func TestDeliverEmptyLink(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(2)
	net := New(stacks)
	if net.Deliver(LinkKey{From: 0, To: 1, Instance: "ping"}) {
		t.Fatal("Deliver on never-created link succeeded")
	}
	net.Link(LinkKey{From: 0, To: 1, Instance: "ping"})
	if net.Deliver(LinkKey{From: 0, To: 1, Instance: "ping"}) {
		t.Fatal("Deliver on empty link succeeded")
	}
}

func TestGarbageUnknownInstanceConsumed(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(2)
	net := New(stacks)
	k := LinkKey{From: 0, To: 1, Instance: "no-such-protocol"}
	if err := net.Link(k).Preload([]core.Message{{Instance: "no-such-protocol", Kind: "JUNK"}}); err != nil {
		t.Fatal(err)
	}
	if !net.Deliver(k) {
		t.Fatal("garbage message was not consumed")
	}
	if got := net.Link(k).Len(); got != 0 {
		t.Fatalf("link still holds %d messages", got)
	}
}

func TestLose(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(2)
	net := New(stacks)
	net.Activate(0)
	k := LinkKey{From: 0, To: 1, Instance: "ping"}
	if !net.Lose(k) {
		t.Fatal("Lose on loaded link failed")
	}
	if got := net.Stats().LinkLosses; got != 1 {
		t.Fatalf("LinkLosses = %d, want 1", got)
	}
	if net.Lose(k) {
		t.Fatal("Lose on empty link succeeded")
	}
}

func TestEventsEmitted(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(2)
	rec := core.NewRecorder(100)
	net := New(stacks, WithObserver(rec))
	net.Activate(0)
	net.Deliver(LinkKey{From: 0, To: 1, Instance: "ping"})
	kinds := make(map[core.EventKind]int)
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	if kinds[core.EvSend] < 2 { // PING plus the synchronous PONG reply
		t.Fatalf("saw %d sends, want >= 2", kinds[core.EvSend])
	}
	if kinds[core.EvDeliver] != 1 {
		t.Fatalf("saw %d deliveries, want 1", kinds[core.EvDeliver])
	}
}

func TestRoundsCount(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(3)
	net := New(stacks)
	for p := 0; p < 3; p++ {
		net.Activate(core.ProcID(p))
	}
	if got := net.Stats().Rounds; got != 1 {
		t.Fatalf("Rounds = %d after full sweep, want 1", got)
	}
	net.Activate(0)
	net.Activate(0) // repeats do not advance the round
	if got := net.Stats().Rounds; got != 1 {
		t.Fatalf("Rounds = %d, want still 1", got)
	}
}

func TestSyncRoundQuiescence(t *testing.T) {
	t.Parallel()
	stacks, machines := pingerStacks(3)
	net := New(stacks, WithSeed(5))
	err := net.RunRoundsUntil(func() bool {
		for _, m := range machines {
			if !m.Done() {
				return false
			}
		}
		return true
	}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Drain any remaining replies, then the network must be quiescent.
	for i := 0; i < 10; i++ {
		net.SyncRound()
	}
	if !net.Quiescent() {
		t.Fatalf("network not quiescent after completion; %d in transit", net.InTransit())
	}
}

func TestRunUntilBudgetError(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(2)
	net := New(stacks)
	err := net.RunUntil(func() bool { return false }, 10)
	var budget *ErrBudget
	if !errors.As(err, &budget) {
		t.Fatalf("got %v, want *ErrBudget", err)
	}
	if budget.Steps != 10 {
		t.Fatalf("budget.Steps = %d, want 10", budget.Steps)
	}
	if budget.Unit != "steps" {
		t.Fatalf("budget.Unit = %q, want %q", budget.Unit, "steps")
	}
	if !strings.Contains(budget.Error(), "10 steps") {
		t.Fatalf("error %q does not report the step budget", budget.Error())
	}
}

// TestRunRoundsUntilBudgetReportsRounds pins the ErrBudget unit: a
// round-budgeted run must report rounds (an earlier revision stuffed the
// round count into Steps, so E-runner messages mis-labelled budgets).
func TestRunRoundsUntilBudgetReportsRounds(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(2)
	net := New(stacks)
	err := net.RunRoundsUntil(func() bool { return false }, 7)
	var budget *ErrBudget
	if !errors.As(err, &budget) {
		t.Fatalf("got %v, want *ErrBudget", err)
	}
	if budget.Rounds != 7 {
		t.Fatalf("budget.Rounds = %d, want 7", budget.Rounds)
	}
	if budget.Steps != 0 {
		t.Fatalf("budget.Steps = %d for a round-budgeted run, want 0", budget.Steps)
	}
	if budget.Unit != "rounds" {
		t.Fatalf("budget.Unit = %q, want %q", budget.Unit, "rounds")
	}
	if !strings.Contains(budget.Error(), "7 rounds") {
		t.Fatalf("error %q does not report the round budget", budget.Error())
	}
}

// TestQuiescentProbeDoesNotPerturbStats pins the probe accounting:
// Quiescent's activation sweep must not inflate Activations or Rounds —
// it lands in ProbeActivations instead.
func TestQuiescentProbeDoesNotPerturbStats(t *testing.T) {
	t.Parallel()
	stacks, machines := pingerStacks(3)
	net := New(stacks, WithSeed(5))
	if err := net.RunRoundsUntil(func() bool {
		for _, m := range machines {
			if !m.Done() {
				return false
			}
		}
		return true
	}, 1000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		net.SyncRound() // drain in-flight replies
	}
	before := net.Stats()
	for i := 0; i < 5; i++ {
		if !net.Quiescent() {
			t.Fatalf("network not quiescent on probe %d", i)
		}
	}
	after := net.Stats()
	if after.Activations != before.Activations {
		t.Fatalf("Quiescent inflated Activations: %d -> %d", before.Activations, after.Activations)
	}
	if after.Rounds != before.Rounds {
		t.Fatalf("Quiescent inflated Rounds: %d -> %d", before.Rounds, after.Rounds)
	}
	if got := after.ProbeActivations - before.ProbeActivations; got != 5*net.N() {
		t.Fatalf("ProbeActivations advanced by %d, want %d", got, 5*net.N())
	}
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	stacks, _ := pingerStacks(2)
	expectPanic("one process", func() { New(stacks[:1]) })
	expectPanic("loss=1", func() { New(stacks, WithLossRate(1)) })
	expectPanic("capacity 0", func() { New(stacks, WithCapacity(0)) })
}

func TestLinkValidation(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(2)
	net := New(stacks)
	for _, k := range []LinkKey{
		{From: 0, To: 0, Instance: "x"},
		{From: 0, To: 5, Instance: "x"},
		{From: -1, To: 1, Instance: "x"},
	} {
		k := k
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Link(%v) did not panic", k)
				}
			}()
			net.Link(k)
		}()
	}
}

func TestLinksSortedIsCanonical(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(3)
	net := New(stacks)
	net.Link(LinkKey{From: 2, To: 0, Instance: "b"})
	net.Link(LinkKey{From: 0, To: 1, Instance: "z"})
	net.Link(LinkKey{From: 0, To: 1, Instance: "a"})
	got := net.LinksSorted()
	want := []LinkKey{
		{From: 0, To: 1, Instance: "a"},
		{From: 0, To: 1, Instance: "z"},
		{From: 2, To: 0, Instance: "b"},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinksSorted()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestInTransit(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(3)
	net := New(stacks)
	net.Activate(0) // two PINGs
	if got := net.InTransit(); got != 2 {
		t.Fatalf("InTransit() = %d, want 2", got)
	}
}

// churner sends one message to each neighbour on every activation and
// ignores deliveries: a never-quiescent workload that keeps the scheduler's
// delivery path busy forever, for steady-state measurements.
type churner struct {
	inst string
	self core.ProcID
	n    int
}

func (c *churner) Instance() string { return c.inst }

func (c *churner) Step(env core.Env) bool {
	env.Send(core.ProcID((int(c.self)+1)%c.n), core.Message{Instance: c.inst, Kind: "CHURN"})
	return true
}

func (c *churner) Deliver(core.Env, core.ProcID, core.Message) {}

func churnStacks(n int) []core.Stack {
	stacks := make([]core.Stack, n)
	for i := 0; i < n; i++ {
		stacks[i] = core.Stack{&churner{inst: "churn", self: core.ProcID(i), n: n}}
	}
	return stacks
}

// TestStepZeroAllocSteadyState pins the tentpole property: once every link
// exists and the pending index has grown to capacity, Step allocates
// nothing.
func TestStepZeroAllocSteadyState(t *testing.T) {
	for _, loss := range []float64{0, 0.2} {
		net := New(churnStacks(8), WithSeed(3), WithLossRate(loss))
		for i := 0; i < 10_000; i++ { // warm up: create links, grow pending
			net.Step()
		}
		avg := testing.AllocsPerRun(5_000, func() { net.Step() })
		if avg != 0 {
			t.Errorf("loss=%v: Step allocates %.2f objects per call in steady state, want 0", loss, avg)
		}
	}
}

// TestPendingIndexMatchesChannels cross-checks the incremental non-empty
// index against the ground truth after every kind of mutation, including
// out-of-band Preload through the Link accessor.
func TestPendingIndexMatchesChannels(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(4)
	net := New(stacks, WithSeed(13), WithLossRate(0.1))
	check := func(when string) {
		t.Helper()
		want := 0
		for _, k := range net.Links() {
			if net.Link(k).Len() > 0 {
				want++
			}
		}
		if got := len(net.pending); got != want {
			t.Fatalf("%s: pending holds %d links, channels hold %d non-empty", when, got, want)
		}
		for pos, id := range net.pending {
			if net.pendingPos[id] != pos {
				t.Fatalf("%s: pendingPos[%d] = %d, want %d", when, id, net.pendingPos[id], pos)
			}
			if net.links[net.linkOrder[id]].Len() == 0 {
				t.Fatalf("%s: pending link %v is empty", when, net.linkOrder[id])
			}
		}
	}
	for i := 0; i < 2_000; i++ {
		net.Step()
		check("after Step")
	}
	k := LinkKey{From: 0, To: 1, Instance: "ping"}
	if err := net.Link(k).Preload([]core.Message{{Instance: "ping", Kind: "PING"}}); err != nil {
		t.Fatal(err)
	}
	check("after Preload")
	if err := net.Link(k).Preload(nil); err != nil {
		t.Fatal(err)
	}
	check("after emptying Preload")
	for i := 0; i < 50; i++ {
		net.SyncRound()
		check("after SyncRound")
	}
}

func TestRunUntilPredicateEvaluationCount(t *testing.T) {
	t.Parallel()
	stacks, _ := pingerStacks(2)
	net := New(stacks)
	calls := 0
	err := net.RunUntil(func() bool { calls++; return false }, 10)
	var budget *ErrBudget
	if !errors.As(err, &budget) {
		t.Fatalf("got %v, want *ErrBudget", err)
	}
	// Exactly once before the first step and once after each of the 10
	// steps: 11 total, no double evaluation at budget exhaustion.
	if calls != 11 {
		t.Fatalf("predicate evaluated %d times for a 10-step budget, want 11", calls)
	}
	if net.StepCount() != budget.Steps {
		t.Fatalf("ErrBudget.Steps = %d, but %d steps executed", budget.Steps, net.StepCount())
	}
}

func BenchmarkSchedulerStep(b *testing.B) {
	stacks, _ := pingerStacks(8)
	net := New(stacks, WithSeed(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

// BenchmarkSchedulerStepChurn measures the steady-state Step hot path with
// every link live; allocs/op must report 0.
func BenchmarkSchedulerStepChurn(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := New(churnStacks(n), WithSeed(1))
			for i := 0; i < n*n; i++ {
				net.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Step()
			}
		})
	}
}

func BenchmarkSyncRound(b *testing.B) {
	stacks, _ := pingerStacks(8)
	net := New(stacks, WithSeed(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.SyncRound()
	}
}
