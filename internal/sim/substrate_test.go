package sim

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/snapstab/snapstab/internal/check"
	"github.com/snapstab/snapstab/internal/core"
	"github.com/snapstab/snapstab/internal/pif"
)

func pifStacks(n int) ([]core.Stack, []*pif.PIF) {
	stacks := make([]core.Stack, n)
	machines := make([]*pif.PIF, n)
	for i := 0; i < n; i++ {
		machines[i] = pif.New("pif", core.ProcID(i), n, pif.Callbacks{})
		stacks[i] = core.Stack{machines[i]}
	}
	return stacks, machines
}

// TestAwaitMatchesRunUntil pins the driver's core determinism property:
// a single sequential request through Await replays the exact step
// sequence of RunUntil with the same predicate discipline.
func TestAwaitMatchesRunUntil(t *testing.T) {
	t.Parallel()
	run := func(useAwait bool) int {
		stacks, machines := pifStacks(3)
		net := New(stacks, WithSeed(99), WithLossRate(0.1))
		token := core.Payload{Tag: "t", Num: 1}
		requested := false
		pred := func(env core.Env) bool {
			if !requested {
				requested = machines[0].Invoke(env, token)
				return false
			}
			return machines[0].Done() && machines[0].BMes.Equal(token)
		}
		if useAwait {
			if err := net.Await(context.Background(), 0, pred); err != nil {
				t.Fatal(err)
			}
		} else {
			env := net.Env(0)
			if err := net.RunUntil(func() bool { return pred(env) }, 1_000_000); err != nil {
				t.Fatal(err)
			}
		}
		return net.StepCount()
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("Await executed %d steps, RunUntil %d", a, b)
	}
}

// TestAwaitBudget verifies the per-Await step accounting.
func TestAwaitBudget(t *testing.T) {
	t.Parallel()
	stacks, _ := pifStacks(2)
	net := New(stacks, WithAwaitBudget(7))
	err := net.Await(context.Background(), 0, func(core.Env) bool { return false })
	var budget *ErrBudget
	if !errors.As(err, &budget) {
		t.Fatalf("got %v, want *ErrBudget", err)
	}
	if budget.Steps != 7 || budget.Unit != "steps" {
		t.Fatalf("budget error = %+v, want 7 steps", budget)
	}
}

// TestAwaitConcurrent drives many conditions at once: the driver must
// satisfy all of them from one scheduler.
func TestAwaitConcurrent(t *testing.T) {
	t.Parallel()
	const n = 4
	stacks, machines := pifStacks(n)
	net := New(stacks, WithSeed(5))
	var wg sync.WaitGroup
	errs := make([]error, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := machines[p]
			token := core.Payload{Tag: "c", Num: int64(p)}
			requested := false
			errs[p] = net.Await(context.Background(), core.ProcID(p), func(env core.Env) bool {
				if !requested {
					requested = m.Invoke(env, token)
					return false
				}
				return m.Done() && m.BMes.Equal(token)
			})
		}()
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("await %d: %v", p, err)
		}
	}
}

// TestAwaitContextCancel verifies cancellation deregisters the waiter
// and leaves the network usable.
func TestAwaitContextCancel(t *testing.T) {
	t.Parallel()
	stacks, machines := pifStacks(2)
	net := New(stacks, WithSeed(1))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- net.Await(ctx, 0, func(core.Env) bool { return false })
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Await never returned")
	}
	// The network still serves new Awaits.
	requested := false
	err := net.Await(context.Background(), 0, func(env core.Env) bool {
		if !requested {
			requested = machines[0].Invoke(env, core.Payload{Tag: "after"})
			return false
		}
		return machines[0].Done()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAwaitClose verifies Close fails pending and future Awaits and is
// idempotent.
func TestAwaitClose(t *testing.T) {
	t.Parallel()
	stacks, _ := pifStacks(2)
	net := New(stacks)
	done := make(chan error, 1)
	go func() {
		done <- net.Await(context.Background(), 0, func(core.Env) bool { return false })
	}()
	time.Sleep(2 * time.Millisecond)
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending await got %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending Await never failed after Close")
	}
	if err := net.Await(context.Background(), 0, func(core.Env) bool { return true }); !errors.Is(err, ErrClosed) {
		t.Fatalf("await after close got %v, want ErrClosed", err)
	}
}

// TestAwaitZeroBudget pins RunUntil-compatible semantics for degenerate
// budgets: no panic, one condition evaluation, immediate *ErrBudget when
// it is false (and success when it is true).
func TestAwaitZeroBudget(t *testing.T) {
	t.Parallel()
	stacks, _ := pifStacks(2)
	net := New(stacks, WithAwaitBudget(0))
	var budget *ErrBudget
	if err := net.Await(context.Background(), 0, func(core.Env) bool { return false }); !errors.As(err, &budget) {
		t.Fatalf("got %v, want *ErrBudget", err)
	}
	if err := net.Await(context.Background(), 0, func(core.Env) bool { return true }); err != nil {
		t.Fatalf("already-true condition failed under zero budget: %v", err)
	}
}

// TestDriverExitsWhenIdle verifies the driver goroutine is released as
// soon as no request is pending, so clusters that are never Closed leak
// nothing.
func TestDriverExitsWhenIdle(t *testing.T) {
	t.Parallel()
	stacks, machines := pifStacks(2)
	net := New(stacks, WithSeed(3))
	for i := 0; i < 3; i++ {
		requested := false
		token := core.Payload{Tag: "idle", Num: int64(i)}
		err := net.Await(context.Background(), 0, func(env core.Env) bool {
			if !requested {
				requested = machines[0].Invoke(env, token)
				return false
			}
			return machines[0].Done() && machines[0].BMes.Equal(token)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !check.Eventually(10*time.Second, time.Millisecond, func() bool {
		net.subMu.Lock()
		defer net.subMu.Unlock()
		return !net.subDriver
	}) {
		t.Fatal("driver still running with no pending requests")
	}
}
