package wire

import (
	"bytes"
	"testing"

	"github.com/snapstab/snapstab/internal/core"
)

// FuzzDecode pins totality for both decoders: neither Decode nor
// DecodeBatch may panic, and whenever either accepts a byte slice the
// decoded value must re-encode and decode to the same value
// (decode ∘ encode ∘ decode = decode). Seeds cover all three frame
// versions and every rejection branch; cross-version agreement is
// checked on every input — a v1/v2 frame Decode accepts must decode
// identically through DecodeBatch as a group-0 singleton.
func FuzzDecode(f *testing.F) {
	seeds := []core.Message{
		{},
		{Instance: "pif", Kind: "PIF", B: core.Payload{Tag: "m", Num: 7}, State: 3, Echo: 1},
		{Instance: "me/idl/pif", Kind: "PIF", B: core.Payload{Tag: "ASK", Num: -1}, F: core.Payload{Tag: "YES", Num: 1 << 40}},
		{Instance: "typed/pif", Kind: "PIF", B: core.Payload{Tag: "app", Blob: []byte("hello")}},
		{Instance: "typed/pif", Kind: "PIF", B: core.Payload{Blob: bytes.Repeat([]byte{0xAB}, 4096)}, F: core.Payload{Blob: []byte{0}}},
	}
	for _, m := range seeds {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		batched, err := AppendBatch(nil, 9, []core.Message{m, m})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(batched)
	}
	f.Add([]byte{magic0, magic1, Version2, 0, 0})
	f.Add([]byte{magic0, magic1, Version2, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{magic0, magic1, Version3, 0, 1, 0})
	f.Add([]byte{magic0, magic1, Version3, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err == nil {
			re, err := Encode(m)
			if err != nil {
				t.Fatalf("accepted message %v does not re-encode: %v", m, err)
			}
			m2, err := Decode(re)
			if err != nil {
				t.Fatalf("re-encoded bytes rejected: %v", err)
			}
			if !m2.Equal(m) {
				t.Fatalf("decode/encode/decode diverged: %v vs %v", m, m2)
			}
		}
		group, msgs, berr := DecodeBatch(nil, data)
		if err == nil {
			// Cross-version agreement: anything Decode accepts is a v1/v2
			// frame, which DecodeBatch must accept as a group-0 singleton.
			if berr != nil || group != 0 || len(msgs) != 1 || !msgs[0].Equal(m) {
				t.Fatalf("DecodeBatch disagrees with Decode: g=%d msgs=%v err=%v", group, msgs, berr)
			}
		}
		if berr != nil {
			return // rejected: fine, as long as it did not panic
		}
		// Idempotence: re-encode the accepted batch and decode again.
		re, err := AppendBatch(nil, group, msgs)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		g2, msgs2, err := DecodeBatch(nil, re)
		if err != nil {
			t.Fatalf("re-encoded batch rejected: %v", err)
		}
		if g2 != group || len(msgs2) != len(msgs) {
			t.Fatalf("batch decode/encode/decode diverged: g=%d/%d n=%d/%d", group, g2, len(msgs), len(msgs2))
		}
		for i := range msgs {
			if !msgs2[i].Equal(msgs[i]) {
				t.Fatalf("batch record %d diverged: %v vs %v", i, msgs[i], msgs2[i])
			}
		}
	})
}

// FuzzBatchRoundTrip drives the batch encoder with arbitrary group ids
// and record mixes and pins the exact round-trip law for every batch
// AppendBatch accepts, including the single-record compat collapse.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(uint64(0), 1, "pif", "PIF", int64(7), []byte(nil))
	f.Add(uint64(3), 5, "typed/pif", "PIF", int64(-1), []byte("body"))
	f.Add(uint64(1)<<40, 64, "me/idl/pif", "x", int64(1<<33), []byte{0xFF})
	f.Fuzz(func(t *testing.T, group uint64, n int, inst, kind string, num int64, blob []byte) {
		if n <= 0 || n > 128 {
			return
		}
		msgs := make([]core.Message, n)
		for i := range msgs {
			msgs[i] = core.Message{
				Instance: inst, Kind: kind,
				B:     core.Payload{Tag: kind, Num: num + int64(i), Blob: blob},
				State: byte(i),
			}
		}
		data, err := AppendBatch(nil, group, msgs)
		if err != nil {
			if len(inst) > MaxStringLen || len(kind) > MaxStringLen || len(blob) > MaxBlobLen {
				return // out of the record format's domain
			}
			t.Fatalf("in-domain batch rejected: %v", err)
		}
		g, got, err := DecodeBatch(nil, data)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if g != group || len(got) != n {
			t.Fatalf("round trip: g=%d/%d n=%d/%d", group, g, n, len(got))
		}
		for i := range got {
			if !got[i].Equal(msgs[i]) {
				t.Fatalf("record %d: got %v, want %v", i, got[i], msgs[i])
			}
		}
		if n == 1 && group == 0 {
			plain, err := Encode(msgs[0])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(plain, data) {
				t.Fatalf("group-0 singleton batch not byte-compatible with bare frame")
			}
		}
	})
}

// FuzzRoundTrip drives Encode with arbitrary field values (both
// versions: blob-free inputs produce v1 frames, bodies produce v2) and
// pins the exact round-trip law for everything Encode accepts.
func FuzzRoundTrip(f *testing.F) {
	f.Add("pif", "PIF", "m", int64(7), []byte(nil), "ack", int64(-7), []byte(nil), byte(3), byte(1))
	f.Add("typed/pif", "PIF", "app", int64(0), []byte("body"), "", int64(0), []byte{0xFF, 0x00}, byte(0), byte(255))
	f.Add("", "", "", int64(-1), bytes.Repeat([]byte{1}, 300), "x", int64(1), []byte{}, byte(9), byte(9))
	f.Fuzz(func(t *testing.T, inst, kind, bTag string, bNum int64, bBlob []byte,
		fTag string, fNum int64, fBlob []byte, state, echo byte) {
		m := core.Message{
			Instance: inst, Kind: kind,
			B:     core.Payload{Tag: bTag, Num: bNum, Blob: bBlob},
			F:     core.Payload{Tag: fTag, Num: fNum, Blob: fBlob},
			State: state, Echo: echo,
		}
		data, err := Encode(m)
		if err != nil {
			if len(inst) > MaxStringLen || len(kind) > MaxStringLen ||
				len(bTag) > MaxStringLen || len(fTag) > MaxStringLen ||
				len(bBlob) > MaxBlobLen || len(fBlob) > MaxBlobLen {
				return // out of the format's domain: rejection is the contract
			}
			t.Fatalf("in-domain message rejected: %v", err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if !got.Equal(m) {
			t.Fatalf("round trip: got %v, want %v", got, m)
		}
	})
}
