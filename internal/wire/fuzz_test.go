package wire

import (
	"bytes"
	"testing"

	"github.com/snapstab/snapstab/internal/core"
)

// FuzzDecode pins totality: Decode must never panic, and whenever it
// accepts a byte slice the decoded message must re-encode and decode to
// the same value (decode ∘ encode ∘ decode = decode). Seeds cover both
// frame versions and every rejection branch.
func FuzzDecode(f *testing.F) {
	seeds := []core.Message{
		{},
		{Instance: "pif", Kind: "PIF", B: core.Payload{Tag: "m", Num: 7}, State: 3, Echo: 1},
		{Instance: "me/idl/pif", Kind: "PIF", B: core.Payload{Tag: "ASK", Num: -1}, F: core.Payload{Tag: "YES", Num: 1 << 40}},
		{Instance: "typed/pif", Kind: "PIF", B: core.Payload{Tag: "app", Blob: []byte("hello")}},
		{Instance: "typed/pif", Kind: "PIF", B: core.Payload{Blob: bytes.Repeat([]byte{0xAB}, 4096)}, F: core.Payload{Blob: []byte{0}}},
	}
	for _, m := range seeds {
		data, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{magic0, magic1, Version2, 0, 0})
	f.Add([]byte{magic0, magic1, Version2, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("accepted message %v does not re-encode: %v", m, err)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded bytes rejected: %v", err)
		}
		if !m2.Equal(m) {
			t.Fatalf("decode/encode/decode diverged: %v vs %v", m, m2)
		}
	})
}

// FuzzRoundTrip drives Encode with arbitrary field values (both
// versions: blob-free inputs produce v1 frames, bodies produce v2) and
// pins the exact round-trip law for everything Encode accepts.
func FuzzRoundTrip(f *testing.F) {
	f.Add("pif", "PIF", "m", int64(7), []byte(nil), "ack", int64(-7), []byte(nil), byte(3), byte(1))
	f.Add("typed/pif", "PIF", "app", int64(0), []byte("body"), "", int64(0), []byte{0xFF, 0x00}, byte(0), byte(255))
	f.Add("", "", "", int64(-1), bytes.Repeat([]byte{1}, 300), "x", int64(1), []byte{}, byte(9), byte(9))
	f.Fuzz(func(t *testing.T, inst, kind, bTag string, bNum int64, bBlob []byte,
		fTag string, fNum int64, fBlob []byte, state, echo byte) {
		m := core.Message{
			Instance: inst, Kind: kind,
			B:     core.Payload{Tag: bTag, Num: bNum, Blob: bBlob},
			F:     core.Payload{Tag: fTag, Num: fNum, Blob: fBlob},
			State: state, Echo: echo,
		}
		data, err := Encode(m)
		if err != nil {
			if len(inst) > MaxStringLen || len(kind) > MaxStringLen ||
				len(bTag) > MaxStringLen || len(fTag) > MaxStringLen ||
				len(bBlob) > MaxBlobLen || len(fBlob) > MaxBlobLen {
				return // out of the format's domain: rejection is the contract
			}
			t.Fatalf("in-domain message rejected: %v", err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if !got.Equal(m) {
			t.Fatalf("round trip: got %v, want %v", got, m)
		}
	})
}
