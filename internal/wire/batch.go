// Wire version 3: the batch frame. One datagram (or one TCP frame)
// carries a counted sequence of v1/v2 records plus a uvarint group id,
// so the socket transports can amortize one syscall over many protocol
// messages and multiplex many logical clusters over one socket pair:
//
//	magic   [2]byte  0x53 0x4e ("SN")
//	version byte     3
//	group   uvarint  logical cluster/group id (0 = the default group)
//	count   uvarint  number of records, 1..MaxBatch
//	records count ×:
//	    len uvarint  record length in bytes (> 0)
//	    rec [len]    one complete v1 or v2 frame (Encode output)
//
// Records are full Encode frames — magic and version included — so a
// record decodes with the exact single-message Decode and the totality
// argument composes: any malformed byte anywhere rejects the whole
// batch, which at the transport boundary is simply the loss of every
// message it carried (the model's channels may lose messages, and the
// fault plane acts per logical message after decoding, never per
// datagram). A v3 record inside a v3 frame is rejected: batches do not
// nest.
//
// Compatibility is one-directional by construction: every encoder emits
// the smallest format that represents its traffic. A batch of one
// record for group 0 is emitted as the bare record — byte-identical to
// what a wire-v2 sender produces — so a sender configured with batch=1
// interoperates with pre-v3 receivers, while DecodeBatch accepts all
// three versions (v1/v2 frames decode as group 0, count 1).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/snapstab/snapstab/internal/core"
)

const (
	// Version3 is the batch frame: uvarint group id, uvarint record
	// count, then length-prefixed v1/v2 records.
	Version3 = 3
	// MaxBatch bounds the record count a batch frame may declare; the
	// bound exists so a hostile count cannot drive a receiver's append
	// loop, and is far above what fits a 64KiB datagram of minimal
	// records anyway.
	MaxBatch = 1024
	// MaxDatagram is the largest frame the UDP transport can put on the
	// wire (the IPv4 UDP payload ceiling); senders flush below it.
	MaxDatagram = 65507
)

// ErrBatch is returned by DecodeBatch for structurally invalid batch
// frames (bad count, bad record length, trailing bytes).
var ErrBatch = errors.New("wire: malformed batch frame")

// batchHeadroom is the worst-case header overhead of AppendFrame: magic
// and version, a maximal uvarint group, and a maximal uvarint count.
const batchHeadroom = 3 + binary.MaxVarintLen64 + binary.MaxVarintLen64

// BatchBuilder accumulates records bound for one (destination, group)
// and renders them as a single frame. The zero value is unusable; call
// Reset first. Builders are reused across flushes by the transports'
// send paths, so steady-state batching performs no allocation once the
// record buffer has grown to its working size.
type BatchBuilder struct {
	group uint64
	count int
	recs  []byte // uvarint-length-prefixed Encode frames, back to back
}

// Reset empties the builder and retargets it at group, keeping the
// record buffer's capacity.
func (b *BatchBuilder) Reset(group uint64) {
	b.group = group
	b.count = 0
	b.recs = b.recs[:0]
}

// Group returns the group id the builder targets.
func (b *BatchBuilder) Group() uint64 { return b.group }

// Count returns the number of records accumulated so far.
func (b *BatchBuilder) Count() int { return b.count }

// Size returns an upper bound on the frame AppendFrame would produce
// now — the accumulated records plus worst-case header overhead. Send
// paths compare it against their datagram budget before adding more.
func (b *BatchBuilder) Size() int { return batchHeadroom + len(b.recs) }

// Add appends one message as a record. It returns the single-message
// encoding errors (oversized strings or blobs) and ErrBatch when the
// builder already holds MaxBatch records; on error the builder is
// unchanged.
func (b *BatchBuilder) Add(m core.Message) error {
	if b.count >= MaxBatch {
		return fmt.Errorf("%w: %d records", ErrBatch, b.count)
	}
	// Reserve a maximal length prefix, encode the record after it, then
	// close the gap if the actual prefix is shorter. Records are tens of
	// bytes, so the prefix is nearly always one byte and the move is a
	// few dozen bytes within one cache line.
	start := len(b.recs)
	b.recs = append(b.recs, make([]byte, binary.MaxVarintLen64)...)
	rec, err := AppendEncode(b.recs, m)
	if err != nil {
		b.recs = b.recs[:start]
		return err
	}
	recLen := len(rec) - start - binary.MaxVarintLen64
	var pfx [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pfx[:], uint64(recLen))
	copy(rec[start:], pfx[:n])
	copy(rec[start+n:], rec[start+binary.MaxVarintLen64:])
	b.recs = rec[:start+n+recLen]
	b.count++
	return nil
}

// AppendFrame renders the accumulated batch into dst and returns the
// extended slice, then leaves the builder ready for reuse via Reset.
// A batch of one record for group 0 is emitted as the bare record —
// byte-identical to the v1/v2 frame a batch-free sender produces — so
// batch=1 senders interoperate with wire-v2 peers. It panics on an
// empty builder: flushing nothing is a transport bug, not a runtime
// condition.
func (b *BatchBuilder) AppendFrame(dst []byte) []byte {
	if b.count == 0 {
		panic("wire: AppendFrame on empty batch")
	}
	if b.count == 1 && b.group == 0 {
		_, n := binary.Uvarint(b.recs)
		return append(dst, b.recs[n:]...)
	}
	dst = append(dst, magic0, magic1, Version3)
	dst = binary.AppendUvarint(dst, b.group)
	dst = binary.AppendUvarint(dst, uint64(b.count))
	return append(dst, b.recs...)
}

// AppendBatch renders msgs as one frame for group into dst: the
// convenience form of BatchBuilder for callers that already hold the
// whole batch (the TCP transport's group framing, tests).
func AppendBatch(dst []byte, group uint64, msgs []core.Message) ([]byte, error) {
	if len(msgs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBatch)
	}
	var b BatchBuilder
	b.Reset(group)
	for _, m := range msgs {
		if err := b.Add(m); err != nil {
			return nil, err
		}
	}
	return b.AppendFrame(dst), nil
}

// DecodeBatch parses a frame of any version, appending the decoded
// messages to dst (which may be nil; pass a reused slice to avoid
// allocation on hot paths). v1 and v2 frames decode as group 0 with a
// single message; v3 frames yield their group id and every record.
// Decoding is total and all-or-nothing: any malformed byte rejects the
// whole frame with dst unchanged — at the transport boundary that is
// the loss of every carried message, which the protocols tolerate by
// construction.
func DecodeBatch(dst []core.Message, data []byte) (uint64, []core.Message, error) {
	if len(data) < 3 {
		return 0, dst, ErrBadLength
	}
	if data[0] != magic0 || data[1] != magic1 {
		return 0, dst, ErrBadMagic
	}
	if data[2] != Version3 {
		m, err := Decode(data)
		if err != nil {
			return 0, dst, err
		}
		return 0, append(dst, m), nil
	}
	rest := data[3:]
	group, used := binary.Uvarint(rest)
	if used <= 0 {
		return 0, dst, ErrBatch
	}
	rest = rest[used:]
	count, used := binary.Uvarint(rest)
	if used <= 0 || count == 0 || count > MaxBatch {
		return 0, dst, ErrBatch
	}
	rest = rest[used:]
	out := dst
	for i := uint64(0); i < count; i++ {
		recLen, used := binary.Uvarint(rest)
		if used <= 0 || recLen == 0 || uint64(len(rest)-used) < recLen {
			return 0, dst, ErrBatch
		}
		rec := rest[used : used+int(recLen)]
		rest = rest[used+int(recLen):]
		// Decode rejects version 3, so batches cannot nest.
		m, err := Decode(rec)
		if err != nil {
			return 0, dst, err
		}
		out = append(out, m)
	}
	if len(rest) != 0 {
		return 0, dst, ErrBatch
	}
	return group, out, nil
}
