package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"

	"github.com/snapstab/snapstab/internal/core"
)

func batchMsgs(n int) []core.Message {
	out := make([]core.Message, n)
	for i := range out {
		out[i] = core.Message{
			Instance: "pif", Kind: "PIF",
			B:     core.Payload{Tag: "m", Num: int64(i)},
			F:     core.Payload{Tag: "ack", Num: int64(-i)},
			State: byte(i), Echo: byte(i + 1),
		}
	}
	return out
}

func TestBatchRoundTrip(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 7, 64} {
		for _, group := range []uint64{0, 1, 5, 1 << 40} {
			msgs := batchMsgs(n)
			// Mix in a blob so v2 records ride inside the batch.
			msgs[0].B.Blob = []byte("body")
			data, err := AppendBatch(nil, group, msgs)
			if err != nil {
				t.Fatal(err)
			}
			g, got, err := DecodeBatch(nil, data)
			if err != nil {
				t.Fatalf("n=%d group=%d: %v", n, group, err)
			}
			if g != group || len(got) != n {
				t.Fatalf("n=%d group=%d: decoded group %d, %d msgs", n, group, g, len(got))
			}
			for i := range got {
				if !got[i].Equal(msgs[i]) {
					t.Fatalf("msg %d: got %v, want %v", i, got[i], msgs[i])
				}
			}
		}
	}
}

// TestBatchSingleRecordCompat pins the cross-version contract the
// batch=1 transport path relies on: a one-record batch for group 0 is
// byte-identical to the plain v1/v2 frame, so a batch=1 sender
// interoperates with a wire-v2 peer; any other (count, group) pair
// produces a v3 frame.
func TestBatchSingleRecordCompat(t *testing.T) {
	t.Parallel()
	m := core.Message{Instance: "pif", Kind: "PIF", B: core.Payload{Tag: "m", Num: 7}}
	plain, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := AppendBatch(nil, 0, []core.Message{m})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, batched) {
		t.Fatalf("single-record group-0 batch = %x, want bare frame %x", batched, plain)
	}
	// The same message carrying a blob must stay byte-identical to its
	// bare v2 frame too.
	mb := m
	mb.B.Blob = []byte{1, 2, 3}
	plainB, err := Encode(mb)
	if err != nil {
		t.Fatal(err)
	}
	batchedB, err := AppendBatch(nil, 0, []core.Message{mb})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainB, batchedB) {
		t.Fatalf("single v2 record batch = %x, want bare frame %x", batchedB, plainB)
	}
	// A nonzero group forces the v3 frame even for one record: the group
	// id must travel.
	grouped, err := AppendBatch(nil, 3, []core.Message{m})
	if err != nil {
		t.Fatal(err)
	}
	if grouped[2] != Version3 {
		t.Fatalf("group-3 single batch encoded as version %d, want 3", grouped[2])
	}
	g, got, err := DecodeBatch(nil, grouped)
	if err != nil || g != 3 || len(got) != 1 || !got[0].Equal(m) {
		t.Fatalf("group-3 decode: g=%d msgs=%v err=%v", g, got, err)
	}
}

// TestDecodeBatchAcceptsLegacyFrames pins v1/v2 cross-version decode:
// the batched receive path must keep accepting frames from pre-v3
// senders, as group 0 singletons.
func TestDecodeBatchAcceptsLegacyFrames(t *testing.T) {
	t.Parallel()
	v1 := core.Message{Instance: "pif", Kind: "PIF", B: core.Payload{Tag: "m", Num: 1}}
	v2 := core.Message{Instance: "typed/pif", Kind: "PIF", B: core.Payload{Blob: []byte("x")}}
	for _, m := range []core.Message{v1, v2} {
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		g, got, err := DecodeBatch(nil, data)
		if err != nil || g != 0 || len(got) != 1 || !got[0].Equal(m) {
			t.Fatalf("legacy frame: g=%d msgs=%v err=%v", g, got, err)
		}
	}
}

// TestBatchBuilderReuse pins the zero-alloc contract of the batching
// hot path: once grown, a reused builder and frame buffer accumulate
// and render without allocating.
func TestBatchBuilderReuse(t *testing.T) {
	t.Parallel()
	msgs := batchMsgs(16)
	var b BatchBuilder
	frame := make([]byte, 0, 4096)
	// Warm the buffers.
	b.Reset(1)
	for _, m := range msgs {
		if err := b.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	frame = b.AppendFrame(frame[:0])
	want := append([]byte(nil), frame...)
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset(1)
		for _, m := range msgs {
			if err := b.Add(m); err != nil {
				t.Fatal(err)
			}
		}
		frame = b.AppendFrame(frame[:0])
	})
	if allocs > 0 {
		t.Fatalf("warm builder allocated %.0f times per batch", allocs)
	}
	if !bytes.Equal(frame, want) {
		t.Fatal("reused builder produced different bytes")
	}
}

func TestDecodeBatchRejectsMalformed(t *testing.T) {
	t.Parallel()
	good, err := AppendBatch(nil, 2, batchMsgs(3))
	if err != nil {
		t.Fatal(err)
	}
	trailing := append(append([]byte(nil), good...), 0xFF)
	truncated := good[:len(good)-1]
	zeroCount := []byte{magic0, magic1, Version3, 0, 0}
	hugeCount := binary.AppendUvarint([]byte{magic0, magic1, Version3, 0}, MaxBatch+1)
	zeroRecLen := []byte{magic0, magic1, Version3, 0, 1, 0}
	// A v3 record nested inside a v3 frame must be rejected by the
	// record's own Decode (batches do not nest).
	nested := []byte{magic0, magic1, Version3, 0, 1}
	nested = binary.AppendUvarint(nested, uint64(len(good)))
	nested = append(nested, good...)
	cases := map[string][]byte{
		"trailing bytes": trailing,
		"truncated":      truncated,
		"zero count":     zeroCount,
		"huge count":     hugeCount,
		"zero rec len":   zeroRecLen,
		"nested batch":   nested,
		"empty":          {},
		"bad magic":      {0, 0, Version3, 0, 1, 1, 0},
	}
	for name, data := range cases {
		if _, _, err := DecodeBatch(nil, data); err == nil {
			t.Errorf("%s: accepted malformed batch", name)
		}
	}
}

func TestBatchBuilderLimits(t *testing.T) {
	t.Parallel()
	var b BatchBuilder
	b.Reset(0)
	if err := b.Add(core.Message{Instance: string(make([]byte, MaxStringLen+1))}); err == nil {
		t.Fatal("oversized record accepted")
	}
	if b.Count() != 0 {
		t.Fatal("failed Add changed the builder")
	}
	m := core.Message{Instance: "x"}
	for i := 0; i < MaxBatch; i++ {
		if err := b.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Add(m); !errors.Is(err, ErrBatch) {
		t.Fatalf("record %d accepted beyond MaxBatch: %v", MaxBatch+1, err)
	}
	if _, _, err := DecodeBatch(nil, b.AppendFrame(nil)); err != nil {
		t.Fatalf("full batch does not decode: %v", err)
	}
}

func TestDecodeBatchRandomBytesNeverPanics(t *testing.T) {
	t.Parallel()
	f := func(data []byte) bool {
		_, _, _ = DecodeBatch(nil, data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBatchEncode16(b *testing.B) {
	msgs := batchMsgs(16)
	var bb BatchBuilder
	frame := make([]byte, 0, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Reset(1)
		for _, m := range msgs {
			if err := bb.Add(m); err != nil {
				b.Fatal(err)
			}
		}
		frame = bb.AppendFrame(frame[:0])
	}
	_ = frame
}

func BenchmarkBatchDecode16(b *testing.B) {
	data, err := AppendBatch(nil, 1, batchMsgs(16))
	if err != nil {
		b.Fatal(err)
	}
	scratch := make([]core.Message, 0, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err := DecodeBatch(scratch[:0], data)
		if err != nil {
			b.Fatal(err)
		}
		scratch = out[:0]
	}
}
